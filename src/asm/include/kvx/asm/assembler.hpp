// Two-pass assembler for the KVX instruction set.
//
// Accepts the assembly dialect used throughout the paper's Algorithms 2/3:
// RV32IM base instructions, the RVV 1.0 subset (including
// `vsetvli x0,s1,e64,m8,tu,mu`) and the ten custom Keccak instructions,
// plus labels, common pseudo-instructions and simple data directives.
//
// Grammar summary:
//   line      := [label ':'] [instruction | directive] [comment]
//   comment   := '#' ... end-of-line
//   directive := .text | .data | .word N... | .dword N... | .byte N... |
//                .zero N | .align N | .equ NAME, N
//   pseudo    := nop | li | la | mv | not | neg | j | jr | ret | beqz |
//                bnez | csrr | csrw
//
// Branch/jump operands may be labels or numeric byte offsets. Memory
// operands use the standard `imm(reg)` form; vector memory operands use
// `(reg)` with optional stride register / index vector. A trailing `,v0.t`
// marks a masked vector instruction.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kvx/isa/instruction.hpp"

namespace kvx::assembler {

/// Assembled program image.
struct Program {
  std::vector<u32> text;           ///< machine words, text_base-relative
  std::vector<u8> data;            ///< initialized data section
  std::map<std::string, u32> symbols;  ///< label -> absolute address
  u32 text_base = 0;
  u32 data_base = 0x0001'0000;

  /// Address of a required symbol; throws AsmError when missing.
  [[nodiscard]] u32 symbol(const std::string& name) const;
};

/// Assembler options.
struct Options {
  u32 text_base = 0;
  u32 data_base = 0x0001'0000;
};

/// Assemble a full source file. Throws kvx::AsmError with a line-numbered
/// message on any syntax or range error.
[[nodiscard]] Program assemble(std::string_view source, const Options& opts = {});

/// Assemble a single instruction (no labels/pseudo-relocations).
[[nodiscard]] isa::Instruction assemble_line(std::string_view line);

}  // namespace kvx::assembler
