// Serialization of assembled program images — the container the standalone
// tools (kvx-as / kvx-objdump / kvx-run) exchange.
//
// Format "KVXIMG1": magic, header (text base/count, data base/size), the
// little-endian text words, the data bytes, then a symbol table
// (count, then {u16 name_len, name, u32 address} records).
#pragma once

#include <iosfwd>
#include <vector>

#include "kvx/asm/assembler.hpp"

namespace kvx::assembler {

/// Serialize a program image. Throws kvx::Error on stream failure.
void save_image(const Program& program, std::ostream& out);

/// Deserialize a program image. Throws kvx::Error on malformed input.
[[nodiscard]] Program load_image(std::istream& in);

/// Convenience: serialize to / parse from a byte vector.
[[nodiscard]] std::vector<u8> image_bytes(const Program& program);
[[nodiscard]] Program image_from_bytes(std::span<const u8> bytes);

}  // namespace kvx::assembler
