#include "kvx/asm/assembler.hpp"

#include <charconv>
#include <optional>
#include <unordered_map>

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/isa/encoding.hpp"

namespace kvx::assembler {

using isa::Format;
using isa::Instruction;
using isa::Opcode;
using isa::OpcodeInfo;
using isa::VMop;
using isa::VOperands;
using isa::VType;

namespace {

[[noreturn]] void err(usize line, const std::string& what) {
  throw AsmError(strfmt("line %zu: %s", line, what.c_str()));
}

/// How a pending instruction's immediate is patched in pass 2.
enum class Reloc : u8 {
  kNone,
  kBranch,  ///< B-format pc-relative
  kJal,     ///< J-format pc-relative
  kHi20,    ///< upper 20 bits of absolute symbol address (for la/lui)
  kLo12,    ///< lower 12 bits of absolute symbol address
};

struct Pending {
  Instruction inst;
  Reloc reloc = Reloc::kNone;
  std::string symbol;
  u32 addr = 0;  ///< address of this instruction
  usize line = 0;
};

const std::unordered_map<std::string_view, Opcode>& mnemonic_map() {
  static const auto kMap = [] {
    std::unordered_map<std::string_view, Opcode> m;
    for (const OpcodeInfo& i : isa::all_opcodes()) m.emplace(i.mnemonic, i.op);
    return m;
  }();
  return kMap;
}

struct LineParts {
  std::string label;       // without ':'
  std::string_view mnemonic;
  std::vector<std::string_view> operands;
};

/// Strip comment, extract an optional label and split operands on commas.
std::optional<LineParts> parse_line(std::string_view raw, usize line_no) {
  if (const usize hash = raw.find('#'); hash != std::string_view::npos) {
    raw = raw.substr(0, hash);
  }
  std::string_view s = trim(raw);
  if (s.empty()) return std::nullopt;

  LineParts parts;
  if (const usize colon = s.find(':'); colon != std::string_view::npos) {
    const std::string_view label = trim(s.substr(0, colon));
    if (label.empty() || label.find(' ') != std::string_view::npos) {
      err(line_no, "malformed label");
    }
    parts.label = std::string(label);
    s = trim(s.substr(colon + 1));
    if (s.empty()) return parts;
  }

  const usize sp = s.find_first_of(" \t");
  parts.mnemonic = (sp == std::string_view::npos) ? s : s.substr(0, sp);
  if (sp != std::string_view::npos) {
    for (std::string_view op : split(s.substr(sp + 1), ',')) {
      parts.operands.push_back(trim(op));
    }
  }
  return parts;
}

class AssemblerImpl {
 public:
  explicit AssemblerImpl(const Options& opts) {
    prog_.text_base = opts.text_base;
    prog_.data_base = opts.data_base;
  }

  Program run(std::string_view source) {
    usize line_no = 0;
    usize pos = 0;
    while (pos <= source.size()) {
      const usize nl = source.find('\n', pos);
      const std::string_view line =
          source.substr(pos, nl == std::string_view::npos ? source.size() - pos
                                                          : nl - pos);
      ++line_no;
      handle_line(line, line_no);
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
    resolve_and_encode();
    return std::move(prog_);
  }

 private:
  // ---- pass 1 -------------------------------------------------------------

  void handle_line(std::string_view line, usize line_no) {
    const auto parts = parse_line(line, line_no);
    if (!parts) return;
    if (!parts->label.empty()) define_label(parts->label, line_no);
    if (parts->mnemonic.empty()) return;
    if (parts->mnemonic[0] == '.') {
      handle_directive(*parts, line_no);
    } else {
      handle_instruction(*parts, line_no);
    }
  }

  void define_label(const std::string& name, usize line_no) {
    const u32 addr = in_text_ ? text_cursor() : data_cursor();
    if (!prog_.symbols.emplace(name, addr).second) {
      err(line_no, "duplicate label '" + name + "'");
    }
  }

  u32 text_cursor() const {
    return prog_.text_base + static_cast<u32>(pending_.size()) * 4;
  }
  u32 data_cursor() const {
    return prog_.data_base + static_cast<u32>(prog_.data.size());
  }

  void handle_directive(const LineParts& p, usize line_no) {
    const std::string d = to_lower(p.mnemonic);
    if (d == ".text") { in_text_ = true; return; }
    if (d == ".data") { in_text_ = false; return; }
    if (d == ".equ") {
      if (p.operands.size() != 2) err(line_no, ".equ needs name, value");
      const i64 v = parse_int(p.operands[1], line_no);
      if (!prog_.symbols.emplace(std::string(p.operands[0]),
                                 static_cast<u32>(v)).second) {
        err(line_no, "duplicate symbol in .equ");
      }
      return;
    }
    if (in_text_) err(line_no, "data directive '" + d + "' in .text section");
    if (d == ".word") {
      for (std::string_view op : p.operands) emit_data(parse_int(op, line_no), 4);
      return;
    }
    if (d == ".dword") {
      for (std::string_view op : p.operands) emit_data(parse_int(op, line_no), 8);
      return;
    }
    if (d == ".byte") {
      for (std::string_view op : p.operands) emit_data(parse_int(op, line_no), 1);
      return;
    }
    if (d == ".half") {
      for (std::string_view op : p.operands) emit_data(parse_int(op, line_no), 2);
      return;
    }
    if (d == ".zero" || d == ".space") {
      if (p.operands.size() != 1) err(line_no, d + " needs a size");
      const i64 n = parse_int(p.operands[0], line_no);
      if (n < 0) err(line_no, "negative size");
      prog_.data.insert(prog_.data.end(), static_cast<usize>(n), 0);
      return;
    }
    if (d == ".align") {
      if (p.operands.size() != 1) err(line_no, ".align needs a power");
      const i64 n = parse_int(p.operands[0], line_no);
      if (n < 0 || n > 12) err(line_no, ".align power out of range");
      const usize align = usize{1} << n;
      while (prog_.data.size() % align != 0) prog_.data.push_back(0);
      return;
    }
    err(line_no, "unknown directive '" + d + "'");
  }

  void emit_data(i64 value, usize width) {
    for (usize i = 0; i < width; ++i) {
      prog_.data.push_back(static_cast<u8>(static_cast<u64>(value) >> (8 * i)));
    }
  }

  // ---- integer / register / operand parsing --------------------------------

  i64 parse_int(std::string_view s, usize line_no) {
    s = trim(s);
    bool neg = false;
    if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
      neg = s[0] == '-';
      s.remove_prefix(1);
    }
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
      base = 16;
      s.remove_prefix(2);
    } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
      base = 2;
      s.remove_prefix(2);
    }
    u64 mag = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), mag, base);
    if (ec != std::errc{} || p != s.data() + s.size()) {
      // Maybe an .equ constant.
      if (const auto it = prog_.symbols.find(std::string(trim(s)));
          it != prog_.symbols.end() && !neg) {
        return it->second;
      }
      err(line_no, "expected integer, got '" + std::string(s) + "'");
    }
    const i64 v = static_cast<i64>(mag);
    return neg ? -v : v;
  }

  u8 xreg(std::string_view s, usize line_no) {
    const int r = isa::parse_xreg(trim(s));
    if (r < 0) err(line_no, "expected scalar register, got '" + std::string(s) + "'");
    return static_cast<u8>(r);
  }

  u8 vreg(std::string_view s, usize line_no) {
    const int r = isa::parse_vreg(trim(s));
    if (r < 0) err(line_no, "expected vector register, got '" + std::string(s) + "'");
    return static_cast<u8>(r);
  }

  /// Parse `imm(reg)`; imm may be a symbol (resolved to absolute address).
  std::pair<i32, u8> mem_operand(std::string_view s, usize line_no) {
    s = trim(s);
    const usize open = s.find('(');
    if (open == std::string_view::npos || s.back() != ')') {
      err(line_no, "expected mem operand 'imm(reg)'");
    }
    const std::string_view imm_part = trim(s.substr(0, open));
    const std::string_view reg_part = s.substr(open + 1, s.size() - open - 2);
    i64 imm = 0;
    if (!imm_part.empty()) imm = parse_int(imm_part, line_no);
    return {static_cast<i32>(imm), xreg(reg_part, line_no)};
  }

  bool is_integer(std::string_view s) {
    s = trim(s);
    if (!s.empty() && (s[0] == '-' || s[0] == '+')) s.remove_prefix(1);
    if (s.empty()) return false;
    for (char c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c))) return false;
    }
    return std::isdigit(static_cast<unsigned char>(s[0])) != 0;
  }

  // ---- instruction handling -------------------------------------------------

  void push(Instruction inst, Reloc reloc = Reloc::kNone,
            std::string symbol = {}, usize line_no = 0) {
    pending_.push_back(Pending{inst, reloc, std::move(symbol),
                               text_cursor(), line_no});
  }

  void handle_instruction(const LineParts& p, usize line_no) {
    if (!in_text_) err(line_no, "instruction outside .text");
    const std::string mnem = to_lower(p.mnemonic);
    if (try_pseudo(mnem, p.operands, line_no)) return;

    const auto it = mnemonic_map().find(mnem);
    if (it == mnemonic_map().end()) {
      err(line_no, "unknown mnemonic '" + mnem + "'");
    }
    const OpcodeInfo& i = isa::info(it->second);
    Instruction inst;
    inst.op = it->second;
    auto ops = p.operands;

    // Trailing ",v0.t" marks masking on vector instructions.
    if (!ops.empty() && to_lower(ops.back()) == "v0.t") {
      inst.vm = false;
      ops.pop_back();
    }

    switch (i.format) {
      case Format::kR:
        expect(ops, 3, line_no);
        inst.rd = xreg(ops[0], line_no);
        inst.rs1 = xreg(ops[1], line_no);
        inst.rs2 = xreg(ops[2], line_no);
        break;
      case Format::kI:
        if (inst.op == Opcode::kFence) break;
        expect(ops, i.major == 0b0000011 || inst.op == Opcode::kJalr ? 2 : 3,
               line_no);
        inst.rd = xreg(ops[0], line_no);
        if (i.major == 0b0000011 || inst.op == Opcode::kJalr) {
          const auto [imm, base] = mem_operand(ops[1], line_no);
          inst.imm = imm;
          inst.rs1 = base;
        } else {
          inst.rs1 = xreg(ops[1], line_no);
          inst.imm = static_cast<i32>(parse_int(ops[2], line_no));
        }
        break;
      case Format::kIShift:
        expect(ops, 3, line_no);
        inst.rd = xreg(ops[0], line_no);
        inst.rs1 = xreg(ops[1], line_no);
        inst.imm = static_cast<i32>(parse_int(ops[2], line_no));
        break;
      case Format::kS: {
        expect(ops, 2, line_no);
        inst.rs2 = xreg(ops[0], line_no);
        const auto [imm, base] = mem_operand(ops[1], line_no);
        inst.imm = imm;
        inst.rs1 = base;
        break;
      }
      case Format::kB:
        expect(ops, 3, line_no);
        inst.rs1 = xreg(ops[0], line_no);
        inst.rs2 = xreg(ops[1], line_no);
        if (is_integer(ops[2])) {
          inst.imm = static_cast<i32>(parse_int(ops[2], line_no));
          push(inst, Reloc::kNone, {}, line_no);
        } else {
          push(inst, Reloc::kBranch, std::string(trim(ops[2])), line_no);
        }
        return;
      case Format::kU:
        expect(ops, 2, line_no);
        inst.rd = xreg(ops[0], line_no);
        inst.imm = static_cast<i32>(parse_int(ops[1], line_no));
        break;
      case Format::kJ:
        expect(ops, 2, line_no);
        inst.rd = xreg(ops[0], line_no);
        if (is_integer(ops[1])) {
          inst.imm = static_cast<i32>(parse_int(ops[1], line_no));
          push(inst, Reloc::kNone, {}, line_no);
        } else {
          push(inst, Reloc::kJal, std::string(trim(ops[1])), line_no);
        }
        return;
      case Format::kSystem:
        expect(ops, 0, line_no);
        break;
      case Format::kCsr:
        expect(ops, 3, line_no);
        inst.rd = xreg(ops[0], line_no);
        inst.imm = static_cast<i32>(parse_int(ops[1], line_no));
        inst.rs1 = xreg(ops[2], line_no);
        break;
      case Format::kCsrI:
        expect(ops, 3, line_no);
        inst.rd = xreg(ops[0], line_no);
        inst.imm = static_cast<i32>(parse_int(ops[1], line_no));
        inst.rs1 = static_cast<u8>(parse_int(ops[2], line_no));
        break;
      case Format::kVSetVLI:
        parse_vsetvli(inst, ops, line_no);
        break;
      case Format::kVArith:
      case Format::kVCustom:
        parse_varith(inst, i, ops, line_no);
        break;
      case Format::kVLoad:
      case Format::kVStore:
        parse_vmem(inst, i, ops, line_no);
        break;
    }
    push(inst, Reloc::kNone, {}, line_no);
  }

  void expect(const std::vector<std::string_view>& ops, usize n, usize line_no) {
    if (ops.size() != n) {
      err(line_no, strfmt("expected %zu operands, got %zu", n, ops.size()));
    }
  }

  void parse_vsetvli(Instruction& inst, const std::vector<std::string_view>& ops,
                     usize line_no) {
    // vsetvli rd, rs1, eN [,mN] [,ta|tu] [,ma|mu]
    if (ops.size() < 3) err(line_no, "vsetvli needs rd, rs1, vtype...");
    inst.rd = xreg(ops[0], line_no);
    inst.rs1 = xreg(ops[1], line_no);
    VType vt;
    for (usize k = 2; k < ops.size(); ++k) {
      const std::string t = to_lower(ops[k]);
      if (t.size() >= 2 && t[0] == 'e') {
        vt.sew = static_cast<unsigned>(parse_int(t.substr(1), line_no));
      } else if (t.size() >= 2 && t[0] == 'm' && std::isdigit(
                     static_cast<unsigned char>(t[1]))) {
        vt.lmul = static_cast<unsigned>(parse_int(t.substr(1), line_no));
      } else if (t == "ta") {
        vt.tail_agnostic = true;
      } else if (t == "tu") {
        vt.tail_agnostic = false;
      } else if (t == "ma") {
        vt.mask_agnostic = true;
      } else if (t == "mu") {
        vt.mask_agnostic = false;
      } else {
        err(line_no, "bad vtype token '" + t + "'");
      }
    }
    inst.vtype = vt;
  }

  void parse_varith(Instruction& inst, const OpcodeInfo& i,
                    const std::vector<std::string_view>& ops, usize line_no) {
    // vmv.v.* takes (vd, src); the fused vthetac/vchi take (vd, vs2);
    // everything else is three-operand.
    const bool is_vmv = inst.op == Opcode::kVmvVV ||
                        inst.op == Opcode::kVmvVX ||
                        inst.op == Opcode::kVmvVI;
    const bool single_source = inst.op == Opcode::kVthetacVV ||
                               inst.op == Opcode::kVchiVV;
    const bool is_merge = inst.op == Opcode::kVmergeVVM ||
                          inst.op == Opcode::kVmergeVXM ||
                          inst.op == Opcode::kVmergeVIM;
    if (is_merge) {
      // vmerge.v?m vd, vs2, src, v0 — the mask register is spelled out and
      // the encoding carries vm = 0.
      expect(ops, 4, line_no);
      if (to_lower(ops[3]) != "v0") {
        err(line_no, "vmerge requires 'v0' as its final operand");
      }
      inst.vm = false;
    } else {
      expect(ops, (is_vmv || single_source) ? 2 : 3, line_no);
    }
    inst.rd = vreg(ops[0], line_no);
    if (single_source) {
      inst.rs2 = vreg(ops[1], line_no);
      return;
    }
    const usize src2 = is_vmv ? 1 : 2;
    if (!is_vmv) inst.rs2 = vreg(ops[1], line_no);
    switch (i.voperands) {
      case VOperands::kVV:
        inst.rs1 = vreg(ops[src2], line_no);
        break;
      case VOperands::kVX:
        inst.rs1 = xreg(ops[src2], line_no);
        break;
      case VOperands::kVI:
        inst.imm = static_cast<i32>(parse_int(ops[src2], line_no));
        break;
      case VOperands::kNone:
        err(line_no, "internal: arith without operand kind");
    }
  }

  void parse_vmem(Instruction& inst, const OpcodeInfo& i,
                  const std::vector<std::string_view>& ops, usize line_no) {
    const auto mop = static_cast<VMop>(i.aux);
    expect(ops, mop == VMop::kUnit ? 2 : 3, line_no);
    inst.rd = vreg(ops[0], line_no);
    const auto [imm, base] = mem_operand(ops[1], line_no);
    if (imm != 0) err(line_no, "vector memory operand takes no offset");
    inst.rs1 = base;
    if (mop == VMop::kStrided) {
      inst.rs2 = xreg(ops[2], line_no);
    } else if (mop == VMop::kIndexed) {
      inst.rs2 = vreg(ops[2], line_no);
    }
  }

  // ---- pseudo-instructions ---------------------------------------------------

  bool try_pseudo(const std::string& mnem,
                  const std::vector<std::string_view>& ops, usize line_no) {
    const auto make = [&](Opcode op) {
      Instruction inst;
      inst.op = op;
      return inst;
    };
    if (mnem == "nop") {
      expect(ops, 0, line_no);
      auto inst = make(Opcode::kAddi);
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "li") {
      expect(ops, 2, line_no);
      const u8 rd = xreg(ops[0], line_no);
      const i64 value = parse_int(ops[1], line_no);
      emit_li(rd, static_cast<i32>(value), line_no);
      return true;
    }
    if (mnem == "la") {
      expect(ops, 2, line_no);
      const u8 rd = xreg(ops[0], line_no);
      const std::string sym(trim(ops[1]));
      auto lui = make(Opcode::kLui);
      lui.rd = rd;
      push(lui, Reloc::kHi20, sym, line_no);
      auto addi = make(Opcode::kAddi);
      addi.rd = rd;
      addi.rs1 = rd;
      push(addi, Reloc::kLo12, sym, line_no);
      return true;
    }
    if (mnem == "mv") {
      expect(ops, 2, line_no);
      auto inst = make(Opcode::kAddi);
      inst.rd = xreg(ops[0], line_no);
      inst.rs1 = xreg(ops[1], line_no);
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "not") {
      expect(ops, 2, line_no);
      auto inst = make(Opcode::kXori);
      inst.rd = xreg(ops[0], line_no);
      inst.rs1 = xreg(ops[1], line_no);
      inst.imm = -1;
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "neg") {
      expect(ops, 2, line_no);
      auto inst = make(Opcode::kSub);
      inst.rd = xreg(ops[0], line_no);
      inst.rs2 = xreg(ops[1], line_no);
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "j") {
      expect(ops, 1, line_no);
      auto inst = make(Opcode::kJal);
      if (is_integer(ops[0])) {
        inst.imm = static_cast<i32>(parse_int(ops[0], line_no));
        push(inst, Reloc::kNone, {}, line_no);
      } else {
        push(inst, Reloc::kJal, std::string(trim(ops[0])), line_no);
      }
      return true;
    }
    if (mnem == "jr") {
      expect(ops, 1, line_no);
      auto inst = make(Opcode::kJalr);
      inst.rs1 = xreg(ops[0], line_no);
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "ret") {
      expect(ops, 0, line_no);
      auto inst = make(Opcode::kJalr);
      inst.rs1 = 1;  // ra
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "beqz" || mnem == "bnez") {
      expect(ops, 2, line_no);
      auto inst = make(mnem == "beqz" ? Opcode::kBeq : Opcode::kBne);
      inst.rs1 = xreg(ops[0], line_no);
      if (is_integer(ops[1])) {
        inst.imm = static_cast<i32>(parse_int(ops[1], line_no));
        push(inst, Reloc::kNone, {}, line_no);
      } else {
        push(inst, Reloc::kBranch, std::string(trim(ops[1])), line_no);
      }
      return true;
    }
    if (mnem == "csrr") {
      expect(ops, 2, line_no);
      auto inst = make(Opcode::kCsrrs);
      inst.rd = xreg(ops[0], line_no);
      inst.imm = static_cast<i32>(parse_int(ops[1], line_no));
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "csrwi") {
      expect(ops, 2, line_no);
      auto inst = make(Opcode::kCsrrwi);
      inst.imm = static_cast<i32>(parse_int(ops[0], line_no));
      inst.rs1 = static_cast<u8>(parse_int(ops[1], line_no));
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    if (mnem == "csrw") {
      expect(ops, 2, line_no);
      auto inst = make(Opcode::kCsrrw);
      inst.imm = static_cast<i32>(parse_int(ops[0], line_no));
      inst.rs1 = xreg(ops[1], line_no);
      push(inst, Reloc::kNone, {}, line_no);
      return true;
    }
    return false;
  }

  void emit_li(u8 rd, i32 value, usize line_no) {
    if (fits_signed(value, 12)) {
      Instruction addi;
      addi.op = Opcode::kAddi;
      addi.rd = rd;
      addi.imm = value;
      push(addi, Reloc::kNone, {}, line_no);
      return;
    }
    // lui + addi with carry correction for a negative low part.
    const u32 uval = static_cast<u32>(value);
    u32 hi = uval >> 12;
    const i32 lo = sign_extend(uval & 0xFFFu, 12);
    if (lo < 0) hi = (hi + 1) & 0xFFFFFu;
    Instruction lui;
    lui.op = Opcode::kLui;
    lui.rd = rd;
    lui.imm = static_cast<i32>(hi);
    push(lui, Reloc::kNone, {}, line_no);
    if (lo != 0) {
      Instruction addi;
      addi.op = Opcode::kAddi;
      addi.rd = rd;
      addi.rs1 = rd;
      addi.imm = lo;
      push(addi, Reloc::kNone, {}, line_no);
    }
  }

  // ---- pass 2 ----------------------------------------------------------------

  void resolve_and_encode() {
    prog_.text.reserve(pending_.size());
    for (Pending& p : pending_) {
      if (p.reloc != Reloc::kNone) {
        const auto it = prog_.symbols.find(p.symbol);
        if (it == prog_.symbols.end()) {
          err(p.line, "undefined symbol '" + p.symbol + "'");
        }
        const u32 target = it->second;
        switch (p.reloc) {
          case Reloc::kBranch:
          case Reloc::kJal:
            p.inst.imm = static_cast<i32>(target - p.addr);
            break;
          case Reloc::kHi20: {
            u32 hi = target >> 12;
            if ((target & 0x800u) != 0) hi = (hi + 1) & 0xFFFFFu;
            p.inst.imm = static_cast<i32>(hi);
            break;
          }
          case Reloc::kLo12:
            p.inst.imm = sign_extend(target & 0xFFFu, 12);
            break;
          case Reloc::kNone:
            break;
        }
      }
      try {
        prog_.text.push_back(isa::encode(p.inst));
      } catch (const Error& e) {
        err(p.line, e.what());
      }
    }
  }

  Program prog_;
  std::vector<Pending> pending_;
  bool in_text_ = true;
};

}  // namespace

u32 Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) throw AsmError("undefined symbol '" + name + "'");
  return it->second;
}

Program assemble(std::string_view source, const Options& opts) {
  return AssemblerImpl(opts).run(source);
}

isa::Instruction assemble_line(std::string_view line) {
  const Program p = assemble(line);
  if (p.text.size() != 1) {
    throw AsmError("assemble_line expects exactly one instruction");
  }
  return isa::decode(p.text[0]);
}

}  // namespace kvx::assembler
