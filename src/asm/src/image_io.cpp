#include "kvx/asm/image_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "kvx/common/error.hpp"

namespace kvx::assembler {
namespace {

constexpr char kMagic[8] = {'K', 'V', 'X', 'I', 'M', 'G', '1', '\n'};

void put_u32(std::ostream& out, u32 v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

void put_u16(std::ostream& out, u16 v) {
  char buf[2] = {static_cast<char>(v & 0xFF), static_cast<char>(v >> 8)};
  out.write(buf, 2);
}

u32 get_u32(std::istream& in) {
  char buf[4];
  in.read(buf, 4);
  if (!in) throw Error("image: truncated u32");
  u32 v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<u8>(buf[i]);
  return v;
}

u16 get_u16(std::istream& in) {
  char buf[2];
  in.read(buf, 2);
  if (!in) throw Error("image: truncated u16");
  return static_cast<u16>(static_cast<u8>(buf[0]) |
                          (static_cast<u8>(buf[1]) << 8));
}

}  // namespace

void save_image(const Program& program, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  put_u32(out, program.text_base);
  put_u32(out, static_cast<u32>(program.text.size()));
  put_u32(out, program.data_base);
  put_u32(out, static_cast<u32>(program.data.size()));
  for (u32 w : program.text) put_u32(out, w);
  out.write(reinterpret_cast<const char*>(program.data.data()),
            static_cast<std::streamsize>(program.data.size()));
  put_u32(out, static_cast<u32>(program.symbols.size()));
  for (const auto& [name, addr] : program.symbols) {
    KVX_CHECK_MSG(name.size() < 65536, "symbol name too long");
    put_u16(out, static_cast<u16>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_u32(out, addr);
  }
  if (!out) throw Error("image: write failure");
}

Program load_image(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || !std::equal(magic, magic + 8, kMagic)) {
    throw Error("image: bad magic (not a KVXIMG1 file)");
  }
  Program p;
  p.text_base = get_u32(in);
  const u32 text_count = get_u32(in);
  p.data_base = get_u32(in);
  const u32 data_size = get_u32(in);
  if (text_count > (1u << 24) || data_size > (1u << 28)) {
    throw Error("image: implausible section sizes");
  }
  p.text.reserve(text_count);
  for (u32 i = 0; i < text_count; ++i) p.text.push_back(get_u32(in));
  p.data.resize(data_size);
  in.read(reinterpret_cast<char*>(p.data.data()), data_size);
  if (!in) throw Error("image: truncated data section");
  const u32 nsyms = get_u32(in);
  if (nsyms > (1u << 20)) throw Error("image: implausible symbol count");
  for (u32 i = 0; i < nsyms; ++i) {
    const u16 len = get_u16(in);
    std::string name(len, '\0');
    in.read(name.data(), len);
    if (!in) throw Error("image: truncated symbol table");
    const u32 addr = get_u32(in);
    p.symbols.emplace(std::move(name), addr);
  }
  return p;
}

std::vector<u8> image_bytes(const Program& program) {
  std::ostringstream os(std::ios::binary);
  save_image(program, os);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

Program image_from_bytes(std::span<const u8> bytes) {
  std::istringstream is(std::string(bytes.begin(), bytes.end()),
                        std::ios::binary);
  return load_image(is);
}

}  // namespace kvx::assembler
