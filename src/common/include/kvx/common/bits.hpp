// Bit-manipulation primitives shared by the Keccak golden model, the ISA
// encoder/decoder, and the processor simulator.
#pragma once

#include <bit>
#include <span>

#include "kvx/common/types.hpp"

namespace kvx {

/// Rotate a 64-bit word left ("up", toward the most-significant bit).
/// `n` is reduced modulo 64, so `rotl64(x, 0)` and `rotl64(x, 64)` are x.
[[nodiscard]] constexpr u64 rotl64(u64 x, unsigned n) noexcept {
  return std::rotl(x, static_cast<int>(n % 64u));
}

/// Rotate a 64-bit word right.
[[nodiscard]] constexpr u64 rotr64(u64 x, unsigned n) noexcept {
  return std::rotr(x, static_cast<int>(n % 64u));
}

/// Rotate a 32-bit word left.
[[nodiscard]] constexpr u32 rotl32(u32 x, unsigned n) noexcept {
  return std::rotl(x, static_cast<int>(n % 32u));
}

/// Rotate a 32-bit word right.
[[nodiscard]] constexpr u32 rotr32(u32 x, unsigned n) noexcept {
  return std::rotr(x, static_cast<int>(n % 32u));
}

/// Concatenate two 32-bit halves into a 64-bit word (`hi‖lo`).
[[nodiscard]] constexpr u64 concat32(u32 hi, u32 lo) noexcept {
  return (static_cast<u64>(hi) << 32) | lo;
}

/// Low 32 bits of a 64-bit word.
[[nodiscard]] constexpr u32 lo32(u64 x) noexcept {
  return static_cast<u32>(x & 0xFFFF'FFFFu);
}

/// High 32 bits of a 64-bit word.
[[nodiscard]] constexpr u32 hi32(u64 x) noexcept {
  return static_cast<u32>(x >> 32);
}

/// Extract bit field [lo, lo+width) of `x`.
[[nodiscard]] constexpr u32 bits(u32 x, unsigned lo, unsigned width) noexcept {
  return (x >> lo) & ((width >= 32u) ? ~0u : ((1u << width) - 1u));
}

/// Sign-extend the low `width` bits of `x` to 32 bits.
[[nodiscard]] constexpr i32 sign_extend(u32 x, unsigned width) noexcept {
  const u32 m = 1u << (width - 1);
  const u32 v = x & ((width >= 32u) ? ~0u : ((1u << width) - 1u));
  return static_cast<i32>((v ^ m) - m);
}

/// True if `x` fits in a `width`-bit signed immediate.
[[nodiscard]] constexpr bool fits_signed(i64 x, unsigned width) noexcept {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  return x >= lo && x <= hi;
}

/// True if `x` fits in a `width`-bit unsigned immediate.
[[nodiscard]] constexpr bool fits_unsigned(u64 x, unsigned width) noexcept {
  return width >= 64u || x < (u64{1} << width);
}

/// Load a little-endian 64-bit word from `p` (no alignment requirement).
[[nodiscard]] constexpr u64 load_le64(std::span<const u8, 8> p) noexcept {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[static_cast<usize>(i)];
  return v;
}

/// Store a little-endian 64-bit word to `p`.
constexpr void store_le64(std::span<u8, 8> p, u64 v) noexcept {
  for (usize i = 0; i < 8; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}

/// Load a little-endian 32-bit word.
[[nodiscard]] constexpr u32 load_le32(std::span<const u8, 4> p) noexcept {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

/// Store a little-endian 32-bit word.
constexpr void store_le32(std::span<u8, 4> p, u32 v) noexcept {
  for (usize i = 0; i < 4; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}

}  // namespace kvx
