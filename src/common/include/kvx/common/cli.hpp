// Checked command-line value parsing shared by every tool and example.
//
// The tools used to parse numeric flags with bare std::atoi/std::atol, which
// silently accepts garbage ("12abc" → 12), silently wraps negatives through
// unsigned casts ("--threads -1" became ~4 billion worker shards) and has
// undefined behaviour on overflow. These helpers reject all of that up
// front: a flag value either parses completely, within its documented range,
// or the caller reports a usage error and exits 2 — it never reaches the
// engine as a wrapped or truncated number.
//
// The parse_* functions are the composable core (std::optional results, no
// I/O); require_* wraps them with the uniform "<tool>: <flag> ..." stderr
// message and std::exit(2) used by every CLI.
#pragma once

#include <optional>
#include <string_view>

#include "kvx/common/types.hpp"

namespace kvx::cli {

/// Parse a complete unsigned decimal (or, with "0x"/"0X" prefix, hex)
/// integer in [min, max]. Rejects: empty strings, any trailing or embedded
/// non-digit, a leading '-' or '+', values that overflow u64, and values
/// outside the range. Surrounding ASCII whitespace is NOT accepted — flag
/// values arrive as exact argv tokens.
[[nodiscard]] std::optional<u64> parse_u64(std::string_view text, u64 min = 0,
                                           u64 max = ~u64{0});

/// parse_u64 narrowed to unsigned; max defaults to the type's maximum.
[[nodiscard]] std::optional<unsigned> parse_unsigned(std::string_view text,
                                                     unsigned min = 0,
                                                     unsigned max = ~0u);

/// Parse a complete finite double in [min, max] (strtod grammar, but the
/// whole token must be consumed; NaN and infinities are rejected).
[[nodiscard]] std::optional<double> parse_f64(std::string_view text,
                                              double min, double max);

/// Parse `text` for flag `flag` of tool `tool`, or print
/// "<tool>: <flag> expects an integer in [min, max] (got '<text>')" to
/// stderr and exit 2. For flags whose minimum exists to forbid a
/// meaningless zero (e.g. --threads), the message names the rejected value
/// explicitly so "--threads 0" and "--threads -1" both fail loudly instead
/// of wrapping.
[[nodiscard]] u64 require_u64(const char* tool, const char* flag,
                              std::string_view text, u64 min = 0,
                              u64 max = ~u64{0});

[[nodiscard]] unsigned require_unsigned(const char* tool, const char* flag,
                                        std::string_view text,
                                        unsigned min = 0, unsigned max = ~0u);

[[nodiscard]] usize require_usize(const char* tool, const char* flag,
                                  std::string_view text, usize min = 0,
                                  usize max = ~usize{0});

[[nodiscard]] double require_f64(const char* tool, const char* flag,
                                 std::string_view text, double min,
                                 double max);

}  // namespace kvx::cli
