// Deterministic pseudo-random generators for tests and benchmarks.
//
// Tests must be reproducible, so we use a fixed, well-known generator
// (SplitMix64) rather than std::random_device-seeded engines.
#pragma once

#include "kvx/common/types.hpp"

namespace kvx {

/// SplitMix64 — tiny, fast, full-period 64-bit generator.
/// Suitable for generating test states; NOT cryptographically secure.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr u64 next() noexcept {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Next 32-bit value.
  constexpr u32 next32() noexcept { return static_cast<u32>(next() >> 32); }

  /// Uniform value in [0, bound). `bound` must be nonzero.
  constexpr u64 below(u64 bound) noexcept { return next() % bound; }

 private:
  u64 state_;
};

}  // namespace kvx
