// Small string utilities used by the assembler and report printers.
// (GCC 12 lacks <format>; these cover what we need.)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx {

/// Strip leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// Split into non-empty whitespace-separated tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// ASCII lower-case copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace kvx
