// Hex encoding/decoding helpers (test vectors, digests, disassembly).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx {

/// Lower-case hex encoding of a byte span ("" for empty input).
[[nodiscard]] std::string to_hex(std::span<const u8> bytes);

/// Decode a hex string (case-insensitive, optional "0x" prefix).
/// Throws kvx::Error on odd length or non-hex characters.
[[nodiscard]] std::vector<u8> from_hex(std::string_view hex);

/// Format a 64-bit word as "0x%016x".
[[nodiscard]] std::string hex64(u64 v);

/// Format a 32-bit word as "0x%08x".
[[nodiscard]] std::string hex32(u32 v);

}  // namespace kvx
