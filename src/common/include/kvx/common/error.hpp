// Error reporting for the KVX libraries.
//
// Policy (per C++ Core Guidelines E.2/E.14): throw a dedicated exception type
// for violations of preconditions that depend on *input* (bad assembly, bad
// instruction encodings, out-of-range simulator accesses), and use the CHECK
// macros for internal invariants that indicate a programming error.
#pragma once

#include <stdexcept>
#include <string>

namespace kvx {

/// Base exception for all recoverable KVX errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed assembly source (unknown mnemonic, bad operand, duplicate label).
class AsmError : public Error {
 public:
  explicit AsmError(const std::string& what) : Error("asm: " + what) {}
};

/// Invalid or unsupported machine-code encoding.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// Runtime fault raised by the simulated processor (misaligned access,
/// out-of-bounds memory, illegal instruction, watchdog expiry).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim: " + what) {}
};

[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& msg);

}  // namespace kvx

/// Internal invariant check: always on (hardware models must never run wedged).
#define KVX_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) {                                          \
      ::kvx::fail_check(#expr, __FILE__, __LINE__, "");     \
    }                                                       \
  } while (false)

#define KVX_CHECK_MSG(expr, msg)                            \
  do {                                                      \
    if (!(expr)) {                                          \
      ::kvx::fail_check(#expr, __FILE__, __LINE__, (msg));  \
    }                                                       \
  } while (false)
