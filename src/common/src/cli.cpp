#include "kvx/common/cli.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace kvx::cli {

std::optional<u64> parse_u64(std::string_view text, u64 min, u64 max) {
  int base = 10;
  std::string_view digits = text;
  if (digits.size() > 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    base = 16;
    digits.remove_prefix(2);
  }
  if (digits.empty()) return std::nullopt;
  // from_chars accepts no sign for unsigned types, no whitespace and no
  // locale — exactly the strictness we want; we only add the completeness
  // check (ptr must consume the whole token).
  u64 value = 0;
  const char* first = digits.data();
  const char* last = digits.data() + digits.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  if (value < min || value > max) return std::nullopt;
  return value;
}

std::optional<unsigned> parse_unsigned(std::string_view text, unsigned min,
                                       unsigned max) {
  const auto v = parse_u64(text, min, max);
  if (!v.has_value()) return std::nullopt;
  return static_cast<unsigned>(*v);
}

std::optional<double> parse_f64(std::string_view text, double min,
                                double max) {
  if (text.empty()) return std::nullopt;
  // strtod over a NUL-terminated copy: GCC 12's from_chars<double> exists,
  // but strtod keeps this compilable on older standard libraries too.
  const std::string copy(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (errno == ERANGE || end != copy.c_str() + copy.size()) {
    return std::nullopt;
  }
  if (!std::isfinite(value) || value < min || value > max) {
    return std::nullopt;
  }
  return value;
}

namespace {

[[noreturn]] void usage_exit(const char* tool, const char* flag,
                             std::string_view text, const std::string& range) {
  std::fprintf(stderr, "%s: %s expects %s (got '%.*s')\n", tool, flag,
               range.c_str(), static_cast<int>(text.size()), text.data());
  std::exit(2);
}

std::string u64_range(u64 min, u64 max) {
  char buf[96];
  if (max == ~u64{0}) {
    std::snprintf(buf, sizeof buf, "an integer >= %llu",
                  static_cast<unsigned long long>(min));
  } else {
    std::snprintf(buf, sizeof buf, "an integer in [%llu, %llu]",
                  static_cast<unsigned long long>(min),
                  static_cast<unsigned long long>(max));
  }
  return buf;
}

}  // namespace

u64 require_u64(const char* tool, const char* flag, std::string_view text,
                u64 min, u64 max) {
  const auto v = parse_u64(text, min, max);
  if (!v.has_value()) usage_exit(tool, flag, text, u64_range(min, max));
  return *v;
}

unsigned require_unsigned(const char* tool, const char* flag,
                          std::string_view text, unsigned min, unsigned max) {
  return static_cast<unsigned>(require_u64(tool, flag, text, min, max));
}

usize require_usize(const char* tool, const char* flag, std::string_view text,
                    usize min, usize max) {
  return static_cast<usize>(require_u64(tool, flag, text, min, max));
}

double require_f64(const char* tool, const char* flag, std::string_view text,
                   double min, double max) {
  const auto v = parse_f64(text, min, max);
  if (!v.has_value()) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "a number in [%g, %g]", min, max);
    usage_exit(tool, flag, text, buf);
  }
  return *v;
}

}  // namespace kvx::cli
