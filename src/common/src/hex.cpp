#include "kvx/common/hex.hpp"

#include <cstdio>

#include "kvx/common/error.hpp"

namespace kvx {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(std::span<const u8> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (u8 b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<u8> from_hex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    throw Error("from_hex: odd-length hex string");
  }
  std::vector<u8> out;
  out.reserve(hex.size() / 2);
  for (usize i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw Error("from_hex: invalid hex character");
    }
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return out;
}

std::string hex64(u64 v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(u32 v) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace kvx
