#include "kvx/common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace kvx {

std::string_view trim(std::string_view s) {
  usize b = 0;
  usize e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  usize start = 0;
  for (usize i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  usize i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    usize start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<usize>(n));
    std::vsnprintf(out.data(), static_cast<usize>(n) + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace kvx
