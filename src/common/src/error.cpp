#include "kvx/common/error.hpp"

#include <sstream>

namespace kvx {

void fail_check(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "internal check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace kvx
