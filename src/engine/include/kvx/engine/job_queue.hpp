// MPMC job queue for the batch hashing engine.
//
// Deliberately a mutex+condvar queue (the ISSUE's "v1" choice): every
// operation is a handful of nanoseconds next to a multi-thousand-cycle
// simulator dispatch, and the simple locking discipline is trivially
// ThreadSanitizer-clean. Workers pop *runs* of jobs (pop_up_to) so one
// wakeup fills all SN accelerator lanes.
#pragma once

#include <condition_variable>
#include <mutex>
#include <deque>
#include <vector>

#include "kvx/engine/job.hpp"

namespace kvx::engine {

/// A submitted job tagged with its submission-order sequence id and the
/// steady-clock submit timestamp (for the engine's latency percentiles).
struct QueuedJob {
  u64 seq = 0;
  u64 submit_ns = 0;
  HashJob job;
};

class JobQueue {
 public:
  /// `max_depth` = 0 means unbounded; otherwise push() blocks while the
  /// queue holds max_depth items (backpressure for streaming producers).
  explicit JobQueue(usize max_depth = 0) : max_depth_(max_depth) {}

  /// Enqueue one job. Returns false (and drops the job) if the queue has
  /// been closed; blocks while a bounded queue is full.
  bool push(QueuedJob item);

  /// Pop between 1 and `max_items` jobs into `out` (cleared first). Blocks
  /// until at least one job is available or the queue is closed and empty;
  /// returns the number popped (0 only on closed-and-drained).
  usize pop_up_to(usize max_items, std::vector<QueuedJob>& out);

  /// Close the queue: push() starts failing, consumers drain what remains
  /// and then see 0 from pop_up_to().
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] usize depth() const;
  /// Maximum depth ever observed (sampled after each push).
  [[nodiscard]] usize high_water() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueuedJob> items_;
  usize max_depth_;
  usize high_water_ = 0;
  bool closed_ = false;
};

}  // namespace kvx::engine
