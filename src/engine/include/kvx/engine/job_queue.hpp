// Sharded lock-free job queue for the batch hashing engine.
//
// v1 was a single mutex+condvar MPMC queue; BENCH_fused.json showed it is
// exactly where host-thread scaling died (flat-to-declining fused MB/s from
// 1 to 8 threads). v2 shards the queue: one bounded lock-free MPMC ring
// (kvx/engine/job_ring.hpp) per worker. Producers distribute jobs over the
// rings round-robin — in contiguous *chunks* for bulk submits, so each
// worker still pops runs that group well by dispatch signature — and every
// worker pops its own ring first, then steals whole runs from its victims
// when it runs dry. Push/pop fast paths are a CAS on the owning ring plus
// a handful of relaxed atomics; the only mutex left is a parking lot for
// workers with nothing to do and producers blocked on backpressure, entered
// exclusively when the fast path has already failed.
//
// Blocking semantics match v1 exactly:
//  * push() blocks while a bounded queue is full (strict bound: a CAS
//    ticket on size_ is taken BEFORE touching any ring, so the observed
//    depth can never exceed max_depth) and returns false after close().
//  * pop_bulk() blocks until jobs are available, returning 0 only once the
//    queue is closed AND fully drained.
//  * close() wakes every parked thread.
//
// Wakeups use an eventcount-style protocol (sleeper count + seq_cst fences
// on both sides) with a bounded wait as a belt-and-braces backstop, so a
// lost wakeup can cost at most one park interval, never a hang.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "kvx/engine/job_ring.hpp"

namespace kvx::engine {

class ShardedJobQueue {
 public:
  /// `shards` rings (>= 1, typically one per worker). `max_depth` = 0 means
  /// no global bound; otherwise push() blocks while `max_depth` jobs are in
  /// flight. Per-ring capacity is sized from the bound (or a default large
  /// enough that producers only park when every worker is saturated).
  explicit ShardedJobQueue(usize shards, usize max_depth = 0);

  ShardedJobQueue(const ShardedJobQueue&) = delete;
  ShardedJobQueue& operator=(const ShardedJobQueue&) = delete;

  /// Enqueue one job on the next round-robin shard (falling over to any
  /// shard with space). Blocks while the queue is full; returns false (and
  /// leaves the job unconsumed) once the queue is closed.
  bool push(QueuedJob item);

  /// Enqueue a batch, consuming `items` front to back: contiguous chunks of
  /// `chunk` jobs go to consecutive shards, and sleeping workers are woken
  /// once per chunk instead of once per job. Returns the number actually
  /// pushed — short only if the queue was closed mid-batch (items[n...]
  /// are left unconsumed for the caller to retire).
  usize push_bulk(std::span<QueuedJob> items, usize chunk);

  /// Pop between 1 and `max_items` jobs into `out` (cleared first): a run
  /// from the worker's own shard, or — only when that is empty — a stolen
  /// run from the first non-empty victim. Blocks until at least one job is
  /// available; returns 0 only on closed-and-drained.
  usize pop_bulk(usize worker, usize max_items, std::vector<QueuedJob>& out);

  /// Close the queue: push() starts failing, consumers drain what remains
  /// and then see 0 from pop_bulk(). Idempotent.
  void close();

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }
  /// Jobs currently in flight (pushed, not yet popped). Exact at quiescent
  /// points; see shard_depth() for the per-ring split.
  [[nodiscard]] usize depth() const noexcept {
    return static_cast<usize>(size_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] usize shard_count() const noexcept { return rings_.size(); }
  [[nodiscard]] usize shard_depth(usize shard) const noexcept {
    return rings_[shard]->depth();
  }
  /// Maximum total depth ever observed (strict: maintained from the size_
  /// ticket taken before each insert, so a bounded queue's high water can
  /// never exceed max_depth).
  [[nodiscard]] usize high_water() const noexcept {
    return static_cast<usize>(high_water_.load(std::memory_order_relaxed));
  }

 private:
  /// Take a size ticket (strict bound when bounded). Returns false when the
  /// queue is at max_depth; never blocks.
  bool try_reserve() noexcept;
  void release(u64 n) noexcept {
    size_.fetch_sub(n, std::memory_order_relaxed);
  }
  /// Try every ring starting from the round-robin cursor. On success the
  /// item is consumed; on failure (all rings full) it is left intact.
  bool try_push_any(QueuedJob& item) noexcept;
  void wake_consumers(bool all) noexcept;
  void wake_producers() noexcept;
  /// Park until `retry` might succeed (bounded wait; spurious wakeups fine).
  void park_consumer();
  void park_producer();

  std::vector<std::unique_ptr<JobRing>> rings_;
  usize max_depth_;

  /// Hot shared counters, one cache line each, so a producer bumping the
  /// cursor never invalidates the consumers' view of size_.
  alignas(64) std::atomic<u64> cursor_{0};      ///< round-robin shard pick
  alignas(64) std::atomic<u64> size_{0};        ///< jobs in flight
  alignas(64) std::atomic<u64> high_water_{0};
  alignas(64) std::atomic<bool> closed_{false};

  /// Parking lot (slow path only): counts are written under park_mutex_ so
  /// a waker that sees sleepers > 0 after its seq_cst fence can notify
  /// without racing the registration.
  std::atomic<u32> sleeping_consumers_{0};
  std::atomic<u32> sleeping_producers_{0};
  std::mutex park_mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

}  // namespace kvx::engine
