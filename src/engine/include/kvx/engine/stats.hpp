// Statistics reported by the batch hashing engine.
#pragma once

#include <string>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::engine {

/// Per-worker-shard counters. A shard owns one simulated accelerator
/// (ParallelSha3) and processes whole job batches at a time.
struct ShardStats {
  u64 jobs = 0;               ///< jobs completed by this shard
  u64 bytes = 0;              ///< message bytes hashed
  u64 dispatches = 0;         ///< batches popped from the queue
  u64 sim_cycles = 0;         ///< simulated accelerator cycles consumed
  u64 permutations = 0;       ///< Keccak state-permutations performed
  u64 host_ns = 0;            ///< host wall time spent inside dispatches
};

/// Submit-to-retire job latency percentiles (host wall time).
struct LatencyStats {
  u64 count = 0;   ///< retired jobs sampled
  u64 p50_ns = 0;  ///< median latency
  u64 p99_ns = 0;  ///< 99th-percentile latency
};

/// Whole-engine counters.
struct EngineStats {
  u64 submitted = 0;          ///< jobs accepted by submit()
  u64 completed = 0;          ///< jobs with a result available
  usize queue_high_water = 0; ///< max queue depth observed since start
  /// Execution backend the shard accelerators run
  /// ("interpreter"/"trace"/"fused"); the active one, i.e. already
  /// downgraded if trace compilation failed.
  std::string backend;
  /// Trace-record fraction covered by super-kernels; 0 unless fused.
  double fusion_coverage = 0.0;
  /// Host time compiling (and fusing) the execution trace, if any.
  u64 backend_compile_ns = 0;
  LatencyStats latency;
  std::vector<ShardStats> shards;

  [[nodiscard]] ShardStats totals() const noexcept {
    ShardStats t;
    for (const ShardStats& s : shards) {
      t.jobs += s.jobs;
      t.bytes += s.bytes;
      t.dispatches += s.dispatches;
      t.sim_cycles += s.sim_cycles;
      t.permutations += s.permutations;
      t.host_ns += s.host_ns;
    }
    return t;
  }
};

}  // namespace kvx::engine
