// Statistics reported by the batch hashing engine.
#pragma once

#include <string>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/obs/step_cycles.hpp"

namespace kvx::engine {

/// Per-worker-shard counters. A shard owns one simulated accelerator
/// (ParallelSha3) and processes whole job batches at a time.
struct ShardStats {
  u64 jobs = 0;               ///< jobs completed (successfully) by this shard
  u64 failures = 0;           ///< jobs retired with a per-job error
  u64 fallbacks = 0;          ///< backend demotions (fused→trace→interpreter)
  u64 bytes = 0;              ///< message bytes hashed
  u64 dispatches = 0;         ///< batches popped from the queue
  u64 sim_cycles = 0;         ///< simulated accelerator cycles consumed
  u64 permutations = 0;       ///< Keccak state-permutations performed
  u64 host_ns = 0;            ///< host wall time spent inside dispatches
  /// Per-step attribution of sim_cycles (θ/ρπ/χι/absorb/other);
  /// step_cycles.total == sim_cycles, exactly, on every backend.
  obs::StepCycleStats step_cycles;
};

/// Submit-to-retire job latency percentiles (host wall time).
///
/// Percentiles are computed from a fixed-size reservoir (65536 samples,
/// Algorithm R): every retired job is observed, and once the reservoir is
/// full each new observation replaces a uniformly random slot, so the
/// sample stays an unbiased draw from ALL jobs — the tail is not biased
/// toward early jobs. `count` is the number of jobs observed (not the
/// reservoir size) and `max_ns` is tracked exactly, outside the reservoir.
struct LatencyStats {
  u64 count = 0;    ///< retired jobs observed
  u64 p50_ns = 0;   ///< median latency
  u64 p99_ns = 0;   ///< 99th-percentile latency
  u64 p999_ns = 0;  ///< 99.9th-percentile latency
  u64 max_ns = 0;   ///< worst-case latency (exact, not sampled)
};

/// Rates derived from the engine counters over a wall-time window. The ONE
/// place throughput arithmetic lives — tools and benches must not re-derive
/// bytes/s or perms/s from raw counters themselves.
struct ThroughputStats {
  double jobs_per_sec = 0.0;
  double bytes_per_sec = 0.0;
  double mb_per_sec = 0.0;        ///< bytes_per_sec / 1e6
  double perms_per_sec = 0.0;     ///< Keccak state-permutations per second
  double sim_cycles_per_sec = 0.0;
};

/// Whole-engine counters.
struct EngineStats {
  u64 submitted = 0;          ///< jobs accepted by submit()
  u64 completed = 0;          ///< jobs retired successfully (digest available)
  /// Jobs retired with a per-job error. Invariant, held exactly at every
  /// quiescent point (after drain()/drain_results()):
  ///   submitted == completed + failed
  u64 failed = 0;
  usize queue_high_water = 0; ///< max queue depth observed since start
  /// Jobs in flight per queue shard at snapshot time (one ring per worker;
  /// all zero at quiescent points).
  std::vector<usize> queue_shard_depths;
  /// Execution backend the shard accelerators run
  /// ("interpreter"/"trace"/"fused"/"host-simd"/"jit"); the active one,
  /// i.e. already downgraded if trace compilation or lowering failed.
  std::string backend;
  /// Backend that actually completed the most recent dispatch — equal to
  /// `backend` unless that dispatch demoted mid-chain (fail-soft retry).
  std::string effective_backend;
  /// Host vector ISA the host-simd tier dispatches to after CPUID
  /// detection ("scalar"/"portable"/"avx2"/"avx512") — for the jit tier,
  /// the ISA the native code was emitted for; "" unless the effective
  /// backend is host-simd or jit.
  std::string host_simd_isa;
  /// Trace-record fraction covered by super-kernels; 0 unless fused.
  double fusion_coverage = 0.0;
  /// Trace-record fraction lowered to host intrinsics; 0 unless host-simd.
  double host_simd_coverage = 0.0;
  /// Per-shard native code bytes of the jit compilation (page-rounded W^X
  /// buffer, shared across shards via the trace cache); 0 unless jit.
  u64 jit_code_bytes = 0;
  /// Host time compiling (and fusing) the execution trace, if any.
  u64 backend_compile_ns = 0;
  /// Wall time since engine construction (the default throughput() window).
  u64 elapsed_ns = 0;
  LatencyStats latency;
  std::vector<ShardStats> shards;

  [[nodiscard]] ShardStats totals() const noexcept {
    ShardStats t;
    for (const ShardStats& s : shards) {
      t.jobs += s.jobs;
      t.failures += s.failures;
      t.fallbacks += s.fallbacks;
      t.bytes += s.bytes;
      t.dispatches += s.dispatches;
      t.sim_cycles += s.sim_cycles;
      t.permutations += s.permutations;
      t.host_ns += s.host_ns;
      t.step_cycles += s.step_cycles;
    }
    return t;
  }

  /// Derived rates over an explicit window (benches timing a specific
  /// phase), or over elapsed_ns by default (long-running servers).
  [[nodiscard]] ThroughputStats throughput(u64 over_ns) const noexcept;
  [[nodiscard]] ThroughputStats throughput() const noexcept {
    return throughput(elapsed_ns);
  }
};

/// Render per-step cycle attribution as an aligned table (one line per
/// step, cycles + share of total), for --stats output and reports.
[[nodiscard]] std::string format_step_cycles(const obs::StepCycleStats& s);

}  // namespace kvx::engine
