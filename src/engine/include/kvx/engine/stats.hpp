// Statistics reported by the batch hashing engine.
#pragma once

#include <string>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::engine {

/// Per-worker-shard counters. A shard owns one simulated accelerator
/// (ParallelSha3) and processes whole job batches at a time.
struct ShardStats {
  u64 jobs = 0;               ///< jobs completed by this shard
  u64 bytes = 0;              ///< message bytes hashed
  u64 dispatches = 0;         ///< batches popped from the queue
  u64 sim_cycles = 0;         ///< simulated accelerator cycles consumed
  u64 permutations = 0;       ///< Keccak state-permutations performed
  u64 host_ns = 0;            ///< host wall time spent inside dispatches
};

/// Whole-engine counters.
struct EngineStats {
  u64 submitted = 0;          ///< jobs accepted by submit()
  u64 completed = 0;          ///< jobs with a result available
  usize queue_high_water = 0; ///< max queue depth observed since start
  /// Execution backend the shard accelerators run ("interpreter"/"trace");
  /// the active one, i.e. already downgraded if trace compilation failed.
  std::string backend;
  std::vector<ShardStats> shards;

  [[nodiscard]] ShardStats totals() const noexcept {
    ShardStats t;
    for (const ShardStats& s : shards) {
      t.jobs += s.jobs;
      t.bytes += s.bytes;
      t.dispatches += s.dispatches;
      t.sim_cycles += s.sim_cycles;
      t.permutations += s.permutations;
      t.host_ns += s.host_ns;
    }
    return t;
  }
};

}  // namespace kvx::engine
