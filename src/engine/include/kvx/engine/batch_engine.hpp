// BatchHashEngine — host-parallel batch hashing on top of the paper's
// SIMD-parallel accelerator.
//
// The paper parallelizes *inside* one vector register file: SN ∈ {1, 3, 6}
// Keccak states permute in lockstep per accelerator. This engine adds the
// second level the ROADMAP's throughput goal needs: a pool of worker shards,
// each owning an independent simulated accelerator (ParallelSha3), fed by a
// sharded lock-free scheduler — one bounded MPMC ring per worker, producers
// distributing round-robin, idle workers stealing runs from their victims
// (kvx/engine/job_queue.hpp). Total parallelism = threads × SN.
//
// Guarantees:
//  * Deterministic ordering — every job carries a dense sequence id and
//    drain()/drain_results()/drain_batch() return outcomes in submission
//    order, independent of worker scheduling and stealing. Digests are
//    bit-identical to a single-threaded run.
//  * Fail-soft isolation — jobs fail individually. A malformed job, an
//    injected fault or a dispatch error marks ONLY the jobs of that
//    dispatch group as failed; batch-mates and every other job complete
//    normally. Invariant: submitted == completed + failed, exactly, at
//    every quiescent point (mirrored by the Prometheus counters).
//  * Lane filling — workers pop runs of jobs (batch_window, default 4·SN)
//    so each simulator dispatch can fill all SN lanes; submit_batch()
//    pushes contiguous chunks of that size per queue shard so runs group
//    well by dispatch signature.
//  * Graceful shutdown — close() stops intake; queued jobs still complete.
//    The destructor closes and joins; nothing is dropped.
//  * Backpressure — a bounded queue (max_queue) blocks submit() instead of
//    buffering without limit.
//
// See docs/engine.md for the architecture, failure semantics and sizing
// guidance.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/engine/job.hpp"
#include "kvx/engine/job_queue.hpp"
#include "kvx/engine/stats.hpp"

namespace kvx::obs {
class Gauge;
class Summary;
namespace pm {
struct EngineMirror;
struct EngineShardMirror;
}  // namespace pm
}  // namespace kvx::obs

namespace kvx::engine {

struct EngineConfig {
  /// Worker shards, each with its own simulated accelerator.
  unsigned threads = 1;
  /// Per-shard accelerator configuration (SN = ele_num / 5). Set
  /// accel.fault_injector for deterministic fault injection; all shards
  /// share the injector's decision stream.
  core::VectorKeccakConfig accel{core::Arch::k64Lmul8, 15, 24};
  /// Per-shard ParallelSha3 options (e.g. on-device absorb).
  core::ParallelSha3Options accel_options{};
  /// Jobs a worker grabs per queue pop; 0 = 4 × SN (enough to fill the
  /// lanes even with some length mismatch).
  usize batch_window = 0;
  /// Queue bound for submit() backpressure; 0 = unbounded.
  usize max_queue = 0;
  /// Pin worker i to host CPU i mod hardware_concurrency (Linux only,
  /// best-effort). Helps cache locality on dedicated hosts; leave off on
  /// shared machines where the OS scheduler should keep the freedom.
  bool pin_workers = false;
};

class BatchHashEngine {
 public:
  explicit BatchHashEngine(const EngineConfig& config);
  ~BatchHashEngine();

  BatchHashEngine(const BatchHashEngine&) = delete;
  BatchHashEngine& operator=(const BatchHashEngine&) = delete;

  /// Submit one job; returns its sequence id (dense, starting at 0).
  ///
  /// Malformed jobs (variable-output algorithm without out_len,
  /// fixed-output algorithm with a mismatching out_len, key material on a
  /// non-KMAC job) are accepted and retired immediately as per-job
  /// failures — they get a sequence id and a JobResult carrying the
  /// validation error, and count toward the failed totals. Only submitting
  /// after close() throws.
  u64 submit(HashJob job);

  /// Bulk submit: one sequence-id reservation, one metrics update and one
  /// validation pass for the whole span, then chunked round-robin pushes
  /// across the queue shards — the amortized path high-rate producers
  /// should use. Returns the sequence id of the first job (the span's jobs
  /// occupy the dense range [first, first + jobs.size())); for an empty
  /// span, the id the next submitted job would get. Safe to call from many
  /// producer threads concurrently: each span gets a contiguous id range.
  u64 submit_batch(std::span<const HashJob> jobs);

  /// Submit a span of jobs; returns the sequence id of the first. (Alias
  /// of submit_batch, kept for source compatibility.)
  u64 submit_all(std::span<const HashJob> jobs) { return submit_batch(jobs); }

  /// Block until every job submitted so far has retired, then *append* all
  /// outcomes not yet collected to `out` in submission order — one
  /// JobResult per job, failed or not — reusing the caller's buffer.
  /// Returns the number appended. The engine stays usable for further
  /// submissions afterwards (unless closed).
  usize drain_batch(std::vector<JobResult>& out);

  /// Non-blocking drain for event loops: append the contiguous prefix of
  /// already-retired outcomes (in submission order) to `out` and return the
  /// number appended — possibly 0, never waiting. `max` != 0 caps the
  /// collection (bounding event-loop work per wakeup). A job whose result
  /// is still pending stops the prefix even if later jobs have retired, so
  /// ordering is identical to the blocking drains.
  usize try_drain_ready(std::vector<JobResult>& out, usize max = 0);

  /// Register a completion-notification fd (an eventfd or pipe write end):
  /// after every retirement the engine write()s a u64 of 1 to it, so an
  /// epoll/poll loop can sleep on the fd and call try_drain_ready() on
  /// wakeup instead of ever blocking in drain. -1 (the default) disables.
  /// The caller owns the fd and must keep it open while set; writes that
  /// fail (EAGAIN on a saturated eventfd counter is harmless — the edge is
  /// already pending) are ignored. Thread-safe.
  void set_notify_fd(int fd) noexcept {
    notify_fd_.store(fd, std::memory_order_release);
  }

  /// Block until every job submitted so far has retired, then return all
  /// outcomes not yet collected, in submission order — one JobResult per
  /// job, failed or not. The engine stays usable for further submissions
  /// afterwards (unless closed).
  std::vector<JobResult> drain_results();

  /// Digest-only convenience over drain_results(): throws Error if ANY
  /// job failed (message carries the failure count and the first error),
  /// otherwise returns the digests in submission order.
  std::vector<std::vector<u8>> drain();

  /// Block until job `seq` retires and return a copy of its outcome.
  /// Throws Error if `seq` was never issued or its result was already
  /// collected by a drain call.
  JobResult result(u64 seq);

  /// Stop accepting new jobs. Already-queued jobs still complete; call
  /// drain()/drain_results() to collect them. Idempotent.
  void close();

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] unsigned lanes_per_shard() const noexcept {
    return config_.accel.sn();
  }
  /// Jobs currently queued (pushed, not yet popped by a worker) — the
  /// lock-free backpressure signal servers compare against max_queue; see
  /// also in_flight() for queued + executing.
  [[nodiscard]] usize queue_depth() const noexcept { return queue_.depth(); }
  /// Jobs submitted but not yet retired (queued or executing). Takes the
  /// state mutex briefly; cheap enough for per-event-loop-iteration use.
  [[nodiscard]] u64 in_flight() const {
    std::lock_guard lock(state_mutex_);
    return submitted_ - retired_;
  }
  /// Snapshot of the engine counters (thread-safe at any time).
  [[nodiscard]] EngineStats stats() const;

 private:
  /// Cache-line-aligned so one shard's stats churn never false-shares with
  /// its neighbour (shards are also separately heap-allocated).
  struct alignas(64) Shard {
    std::unique_ptr<core::ParallelSha3> accel;
    ShardStats stats;        ///< guarded by state_mutex_
    /// Cumulative accel->backend_fallbacks() already accounted for, so
    /// dispatch-time demotions are attributed per batch by diffing the
    /// accelerator's monotone counter (worker thread only).
    u64 fallbacks_seen = 0;
    unsigned index = 0;      ///< dense shard id (flight-recorder dispatch tag)
    /// Post-mortem mirror slot this shard keeps in sync (null when the
    /// engine got no mirror, or for shards beyond the mirror's capacity).
    obs::pm::EngineShardMirror* mirror = nullptr;
  };

  void worker_loop(unsigned index, Shard& shard);
  void process_batch(Shard& shard, std::vector<QueuedJob>& batch);
  /// Retire every job of `batch` as failed with the same error (the
  /// worker-loop backstop for non-dispatch failures).
  void fail_batch(Shard& shard, const std::vector<QueuedJob>& batch,
                  const char* what);
  /// Record one submit-to-retire latency sample (histogram, reservoir,
  /// exact max). `flight_seq` (if nonzero) becomes the histogram bucket's
  /// exemplar when the sample is its new maximum. Caller holds state_mutex_.
  void record_latency_locked(u64 sample_ns, u64 flight_seq);
  /// Mark job `seq` failed and retired (slot write + accounting + metrics
  /// + latency stamp + flight event). Caller holds state_mutex_.
  void fail_job_locked(u64 seq, u64 submit_ns, std::string error);
  /// Push submitted/completed/failed into the post-mortem mirror (relaxed
  /// stores; no-op without a mirror). Caller holds state_mutex_.
  void sync_mirror_locked() noexcept;
  /// Poke the completion-notification fd, if one is set (one u64 write;
  /// failures ignored). Called after every retirement batch.
  void notify_retire() noexcept;

  EngineConfig config_;
  usize window_;
  ShardedJobQueue queue_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  /// Tokens for the callback-bound queue-depth gauges (aggregate + one per
  /// queue shard), unbound in the destructor before queue_ dies.
  std::vector<std::pair<obs::Gauge*, u64>> depth_gauges_;
  /// Callback-bound latency summary (p50/p99/p99.9 from the reservoir),
  /// unbound in the destructor like the gauges.
  obs::Summary* latency_summary_ = nullptr;
  u64 latency_summary_token_ = 0;
  /// Post-mortem stat mirror (null when kMaxEngines are already live);
  /// released in the destructor.
  obs::pm::EngineMirror* mirror_ = nullptr;
  /// Completion-notification fd (eventfd/pipe), -1 = disabled. The caller
  /// owns it; see set_notify_fd().
  std::atomic<int> notify_fd_{-1};

  mutable std::mutex state_mutex_;
  std::condition_variable all_done_;
  u64 submitted_ = 0;   ///< total jobs accepted
  u64 retired_ = 0;     ///< jobs with an outcome recorded (ok or failed)
  u64 failed_ = 0;      ///< subset of retired_ carrying a per-job error
  u64 collected_ = 0;   ///< results already returned by drain calls
  bool closed_ = false;
  u64 backend_compile_ns_ = 0;  ///< trace compile+fuse time at construction
  std::chrono::steady_clock::time_point start_time_;
  /// Submit-to-retire latency reservoir (Algorithm R; guarded by
  /// state_mutex_): an unbiased fixed-size sample of ALL retired jobs —
  /// failed jobs are stamped too, so percentiles are never skewed by
  /// dropping failures. See LatencyStats in stats.hpp.
  std::vector<u64> latency_ns_;
  u64 latency_observed_ = 0;  ///< jobs offered to the reservoir
  u64 latency_max_ns_ = 0;    ///< exact maximum (not sampled)
  u64 latency_sum_ns_ = 0;    ///< exact sum (summary _sum series)
  SplitMix64 latency_rng_{0x6B76785F6C6174ull};  ///< deterministic slots
  /// Outcome of job seq = collected_ + i at index i; filled out of order
  /// by workers, returned in order by drain calls. done_[i] flags slot i
  /// as retired (results_[i].ok() cannot distinguish "pending" from
  /// "succeeded" on its own).
  std::vector<JobResult> results_;
  std::vector<u8> done_;
};

/// One-shot convenience: run `jobs` through a temporary engine and return
/// the digests in submission order (throws on any per-job failure, like
/// drain()).
[[nodiscard]] std::vector<std::vector<u8>> run_batch(
    const EngineConfig& config, std::span<const HashJob> jobs);

}  // namespace kvx::engine
