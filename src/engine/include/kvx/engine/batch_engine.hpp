// BatchHashEngine — host-parallel batch hashing on top of the paper's
// SIMD-parallel accelerator.
//
// The paper parallelizes *inside* one vector register file: SN ∈ {1, 3, 6}
// Keccak states permute in lockstep per accelerator. This engine adds the
// second level the ROADMAP's throughput goal needs: a pool of worker shards,
// each owning an independent simulated accelerator (ParallelSha3), consuming
// jobs from a shared MPMC queue. Total parallelism = threads × SN.
//
// Guarantees:
//  * Deterministic ordering — every job carries a dense sequence id and
//    drain() returns digests in submission order, independent of worker
//    scheduling. Digests are bit-identical to a single-threaded run.
//  * Lane filling — workers pop runs of jobs (batch_window, default 4·SN)
//    so each simulator dispatch can fill all SN lanes.
//  * Graceful shutdown — close() stops intake; queued jobs still complete.
//    The destructor closes and joins; nothing is dropped.
//  * Backpressure — a bounded queue (max_queue) blocks submit() instead of
//    buffering without limit.
//
// See docs/engine.md for the architecture and sizing guidance.
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/engine/job.hpp"
#include "kvx/engine/job_queue.hpp"
#include "kvx/engine/stats.hpp"

namespace kvx::engine {

struct EngineConfig {
  /// Worker shards, each with its own simulated accelerator.
  unsigned threads = 1;
  /// Per-shard accelerator configuration (SN = ele_num / 5).
  core::VectorKeccakConfig accel{core::Arch::k64Lmul8, 15, 24};
  /// Per-shard ParallelSha3 options (e.g. on-device absorb).
  core::ParallelSha3Options accel_options{};
  /// Jobs a worker grabs per queue pop; 0 = 4 × SN (enough to fill the
  /// lanes even with some length mismatch).
  usize batch_window = 0;
  /// Queue bound for submit() backpressure; 0 = unbounded.
  usize max_queue = 0;
};

class BatchHashEngine {
 public:
  explicit BatchHashEngine(const EngineConfig& config);
  ~BatchHashEngine();

  BatchHashEngine(const BatchHashEngine&) = delete;
  BatchHashEngine& operator=(const BatchHashEngine&) = delete;

  /// Submit one job; returns its sequence id (dense, starting at 0).
  /// Throws Error for malformed jobs (variable-output algorithm without
  /// out_len, fixed-output algorithm with a mismatching out_len) and after
  /// close().
  u64 submit(HashJob job);

  /// Submit a span of jobs; returns the sequence id of the first.
  u64 submit_all(std::span<const HashJob> jobs);

  /// Block until every job submitted so far has completed, then return all
  /// digests not yet collected, in submission order. Throws Error if any
  /// worker dispatch failed. The engine stays usable for further
  /// submissions afterwards (unless closed).
  std::vector<std::vector<u8>> drain();

  /// Stop accepting new jobs. Already-queued jobs still complete; call
  /// drain() to collect them. Idempotent.
  void close();

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] unsigned lanes_per_shard() const noexcept {
    return config_.accel.sn();
  }
  /// Snapshot of the engine counters (thread-safe at any time).
  [[nodiscard]] EngineStats stats() const;

 private:
  struct Shard {
    std::unique_ptr<core::ParallelSha3> accel;
    ShardStats stats;  ///< guarded by state_mutex_
  };

  void worker_loop(Shard& shard);
  void process_batch(Shard& shard, std::vector<QueuedJob>& batch);

  EngineConfig config_;
  usize window_;
  JobQueue queue_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;

  mutable std::mutex state_mutex_;
  std::condition_variable all_done_;
  u64 submitted_ = 0;   ///< total jobs accepted
  u64 completed_ = 0;   ///< total jobs finished
  u64 collected_ = 0;   ///< results already returned by drain()
  bool closed_ = false;
  std::string error_;   ///< first worker failure, if any
  u64 backend_compile_ns_ = 0;  ///< trace compile+fuse time at construction
  std::chrono::steady_clock::time_point start_time_;
  /// Submit-to-retire latency reservoir (Algorithm R; guarded by
  /// state_mutex_): an unbiased fixed-size sample of ALL retired jobs.
  /// See LatencyStats in stats.hpp for the sampling contract.
  std::vector<u64> latency_ns_;
  u64 latency_observed_ = 0;  ///< jobs offered to the reservoir
  u64 latency_max_ns_ = 0;    ///< exact maximum (not sampled)
  SplitMix64 latency_rng_{0x6B76785F6C6174ull};  ///< deterministic slots
  /// Digest of job seq = collected_ + i at index i; filled out of order by
  /// workers, returned in order by drain().
  std::vector<std::vector<u8>> results_;
};

/// One-shot convenience: run `jobs` through a temporary engine and return
/// the digests in submission order.
[[nodiscard]] std::vector<std::vector<u8>> run_batch(
    const EngineConfig& config, std::span<const HashJob> jobs);

}  // namespace kvx::engine
