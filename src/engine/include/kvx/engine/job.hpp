// Job model for the host-parallel batch hashing engine.
//
// A HashJob describes one message to hash with one algorithm of the
// accelerated family (FIPS 202 SHA-3/SHAKE or SP 800-185 KMAC). Jobs are
// submitted to a BatchHashEngine, which assigns each a dense sequence id;
// results are always reassembled in submission order, so callers never see
// the scheduling nondeterminism of the worker pool.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/keccak/sha3.hpp"

namespace kvx::engine {

/// Hash algorithms the engine dispatches to the accelerator.
enum class Algo {
  kSha3_224,
  kSha3_256,
  kSha3_384,
  kSha3_512,
  kShake128,
  kShake256,
  kKmac128,
  kKmac256,
};

/// Human-readable name ("SHA3-256", "KMAC128", ...).
[[nodiscard]] std::string_view algo_name(Algo algo) noexcept;

/// The FIPS 202 function underlying an engine algorithm (KMAC128/256 run on
/// the SHAKE128/256 sponge parameters).
[[nodiscard]] constexpr keccak::Sha3Function base_function(Algo algo) noexcept {
  switch (algo) {
    case Algo::kSha3_224: return keccak::Sha3Function::kSha3_224;
    case Algo::kSha3_256: return keccak::Sha3Function::kSha3_256;
    case Algo::kSha3_384: return keccak::Sha3Function::kSha3_384;
    case Algo::kSha3_512: return keccak::Sha3Function::kSha3_512;
    case Algo::kShake128:
    case Algo::kKmac128: return keccak::Sha3Function::kShake128;
    case Algo::kShake256:
    case Algo::kKmac256: return keccak::Sha3Function::kShake256;
  }
  return keccak::Sha3Function::kSha3_256;
}

/// Fixed digest size of an algorithm in bytes; 0 for the variable-output
/// families (SHAKE, KMAC), whose jobs must set HashJob::out_len.
[[nodiscard]] constexpr usize fixed_digest_bytes(Algo algo) noexcept {
  switch (algo) {
    case Algo::kSha3_224: return 28;
    case Algo::kSha3_256: return 32;
    case Algo::kSha3_384: return 48;
    case Algo::kSha3_512: return 64;
    default: return 0;
  }
}

/// One hash request.
struct HashJob {
  Algo algo = Algo::kSha3_256;
  std::vector<u8> message;
  /// Output bytes. 0 means "the algorithm's fixed digest size" and is only
  /// valid for the SHA-3 fixed-output algorithms.
  usize out_len = 0;
  /// KMAC only: key and optional customization string.
  std::vector<u8> key;
  std::vector<u8> customization;

  [[nodiscard]] usize resolved_out_len() const noexcept {
    return out_len != 0 ? out_len : fixed_digest_bytes(algo);
  }
};

/// One entry of a job's demotion path: a backend tier the accelerator tried
/// while producing (or failing) the job, in chain order.
struct TierAttempt {
  /// Backend tier name ("jit", "host-simd", "fused", "trace", "interpreter").
  std::string backend;
  /// Why the tier was rejected or faulted; "" when it succeeded.
  std::string error;
  /// The error came from the deterministic fault injector.
  bool injected = false;
};

/// Outcome of one engine job. Jobs fail individually — a malformed job or a
/// faulted dispatch never discards its batch-mates — so every submitted job
/// always produces exactly one JobResult.
struct JobResult {
  /// The digest; empty when the job failed.
  std::vector<u8> digest;
  /// Failure reason; empty means the job succeeded.
  std::string error;
  /// Execution backend that produced the digest ("interpreter" / "trace" /
  /// "fused"); empty when the job failed before reaching a shard.
  std::string backend;
  /// Failure forensics: every tier the accelerator tried for this job —
  /// construction-time rejections first, then the dispatch chain. Empty for
  /// the common no-demotion success; on a dispatch failure it names each
  /// attempted tier, its error, and whether the fault was injected.
  std::vector<TierAttempt> demotion_path;
  /// Flight-recorder sequence number of this job's retire (or failure)
  /// event; 0 when the recorder was disabled or the job failed pre-shard.
  /// kvx-doctor uses it to window the merged timeline around a job.
  u64 flight_seq = 0;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Compute a job's digest on the host golden model (no accelerator) — the
/// reference the engine's differential tests compare against.
[[nodiscard]] std::vector<u8> host_reference_digest(const HashJob& job);

}  // namespace kvx::engine
