// Bounded lock-free MPMC ring buffer — the per-shard primitive of the
// engine's sharded scheduler (kvx/engine/job_queue.hpp).
//
// Dmitry Vyukov's bounded MPMC queue: each cell carries a sequence number
// that encodes, relative to the head/tail tickets, whether the cell is
// empty, full, or in flight. push and pop are a single CAS on the ticket
// counter plus one release store on the cell — no locks, no unbounded
// spinning against a stalled peer (a try_* that loses its race retries on
// a *different* cell or reports full/empty). All synchronization is on
// std::atomic, so the structure is ThreadSanitizer-clean by construction.
//
// In the engine each worker owns one ring as its primary source (SPSC-like
// in the common case: producers round-robin across shards, the owner pops);
// MPMC semantics are what make work *stealing* by idle workers safe without
// any extra machinery.
#pragma once

#include <atomic>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/engine/job.hpp"

namespace kvx::engine {

/// A submitted job tagged with its submission-order sequence id and the
/// steady-clock submit timestamp (for the engine's latency percentiles).
struct QueuedJob {
  u64 seq = 0;
  u64 submit_ns = 0;
  HashJob job;
};

/// Smallest power of two >= n (and >= 2), the ring capacity granularity.
[[nodiscard]] constexpr usize ring_capacity_for(usize n) noexcept {
  usize cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

class JobRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit JobRing(usize capacity)
      : cells_(ring_capacity_for(capacity)),
        mask_(cells_.size() - 1) {
    for (usize i = 0; i < cells_.size(); ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  JobRing(const JobRing&) = delete;
  JobRing& operator=(const JobRing&) = delete;

  /// Non-blocking enqueue. Returns false when the ring is full; `item` is
  /// only consumed (moved from) on success.
  bool try_push(QueuedJob&& item) noexcept {
    u64 pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const u64 seq = cell.seq.load(std::memory_order_acquire);
      const i64 dif = static_cast<i64>(seq) - static_cast<i64>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.item = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Non-blocking dequeue. Returns false when the ring is empty.
  bool try_pop(QueuedJob& out) noexcept {
    u64 pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const u64 seq = cell.seq.load(std::memory_order_acquire);
      const i64 dif = static_cast<i64>(seq) - static_cast<i64>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.item);
          cell.item = QueuedJob{};  // release the job's heap buffers eagerly
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] usize capacity() const noexcept { return cells_.size(); }

  /// Approximate under concurrency (two independent relaxed loads); exact
  /// at quiescent points, which is all the depth gauges promise.
  [[nodiscard]] usize depth() const noexcept {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 tail = tail_.load(std::memory_order_relaxed);
    return head > tail ? static_cast<usize>(head - tail) : 0;
  }

 private:
  struct Cell {
    std::atomic<u64> seq{0};
    QueuedJob item;
  };

  std::vector<Cell> cells_;
  usize mask_;
  /// Tickets on their own cache lines: producers bounce only head_,
  /// consumers only tail_, and neither evicts the other's line.
  alignas(64) std::atomic<u64> head_{0};
  alignas(64) std::atomic<u64> tail_{0};
};

}  // namespace kvx::engine
