#include "kvx/engine/batch_engine.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/postmortem.hpp"
#include "kvx/obs/process_metrics.hpp"
#include "kvx/obs/trace_event.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/jit/jit_trace.hpp"

namespace kvx::engine {

namespace {

/// Latency reservoir size: enough for stable p99.9 at any realistic batch
/// size without unbounded growth on long-lived engines. Once full, samples
/// are replaced via Algorithm R so the reservoir stays a uniform draw from
/// every job retired so far.
constexpr usize kMaxLatencySamples = 65536;

/// Engine metrics, registered once in the process-wide registry. Counter
/// increments are lock-free on the caller's stripe, so touching these from
/// every dispatch adds nothing measurable next to a simulator batch.
struct EngineMetrics {
  obs::Counter& jobs_submitted;
  obs::Counter& jobs_completed;
  obs::Counter& job_failures;
  obs::Counter& fallbacks;
  obs::Counter& bytes_hashed;
  obs::Counter& dispatches;
  obs::Counter& sim_cycles;
  obs::Counter& permutations;
  obs::Counter& step_theta;
  obs::Counter& step_rho_pi;
  obs::Counter& step_chi_iota;
  obs::Counter& step_absorb;
  obs::Counter& step_other;
  obs::Histogram& job_latency_ns;

  static EngineMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static EngineMetrics m{
        r.counter("kvx_engine_jobs_submitted_total",
                  "Jobs accepted by BatchHashEngine::submit"),
        r.counter("kvx_engine_jobs_completed_total",
                  "Jobs retired successfully (digest available)"),
        r.counter("kvx_engine_job_failures_total",
                  "Jobs retired with a per-job error"),
        r.counter("kvx_engine_fallbacks_total",
                  "Backend demotions (fused->trace->interpreter)"),
        r.counter("kvx_engine_bytes_hashed_total", "Message bytes hashed"),
        r.counter("kvx_engine_dispatches_total",
                  "Job batches dispatched to shard accelerators"),
        r.counter("kvx_engine_sim_cycles_total",
                  "Simulated accelerator cycles consumed"),
        r.counter("kvx_engine_permutations_total",
                  "Keccak state-permutations performed"),
        r.counter("kvx_engine_step_cycles_theta_total",
                  "Simulated cycles attributed to the theta step"),
        r.counter("kvx_engine_step_cycles_rho_pi_total",
                  "Simulated cycles attributed to the rho+pi steps"),
        r.counter("kvx_engine_step_cycles_chi_iota_total",
                  "Simulated cycles attributed to the chi+iota steps"),
        r.counter("kvx_engine_step_cycles_absorb_total",
                  "Simulated cycles attributed to on-device absorb staging"),
        r.counter("kvx_engine_step_cycles_other_total",
                  "Simulated cycles attributed to permutation loop control"),
        r.histogram("kvx_engine_job_latency_ns",
                    "Submit-to-retire job latency (host wall time)"),
    };
    return m;
  }
};

/// Best-effort worker pinning: worker `index` goes to host CPU
/// index mod hardware_concurrency. Failure is silently ignored — pinning is
/// a locality hint, never a correctness requirement (cgroup CPU masks,
/// non-Linux hosts and restricted environments all legitimately refuse it).
void pin_to_cpu(unsigned index) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % hw, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)index;
#endif
}

u64 steady_now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Jobs that can share one accelerator dispatch: same algorithm, output
/// length and (for KMAC) key material. ParallelSha3 then handles the
/// by-length lockstep grouping internally.
bool same_dispatch(const HashJob& a, const HashJob& b) {
  return a.algo == b.algo && a.resolved_out_len() == b.resolved_out_len() &&
         a.key == b.key && a.customization == b.customization;
}

/// Validation error for a malformed job, or "" if the job is well-formed.
/// Malformed jobs become immediate per-job failures (never exceptions), so
/// one bad job in a stream cannot discard its stream-mates.
std::string validate(const HashJob& job) {
  const usize fixed = fixed_digest_bytes(job.algo);
  if (fixed == 0 && job.out_len == 0) {
    return strfmt("%s job requires an explicit out_len",
                  std::string(algo_name(job.algo)).c_str());
  }
  if (fixed != 0 && job.out_len != 0 && job.out_len != fixed) {
    return strfmt("%s digest is %zu bytes, job asked for %zu",
                  std::string(algo_name(job.algo)).c_str(), fixed,
                  job.out_len);
  }
  const bool is_kmac = job.algo == Algo::kKmac128 || job.algo == Algo::kKmac256;
  if (!is_kmac && (!job.key.empty() || !job.customization.empty())) {
    return "key/customization are only valid for KMAC jobs";
  }
  return {};
}

/// The forensic demotion path of the accelerator's current state:
/// construction-time rejections (fixed per shard) followed by the tier
/// attempts of the most recent dispatch.
std::vector<TierAttempt> demotion_path_of(const core::ParallelSha3& accel) {
  std::vector<TierAttempt> path;
  const auto append = [&path](const std::vector<core::BackendAttempt>& as) {
    for (const core::BackendAttempt& a : as) {
      path.push_back({std::string(sim::backend_name(a.tier)), a.error,
                      a.injected});
    }
  };
  append(accel.construction_attempts());
  append(accel.last_dispatch_attempts());
  return path;
}

/// Reservoir percentile: the element at rank p of a copy (nth_element).
u64 reservoir_pct(std::vector<u64>& lat, double p) {
  const usize idx = std::min(
      lat.size() - 1, static_cast<usize>(p * static_cast<double>(lat.size() - 1)));
  std::nth_element(lat.begin(), lat.begin() + static_cast<std::ptrdiff_t>(idx),
                   lat.end());
  return lat[idx];
}

}  // namespace

BatchHashEngine::BatchHashEngine(const EngineConfig& config)
    : config_(config),
      window_(config.batch_window != 0 ? config.batch_window
                                       : 4 * config.accel.sn()),
      queue_(config.threads, config.max_queue),
      start_time_(std::chrono::steady_clock::now()) {
  if (config_.threads == 0) throw Error("engine needs at least one thread");
  // KVX_POSTMORTEM=<dir> switches on auto dumps + the crash handler for any
  // engine-bearing process without code changes (idempotent, cheap).
  obs::pm::init_from_env();
  // One immutable program shared by every shard; each shard still owns an
  // independent simulator, so shards never contend outside the job queue.
  const auto program = core::VectorKeccak::build_program(config_.accel);
  // Trace/fusion compile time attributable to this engine: the global cache
  // counters advance only when shard construction actually compiles (cache
  // hits add nothing, truthfully).
  const sim::TraceCacheStats tc0 = sim::TraceCache::global().stats();
  shards_.reserve(config_.threads);
  u64 construction_fallbacks = 0;
  for (unsigned t = 0; t < config_.threads; ++t) {
    auto shard = std::make_unique<Shard>();
    shard->index = t;
    shard->accel = std::make_unique<core::ParallelSha3>(
        config_.accel, program, config_.accel_options);
    // Construction-time demotions (trace compile rejected, genuinely or by
    // an injected fault) are fallbacks too — count them before any job runs.
    const u64 fb = shard->accel->backend_fallbacks();
    if (fb != 0) EngineMetrics::get().fallbacks.inc(fb);
    shard->stats.fallbacks += fb;
    shard->fallbacks_seen = fb;
    construction_fallbacks += fb;
    shards_.push_back(std::move(shard));
  }
  const sim::TraceCacheStats tc1 = sim::TraceCache::global().stats();
  backend_compile_ns_ =
      (tc1.compile_ns - tc0.compile_ns) + (tc1.fuse_ns - tc0.fuse_ns);
  // Build info + process self-metrics ride along with every engine: both
  // are idempotent and re-register after a test's registry reset.
  obs::publish_build_info(
      std::string(sim::host_simd_isa_name(
          sim::host_simd_dispatch_isa(config_.accel.sn()))),
      sim::jit_supported() ? "on" : "off");
  obs::register_process_metrics();
  if (construction_fallbacks != 0) {
    obs::pm::auto_dump("backend_demotion_at_construction");
  }
  // Post-mortem stat mirror: relaxed-atomic copies of the engine totals and
  // per-shard counters the crash handler can scrape without locks.
  mirror_ = obs::pm::claim_engine_mirror();
  if (mirror_ != nullptr) {
    const u32 mirrored = static_cast<u32>(
        std::min<usize>(shards_.size(), obs::pm::kMaxShards));
    for (u32 s = 0; s < mirrored; ++s) {
      shards_[s]->mirror = &mirror_->shards[s];
    }
    mirror_->shard_count.store(mirrored, std::memory_order_relaxed);
  }
  // Lock-order discipline: a scrape holds the registry mutex while it
  // evaluates the summary callback, which takes state_mutex_. Constructing
  // EngineMetrics lazily from a worker (under state_mutex_) would take the
  // registry mutex in the opposite order — so force construction here,
  // before any worker exists.
  (void)EngineMetrics::get();
  // Queue-depth gauges are *bound*, not set: every scrape evaluates the
  // live ring depths, so the exported values can neither go stale nor race
  // a push/pop that lands between update and scrape. One aggregate gauge
  // plus one per queue shard. A second engine binding the same names
  // supersedes this one (tokens keep the unbinds from clobbering it).
  auto& registry = obs::MetricsRegistry::global();
  obs::Gauge& agg = registry.gauge(
      "kvx_engine_queue_depth",
      "Jobs in flight in the engine queue (evaluated at scrape time)");
  depth_gauges_.emplace_back(
      &agg, agg.bind([this] { return static_cast<double>(queue_.depth()); }));
  for (usize s = 0; s < queue_.shard_count(); ++s) {
    obs::Gauge& g = registry.gauge(
        strfmt("kvx_engine_queue_depth_shard_%zu", s),
        "Jobs in flight on one engine queue shard (evaluated at scrape time)");
    depth_gauges_.emplace_back(&g, g.bind([this, s] {
      return static_cast<double>(queue_.shard_depth(s));
    }));
  }
  // Latency summary: p50/p99/p99.9 evaluated from the reservoir at scrape
  // time (a histogram cannot express exact high quantiles; the reservoir
  // can). _count/_sum are the exact retire totals, not reservoir-sampled.
  latency_summary_ = &registry.summary(
      "kvx_engine_job_latency_quantiles_ns",
      "Submit-to-retire job latency quantiles (reservoir-exact)");
  latency_summary_token_ = latency_summary_->bind([this] {
    obs::Summary::Snapshot snap;
    std::vector<u64> lat;
    {
      std::lock_guard lock(state_mutex_);
      lat = latency_ns_;
      snap.count = latency_observed_;
      snap.sum = static_cast<double>(latency_sum_ns_);
    }
    if (!lat.empty()) {
      for (const double q : {0.5, 0.99, 0.999}) {
        snap.quantiles.emplace_back(
            q, static_cast<double>(reservoir_pct(lat, q)));
      }
    }
    return snap;
  });
  workers_.reserve(config_.threads);
  for (unsigned t = 0; t < config_.threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t, *shards_[t]); });
  }
}

BatchHashEngine::~BatchHashEngine() {
  close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Unbind before queue_ is destroyed; a scrape after this point reads the
  // frozen final value (0 once drained).
  for (auto& [gauge, token] : depth_gauges_) gauge->unbind(token);
  if (latency_summary_ != nullptr) {
    latency_summary_->unbind(latency_summary_token_);
  }
  obs::pm::release_engine_mirror(mirror_);
  mirror_ = nullptr;
}

void BatchHashEngine::record_latency_locked(u64 sample_ns, u64 flight_seq) {
  if (flight_seq != 0) {
    EngineMetrics::get().job_latency_ns.observe_exemplar(sample_ns,
                                                         flight_seq);
  } else {
    EngineMetrics::get().job_latency_ns.observe(sample_ns);
  }
  latency_max_ns_ = std::max(latency_max_ns_, sample_ns);
  latency_observed_ += 1;
  latency_sum_ns_ += sample_ns;
  if (latency_ns_.size() < kMaxLatencySamples) {
    latency_ns_.push_back(sample_ns);
  } else {
    // Algorithm R: replace a uniformly random slot with probability
    // reservoir/observed, keeping the sample unbiased over all jobs.
    const u64 slot = latency_rng_.below(latency_observed_);
    if (slot < kMaxLatencySamples) {
      latency_ns_[static_cast<usize>(slot)] = sample_ns;
    }
  }
}

void BatchHashEngine::notify_retire() noexcept {
  const int fd = notify_fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
#if defined(__unix__) || defined(__APPLE__)
  // Eventfd semantics: the u64 accumulates into the counter, so one poll
  // wakeup coalesces any number of retirements. EAGAIN (counter saturated)
  // is harmless — the readable edge the caller sleeps on is already
  // pending. Pipes coalesce the same way once full.
  const u64 one = 1;
  const ssize_t ignored = ::write(fd, &one, sizeof one);
  (void)ignored;
#endif
}

void BatchHashEngine::sync_mirror_locked() noexcept {
  if (mirror_ == nullptr) return;
  mirror_->submitted.store(submitted_, std::memory_order_relaxed);
  mirror_->completed.store(retired_ - failed_, std::memory_order_relaxed);
  mirror_->failed.store(failed_, std::memory_order_relaxed);
}

void BatchHashEngine::fail_job_locked(u64 seq, u64 submit_ns,
                                      std::string error) {
  const u64 fseq = obs::FlightRecorder::global().record(
      obs::FlightEventType::kJobFail, 0, seq,
      obs::flight_hash(error.c_str()));
  const usize idx = static_cast<usize>(seq - collected_);
  results_[idx].error = std::move(error);
  results_[idx].flight_seq = fseq;
  done_[idx] = 1;
  retired_ += 1;
  failed_ += 1;
  EngineMetrics::get().job_failures.inc();
  record_latency_locked(steady_now_ns() - submit_ns, fseq);
  sync_mirror_locked();
  all_done_.notify_all();
}

u64 BatchHashEngine::submit(HashJob job) {
  std::string invalid = validate(job);
  const u64 submit_ns = steady_now_ns();
  u64 seq = 0;
  {
    std::lock_guard lock(state_mutex_);
    if (closed_) throw Error("submit after close()");
    seq = submitted_++;
    results_.emplace_back();
    done_.push_back(0);
  }
  EngineMetrics::get().jobs_submitted.inc();
  obs::FlightRecorder::global().record(obs::FlightEventType::kJobSubmit, 0,
                                       seq, 1);
  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) {
    sink.instant("engine", "job_submit",
                 strfmt("{\"seq\":%llu}", static_cast<unsigned long long>(seq)));
  }
  if (!invalid.empty()) {
    // Malformed: retire right here as a per-job failure (full accounting,
    // no queue round-trip) so batch-mates are untouched.
    {
      std::lock_guard lock(state_mutex_);
      fail_job_locked(seq, submit_ns, std::move(invalid));
    }
    notify_retire();
    obs::pm::auto_dump("job_failure");
    return seq;
  }
  // Push outside state_mutex_: a bounded queue may block here, and workers
  // need the state mutex to retire jobs (holding it would deadlock).
  if (!queue_.push({seq, submit_ns, std::move(job)})) {
    // close() raced with this submit; retire the job as failed so drain
    // cannot hang, and surface the loss to the caller.
    {
      std::lock_guard lock(state_mutex_);
      fail_job_locked(seq, submit_ns,
                      "engine closed while a submit was in flight");
    }
    notify_retire();
    throw Error("submit after close()");
  }
  return seq;
}

u64 BatchHashEngine::submit_batch(std::span<const HashJob> jobs) {
  // Validate the whole span before taking any lock — the expensive part of
  // intake runs unsynchronized. Validity is recorded separately because the
  // retire loop below moves the error strings out (a moved-from error reads
  // empty, which must not make the job look well-formed afterwards).
  std::vector<std::string> errors(jobs.size());
  std::vector<char> ok(jobs.size(), 0);
  usize valid = 0;
  for (usize i = 0; i < jobs.size(); ++i) {
    errors[i] = validate(jobs[i]);
    if (errors[i].empty()) {
      ok[i] = 1;
      ++valid;
    }
  }
  const u64 submit_ns = steady_now_ns();
  u64 first = 0;
  {
    // ONE state-mutex acquisition reserves the contiguous sequence range,
    // grows the result slots and retires the malformed jobs — concurrent
    // submit_batch callers each get a dense, disjoint range.
    std::lock_guard lock(state_mutex_);
    first = submitted_;
    if (jobs.empty()) return first;
    if (closed_) throw Error("submit after close()");
    submitted_ += jobs.size();
    results_.resize(results_.size() + jobs.size());
    done_.resize(done_.size() + jobs.size(), 0);
    for (usize i = 0; i < jobs.size(); ++i) {
      if (ok[i] == 0) {
        fail_job_locked(first + i, submit_ns, std::move(errors[i]));
      }
    }
  }
  EngineMetrics::get().jobs_submitted.inc(jobs.size());
  obs::FlightRecorder::global().record(obs::FlightEventType::kJobSubmit, 0,
                                       first, jobs.size());
  if (valid != jobs.size()) {
    notify_retire();
    obs::pm::auto_dump("job_failure");
  }
  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) {
    sink.instant("engine", "batch_submit",
                 strfmt("{\"first_seq\":%llu,\"jobs\":%zu}",
                        static_cast<unsigned long long>(first), jobs.size()));
  }
  if (valid == 0) return first;
  std::vector<QueuedJob> items;
  items.reserve(valid);
  for (usize i = 0; i < jobs.size(); ++i) {
    if (ok[i] != 0) items.push_back({first + i, submit_ns, jobs[i]});
  }
  // Push outside state_mutex_ (bounded queues block here; workers need the
  // state mutex to retire). push_bulk distributes window_-sized contiguous
  // chunks across the queue shards and wakes sleepers once per chunk.
  const usize pushed = queue_.push_bulk(items, window_);
  if (pushed != items.size()) {
    // close() raced with this submit; retire the unpushed tail as failed so
    // drain cannot hang, and surface the loss to the caller.
    {
      std::lock_guard lock(state_mutex_);
      for (usize i = pushed; i < items.size(); ++i) {
        fail_job_locked(items[i].seq, submit_ns,
                        "engine closed while a submit was in flight");
      }
    }
    notify_retire();
    throw Error("submit after close()");
  }
  return first;
}

void BatchHashEngine::close() {
  {
    std::lock_guard lock(state_mutex_);
    closed_ = true;
  }
  queue_.close();
}

usize BatchHashEngine::drain_batch(std::vector<JobResult>& out) {
  std::unique_lock lock(state_mutex_);
  all_done_.wait(lock, [&] { return retired_ == submitted_; });
  const usize n = results_.size();
  if (out.empty()) {
    out = std::move(results_);
  } else {
    out.insert(out.end(), std::make_move_iterator(results_.begin()),
               std::make_move_iterator(results_.end()));
  }
  results_.clear();
  done_.clear();
  collected_ += n;
  return n;
}

std::vector<JobResult> BatchHashEngine::drain_results() {
  std::vector<JobResult> out;
  drain_batch(out);
  return out;
}

usize BatchHashEngine::try_drain_ready(std::vector<JobResult>& out,
                                       usize max) {
  std::lock_guard lock(state_mutex_);
  // Results are handed out strictly in submission order, same as drain():
  // only the contiguous retired prefix is collectable. A still-in-flight
  // job at the front holds everything behind it (the caller sleeps on the
  // notify fd and retries, so this is starvation-free).
  const usize limit = max == 0 ? results_.size() : std::min(max, results_.size());
  usize n = 0;
  while (n < limit && done_[n] != 0) ++n;
  if (n == 0) return 0;
  out.insert(out.end(), std::make_move_iterator(results_.begin()),
             std::make_move_iterator(results_.begin() +
                                     static_cast<std::ptrdiff_t>(n)));
  results_.erase(results_.begin(),
                 results_.begin() + static_cast<std::ptrdiff_t>(n));
  done_.erase(done_.begin(), done_.begin() + static_cast<std::ptrdiff_t>(n));
  collected_ += n;
  return n;
}

std::vector<std::vector<u8>> BatchHashEngine::drain() {
  std::vector<JobResult> rs = drain_results();
  usize failures = 0;
  const std::string* first = nullptr;
  for (const JobResult& r : rs) {
    if (!r.ok()) {
      if (first == nullptr) first = &r.error;
      ++failures;
    }
  }
  if (failures != 0) {
    throw Error(strfmt("%zu of %zu jobs failed; first error: %s", failures,
                       rs.size(), first->c_str()));
  }
  std::vector<std::vector<u8>> out;
  out.reserve(rs.size());
  for (JobResult& r : rs) out.push_back(std::move(r.digest));
  return out;
}

JobResult BatchHashEngine::result(u64 seq) {
  std::unique_lock lock(state_mutex_);
  if (seq >= submitted_) {
    throw Error(strfmt("result: sequence id %llu was never issued",
                       static_cast<unsigned long long>(seq)));
  }
  all_done_.wait(lock, [&] {
    return seq < collected_ || done_[static_cast<usize>(seq - collected_)] != 0;
  });
  if (seq < collected_) {
    throw Error(strfmt("result: job %llu was already collected by drain",
                       static_cast<unsigned long long>(seq)));
  }
  return results_[static_cast<usize>(seq - collected_)];
}

EngineStats BatchHashEngine::stats() const {
  EngineStats st;
  std::vector<u64> lat;
  u64 observed = 0;
  u64 max_ns = 0;
  {
    std::lock_guard lock(state_mutex_);
    st.submitted = submitted_;
    st.completed = retired_ - failed_;
    st.failed = failed_;
    st.shards.reserve(shards_.size());
    for (const auto& shard : shards_) st.shards.push_back(shard->stats);
    lat = latency_ns_;
    observed = latency_observed_;
    max_ns = latency_max_ns_;
  }
  if (!shards_.empty()) {
    // All shards share one program + config, so shard 0 is representative.
    const core::ParallelSha3& accel = *shards_.front()->accel;
    st.backend = sim::backend_name(accel.active_backend());
    st.effective_backend = sim::backend_name(accel.last_backend());
    st.fusion_coverage = accel.fusion_coverage();
    st.host_simd_coverage = accel.host_simd_coverage();
    st.jit_code_bytes = accel.jit_code_bytes();
    if (accel.last_backend() == sim::ExecBackend::kJit &&
        accel.jit_isa().has_value()) {
      st.host_simd_isa = sim::host_simd_isa_name(*accel.jit_isa());
    } else if (accel.last_backend() == sim::ExecBackend::kHostSimd) {
      st.host_simd_isa = sim::host_simd_isa_name(
          sim::host_simd_dispatch_isa(accel.config().sn()));
    }
  }
  st.backend_compile_ns = backend_compile_ns_;
  if (!lat.empty()) {
    st.latency.count = observed;
    st.latency.p50_ns = reservoir_pct(lat, 0.50);
    st.latency.p99_ns = reservoir_pct(lat, 0.99);
    st.latency.p999_ns = reservoir_pct(lat, 0.999);
    st.latency.max_ns = max_ns;
  }
  st.queue_high_water = queue_.high_water();
  st.queue_shard_depths.reserve(queue_.shard_count());
  for (usize s = 0; s < queue_.shard_count(); ++s) {
    st.queue_shard_depths.push_back(queue_.shard_depth(s));
  }
  st.elapsed_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  return st;
}

void BatchHashEngine::worker_loop(unsigned index, Shard& shard) {
  if (config_.pin_workers) pin_to_cpu(index);
  std::vector<QueuedJob> batch;
  while (queue_.pop_bulk(index, window_, batch) > 0) {
    try {
      process_batch(shard, batch);
    } catch (const std::exception& e) {
      // Backstop for failures outside the per-group isolation (allocation
      // in the grouping pass, retire bookkeeping): every job of the batch
      // is retired as failed, with full metric and latency accounting, so
      // drain terminates and the counters stay consistent.
      fail_batch(shard, batch, e.what());
    }
  }
}

void BatchHashEngine::fail_batch(Shard& shard,
                                 const std::vector<QueuedJob>& batch,
                                 const char* what) {
  EngineMetrics& m = EngineMetrics::get();
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  const u64 err_hash = obs::flight_hash(what);
  const u64 retire_ns = steady_now_ns();
  {
    std::lock_guard lock(state_mutex_);
    for (const QueuedJob& qj : batch) {
      const usize idx = static_cast<usize>(qj.seq - collected_);
      if (done_[idx] != 0) continue;  // already retired by process_batch
      const u64 fseq =
          fr.record(obs::FlightEventType::kJobFail, 0, qj.seq, err_hash);
      results_[idx].error = what;
      results_[idx].flight_seq = fseq;
      done_[idx] = 1;
      retired_ += 1;
      failed_ += 1;
      shard.stats.failures += 1;
      m.job_failures.inc();
      record_latency_locked(retire_ns - qj.submit_ns, fseq);
    }
    sync_mirror_locked();
    all_done_.notify_all();
  }
  notify_retire();
  obs::pm::auto_dump("job_failure");
}

void BatchHashEngine::process_batch(Shard& shard,
                                    std::vector<QueuedJob>& batch) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  core::ParallelSha3& accel = *shard.accel;
  const core::BatchStats before = accel.stats();
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  fr.record(obs::FlightEventType::kDispatch, 0, batch.size(), shard.index);
  obs::TraceSpan dispatch_span(obs::TraceEventSink::global(), "engine",
                               "dispatch");

  // Partition the run into dispatch groups (order-preserving); each group
  // goes to the accelerator as one batch so equal-length jobs share lanes.
  // Each group is its own failure domain: a SimError or Error thrown by one
  // dispatch marks only that group's jobs failed; the loop continues with
  // the next group.
  std::vector<JobResult> outcomes(batch.size());
  std::vector<bool> grouped(batch.size(), false);
  u64 bytes = 0;
  for (usize i = 0; i < batch.size(); ++i) {
    if (grouped[i]) continue;
    std::vector<usize> members{i};
    for (usize j = i + 1; j < batch.size(); ++j) {
      if (!grouped[j] && same_dispatch(batch[i].job, batch[j].job)) {
        grouped[j] = true;
        members.push_back(j);
      }
    }
    std::vector<std::vector<u8>> msgs(members.size());
    u64 group_bytes = 0;
    for (usize k = 0; k < members.size(); ++k) {
      msgs[k] = batch[members[k]].job.message;
      group_bytes += msgs[k].size();
    }
    const HashJob& head = batch[i].job;
    const usize out_len = head.resolved_out_len();
    try {
      std::vector<std::vector<u8>> outs;
      switch (head.algo) {
        case Algo::kKmac128:
        case Algo::kKmac256:
          outs = accel.kmac_batch(head.algo == Algo::kKmac128 ? 128u : 256u,
                                  head.key, msgs, out_len, head.customization);
          break;
        case Algo::kShake128:
        case Algo::kShake256:
          outs = accel.xof_batch(base_function(head.algo), msgs, out_len);
          break;
        default:
          outs = accel.hash_batch(base_function(head.algo), msgs);
          break;
      }
      const std::string backend(sim::backend_name(accel.last_backend()));
      // Forensics: a job that succeeded only after demotions carries the
      // tier chain it went through; the common clean dispatch stays empty.
      std::vector<TierAttempt> path;
      if (!accel.construction_attempts().empty() ||
          accel.last_dispatch_attempts().size() > 1) {
        path = demotion_path_of(accel);
      }
      for (usize k = 0; k < members.size(); ++k) {
        outcomes[members[k]].digest = std::move(outs[k]);
        outcomes[members[k]].backend = backend;
        outcomes[members[k]].demotion_path = path;
      }
      bytes += group_bytes;  // only successfully hashed bytes count
    } catch (const std::exception& e) {
      // Dispatch failed on every tier (the interpreter is the last resort,
      // so reaching here means even it threw): each member gets the error
      // and the full attempted-tier chain.
      std::vector<TierAttempt> path = demotion_path_of(accel);
      for (const usize member : members) {
        outcomes[member].error = e.what();
        outcomes[member].demotion_path = path;
      }
    }
  }

  const core::BatchStats after = accel.stats();
  const u64 host_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  const u64 cycles = after.accelerator_cycles - before.accelerator_cycles;
  const u64 perms = after.permutations - before.permutations;
  const obs::StepCycleStats steps = after.step_cycles.minus(before.step_cycles);
  // Dispatch-time backend demotions this batch caused: diff the
  // accelerator's monotone fallback counter (worker thread only, so no
  // other batch can interleave on this shard).
  const u64 accel_fallbacks = accel.backend_fallbacks();
  const u64 fallbacks = accel_fallbacks - shard.fallbacks_seen;
  shard.fallbacks_seen = accel_fallbacks;

  usize ok_jobs = 0;
  for (const JobResult& r : outcomes) {
    if (r.ok()) ++ok_jobs;
  }
  const usize failed_jobs = batch.size() - ok_jobs;

  EngineMetrics& m = EngineMetrics::get();
  m.jobs_completed.inc(ok_jobs);
  if (failed_jobs != 0) m.job_failures.inc(failed_jobs);
  if (fallbacks != 0) m.fallbacks.inc(fallbacks);
  m.bytes_hashed.inc(bytes);
  m.dispatches.inc();
  m.sim_cycles.inc(cycles);
  m.permutations.inc(perms);
  m.step_theta.inc(steps.theta);
  m.step_rho_pi.inc(steps.rho_pi);
  m.step_chi_iota.inc(steps.chi_iota);
  m.step_absorb.inc(steps.absorb);
  m.step_other.inc(steps.other);

  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) {
    dispatch_span.set_args(
        strfmt("{\"jobs\":%zu,\"failed\":%zu,\"bytes\":%llu,"
               "\"sim_cycles\":%llu}",
               batch.size(), failed_jobs,
               static_cast<unsigned long long>(bytes),
               static_cast<unsigned long long>(cycles)));
    sink.instant("engine", "job_retire",
                 strfmt("{\"jobs\":%zu,\"first_seq\":%llu}", batch.size(),
                        static_cast<unsigned long long>(batch.front().seq)));
  }

  // One retire event covers the whole batch; failed jobs additionally get
  // their own kJobFail event so kvx-doctor can anchor a timeline window on
  // each failure individually.
  const u64 retire_seq = fr.record(
      obs::FlightEventType::kJobRetire,
      static_cast<u16>(std::min<usize>(failed_jobs, 0xFFFF)),
      batch.front().seq, batch.size());
  const u64 retire_ns = steady_now_ns();
  {
    std::lock_guard lock(state_mutex_);
    for (usize i = 0; i < batch.size(); ++i) {
      // collected_ only moves when results_ is empty (drain retires every
      // completed job at once), so this index is always in range.
      const usize idx = static_cast<usize>(batch[i].seq - collected_);
      u64 fseq = retire_seq;
      if (!outcomes[i].ok()) {
        fseq = fr.record(obs::FlightEventType::kJobFail, 0, batch[i].seq,
                         obs::flight_hash(outcomes[i].error));
      }
      outcomes[i].flight_seq = fseq;
      results_[idx] = std::move(outcomes[i]);
      done_[idx] = 1;
      // Every retirement is latency-stamped, failed or not — dropping
      // failures would skew p50/p99.9 toward the surviving jobs.
      record_latency_locked(retire_ns - batch[i].submit_ns, fseq);
    }
    retired_ += batch.size();
    failed_ += failed_jobs;
    shard.stats.jobs += ok_jobs;
    shard.stats.failures += failed_jobs;
    shard.stats.fallbacks += fallbacks;
    shard.stats.bytes += bytes;
    shard.stats.dispatches += 1;
    shard.stats.sim_cycles += cycles;
    shard.stats.permutations += perms;
    shard.stats.host_ns += host_ns;
    shard.stats.step_cycles += steps;
    sync_mirror_locked();
    if (shard.mirror != nullptr) {
      obs::pm::EngineShardMirror& sm = *shard.mirror;
      sm.jobs.store(shard.stats.jobs, std::memory_order_relaxed);
      sm.failures.store(shard.stats.failures, std::memory_order_relaxed);
      sm.fallbacks.store(shard.stats.fallbacks, std::memory_order_relaxed);
      sm.bytes.store(shard.stats.bytes, std::memory_order_relaxed);
      sm.dispatches.store(shard.stats.dispatches, std::memory_order_relaxed);
      sm.sim_cycles.store(shard.stats.sim_cycles, std::memory_order_relaxed);
      sm.permutations.store(shard.stats.permutations,
                            std::memory_order_relaxed);
    }
    all_done_.notify_all();
  }
  notify_retire();
  // Post-mortem triggers run outside state_mutex_ — a dump scrapes the
  // metrics registry, and the scrape path may re-enter engine callbacks.
  if (fallbacks != 0) obs::pm::auto_dump("backend_demotion");
  if (failed_jobs != 0) obs::pm::auto_dump("job_failure");
}

std::vector<std::vector<u8>> run_batch(const EngineConfig& config,
                                       std::span<const HashJob> jobs) {
  BatchHashEngine engine(config);
  engine.submit_all(jobs);
  engine.close();
  return engine.drain();
}

}  // namespace kvx::engine
