#include "kvx/engine/job_queue.hpp"

#include <chrono>

#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/trace_event.hpp"

namespace kvx::engine {

namespace {

/// Backstop park interval: the eventcount protocol below makes lost wakeups
/// next to impossible, and this bounds the cost of one to a single interval
/// instead of a hang (it also keeps the protocol robust against the fence
/// modelling gaps some sanitizers have).
constexpr auto kParkInterval = std::chrono::milliseconds(1);

/// Ring capacity per shard when the queue is unbounded: deep enough that
/// producers only park when every worker is saturated with work.
constexpr usize kDefaultRingCapacity = 2048;

/// Sample the total in-flight depth onto the Chrome counter track. The
/// strict-at-quiescence gauges are the callback-bound registry gauges the
/// engine owns (aggregated on scrape, so they cannot go stale); this trace
/// counter is a timeline sample and is allowed to be approximate.
void trace_depth(u64 depth) {
  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) {
    sink.counter("engine", "queue_depth", static_cast<double>(depth));
  }
}

/// Pop up to `max_items` jobs from one ring into `out`.
usize take_run(JobRing& ring, usize max_items, std::vector<QueuedJob>& out) {
  usize got = 0;
  QueuedJob item;
  while (got < max_items && ring.try_pop(item)) {
    out.push_back(std::move(item));
    ++got;
  }
  return got;
}

}  // namespace

ShardedJobQueue::ShardedJobQueue(usize shards, usize max_depth)
    : max_depth_(max_depth) {
  if (shards == 0) shards = 1;
  // Bounded: the rings together must hold max_depth jobs, so the global
  // ticket — not ring capacity — is what exerts the backpressure.
  const usize per_ring = max_depth == 0
                             ? kDefaultRingCapacity
                             : (max_depth + shards - 1) / shards;
  rings_.reserve(shards);
  for (usize s = 0; s < shards; ++s) {
    rings_.push_back(std::make_unique<JobRing>(per_ring));
  }
}

bool ShardedJobQueue::try_reserve() noexcept {
  u64 cur = size_.load(std::memory_order_relaxed);
  for (;;) {
    if (max_depth_ != 0 && cur >= max_depth_) return false;
    if (size_.compare_exchange_weak(cur, cur + 1,
                                    std::memory_order_relaxed)) {
      const u64 now = cur + 1;
      u64 hw = high_water_.load(std::memory_order_relaxed);
      while (now > hw && !high_water_.compare_exchange_weak(
                             hw, now, std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

bool ShardedJobQueue::try_push_any(QueuedJob& item) noexcept {
  const usize n = rings_.size();
  const u64 start = cursor_.fetch_add(1, std::memory_order_relaxed);
  for (usize i = 0; i < n; ++i) {
    if (rings_[(start + i) % n]->try_push(std::move(item))) return true;
  }
  return false;
}

void ShardedJobQueue::wake_consumers(bool all) noexcept {
  // Eventcount waker side: the seq_cst fence orders the preceding ring
  // publication against the sleeper-count read — either we see the sleeper
  // (and notify), or the sleeper's registration came later and its own
  // re-check sees our push.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleeping_consumers_.load(std::memory_order_relaxed) != 0) {
    { std::lock_guard lock(park_mutex_); }  // order with wait registration
    if (all) {
      not_empty_.notify_all();
    } else {
      not_empty_.notify_one();
    }
  }
}

void ShardedJobQueue::wake_producers() noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleeping_producers_.load(std::memory_order_relaxed) != 0) {
    { std::lock_guard lock(park_mutex_); }
    not_full_.notify_all();
  }
}

void ShardedJobQueue::park_consumer() {
  obs::FlightRecorder::global().record(obs::FlightEventType::kQueuePark, 0);
  std::unique_lock lock(park_mutex_);
  sleeping_consumers_.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Re-check after registering: anything published between the caller's
  // failed scan and this point means we must not sleep.
  if (!closed_.load(std::memory_order_acquire) &&
      size_.load(std::memory_order_relaxed) == 0) {
    not_empty_.wait_for(lock, kParkInterval);
  }
  sleeping_consumers_.fetch_sub(1, std::memory_order_relaxed);
}

void ShardedJobQueue::park_producer() {
  obs::FlightRecorder::global().record(obs::FlightEventType::kQueuePark, 1);
  std::unique_lock lock(park_mutex_);
  sleeping_producers_.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!closed_.load(std::memory_order_acquire)) {
    not_full_.wait_for(lock, kParkInterval);
  }
  sleeping_producers_.fetch_sub(1, std::memory_order_relaxed);
}

bool ShardedJobQueue::push(QueuedJob item) {
  for (;;) {
    if (closed()) return false;
    if (!try_reserve()) {
      park_producer();  // bounded queue at max_depth: backpressure
      continue;
    }
    if (try_push_any(item)) {
      trace_depth(size_.load(std::memory_order_relaxed));
      wake_consumers(/*all=*/false);
      return true;
    }
    release(1);  // every ring full (can only outpace the bound transiently)
    park_producer();
  }
}

usize ShardedJobQueue::push_bulk(std::span<QueuedJob> items, usize chunk) {
  if (chunk == 0) chunk = 1;
  const usize n = rings_.size();
  usize pushed = 0;
  while (pushed < items.size()) {
    // One contiguous chunk per round-robin shard keeps dispatch-signature
    // runs together on a single worker.
    const u64 shard = cursor_.fetch_add(1, std::memory_order_relaxed);
    usize in_chunk = 0;
    while (pushed < items.size() && in_chunk < chunk) {
      if (closed()) {
        if (in_chunk != 0) wake_consumers(/*all=*/true);
        return pushed;  // items[pushed...] left for the caller to retire
      }
      if (!try_reserve()) {
        if (in_chunk != 0) wake_consumers(/*all=*/true);
        park_producer();
        continue;
      }
      QueuedJob& item = items[pushed];
      if (!rings_[shard % n]->try_push(std::move(item)) &&
          !try_push_any(item)) {
        release(1);
        if (in_chunk != 0) wake_consumers(/*all=*/true);
        park_producer();
        continue;
      }
      ++pushed;
      ++in_chunk;
    }
    // Sleepers are woken once per chunk, not once per job — the bulk API's
    // synchronization amortization.
    wake_consumers(/*all=*/in_chunk > 1);
    trace_depth(size_.load(std::memory_order_relaxed));
  }
  return pushed;
}

usize ShardedJobQueue::pop_bulk(usize worker, usize max_items,
                                std::vector<QueuedJob>& out) {
  out.clear();
  if (max_items == 0) max_items = 1;
  const usize n = rings_.size();
  for (;;) {
    // Own shard first; steal a whole run from the first non-empty victim
    // only when it is dry.
    usize got = take_run(*rings_[worker % n], max_items, out);
    for (usize v = 1; v < n && got == 0; ++v) {
      const usize victim = (worker + v) % n;
      got = take_run(*rings_[victim], max_items, out);
      if (got > 0) {
        obs::FlightRecorder::global().record(
            obs::FlightEventType::kQueueSteal, 0, victim, got);
      }
    }
    if (got > 0) {
      release(got);
      trace_depth(size_.load(std::memory_order_relaxed));
      wake_producers();
      return got;
    }
    if (closed() && size_.load(std::memory_order_acquire) == 0) return 0;
    park_consumer();
  }
}

void ShardedJobQueue::close() {
  closed_.store(true, std::memory_order_release);
  { std::lock_guard lock(park_mutex_); }
  not_empty_.notify_all();
  not_full_.notify_all();
}

}  // namespace kvx::engine
