#include "kvx/engine/job_queue.hpp"

#include <algorithm>

#include "kvx/obs/metrics.hpp"
#include "kvx/obs/trace_event.hpp"

namespace kvx::engine {

namespace {

/// Sample the queue depth into the gauge and (when tracing) the Chrome
/// counter track. MUST be called under the queue mutex: publishing after
/// dropping the lock lets a stale sample land last (push at depth 3 and a
/// racing pop at depth 0 could publish 0 then 3, leaving the gauge wrong
/// until the next operation). Serializing the publish with the mutation
/// makes the final publish always carry the final depth.
void observe_depth(usize depth) {
  static obs::Gauge& gauge = obs::MetricsRegistry::global().gauge(
      "kvx_engine_queue_depth", "Jobs currently waiting in the engine queue");
  gauge.set(static_cast<double>(depth));
  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) {
    sink.counter("engine", "queue_depth", static_cast<double>(depth));
  }
}

}  // namespace

bool JobQueue::push(QueuedJob item) {
  std::unique_lock lock(mutex_);
  not_full_.wait(lock, [&] {
    return closed_ || max_depth_ == 0 || items_.size() < max_depth_;
  });
  if (closed_) return false;
  items_.push_back(std::move(item));
  high_water_ = std::max(high_water_, items_.size());
  observe_depth(items_.size());
  not_empty_.notify_one();
  return true;
}

usize JobQueue::pop_up_to(usize max_items, std::vector<QueuedJob>& out) {
  out.clear();
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  const usize take = std::min(max_items, items_.size());
  for (usize i = 0; i < take; ++i) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  if (take > 0) {
    observe_depth(items_.size());
    not_full_.notify_all();
  }
  return take;
}

void JobQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

usize JobQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

usize JobQueue::high_water() const {
  std::lock_guard lock(mutex_);
  return high_water_;
}

}  // namespace kvx::engine
