#include "kvx/engine/job_queue.hpp"

#include <algorithm>

namespace kvx::engine {

bool JobQueue::push(QueuedJob item) {
  std::unique_lock lock(mutex_);
  not_full_.wait(lock, [&] {
    return closed_ || max_depth_ == 0 || items_.size() < max_depth_;
  });
  if (closed_) return false;
  items_.push_back(std::move(item));
  high_water_ = std::max(high_water_, items_.size());
  not_empty_.notify_one();
  return true;
}

usize JobQueue::pop_up_to(usize max_items, std::vector<QueuedJob>& out) {
  out.clear();
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  const usize take = std::min(max_items, items_.size());
  for (usize i = 0; i < take; ++i) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  if (take > 0) not_full_.notify_all();
  return take;
}

void JobQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

usize JobQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

usize JobQueue::high_water() const {
  std::lock_guard lock(mutex_);
  return high_water_;
}

}  // namespace kvx::engine
