#include "kvx/engine/stats.hpp"

#include "kvx/common/strings.hpp"

namespace kvx::engine {

ThroughputStats EngineStats::throughput(u64 over_ns) const noexcept {
  ThroughputStats t;
  if (over_ns == 0) return t;
  const ShardStats sums = totals();
  const double secs = static_cast<double>(over_ns) / 1e9;
  t.jobs_per_sec = static_cast<double>(sums.jobs) / secs;
  t.bytes_per_sec = static_cast<double>(sums.bytes) / secs;
  t.mb_per_sec = t.bytes_per_sec / 1e6;
  t.perms_per_sec = static_cast<double>(sums.permutations) / secs;
  t.sim_cycles_per_sec = static_cast<double>(sums.sim_cycles) / secs;
  return t;
}

std::string format_step_cycles(const obs::StepCycleStats& s) {
  const auto row = [&](const char* name, u64 cycles) {
    const double pct =
        s.total != 0
            ? 100.0 * static_cast<double>(cycles) / static_cast<double>(s.total)
            : 0.0;
    return strfmt("  %-8s %14llu  %5.1f%%\n", name,
                  static_cast<unsigned long long>(cycles), pct);
  };
  std::string out;
  out += row("theta", s.theta);
  out += row("rho+pi", s.rho_pi);
  out += row("chi+iota", s.chi_iota);
  if (s.absorb != 0) out += row("absorb", s.absorb);
  out += row("other", s.other);
  out += row("total", s.total);
  if (s.rounds != 0) {
    out += strfmt("  (%llu rounds, %.1f cycles/round)\n",
                  static_cast<unsigned long long>(s.rounds),
                  static_cast<double>(s.total) / static_cast<double>(s.rounds));
  }
  return out;
}

}  // namespace kvx::engine
