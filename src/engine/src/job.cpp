#include "kvx/engine/job.hpp"

#include "kvx/keccak/sp800_185.hpp"

namespace kvx::engine {

std::string_view algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::kSha3_224: return "SHA3-224";
    case Algo::kSha3_256: return "SHA3-256";
    case Algo::kSha3_384: return "SHA3-384";
    case Algo::kSha3_512: return "SHA3-512";
    case Algo::kShake128: return "SHAKE128";
    case Algo::kShake256: return "SHAKE256";
    case Algo::kKmac128: return "KMAC128";
    case Algo::kKmac256: return "KMAC256";
  }
  return "?";
}

std::vector<u8> host_reference_digest(const HashJob& job) {
  const usize out = job.resolved_out_len();
  switch (job.algo) {
    case Algo::kKmac128:
      return keccak::kmac128(job.key, job.message, out, job.customization);
    case Algo::kKmac256:
      return keccak::kmac256(job.key, job.message, out, job.customization);
    default:
      return keccak::hash(base_function(job.algo), job.message, out);
  }
}

}  // namespace kvx::engine
