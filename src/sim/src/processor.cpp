#include "kvx/sim/processor.hpp"

#include <algorithm>

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/isa/encoding.hpp"

namespace kvx::sim {

SimdProcessor::SimdProcessor(const ProcessorConfig& cfg)
    : cfg_(cfg), dmem_(cfg.dmem_bytes), vector_(cfg.vector) {}

void SimdProcessor::load_program(const assembler::Program& program) {
  load_text(program.text, program.text_base);
  if (!program.data.empty()) {
    dmem_.write_block(program.data_base, program.data);
  }
}

void SimdProcessor::load_text(std::span<const u32> words, u32 base) {
  KVX_CHECK_MSG(base % 4 == 0, "text base must be word aligned");
  text_base_ = base;
  itext_.clear();
  itext_.reserve(words.size());
  for (u32 w : words) itext_.push_back(isa::decode(w));
  scalar_.set_pc(base);
  halted_ = false;
}

const isa::Instruction& SimdProcessor::fetch(u32 pc) {
  if (pc < text_base_ || pc % 4 != 0) {
    throw SimError(strfmt("bad fetch address 0x%08x", pc));
  }
  const usize idx = (pc - text_base_) / 4;
  if (idx >= itext_.size()) {
    throw SimError(strfmt("fetch past end of program at 0x%08x", pc));
  }
  return itext_[idx];
}

bool SimdProcessor::step() {
  if (halted_) return false;
  const u32 pc = scalar_.pc();
  const isa::Instruction& inst = fetch(pc);
  if (trace_) trace_(pc, inst);

  u32 cost;
  if (isa::is_vector(inst.op)) {
    // The scalar core decodes the instruction and forwards it to the vector
    // processing unit (VecISAInterface); the cost model charges the vector
    // unit's latency.
    cost = vector_.execute(inst, scalar_.regs(), dmem_, cfg_.cycle_model);
    scalar_.set_pc(pc + 4);
    ++stats_.vector_instructions;
    if (cfg_.cycle_model.decoupled_vpu) {
      // Dispatch costs the scalar core one cycle; the VPU occupies `cost`
      // cycles starting when it is free.
      const u64 issue = std::max(cycles_, vpu_busy_until_);
      vpu_busy_until_ = issue + cost;
      cycles_ = issue + 1;
      ++stats_.instructions;
      const std::string mnem(isa::mnemonic(inst.op));
      ++stats_.opcode_counts[mnem];
      stats_.opcode_cycles[mnem] += cost;
      stats_.vector_cycles += cost;
      stats_.cycles = cycles_;
      if (cycles_ > cfg_.max_cycles) {
        throw SimError(strfmt("watchdog: exceeded %llu cycles",
                              static_cast<unsigned long long>(cfg_.max_cycles)));
      }
      return true;
    }
  } else {
    const ScalarResult r = scalar_.execute(inst, dmem_, cfg_.cycle_model,
                                           cycles_, stats_.instructions);
    cost = r.cycles;
    ++stats_.scalar_instructions;
    if (r.csr_marker) {
      // Markers are simulation-only probes (the RTL-testbench analogue);
      // they must not perturb the measured region, so they cost 0 cycles.
      // In decoupled mode a marker observes full completion (VPU drained).
      cost = 0;
      markers_.push_back({r.marker_value, std::max(cycles_, vpu_busy_until_)});
    }
    if (r.csr_sn) vector_.set_sn(r.sn_value);
    if (r.halted) {
      halted_ = true;
      cycles_ = std::max(cycles_, vpu_busy_until_);  // drain the VPU
    }
  }

  cycles_ += cost;
  ++stats_.instructions;
  const std::string mnem(isa::mnemonic(inst.op));
  ++stats_.opcode_counts[mnem];
  stats_.opcode_cycles[mnem] += cost;
  if (isa::is_vector(inst.op)) stats_.vector_cycles += cost;
  stats_.cycles = cycles_;

  if (cycles_ > cfg_.max_cycles) {
    throw SimError(strfmt("watchdog: exceeded %llu cycles",
                          static_cast<unsigned long long>(cfg_.max_cycles)));
  }
  return !halted_;
}

u64 SimdProcessor::run() {
  while (step()) {
  }
  return cycles_;
}

void SimdProcessor::reset_run_state() {
  cycles_ = 0;
  vpu_busy_until_ = 0;
  halted_ = false;
  stats_ = RunStats{};
  markers_.clear();
  scalar_.reset();
  scalar_.set_pc(text_base_);
}

u64 SimdProcessor::cycles_between(u32 from, u32 to) const {
  std::optional<u64> a, b;
  for (const Marker& m : markers_) {
    if (!a && m.id == from) a = m.cycle;
    else if (a && !b && m.id == to) b = m.cycle;
  }
  if (!a || !b) throw SimError("marker pair not found");
  return *b - *a;
}

std::vector<u64> SimdProcessor::marker_deltas(u32 id) const {
  std::vector<u64> cycles;
  for (const Marker& m : markers_) {
    if (m.id == id) cycles.push_back(m.cycle);
  }
  std::vector<u64> deltas;
  for (usize i = 1; i < cycles.size(); ++i) {
    deltas.push_back(cycles[i] - cycles[i - 1]);
  }
  return deltas;
}

std::string RunStats::cycle_profile(usize top_n) const {
  std::vector<std::pair<std::string, u64>> rows(opcode_cycles.begin(),
                                                opcode_cycles.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (rows.size() > top_n) rows.resize(top_n);
  std::string out;
  for (const auto& [mnem, cyc] : rows) {
    out += strfmt("%-18s %10llu cycles  (%llu executions, %.1f%%)\n",
                  mnem.c_str(), static_cast<unsigned long long>(cyc),
                  static_cast<unsigned long long>(opcode_counts.at(mnem)),
                  cycles ? 100.0 * static_cast<double>(cyc) /
                               static_cast<double>(cycles)
                         : 0.0);
  }
  return out;
}

std::string RunStats::to_csv() const {
  std::string out = "mnemonic,count,cycles\n";
  for (const auto& [mnem, count] : opcode_counts) {
    const auto it = opcode_cycles.find(mnem);
    out += strfmt("%s,%llu,%llu\n", mnem.c_str(),
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(
                      it == opcode_cycles.end() ? 0 : it->second));
  }
  return out;
}

}  // namespace kvx::sim
