#include "kvx/sim/memory.hpp"

#include <cstring>

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::sim {

Memory::Memory(usize size_bytes) : bytes_(size_bytes, 0) {}

void Memory::check(u32 addr, usize len, unsigned align) const {
  if (static_cast<usize>(addr) + len > bytes_.size()) {
    throw SimError(strfmt("memory access 0x%08x+%zu out of bounds (size 0x%zx)",
                          addr, len, bytes_.size()));
  }
  if (align > 1 && addr % align != 0) {
    throw SimError(strfmt("misaligned %u-byte access at 0x%08x",
                          static_cast<unsigned>(len), addr));
  }
}

u8 Memory::read8(u32 addr) const {
  check(addr, 1, 1);
  return bytes_[addr];
}

u16 Memory::read16(u32 addr) const {
  check(addr, 2, 2);
  u16 v;
  std::memcpy(&v, bytes_.data() + addr, 2);
  return v;
}

u32 Memory::read32(u32 addr) const {
  check(addr, 4, 4);
  u32 v;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

u64 Memory::read64(u32 addr) const {
  check(addr, 8, 8);
  u64 v;
  std::memcpy(&v, bytes_.data() + addr, 8);
  return v;
}

void Memory::write8(u32 addr, u8 value) {
  check(addr, 1, 1);
  bytes_[addr] = value;
}

void Memory::write16(u32 addr, u16 value) {
  check(addr, 2, 2);
  std::memcpy(bytes_.data() + addr, &value, 2);
}

void Memory::write32(u32 addr, u32 value) {
  check(addr, 4, 4);
  std::memcpy(bytes_.data() + addr, &value, 4);
}

void Memory::write64(u32 addr, u64 value) {
  check(addr, 8, 8);
  std::memcpy(bytes_.data() + addr, &value, 8);
}

u64 Memory::read_element(u32 addr, unsigned width_bits) const {
  switch (width_bits) {
    case 8: return read8(addr);
    case 16: return read16(addr);
    case 32: return read32(addr);
    case 64: return read64(addr);
    default:
      throw SimError(strfmt("bad element width %u", width_bits));
  }
}

void Memory::write_element(u32 addr, unsigned width_bits, u64 value) {
  switch (width_bits) {
    case 8: write8(addr, static_cast<u8>(value)); return;
    case 16: write16(addr, static_cast<u16>(value)); return;
    case 32: write32(addr, static_cast<u32>(value)); return;
    case 64: write64(addr, value); return;
    default:
      throw SimError(strfmt("bad element width %u", width_bits));
  }
}

void Memory::write_block(u32 addr, std::span<const u8> data) {
  check(addr, data.size(), 1);
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void Memory::read_block(u32 addr, std::span<u8> out) const {
  check(addr, out.size(), 1);
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void Memory::clear() noexcept { std::fill(bytes_.begin(), bytes_.end(), u8{0}); }

}  // namespace kvx::sim
