#include "kvx/sim/trace_fusion.hpp"

#include <cstring>
#include <optional>
#include <utility>

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/keccak/permutation.hpp"

// Host-SIMD lowering: GCC/Clang vector extensions. __builtin_shufflevector
// arrived in GCC 12, so probe for the builtin rather than a version.
#if defined(KVX_HOST_SIMD) && KVX_HOST_SIMD && defined(__has_builtin)
#if __has_builtin(__builtin_shufflevector)
#define KVX_FUSION_SIMD 1
#endif
#endif
#ifndef KVX_FUSION_SIMD
#define KVX_FUSION_SIMD 0
#endif

namespace kvx::sim {

namespace {

/// Largest SN the super-kernels size their stack buffers for; wider traces
/// fall back to per-record replay (still correct, just unfused).
constexpr u32 kMaxSn = 16;

inline u64 ld64(const u8* p) noexcept {
  u64 v;
  std::memcpy(&v, p, 8);
  return v;
}
inline void st64(u8* p, u64 v) noexcept { std::memcpy(p, &v, 8); }
inline u32 ld32(const u8* p) noexcept {
  u32 v;
  std::memcpy(&v, p, 4);
  return v;
}
inline void st32(u8* p, u32 v) noexcept { std::memcpy(p, &v, 4); }

#if KVX_FUSION_SIMD
typedef u64 v4u64 __attribute__((vector_size(32)));
inline v4u64 ldv(const u8* p) noexcept {
  v4u64 v;
  std::memcpy(&v, p, 32);
  return v;
}
inline void stv(u8* p, v4u64 v) noexcept { std::memcpy(p, &v, 32); }
#endif

// ---------------------------------------------------------------------------
// Super-kernels. All offsets were validated by the matcher: plane spans are
// register-aligned (one row == one register == rb bytes == 5·sn elements)
// and scratch never aliases an input or output span.
// ---------------------------------------------------------------------------

/// θ over five 64-bit planes at `f.dst + k·rb`: column parity B, combine
/// D[x] = B[x-1] ^ rotl(B[x+1], 1), apply. B and D live in host registers —
/// the recorded scratch-register writes are elided (liveness-checked).
void run_theta64(u8* file, const FusedOp& f, u32 rb) {
  const u32 sn = f.sn;
  const u32 ne = 5u * sn;
  u64 B[5 * kMaxSn];
  u64 D[5 * kMaxSn];
  u8* p = file + f.dst;
  u32 e = 0;
#if KVX_FUSION_SIMD
  for (; e + 4 <= ne; e += 4) {
    const v4u64 acc = ldv(p + 8 * e) ^ ldv(p + rb + 8 * e) ^
                      ldv(p + 2 * rb + 8 * e) ^ ldv(p + 3 * rb + 8 * e) ^
                      ldv(p + 4 * rb + 8 * e);
    std::memcpy(&B[e], &acc, 32);
  }
#endif
  for (; e < ne; ++e) {
    B[e] = ld64(p + 8 * e) ^ ld64(p + rb + 8 * e) ^ ld64(p + 2 * rb + 8 * e) ^
           ld64(p + 3 * rb + 8 * e) ^ ld64(p + 4 * rb + 8 * e);
  }
  for (u32 i = 0; i < sn; ++i) {
    for (u32 j = 0; j < 5; ++j) {
      D[5 * i + j] =
          B[5 * i + (j + 4) % 5] ^ rotl64(B[5 * i + (j + 1) % 5], 1);
    }
  }
  for (u32 k = 0; k < 5; ++k) {
    u8* row = p + k * rb;
    e = 0;
#if KVX_FUSION_SIMD
    for (; e + 4 <= ne; e += 4) {
      v4u64 d;
      std::memcpy(&d, &D[e], 32);
      stv(row + 8 * e, ldv(row + 8 * e) ^ d);
    }
#endif
    for (; e < ne; ++e) st64(row + 8 * e, ld64(row + 8 * e) ^ D[e]);
  }
}

/// θ over the 32-bit split representation: lo halves at `f.dst + k·rb`, hi
/// halves at `f.dst2 + k·rb`. The rotate-by-one crosses the halves, so the
/// combine works on reassembled 64-bit lanes.
void run_theta32(u8* file, const FusedOp& f, u32 rb) {
  const u32 sn = f.sn;
  const u32 ne = 5u * sn;
  u32 Bl[5 * kMaxSn], Bh[5 * kMaxSn];
  u32 Dl[5 * kMaxSn], Dh[5 * kMaxSn];
  u8* lo = file + f.dst;
  u8* hi = file + f.dst2;
  for (u32 e = 0; e < ne; ++e) {
    Bl[e] = ld32(lo + 4 * e) ^ ld32(lo + rb + 4 * e) ^
            ld32(lo + 2 * rb + 4 * e) ^ ld32(lo + 3 * rb + 4 * e) ^
            ld32(lo + 4 * rb + 4 * e);
    Bh[e] = ld32(hi + 4 * e) ^ ld32(hi + rb + 4 * e) ^
            ld32(hi + 2 * rb + 4 * e) ^ ld32(hi + 3 * rb + 4 * e) ^
            ld32(hi + 4 * rb + 4 * e);
  }
  for (u32 i = 0; i < sn; ++i) {
    for (u32 j = 0; j < 5; ++j) {
      const u32 up = 5 * i + (j + 4) % 5;
      const u32 dn = 5 * i + (j + 1) % 5;
      const u64 rot = rotl64(concat32(Bh[dn], Bl[dn]), 1);
      Dl[5 * i + j] = Bl[up] ^ lo32(rot);
      Dh[5 * i + j] = Bh[up] ^ hi32(rot);
    }
  }
  for (u32 k = 0; k < 5; ++k) {
    u8* rl = lo + k * rb;
    u8* rh = hi + k * rb;
    for (u32 e = 0; e < ne; ++e) {
      st32(rl + 4 * e, ld32(rl + 4 * e) ^ Dl[e]);
      st32(rh + 4 * e, ld32(rh + 4 * e) ^ Dh[e]);
    }
  }
}

/// ρ+π over 64-bit planes: rotate each lane of source row r by ρ[r][x'] and
/// scatter it to output plane y = (2(x'-r)) mod 5, element 5i+r. The
/// matcher guarantees [dst, dst+5rb) and [src, src+5rb) are disjoint.
void run_rhopi64(u8* file, const FusedOp& f, u32 rb) {
  const u32 sn = f.sn;
  const auto& rho = keccak::rho_offsets();
  for (u32 r = 0; r < 5; ++r) {
    const u8* srow = file + f.src + r * rb;
    for (u32 i = 0; i < sn; ++i) {
      for (u32 xp = 0; xp < 5; ++xp) {
        const u64 val = rotl64(ld64(srow + 8 * (5 * i + xp)), rho[r][xp]);
        const u32 y = (2 * (xp + 5 - r)) % 5;
        st64(file + f.dst + y * rb + 8 * (5 * i + r), val);
      }
    }
  }
}

/// ρ+π over the 32-bit split representation. The π destinations are the
/// source planes themselves (lo→lo, hi→hi), so both source spans are
/// buffered before any store.
void run_rhopi32(u8* file, const FusedOp& f, u32 rb) {
  const u32 sn = f.sn;
  const u32 ne = 5u * sn;
  u32 lo[5 * 5 * kMaxSn], hi[5 * 5 * kMaxSn];
  for (u32 r = 0; r < 5; ++r) {
    for (u32 e = 0; e < ne; ++e) {
      lo[r * ne + e] = ld32(file + f.src + r * rb + 4 * e);
      hi[r * ne + e] = ld32(file + f.src2 + r * rb + 4 * e);
    }
  }
  const auto& rho = keccak::rho_offsets();
  for (u32 r = 0; r < 5; ++r) {
    for (u32 i = 0; i < sn; ++i) {
      for (u32 xp = 0; xp < 5; ++xp) {
        const u32 e = r * ne + 5 * i + xp;
        const u64 val = rotl64(concat32(hi[e], lo[e]), rho[r][xp]);
        const u32 y = (2 * (xp + 5 - r)) % 5;
        const u32 off = y * rb + 4 * (5 * i + r);
        st32(file + f.dst + off, lo32(val));
        st32(file + f.dst2 + off, hi32(val));
      }
    }
  }
}

/// χ rows: out[x] = f[x] ^ (~f[x+1] & f[x+2]) within each 5-lane group of
/// every row, plus the optionally merged ι (RC into lane x=0 of row 0).
/// Safe for out == f: each 5-group is fully read before it is written.
void run_chi(u8* file, const FusedOp& f, u32 rb) {
  const u32 sn = f.sn;
  const bool iota = (f.flags & kFusedHasIota) != 0;
  if (f.sew == 64) {
    for (u32 r = 0; r < 5; ++r) {
      const u8* fr = file + f.src + r * rb;
      u8* orow = file + f.dst + r * rb;
      for (u32 i = 0; i < sn; ++i) {
#if KVX_FUSION_SIMD
        const v4u64 a = ldv(fr + 8 * (5 * i));      // f0 f1 f2 f3
        const v4u64 b = ldv(fr + 8 * (5 * i + 1));  // f1 f2 f3 f4
        const v4u64 c = __builtin_shufflevector(a, b, 2, 3, 7, 0);
        v4u64 o = a ^ (~b & c);
        const u64 o4 = b[3] ^ (~a[0] & a[1]);  // f4 ^ (~f0 & f1)
        if (iota && r == 0) o[0] ^= f.iota_rc;
        stv(orow + 8 * (5 * i), o);
        st64(orow + 8 * (5 * i + 4), o4);
#else
        u64 t[5], o[5];
        for (u32 j = 0; j < 5; ++j) t[j] = ld64(fr + 8 * (5 * i + j));
        for (u32 j = 0; j < 5; ++j) {
          o[j] = t[j] ^ (~t[(j + 1) % 5] & t[(j + 2) % 5]);
        }
        if (iota && r == 0) o[0] ^= f.iota_rc;
        for (u32 j = 0; j < 5; ++j) st64(orow + 8 * (5 * i + j), o[j]);
#endif
      }
    }
  } else {
    const u32 rc = static_cast<u32>(f.iota_rc);
    for (u32 r = 0; r < 5; ++r) {
      const u8* fr = file + f.src + r * rb;
      u8* orow = file + f.dst + r * rb;
      for (u32 i = 0; i < sn; ++i) {
        u32 t[5], o[5];
        for (u32 j = 0; j < 5; ++j) t[j] = ld32(fr + 4 * (5 * i + j));
        for (u32 j = 0; j < 5; ++j) {
          o[j] = t[j] ^ (~t[(j + 1) % 5] & t[(j + 2) % 5]);
        }
        if (iota && r == 0) o[0] ^= rc;
        for (u32 j = 0; j < 5; ++j) st32(orow + 4 * (5 * i + j), o[j]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pattern matcher. Works purely on record shapes and byte offsets, so it is
// independent of which program builder (or hand-written program) produced
// the trace; anything that doesn't match replays per record.
// ---------------------------------------------------------------------------

/// [a, a+alen) and [b, b+blen) do not overlap.
constexpr bool disjoint(u32 a, u32 alen, u32 b, u32 blen) noexcept {
  return a + alen <= b || b + blen <= a;
}

/// Effective left-shift of a kSlideMod5 record (mirrors run_slide_mod5).
inline u32 slide_shift(const TraceOp& o) noexcept {
  return static_cast<u32>(o.imm % 5 + 10) % 5u;
}

struct Group {
  FusedOp op;
  /// Elided-write ranges; any byte live-out of the group demotes it.
  std::vector<std::pair<u32, u32>> scratch;
  bool demoted = false;
};

void add_scratch(Group& g, u32 off, u32 len) {
  for (const auto& [o, l] : g.scratch) {
    if (o == off && l == len) return;
  }
  g.scratch.emplace_back(off, len);
}

class Matcher {
 public:
  explicit Matcher(const CompiledTrace& t)
      : t_(t), ops_(t.ops()), rb_(static_cast<u32>(t.reg_bytes())) {}

  std::vector<Group> run() {
    std::vector<Group> groups;
    usize i = 0;
    while (i < ops_.size()) {
      std::optional<Group> g;
      if (!g) g = try_theta64(i);
      if (!g) g = try_theta32(i);
      if (!g) g = try_rhopi64(i);
      if (!g) g = try_rhopi32(i);
      if (!g) g = try_chi(i);
      if (g) {
        i = g->op.first + g->op.count;
        groups.push_back(std::move(*g));
      } else {
        ++i;
      }
    }
    return groups;
  }

 private:
  [[nodiscard]] bool have(usize i, usize n) const noexcept {
    return i + n <= ops_.size();
  }
  [[nodiscard]] const TraceOp& at(usize i) const noexcept { return ops_[i]; }

  [[nodiscard]] bool is_vv(const TraceOp& o, TraceBinOp bin, u8 sew,
                           u32 n) const noexcept {
    return o.kind == TraceOpKind::kBinVV && o.bin == bin && o.sew == sew &&
           o.n == n;
  }
  [[nodiscard]] bool is_slide(const TraceOp& o, u8 sew, u32 sn,
                              u32 shift) const noexcept {
    return o.kind == TraceOpKind::kSlideMod5 && o.sew == sew && o.sn == sn &&
           slide_shift(o) == shift;
  }

  /// The 4-record column-parity chain both θ forms open with:
  ///   t0 = P3 ^ P4;  t1 = P1 ^ P2;  t2 = P0 ^ t1;  B(=t0) = t0 ^ t2
  /// with P0..P4 five ascending rb-strided planes. Returns (base, B, t1, t2).
  struct Parity {
    u32 base, B, t1, t2;
  };
  [[nodiscard]] std::optional<Parity> match_parity(usize i, u8 sew,
                                                   u32 ne) const {
    const TraceOp &o0 = at(i), &o1 = at(i + 1), &o2 = at(i + 2),
                  &o3 = at(i + 3);
    if (!is_vv(o0, TraceBinOp::kXor, sew, ne) ||
        !is_vv(o1, TraceBinOp::kXor, sew, ne) ||
        !is_vv(o2, TraceBinOp::kXor, sew, ne) ||
        !is_vv(o3, TraceBinOp::kXor, sew, ne)) {
      return std::nullopt;
    }
    if (o2.b != o1.d || o3.d != o0.d || o3.a != o0.d || o3.b != o2.d) {
      return std::nullopt;
    }
    const u32 base = o2.a;
    if (o1.a != base + rb_ || o1.b != base + 2 * rb_ ||
        o0.a != base + 3 * rb_ || o0.b != base + 4 * rb_) {
      return std::nullopt;
    }
    return Parity{base, o0.d, o1.d, o2.d};
  }

  /// The five `plane ^= D` records that close every θ form.
  [[nodiscard]] bool match_applies(usize i, u8 sew, u32 ne, u32 base,
                                   u32 D) const {
    for (u32 k = 0; k < 5; ++k) {
      const TraceOp& o = at(i + k);
      if (!is_vv(o, TraceBinOp::kXor, sew, ne) || o.d != base + k * rb_ ||
          o.a != o.d || o.b != D) {
        return false;
      }
    }
    return true;
  }

  std::optional<Group> try_theta64(usize i) {
    if (!have(i, 10)) return std::nullopt;
    const TraceOp& o0 = at(i);
    if (o0.kind != TraceOpKind::kBinVV || o0.sew != 64) return std::nullopt;
    const u32 ne = o0.n;
    if (ne % 5 != 0 || ne == 0) return std::nullopt;
    const u32 sn = ne / 5;
    if (sn > kMaxSn || ne * 8 != rb_) return std::nullopt;
    const auto par = match_parity(i, 64, ne);
    if (!par) return std::nullopt;
    const u32 span = 5 * rb_;

    Group g;
    g.op.kind = FusedOpKind::kTheta64;
    g.op.sn = static_cast<u8>(sn);
    g.op.sew = 64;
    g.op.first = static_cast<u32>(i);
    g.op.dst = par->base;
    for (u32 s : {par->B, par->t1, par->t2}) {
      if (!disjoint(s, rb_, par->base, span)) return std::nullopt;
      add_scratch(g, s, rb_);
    }

    // Fused-ISE form: vthetac collapses the slide/rotate/xor combine.
    const TraceOp& o4 = at(i + 4);
    if (o4.kind == TraceOpKind::kThetaCRow && o4.sew == 64 && o4.sn == sn &&
        o4.a == par->B) {
      if (!disjoint(o4.d, rb_, par->base, span)) return std::nullopt;
      if (!match_applies(i + 5, 64, ne, par->base, o4.d)) return std::nullopt;
      add_scratch(g, o4.d, rb_);
      g.op.count = 10;
      return g;
    }

    // Standard form: slide-up, slide-down, rotate, combine, apply.
    if (!have(i, 13)) return std::nullopt;
    const TraceOp& su = at(i + 4);
    const TraceOp& sd = at(i + 5);
    const TraceOp& ro = at(i + 6);
    const TraceOp& cx = at(i + 7);
    if (!is_slide(su, 64, sn, 4) || su.a != par->B) return std::nullopt;
    if (!is_slide(sd, 64, sn, 1) || sd.a != par->B) return std::nullopt;
    if (ro.kind != TraceOpKind::kRotup64 || ro.sn != sn || ro.d != sd.d ||
        ro.a != sd.d || ro.imm != 1) {
      return std::nullopt;
    }
    if (!is_vv(cx, TraceBinOp::kXor, 64, ne) || cx.a != su.d || cx.b != sd.d) {
      return std::nullopt;
    }
    if (su.d == sd.d) return std::nullopt;
    for (u32 s : {su.d, sd.d, cx.d}) {
      if (!disjoint(s, rb_, par->base, span)) return std::nullopt;
      add_scratch(g, s, rb_);
    }
    if (!match_applies(i + 8, 64, ne, par->base, cx.d)) return std::nullopt;
    g.op.count = 13;
    return g;
  }

  std::optional<Group> try_theta32(usize i) {
    if (!have(i, 26)) return std::nullopt;
    const TraceOp& o0 = at(i);
    if (o0.kind != TraceOpKind::kBinVV || o0.sew != 32) return std::nullopt;
    const u32 ne = o0.n;
    if (ne % 5 != 0 || ne == 0) return std::nullopt;
    const u32 sn = ne / 5;
    if (sn > kMaxSn || ne * 4 != rb_) return std::nullopt;
    const auto lo = match_parity(i, 32, ne);
    const auto hi = lo ? match_parity(i + 4, 32, ne) : std::nullopt;
    if (!lo || !hi) return std::nullopt;
    const u32 span = 5 * rb_;
    if (!disjoint(lo->base, span, hi->base, span)) return std::nullopt;

    const TraceOp& sul = at(i + 8);
    const TraceOp& suh = at(i + 9);
    const TraceOp& sdl = at(i + 10);
    const TraceOp& sdh = at(i + 11);
    if (!is_slide(sul, 32, sn, 4) || sul.a != lo->B) return std::nullopt;
    if (!is_slide(suh, 32, sn, 4) || suh.a != hi->B) return std::nullopt;
    if (!is_slide(sdl, 32, sn, 1) || sdl.a != lo->B) return std::nullopt;
    if (!is_slide(sdh, 32, sn, 1) || sdh.a != hi->B) return std::nullopt;
    const TraceOp& rl = at(i + 12);
    const TraceOp& rh = at(i + 13);
    if (rl.kind != TraceOpKind::kRot32Pair || rl.flag != 0 || rl.sn != sn ||
        rl.a != sdh.d || rl.b != sdl.d) {
      return std::nullopt;
    }
    if (rh.kind != TraceOpKind::kRot32Pair || rh.flag != 1 || rh.sn != sn ||
        rh.a != sdh.d || rh.b != sdl.d) {
      return std::nullopt;
    }
    const TraceOp& cl = at(i + 14);
    const TraceOp& ch = at(i + 15);
    if (!is_vv(cl, TraceBinOp::kXor, 32, ne) || cl.a != sul.d ||
        cl.b != rl.d) {
      return std::nullopt;
    }
    if (!is_vv(ch, TraceBinOp::kXor, 32, ne) || ch.a != suh.d ||
        ch.b != rh.d) {
      return std::nullopt;
    }
    if (!match_applies(i + 16, 32, ne, lo->base, cl.d) ||
        !match_applies(i + 21, 32, ne, hi->base, ch.d)) {
      return std::nullopt;
    }

    Group g;
    g.op.kind = FusedOpKind::kTheta32;
    g.op.sn = static_cast<u8>(sn);
    g.op.sew = 32;
    g.op.first = static_cast<u32>(i);
    g.op.count = 26;
    g.op.dst = lo->base;
    g.op.dst2 = hi->base;
    for (u32 s : {lo->B, lo->t1, lo->t2, hi->B, hi->t1, hi->t2, sul.d, suh.d,
                  sdl.d, sdh.d, rl.d, rh.d, cl.d, ch.d}) {
      if (!disjoint(s, rb_, lo->base, span) ||
          !disjoint(s, rb_, hi->base, span)) {
        return std::nullopt;
      }
      add_scratch(g, s, rb_);
    }
    return g;
  }

  std::optional<Group> try_rhopi64(usize i) {
    if (!have(i, 5)) return std::nullopt;
    const u32 span = 5 * rb_;

    // Form B: five fused vrhopi row records (no scratch at all).
    if (at(i).kind == TraceOpKind::kRhoPiRow) {
      const u32 sn = at(i).sn;
      const u32 src = at(i).a;
      const u32 dst = at(i).d;
      if (sn == 0 || sn > kMaxSn || 5 * sn * 8 != rb_) return std::nullopt;
      for (u32 r = 0; r < 5; ++r) {
        const TraceOp& o = at(i + r);
        if (o.kind != TraceOpKind::kRhoPiRow || o.sew != 64 || o.sn != sn ||
            o.table_row != r || o.a != src + r * rb_ || o.d != dst) {
          return std::nullopt;
        }
      }
      if (!disjoint(src, span, dst, span)) return std::nullopt;
      Group g;
      g.op.kind = FusedOpKind::kRhoPi64;
      g.op.sn = static_cast<u8>(sn);
      g.op.sew = 64;
      g.op.first = static_cast<u32>(i);
      g.op.count = 5;
      g.op.src = src;
      g.op.dst = dst;
      return g;
    }

    // Form A: five in-place ρ rows followed by five π scatter rows. The
    // rho'd values in the source planes are the scratch here.
    if (!have(i, 10) || at(i).kind != TraceOpKind::kRho64Row) {
      return std::nullopt;
    }
    const u32 sn = at(i).sn;
    const u32 src = at(i).a;
    if (sn == 0 || sn > kMaxSn || 5 * sn * 8 != rb_) return std::nullopt;
    for (u32 r = 0; r < 5; ++r) {
      const TraceOp& o = at(i + r);
      if (o.kind != TraceOpKind::kRho64Row || o.sew != 64 || o.sn != sn ||
          o.table_row != r || o.a != src + r * rb_ || o.d != o.a) {
        return std::nullopt;
      }
    }
    const u32 dst = at(i + 5).d;
    for (u32 r = 0; r < 5; ++r) {
      const TraceOp& o = at(i + 5 + r);
      if (o.kind != TraceOpKind::kPiRow || o.sew != 64 || o.sn != sn ||
          o.table_row != r || o.a != src + r * rb_ || o.d != dst) {
        return std::nullopt;
      }
    }
    if (!disjoint(src, span, dst, span)) return std::nullopt;
    Group g;
    g.op.kind = FusedOpKind::kRhoPi64;
    g.op.sn = static_cast<u8>(sn);
    g.op.sew = 64;
    g.op.first = static_cast<u32>(i);
    g.op.count = 10;
    g.op.src = src;
    g.op.dst = dst;
    g.scratch.emplace_back(src, span);
    return g;
  }

  std::optional<Group> try_rhopi32(usize i) {
    if (!have(i, 20) || at(i).kind != TraceOpKind::kRho32Row) {
      return std::nullopt;
    }
    const u32 sn = at(i).sn;
    const u32 hi_src = at(i).a;
    const u32 lo_src = at(i).b;
    const u32 dl = at(i).d;
    const u32 dh = at(i + 5).d;
    if (sn == 0 || sn > kMaxSn || 5 * sn * 4 != rb_) return std::nullopt;
    for (u32 r = 0; r < 5; ++r) {
      const TraceOp& olo = at(i + r);
      const TraceOp& ohi = at(i + 5 + r);
      if (olo.kind != TraceOpKind::kRho32Row || olo.flag != 0 ||
          olo.sn != sn || olo.table_row != r || olo.a != hi_src + r * rb_ ||
          olo.b != lo_src + r * rb_ || olo.d != dl + r * rb_) {
        return std::nullopt;
      }
      if (ohi.kind != TraceOpKind::kRho32Row || ohi.flag != 1 ||
          ohi.sn != sn || ohi.table_row != r || ohi.a != hi_src + r * rb_ ||
          ohi.b != lo_src + r * rb_ || ohi.d != dh + r * rb_) {
        return std::nullopt;
      }
    }
    const u32 lo_dst = at(i + 10).d;
    const u32 hi_dst = at(i + 15).d;
    for (u32 r = 0; r < 5; ++r) {
      const TraceOp& plo = at(i + 10 + r);
      const TraceOp& phi = at(i + 15 + r);
      if (plo.kind != TraceOpKind::kPiRow || plo.sew != 32 || plo.sn != sn ||
          plo.table_row != r || plo.a != dl + r * rb_ || plo.d != lo_dst) {
        return std::nullopt;
      }
      if (phi.kind != TraceOpKind::kPiRow || phi.sew != 32 || phi.sn != sn ||
          phi.table_row != r || phi.a != dh + r * rb_ || phi.d != hi_dst) {
        return std::nullopt;
      }
    }
    const u32 span = 5 * rb_;
    // The ρ scratch spans must alias nothing the kernel reads or writes;
    // the π destinations may alias the sources (they are buffered).
    if (!disjoint(dl, span, dh, span) ||
        !disjoint(lo_src, span, hi_src, span) ||
        !disjoint(lo_dst, span, hi_dst, span)) {
      return std::nullopt;
    }
    for (u32 s : {dl, dh}) {
      if (!disjoint(s, span, lo_src, span) ||
          !disjoint(s, span, hi_src, span) ||
          !disjoint(s, span, lo_dst, span) ||
          !disjoint(s, span, hi_dst, span)) {
        return std::nullopt;
      }
    }
    Group g;
    g.op.kind = FusedOpKind::kRhoPi32;
    g.op.sn = static_cast<u8>(sn);
    g.op.sew = 32;
    g.op.first = static_cast<u32>(i);
    g.op.count = 20;
    g.op.src = lo_src;
    g.op.src2 = hi_src;
    g.op.dst = lo_dst;
    g.op.dst2 = hi_dst;
    g.scratch.emplace_back(dl, span);
    g.scratch.emplace_back(dh, span);
    return g;
  }

  /// Merge a directly following ι record into a χ group: it must target
  /// exactly output row 0 in place (d == a == out, one row of elements).
  void merge_iota(Group& g, u8 sew, u32 sn, u32 out) {
    const usize j = g.op.first + g.op.count;
    if (!have(j, 1)) return;
    const TraceOp& o = at(j);
    if (o.kind != TraceOpKind::kIota || o.sew != sew || o.d != out ||
        o.a != out || o.n != 5 * sn) {
      return;
    }
    g.op.count += 1;
    g.op.flags |= kFusedHasIota;
    g.op.iota_rc = t_.wide_imm(o);
  }

  std::optional<Group> try_chi(usize i) {
    if (!have(i, 5)) return std::nullopt;
    const u32 span = 5 * rb_;

    // Form C: five fused vchi row records.
    if (at(i).kind == TraceOpKind::kChiRow) {
      const u8 sew = at(i).sew;
      const u32 sn = at(i).sn;
      const u32 src = at(i).a;
      const u32 dst = at(i).d;
      if (sn == 0 || sn > kMaxSn || 5 * sn * (sew / 8u) != rb_) {
        return std::nullopt;
      }
      for (u32 r = 0; r < 5; ++r) {
        const TraceOp& o = at(i + r);
        if (o.kind != TraceOpKind::kChiRow || o.sew != sew || o.sn != sn ||
            o.a != src + r * rb_ || o.d != dst + r * rb_) {
          return std::nullopt;
        }
      }
      if (dst != src && !disjoint(src, span, dst, span)) return std::nullopt;
      Group g;
      g.op.kind = FusedOpKind::kChi;
      g.op.sn = static_cast<u8>(sn);
      g.op.sew = sew;
      g.op.first = static_cast<u32>(i);
      g.op.count = 5;
      g.op.src = src;
      g.op.dst = dst;
      merge_iota(g, sew, sn, dst);
      return g;
    }

    if (at(i).kind != TraceOpKind::kSlideMod5) return std::nullopt;
    const u8 sew = at(i).sew;
    const u32 sn = at(i).sn;
    const u32 esz = sew / 8u;
    if (sn == 0 || sn > kMaxSn || 5 * sn * esz != rb_) return std::nullopt;
    const u32 ne = 5 * sn;
    const u64 ones = sew == 64 ? ~u64{0} : u64{0xFFFFFFFF};
    const u32 f = at(i).a;
    const u32 u = at(i).d;

    // Form A (grouped): slides and ALU ops each cover the whole 5-row span.
    const auto grouped = [&]() -> std::optional<Group> {
      if (!have(i, 13)) return std::nullopt;
      for (u32 r = 0; r < 5; ++r) {
        const TraceOp& o = at(i + r);
        if (!is_slide(o, sew, sn, 1) || o.a != f + r * rb_ ||
            o.d != u + r * rb_) {
          return std::nullopt;
        }
      }
      const TraceOp& ng = at(i + 5);
      if (ng.kind != TraceOpKind::kBinVS || ng.bin != TraceBinOp::kXor ||
          ng.sew != sew || ng.n != 5 * ne || ng.d != u || ng.a != u ||
          t_.wide_imm(ng) != ones) {
        return std::nullopt;
      }
      const u32 w = at(i + 6).d;
      for (u32 r = 0; r < 5; ++r) {
        const TraceOp& o = at(i + 6 + r);
        if (!is_slide(o, sew, sn, 2) || o.a != f + r * rb_ ||
            o.d != w + r * rb_) {
          return std::nullopt;
        }
      }
      const TraceOp& an = at(i + 11);
      if (!is_vv(an, TraceBinOp::kAnd, sew, 5 * ne) || an.d != u ||
          an.a != u || an.b != w) {
        return std::nullopt;
      }
      const TraceOp& ox = at(i + 12);
      if (!is_vv(ox, TraceBinOp::kXor, sew, 5 * ne) || ox.a != f ||
          ox.b != u) {
        return std::nullopt;
      }
      const u32 out = ox.d;
      if (!disjoint(u, span, f, span) || !disjoint(w, span, f, span) ||
          !disjoint(u, span, w, span) || !disjoint(u, span, out, span) ||
          !disjoint(w, span, out, span)) {
        return std::nullopt;
      }
      if (out != f && !disjoint(out, span, f, span)) return std::nullopt;
      Group g;
      g.op.kind = FusedOpKind::kChi;
      g.op.sn = static_cast<u8>(sn);
      g.op.sew = sew;
      g.op.first = static_cast<u32>(i);
      g.op.count = 13;
      g.op.src = f;
      g.op.dst = out;
      g.scratch.emplace_back(u, span);
      g.scratch.emplace_back(w, span);
      merge_iota(g, sew, sn, out);
      return g;
    };

    // Form B (row-wise): the same dataflow emitted as five per-plane record
    // columns (the LMUL=1 program).
    const auto rowwise = [&]() -> std::optional<Group> {
      if (!have(i, 25)) return std::nullopt;
      for (u32 k = 0; k < 5; ++k) {
        const TraceOp& o = at(i + k);
        if (!is_slide(o, sew, sn, 1) || o.a != f + k * rb_ ||
            o.d != u + k * rb_) {
          return std::nullopt;
        }
      }
      for (u32 k = 0; k < 5; ++k) {
        const TraceOp& o = at(i + 5 + k);
        if (o.kind != TraceOpKind::kBinVS || o.bin != TraceBinOp::kXor ||
            o.sew != sew || o.n != ne || o.d != u + k * rb_ || o.a != o.d ||
            t_.wide_imm(o) != ones) {
          return std::nullopt;
        }
      }
      const u32 w = at(i + 10).d;
      for (u32 k = 0; k < 5; ++k) {
        const TraceOp& o = at(i + 10 + k);
        if (!is_slide(o, sew, sn, 2) || o.a != f + k * rb_ ||
            o.d != w + k * rb_) {
          return std::nullopt;
        }
      }
      for (u32 k = 0; k < 5; ++k) {
        const TraceOp& o = at(i + 15 + k);
        if (!is_vv(o, TraceBinOp::kAnd, sew, ne) || o.d != u + k * rb_ ||
            o.a != o.d || o.b != w + k * rb_) {
          return std::nullopt;
        }
      }
      const u32 out = at(i + 20).d;
      for (u32 k = 0; k < 5; ++k) {
        const TraceOp& o = at(i + 20 + k);
        if (!is_vv(o, TraceBinOp::kXor, sew, ne) || o.d != out + k * rb_ ||
            o.a != f + k * rb_ || o.b != u + k * rb_) {
          return std::nullopt;
        }
      }
      if (!disjoint(u, span, f, span) || !disjoint(w, span, f, span) ||
          !disjoint(u, span, w, span) || !disjoint(u, span, out, span) ||
          !disjoint(w, span, out, span)) {
        return std::nullopt;
      }
      if (out != f && !disjoint(out, span, f, span)) return std::nullopt;
      Group g;
      g.op.kind = FusedOpKind::kChi;
      g.op.sn = static_cast<u8>(sn);
      g.op.sew = sew;
      g.op.first = static_cast<u32>(i);
      g.op.count = 25;
      g.op.src = f;
      g.op.dst = out;
      g.scratch.emplace_back(u, span);
      g.scratch.emplace_back(w, span);
      merge_iota(g, sew, sn, out);
      return g;
    };

    if (auto g = grouped()) return g;
    return rowwise();
  }

  const CompiledTrace& t_;
  const std::vector<TraceOp>& ops_;
  u32 rb_;
};

// ---------------------------------------------------------------------------
// Liveness. One backward pass over the RECORDED reads/writes (replay
// semantics) with a byte-granular map; every byte is live at end-of-trace
// because callers compare the final register file. Replay liveness is sound
// for the demotion decision: fused groups read a subset of (and demoted
// groups write exactly) what their records do.
// ---------------------------------------------------------------------------

class LiveMap {
 public:
  explicit LiveMap(usize bytes) : live_(bytes, u8{1}) {}

  void set(u32 off, u32 len) noexcept {
    for (u32 b = off; b < off + len && b < live_.size(); ++b) live_[b] = 1;
  }
  void clear(u32 off, u32 len) noexcept {
    for (u32 b = off; b < off + len && b < live_.size(); ++b) live_[b] = 0;
  }
  void set_all() noexcept { std::memset(live_.data(), 1, live_.size()); }
  [[nodiscard]] bool any(u32 off, u32 len) const noexcept {
    for (u32 b = off; b < off + len && b < live_.size(); ++b) {
      if (live_[b]) return true;
    }
    return false;
  }

 private:
  std::vector<u8> live_;
};

/// Backward transfer: live = (live − writes) ∪ reads.
void transfer(const TraceOp& op, LiveMap& lv, u32 rb) {
  const u32 esz = op.sew / 8u;
  const u32 row = 5u * op.sn * esz;
  switch (op.kind) {
    case TraceOpKind::kBinVV:
      lv.clear(op.d, op.n * esz);
      lv.set(op.a, op.n * esz);
      lv.set(op.b, op.n * esz);
      break;
    case TraceOpKind::kBinVS:
      lv.clear(op.d, op.n * esz);
      lv.set(op.a, op.n * esz);
      break;
    case TraceOpKind::kSplat:
      lv.clear(op.d, op.n * esz);
      break;
    case TraceOpKind::kCopyReg:
      lv.clear(op.d, op.n);
      lv.set(op.a, op.n);
      break;
    case TraceOpKind::kLoadUnit:
      lv.clear(op.d, op.n);
      break;
    case TraceOpKind::kStoreUnit:
      lv.set(op.d, op.n);
      break;
    case TraceOpKind::kLoadGather:
      // Element targets aren't enumerated here; not killing is conservative.
      break;
    case TraceOpKind::kStoreScatter:
      lv.set_all();  // reads scattered regfile bytes — keep everything live
      break;
    case TraceOpKind::kScalarStore:
      break;
    case TraceOpKind::kSlideMod5:
    case TraceOpKind::kRotup64:
    case TraceOpKind::kRho64Row:
    case TraceOpKind::kThetaCRow:
    case TraceOpKind::kChiRow:
      lv.clear(op.d, row);
      lv.set(op.a, row);
      break;
    case TraceOpKind::kRho32Row:
    case TraceOpKind::kRot32Pair:
      lv.clear(op.d, row);
      lv.set(op.a, row);
      lv.set(op.b, row);
      break;
    case TraceOpKind::kIota:
      lv.clear(op.d, op.n * esz);
      lv.set(op.a, op.n * esz);
      break;
    case TraceOpKind::kPiRow:
    case TraceOpKind::kRhoPiRow:
      for (u32 i = 0; i < op.sn; ++i) {
        for (u32 xp = 0; xp < 5; ++xp) {
          const u32 y = (2 * (xp + 5 - op.table_row)) % 5;
          lv.clear(op.d + y * rb + (5 * i + op.table_row) * esz, esz);
        }
      }
      lv.set(op.a, row);
      break;
    case TraceOpKind::kGeneric:
      lv.set_all();  // conservative: reads everything, kills nothing
      break;
  }
}

void demote_live_scratch(const CompiledTrace& t, std::vector<Group>& groups) {
  const auto& ops = t.ops();
  const u32 rb = static_cast<u32>(t.reg_bytes());
  std::vector<i32> group_at(ops.size(), -1);
  for (usize gi = 0; gi < groups.size(); ++gi) {
    group_at[groups[gi].op.first + groups[gi].op.count - 1] =
        static_cast<i32>(gi);
  }
  LiveMap lv(32 * static_cast<usize>(rb));
  for (usize i = ops.size(); i-- > 0;) {
    if (const i32 gi = group_at[i]; gi >= 0) {
      // The map right before applying record i's transfer is the group's
      // live-out set: i is the group's last record.
      for (const auto& [off, len] : groups[static_cast<usize>(gi)].scratch) {
        if (lv.any(off, len)) {
          groups[static_cast<usize>(gi)].demoted = true;
          break;
        }
      }
    }
    transfer(ops[i], lv, rb);
  }
}

}  // namespace

void FusedTrace::execute_op(const FusedOp& f, VectorUnit& vu, Memory& mem,
                            const CycleModel& cm) const {
  u8* file = vu.file_data();
  const u32 rb = static_cast<u32>(base_->reg_bytes());
  switch (f.kind) {
    case FusedOpKind::kReplayRange: {
      const auto& ops = base_->ops();
      for (u32 i = f.first; i < f.first + f.count; ++i) {
        base_->execute_op(ops[i], vu, mem, cm, file);
      }
      break;
    }
    case FusedOpKind::kTheta64: run_theta64(file, f, rb); break;
    case FusedOpKind::kTheta32: run_theta32(file, f, rb); break;
    case FusedOpKind::kRhoPi64: run_rhopi64(file, f, rb); break;
    case FusedOpKind::kRhoPi32: run_rhopi32(file, f, rb); break;
    case FusedOpKind::kChi: run_chi(file, f, rb); break;
  }
}

void FusedTrace::execute(VectorUnit& vu, Memory& mem,
                         const CycleModel& cm) const {
  KVX_CHECK_MSG(vu.reg_bytes() == base_->reg_bytes(),
                "trace compiled for a different vector configuration");
  const unsigned entry_sn = vu.config().effective_sn();
  for (const FusedOp& f : fused_) execute_op(f, vu, mem, cm);
  if (vu.config().effective_sn() != entry_sn) vu.set_sn(entry_sn);
}

std::shared_ptr<const FusedTrace> fuse_trace(
    std::shared_ptr<const CompiledTrace> base) {
  auto fused = std::make_shared<FusedTrace>();
  fused->base_ = std::move(base);
  const CompiledTrace& t = *fused->base_;

  std::vector<Group> groups = Matcher(t).run();
  demote_live_scratch(t, groups);

  const u32 nops = static_cast<u32>(t.op_count());
  u32 pos = 0;
  const auto add_replay = [&fused](u32 from, u32 to) {
    if (to > from) {
      FusedOp r;
      r.kind = FusedOpKind::kReplayRange;
      r.first = from;
      r.count = to - from;
      fused->fused_.push_back(r);
    }
  };
  for (const Group& g : groups) {
    if (g.demoted) continue;  // its records join the surrounding replay run
    add_replay(pos, g.op.first);
    fused->fused_.push_back(g.op);
    fused->fused_records_ += g.op.count;
    ++fused->super_kernels_;
    pos = g.op.first + g.op.count;
  }
  add_replay(pos, nops);
  return fused;
}

bool fusion_host_simd() noexcept { return KVX_FUSION_SIMD != 0; }

}  // namespace kvx::sim
