#include "kvx/sim/compiled_trace.hpp"

#include <chrono>
#include <cstring>

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/isa/encoding.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/trace_event.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/jit/jit_trace.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace kvx::sim {

using isa::Format;
using isa::Instruction;
using isa::Opcode;
using isa::VMop;
using isa::VOperands;

namespace {

// Register-file accessors. Offsets are byte offsets produced by the trace
// compiler; memcpy keeps the accesses well-defined at any alignment and
// compiles to single moves (the loops below autovectorize).
inline u64 ld64(const u8* p) noexcept {
  u64 v;
  std::memcpy(&v, p, 8);
  return v;
}
inline void st64(u8* p, u64 v) noexcept { std::memcpy(p, &v, 8); }
inline u32 ld32(const u8* p) noexcept {
  u32 v;
  std::memcpy(&v, p, 4);
  return v;
}
inline void st32(u8* p, u32 v) noexcept { std::memcpy(p, &v, 4); }

template <typename T>
inline T ld(const u8* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
inline void st(u8* p, T v) noexcept {
  std::memcpy(p, &v, sizeof(T));
}

/// d[i] = f(a[i], b[i]) — ascending element order with read-before-write of
/// each index, matching the interpreter's overlap behaviour.
template <typename T, typename F>
inline void bin_vv(u8* file, const TraceOp& op, F f) {
  u8* d = file + op.d;
  const u8* a = file + op.a;
  const u8* b = file + op.b;
  for (u32 i = 0; i < op.n; ++i) {
    st<T>(d + i * sizeof(T),
          f(ld<T>(a + i * sizeof(T)), ld<T>(b + i * sizeof(T))));
  }
}

template <typename T, typename F>
inline void bin_vs(u8* file, const TraceOp& op, u64 imm, F f) {
  u8* d = file + op.d;
  const u8* a = file + op.a;
  const T s = static_cast<T>(imm);
  for (u32 i = 0; i < op.n; ++i) {
    st<T>(d + i * sizeof(T), f(ld<T>(a + i * sizeof(T)), s));
  }
}

template <typename T>
void run_bin_vv(u8* file, const TraceOp& op) {
  switch (op.bin) {
    case TraceBinOp::kXor: bin_vv<T>(file, op, [](T x, T y) { return T(x ^ y); }); break;
    case TraceBinOp::kAnd: bin_vv<T>(file, op, [](T x, T y) { return T(x & y); }); break;
    case TraceBinOp::kOr:  bin_vv<T>(file, op, [](T x, T y) { return T(x | y); }); break;
    case TraceBinOp::kAdd: bin_vv<T>(file, op, [](T x, T y) { return T(x + y); }); break;
    case TraceBinOp::kSub: bin_vv<T>(file, op, [](T x, T y) { return T(x - y); }); break;
    default:
      throw SimError("compiled trace: bad vv binop");
  }
}

template <typename T>
void run_bin_vs(u8* file, const TraceOp& op, u64 imm) {
  switch (op.bin) {
    case TraceBinOp::kXor: bin_vs<T>(file, op, imm, [](T x, T y) { return T(x ^ y); }); break;
    case TraceBinOp::kAnd: bin_vs<T>(file, op, imm, [](T x, T y) { return T(x & y); }); break;
    case TraceBinOp::kOr:  bin_vs<T>(file, op, imm, [](T x, T y) { return T(x | y); }); break;
    case TraceBinOp::kAdd: bin_vs<T>(file, op, imm, [](T x, T y) { return T(x + y); }); break;
    case TraceBinOp::kSub: bin_vs<T>(file, op, imm, [](T x, T y) { return T(x - y); }); break;
    // Shift amounts were masked to sew-1 bits at compile time.
    case TraceBinOp::kSll: bin_vs<T>(file, op, imm, [](T x, T y) { return T(x << y); }); break;
    case TraceBinOp::kSrl: bin_vs<T>(file, op, imm, [](T x, T y) { return T(x >> y); }); break;
  }
}

template <typename T>
void run_slide_mod5(u8* file, const TraceOp& op) {
  u8* d = file + op.d;
  const u8* a = file + op.a;
  const unsigned shift = static_cast<unsigned>(op.imm % 5 + 10) % 5u;
  for (u32 i = 0; i < op.sn; ++i) {
    std::array<T, 5> tmp;
    for (unsigned j = 0; j < 5; ++j) {
      tmp[j] = ld<T>(a + (5 * i + (j + shift) % 5) * sizeof(T));
    }
    for (unsigned j = 0; j < 5; ++j) {
      st<T>(d + (5 * i + j) * sizeof(T), tmp[j]);
    }
  }
}

template <typename T>
void run_pi_row(u8* file, const TraceOp& op, usize reg_bytes) {
  const u8* a = file + op.a;
  const unsigned row = op.table_row;
  for (u32 i = 0; i < op.sn; ++i) {
    std::array<T, 5> src;
    for (unsigned xp = 0; xp < 5; ++xp) {
      src[xp] = ld<T>(a + (5 * i + xp) * sizeof(T));
    }
    for (unsigned xp = 0; xp < 5; ++xp) {
      const unsigned y = (2 * (xp + 5 - row)) % 5;
      st<T>(file + op.d + y * reg_bytes + (5 * i + row) * sizeof(T), src[xp]);
    }
  }
}

template <typename T>
void run_iota(u8* file, const TraceOp& op, u64 imm) {
  u8* d = file + op.d;
  const u8* a = file + op.a;
  const T rc = static_cast<T>(imm);
  for (u32 e = 0; e < op.n; ++e) {
    T v = ld<T>(a + e * sizeof(T));
    if (e % 5 == 0) v = static_cast<T>(v ^ rc);
    st<T>(d + e * sizeof(T), v);
  }
}

template <typename T>
void run_chi_row(u8* file, const TraceOp& op) {
  u8* d = file + op.d;
  const u8* a = file + op.a;
  for (u32 i = 0; i < op.sn; ++i) {
    std::array<T, 5> f;
    for (unsigned j = 0; j < 5; ++j) f[j] = ld<T>(a + (5 * i + j) * sizeof(T));
    for (unsigned j = 0; j < 5; ++j) {
      st<T>(d + (5 * i + j) * sizeof(T),
            static_cast<T>(f[j] ^ (~f[(j + 1) % 5] & f[(j + 2) % 5])));
    }
  }
}

u64 truncate(u64 v, unsigned sew) {
  return sew >= 64 ? v : (v & ((u64{1} << sew) - 1));
}

u64 scalar_operand(u32 x, unsigned sew) {
  return truncate(static_cast<u64>(static_cast<i64>(static_cast<i32>(x))), sew);
}

/// viota round-constant resolution (mirrors the interpreter's table split).
u64 resolve_iota_rc(unsigned sew, u32 index) {
  const auto& rc = keccak::round_constants();
  if (sew == 64) {
    if (index >= rc.size()) throw SimError("viota RC index out of range");
    return rc[index];
  }
  if (index >= 2 * rc.size()) throw SimError("viota RC index out of range");
  return index % 2 == 0 ? lo32(rc[index / 2]) : hi32(rc[index / 2]);
}

bool specializable_bin(Opcode op, TraceBinOp& bin, VOperands& flavour) {
  flavour = isa::info(op).voperands;
  switch (op) {
    case Opcode::kVxorVV: case Opcode::kVxorVX: case Opcode::kVxorVI:
      bin = TraceBinOp::kXor; return true;
    case Opcode::kVandVV: case Opcode::kVandVX: case Opcode::kVandVI:
      bin = TraceBinOp::kAnd; return true;
    case Opcode::kVorVV: case Opcode::kVorVX: case Opcode::kVorVI:
      bin = TraceBinOp::kOr; return true;
    case Opcode::kVaddVV: case Opcode::kVaddVX: case Opcode::kVaddVI:
      bin = TraceBinOp::kAdd; return true;
    case Opcode::kVsubVV: case Opcode::kVsubVX:
      bin = TraceBinOp::kSub; return true;
    case Opcode::kVsllVX: case Opcode::kVsllVI:
      bin = TraceBinOp::kSll; return true;
    case Opcode::kVsrlVX: case Opcode::kVsrlVI:
      bin = TraceBinOp::kSrl; return true;
    default:
      return false;
  }
}

}  // namespace

void CompiledTrace::execute_op(const TraceOp& op, VectorUnit& vu, Memory& mem,
                               const CycleModel& cm, u8* file) const {
  const usize rb = reg_bytes_;
  switch (op.kind) {
    case TraceOpKind::kBinVV:
      if (op.sew == 64) run_bin_vv<u64>(file, op);
      else run_bin_vv<u32>(file, op);
      break;
    case TraceOpKind::kBinVS:
      if (op.sew == 64) run_bin_vs<u64>(file, op, wide_imms_[op.aux]);
      else run_bin_vs<u32>(file, op, wide_imms_[op.aux]);
      break;
    case TraceOpKind::kSplat: {
      u8* d = file + op.d;
      if (op.sew == 64) {
        const u64 v = wide_imms_[op.aux];
        for (u32 i = 0; i < op.n; ++i) st64(d + 8 * i, v);
      } else {
        const u32 v = static_cast<u32>(wide_imms_[op.aux]);
        for (u32 i = 0; i < op.n; ++i) st32(d + 4 * i, v);
      }
      break;
    }
    case TraceOpKind::kCopyReg: {
      u8* d = file + op.d;
      const u8* a = file + op.a;
      if (d <= a || a + op.n <= d) {
        std::memmove(d, a, op.n);
      } else {
        // Forward-overlapping: copy element-wise ascending like vmv.v.v.
        const u32 esz = op.sew / 8u;
        for (u32 off = 0; off < op.n; off += esz) {
          std::memmove(d + off, a + off, esz);
        }
      }
      break;
    }
    case TraceOpKind::kLoadUnit:
      mem.read_block(op.aux, std::span<u8>(file + op.d, op.n));
      break;
    case TraceOpKind::kStoreUnit:
      mem.write_block(op.aux, std::span<const u8>(file + op.d, op.n));
      break;
    case TraceOpKind::kLoadGather:
      for (u32 i = 0; i < op.n; ++i) {
        const TraceMemElem& e = gather_elems_[op.aux + i];
        const u64 v = mem.read_element(e.addr, op.sew);
        std::memcpy(file + e.reg_off, &v, op.sew / 8u);
      }
      break;
    case TraceOpKind::kStoreScatter:
      for (u32 i = 0; i < op.n; ++i) {
        const TraceMemElem& e = gather_elems_[op.aux + i];
        u64 v = 0;
        std::memcpy(&v, file + e.reg_off, op.sew / 8u);
        mem.write_element(e.addr, op.sew, v);
      }
      break;
    case TraceOpKind::kScalarStore:
      mem.write_element(op.aux, op.sew,
                        static_cast<u64>(static_cast<u32>(op.imm)));
      break;
    case TraceOpKind::kSlideMod5:
      if (op.sew == 64) run_slide_mod5<u64>(file, op);
      else run_slide_mod5<u32>(file, op);
      break;
    case TraceOpKind::kRotup64: {
      u8* d = file + op.d;
      const u8* a = file + op.a;
      const unsigned amt = static_cast<unsigned>(op.imm);
      for (u32 e = 0; e < 5u * op.sn; ++e) {
        st64(d + 8 * e, rotl64(ld64(a + 8 * e), amt));
      }
      break;
    }
    case TraceOpKind::kRho64Row: {
      u8* d = file + op.d;
      const u8* a = file + op.a;
      const auto& offs = keccak::rho_offsets()[op.table_row];
      for (u32 i = 0; i < op.sn; ++i) {
        for (unsigned j = 0; j < 5; ++j) {
          const u32 e = 5 * i + j;
          st64(d + 8 * e, rotl64(ld64(a + 8 * e), offs[j]));
        }
      }
      break;
    }
    case TraceOpKind::kRho32Row: {
      u8* d = file + op.d;
      const u8* hi = file + op.a;
      const u8* lo = file + op.b;
      const auto& offs = keccak::rho_offsets()[op.table_row];
      for (u32 i = 0; i < op.sn; ++i) {
        for (unsigned j = 0; j < 5; ++j) {
          const u32 e = 5 * i + j;
          const u64 rot =
              rotl64(concat32(ld32(hi + 4 * e), ld32(lo + 4 * e)), offs[j]);
          st32(d + 4 * e, op.flag ? hi32(rot) : lo32(rot));
        }
      }
      break;
    }
    case TraceOpKind::kRot32Pair: {
      u8* d = file + op.d;
      const u8* hi = file + op.a;
      const u8* lo = file + op.b;
      for (u32 e = 0; e < 5u * op.sn; ++e) {
        const u64 rot =
            rotl64(concat32(ld32(hi + 4 * e), ld32(lo + 4 * e)), 1);
        st32(d + 4 * e, op.flag ? hi32(rot) : lo32(rot));
      }
      break;
    }
    case TraceOpKind::kPiRow:
      if (op.sew == 64) run_pi_row<u64>(file, op, rb);
      else run_pi_row<u32>(file, op, rb);
      break;
    case TraceOpKind::kRhoPiRow: {
      const u8* a = file + op.a;
      const unsigned row = op.table_row;
      const auto& offs = keccak::rho_offsets()[row];
      for (u32 i = 0; i < op.sn; ++i) {
        std::array<u64, 5> src;
        for (unsigned xp = 0; xp < 5; ++xp) {
          src[xp] = rotl64(ld64(a + 8 * (5 * i + xp)), offs[xp]);
        }
        for (unsigned xp = 0; xp < 5; ++xp) {
          const unsigned y = (2 * (xp + 5 - row)) % 5;
          st64(file + op.d + y * rb + 8 * (5 * i + row), src[xp]);
        }
      }
      break;
    }
    case TraceOpKind::kIota:
      if (op.sew == 64) run_iota<u64>(file, op, wide_imms_[op.aux]);
      else run_iota<u32>(file, op, wide_imms_[op.aux]);
      break;
    case TraceOpKind::kThetaCRow: {
      u8* d = file + op.d;
      const u8* a = file + op.a;
      for (u32 i = 0; i < op.sn; ++i) {
        std::array<u64, 5> b;
        for (unsigned j = 0; j < 5; ++j) b[j] = ld64(a + 8 * (5 * i + j));
        for (unsigned j = 0; j < 5; ++j) {
          st64(d + 8 * (5 * i + j),
               b[(j + 4) % 5] ^ rotl64(b[(j + 1) % 5], 1));
        }
      }
      break;
    }
    case TraceOpKind::kChiRow:
      if (op.sew == 64) run_chi_row<u64>(file, op);
      else run_chi_row<u32>(file, op);
      break;
    case TraceOpKind::kGeneric: {
      const TraceGenericOp& g = generic_ops_[op.aux];
      if (g.sn != vu.config().effective_sn()) vu.set_sn(g.sn);
      vu.set_exec_state(g.vtype, g.vl);
      ScalarRegs x;
      x.write(g.inst.rs1, g.rs1_value);
      x.write(g.inst.rs2, g.rs2_value);
      vu.execute(g.inst, x, mem, cm);  // recorded cycles stay authoritative
      break;
    }
  }
}

void CompiledTrace::execute(VectorUnit& vu, Memory& mem,
                            const CycleModel& cm) const {
  KVX_CHECK_MSG(vu.reg_bytes() == reg_bytes_,
                "trace compiled for a different vector configuration");
  u8* file = vu.file_data();
  const unsigned entry_sn = vu.config().effective_sn();
  for (const TraceOp& op : ops_) execute_op(op, vu, mem, cm, file);
  if (vu.config().effective_sn() != entry_sn) vu.set_sn(entry_sn);
}

u64 CompiledTrace::cycles_between(u32 from, u32 to) const {
  bool have_a = false, have_b = false;
  u64 a = 0, b = 0;
  for (const Marker& m : markers_) {
    if (!have_a && m.id == from) {
      a = m.cycle;
      have_a = true;
    } else if (have_a && !have_b && m.id == to) {
      b = m.cycle;
      have_b = true;
    }
  }
  if (!have_a || !have_b) throw SimError("marker pair not found");
  return b - a;
}

// ---------------------------------------------------------------------------
// Trace compiler: record one interpreter run, pre-decoding as it goes.
// ---------------------------------------------------------------------------

class TraceCompiler {
 public:
  static CompiledTrace record(const assembler::Program& program,
                              const ProcessorConfig& cfg,
                              const TraceCompileOptions& opts, u64 fill_seed,
                              usize reserve_hint);

  /// Full structural equality of two recordings, private fields included.
  static bool equal(const CompiledTrace& a, const CompiledTrace& b);

 private:
  explicit TraceCompiler(SimdProcessor& proc)
      : proc_(proc),
        reg_bytes_(static_cast<usize>(proc.config().vector.vlen_bits()) / 8) {}

  void emit(const Instruction& inst);
  void emit_arith(const Instruction& inst, unsigned sew, usize vl);
  void emit_memory(const Instruction& inst);
  void emit_custom(const Instruction& inst, unsigned sew);
  void emit_generic(const Instruction& inst);

  [[nodiscard]] u32 reg_off(unsigned vreg) const noexcept {
    return static_cast<u32>(vreg * reg_bytes_);
  }
  [[nodiscard]] usize rows_for(unsigned sew) const noexcept {
    const usize epr = proc_.config().vector.vlen_bits() / sew;
    const usize rows = (proc_.vector().vl() + epr - 1) / epr;
    return rows == 0 ? 1 : rows;
  }
  /// Element `idx` of a register *group* (replicates VectorUnit::group_get).
  [[nodiscard]] u64 group_elem(unsigned base, usize idx, unsigned sew) const {
    const usize epr = proc_.config().vector.vlen_bits() / sew;
    return proc_.vector().get_element(
        base + static_cast<unsigned>(idx / epr), idx % epr, sew);
  }
  /// Intern a 64-bit operand into the wide-imm pool, returning its index.
  [[nodiscard]] u32 add_wide(u64 value) {
    trace_.wide_imms_.push_back(value);
    return static_cast<u32>(trace_.wide_imms_.size() - 1);
  }
  [[nodiscard]] u8 record_sn() const {
    const unsigned sn = proc_.vector().config().effective_sn();
    if (sn > 255) throw SimError("compiled trace: SN exceeds record range");
    return static_cast<u8>(sn);
  }

  SimdProcessor& proc_;
  usize reg_bytes_;
  CompiledTrace trace_;
};

void TraceCompiler::emit_generic(const Instruction& inst) {
  TraceGenericOp g;
  g.inst = inst;
  g.vtype = proc_.vector().vtype();
  g.vl = proc_.vector().vl();
  g.rs1_value = proc_.scalar().regs().read(inst.rs1);
  g.rs2_value = proc_.scalar().regs().read(inst.rs2);
  g.sn = proc_.vector().config().effective_sn();
  TraceOp op;
  op.kind = TraceOpKind::kGeneric;
  op.aux = static_cast<u32>(trace_.generic_ops_.size());
  trace_.generic_ops_.push_back(g);
  trace_.ops_.push_back(op);
}

void TraceCompiler::emit_arith(const Instruction& inst, unsigned sew,
                               usize vl) {
  TraceBinOp bin{};
  VOperands flavour{};

  if (inst.vm && specializable_bin(inst.op, bin, flavour)) {
    TraceOp op;
    op.bin = bin;
    op.sew = static_cast<u8>(sew);
    op.d = reg_off(inst.rd);
    op.a = reg_off(inst.rs2);
    op.n = static_cast<u32>(vl);
    if (flavour == VOperands::kVV) {
      op.kind = TraceOpKind::kBinVV;
      op.b = reg_off(inst.rs1);
    } else {
      op.kind = TraceOpKind::kBinVS;
      u64 operand =
          flavour == VOperands::kVX
              ? scalar_operand(proc_.scalar().regs().read(inst.rs1), sew)
              : truncate(static_cast<u64>(static_cast<i64>(inst.imm)), sew);
      if (bin == TraceBinOp::kSll || bin == TraceBinOp::kSrl) {
        operand &= sew - 1;  // the interpreter masks shift amounts to sew bits
      }
      op.aux = add_wide(operand);
    }
    trace_.ops_.push_back(op);
    return;
  }

  if (inst.vm && (inst.op == Opcode::kVmvVV || inst.op == Opcode::kVmvVX ||
                  inst.op == Opcode::kVmvVI)) {
    TraceOp op;
    op.sew = static_cast<u8>(sew);
    op.d = reg_off(inst.rd);
    if (inst.op == Opcode::kVmvVV) {
      op.kind = TraceOpKind::kCopyReg;
      op.a = reg_off(inst.rs1);
      op.n = static_cast<u32>(vl * sew / 8);
    } else {
      op.kind = TraceOpKind::kSplat;
      op.n = static_cast<u32>(vl);
      op.aux = add_wide(
          inst.op == Opcode::kVmvVX
              ? scalar_operand(proc_.scalar().regs().read(inst.rs1), sew)
              : truncate(static_cast<u64>(static_cast<i64>(inst.imm)), sew));
    }
    trace_.ops_.push_back(op);
    return;
  }

  emit_generic(inst);  // masks, slides, gathers, compares, reductions, ...
}

void TraceCompiler::emit_memory(const Instruction& inst) {
  if (!inst.vm) {
    emit_generic(inst);
    return;
  }
  const auto& oi = isa::info(inst.op);
  const bool is_load = oi.format == Format::kVLoad;
  const auto mop = static_cast<VMop>(oi.aux);
  const unsigned eew = isa::vmem_width_bits(inst.op);
  const unsigned data_width =
      mop == VMop::kIndexed ? proc_.vector().vtype().sew : eew;
  const u32 base = proc_.scalar().regs().read(inst.rs1);
  const usize vl = proc_.vector().vl();

  TraceOp op;
  op.sew = static_cast<u8>(data_width);
  op.d = reg_off(inst.rd);
  if (mop == VMop::kUnit) {
    op.kind = is_load ? TraceOpKind::kLoadUnit : TraceOpKind::kStoreUnit;
    op.aux = base;
    op.n = static_cast<u32>(vl * (eew / 8));
    trace_.ops_.push_back(op);
    return;
  }

  op.kind = is_load ? TraceOpKind::kLoadGather : TraceOpKind::kStoreScatter;
  op.aux = static_cast<u32>(trace_.gather_elems_.size());
  op.n = static_cast<u32>(vl);
  for (usize i = 0; i < vl; ++i) {
    TraceMemElem e;
    if (mop == VMop::kStrided) {
      e.addr =
          base + static_cast<u32>(i) * proc_.scalar().regs().read(inst.rs2);
    } else {  // indexed: 32-bit byte offsets from the index vector register
      e.addr = base + static_cast<u32>(group_elem(inst.rs2, i, 32));
    }
    e.reg_off = op.d + static_cast<u32>(i * (data_width / 8));
    trace_.gather_elems_.push_back(e);
  }
  trace_.ops_.push_back(op);
}

void TraceCompiler::emit_custom(const Instruction& inst, unsigned sew) {
  const u8 sn = record_sn();
  const usize rows = rows_for(sew);

  const auto push = [&](TraceOpKind kind, unsigned vd, unsigned vs2, u8 row,
                        i32 imm, unsigned vs1 = 0, u8 flag = 0) {
    TraceOp op;
    op.kind = kind;
    op.sew = static_cast<u8>(sew);
    op.flag = flag;
    op.table_row = row;
    op.d = reg_off(vd);
    op.a = reg_off(vs2);
    op.b = reg_off(vs1);
    op.sn = sn;
    op.imm = imm;
    trace_.ops_.push_back(op);
  };

  switch (inst.op) {
    case Opcode::kVslidedownmVI:
      for (usize r = 0; r < rows; ++r) {
        push(TraceOpKind::kSlideMod5, inst.rd + static_cast<unsigned>(r),
             inst.rs2 + static_cast<unsigned>(r), 0, inst.imm);
      }
      return;
    case Opcode::kVslideupmVI:
      for (usize r = 0; r < rows; ++r) {
        push(TraceOpKind::kSlideMod5, inst.rd + static_cast<unsigned>(r),
             inst.rs2 + static_cast<unsigned>(r), 0, -inst.imm);
      }
      return;
    case Opcode::kVrotupVI:
      for (usize r = 0; r < rows; ++r) {
        push(TraceOpKind::kRotup64, inst.rd + static_cast<unsigned>(r),
             inst.rs2 + static_cast<unsigned>(r), 0, inst.imm);
      }
      return;
    case Opcode::kV32lrotupVV:
    case Opcode::kV32hrotupVV:
      push(TraceOpKind::kRot32Pair, inst.rd, inst.rs2, 0, 0, inst.rs1,
           inst.op == Opcode::kV32hrotupVV ? u8{1} : u8{0});
      return;
    case Opcode::kV64rhoVI:
      if (inst.imm >= 0) {
        push(TraceOpKind::kRho64Row, inst.rd, inst.rs2,
             static_cast<u8>(inst.imm), 0);
      } else {
        for (usize r = 0; r < rows; ++r) {
          push(TraceOpKind::kRho64Row, inst.rd + static_cast<unsigned>(r),
               inst.rs2 + static_cast<unsigned>(r), static_cast<u8>(r), 0);
        }
      }
      return;
    case Opcode::kV32lrhoVV:
    case Opcode::kV32hrhoVV:
      for (usize r = 0; r < rows; ++r) {
        push(TraceOpKind::kRho32Row, inst.rd + static_cast<unsigned>(r),
             inst.rs2 + static_cast<unsigned>(r), static_cast<u8>(r), 0,
             inst.rs1 + static_cast<unsigned>(r),
             inst.op == Opcode::kV32hrhoVV ? u8{1} : u8{0});
      }
      return;
    case Opcode::kVpiVI:
      if (inst.imm >= 0) {
        push(TraceOpKind::kPiRow, inst.rd, inst.rs2, static_cast<u8>(inst.imm),
             0);
      } else {
        for (usize r = 0; r < rows; ++r) {
          push(TraceOpKind::kPiRow, inst.rd,
               inst.rs2 + static_cast<unsigned>(r), static_cast<u8>(r), 0);
        }
      }
      return;
    case Opcode::kViotaVX: {
      const u32 index = proc_.scalar().regs().read(inst.rs1);
      TraceOp op;
      op.kind = TraceOpKind::kIota;
      op.sew = static_cast<u8>(sew);
      op.d = reg_off(inst.rd);
      op.a = reg_off(inst.rs2);
      op.n = 5u * sn;
      op.aux = add_wide(resolve_iota_rc(sew, index));
      trace_.ops_.push_back(op);
      return;
    }
    case Opcode::kVthetacVV:
      for (usize r = 0; r < rows; ++r) {
        push(TraceOpKind::kThetaCRow, inst.rd + static_cast<unsigned>(r),
             inst.rs2 + static_cast<unsigned>(r), 0, 0);
      }
      return;
    case Opcode::kVrhopiVI:
      if (inst.imm >= 0) {
        push(TraceOpKind::kRhoPiRow, inst.rd, inst.rs2,
             static_cast<u8>(inst.imm), 0);
      } else {
        for (usize r = 0; r < rows; ++r) {
          push(TraceOpKind::kRhoPiRow, inst.rd,
               inst.rs2 + static_cast<unsigned>(r), static_cast<u8>(r), 0);
        }
      }
      return;
    case Opcode::kVchiVV:
      for (usize r = 0; r < rows; ++r) {
        push(TraceOpKind::kChiRow, inst.rd + static_cast<unsigned>(r),
             inst.rs2 + static_cast<unsigned>(r), 0, 0);
      }
      return;
    default:
      emit_generic(inst);
      return;
  }
}

void TraceCompiler::emit(const Instruction& inst) {
  const auto& oi = isa::info(inst.op);
  switch (oi.format) {
    case Format::kVArith:
      emit_arith(inst, proc_.vector().vtype().sew, proc_.vector().vl());
      return;
    case Format::kVLoad:
    case Format::kVStore:
      if (proc_.vector().vl() != 0) emit_memory(inst);
      return;
    case Format::kVCustom:
      emit_custom(inst, proc_.vector().vtype().sew);
      return;
    case Format::kS: {  // scalar stores are the only scalar memory effect
      TraceOp op;
      op.kind = TraceOpKind::kScalarStore;
      op.sew = inst.op == Opcode::kSb   ? u8{8}
               : inst.op == Opcode::kSh ? u8{16}
                                        : u8{32};
      op.aux =
          proc_.scalar().regs().read(inst.rs1) + static_cast<u32>(inst.imm);
      op.imm = static_cast<i32>(static_cast<u32>(
          truncate(proc_.scalar().regs().read(inst.rs2), op.sew)));
      trace_.ops_.push_back(op);
      return;
    }
    default:
      // Scalar control/ALU/CSR instructions have no architectural effect the
      // replay needs: their results are baked into later records, markers
      // are captured from the recording run, and cycles are pre-accounted.
      return;
  }
}

CompiledTrace TraceCompiler::record(const assembler::Program& program,
                                    const ProcessorConfig& cfg,
                                    const TraceCompileOptions& opts,
                                    u64 fill_seed, usize reserve_hint) {
  SimdProcessor proc(cfg);
  proc.load_program(program);
  if (opts.verify_len != 0) {
    SplitMix64 rng(fill_seed);
    std::vector<u8> junk(opts.verify_len);
    for (u8& b : junk) b = static_cast<u8>(rng.next());
    proc.dmem().write_block(opts.verify_base, junk);
  }

  TraceCompiler tc(proc);
  tc.trace_.ops_.reserve(reserve_hint);
  while (!proc.halted()) {
    const u32 pc = proc.scalar().pc();
    if (pc >= program.text_base && pc % 4 == 0) {
      const usize idx = (pc - program.text_base) / 4;
      if (idx < program.text.size()) {
        // Pre-decode and record against the *pre-execution* machine state;
        // step() then validates the instruction (throwing on any fault).
        tc.emit(isa::decode(program.text[idx]));
      }
    }
    proc.step();  // faults (bad fetch, watchdog, ...) propagate to compile
  }

  tc.trace_.stats_ = proc.stats();
  tc.trace_.markers_ = proc.markers();
  for (unsigned r = 0; r < 32; ++r) {
    tc.trace_.final_xregs_[r] = proc.scalar().regs().read(r);
  }
  tc.trace_.reg_bytes_ = tc.reg_bytes_;
  return std::move(tc.trace_);
}

bool TraceCompiler::equal(const CompiledTrace& a, const CompiledTrace& b) {
  if (a.ops_ != b.ops_ || a.gather_elems_ != b.gather_elems_ ||
      a.generic_ops_ != b.generic_ops_ || a.wide_imms_ != b.wide_imms_) {
    return false;
  }
  if (a.stats_.cycles != b.stats_.cycles ||
      a.stats_.instructions != b.stats_.instructions) {
    return false;
  }
  if (a.markers_.size() != b.markers_.size()) return false;
  for (usize i = 0; i < a.markers_.size(); ++i) {
    if (a.markers_[i].id != b.markers_[i].id ||
        a.markers_[i].cycle != b.markers_[i].cycle) {
      return false;
    }
  }
  return a.final_xregs_ == b.final_xregs_;
}

std::shared_ptr<const CompiledTrace> compile_trace(
    const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts) {
  // The first recording run can only estimate the executed-record count
  // from the static code size (the round loop re-executes the body); the
  // verification run then reserves the exact count.
  auto trace = std::make_shared<CompiledTrace>(
      TraceCompiler::record(program, cfg, opts, /*fill_seed=*/0x5EED5EEDull,
                            /*reserve_hint=*/program.text.size() * 8));
  if (opts.verify_len != 0) {
    const CompiledTrace second =
        TraceCompiler::record(program, cfg, opts, /*fill_seed=*/0xBADC0FFEull,
                              /*reserve_hint=*/trace->op_count());
    if (!TraceCompiler::equal(*trace, second)) {
      throw SimError(
          "compiled trace: program control flow or operands depend on the "
          "staged state data; use the interpreter backend");
    }
  }
  return trace;
}

// ---------------------------------------------------------------------------
// TraceCache
// ---------------------------------------------------------------------------

namespace {

u64 fnv1a(u64 h, const void* data, usize len) {
  const auto* p = static_cast<const u8*>(data);
  for (usize i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

template <typename T>
u64 fnv1a_value(u64 h, const T& v) {
  return fnv1a(h, &v, sizeof v);
}

u64 trace_key(const assembler::Program& program, const ProcessorConfig& cfg,
              const TraceCompileOptions& opts) {
  u64 h = 0xCBF29CE484222325ull;
  h = fnv1a(h, program.text.data(), program.text.size() * sizeof(u32));
  h = fnv1a(h, program.data.data(), program.data.size());
  h = fnv1a_value(h, program.text_base);
  h = fnv1a_value(h, program.data_base);
  h = fnv1a_value(h, cfg.vector.elen_bits);
  h = fnv1a_value(h, cfg.vector.ele_num);
  h = fnv1a_value(h, cfg.vector.sn);
  h = fnv1a_value(h, cfg.dmem_bytes);
  h = fnv1a_value(h, cfg.max_cycles);
  const CycleModel& cm = cfg.cycle_model;
  for (u32 field :
       {cm.alu, cm.mul, cm.div, cm.load, cm.store, cm.branch_taken,
        cm.branch_not_taken, cm.jump, cm.csr, cm.system, cm.vsetvli,
        cm.v_issue, cm.v_per_row, cm.vpi_extra, cm.vmem_issue, cm.vmem_per_row,
        cm.vchi_extra}) {
    h = fnv1a_value(h, field);
  }
  h = fnv1a_value(h, cm.decoupled_vpu);
  h = fnv1a_value(h, opts.verify_base);
  h = fnv1a_value(h, opts.verify_len);
  return h;
}

/// Key separation between the plain, fused and host-SIMD compilations of
/// one program. Each backend's map is also a distinct container, so a
/// "trace" shard can never observe a fused artifact even on a hash
/// collision (and likewise up the chain).
constexpr u64 kFusedKeySalt = 0x46555345445F5452ull;     // "FUSED_TR"
constexpr u64 kHostSimdKeySalt = 0x484F53545F53494Dull;  // "HOST_SIM"
constexpr u64 kJitKeySalt = 0x4A49545F54524143ull;       // "JIT_TRAC"

}  // namespace

namespace cache_obs {

/// Registry mirrors of the TraceCacheStats counters (and trace events for
/// compile/fuse phases and hit/miss), so cache behaviour is visible in the
/// same scrape as the engine metrics.
obs::Counter& hits() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_trace_cache_hits_total",
      "Trace-cache lookups served without compiling");
  return c;
}
obs::Counter& compiles() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_trace_cache_compiles_total", "Traces compiled (cache misses)");
  return c;
}
obs::Counter& failures() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_trace_cache_failures_total",
      "Trace compilations rejected (data-dependent program)");
  return c;
}
obs::Counter& fusions() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_trace_cache_fusions_total", "Fused traces built");
  return c;
}
obs::Counter& compile_ns() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_trace_compile_ns_total",
      "Host time spent compiling traces (incl. failures)");
  return c;
}
obs::Counter& fuse_ns() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_trace_fuse_ns_total", "Host time spent in the fusion pass");
  return c;
}
obs::Counter& lowerings() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_lowerings_total", "Host-SIMD lowering plans built");
  return c;
}
obs::Counter& lower_ns() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_lower_ns_total",
      "Host time spent building host-SIMD lowering plans");
  return c;
}
obs::Counter& jit_compiles() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_jit_compiles_total", "Native JIT code emissions");
  return c;
}
obs::Counter& jit_ns() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_jit_compile_ns_total", "Host time spent emitting native code");
  return c;
}
obs::Gauge& entries_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "kvx_trace_cache_entries",
      "Live cached artifacts across all backend tiers");
  return g;
}
obs::Gauge& bytes_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "kvx_trace_cache_bytes",
      "Approximate resident bytes of cached artifacts (incl. JIT code "
      "buffers)");
  return g;
}

void hit_event() {
  hits().inc();
  obs::FlightRecorder::global().record(obs::FlightEventType::kTraceCacheHit);
  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) sink.instant("cache", "trace_cache_hit");
}

/// Flight-recorder artifact tiers (dump format: kTraceCompile/kTraceReject
/// code field): 0 trace, 1 fused, 2 host-simd, 3 jit.
void compile_event(u16 tier, u64 ns) {
  obs::FlightRecorder::global().record(obs::FlightEventType::kTraceCompile,
                                       tier, ns);
}

void reject_event(u16 tier, const char* error) {
  obs::FlightRecorder::global().record(obs::FlightEventType::kTraceReject,
                                       tier, 0, obs::flight_hash(error));
}

}  // namespace cache_obs

TraceCache& TraceCache::global() {
  static TraceCache cache;
  return cache;
}

std::shared_ptr<const CompiledTrace> TraceCache::lookup_or_compile_locked(
    u64 key, const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts) {
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++stats_.hits;
    cache_obs::hit_event();
    return it->second;
  }
  if (const auto it = failed_.find(key); it != failed_.end()) {
    ++stats_.hits;  // negative-cache hit: rejected without recompiling
    cache_obs::hit_event();
    throw SimError(it->second);
  }
  obs::TraceSpan span(obs::TraceEventSink::global(), "cache", "trace_compile");
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ns = [&t0] {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  try {
    auto trace = compile_trace(program, cfg, opts);
    const u64 ns = elapsed_ns();
    stats_.compile_ns += ns;
    ++stats_.compiles;
    cache_obs::compile_ns().inc(ns);
    cache_obs::compiles().inc();
    cache_obs::compile_event(0, ns);
    entries_.emplace(key, trace);
    resident_bytes_ += trace->memory_bytes();
    refresh_occupancy_locked();
    return trace;
  } catch (const Error& e) {
    const u64 ns = elapsed_ns();
    stats_.compile_ns += ns;
    ++stats_.failures;
    cache_obs::compile_ns().inc(ns);
    cache_obs::failures().inc();
    cache_obs::reject_event(0, e.what());
    failed_.emplace(key, e.what());
    throw;
  }
}

std::shared_ptr<const CompiledTrace> TraceCache::get_or_compile(
    const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts) {
  const u64 key = trace_key(program, cfg, opts);
  std::lock_guard lock(mutex_);
  return lookup_or_compile_locked(key, program, cfg, opts);
}

std::shared_ptr<const FusedTrace> TraceCache::lookup_or_fuse_locked(
    u64 base_key, const assembler::Program& program,
    const ProcessorConfig& cfg, const TraceCompileOptions& opts) {
  const u64 fused_key = base_key ^ kFusedKeySalt;
  if (const auto it = fused_entries_.find(fused_key);
      it != fused_entries_.end()) {
    ++stats_.hits;
    cache_obs::hit_event();
    return it->second;
  }
  // Share the recording with the plain-trace entry: one compile serves both
  // backends, but the fused artifact is cached under its own key.
  auto base = lookup_or_compile_locked(base_key, program, cfg, opts);
  obs::TraceSpan span(obs::TraceEventSink::global(), "cache", "trace_fuse");
  const auto t0 = std::chrono::steady_clock::now();
  auto fused = fuse_trace(std::move(base));
  const u64 ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  stats_.fuse_ns += ns;
  ++stats_.fusions;
  cache_obs::fuse_ns().inc(ns);
  cache_obs::fusions().inc();
  cache_obs::compile_event(1, ns);
  fused_entries_.emplace(fused_key, fused);
  resident_bytes_ += fused->memory_bytes();
  refresh_occupancy_locked();
  return fused;
}

std::shared_ptr<const FusedTrace> TraceCache::get_or_compile_fused(
    const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts) {
  const u64 base_key = trace_key(program, cfg, opts);
  std::lock_guard lock(mutex_);
  return lookup_or_fuse_locked(base_key, program, cfg, opts);
}

std::shared_ptr<const HostSimdTrace> TraceCache::lookup_or_lower_locked(
    u64 base_key, const assembler::Program& program,
    const ProcessorConfig& cfg, const TraceCompileOptions& opts) {
  const u64 hs_key = base_key ^ kHostSimdKeySalt;
  if (const auto it = host_simd_entries_.find(hs_key);
      it != host_simd_entries_.end()) {
    ++stats_.hits;
    cache_obs::hit_event();
    return it->second;
  }
  if (const auto it = failed_.find(hs_key); it != failed_.end()) {
    ++stats_.hits;  // negative-cache hit: rejected without re-lowering
    cache_obs::hit_event();
    throw SimError(it->second);
  }
  // Share the fused artifact (and through it the recording) with the lower
  // tiers; only the lowering plan is built (and cached) per this backend.
  auto fused = lookup_or_fuse_locked(base_key, program, cfg, opts);
  obs::TraceSpan span(obs::TraceEventSink::global(), "cache",
                     "host_simd_lower");
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ns = [&t0] {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  try {
    auto hs = lower_host_simd(std::move(fused));
    const u64 ns = elapsed_ns();
    stats_.lower_ns += ns;
    ++stats_.lowerings;
    cache_obs::lower_ns().inc(ns);
    cache_obs::lowerings().inc();
    cache_obs::compile_event(2, ns);
    host_simd_entries_.emplace(hs_key, hs);
    resident_bytes_ += hs->memory_bytes();
    refresh_occupancy_locked();
    return hs;
  } catch (const Error& e) {
    const u64 ns = elapsed_ns();
    stats_.lower_ns += ns;
    cache_obs::lower_ns().inc(ns);
    cache_obs::reject_event(2, e.what());
    failed_.emplace(hs_key, e.what());
    throw;
  }
}

std::shared_ptr<const HostSimdTrace> TraceCache::get_or_compile_host_simd(
    const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts) {
  const u64 base_key = trace_key(program, cfg, opts);
  std::lock_guard lock(mutex_);
  return lookup_or_lower_locked(base_key, program, cfg, opts);
}

std::shared_ptr<const JitTrace> TraceCache::get_or_compile_jit(
    const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts) {
  const u64 base_key = trace_key(program, cfg, opts);
  // The resolved emission ISA is part of the key: a test pin (or
  // KVX_HOST_SIMD_ISA) flipping between AVX-512 and AVX2 must produce two
  // distinct native compilations, not serve one for the other.
  const HostSimdIsa isa = host_simd_dispatch_isa(cfg.vector.sn);
  const u64 jit_key =
      base_key ^ kJitKeySalt ^ fnv1a_value(0xCBF29CE484222325ull, isa);
  std::lock_guard lock(mutex_);
  if (const auto it = jit_entries_.find(jit_key); it != jit_entries_.end()) {
    ++stats_.hits;
    cache_obs::hit_event();
    return it->second;
  }
  // No negative caching here: an mmap/mprotect refusal is transient host
  // state, and an unsupported-ISA resolution is already cheap to rediscover
  // (lower_jit throws before emitting a byte).
  auto hs = lookup_or_lower_locked(base_key, program, cfg, opts);
  obs::TraceSpan span(obs::TraceEventSink::global(), "cache", "jit_emit");
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ns = [&t0] {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  try {
    auto jit = lower_jit(std::move(hs));
    const u64 ns = elapsed_ns();
    stats_.jit_ns += ns;
    ++stats_.jit_compiles;
    cache_obs::jit_ns().inc(ns);
    cache_obs::jit_compiles().inc();
    cache_obs::compile_event(3, ns);
    jit_entries_.emplace(jit_key, jit);
    resident_bytes_ += jit->memory_bytes();
    refresh_occupancy_locked();
    return jit;
  } catch (const Error& e) {
    const u64 ns = elapsed_ns();
    stats_.jit_ns += ns;
    cache_obs::jit_ns().inc(ns);
    cache_obs::reject_event(3, e.what());
    throw;
  }
}

void TraceCache::refresh_occupancy_locked() {
  stats_.entries = entries_.size() + fused_entries_.size() +
                   host_simd_entries_.size() + jit_entries_.size();
  stats_.resident_bytes = resident_bytes_;
  cache_obs::entries_gauge().set(static_cast<double>(stats_.entries));
  cache_obs::bytes_gauge().set(static_cast<double>(stats_.resident_bytes));
}

TraceCacheStats TraceCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void TraceCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  fused_entries_.clear();
  host_simd_entries_.clear();
  jit_entries_.clear();
  failed_.clear();
  stats_ = {};
  resident_bytes_ = 0;
  refresh_occupancy_locked();
}

}  // namespace kvx::sim
