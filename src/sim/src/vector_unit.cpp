#include "kvx/sim/vector_unit.hpp"

#include <cstring>

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::sim {

using isa::Format;
using isa::Instruction;
using isa::Opcode;
using isa::VMop;
using isa::VOperands;

namespace {

/// Truncate a value to `sew` bits.
u64 truncate(u64 v, unsigned sew) {
  return sew >= 64 ? v : (v & ((u64{1} << sew) - 1));
}

/// Sign-extend a 32-bit scalar operand to the element width (RVV .vx rule;
/// the paper §3: "adjust the length of the scalar integer register").
u64 scalar_operand(u32 x, unsigned sew) {
  const u64 extended = static_cast<u64>(static_cast<i64>(static_cast<i32>(x)));
  return truncate(extended, sew);
}

/// Reinterpret a sew-bit value as signed (for vmin/vmax/vmslt).
i64 as_signed(u64 v, unsigned sew) {
  if (sew >= 64) return static_cast<i64>(v);
  const u64 sign = u64{1} << (sew - 1);
  return static_cast<i64>((v ^ sign)) - static_cast<i64>(sign);
}

bool is_mask_compare(Opcode op) {
  switch (op) {
    case Opcode::kVmseqVV:
    case Opcode::kVmseqVX:
    case Opcode::kVmseqVI:
    case Opcode::kVmsneVV:
    case Opcode::kVmsneVX:
    case Opcode::kVmsneVI:
    case Opcode::kVmsltuVV:
    case Opcode::kVmsltuVX:
    case Opcode::kVmsltVV:
    case Opcode::kVmsltVX:
      return true;
    default:
      return false;
  }
}

bool is_reduction(Opcode op) {
  switch (op) {
    case Opcode::kVredsumVS:
    case Opcode::kVredandVS:
    case Opcode::kVredorVS:
    case Opcode::kVredxorVS:
      return true;
    default:
      return false;
  }
}

bool is_merge(Opcode op) {
  switch (op) {
    case Opcode::kVmergeVVM:
    case Opcode::kVmergeVXM:
    case Opcode::kVmergeVIM:
      return true;
    default:
      return false;
  }
}

}  // namespace

VectorUnit::VectorUnit(const VectorConfig& cfg) : cfg_(cfg) {
  KVX_CHECK_MSG(cfg_.elen_bits == 32 || cfg_.elen_bits == 64,
                "ELEN must be 32 or 64");
  KVX_CHECK_MSG(cfg_.ele_num >= 1 && cfg_.ele_num <= 1024, "EleNum out of range");
  KVX_CHECK_MSG(5 * cfg_.effective_sn() <= cfg_.ele_num,
                "5*SN must not exceed EleNum");
  reg_bytes_ = static_cast<usize>(cfg_.vlen_bits()) / 8;
  file_.assign(32 * reg_bytes_, 0);
  vtype_.sew = cfg_.elen_bits;
  vtype_.lmul = 1;
  vl_ = cfg_.ele_num;
}

usize VectorUnit::vlmax(const isa::VType& vt) const noexcept {
  return static_cast<usize>(vt.lmul) * cfg_.vlen_bits() / vt.sew;
}

void VectorUnit::set_sn(unsigned sn) {
  if (sn == 0 || 5 * sn > cfg_.ele_num) {
    throw SimError(strfmt("SN=%u invalid for EleNum=%u", sn, cfg_.ele_num));
  }
  cfg_.sn = sn;
}

usize VectorUnit::elems_per_row(unsigned sew_bits) const noexcept {
  return cfg_.vlen_bits() / sew_bits;
}

u64 VectorUnit::get_element(unsigned vreg, usize idx, unsigned sew_bits) const {
  KVX_CHECK(vreg < 32);
  const usize byte = idx * sew_bits / 8;
  KVX_CHECK_MSG(byte + sew_bits / 8 <= reg_bytes_, "element index out of register");
  u64 v = 0;
  std::memcpy(&v, file_.data() + vreg * reg_bytes_ + byte, sew_bits / 8);
  return v;
}

void VectorUnit::set_element(unsigned vreg, usize idx, unsigned sew_bits, u64 value) {
  KVX_CHECK(vreg < 32);
  const usize byte = idx * sew_bits / 8;
  KVX_CHECK_MSG(byte + sew_bits / 8 <= reg_bytes_, "element index out of register");
  value = truncate(value, sew_bits);
  std::memcpy(file_.data() + vreg * reg_bytes_ + byte, &value, sew_bits / 8);
}

std::vector<u8> VectorUnit::get_register(unsigned vreg) const {
  KVX_CHECK(vreg < 32);
  const auto* p = file_.data() + vreg * reg_bytes_;
  return std::vector<u8>(p, p + reg_bytes_);
}

void VectorUnit::set_register(unsigned vreg, std::span<const u8> bytes) {
  KVX_CHECK(vreg < 32);
  KVX_CHECK_MSG(bytes.size() == reg_bytes_, "register byte size mismatch");
  std::memcpy(file_.data() + vreg * reg_bytes_, bytes.data(), reg_bytes_);
}

void VectorUnit::clear_registers() noexcept {
  std::fill(file_.begin(), file_.end(), u8{0});
}

u64 VectorUnit::group_get(unsigned base, usize idx, unsigned sew) const {
  const usize epr = elems_per_row(sew);
  const unsigned reg = base + static_cast<unsigned>(idx / epr);
  if (reg >= 32) throw SimError("vector register group overflows the file");
  return get_element(reg, idx % epr, sew);
}

void VectorUnit::group_set(unsigned base, usize idx, unsigned sew, u64 value) {
  const usize epr = elems_per_row(sew);
  const unsigned reg = base + static_cast<unsigned>(idx / epr);
  if (reg >= 32) throw SimError("vector register group overflows the file");
  set_element(reg, idx % epr, sew, value);
}

bool VectorUnit::mask_bit(usize idx) const {
  // Mask register is v0, one bit per element, LSB-first.
  const usize byte = idx / 8;
  KVX_CHECK_MSG(byte < reg_bytes_, "mask index beyond v0");
  return ((file_[byte] >> (idx % 8)) & 1) != 0;
}

usize VectorUnit::active_rows(unsigned sew_bits) const noexcept {
  const usize epr = elems_per_row(sew_bits);
  return (vl_ + epr - 1) / epr;
}

u8* VectorUnit::lane_row(unsigned reg, unsigned bytes) {
  KVX_CHECK_MSG(usize{5} * cfg_.effective_sn() * bytes <= reg_bytes_,
                "custom op lane span exceeds the register row");
  return file_.data() + static_cast<usize>(reg) * reg_bytes_;
}

u32 VectorUnit::execute(const Instruction& inst, ScalarRegs& x, Memory& mem,
                        const CycleModel& cm) {
  switch (isa::info(inst.op).format) {
    case Format::kVSetVLI:
      return exec_vsetvli(inst, x, cm);
    case Format::kVArith:
      return exec_arith(inst, x, cm);
    case Format::kVLoad:
    case Format::kVStore:
      return exec_memory(inst, x, mem, cm);
    case Format::kVCustom:
      return exec_custom(inst, x, cm);
    default:
      throw SimError("not a vector instruction");
  }
}

u32 VectorUnit::exec_vsetvli(const Instruction& inst, ScalarRegs& x,
                             const CycleModel& cm) {
  const isa::VType vt = inst.vtype;
  if (vt.sew > cfg_.elen_bits) {
    throw SimError(strfmt("vsetvli SEW=%u exceeds ELEN=%u", vt.sew, cfg_.elen_bits));
  }
  const usize max = vlmax(vt);
  usize avl;
  if (inst.rs1 != 0) {
    avl = x.read(inst.rs1);
  } else if (inst.rd != 0) {
    avl = max;  // rs1=x0, rd!=x0: request VLMAX
  } else {
    avl = vl_;  // rs1=rd=x0: keep vl, change vtype only
  }
  vtype_ = vt;
  vl_ = std::min(avl, max);
  x.write(inst.rd, static_cast<u32>(vl_));
  return cm.vsetvli;
}

u32 VectorUnit::exec_arith(const Instruction& inst, const ScalarRegs& x,
                           const CycleModel& cm) {
  const unsigned sew = vtype_.sew;
  const usize n = vl_;
  const auto& oi = isa::info(inst.op);

  // Resolve the second source operand per flavour.
  u64 imm_operand = 0;
  if (oi.voperands == VOperands::kVX) {
    imm_operand = scalar_operand(x.read(inst.rs1), sew);
  } else if (oi.voperands == VOperands::kVI) {
    imm_operand = truncate(static_cast<u64>(static_cast<i64>(inst.imm)), sew);
  }

  // Snapshot sources so overlapping vd/vs are handled like real hardware
  // (reads happen before the write-back of the same element index).
  const auto src1 = [&](usize i) -> u64 {
    return oi.voperands == VOperands::kVV ? group_get(inst.rs1, i, sew)
                                          : imm_operand;
  };
  const auto src2 = [&](usize i) -> u64 { return group_get(inst.rs2, i, sew); };

  // Reductions: vd[0] = op(vs1[0], active elements of vs2); tail untouched.
  if (is_reduction(inst.op)) {
    u64 acc = group_get(inst.rs1, 0, sew);
    for (usize i = 0; i < n; ++i) {
      if (!inst.vm && !mask_bit(i)) continue;
      const u64 v = group_get(inst.rs2, i, sew);
      switch (inst.op) {
        case Opcode::kVredsumVS: acc += v; break;
        case Opcode::kVredandVS: acc &= v; break;
        case Opcode::kVredorVS: acc |= v; break;
        case Opcode::kVredxorVS: acc ^= v; break;
        default: break;
      }
    }
    group_set(inst.rd, 0, sew, truncate(acc, sew));
    return cm.varith(std::max<usize>(active_rows(sew), 1));
  }

  // vmerge: every element is written; v0 selects between the two sources
  // (this is not masking-off, so it bypasses the generic skip below).
  if (is_merge(inst.op)) {
    for (usize i = 0; i < n; ++i) {
      const u64 r = mask_bit(i) ? src1(i) : group_get(inst.rs2, i, sew);
      group_set(inst.rd, i, sew, truncate(r, sew));
    }
    return cm.varith(std::max<usize>(active_rows(sew), 1));
  }

  // Mask-writing compares: result bit i goes into bit i of vd.
  if (is_mask_compare(inst.op)) {
    for (usize i = 0; i < n; ++i) {
      if (!inst.vm && !mask_bit(i)) continue;
      const u64 a = group_get(inst.rs2, i, sew);
      const u64 b = src1(i);
      bool r = false;
      switch (inst.op) {
        case Opcode::kVmseqVV:
        case Opcode::kVmseqVX:
        case Opcode::kVmseqVI: r = a == b; break;
        case Opcode::kVmsneVV:
        case Opcode::kVmsneVX:
        case Opcode::kVmsneVI: r = a != b; break;
        case Opcode::kVmsltuVV:
        case Opcode::kVmsltuVX: r = a < b; break;
        case Opcode::kVmsltVV:
        case Opcode::kVmsltVX: r = as_signed(a, sew) < as_signed(b, sew); break;
        default: break;
      }
      u64 byte = get_element(inst.rd, i / 8, 8);
      const u64 bit = u64{1} << (i % 8);
      byte = r ? (byte | bit) : (byte & ~bit);
      set_element(inst.rd, i / 8, 8, byte);
    }
    return cm.varith(std::max<usize>(active_rows(sew), 1));
  }

  // vrgather reads arbitrary source elements, so snapshot the whole source.
  std::vector<u64> gather_src;
  if (inst.op == Opcode::kVrgatherVV) {
    gather_src.resize(vlmax(vtype_));
    for (usize i = 0; i < gather_src.size(); ++i) {
      gather_src[i] = group_get(inst.rs2, i, sew);
    }
  }
  std::vector<u64> slide_src;
  if (inst.op == Opcode::kVslideupVI || inst.op == Opcode::kVslidedownVI) {
    slide_src.resize(n);
    for (usize i = 0; i < n; ++i) slide_src[i] = group_get(inst.rs2, i, sew);
  }

  for (usize i = 0; i < n; ++i) {
    if (!inst.vm && !mask_bit(i)) continue;  // mask-undisturbed
    u64 r;
    switch (inst.op) {
      case Opcode::kVaddVV:
      case Opcode::kVaddVX:
      case Opcode::kVaddVI:
        r = src2(i) + src1(i);
        break;
      case Opcode::kVsubVV:
      case Opcode::kVsubVX:
        r = src2(i) - src1(i);
        break;
      case Opcode::kVandVV:
      case Opcode::kVandVX:
      case Opcode::kVandVI:
        r = src2(i) & src1(i);
        break;
      case Opcode::kVorVV:
      case Opcode::kVorVX:
      case Opcode::kVorVI:
        r = src2(i) | src1(i);
        break;
      case Opcode::kVxorVV:
      case Opcode::kVxorVX:
      case Opcode::kVxorVI:
        r = src2(i) ^ src1(i);
        break;
      case Opcode::kVsllVV:
      case Opcode::kVsllVX:
      case Opcode::kVsllVI:
        r = src2(i) << (src1(i) & (sew - 1));
        break;
      case Opcode::kVsrlVV:
      case Opcode::kVsrlVX:
      case Opcode::kVsrlVI:
        r = src2(i) >> (src1(i) & (sew - 1));
        break;
      case Opcode::kVminuVV:
      case Opcode::kVminuVX:
        r = std::min(src2(i), src1(i));
        break;
      case Opcode::kVmaxuVV:
      case Opcode::kVmaxuVX:
        r = std::max(src2(i), src1(i));
        break;
      case Opcode::kVminVV:
      case Opcode::kVminVX:
        r = as_signed(src2(i), sew) < as_signed(src1(i), sew) ? src2(i)
                                                              : src1(i);
        break;
      case Opcode::kVmaxVV:
      case Opcode::kVmaxVX:
        r = as_signed(src2(i), sew) > as_signed(src1(i), sew) ? src2(i)
                                                              : src1(i);
        break;
      case Opcode::kVmvVV:
      case Opcode::kVmvVX:
      case Opcode::kVmvVI:
        r = src1(i);
        break;
      case Opcode::kVrgatherVV: {
        const u64 idx = group_get(inst.rs1, i, sew);
        r = idx < gather_src.size() ? gather_src[idx] : 0;
        break;
      }
      case Opcode::kVslideupVI: {
        const auto off = static_cast<usize>(inst.imm);
        if (i < off) continue;  // elements below the slide stay undisturbed
        r = slide_src[i - off];
        break;
      }
      case Opcode::kVslidedownVI: {
        const auto off = static_cast<usize>(inst.imm);
        r = (i + off < n) ? slide_src[i + off] : 0;
        break;
      }
      default:
        throw SimError(std::string("unhandled vector arithmetic op ") +
                       std::string(isa::mnemonic(inst.op)));
    }
    group_set(inst.rd, i, sew, truncate(r, sew));
  }
  // Tail elements (>= vl) are left undisturbed ("tu", as the paper's
  // programs request; agnostic policies may also keep values).
  return cm.varith(std::max<usize>(active_rows(sew), 1));
}

u32 VectorUnit::exec_memory(const Instruction& inst, const ScalarRegs& x,
                            Memory& mem, const CycleModel& cm) {
  const auto& oi = isa::info(inst.op);
  const bool is_load = oi.format == Format::kVLoad;
  const auto mop = static_cast<VMop>(oi.aux);
  const unsigned eew = isa::vmem_width_bits(inst.op);
  KVX_CHECK(eew != 0);
  const u32 base = x.read(inst.rs1);
  const usize n = vl_;

  // Indexed accesses move SEW-wide data with 32-bit byte-offset indices;
  // unit-stride and strided accesses move EEW-wide data.
  const unsigned data_width = mop == VMop::kIndexed ? vtype_.sew : eew;

  for (usize i = 0; i < n; ++i) {
    if (!inst.vm && !mask_bit(i)) continue;
    u32 addr;
    switch (mop) {
      case VMop::kUnit:
        addr = base + static_cast<u32>(i * (eew / 8));
        break;
      case VMop::kStrided:
        addr = base + static_cast<u32>(i) * x.read(inst.rs2);
        break;
      case VMop::kIndexed:
        addr = base + static_cast<u32>(group_get(inst.rs2, i, 32));
        break;
      default:
        throw SimError("bad vector addressing mode");
    }
    if (is_load) {
      group_set(inst.rd, i, data_width, mem.read_element(addr, data_width));
    } else {
      mem.write_element(addr, data_width,
                        group_get(inst.rd, i, data_width));
    }
  }
  const usize epr = elems_per_row(data_width);
  const usize rows = std::max<usize>((n + epr - 1) / epr, 1);
  return cm.vmem(rows);
}

// ---------------------------------------------------------------------------
// Custom Keccak instructions.
// ---------------------------------------------------------------------------

namespace {

/// Lane access on a register-row base pointer (`bytes` = SEW/8). The row
/// handlers bounds-check the whole 5*SN element span once and then run on
/// raw pointers; memcpy keeps the accesses strict-aliasing clean. A partial
/// store of the low `bytes` bytes is the SEW truncation.
u64 ld_lane(const u8* row, unsigned idx, unsigned bytes) {
  u64 v = 0;
  std::memcpy(&v, row + static_cast<usize>(idx) * bytes, bytes);
  return v;
}

void st_lane(u8* row, unsigned idx, unsigned bytes, u64 value) {
  std::memcpy(row + static_cast<usize>(idx) * bytes, &value, bytes);
}

/// Round-constant lookup for viota: full 64-bit table for ELEN=64; split
/// lo/hi 32-bit table (RC32[2k] = lo, RC32[2k+1] = hi) for ELEN=32.
u64 iota_constant(unsigned sew, u32 index) {
  const auto& rc = keccak::round_constants();
  if (sew == 64) {
    if (index >= rc.size()) throw SimError("viota RC index out of range");
    return rc[index];
  }
  if (index >= 2 * rc.size()) throw SimError("viota RC index out of range");
  const u64 full = rc[index / 2];
  return (index % 2 == 0) ? lo32(full) : hi32(full);
}

}  // namespace

void VectorUnit::row_slide_mod5(unsigned vd, unsigned vs2, unsigned row,
                                int offset) {
  const unsigned bytes = vtype_.sew / 8;
  const unsigned sn = cfg_.effective_sn();
  const unsigned d = vd + row;
  const unsigned s = vs2 + row;
  if (d >= 32 || s >= 32) throw SimError("custom slide register out of range");
  const unsigned shift = static_cast<unsigned>(offset + 10) % 5u;
  const u8* const sp = lane_row(s, bytes);
  u8* const dp = lane_row(d, bytes);
  std::array<u64, 5> tmp{};
  for (unsigned i = 0; i < sn; ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      tmp[j] = ld_lane(sp, 5 * i + (j + shift) % 5, bytes);
    }
    for (unsigned j = 0; j < 5; ++j) {
      st_lane(dp, 5 * i + j, bytes, tmp[j]);
    }
  }
}

void VectorUnit::row_rotup(unsigned vd, unsigned vs2, unsigned row,
                           unsigned amount) {
  const unsigned sew = vtype_.sew;
  if (sew != 64) throw SimError("vrotup requires the 64-bit architecture");
  const unsigned sn = cfg_.effective_sn();
  const unsigned d = vd + row;
  const unsigned s = vs2 + row;
  if (d >= 32 || s >= 32) throw SimError("vrotup register out of range");
  const u8* const sp = lane_row(s, 8);
  u8* const dp = lane_row(d, 8);
  for (unsigned e = 0; e < 5 * sn; ++e) {
    st_lane(dp, e, 8, rotl64(ld_lane(sp, e, 8), amount));
  }
}

void VectorUnit::row_rho64(unsigned vd, unsigned vs2, unsigned row,
                           unsigned table_row) {
  const unsigned sew = vtype_.sew;
  if (sew != 64) throw SimError("v64rho requires the 64-bit architecture");
  const unsigned sn = cfg_.effective_sn();
  const unsigned d = vd + row;
  const unsigned s = vs2 + row;
  if (d >= 32 || s >= 32) throw SimError("v64rho register out of range");
  if (table_row >= 5) throw SimError("rho table row out of range");
  const auto& off = keccak::rho_offsets()[table_row];
  const u8* const sp = lane_row(s, 8);
  u8* const dp = lane_row(d, 8);
  for (unsigned i = 0; i < sn; ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      st_lane(dp, 5 * i + j, 8, rotl64(ld_lane(sp, 5 * i + j, 8), off[j]));
    }
  }
}

void VectorUnit::row_rho32(unsigned vd, unsigned vs2_hi, unsigned vs1_lo,
                           unsigned row, unsigned table_row, bool high_half) {
  const unsigned sew = vtype_.sew;
  if (sew != 32) throw SimError("v32l/hrho requires the 32-bit architecture");
  const unsigned sn = cfg_.effective_sn();
  const unsigned d = vd + row;
  const unsigned shi = vs2_hi + row;
  const unsigned slo = vs1_lo + row;
  if (d >= 32 || shi >= 32 || slo >= 32) {
    throw SimError("v32rho register out of range");
  }
  if (table_row >= 5) throw SimError("rho table row out of range");
  const auto& off = keccak::rho_offsets()[table_row];
  const u8* const hp = lane_row(shi, 4);
  const u8* const lp = lane_row(slo, 4);
  u8* const dp = lane_row(d, 4);
  for (unsigned i = 0; i < sn; ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      const unsigned e = 5 * i + j;
      const u64 lane = concat32(static_cast<u32>(ld_lane(hp, e, 4)),
                                static_cast<u32>(ld_lane(lp, e, 4)));
      const u64 rot = rotl64(lane, off[j]);
      st_lane(dp, e, 4, high_half ? hi32(rot) : lo32(rot));
    }
  }
}

void VectorUnit::row_rot32pair(unsigned vd, unsigned vs2_hi, unsigned vs1_lo,
                               bool high_half) {
  const unsigned sew = vtype_.sew;
  if (sew != 32) throw SimError("v32l/hrotup requires the 32-bit architecture");
  const unsigned sn = cfg_.effective_sn();
  if (vd >= 32 || vs2_hi >= 32 || vs1_lo >= 32) {
    throw SimError("v32rotup register out of range");
  }
  const u8* const hp = lane_row(vs2_hi, 4);
  const u8* const lp = lane_row(vs1_lo, 4);
  u8* const dp = lane_row(vd, 4);
  for (unsigned e = 0; e < 5 * sn; ++e) {
    const u64 lane = concat32(static_cast<u32>(ld_lane(hp, e, 4)),
                              static_cast<u32>(ld_lane(lp, e, 4)));
    const u64 rot = rotl64(lane, 1);
    st_lane(dp, e, 4, high_half ? hi32(rot) : lo32(rot));
  }
}

void VectorUnit::row_pi(unsigned vd, unsigned vs2_row_reg, unsigned table_row) {
  // Column-mode write-back (paper Figure 8): source row r supplies element
  // x' to destination register vd + 2(x'−r) mod 5 at element position
  // 5i + r (one column per source row).
  const unsigned sew = vtype_.sew;
  const unsigned sn = cfg_.effective_sn();
  if (vs2_row_reg >= 32 || vd + 4 >= 32) {
    throw SimError("vpi register out of range");
  }
  if (table_row >= 5) throw SimError("vpi table row out of range");
  const unsigned bytes = sew / 8;
  const u8* const sp = lane_row(vs2_row_reg, bytes);
  u8* const vd_base = lane_row(vd, bytes);
  for (unsigned i = 0; i < sn; ++i) {
    std::array<u64, 5> src{};
    for (unsigned xp = 0; xp < 5; ++xp) {
      src[xp] = ld_lane(sp, 5 * i + xp, bytes);
    }
    for (unsigned xp = 0; xp < 5; ++xp) {
      const unsigned y = (2 * (xp + 5 - table_row)) % 5;
      st_lane(vd_base + y * reg_bytes_, 5 * i + table_row, bytes, src[xp]);
    }
  }
}

void VectorUnit::row_iota(unsigned vd, unsigned vs2, u32 index) {
  const unsigned sew = vtype_.sew;
  const unsigned sn = cfg_.effective_sn();
  if (vd >= 32 || vs2 >= 32) throw SimError("viota register out of range");
  const u64 rc = iota_constant(sew, index);
  const unsigned bytes = sew / 8;
  const u8* const sp = lane_row(vs2, bytes);
  u8* const dp = lane_row(vd, bytes);
  for (unsigned i = 0; i < sn; ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      u64 v = ld_lane(sp, 5 * i + j, bytes);
      if (j == 0) v ^= rc;
      st_lane(dp, 5 * i + j, bytes, v);
    }
  }
}

// --- fused-extension instructions (paper §5 future work) -------------------

void VectorUnit::row_thetac(unsigned vd, unsigned vs2, unsigned row) {
  // C[x] = B[x-1] ^ ROTL64(B[x+1], 1) — fuses vslideupm + vslidedownm +
  // vrotup + vxor of the θ step into one instruction.
  const unsigned sew = vtype_.sew;
  if (sew != 64) throw SimError("vthetac requires the 64-bit architecture");
  const unsigned sn = cfg_.effective_sn();
  const unsigned d = vd + row;
  const unsigned s = vs2 + row;
  if (d >= 32 || s >= 32) throw SimError("vthetac register out of range");
  const u8* const sp = lane_row(s, 8);
  u8* const dp = lane_row(d, 8);
  for (unsigned i = 0; i < sn; ++i) {
    std::array<u64, 5> b{};
    for (unsigned j = 0; j < 5; ++j) b[j] = ld_lane(sp, 5 * i + j, 8);
    for (unsigned j = 0; j < 5; ++j) {
      st_lane(dp, 5 * i + j, 8, b[(j + 4) % 5] ^ rotl64(b[(j + 1) % 5], 1));
    }
  }
}

void VectorUnit::row_rhopi(unsigned vd, unsigned vs2_row_reg,
                           unsigned table_row) {
  // Fused ρ∘π: rotate each lane of source row r by its ρ offset, then
  // scatter in π column mode (source row r -> destination column r).
  const unsigned sew = vtype_.sew;
  if (sew != 64) throw SimError("vrhopi requires the 64-bit architecture");
  const unsigned sn = cfg_.effective_sn();
  if (vs2_row_reg >= 32 || vd + 4 >= 32) {
    throw SimError("vrhopi register out of range");
  }
  if (table_row >= 5) throw SimError("vrhopi table row out of range");
  const auto& off = keccak::rho_offsets()[table_row];
  const u8* const sp = lane_row(vs2_row_reg, 8);
  u8* const vd_base = lane_row(vd, 8);
  for (unsigned i = 0; i < sn; ++i) {
    std::array<u64, 5> src{};
    for (unsigned xp = 0; xp < 5; ++xp) {
      src[xp] = rotl64(ld_lane(sp, 5 * i + xp, 8), off[xp]);
    }
    for (unsigned xp = 0; xp < 5; ++xp) {
      const unsigned y = (2 * (xp + 5 - table_row)) % 5;
      st_lane(vd_base + y * reg_bytes_, 5 * i + table_row, 8, src[xp]);
    }
  }
}

void VectorUnit::row_chi(unsigned vd, unsigned vs2, unsigned row) {
  // Whole χ row in one instruction: H[x] = F[x] ^ (~F[x+1] & F[x+2]).
  // Bitwise, so it works on both the 64-bit lanes and 32-bit half-lanes.
  const unsigned sew = vtype_.sew;
  const unsigned sn = cfg_.effective_sn();
  const unsigned d = vd + row;
  const unsigned s = vs2 + row;
  if (d >= 32 || s >= 32) throw SimError("vchi register out of range");
  const unsigned bytes = sew / 8;
  const u8* const sp = lane_row(s, bytes);
  u8* const dp = lane_row(d, bytes);
  for (unsigned i = 0; i < sn; ++i) {
    std::array<u64, 5> f{};
    for (unsigned j = 0; j < 5; ++j) f[j] = ld_lane(sp, 5 * i + j, bytes);
    for (unsigned j = 0; j < 5; ++j) {
      st_lane(dp, 5 * i + j, bytes,
              f[j] ^ (~f[(j + 1) % 5] & f[(j + 2) % 5]));
    }
  }
}

u32 VectorUnit::exec_custom(const Instruction& inst, const ScalarRegs& x,
                            const CycleModel& cm) {
  const unsigned sew = vtype_.sew;
  const usize rows = std::max<usize>(active_rows(sew), 1);

  switch (inst.op) {
    case Opcode::kVslidedownmVI:
      for (usize r = 0; r < rows; ++r) {
        row_slide_mod5(inst.rd, inst.rs2, static_cast<unsigned>(r), inst.imm);
      }
      return cm.varith(rows);
    case Opcode::kVslideupmVI:
      for (usize r = 0; r < rows; ++r) {
        row_slide_mod5(inst.rd, inst.rs2, static_cast<unsigned>(r), -inst.imm);
      }
      return cm.varith(rows);
    case Opcode::kVrotupVI:
      for (usize r = 0; r < rows; ++r) {
        row_rotup(inst.rd, inst.rs2, static_cast<unsigned>(r),
                  static_cast<unsigned>(inst.imm));
      }
      return cm.varith(rows);
    case Opcode::kV32lrotupVV:
      row_rot32pair(inst.rd, inst.rs2, inst.rs1, /*high_half=*/false);
      return cm.varith(rows);
    case Opcode::kV32hrotupVV:
      row_rot32pair(inst.rd, inst.rs2, inst.rs1, /*high_half=*/true);
      return cm.varith(rows);
    case Opcode::kV64rhoVI:
      if (inst.imm >= 0) {
        // Single-plane form: LMUL is expected to be 1 (paper §3.3).
        row_rho64(inst.rd, inst.rs2, 0, static_cast<unsigned>(inst.imm));
        return cm.varith(1);
      }
      // imm == -1: all five planes, row indexed by the hardware lmul_cnt.
      for (usize r = 0; r < rows; ++r) {
        row_rho64(inst.rd, inst.rs2, static_cast<unsigned>(r),
                  static_cast<unsigned>(r));
      }
      return cm.varith(rows);
    case Opcode::kV32lrhoVV:
    case Opcode::kV32hrhoVV: {
      const bool high = inst.op == Opcode::kV32hrhoVV;
      for (usize r = 0; r < rows; ++r) {
        row_rho32(inst.rd, inst.rs2, inst.rs1, static_cast<unsigned>(r),
                  static_cast<unsigned>(r), high);
      }
      return cm.varith(rows);
    }
    case Opcode::kVpiVI:
      if (inst.imm >= 0) {
        row_pi(inst.rd, inst.rs2, static_cast<unsigned>(inst.imm));
        return cm.vpi(1);
      }
      for (usize r = 0; r < rows; ++r) {
        row_pi(inst.rd, inst.rs2 + static_cast<unsigned>(r),
               static_cast<unsigned>(r));
      }
      return cm.vpi(rows);
    case Opcode::kViotaVX:
      row_iota(inst.rd, inst.rs2, x.read(inst.rs1));
      return cm.varith(1);
    case Opcode::kVthetacVV:
      for (usize r = 0; r < rows; ++r) {
        row_thetac(inst.rd, inst.rs2, static_cast<unsigned>(r));
      }
      return cm.varith(rows);
    case Opcode::kVrhopiVI:
      if (inst.imm >= 0) {
        row_rhopi(inst.rd, inst.rs2, static_cast<unsigned>(inst.imm));
        return cm.vpi(1);
      }
      for (usize r = 0; r < rows; ++r) {
        row_rhopi(inst.rd, inst.rs2 + static_cast<unsigned>(r),
                  static_cast<unsigned>(r));
      }
      return cm.vpi(rows);
    case Opcode::kVchiVV:
      for (usize r = 0; r < rows; ++r) {
        row_chi(inst.rd, inst.rs2, static_cast<unsigned>(r));
      }
      return cm.varith(rows) + cm.vchi_extra;
    default:
      throw SimError("unhandled custom vector instruction");
  }
}

}  // namespace kvx::sim
