#include "kvx/sim/scalar_core.hpp"

#include <limits>

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::sim {

using isa::Instruction;
using isa::Opcode;

void ScalarCore::reset() noexcept {
  regs_.clear();
  pc_ = 0;
}

ScalarResult ScalarCore::execute(const Instruction& inst, Memory& mem,
                                 const CycleModel& cm, u64 cycle_count,
                                 u64 instret) {
  ScalarResult res;
  const u32 rs1 = regs_.read(inst.rs1);
  const u32 rs2 = regs_.read(inst.rs2);
  const auto imm = static_cast<u32>(inst.imm);
  u32 next_pc = pc_ + 4;
  res.cycles = cm.alu;

  switch (inst.op) {
    // ---- upper immediates / jumps ----
    case Opcode::kLui:
      regs_.write(inst.rd, static_cast<u32>(inst.imm) << 12);
      break;
    case Opcode::kAuipc:
      regs_.write(inst.rd, pc_ + (static_cast<u32>(inst.imm) << 12));
      break;
    case Opcode::kJal:
      regs_.write(inst.rd, pc_ + 4);
      next_pc = pc_ + imm;
      res.cycles = cm.jump;
      break;
    case Opcode::kJalr:
      regs_.write(inst.rd, pc_ + 4);
      next_pc = (rs1 + imm) & ~1u;
      res.cycles = cm.jump;
      break;

    // ---- branches ----
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      bool taken = false;
      switch (inst.op) {
        case Opcode::kBeq: taken = rs1 == rs2; break;
        case Opcode::kBne: taken = rs1 != rs2; break;
        case Opcode::kBlt:
          taken = static_cast<i32>(rs1) < static_cast<i32>(rs2);
          break;
        case Opcode::kBge:
          taken = static_cast<i32>(rs1) >= static_cast<i32>(rs2);
          break;
        case Opcode::kBltu: taken = rs1 < rs2; break;
        case Opcode::kBgeu: taken = rs1 >= rs2; break;
        default: break;
      }
      if (taken) next_pc = pc_ + imm;
      res.cycles = taken ? cm.branch_taken : cm.branch_not_taken;
      break;
    }

    // ---- loads/stores ----
    case Opcode::kLb:
      regs_.write(inst.rd,
                  static_cast<u32>(static_cast<i32>(
                      static_cast<i8>(mem.read8(rs1 + imm)))));
      res.cycles = cm.load;
      break;
    case Opcode::kLh:
      regs_.write(inst.rd,
                  static_cast<u32>(static_cast<i32>(
                      static_cast<i16>(mem.read16(rs1 + imm)))));
      res.cycles = cm.load;
      break;
    case Opcode::kLw:
      regs_.write(inst.rd, mem.read32(rs1 + imm));
      res.cycles = cm.load;
      break;
    case Opcode::kLbu:
      regs_.write(inst.rd, mem.read8(rs1 + imm));
      res.cycles = cm.load;
      break;
    case Opcode::kLhu:
      regs_.write(inst.rd, mem.read16(rs1 + imm));
      res.cycles = cm.load;
      break;
    case Opcode::kSb:
      mem.write8(rs1 + imm, static_cast<u8>(rs2));
      res.cycles = cm.store;
      break;
    case Opcode::kSh:
      mem.write16(rs1 + imm, static_cast<u16>(rs2));
      res.cycles = cm.store;
      break;
    case Opcode::kSw:
      mem.write32(rs1 + imm, rs2);
      res.cycles = cm.store;
      break;

    // ---- ALU immediates ----
    case Opcode::kAddi: regs_.write(inst.rd, rs1 + imm); break;
    case Opcode::kSlti:
      regs_.write(inst.rd,
                  static_cast<i32>(rs1) < inst.imm ? 1u : 0u);
      break;
    case Opcode::kSltiu: regs_.write(inst.rd, rs1 < imm ? 1u : 0u); break;
    case Opcode::kXori: regs_.write(inst.rd, rs1 ^ imm); break;
    case Opcode::kOri: regs_.write(inst.rd, rs1 | imm); break;
    case Opcode::kAndi: regs_.write(inst.rd, rs1 & imm); break;
    case Opcode::kSlli: regs_.write(inst.rd, rs1 << (imm & 31u)); break;
    case Opcode::kSrli: regs_.write(inst.rd, rs1 >> (imm & 31u)); break;
    case Opcode::kSrai:
      regs_.write(inst.rd,
                  static_cast<u32>(static_cast<i32>(rs1) >>
                                   static_cast<i32>(imm & 31u)));
      break;

    // ---- ALU register-register ----
    case Opcode::kAdd: regs_.write(inst.rd, rs1 + rs2); break;
    case Opcode::kSub: regs_.write(inst.rd, rs1 - rs2); break;
    case Opcode::kSll: regs_.write(inst.rd, rs1 << (rs2 & 31u)); break;
    case Opcode::kSlt:
      regs_.write(inst.rd,
                  static_cast<i32>(rs1) < static_cast<i32>(rs2) ? 1u : 0u);
      break;
    case Opcode::kSltu: regs_.write(inst.rd, rs1 < rs2 ? 1u : 0u); break;
    case Opcode::kXor: regs_.write(inst.rd, rs1 ^ rs2); break;
    case Opcode::kSrl: regs_.write(inst.rd, rs1 >> (rs2 & 31u)); break;
    case Opcode::kSra:
      regs_.write(inst.rd,
                  static_cast<u32>(static_cast<i32>(rs1) >>
                                   static_cast<i32>(rs2 & 31u)));
      break;
    case Opcode::kOr: regs_.write(inst.rd, rs1 | rs2); break;
    case Opcode::kAnd: regs_.write(inst.rd, rs1 & rs2); break;

    // ---- Zbb subset ----
    case Opcode::kRol:
      regs_.write(inst.rd, rotl32(rs1, rs2 & 31u));
      break;
    case Opcode::kRor:
      regs_.write(inst.rd, rotr32(rs1, rs2 & 31u));
      break;
    case Opcode::kRori:
      regs_.write(inst.rd, rotr32(rs1, imm & 31u));
      break;
    case Opcode::kAndn:
      regs_.write(inst.rd, rs1 & ~rs2);
      break;
    case Opcode::kOrn:
      regs_.write(inst.rd, rs1 | ~rs2);
      break;
    case Opcode::kXnor:
      regs_.write(inst.rd, ~(rs1 ^ rs2));
      break;

    // ---- M extension ----
    case Opcode::kMul:
      regs_.write(inst.rd, rs1 * rs2);
      res.cycles = cm.mul;
      break;
    case Opcode::kMulh:
      regs_.write(inst.rd,
                  static_cast<u32>((static_cast<i64>(static_cast<i32>(rs1)) *
                                    static_cast<i64>(static_cast<i32>(rs2))) >>
                                   32));
      res.cycles = cm.mul;
      break;
    case Opcode::kMulhsu:
      regs_.write(inst.rd,
                  static_cast<u32>((static_cast<i64>(static_cast<i32>(rs1)) *
                                    static_cast<i64>(rs2)) >>
                                   32));
      res.cycles = cm.mul;
      break;
    case Opcode::kMulhu:
      regs_.write(inst.rd, static_cast<u32>(
                               (static_cast<u64>(rs1) * rs2) >> 32));
      res.cycles = cm.mul;
      break;
    case Opcode::kDiv: {
      const auto a = static_cast<i32>(rs1);
      const auto b = static_cast<i32>(rs2);
      i32 q;
      if (b == 0) {
        q = -1;
      } else if (a == std::numeric_limits<i32>::min() && b == -1) {
        q = a;
      } else {
        q = a / b;
      }
      regs_.write(inst.rd, static_cast<u32>(q));
      res.cycles = cm.div;
      break;
    }
    case Opcode::kDivu:
      regs_.write(inst.rd, rs2 == 0 ? ~0u : rs1 / rs2);
      res.cycles = cm.div;
      break;
    case Opcode::kRem: {
      const auto a = static_cast<i32>(rs1);
      const auto b = static_cast<i32>(rs2);
      i32 r;
      if (b == 0) {
        r = a;
      } else if (a == std::numeric_limits<i32>::min() && b == -1) {
        r = 0;
      } else {
        r = a % b;
      }
      regs_.write(inst.rd, static_cast<u32>(r));
      res.cycles = cm.div;
      break;
    }
    case Opcode::kRemu:
      regs_.write(inst.rd, rs2 == 0 ? rs1 : rs1 % rs2);
      res.cycles = cm.div;
      break;

    // ---- system ----
    case Opcode::kFence:
      break;
    case Opcode::kEcall:
    case Opcode::kEbreak:
      res.halted = true;
      res.cycles = cm.system;
      break;

    // ---- CSRs ----
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
    case Opcode::kCsrrwi:
    case Opcode::kCsrrsi:
    case Opcode::kCsrrci: {
      const auto addr = static_cast<u32>(inst.imm);
      const bool is_imm = inst.op == Opcode::kCsrrwi ||
                          inst.op == Opcode::kCsrrsi ||
                          inst.op == Opcode::kCsrrci;
      const u32 operand = is_imm ? inst.rs1 : rs1;
      // Read side.
      u32 old = 0;
      switch (addr) {
        case csr::kCycle: old = static_cast<u32>(cycle_count); break;
        case csr::kCycleH: old = static_cast<u32>(cycle_count >> 32); break;
        case csr::kInstret: old = static_cast<u32>(instret); break;
        default: break;  // custom CSRs read as zero
      }
      regs_.write(inst.rd, old);
      // Write side (only the custom CSRs are writable).
      const bool writes =
          inst.op == Opcode::kCsrrw || inst.op == Opcode::kCsrrwi ||
          ((inst.op == Opcode::kCsrrs || inst.op == Opcode::kCsrrsi ||
            inst.op == Opcode::kCsrrc || inst.op == Opcode::kCsrrci) &&
           operand != 0);
      if (writes) {
        if (addr == csr::kMarker) {
          res.csr_marker = true;
          res.marker_value = operand;
        } else if (addr == csr::kSn) {
          res.csr_sn = true;
          res.sn_value = operand;
        } else if (addr == csr::kCycle || addr == csr::kCycleH ||
                   addr == csr::kInstret) {
          throw SimError(strfmt("write to read-only CSR 0x%03x", addr));
        }
        // Other CSR writes are accepted and ignored.
      }
      res.cycles = cm.csr;
      break;
    }

    default:
      throw SimError(std::string("scalar core cannot execute ") +
                     std::string(isa::mnemonic(inst.op)));
  }

  pc_ = next_pc;
  return res;
}

}  // namespace kvx::sim
