#include "kvx/sim/host_simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kvx/common/error.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/obs/metrics.hpp"

// Which lowered paths this translation unit compiles. The portable path
// needs GCC/Clang vector extensions; the intrinsic paths additionally need
// x86-64 and per-function target support (both compilers provide it). The
// KVX_HOST_SIMD build option gates everything but the scalar path, and
// KVX_HOST_SIMD_AVX512 gates the 512-bit path alone so CI can force the
// AVX2 lowering on AVX-512 hardware.
#if defined(KVX_HOST_SIMD) && KVX_HOST_SIMD && \
    (defined(__GNUC__) || defined(__clang__))
#define KVX_HS_HAVE_PORTABLE 1
#else
#define KVX_HS_HAVE_PORTABLE 0
#endif

#if KVX_HS_HAVE_PORTABLE && defined(__x86_64__)
#define KVX_HS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define KVX_HS_HAVE_AVX2 0
#endif

#if KVX_HS_HAVE_AVX2 && defined(KVX_HOST_SIMD_AVX512) && KVX_HOST_SIMD_AVX512
#define KVX_HS_HAVE_AVX512 1
#else
#define KVX_HS_HAVE_AVX512 0
#endif

namespace kvx::sim {

// ---------------------------------------------------------------------------
// Packed-state transpose (ISA-independent: runs only at segment edges).
// ---------------------------------------------------------------------------

void host_simd_pack(const u8* file, u32 loc, u32 rb, u32 sn, u32 s0, u32 pack,
                    u64* buf) noexcept {
  for (u32 y = 0; y < 5; ++y) {
    const u8* row = file + loc + y * rb;
    for (u32 x = 0; x < 5; ++x) {
      u64* lane = buf + (5 * y + x) * pack;
      for (u32 p = 0; p < pack; ++p) {
        const u32 s = s0 + p;
        if (s < sn) {
          std::memcpy(&lane[p], row + 8 * (5 * s + x), 8);
        } else {
          lane[p] = 0;
        }
      }
    }
  }
}

void host_simd_unpack(u8* file, u32 loc, u32 rb, u32 sn, u32 s0, u32 pack,
                      const u64* buf) noexcept {
  for (u32 y = 0; y < 5; ++y) {
    u8* row = file + loc + y * rb;
    for (u32 x = 0; x < 5; ++x) {
      const u64* lane = buf + (5 * y + x) * pack;
      for (u32 p = 0; p < pack && s0 + p < sn; ++p) {
        std::memcpy(row + 8 * (5 * (s0 + p) + x), &lane[p], 8);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-ISA segment runners, stamped out from host_simd_kernels.inc.
// ---------------------------------------------------------------------------

namespace {

// Scalar: always compiled — the KVX_HOST_SIMD=OFF floor and the last resort
// of the runtime dispatch.
#define KVX_HS_NAME run_group_scalar
#define KVX_HS_ATTR
#define KVX_HS_VEC u64
#define KVX_HS_LANES 1
#define KVX_HS_LOAD(p) (*(p))
#define KVX_HS_STORE(p, v) (*(p) = (v))
#define KVX_HS_XOR(a, b) ((a) ^ (b))
#define KVX_HS_XOR3(a, b, c) ((a) ^ (b) ^ (c))
#define KVX_HS_CHI(a, b, c) ((a) ^ (~(b) & (c)))
#define KVX_HS_ROLC(v, r) \
  (((v) << ((r) & 63)) | ((v) >> ((64 - (r)) & 63)))
#define KVX_HS_SET1(x) (x)
#include "host_simd_kernels.inc"

#if KVX_HS_HAVE_PORTABLE
typedef u64 hs_v4 __attribute__((vector_size(32)));
inline hs_v4 hs_ld4(const u64* p) noexcept {
  hs_v4 v;
  std::memcpy(&v, p, 32);
  return v;
}
inline void hs_st4(u64* p, hs_v4 v) noexcept { std::memcpy(p, &v, 32); }

#define KVX_HS_NAME run_group_portable
#define KVX_HS_ATTR
#define KVX_HS_VEC hs_v4
#define KVX_HS_LANES 4
#define KVX_HS_LOAD(p) hs_ld4(p)
#define KVX_HS_STORE(p, v) hs_st4((p), (v))
#define KVX_HS_XOR(a, b) ((a) ^ (b))
#define KVX_HS_XOR3(a, b, c) ((a) ^ (b) ^ (c))
#define KVX_HS_CHI(a, b, c) ((a) ^ (~(b) & (c)))
#define KVX_HS_ROLC(v, r) \
  (((v) << ((r) & 63)) | ((v) >> ((64 - (r)) & 63)))
#define KVX_HS_SET1(x) (hs_v4{(x), (x), (x), (x)})
#include "host_simd_kernels.inc"
#endif  // KVX_HS_HAVE_PORTABLE

#if KVX_HS_HAVE_AVX2
// 64-bit rotate as shift-shift-or; the r == 0 arm keeps the srli count in
// range (vpsrlq by 64 is well-defined zero, but no need to rely on it).
#define KVX_HS_NAME run_group_avx2
#define KVX_HS_ATTR __attribute__((target("avx2")))
#define KVX_HS_VEC __m256i
#define KVX_HS_LANES 4
#define KVX_HS_LOAD(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define KVX_HS_STORE(p, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (v))
#define KVX_HS_XOR(a, b) _mm256_xor_si256((a), (b))
#define KVX_HS_XOR3(a, b, c) \
  _mm256_xor_si256(_mm256_xor_si256((a), (b)), (c))
#define KVX_HS_CHI(a, b, c) \
  _mm256_xor_si256((a), _mm256_andnot_si256((b), (c)))
#define KVX_HS_ROLC(v, r)                                        \
  ((r) == 0 ? (v)                                                \
            : _mm256_or_si256(_mm256_slli_epi64((v), (r)),       \
                              _mm256_srli_epi64((v), 64 - (r))))
#define KVX_HS_SET1(x) _mm256_set1_epi64x(static_cast<long long>(x))
#include "host_simd_kernels.inc"
#endif  // KVX_HS_HAVE_AVX2

#if KVX_HS_HAVE_AVX512
// The XKCP/K12 idiom: ternarylogic 0x96 is XOR3, 0xD2 is Chi (a ^ (~b & c)),
// and vprolq rotates without the shift-or dance.
#define KVX_HS_NAME run_group_avx512
#define KVX_HS_ATTR __attribute__((target("avx512f")))
#define KVX_HS_VEC __m512i
#define KVX_HS_LANES 8
#define KVX_HS_LOAD(p) _mm512_loadu_si512(static_cast<const void*>(p))
#define KVX_HS_STORE(p, v) _mm512_storeu_si512(static_cast<void*>(p), (v))
#define KVX_HS_XOR(a, b) _mm512_xor_si512((a), (b))
#define KVX_HS_XOR3(a, b, c) _mm512_ternarylogic_epi64((a), (b), (c), 0x96)
#define KVX_HS_CHI(a, b, c) _mm512_ternarylogic_epi64((a), (b), (c), 0xD2)
#define KVX_HS_ROLC(v, r) _mm512_rol_epi64((v), (r))
#define KVX_HS_SET1(x) _mm512_set1_epi64(static_cast<long long>(x))
#include "host_simd_kernels.inc"
#endif  // KVX_HS_HAVE_AVX512

using GroupRunner = void (*)(u8*, u32, u32, u32, u32, const HostSimdKernel*,
                             u32);

GroupRunner runner_for(HostSimdIsa isa) noexcept {
  switch (isa) {
#if KVX_HS_HAVE_AVX512
    case HostSimdIsa::kAvx512: return &run_group_avx512;
#endif
#if KVX_HS_HAVE_AVX2
    case HostSimdIsa::kAvx2: return &run_group_avx2;
#endif
#if KVX_HS_HAVE_PORTABLE
    case HostSimdIsa::kPortable: return &run_group_portable;
#endif
    default: return &run_group_scalar;
  }
}

// ---------------------------------------------------------------------------
// Runtime ISA dispatch.
// ---------------------------------------------------------------------------

/// Forced ISA for tests: -1 = automatic, else the HostSimdIsa value.
std::atomic<int> g_forced_isa{-1};

HostSimdIsa best_available_isa() noexcept {
  if (host_simd_isa_available(HostSimdIsa::kAvx512)) {
    return HostSimdIsa::kAvx512;
  }
  if (host_simd_isa_available(HostSimdIsa::kAvx2)) return HostSimdIsa::kAvx2;
  if (host_simd_isa_available(HostSimdIsa::kPortable)) {
    return HostSimdIsa::kPortable;
  }
  return HostSimdIsa::kScalar;
}

/// KVX_HOST_SIMD_ISA override, parsed once ("auto"/unset/unknown/unavailable
/// all fall back to CPUID selection).
std::optional<HostSimdIsa> env_isa() noexcept {
  static const std::optional<HostSimdIsa> parsed = [] {
    std::optional<HostSimdIsa> result;
    if (const char* env = std::getenv("KVX_HOST_SIMD_ISA")) {
      if (const auto isa = parse_host_simd_isa(env);
          isa && host_simd_isa_available(*isa)) {
        result = *isa;
      }
    }
    return result;
  }();
  return parsed;
}

// Per-dispatch counters, one per ISA so the scrape shows which lowering
// actually ran (docs/observability.md).
obs::Counter& dispatch_counter(HostSimdIsa isa) {
  static obs::Counter& scalar = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_dispatch_scalar_total",
      "Host-SIMD executions dispatched to the scalar lowering");
  static obs::Counter& portable = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_dispatch_portable_total",
      "Host-SIMD executions dispatched to the portable vector lowering");
  static obs::Counter& avx2 = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_dispatch_avx2_total",
      "Host-SIMD executions dispatched to the AVX2 lowering");
  static obs::Counter& avx512 = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_dispatch_avx512_total",
      "Host-SIMD executions dispatched to the AVX-512 lowering");
  switch (isa) {
    case HostSimdIsa::kAvx512: return avx512;
    case HostSimdIsa::kAvx2: return avx2;
    case HostSimdIsa::kPortable: return portable;
    default: return scalar;
  }
}

obs::Counter& packs_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_packs_total",
      "State groups transposed into packed host registers");
  return c;
}

obs::Counter& unpacks_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_hostsimd_unpacks_total",
      "State groups transposed back to the simulator regfile");
  return c;
}

}  // namespace

std::string_view host_simd_isa_name(HostSimdIsa isa) noexcept {
  switch (isa) {
    case HostSimdIsa::kAvx512: return "avx512";
    case HostSimdIsa::kAvx2: return "avx2";
    case HostSimdIsa::kPortable: return "portable";
    default: return "scalar";
  }
}

std::optional<HostSimdIsa> parse_host_simd_isa(
    std::string_view name) noexcept {
  if (name == "scalar") return HostSimdIsa::kScalar;
  if (name == "portable") return HostSimdIsa::kPortable;
  if (name == "avx2") return HostSimdIsa::kAvx2;
  if (name == "avx512" || name == "avx512f") return HostSimdIsa::kAvx512;
  return std::nullopt;
}

bool host_simd_isa_available(HostSimdIsa isa) noexcept {
  switch (isa) {
    case HostSimdIsa::kScalar: return true;
    case HostSimdIsa::kPortable: return KVX_HS_HAVE_PORTABLE != 0;
    case HostSimdIsa::kAvx2:
#if KVX_HS_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case HostSimdIsa::kAvx512:
#if KVX_HS_HAVE_AVX512
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

HostSimdIsa host_simd_active_isa() noexcept {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto isa = static_cast<HostSimdIsa>(forced);
    if (host_simd_isa_available(isa)) return isa;
  }
  if (const auto env = env_isa()) return *env;
  static const HostSimdIsa best = best_available_isa();
  return best;
}

void host_simd_force_isa(std::optional<HostSimdIsa> isa) noexcept {
  g_forced_isa.store(isa ? static_cast<int>(*isa) : -1,
                     std::memory_order_relaxed);
}

HostSimdIsa host_simd_dispatch_isa(u32 sn) noexcept {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto isa = static_cast<HostSimdIsa>(forced);
    if (host_simd_isa_available(isa)) return isa;
  }
  if (const auto env = env_isa()) return *env;
  // Automatic selection: padding lanes are pure overhead (packed, rotated
  // and XORed, then dropped), so narrow to the smallest available pack
  // width that still covers SN in one group.
  const HostSimdIsa best = host_simd_active_isa();
  if (sn <= 1) return HostSimdIsa::kScalar;
  if (sn <= 4 && host_simd_pack_width(best) > 4) {
    if (host_simd_isa_available(HostSimdIsa::kAvx2)) return HostSimdIsa::kAvx2;
    if (host_simd_isa_available(HostSimdIsa::kPortable)) {
      return HostSimdIsa::kPortable;
    }
  }
  return best;
}

u32 host_simd_pack_width(HostSimdIsa isa) noexcept {
  switch (isa) {
    case HostSimdIsa::kAvx512: return 8;
    case HostSimdIsa::kAvx2:
    case HostSimdIsa::kPortable: return 4;
    default: return 1;
  }
}

// ---------------------------------------------------------------------------
// Plan compiler.
// ---------------------------------------------------------------------------

namespace {

/// A lowered segment must amortize its pack/unpack transposes: two full
/// rounds of super-kernels is comfortably past break-even, shorter runs
/// (e.g. the trailing ρπ+χ pair after a liveness-demoted θ) execute through
/// the fused tier instead.
constexpr usize kMinSegmentKernels = 6;

/// The kernels bake the ρ offsets as immediates; refuse to lower against a
/// rotation table that disagrees with the simulator's.
void check_rho_table() {
  static constexpr unsigned kRho[5][5] = {{0, 1, 62, 28, 27},
                                          {36, 44, 6, 55, 20},
                                          {3, 10, 43, 25, 39},
                                          {41, 45, 15, 21, 8},
                                          {18, 2, 61, 56, 14}};
  const auto& rho = keccak::rho_offsets();
  for (u32 y = 0; y < 5; ++y) {
    for (u32 x = 0; x < 5; ++x) {
      if (rho[y][x] != kRho[y][x]) {
        throw SimError("host-simd lowering: rho offset table mismatch");
      }
    }
  }
}

}  // namespace

std::shared_ptr<const HostSimdTrace> lower_host_simd(
    std::shared_ptr<const FusedTrace> fused) {
  KVX_CHECK_MSG(fused != nullptr, "lower_host_simd: null fused trace");
  check_rho_table();

  auto hs = std::make_shared<HostSimdTrace>();
  hs->fused_ = std::move(fused);
  const FusedTrace& ft = *hs->fused_;
  const u32 rb = static_cast<u32>(ft.base().reg_bytes());
  const auto& fops = ft.fused_ops();

  // Lowerable: the 64-bit step kernels over full-width rows (one register
  // row == 5·sn 64-bit lanes). The 32-bit split kernels and replay ranges
  // stay on the fused tier.
  const auto lowerable = [rb](const FusedOp& f) noexcept {
    if (f.sew != 64 || f.sn == 0 || 40u * f.sn != rb) return false;
    return f.kind == FusedOpKind::kTheta64 ||
           f.kind == FusedOpKind::kRhoPi64 || f.kind == FusedOpKind::kChi;
  };
  // θ runs in place on its dst span; ρπ/χ consume their src span.
  const auto input_loc = [](const FusedOp& f) noexcept {
    return f.kind == FusedOpKind::kTheta64 ? f.dst : f.src;
  };

  const auto emit_fused = [&hs](usize idx) {
    HostSimdItem item;
    item.fused_index = static_cast<u32>(idx);
    hs->items_.push_back(item);
  };

  usize i = 0;
  while (i < fops.size()) {
    if (!lowerable(fops[i])) {
      emit_fused(i);
      ++i;
      continue;
    }
    // Maximal run of lowerable kernels chained through one state location:
    // each kernel must read the span the previous one wrote.
    const u32 pack_loc = input_loc(fops[i]);
    u32 cur = pack_loc;
    usize j = i;
    for (; j < fops.size() && lowerable(fops[j]); ++j) {
      if (input_loc(fops[j]) != cur) break;
      cur = fops[j].dst;
    }
    const usize len = j - i;
    if (len < kMinSegmentKernels) {
      for (usize k = i; k < i + len; ++k) emit_fused(k);
      i += len;
      continue;
    }

    HostSimdItem item;
    item.kernel_first = static_cast<u32>(hs->kernels_.size());
    item.kernel_count = static_cast<u32>(len);
    item.pack_loc = pack_loc;
    for (usize k = i; k < i + len; ++k) {
      const FusedOp& f = fops[k];
      HostSimdKernel ker;
      switch (f.kind) {
        case FusedOpKind::kTheta64:
          ker.kind = HostSimdKernelKind::kTheta;
          break;
        case FusedOpKind::kRhoPi64:
          ker.kind = HostSimdKernelKind::kRhoPi;
          break;
        default:
          ker.kind = HostSimdKernelKind::kChi;
          ker.iota = (f.flags & kFusedHasIota) != 0;
          ker.iota_rc = f.iota_rc;
          break;
      }
      ker.unpack_loc = f.dst;
      hs->kernels_.push_back(ker);
      hs->lowered_records_ += f.count;
    }
    // Last-writer marks: materialize each location's final value back to
    // the regfile so inter-segment replay (and the caller's final regfile
    // comparison) sees exactly what fused replay would have written.
    // Everything a non-final kernel writes is overwritten later in the
    // segment and therefore dead — the packed registers carry it instead.
    {
      std::vector<u32> seen;
      for (u32 k = item.kernel_count; k-- > 0;) {
        HostSimdKernel& ker = hs->kernels_[item.kernel_first + k];
        bool dup = false;
        for (const u32 s : seen) dup |= (s == ker.unpack_loc);
        if (!dup) {
          ker.unpack = true;
          ++hs->unpack_marks_;
          seen.push_back(ker.unpack_loc);
        }
      }
    }
    hs->items_.push_back(item);
    ++hs->segments_;
    i += len;
  }

  if (hs->lowered_records_ == 0) {
    throw SimError(
        "host-simd lowering: no 64-bit super-kernel runs to lower");
  }
  hs->sn_ = rb / 40u;
  return hs;
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

void HostSimdTrace::execute(VectorUnit& vu, Memory& mem,
                            const CycleModel& cm) const {
  KVX_CHECK_MSG(vu.reg_bytes() == fused_->base().reg_bytes(),
                "trace compiled for a different vector configuration");
  const HostSimdIsa isa = host_simd_dispatch_isa(sn_);
  const GroupRunner run = runner_for(isa);
  const u32 pack = host_simd_pack_width(isa);
  const u32 groups = (sn_ + pack - 1) / pack;
  u8* file = vu.file_data();
  const u32 rb = static_cast<u32>(fused_->base().reg_bytes());
  const unsigned entry_sn = vu.config().effective_sn();
  const auto& fops = fused_->fused_ops();
  for (const HostSimdItem& item : items_) {
    if (item.kernel_count == 0) {
      fused_->execute_op(fops[item.fused_index], vu, mem, cm);
      continue;
    }
    for (u32 g = 0; g < groups; ++g) {
      run(file, rb, sn_, g * pack, item.pack_loc,
          kernels_.data() + item.kernel_first, item.kernel_count);
    }
  }
  if (vu.config().effective_sn() != entry_sn) vu.set_sn(entry_sn);
  dispatch_counter(isa).inc();
  packs_counter().inc(segments_ * groups);
  unpacks_counter().inc(unpack_marks_ * groups);
}

}  // namespace kvx::sim
