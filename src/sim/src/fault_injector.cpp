#include "kvx/sim/fault_injector.hpp"

#include <algorithm>
#include <vector>

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/obs/flight_recorder.hpp"

namespace kvx::sim {

namespace {

constexpr u32 bit(FaultKind k) noexcept { return static_cast<u32>(k); }

/// Map a 64-bit hash to a uniform double in [0, 1).
double to_unit(u64 h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  if (plan_.rate < 0.0 || plan_.rate > 1.0) {
    throw Error(strfmt("fault rate %g outside [0, 1]", plan_.rate));
  }
  instruction_fault_armed_ = plan_.at_instruction != 0;
}

u64 FaultInjector::mix(u64 stream) const noexcept {
  // A fresh SplitMix64 per (seed, stream) keeps every decision a pure
  // function of the plan and the draw index — replayable regardless of
  // which thread happens to make the draw.
  return SplitMix64(plan_.seed ^ (stream * 0x9E3779B97F4A7C15ull)).next();
}

std::optional<FaultKind> FaultInjector::draw(FaultSite site) {
  std::lock_guard lock(mutex_);
  const u64 n = ++draws_;
  stats_.draws = n;

  bool fault = plan_.at_draw != 0 && n == plan_.at_draw;
  if (!fault && plan_.rate > 0.0) {
    fault = to_unit(mix(2 * n)) < plan_.rate;
  }
  if (!fault) return std::nullopt;

  // Kinds applicable to this site, restricted by the plan's mask.
  std::vector<FaultKind> pool;
  if (site == FaultSite::kTraceCompile) {
    if (plan_.kinds & bit(FaultKind::kCompileFail)) {
      pool.push_back(FaultKind::kCompileFail);
    }
  } else {
    for (FaultKind k : {FaultKind::kRegfileBitFlip, FaultKind::kMemoryBitFlip,
                        FaultKind::kSimFault}) {
      if (plan_.kinds & bit(k)) pool.push_back(k);
    }
  }
  if (pool.empty()) return std::nullopt;
  const FaultKind k = pool[mix(2 * n + 1) % pool.size()];
  stats_.injected += 1;
  obs::FlightRecorder::global().record(obs::FlightEventType::kFaultInjected,
                                       static_cast<u16>(bit(k)),
                                       static_cast<u64>(site), n);
  return k;
}

void FaultInjector::fail_compile(const std::string& what) {
  {
    std::lock_guard lock(mutex_);
    stats_.compile_fails += 1;
  }
  throw SimError(strfmt("injected fault: %s compilation rejected",
                        what.c_str()));
}

void FaultInjector::throw_sim_fault(const std::string& backend) {
  {
    std::lock_guard lock(mutex_);
    stats_.sim_faults += 1;
  }
  throw SimError(strfmt("injected fault: synthetic fault on %s dispatch",
                        backend.c_str()));
}

void FaultInjector::corrupt(FaultKind kind, VectorUnit& vu, Memory& mem,
                            u32 state_base, usize state_len,
                            const std::string& backend) {
  u64 h;
  {
    std::lock_guard lock(mutex_);
    stats_.bit_flips += 1;
    h = mix(0xB17F11Bull ^ ++draws_);
  }
  const unsigned bit_idx = static_cast<unsigned>(h & 7);
  if (kind == FaultKind::kRegfileBitFlip) {
    const usize file_bytes = usize{32} * vu.reg_bytes();
    const usize off = (h >> 3) % file_bytes;
    vu.file_data()[off] ^= static_cast<u8>(1u << bit_idx);
    throw SimError(strfmt(
        "injected fault: regfile bit flip at byte %zu bit %u on %s dispatch",
        off, bit_idx, backend.c_str()));
  }
  const usize len = std::max<usize>(state_len, 1);
  const u32 addr = state_base + static_cast<u32>((h >> 3) % len);
  mem.write8(addr, static_cast<u8>(mem.read8(addr) ^ (1u << bit_idx)));
  throw SimError(strfmt(
      "injected fault: memory bit flip at 0x%x bit %u on %s dispatch", addr,
      bit_idx, backend.c_str()));
}

bool FaultInjector::fire_instruction_fault(u64 executed) {
  std::lock_guard lock(mutex_);
  if (!instruction_fault_armed_ || executed != plan_.at_instruction) {
    return false;
  }
  instruction_fault_armed_ = false;  // one-shot: the demoted retry runs clean
  stats_.sim_faults += 1;
  obs::FlightRecorder::global().record(
      obs::FlightEventType::kFaultInjected,
      static_cast<u16>(bit(FaultKind::kSimFault)),
      static_cast<u64>(FaultSite::kExecute), executed);
  return true;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  usize pos = 0;
  while (pos < spec.size()) {
    const usize comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const usize eq = item.find('=');
    if (eq == std::string::npos) {
      throw Error(strfmt("fault spec item '%s' is not key=value",
                         item.c_str()));
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        plan.seed = std::stoull(value);
      } else if (key == "rate") {
        plan.rate = std::stod(value);
      } else if (key == "at") {
        plan.at_draw = std::stoull(value);
      } else if (key == "at-instruction") {
        plan.at_instruction = std::stoull(value);
      } else if (key == "kinds") {
        u32 kinds = 0;
        usize kpos = 0;
        while (kpos <= value.size()) {
          const usize plus = std::min(value.find('+', kpos), value.size());
          const std::string k = value.substr(kpos, plus - kpos);
          kpos = plus + 1;
          if (k == "regflip") kinds |= static_cast<u32>(FaultKind::kRegfileBitFlip);
          else if (k == "memflip") kinds |= static_cast<u32>(FaultKind::kMemoryBitFlip);
          else if (k == "sim") kinds |= static_cast<u32>(FaultKind::kSimFault);
          else if (k == "compile") kinds |= static_cast<u32>(FaultKind::kCompileFail);
          else if (k == "all") kinds |= kAllFaultKinds;
          else throw Error(strfmt("unknown fault kind '%s'", k.c_str()));
        }
        plan.kinds = kinds;
      } else {
        throw Error(strfmt("unknown fault spec key '%s'", key.c_str()));
      }
    } catch (const std::invalid_argument&) {
      throw Error(strfmt("bad value '%s' for fault spec key '%s'",
                         value.c_str(), key.c_str()));
    } catch (const std::out_of_range&) {
      throw Error(strfmt("value '%s' out of range for fault spec key '%s'",
                         value.c_str(), key.c_str()));
    }
  }
  if (plan.rate < 0.0 || plan.rate > 1.0) {
    throw Error(strfmt("fault rate %g outside [0, 1]", plan.rate));
  }
  return plan;
}

}  // namespace kvx::sim
