// Fused-trace execution backend: an optimizer pass over a compiled trace.
//
// The compiled trace (compiled_trace.hpp) already reduced the program to a
// flat array of pre-decoded records, but still replays them one record at a
// time — every θ parity round-trips through the register file, ρ and π
// scatter row by row, and χ takes thirteen records of slides and ALU ops.
// The fusion pass pattern-matches the recurring record sequences the Keccak
// program builders emit and collapses each into ONE step-level super-kernel:
//
//   pattern (records)                        super-kernel
//   ------------------------------------     -----------------------------
//   θ  4×xor + 2×slide + rotup + xor + 5×apply   kTheta64  (13 records)
//   θ  4×xor + vthetac + 5×apply                 kTheta64  (10 records)
//   θ  dual-half parity/slides/rot32 (32-bit)    kTheta32  (26 records)
//   ρπ 5×v64rho-row + 5×vpi-row                  kRhoPi64  (10 records)
//   ρπ 5×vrhopi-row                              kRhoPi64  (5 records)
//   ρπ 5×5×rho32-row + 2×5×vpi-row (32-bit)      kRhoPi32  (20 records)
//   χ  2×5 slides + not/and/xor (grouped)        kChi      (13 records)
//   χ  row-wise 25-record form (LMUL=1)          kChi      (25 records)
//   χ  5×vchi-row                                kChi      (5 records)
//   ι  merged into the preceding χ kernel        (+1 record)
//
// Super-kernels operate on whole regfile rows (5·SN elements) with host
// SIMD (GCC/Clang vector extensions + __builtin_shufflevector, pure-scalar
// fallback selected at compile time), and keep θ parity / χ slide scratch
// in host registers instead of round-tripping through the register file.
//
// Eliding those scratch writes is only legal where the recorded values are
// dead: a backward byte-granularity liveness pass over the recorded
// reads/writes (all bytes live at end-of-trace — callers compare the final
// register file) demotes any group whose scratch is live-out back to
// per-record replay. Unrecognized record sequences replay unchanged, so the
// backend is correct on arbitrary programs, not just the paper's.
//
// Cycle accounting is untouched: all timing passes through to the recorded
// interpreter totals, bit-identical by construction.
#pragma once

#include "kvx/sim/compiled_trace.hpp"

namespace kvx::sim {

enum class FusedOpKind : u8 {
  kReplayRange,  ///< per-record fallback over [first, first+count)
  kTheta64,      ///< θ over five 64-bit planes
  kTheta32,      ///< θ over the split lo/hi 32-bit halves
  kRhoPi64,      ///< ρ rotate + π scatter, 64-bit planes
  kRhoPi32,      ///< ρ rotate + π scatter, lo/hi 32-bit halves
  kChi,          ///< χ row computation (either element width)
};

/// FusedOp::flags bit: the following ι record was merged into this χ kernel
/// (round constant XORed into lane x=0 of output row 0 while storing).
inline constexpr u8 kFusedHasIota = 1;

/// One fused super-kernel (or replay range). Offsets are regfile byte
/// offsets like TraceOp's; `src2`/`dst2` are the high-half planes of the
/// 32-bit kernels.
struct FusedOp {
  FusedOpKind kind{};
  u8 flags = 0;
  u8 sn = 0;     ///< Keccak states per row
  u8 sew = 64;   ///< element width in bits
  u32 first = 0; ///< first base-trace record this op covers
  u32 count = 0; ///< base-trace records covered
  u32 src = 0;
  u32 src2 = 0;
  u32 dst = 0;
  u32 dst2 = 0;
  u64 iota_rc = 0;
};

/// An immutable fused trace. Shares the base compiled trace (one recording
/// serves both backends); thread-safe like CompiledTrace.
class FusedTrace {
 public:
  /// Replay with super-kernels; same contract as CompiledTrace::execute.
  void execute(VectorUnit& vu, Memory& mem, const CycleModel& cm) const;

  /// Execute ONE fused op (super-kernel or replay range) — the host-SIMD
  /// backend's fallback path for ops it does not lower. `f` must come from
  /// this trace's fused_ops(). Unlike execute(), the caller is responsible
  /// for restoring SN if a replayed record changed it.
  void execute_op(const FusedOp& f, VectorUnit& vu, Memory& mem,
                  const CycleModel& cm) const;

  // --- recorded timing (passes through to the base trace) ---
  [[nodiscard]] u64 total_cycles() const noexcept {
    return base_->total_cycles();
  }
  [[nodiscard]] u64 instructions() const noexcept {
    return base_->instructions();
  }
  [[nodiscard]] const RunStats& run_stats() const noexcept {
    return base_->run_stats();
  }
  [[nodiscard]] const std::vector<Marker>& markers() const noexcept {
    return base_->markers();
  }
  [[nodiscard]] u64 cycles_between(u32 from, u32 to) const {
    return base_->cycles_between(from, to);
  }
  [[nodiscard]] const std::array<u32, 32>& final_scalar_regs() const noexcept {
    return base_->final_scalar_regs();
  }
  [[nodiscard]] const CompiledTrace& base() const noexcept { return *base_; }
  /// Shared ownership of the base trace — the fused backend's demotion
  /// target (fused → trace) without a second trace-cache round trip.
  [[nodiscard]] const std::shared_ptr<const CompiledTrace>& shared_base()
      const noexcept {
    return base_;
  }

  // --- fusion statistics ---
  /// Fraction of base-trace records covered by super-kernels, in [0, 1].
  [[nodiscard]] double coverage() const noexcept {
    const usize total = base_->op_count();
    return total == 0 ? 0.0
                      : static_cast<double>(fused_records_) /
                            static_cast<double>(total);
  }
  [[nodiscard]] usize super_kernel_count() const noexcept {
    return super_kernels_;
  }
  [[nodiscard]] usize fused_record_count() const noexcept {
    return fused_records_;
  }
  [[nodiscard]] const std::vector<FusedOp>& fused_ops() const noexcept {
    return fused_;
  }
  /// Approximate heap bytes of this artifact alone (the shared base trace
  /// is accounted by its own cache entry).
  [[nodiscard]] usize memory_bytes() const noexcept {
    return fused_.size() * sizeof(FusedOp);
  }

 private:
  friend std::shared_ptr<const FusedTrace> fuse_trace(
      std::shared_ptr<const CompiledTrace> base);

  std::shared_ptr<const CompiledTrace> base_;
  std::vector<FusedOp> fused_;
  usize fused_records_ = 0;
  usize super_kernels_ = 0;
};

/// Run the fusion pass over `base`. Never fails: a trace with no
/// recognizable patterns becomes one big replay range.
[[nodiscard]] std::shared_ptr<const FusedTrace> fuse_trace(
    std::shared_ptr<const CompiledTrace> base);

/// True when the super-kernels were compiled with the host-SIMD lowering
/// (GCC/Clang vector extensions), false for the pure-scalar fallback.
[[nodiscard]] bool fusion_host_simd() noexcept;

}  // namespace kvx::sim
