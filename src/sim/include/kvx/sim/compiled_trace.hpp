// Compiled-trace execution backend.
//
// The generated Keccak programs have data-independent control flow: the
// round loop runs a fixed trip count and every operand that is not Keccak
// state data (addresses, vtype/vl, ι round-constant indices, SN) is a
// compile-time constant of the program. The trace compiler exploits this:
// it records ONE interpreter run, pre-decoding every executed instruction
// into a type-specialized kernel record — opcode-specialized kind, resolved
// SEW and `lmul_cnt` row expansion (one record per hardware row), resolved
// ρ/π rotation-table rows, raw byte offsets into the contiguous vector
// register file, and resolved data-memory addresses. Replaying the flat
// kernel array reproduces the run's architectural effects (register file,
// data memory) exactly, with no instruction fetch, no per-element SEW
// re-dispatch and no scalar bookkeeping on the host.
//
// Cycle accounting is NOT re-derived at replay time: the recording run is
// charged by the interpreter under the processor's CycleModel, and the
// resulting totals, per-opcode statistics and marker stream are stored in
// the trace. Reported cycles are therefore bit-identical to the
// interpreter's by construction; the cycle model stays the sole timing
// oracle.
//
// Safety: compile_trace() runs the recorder twice with the caller-named
// verify region (the staged Keccak states) filled with different
// pseudo-random data. If the two recordings disagree anywhere — branch
// path, baked operand, resolved address, cycle count — the program is not
// trace-compilable (it computes on state data outside the vector unit) and
// compilation throws SimError. Callers fall back to the interpreter.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "kvx/sim/exec_backend.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::sim {

class FusedTrace;     // trace_fusion.hpp
class HostSimdTrace;  // host_simd.hpp
class JitTrace;       // jit/jit_trace.hpp

/// Kernel kinds a recorded instruction is specialized into. Custom
/// instructions with an `lmul_cnt` row sequence are flattened to one record
/// per row at compile time.
enum class TraceOpKind : u8 {
  kBinVV,         ///< d[i] = a[i] op b[i]           (op in `bin`)
  kBinVS,         ///< d[i] = a[i] op wide_imm       (scalar/imm pre-resolved)
  kSplat,         ///< d[i] = wide_imm               (vmv.v.x / vmv.v.i)
  kCopyReg,       ///< memmove of n bytes            (vmv.v.v)
  kLoadUnit,      ///< contiguous dmem -> regfile copy
  kStoreUnit,     ///< contiguous regfile -> dmem copy
  kLoadGather,    ///< per-element resolved addresses (strided/indexed)
  kStoreScatter,  ///< per-element resolved addresses
  kScalarStore,   ///< sb/sh/sw with resolved address and value
  kSlideMod5,     ///< vslideupm/vslidedownm, one row
  kRotup64,       ///< vrotup.vi, one row
  kRho64Row,      ///< v64rho.vi, one row with its rotation-table row
  kRho32Row,      ///< v32l/hrho.vv, one row (hi/lo pair sources)
  kRot32Pair,     ///< v32l/hrotup.vv
  kPiRow,         ///< vpi.vi column-mode scatter, one source row
  kRhoPiRow,      ///< fused vrhopi.vi, one source row
  kIota,          ///< viota.vx with the round constant pre-resolved
  kThetaCRow,     ///< fused vthetac.vv, one row
  kChiRow,        ///< fused vchi.vv, one row
  kGeneric,       ///< interpreter fallback (masked/rare ops), pre-resolved
};

/// Binary ALU operator of kBinVV/kBinVS.
enum class TraceBinOp : u8 { kXor, kAnd, kOr, kAdd, kSub, kSll, kSrl };

/// One pre-decoded kernel record, packed to half a cache line so the replay
/// loop streams two records per 64-byte line. `d`/`a`/`b` are byte offsets
/// into the vector register file (register groups are contiguous there, so
/// an LMUL-expanded operand is a single flat span).
///
/// `aux` is overloaded by kind:
///  * kLoadUnit/kStoreUnit/kScalarStore — resolved data-memory address;
///  * kLoadGather/kStoreScatter         — first index into gather_elems_;
///  * kGeneric                          — index into generic_ops_;
///  * kBinVS/kSplat/kIota               — index into the wide_imms_ pool
///    (these operands can be full 64-bit values; everything else fits the
///    32-bit `imm`).
struct TraceOp {
  TraceOpKind kind{};
  TraceBinOp bin{};
  u8 sew = 64;        ///< element width in bits (32 or 64)
  u8 flag = 0;        ///< kRho32Row/kRot32Pair: 1 = high half
  u8 table_row = 0;   ///< ρ/π rotation-table row
  u8 sn = 0;          ///< Keccak states covered by a custom-op record
  u16 reserved = 0;
  u32 d = 0;          ///< destination byte offset (regfile; kScalarStore: unused)
  u32 a = 0;          ///< first source byte offset
  u32 b = 0;          ///< second source byte offset
  u32 n = 0;          ///< element count (copies/unit mem: byte count)
  u32 aux = 0;        ///< overloaded per kind, see above
  i32 imm = 0;        ///< slide offset / rotation amount / scalar-store value

  friend bool operator==(const TraceOp&, const TraceOp&) noexcept = default;
};
static_assert(sizeof(TraceOp) == 32, "TraceOp must stay half a cache line");

/// Resolved element of a gather/scatter memory record.
struct TraceMemElem {
  u32 addr = 0;     ///< data-memory address
  u32 reg_off = 0;  ///< register-file byte offset

  friend bool operator==(const TraceMemElem&, const TraceMemElem&) noexcept =
      default;
};

/// Interpreter-fallback record: the decoded instruction plus every piece of
/// processor state its execution depends on, resolved at record time.
struct TraceGenericOp {
  isa::Instruction inst{};
  isa::VType vtype{};
  usize vl = 0;
  u32 rs1_value = 0;  ///< scalar x[rs1] at execution time
  u32 rs2_value = 0;  ///< scalar x[rs2] at execution time
  u32 sn = 0;         ///< SN in effect at execution time

  friend bool operator==(const TraceGenericOp&, const TraceGenericOp&) noexcept =
      default;
};

/// Aggregate compile/cache counters (see TraceCache).
struct TraceCacheStats {
  u64 hits = 0;         ///< cache lookups served without compiling
  u64 compiles = 0;     ///< traces compiled (cache misses)
  u64 failures = 0;     ///< compilations rejected (data-dependent program)
  u64 compile_ns = 0;   ///< host time spent compiling (incl. failures)
  u64 fusions = 0;      ///< fused traces built (fused-cache misses)
  u64 fuse_ns = 0;      ///< host time spent in the fusion pass
  u64 lowerings = 0;    ///< host-SIMD plans built (host-simd-cache misses)
  u64 lower_ns = 0;     ///< host time spent lowering to host SIMD
  u64 jit_compiles = 0; ///< native JIT emissions (jit-cache misses)
  u64 jit_ns = 0;       ///< host time spent emitting native code
  // Occupancy snapshot (also exported as the kvx_trace_cache_entries /
  // kvx_trace_cache_bytes gauges): live artifacts across all tiers and the
  // approximate bytes they hold — including the page-rounded W^X code
  // buffers of cached JIT traces.
  u64 entries = 0;
  u64 resident_bytes = 0;
};

/// An immutable compiled trace. Thread-safe to share: execute() only
/// mutates the VectorUnit/Memory it is handed.
class CompiledTrace {
 public:
  /// Replay the trace against `vu`'s register file and `mem`. The caller is
  /// responsible for staging input data exactly as it would for an
  /// interpreter run (the trace reads the same addresses the program would).
  void execute(VectorUnit& vu, Memory& mem, const CycleModel& cm) const;

  /// Replay ONE record (the fused backend's per-record fallback path).
  /// `file` must be vu.file_data().
  void execute_op(const TraceOp& op, VectorUnit& vu, Memory& mem,
                  const CycleModel& cm, u8* file) const;

  // --- recorded timing (bit-identical to the interpreter run) ---
  [[nodiscard]] u64 total_cycles() const noexcept { return stats_.cycles; }
  [[nodiscard]] u64 instructions() const noexcept {
    return stats_.instructions;
  }
  [[nodiscard]] const RunStats& run_stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<Marker>& markers() const noexcept {
    return markers_;
  }
  /// Same semantics as SimdProcessor::cycles_between on the recorded markers.
  [[nodiscard]] u64 cycles_between(u32 from, u32 to) const;
  /// Final scalar register file of the recorded run (kvx-run reporting).
  [[nodiscard]] const std::array<u32, 32>& final_scalar_regs() const noexcept {
    return final_xregs_;
  }

  [[nodiscard]] usize op_count() const noexcept { return ops_.size(); }
  [[nodiscard]] usize generic_op_count() const noexcept {
    return generic_ops_.size();
  }
  /// Approximate heap bytes held by this artifact (TraceCache occupancy).
  [[nodiscard]] usize memory_bytes() const noexcept {
    return ops_.size() * sizeof(TraceOp) +
           gather_elems_.size() * sizeof(TraceMemElem) +
           generic_ops_.size() * sizeof(TraceGenericOp) +
           wide_imms_.size() * sizeof(u64) + markers_.size() * sizeof(Marker);
  }

  // --- raw record access (the fusion pass) ---
  [[nodiscard]] const std::vector<TraceOp>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] usize reg_bytes() const noexcept { return reg_bytes_; }
  /// Resolved 64-bit operand of a kBinVS/kSplat/kIota record.
  [[nodiscard]] u64 wide_imm(const TraceOp& op) const noexcept {
    return wide_imms_[op.aux];
  }

 private:
  friend class TraceCompiler;

  std::vector<TraceOp> ops_;
  std::vector<TraceMemElem> gather_elems_;
  std::vector<TraceGenericOp> generic_ops_;
  std::vector<u64> wide_imms_;  ///< 64-bit operand pool (aux-indexed)
  RunStats stats_;
  std::vector<Marker> markers_;
  std::array<u32, 32> final_xregs_{};
  usize reg_bytes_ = 0;  ///< register stride the offsets were compiled for
};

struct TraceCompileOptions {
  /// Data-memory region whose contents vary between runs (the staged Keccak
  /// states). It is filled with different pseudo-random bytes for the two
  /// recording runs of the data-independence check. verify_len == 0 skips
  /// the second run (callers that cannot name such a region).
  u32 verify_base = 0;
  usize verify_len = 0;
};

/// Record `program` under `cfg` and compile it into a trace. Throws
/// kvx::SimError if the recording runs disagree (data-dependent program) or
/// the program itself faults.
[[nodiscard]] std::shared_ptr<const CompiledTrace> compile_trace(
    const assembler::Program& program, const ProcessorConfig& cfg,
    const TraceCompileOptions& opts = {});

/// Process-wide trace cache keyed by (program digest, vector configuration,
/// cycle model, backend). BatchHashEngine shards share one KeccakProgram, so
/// the first shard to permute compiles the trace and the rest hit the
/// cache. Fused compilations live in a separate keyed map: a shard
/// requesting the plain trace backend can never observe a fused compilation
/// and vice versa, even for the same program.
class TraceCache {
 public:
  static TraceCache& global();

  /// Cached compile_trace(). Throws like compile_trace on failure (failures
  /// are also cached negatively so each program is rejected only once).
  [[nodiscard]] std::shared_ptr<const CompiledTrace> get_or_compile(
      const assembler::Program& program, const ProcessorConfig& cfg,
      const TraceCompileOptions& opts = {});

  /// Cached fuse_trace(compile_trace()). The underlying compiled trace is
  /// shared with get_or_compile (one recording per program), but the fused
  /// artifact is keyed separately per the backend. Defined in
  /// trace_fusion.cpp.
  [[nodiscard]] std::shared_ptr<const FusedTrace> get_or_compile_fused(
      const assembler::Program& program, const ProcessorConfig& cfg,
      const TraceCompileOptions& opts = {});

  /// Cached lower_host_simd(fuse_trace(compile_trace())). Shares the fused
  /// artifact (and through it the recording) with the lower tiers; the
  /// host-SIMD plan is keyed under its own salt, and lowering rejections
  /// (nothing lowerable, e.g. 32-bit split arches) are cached negatively
  /// like compile rejections. Throws kvx::SimError on rejection — callers
  /// demote to the fused tier.
  [[nodiscard]] std::shared_ptr<const HostSimdTrace> get_or_compile_host_simd(
      const assembler::Program& program, const ProcessorConfig& cfg,
      const TraceCompileOptions& opts = {});

  /// Cached lower_jit(lower_host_simd(...)): native code emitted for the
  /// ISA the host-SIMD dispatcher resolves for this SN right now (the
  /// resolved ISA is part of the cache key, so an AVX-512 emission and an
  /// AVX2 emission of one program coexist). Shares the host-SIMD plan (and
  /// through it the whole lower chain). Emission failures are NOT cached
  /// negatively — mmap/mprotect refusals are transient, unlike compile or
  /// lowering rejections. Throws kvx::SimError on failure — callers demote
  /// to the host-SIMD tier.
  [[nodiscard]] std::shared_ptr<const JitTrace> get_or_compile_jit(
      const assembler::Program& program, const ProcessorConfig& cfg,
      const TraceCompileOptions& opts = {});

  [[nodiscard]] TraceCacheStats stats() const;
  /// Drop all entries and zero the counters (tests).
  void clear();

 private:
  /// Shared positive/negative-cache lookup; mutex_ must be held.
  [[nodiscard]] std::shared_ptr<const CompiledTrace> lookup_or_compile_locked(
      u64 key, const assembler::Program& program, const ProcessorConfig& cfg,
      const TraceCompileOptions& opts);
  /// Fused-tier lookup over lookup_or_compile_locked; mutex_ must be held.
  [[nodiscard]] std::shared_ptr<const FusedTrace> lookup_or_fuse_locked(
      u64 base_key, const assembler::Program& program,
      const ProcessorConfig& cfg, const TraceCompileOptions& opts);
  /// Host-SIMD-tier lookup over lookup_or_fuse_locked; mutex_ must be held.
  [[nodiscard]] std::shared_ptr<const HostSimdTrace> lookup_or_lower_locked(
      u64 base_key, const assembler::Program& program,
      const ProcessorConfig& cfg, const TraceCompileOptions& opts);
  /// Recompute the occupancy snapshot + gauges; mutex_ must be held.
  void refresh_occupancy_locked();

  mutable std::mutex mutex_;
  std::unordered_map<u64, std::shared_ptr<const CompiledTrace>> entries_;
  std::unordered_map<u64, std::shared_ptr<const FusedTrace>> fused_entries_;
  std::unordered_map<u64, std::shared_ptr<const HostSimdTrace>>
      host_simd_entries_;
  std::unordered_map<u64, std::shared_ptr<const JitTrace>> jit_entries_;
  std::unordered_map<u64, std::string> failed_;  ///< key -> error message
  TraceCacheStats stats_;
  u64 resident_bytes_ = 0;  ///< sum of memory_bytes() over all live entries
};

}  // namespace kvx::sim
