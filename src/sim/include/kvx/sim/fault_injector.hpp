// Deterministic fault injection for the simulated accelerator.
//
// Real RVV silicon exhibits transient faults and per-configuration quirks
// ("Test-driving RISC-V Vector hardware for HPC"); a simulator-backed stack
// should be able to inject exactly such faults and prove the layers above
// degrade gracefully instead of poisoning whole batches. A FaultInjector is
// a seeded decision stream shared by every execution site of one
// VectorKeccakConfig: each trace compilation and each accelerator dispatch
// asks it once whether (and how) to fault.
//
// Faults are *detected* corruption: a bit flip lands in the vector register
// file or the staged-state memory region AND raises SimError, the way a
// parity/ECC check would report it. The recovery contract is that every
// dispatch restages its inputs, so a demoted retry (fused → trace →
// interpreter, see VectorKeccak::permute) computes the correct digest and
// an exhausted chain surfaces as a per-job error in the engine — never as a
// silently wrong digest.
//
// Determinism: all decisions derive from SplitMix64 over (seed, draw index)
// — the same plan replays the same decision sequence. Under a multithreaded
// engine the *assignment* of draws to dispatches depends on scheduling, but
// the decision stream itself (and therefore the injected-fault fraction)
// does not. With no injector configured, nothing in the execution paths
// changes: the pinned paper cycle counts reproduce bit-identically.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "kvx/common/rng.hpp"
#include "kvx/sim/memory.hpp"
#include "kvx/sim/vector_unit.hpp"

namespace kvx::sim {

/// What an injected fault does. Values are bitmask bits for FaultPlan::kinds.
enum class FaultKind : u32 {
  kRegfileBitFlip = 1u << 0,  ///< flip one vector-regfile bit, raise SimError
  kMemoryBitFlip = 1u << 1,   ///< flip one staged-state dmem bit, raise SimError
  kSimFault = 1u << 2,        ///< synthetic SimError before the dispatch runs
  kCompileFail = 1u << 3,     ///< reject a trace/fusion compilation
};

inline constexpr u32 kAllFaultKinds =
    static_cast<u32>(FaultKind::kRegfileBitFlip) |
    static_cast<u32>(FaultKind::kMemoryBitFlip) |
    static_cast<u32>(FaultKind::kSimFault) |
    static_cast<u32>(FaultKind::kCompileFail);

/// Where a fault decision is being drawn.
enum class FaultSite : u8 {
  kTraceCompile,  ///< trace/fusion compilation (kCompileFail only)
  kExecute,       ///< one accelerator dispatch (flip/synthetic kinds)
};

/// Injection plan. `rate` arms probabilistic injection; `at_draw` and
/// `at_instruction` arm one-shot site-addressed faults (both may combine
/// with `rate`).
struct FaultPlan {
  u64 seed = 1;
  /// Per-decision fault probability in [0, 1].
  double rate = 0.0;
  /// One-shot: fault exactly the Nth decision draw (1-based; compile and
  /// execute draws share one counter). 0 = disabled.
  u64 at_draw = 0;
  /// One-shot: throw a synthetic SimError after the Nth executed
  /// instruction of an interpreter-backend run (1-based). 0 = disabled.
  u64 at_instruction = 0;
  /// Bitmask of FaultKind values eligible for injection.
  u32 kinds = kAllFaultKinds;
};

/// Counters of what was actually injected (exact; guarded internally).
struct FaultInjectorStats {
  u64 draws = 0;          ///< decisions requested
  u64 injected = 0;       ///< decisions that faulted (excl. at_instruction)
  u64 bit_flips = 0;      ///< regfile/memory flips applied
  u64 sim_faults = 0;     ///< synthetic SimErrors thrown (incl. at_instruction)
  u64 compile_fails = 0;  ///< compilations rejected
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Draw the next decision for `site`. Returns the fault kind to inject,
  /// or nullopt for a clean pass (also when the plan's `kinds` mask has no
  /// kind applicable to the site). Thread-safe.
  [[nodiscard]] std::optional<FaultKind> draw(FaultSite site);

  /// Throw the SimError for a compile-site fault (after draw() returned
  /// kCompileFail). `what` names the rejected artifact ("trace"/"fused").
  [[noreturn]] void fail_compile(const std::string& what);

  /// Throw the synthetic-fault SimError for an execute-site kSimFault.
  [[noreturn]] void throw_sim_fault(const std::string& backend);

  /// Apply a detected-corruption fault: flip one pseudo-random bit in the
  /// vector register file (kRegfileBitFlip) or in dmem's staged-state
  /// region [state_base, state_base + state_len) (kMemoryBitFlip), then
  /// throw SimError describing the flip.
  [[noreturn]] void corrupt(FaultKind kind, VectorUnit& vu, Memory& mem,
                            u32 state_base, usize state_len,
                            const std::string& backend);

  /// One-shot instruction-index fault: true exactly once, when the
  /// interpreter's executed-instruction count reaches plan().at_instruction.
  [[nodiscard]] bool fire_instruction_fault(u64 executed);

  [[nodiscard]] FaultInjectorStats stats() const;

 private:
  [[nodiscard]] u64 mix(u64 stream) const noexcept;

  FaultPlan plan_;
  mutable std::mutex mutex_;
  u64 draws_ = 0;
  bool instruction_fault_armed_ = false;
  FaultInjectorStats stats_;
};

/// Parse a CLI fault spec: comma-separated `key=value` pairs with keys
/// `seed`, `rate`, `at` (at_draw), `at-instruction`, and `kinds` — the
/// latter a `+`-separated subset of {regflip, memflip, sim, compile, all}.
/// Example: "seed=7,rate=1e-3,kinds=regflip+sim". Throws kvx::Error on a
/// malformed spec.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace kvx::sim
