// The complete SIMD processor (paper Figure 3): Ibex-like scalar core,
// instruction memory, data memory, and the vector processing unit.
//
// The processor predecodes the loaded program once (the simulator analogue
// of instruction fetch+decode), runs until ebreak/ecall or a watchdog
// limit, counts cycles under the CycleModel, and records cycle markers the
// program emits through the kMarker CSR so benchmarks can measure exact
// regions (e.g. one Keccak round, or the whole permutation).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kvx/asm/assembler.hpp"
#include "kvx/sim/scalar_core.hpp"
#include "kvx/sim/vector_unit.hpp"

namespace kvx::sim {

/// Processor-level configuration.
struct ProcessorConfig {
  VectorConfig vector{};
  usize dmem_bytes = 1 << 20;   ///< data memory size
  u64 max_cycles = 500'000'000; ///< watchdog
  CycleModel cycle_model{};
};

/// A (marker id, cycle) pair recorded by a `csrw 0x7C0, reg` in the program.
struct Marker {
  u32 id;
  u64 cycle;
};

/// Aggregate run statistics.
struct RunStats {
  u64 cycles = 0;
  u64 instructions = 0;
  u64 scalar_instructions = 0;
  u64 vector_instructions = 0;
  u64 vector_cycles = 0;  ///< cycles attributed to vector instructions
  std::map<std::string, u64> opcode_counts;  ///< mnemonic -> executions
  std::map<std::string, u64> opcode_cycles;  ///< mnemonic -> cycles spent

  /// Top-n opcodes by attributed cycles, formatted one per line.
  [[nodiscard]] std::string cycle_profile(usize top_n = 10) const;

  /// Comma-separated per-opcode table (mnemonic,count,cycles) for offline
  /// analysis.
  [[nodiscard]] std::string to_csv() const;
};

class SimdProcessor {
 public:
  explicit SimdProcessor(const ProcessorConfig& cfg);

  // --- program loading ---
  /// Load an assembled program: text into instruction memory, data section
  /// into data memory at its base, pc to text_base.
  void load_program(const assembler::Program& program);

  /// Replace only instruction memory (raw words at address 0).
  void load_text(std::span<const u32> words, u32 base = 0);

  // --- state access ---
  [[nodiscard]] Memory& dmem() noexcept { return dmem_; }
  [[nodiscard]] const Memory& dmem() const noexcept { return dmem_; }
  [[nodiscard]] ScalarCore& scalar() noexcept { return scalar_; }
  [[nodiscard]] const ScalarCore& scalar() const noexcept { return scalar_; }
  [[nodiscard]] VectorUnit& vector() noexcept { return vector_; }
  [[nodiscard]] const VectorUnit& vector() const noexcept { return vector_; }
  [[nodiscard]] const ProcessorConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] u64 cycles() const noexcept { return cycles_; }
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<Marker>& markers() const noexcept {
    return markers_;
  }

  /// Cycle distance between the first marker with id `from` and the first
  /// with id `to`. Throws SimError if either is missing.
  [[nodiscard]] u64 cycles_between(u32 from, u32 to) const;

  /// Cycle deltas between consecutive markers of the same id (for per-round
  /// measurements: mark once per loop iteration).
  [[nodiscard]] std::vector<u64> marker_deltas(u32 id) const;

  // --- execution ---
  /// Run until ebreak/ecall. Returns the total cycle count of the run.
  u64 run();

  /// Execute a single instruction; returns false once halted.
  bool step();

  [[nodiscard]] bool halted() const noexcept { return halted_; }

  /// Reset cycles, stats, markers, pc and scalar registers (memories and
  /// the vector register file are preserved so state can be staged).
  void reset_run_state();

  /// Optional per-instruction trace hook (pc, decoded instruction).
  using TraceHook = std::function<void(u32 pc, const isa::Instruction&)>;
  void set_trace(TraceHook hook) { trace_ = std::move(hook); }

 private:
  const isa::Instruction& fetch(u32 pc);

  ProcessorConfig cfg_;
  Memory dmem_;
  ScalarCore scalar_;
  VectorUnit vector_;
  std::vector<isa::Instruction> itext_;  ///< predecoded instruction memory
  u32 text_base_ = 0;
  u64 cycles_ = 0;
  u64 vpu_busy_until_ = 0;  ///< decoupled-VPU mode: when the VPU drains
  bool halted_ = false;
  RunStats stats_;
  std::vector<Marker> markers_;
  TraceHook trace_;
};

}  // namespace kvx::sim
