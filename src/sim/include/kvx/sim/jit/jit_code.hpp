// x86-64 machine-code emission for the JIT backend: a W^X code buffer, a
// minimal fixed-allowlist encoder, and the matching length-decoder.
//
// The encoder deliberately supports ONLY the instruction forms the trace
// emitter needs (see jit_trace.cpp): a handful of GPR forms for the
// prologue/epilogue and shim calls, VEX-encoded 256-bit AVX2 forms, and
// EVEX-encoded 512-bit AVX-512F forms. Memory operands are restricted to
// [rsp + disp32] (the packed-state buffers live in the frame) and
// [rip + disp32] (the trailing round-constant literal pool); EVEX memory
// forms always use disp32, never the compressed disp8·N form, so every
// emitted byte sequence has exactly one shape per mnemonic.
//
// jit_decode_one() is the test oracle for that discipline: it walks the
// same allowlist and refuses anything outside it, so the disassembly
// self-check in test_jit can tile the emitted buffer end to end and prove
// no encoder table typo produced an unintended instruction.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::sim {

// ---------------------------------------------------------------------------
// W^X code buffer.
// ---------------------------------------------------------------------------

/// An mmap'd code region with a write-XOR-execute lifecycle: allocated
/// readable+writable, filled once by the emitter, then seal()ed to
/// readable+executable for the lifetime of the owning JitTrace (which the
/// TraceCache shares across engine shards — the buffer is immutable after
/// seal, so concurrent execution needs no further synchronization).
class JitCodeBuffer {
 public:
  JitCodeBuffer() = default;
  ~JitCodeBuffer();
  JitCodeBuffer(JitCodeBuffer&& other) noexcept;
  JitCodeBuffer& operator=(JitCodeBuffer&& other) noexcept;
  JitCodeBuffer(const JitCodeBuffer&) = delete;
  JitCodeBuffer& operator=(const JitCodeBuffer&) = delete;

  /// mmap a writable region of at least `bytes` (page-rounded). Throws
  /// kvx::SimError on mmap failure — the caller demotes to host-simd.
  static JitCodeBuffer allocate(usize bytes);

  /// Flip the region to read+execute. Throws kvx::SimError on mprotect
  /// failure (e.g. a W^X-enforcing kernel policy) — the caller demotes.
  void seal();

  [[nodiscard]] u8* data() noexcept { return base_; }
  [[nodiscard]] const u8* data() const noexcept { return base_; }
  /// Page-rounded mapped size (the resident-bytes accounting unit).
  [[nodiscard]] usize size() const noexcept { return size_; }
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

 private:
  u8* base_ = nullptr;
  usize size_ = 0;
  bool sealed_ = false;
};

// ---------------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------------

/// GPR numbers used by the emitter (SysV argument/scratch registers plus the
/// callee-saved frame registers).
inline constexpr unsigned kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRsp = 4,
                          kRbp = 5, kRsi = 6, kRdi = 7, kR12 = 12;

/// Emits into a growable byte vector; finalize() resolves the jnz and
/// literal-pool fixups once the layout is complete. Vector register numbers
/// are 0–15 for the VEX (ymm) forms and 0–31 for the EVEX (zmm) forms.
class JitAssembler {
 public:
  // --- GPR / control flow ---
  void push_r64(unsigned r);
  void pop_r64(unsigned r);
  void mov_rr64(unsigned dst, unsigned src);
  void mov_ri32(unsigned dst, u32 imm);   ///< dst < 8 (no REX form)
  void mov_ri64(unsigned dst, u64 imm);   ///< movabs
  void sub_rsp_imm32(u32 imm);
  void and_rsp_imm8(i8 imm);
  void lea_rbp_disp8(unsigned dst, i8 disp);    ///< lea dst, [rbp + disp8]
  void lea_rsp_disp32(unsigned dst, i32 disp);  ///< lea dst, [rsp + disp32]
  void call_rax();
  void test_eax_eax();
  /// Emit `jnz rel32` with a zero placeholder; bind_jnz_targets() patches
  /// every recorded site to `target` (the shared epilogue label).
  void jnz_placeholder();
  void bind_jnz_targets(usize target);
  void ret();
  void vzeroupper();

  // --- VEX 256-bit (AVX2) ---
  void vex_load(unsigned dst, i32 rsp_disp);   ///< vmovdqu ymm, [rsp+d]
  void vex_store(unsigned src, i32 rsp_disp);  ///< vmovdqu [rsp+d], ymm
  /// vpxor (0xEF) / vpand (0xDB) / vpandn (0xDF) / vpor (0xEB): dst = a op b.
  void vex_rrr(u8 opcode, unsigned dst, unsigned a, unsigned b);
  /// Same ops with the second source in memory: dst = a op [rsp+d].
  void vex_rrm(u8 opcode, unsigned dst, unsigned a, i32 rsp_disp);
  /// vpsllq (reg field 6) / vpsrlq (reg field 2): dst = src shift imm.
  void vex_shift_imm(unsigned reg_field, unsigned dst, unsigned src, u8 imm);
  /// vpbroadcastq ymm, [rip + literal]; the displacement is fixed up in
  /// finalize() once the pool position is known.
  void vex_broadcast_lit(unsigned dst, u32 lit_index);

  // --- EVEX 512-bit (AVX-512F) ---
  void evex_load(unsigned dst, i32 rsp_disp);   ///< vmovdqu64 zmm, [rsp+d]
  void evex_store(unsigned src, i32 rsp_disp);  ///< vmovdqu64 [rsp+d], zmm
  void evex_mov_rr(unsigned dst, unsigned src); ///< vmovdqu64 zmm, zmm
  void evex_vpxorq(unsigned dst, unsigned a, unsigned b);
  void evex_vpternlogq(unsigned dst, unsigned a, unsigned b, u8 imm);
  void evex_vprolq(unsigned dst, unsigned src, u8 imm);
  void evex_broadcast_lit(unsigned dst, u32 lit_index);

  // --- literal pool ---
  /// Intern a 64-bit constant; returns its pool index (deduplicated).
  u32 add_literal(u64 value);

  /// Current emission offset (label positions for bind_jnz_targets).
  [[nodiscard]] usize pos() const noexcept { return code_.size(); }

  /// Patch all pending fixups and append the 8-byte-aligned literal pool.
  /// Returns the finished byte image; code_size() is the decodable prefix
  /// (everything before pool padding).
  [[nodiscard]] std::vector<u8> finalize();
  [[nodiscard]] usize code_size() const noexcept { return code_size_; }
  [[nodiscard]] usize literal_count() const noexcept {
    return literals_.size();
  }

 private:
  void byte(u8 b) { code_.push_back(b); }
  void imm32(u32 v);
  void imm64(u64 v);
  void rsp_mem_operand(unsigned reg_field, i32 disp);
  void rip_lit_operand(unsigned reg_field, u32 lit_index);
  void vex3(unsigned reg, unsigned rm_reg, u8 mmmmm, u8 w, unsigned vvvv,
            u8 l, u8 pp);
  void evex(unsigned reg, unsigned rm_reg, u8 mm, u8 w, unsigned vvvv, u8 pp);

  std::vector<u8> code_;
  std::vector<u64> literals_;
  std::vector<usize> jnz_fixups_;  ///< offsets of jnz rel32 fields
  struct LitFixup {
    usize disp_pos;  ///< offset of the disp32 field
    u32 lit_index;
  };
  std::vector<LitFixup> lit_fixups_;
  usize code_size_ = 0;
};

// ---------------------------------------------------------------------------
// Length-decoder (the disassembly self-check oracle).
// ---------------------------------------------------------------------------

struct JitDecodedInsn {
  u32 length = 0;          ///< bytes consumed
  std::string_view name;   ///< mnemonic, for test diagnostics
};

/// Decode one instruction at `p` (at most `n` bytes available). Returns
/// nullopt if the bytes do not match any allowlisted encoder form — the
/// self-check test treats that as an emitter table bug.
[[nodiscard]] std::optional<JitDecodedInsn> jit_decode_one(const u8* p,
                                                           usize n);

}  // namespace kvx::sim
