// Trace-to-native JIT backend: tier zero of the backend chain.
//
// The host-SIMD tier (host_simd.hpp) already plans the fused trace into
// straight-line θ/ρπ/χι segments over lane-major packed state, but still
// walks the plan with indirect dispatch on every item/kernel. This backend
// removes that last layer: lower_jit() emits the WHOLE plan as one
// contiguous x86-64 function into an mmap'd W^X code buffer, laid out as
//
//   prologue      frame setup, ctx pointer pinned in rbx, 64-byte-aligned
//                 packed-state buffers carved from the stack
//   round bodies  per segment × pack-width group: a call to the packed
//                 transpose shim, then fully unrolled θ/ρπ/χι machine code —
//                 AVX-512F: state resident in zmm0–24, vpternlogq 0x96/0xD2
//                 folds the XOR trees and Chi, vprolq bakes the ρ rotations,
//                 π is pure register renaming via an in-place cycle walk;
//                 AVX2: memory-resident double-buffered state with
//                 shift/shift/or rotates — with spill/reload around the
//                 last-writer unpack shim calls (the SysV ABI makes every
//                 vector register caller-saved)
//   literal pool  ι round constants, reached rip-relative by vpbroadcastq
//
// Plan items the host-SIMD tier could not lower (replay ranges, short runs)
// call back into the fused tier through an extern "C" shim that traps C++
// exceptions into the ctx and returns nonzero, which the emitted code turns
// into a branch to the epilogue — execute() then rethrows, and the caller
// demotes per the chain (jit → host-simd → fused → trace → interpreter).
//
// The emission ISA is resolved by the same dispatcher the host-SIMD tier
// uses (host_simd_dispatch_isa: CPUID, KVX_HOST_SIMD_ISA, test pins,
// SN-narrowing); scalar/portable resolutions — and non-x86-64 hosts, and
// mmap/mprotect refusals — throw SimError so construction demotes cleanly.
// Cycle accounting passes through to the recorded interpreter totals,
// bit-identical, exactly like every other trace-backed tier.
#pragma once

#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/jit/jit_code.hpp"

namespace kvx::sim {

/// True when this build can emit native code at all (x86-64 with mmap).
[[nodiscard]] bool jit_supported() noexcept;

/// An immutable native compilation of a host-SIMD plan. Thread-safe to
/// share: the code buffer is sealed read+execute before publication and the
/// emitted function only mutates the VectorUnit/Memory it is handed
/// (packed state lives in the caller's stack frame).
class JitTrace {
 public:
  /// Same contract as HostSimdTrace::execute — identical register file,
  /// data memory and (pass-through) cycle accounting. Throws SimError if
  /// the dispatch ISA no longer matches the one this trace was emitted for
  /// (e.g. a test pin changed) — the caller demotes to host-simd.
  void execute(VectorUnit& vu, Memory& mem, const CycleModel& cm) const;

  // --- recorded timing (passes through to the fused/base trace) ---
  [[nodiscard]] u64 total_cycles() const noexcept {
    return hs_->total_cycles();
  }
  [[nodiscard]] u64 instructions() const noexcept {
    return hs_->instructions();
  }
  [[nodiscard]] const RunStats& run_stats() const noexcept {
    return hs_->run_stats();
  }
  [[nodiscard]] const std::vector<Marker>& markers() const noexcept {
    return hs_->markers();
  }
  [[nodiscard]] u64 cycles_between(u32 from, u32 to) const {
    return hs_->cycles_between(from, to);
  }
  [[nodiscard]] const std::array<u32, 32>& final_scalar_regs() const noexcept {
    return hs_->final_scalar_regs();
  }

  /// Shared ownership of the host-SIMD plan — the demotion target
  /// (jit → host-simd) without a second trace-cache round trip.
  [[nodiscard]] const std::shared_ptr<const HostSimdTrace>& shared_host_simd()
      const noexcept {
    return hs_;
  }
  [[nodiscard]] const HostSimdTrace& host_simd() const noexcept {
    return *hs_;
  }
  [[nodiscard]] double lowered_coverage() const noexcept {
    return hs_->lowered_coverage();
  }

  // --- emitted-code introspection (stats, disassembly self-check) ---
  /// ISA the code was emitted for (kAvx512 or kAvx2 only).
  [[nodiscard]] HostSimdIsa isa() const noexcept { return isa_; }
  [[nodiscard]] u32 pack() const noexcept { return pack_; }
  /// Entry point and decodable instruction bytes (excludes pool padding).
  [[nodiscard]] const u8* code() const noexcept { return buf_.data(); }
  [[nodiscard]] usize code_size() const noexcept { return code_size_; }
  /// Whole mapped W^X region (page-rounded; the cache's resident-bytes
  /// accounting unit).
  [[nodiscard]] usize buffer_bytes() const noexcept { return buf_.size(); }
  [[nodiscard]] usize literal_count() const noexcept { return literals_; }
  /// Occupancy accounting unit: the code buffer (the shared host-SIMD plan
  /// is accounted by its own cache entry).
  [[nodiscard]] usize memory_bytes() const noexcept { return buf_.size(); }

 private:
  friend std::shared_ptr<const JitTrace> lower_jit(
      std::shared_ptr<const HostSimdTrace> hs);

  std::shared_ptr<const HostSimdTrace> hs_;
  JitCodeBuffer buf_;
  usize code_size_ = 0;
  usize literals_ = 0;
  HostSimdIsa isa_ = HostSimdIsa::kAvx2;
  u32 pack_ = 0;
  u32 groups_ = 0;
};

/// Emit native code for `hs` at the ISA host_simd_dispatch_isa(hs->sn())
/// resolves to right now. Throws kvx::SimError when emission is impossible
/// (non-x86-64 build, scalar/portable ISA resolution, mmap/mprotect
/// failure) — the caller demotes to the host-SIMD tier.
[[nodiscard]] std::shared_ptr<const JitTrace> lower_jit(
    std::shared_ptr<const HostSimdTrace> hs);

}  // namespace kvx::sim
