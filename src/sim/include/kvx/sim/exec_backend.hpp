// Functional execution backends of the simulated SIMD processor.
//
// The interpreter is the reference backend: it fetches, decodes and
// dispatches every instruction through ScalarCore/VectorUnit. The
// compiled-trace backend (compiled_trace.hpp) replays a pre-decoded kernel
// trace recorded from the interpreter — same architectural effects, same
// reported cycles, far less host work per simulated instruction. The
// fused-trace backend (trace_fusion.hpp) runs an optimizer pass over the
// compiled trace, pattern-matching recorded record sequences into
// Keccak-step super-kernels executed with host SIMD; unmatched sequences
// fall back to per-record replay, so it is correct on arbitrary programs.
// The host-SIMD backend (host_simd.hpp) lowers runs of the matched
// super-kernels straight to host vector intrinsics (AVX-512 / AVX2 /
// portable vector extensions, runtime CPUID dispatch) with multiple Keccak
// states packed per host register; anything it cannot lower executes through
// the fused tier's kernels and replay path. The JIT backend (jit/) is tier
// zero: it emits the whole host-SIMD plan as one contiguous native x86-64
// function per (program, ISA) into a W^X code buffer — no replay dispatch
// at all — and demotes to host-simd wherever native emission is impossible.
#pragma once

#include <optional>
#include <string_view>

namespace kvx::sim {

enum class ExecBackend {
  kInterpreter,    ///< reference fetch/decode/dispatch interpreter
  kCompiledTrace,  ///< pre-decoded kernel trace (see compiled_trace.hpp)
  kFusedTrace,     ///< super-kernel-fused trace (see trace_fusion.hpp)
  kHostSimd,       ///< super-kernels lowered to host intrinsics (host_simd.hpp)
  kJit,            ///< whole-trace native x86-64 emission (jit/jit_trace.hpp)
};

/// Stable name, also accepted by parse_backend:
/// "interpreter" / "trace" / "fused" / "host-simd" / "jit".
[[nodiscard]] constexpr std::string_view backend_name(ExecBackend b) noexcept {
  switch (b) {
    case ExecBackend::kCompiledTrace: return "trace";
    case ExecBackend::kFusedTrace: return "fused";
    case ExecBackend::kHostSimd: return "host-simd";
    case ExecBackend::kJit: return "jit";
    default: return "interpreter";
  }
}

/// Next tier of the fail-soft fallback chain:
/// jit → host-simd → fused → trace → interpreter.
/// The interpreter is the floor — it demotes to itself.
[[nodiscard]] constexpr ExecBackend demote_backend(ExecBackend b) noexcept {
  switch (b) {
    case ExecBackend::kJit: return ExecBackend::kHostSimd;
    case ExecBackend::kHostSimd: return ExecBackend::kFusedTrace;
    case ExecBackend::kFusedTrace: return ExecBackend::kCompiledTrace;
    default: return ExecBackend::kInterpreter;
  }
}

/// Parse a backend name ("interpreter", "trace"/"compiled-trace",
/// "fused"/"fused-trace", "host-simd"/"hostsimd"/"simd", "jit"/"native").
[[nodiscard]] inline std::optional<ExecBackend> parse_backend(
    std::string_view name) noexcept {
  if (name == "interpreter") return ExecBackend::kInterpreter;
  if (name == "trace" || name == "compiled-trace") {
    return ExecBackend::kCompiledTrace;
  }
  if (name == "fused" || name == "fused-trace") {
    return ExecBackend::kFusedTrace;
  }
  if (name == "host-simd" || name == "hostsimd" || name == "simd") {
    return ExecBackend::kHostSimd;
  }
  if (name == "jit" || name == "native") return ExecBackend::kJit;
  return std::nullopt;
}

/// Names parse_backend accepts, for CLI error messages.
inline constexpr std::string_view kBackendNamesHelp =
    "interpreter, trace, fused, host-simd, jit";

}  // namespace kvx::sim
