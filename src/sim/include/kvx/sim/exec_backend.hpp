// Functional execution backends of the simulated SIMD processor.
//
// The interpreter is the reference backend: it fetches, decodes and
// dispatches every instruction through ScalarCore/VectorUnit. The
// compiled-trace backend (compiled_trace.hpp) replays a pre-decoded kernel
// trace recorded from the interpreter — same architectural effects, same
// reported cycles, far less host work per simulated instruction. The
// fused-trace backend (trace_fusion.hpp) runs an optimizer pass over the
// compiled trace, pattern-matching recorded record sequences into
// Keccak-step super-kernels executed with host SIMD; unmatched sequences
// fall back to per-record replay, so it is correct on arbitrary programs.
#pragma once

#include <optional>
#include <string_view>

namespace kvx::sim {

enum class ExecBackend {
  kInterpreter,    ///< reference fetch/decode/dispatch interpreter
  kCompiledTrace,  ///< pre-decoded kernel trace (see compiled_trace.hpp)
  kFusedTrace,     ///< super-kernel-fused trace (see trace_fusion.hpp)
};

/// Stable name, also accepted by parse_backend:
/// "interpreter" / "trace" / "fused".
[[nodiscard]] constexpr std::string_view backend_name(ExecBackend b) noexcept {
  switch (b) {
    case ExecBackend::kCompiledTrace: return "trace";
    case ExecBackend::kFusedTrace: return "fused";
    default: return "interpreter";
  }
}

/// Next tier of the fail-soft fallback chain: fused → trace → interpreter.
/// The interpreter is the floor — it demotes to itself.
[[nodiscard]] constexpr ExecBackend demote_backend(ExecBackend b) noexcept {
  return b == ExecBackend::kFusedTrace ? ExecBackend::kCompiledTrace
                                       : ExecBackend::kInterpreter;
}

/// Parse a backend name ("interpreter", "trace"/"compiled-trace",
/// "fused"/"fused-trace").
[[nodiscard]] inline std::optional<ExecBackend> parse_backend(
    std::string_view name) noexcept {
  if (name == "interpreter") return ExecBackend::kInterpreter;
  if (name == "trace" || name == "compiled-trace") {
    return ExecBackend::kCompiledTrace;
  }
  if (name == "fused" || name == "fused-trace") {
    return ExecBackend::kFusedTrace;
  }
  return std::nullopt;
}

}  // namespace kvx::sim
