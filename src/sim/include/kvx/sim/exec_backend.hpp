// Functional execution backends of the simulated SIMD processor.
//
// The interpreter is the reference backend: it fetches, decodes and
// dispatches every instruction through ScalarCore/VectorUnit. The
// compiled-trace backend (compiled_trace.hpp) replays a pre-decoded kernel
// trace recorded from the interpreter — same architectural effects, same
// reported cycles, far less host work per simulated instruction.
#pragma once

#include <optional>
#include <string_view>

namespace kvx::sim {

enum class ExecBackend {
  kInterpreter,    ///< reference fetch/decode/dispatch interpreter
  kCompiledTrace,  ///< pre-decoded kernel trace (see compiled_trace.hpp)
};

/// Stable name, also accepted by parse_backend: "interpreter" / "trace".
[[nodiscard]] constexpr std::string_view backend_name(ExecBackend b) noexcept {
  return b == ExecBackend::kCompiledTrace ? "trace" : "interpreter";
}

/// Parse a backend name ("interpreter", "trace", "compiled-trace").
[[nodiscard]] inline std::optional<ExecBackend> parse_backend(
    std::string_view name) noexcept {
  if (name == "interpreter") return ExecBackend::kInterpreter;
  if (name == "trace" || name == "compiled-trace") {
    return ExecBackend::kCompiledTrace;
  }
  return std::nullopt;
}

}  // namespace kvx::sim
