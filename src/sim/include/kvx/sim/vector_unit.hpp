// The vector processing unit of the SIMD processor (paper Figure 3).
//
// Models the VecRegfile (32 registers of EleNum × ELEN bits), the
// configuration state set by vsetvli (vtype + vl), the VecLSU addressing
// modes (unit-stride, strided, indexed), the vector integer arithmetic of
// the RVV 1.0 subset, and the ten custom Keccak instructions with their
// `lmul_cnt` row-sequencing and SN-state semantics.
//
// Note on VLEN: the paper instantiates EleNum ∈ {5, 15, 30}, i.e. VLEN
// values that are not powers of two; like the paper's SystemVerilog
// implementation we treat EleNum as a free hardware parameter.
#pragma once

#include <functional>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/isa/instruction.hpp"
#include "kvx/sim/cycle_model.hpp"
#include "kvx/sim/memory.hpp"
#include "kvx/sim/regs.hpp"

namespace kvx::sim {

/// Hardware parameters of the vector unit.
struct VectorConfig {
  unsigned elen_bits = 64;  ///< element width the datapath is built for (32/64)
  unsigned ele_num = 5;     ///< elements per vector register (at SEW = ELEN)
  unsigned sn = 0;          ///< Keccak states processed by the custom
                            ///< instructions; 0 = floor(ele_num / 5)

  [[nodiscard]] unsigned vlen_bits() const noexcept { return elen_bits * ele_num; }
  [[nodiscard]] unsigned effective_sn() const noexcept {
    return sn != 0 ? sn : ele_num / 5;
  }
};

/// Vector processing unit: register file + configuration + execution.
class VectorUnit {
 public:
  explicit VectorUnit(const VectorConfig& cfg);

  [[nodiscard]] const VectorConfig& config() const noexcept { return cfg_; }

  // --- architectural state ---
  [[nodiscard]] usize vl() const noexcept { return vl_; }
  [[nodiscard]] const isa::VType& vtype() const noexcept { return vtype_; }
  /// Max vl for a given vtype: LMUL · VLEN / SEW.
  [[nodiscard]] usize vlmax(const isa::VType& vt) const noexcept;

  /// Override SN at runtime (the csrw path); must satisfy 5·sn ≤ ele_num.
  void set_sn(unsigned sn);

  /// Force vtype/vl directly (compiled-trace replay of recorded generic
  /// ops; bypasses the vsetvli AVL rules on purpose).
  void set_exec_state(const isa::VType& vtype, usize vl) noexcept {
    vtype_ = vtype;
    vl_ = vl;
  }

  // --- host access to the register file (tests / state staging) ---
  /// Element `idx` of register `vreg` at width `sew_bits` (no grouping).
  [[nodiscard]] u64 get_element(unsigned vreg, usize idx, unsigned sew_bits) const;
  void set_element(unsigned vreg, usize idx, unsigned sew_bits, u64 value);
  /// Raw bytes of one register.
  [[nodiscard]] std::vector<u8> get_register(unsigned vreg) const;
  void set_register(unsigned vreg, std::span<const u8> bytes);
  void clear_registers() noexcept;

  // Raw register-file access for the compiled-trace backend: registers are
  // stored contiguously (32 × reg_bytes()), so a register group is one flat
  // byte span at `vreg * reg_bytes()`.
  [[nodiscard]] u8* file_data() noexcept { return file_.data(); }
  [[nodiscard]] const u8* file_data() const noexcept { return file_.data(); }
  [[nodiscard]] usize reg_bytes() const noexcept { return reg_bytes_; }

  /// Execute one vector instruction; returns its cycle cost under `cm`.
  /// Scalar operands/results go through `x`; memory ops through `mem`.
  u32 execute(const isa::Instruction& inst, ScalarRegs& x, Memory& mem,
              const CycleModel& cm);

 private:
  // Element accessors across a register *group* (element index may exceed
  // one register's capacity when LMUL > 1).
  [[nodiscard]] usize elems_per_row(unsigned sew_bits) const noexcept;
  [[nodiscard]] u64 group_get(unsigned base, usize idx, unsigned sew) const;
  void group_set(unsigned base, usize idx, unsigned sew, u64 value);
  [[nodiscard]] bool mask_bit(usize idx) const;

  [[nodiscard]] usize active_rows(unsigned sew_bits) const noexcept;

  /// Base pointer of `reg`'s row after checking once that 5*SN lanes of
  /// `bytes` each fit in one register — the hoisted bounds check the
  /// custom-op row handlers use instead of per-element get/set_element.
  [[nodiscard]] u8* lane_row(unsigned reg, unsigned bytes);

  u32 exec_vsetvli(const isa::Instruction& inst, ScalarRegs& x,
                   const CycleModel& cm);
  u32 exec_arith(const isa::Instruction& inst, const ScalarRegs& x,
                 const CycleModel& cm);
  u32 exec_memory(const isa::Instruction& inst, const ScalarRegs& x,
                  Memory& mem, const CycleModel& cm);
  u32 exec_custom(const isa::Instruction& inst, const ScalarRegs& x,
                  const CycleModel& cm);

  // Custom-instruction helpers (per row).
  void row_slide_mod5(unsigned vd, unsigned vs2, unsigned row, int offset);
  void row_rotup(unsigned vd, unsigned vs2, unsigned row, unsigned amount);
  void row_rho64(unsigned vd, unsigned vs2, unsigned row, unsigned table_row);
  void row_rho32(unsigned vd, unsigned vs2_hi, unsigned vs1_lo, unsigned row,
                 unsigned table_row, bool high_half);
  void row_rot32pair(unsigned vd, unsigned vs2_hi, unsigned vs1_lo,
                     bool high_half);
  void row_pi(unsigned vd, unsigned vs2_row_reg, unsigned table_row);
  void row_iota(unsigned vd, unsigned vs2, u32 index);
  // Fused-extension helpers (paper §5 future work).
  void row_thetac(unsigned vd, unsigned vs2, unsigned row);
  void row_rhopi(unsigned vd, unsigned vs2_row_reg, unsigned table_row);
  void row_chi(unsigned vd, unsigned vs2, unsigned row);

  VectorConfig cfg_;
  isa::VType vtype_{};
  usize vl_ = 0;
  usize reg_bytes_ = 0;
  std::vector<u8> file_;  ///< 32 × reg_bytes_
};

}  // namespace kvx::sim
