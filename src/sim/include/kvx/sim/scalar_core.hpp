// The scalar core of the SIMD processor: an Ibex-like RV32IM machine.
//
// Executes the full RV32I base plus the M extension with the cycle costs of
// a 2-stage in-order pipeline (see CycleModel). Vector instructions are not
// handled here — the processor routes them to the VectorUnit, mirroring the
// Ibex → VecISAInterface hand-off in the paper's Figure 3.
#pragma once

#include <functional>
#include <unordered_map>

#include "kvx/isa/instruction.hpp"
#include "kvx/sim/cycle_model.hpp"
#include "kvx/sim/memory.hpp"
#include "kvx/sim/regs.hpp"

namespace kvx::sim {

/// Custom CSR addresses understood by the simulator.
namespace csr {
inline constexpr u32 kCycle = 0xC00;    ///< cycle counter, low 32 bits (RO)
inline constexpr u32 kCycleH = 0xC80;   ///< cycle counter, high 32 bits (RO)
inline constexpr u32 kInstret = 0xC02;  ///< retired instructions, low (RO)
inline constexpr u32 kMarker = 0x7C0;   ///< write: record a cycle marker
inline constexpr u32 kSn = 0x7C1;       ///< write: set the SN state count
}  // namespace csr

/// Result of executing one scalar instruction.
struct ScalarResult {
  u32 cycles = 1;
  bool halted = false;       ///< ebreak/ecall reached
  bool csr_marker = false;   ///< wrote csr::kMarker
  u32 marker_value = 0;
  bool csr_sn = false;       ///< wrote csr::kSn
  u32 sn_value = 0;
};

/// Scalar RV32IM execution engine. Owns the integer register file and pc;
/// the cycle/instret counters live in the processor and are injected for
/// CSR reads.
class ScalarCore {
 public:
  ScalarCore() = default;

  [[nodiscard]] ScalarRegs& regs() noexcept { return regs_; }
  [[nodiscard]] const ScalarRegs& regs() const noexcept { return regs_; }

  [[nodiscard]] u32 pc() const noexcept { return pc_; }
  void set_pc(u32 pc) noexcept { pc_ = pc; }

  void reset() noexcept;

  /// Execute one decoded scalar instruction at the current pc, updating pc
  /// and registers. `cycle_count`/`instret` feed CSR reads.
  ScalarResult execute(const isa::Instruction& inst, Memory& mem,
                       const CycleModel& cm, u64 cycle_count, u64 instret);

 private:
  ScalarRegs regs_;
  u32 pc_ = 0;
};

}  // namespace kvx::sim
