// Host-SIMD execution backend: tier zero of the backend chain.
//
// The fused backend (trace_fusion.hpp) already collapsed the compiled trace
// into θ/ρπ/χι step-level super-kernels, but still executes them one regfile
// row at a time through GCC vector extensions sized by the SIMULATED
// register width. This backend takes the final step the paper's analysis
// points at: it lowers maximal RUNS of those matched 64-bit super-kernels
// directly to the host's own vector ISA and keeps the whole 25-lane Keccak
// state resident in host registers across entire round sequences.
//
// Representation change. The simulator regfile is plane-major: row y holds
// lane (x, y) of state s at element 5s + x, so one SIMULATED register mixes
// lanes of several states. The host-SIMD plan TRANSPOSES that into a
// lane-major packed form at segment entry: host vector register V[5y + x]
// holds lane (x, y) of P consecutive states, one state per 64-bit host
// lane (P = 8 under AVX-512, 4 under AVX2 and the portable GCC/Clang
// vector-extension fallback, 1 for the pure-scalar build). In that form
// every Keccak step is state-parallel and branch-free:
//
//   θ    five XOR5 column parities + rotate-by-1 combine + 25 XOR applies
//        (AVX-512: ternarylogic XOR3 folds the 5-way XOR tree)
//   ρπ   25 rotates by COMPILE-TIME constants into renamed registers —
//        π is pure register renaming, no shuffles at all
//        (AVX-512: native vprolq; AVX2: shift-shift-or)
//   χ+ι  25 a ^ (~b & c) row ops plus one broadcast-XOR round constant
//        (AVX-512: single-instruction ternarylogic Chi)
//
// Whole-plane transposed loads/stores happen only at segment boundaries
// (absorb/squeeze edges of the lowered run): the plan marks, per segment,
// the LAST super-kernel that writes each regfile location and materializes
// exactly those values back, so the register file after execute() is
// bit-identical to the fused backend's — inter-segment replay ranges (the
// liveness-demoted final round, the state stores) read exactly what they
// would have under fused replay. Ops the plan cannot lower (32-bit split
// arches, short runs, replay ranges) execute through the fused tier's own
// kernels, so the backend is correct on arbitrary programs.
//
// The host ISA is picked once per process by CPUID at dispatch time
// (AVX-512F → AVX2 → portable → scalar), overridable with the
// KVX_HOST_SIMD_ISA environment variable ("avx512" / "avx2" / "portable" /
// "scalar" / "auto") and programmatically for tests. The plan itself is
// ISA-independent — one cached lowering serves every dispatch width.
//
// Cycle accounting passes through to the recorded interpreter totals,
// bit-identical by construction, exactly like the trace and fused tiers.
#pragma once

#include <optional>

#include "kvx/sim/trace_fusion.hpp"

namespace kvx::sim {

/// Host instruction sets the lowered kernels can dispatch to, worst first.
enum class HostSimdIsa : u8 {
  kScalar,    ///< plain u64 arithmetic, 1 state per "register"
  kPortable,  ///< GCC/Clang vector extensions, 4 states per register
  kAvx2,      ///< AVX2 intrinsics, 4 states per 256-bit register
  kAvx512,    ///< AVX-512F intrinsics, 8 states per 512-bit register
};

/// Stable lowercase name ("scalar" / "portable" / "avx2" / "avx512").
[[nodiscard]] std::string_view host_simd_isa_name(HostSimdIsa isa) noexcept;

/// Parse an ISA name as accepted by KVX_HOST_SIMD_ISA (returns nullopt for
/// unknown names; "auto" is handled by the dispatcher, not here).
[[nodiscard]] std::optional<HostSimdIsa> parse_host_simd_isa(
    std::string_view name) noexcept;

/// True when `isa` was compiled in AND the running CPU supports it. kScalar
/// is always available.
[[nodiscard]] bool host_simd_isa_available(HostSimdIsa isa) noexcept;

/// The ISA execute() dispatches to right now: the forced ISA if one is set
/// and available, else the KVX_HOST_SIMD_ISA override if set and available,
/// else the best available by CPUID.
[[nodiscard]] HostSimdIsa host_simd_active_isa() noexcept;

/// Test hook: pin dispatch to `isa` (ignored if unavailable on this host),
/// nullopt restores automatic CPUID selection.
void host_simd_force_isa(std::optional<HostSimdIsa> isa) noexcept;

/// The ISA a plan with `sn` states actually dispatches to. Equal to
/// host_simd_active_isa() under a forced or KVX_HOST_SIMD_ISA pin; in
/// automatic mode, narrowed to the smallest available pack width covering
/// SN in one group (SN=1 runs scalar, SN<=4 runs AVX2/portable even on an
/// AVX-512 host) — padding lanes are packed, rotated and dropped for
/// nothing, so the narrower runner wins on small batches.
[[nodiscard]] HostSimdIsa host_simd_dispatch_isa(u32 sn) noexcept;

/// States packed per host register under `isa` (8/4/4/1).
[[nodiscard]] u32 host_simd_pack_width(HostSimdIsa isa) noexcept;

// ---------------------------------------------------------------------------
// Packed-state transpose. Public because the property tests round-trip it
// directly; the segment runners use the same two functions.
// ---------------------------------------------------------------------------

/// Transpose `pack` consecutive states starting at state index `s0` from the
/// plane-major regfile span at byte offset `loc` (five rows of `rb` bytes,
/// element 5s + x of row y = lane (x, y) of state s) into the lane-major
/// buffer: buf[(5y + x)·pack + p] = lane (x, y) of state s0 + p. States at
/// or beyond `sn` (the ragged final group) are zero-filled.
void host_simd_pack(const u8* file, u32 loc, u32 rb, u32 sn, u32 s0, u32 pack,
                    u64* buf) noexcept;

/// Inverse transpose: write the packed lanes of states [s0, s0 + pack) back
/// to the regfile span at `loc`. Lanes of states at or beyond `sn` are
/// dropped — they correspond to no regfile bytes.
void host_simd_unpack(u8* file, u32 loc, u32 rb, u32 sn, u32 s0, u32 pack,
                      const u64* buf) noexcept;

// ---------------------------------------------------------------------------
// Lowered plan.
// ---------------------------------------------------------------------------

enum class HostSimdKernelKind : u8 { kTheta, kRhoPi, kChi };

/// One lowered super-kernel inside a segment. All regfile interaction is in
/// `unpack_loc`: kernels chain through host registers, and only the marked
/// last-writer kernels transpose the packed state back out.
struct HostSimdKernel {
  HostSimdKernelKind kind{};
  bool iota = false;    ///< χ only: XOR `iota_rc` into lane (0, 0)
  bool unpack = false;  ///< materialize the packed state to `unpack_loc`
  u32 unpack_loc = 0;   ///< regfile byte offset of this kernel's output
  u64 iota_rc = 0;
};

/// One step of the plan: either a maximal lowered segment (kernel_count > 0,
/// packed from `pack_loc` at entry) or a single fused op executed through
/// the fused tier (kernel_count == 0, `fused_index` into fused_ops()).
struct HostSimdItem {
  u32 fused_index = 0;
  u32 kernel_first = 0;
  u32 kernel_count = 0;
  u32 pack_loc = 0;
};

/// An immutable host-SIMD lowering of a fused trace. Thread-safe to share:
/// execute() only mutates the VectorUnit/Memory it is handed (the segment
/// runners use stack-resident packed state only).
class HostSimdTrace {
 public:
  /// Same contract as FusedTrace::execute — identical register file, data
  /// memory and (pass-through) cycle accounting.
  void execute(VectorUnit& vu, Memory& mem, const CycleModel& cm) const;

  // --- recorded timing (passes through to the fused/base trace) ---
  [[nodiscard]] u64 total_cycles() const noexcept {
    return fused_->total_cycles();
  }
  [[nodiscard]] u64 instructions() const noexcept {
    return fused_->instructions();
  }
  [[nodiscard]] const RunStats& run_stats() const noexcept {
    return fused_->run_stats();
  }
  [[nodiscard]] const std::vector<Marker>& markers() const noexcept {
    return fused_->markers();
  }
  [[nodiscard]] u64 cycles_between(u32 from, u32 to) const {
    return fused_->cycles_between(from, to);
  }
  [[nodiscard]] const std::array<u32, 32>& final_scalar_regs() const noexcept {
    return fused_->final_scalar_regs();
  }
  [[nodiscard]] const FusedTrace& fused() const noexcept { return *fused_; }
  /// Shared ownership of the fused trace — the demotion target
  /// (host-simd → fused) without a second trace-cache round trip.
  [[nodiscard]] const std::shared_ptr<const FusedTrace>& shared_fused()
      const noexcept {
    return fused_;
  }

  // --- lowering statistics ---
  /// Fraction of base-trace records covered by LOWERED kernels, in [0, 1].
  [[nodiscard]] double lowered_coverage() const noexcept {
    const usize total = fused_->base().op_count();
    return total == 0 ? 0.0
                      : static_cast<double>(lowered_records_) /
                            static_cast<double>(total);
  }
  [[nodiscard]] usize lowered_kernel_count() const noexcept {
    return kernels_.size();
  }
  [[nodiscard]] usize segment_count() const noexcept { return segments_; }
  [[nodiscard]] const std::vector<HostSimdItem>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<HostSimdKernel>& kernels() const noexcept {
    return kernels_;
  }
  /// Keccak states per simulated register row (the engine's SN).
  [[nodiscard]] u32 sn() const noexcept { return sn_; }
  /// Approximate heap bytes of this plan alone (the shared fused trace is
  /// accounted by its own cache entry).
  [[nodiscard]] usize memory_bytes() const noexcept {
    return items_.size() * sizeof(HostSimdItem) +
           kernels_.size() * sizeof(HostSimdKernel);
  }

 private:
  friend std::shared_ptr<const HostSimdTrace> lower_host_simd(
      std::shared_ptr<const FusedTrace> fused);

  std::shared_ptr<const FusedTrace> fused_;
  std::vector<HostSimdItem> items_;
  std::vector<HostSimdKernel> kernels_;
  usize lowered_records_ = 0;
  usize segments_ = 0;
  usize unpack_marks_ = 0;  ///< kernels with the unpack flag (obs accounting)
  u32 sn_ = 0;
};

/// Build the host-SIMD plan for `fused`. Throws kvx::SimError when nothing
/// can be lowered (32-bit split arches, no matched 64-bit kernels) — the
/// caller demotes to the fused tier per the backend chain.
[[nodiscard]] std::shared_ptr<const HostSimdTrace> lower_host_simd(
    std::shared_ptr<const FusedTrace> fused);

}  // namespace kvx::sim
