// Scalar register file (x0..x31) shared between the scalar core and the
// vector unit (vector-scalar operands, base addresses, vsetvli).
#pragma once

#include <array>

#include "kvx/common/types.hpp"

namespace kvx::sim {

/// RV32 integer register file; x0 reads as zero and ignores writes.
class ScalarRegs {
 public:
  [[nodiscard]] u32 read(unsigned r) const noexcept {
    return r == 0 ? 0u : regs_[r & 31u];
  }

  void write(unsigned r, u32 value) noexcept {
    if ((r & 31u) != 0) regs_[r & 31u] = value;
  }

  void clear() noexcept { regs_.fill(0); }

 private:
  std::array<u32, 32> regs_{};
};

}  // namespace kvx::sim
