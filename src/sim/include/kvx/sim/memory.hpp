// Byte-addressable data memory for the simulated processor.
#pragma once

#include <span>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::sim {

/// Simple flat RAM with bounds-checked accessors. All accesses throw
/// kvx::SimError when they fall outside the configured size. Alignment is
/// enforced for 16/32/64-bit accesses (the Ibex core has no misaligned
/// access support and the vector LSU transfers whole elements).
class Memory {
 public:
  explicit Memory(usize size_bytes);

  [[nodiscard]] usize size() const noexcept { return bytes_.size(); }

  [[nodiscard]] u8 read8(u32 addr) const;
  [[nodiscard]] u16 read16(u32 addr) const;
  [[nodiscard]] u32 read32(u32 addr) const;
  [[nodiscard]] u64 read64(u32 addr) const;

  void write8(u32 addr, u8 value);
  void write16(u32 addr, u16 value);
  void write32(u32 addr, u32 value);
  void write64(u32 addr, u64 value);

  /// Generic element access used by the vector LSU (width in bits).
  [[nodiscard]] u64 read_element(u32 addr, unsigned width_bits) const;
  void write_element(u32 addr, unsigned width_bits, u64 value);

  /// Bulk copy in/out (host-side data staging; not cycle-accounted).
  void write_block(u32 addr, std::span<const u8> data);
  void read_block(u32 addr, std::span<u8> out) const;

  /// Zero all bytes.
  void clear() noexcept;

 private:
  void check(u32 addr, usize len, unsigned align) const;

  std::vector<u8> bytes_;
};

}  // namespace kvx::sim
