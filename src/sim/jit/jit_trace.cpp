#include "kvx/sim/jit/jit_trace.hpp"

#include <cstdint>
#include <cstring>
#include <exception>

#include "kvx/common/error.hpp"
#include "kvx/obs/metrics.hpp"

namespace kvx::sim {

namespace {

// ---------------------------------------------------------------------------
// Runtime context and shims.
//
// The emitted function receives one pointer (rdi): this context. It keeps
// the ctx pinned in rbx and calls back into C++ for the packed transposes
// and for plan items the host-SIMD tier could not lower. The SysV ABI makes
// every vector register caller-saved, so the emitter spills the packed
// state around every shim call (AVX-512) or keeps it memory-resident
// (AVX2).
// ---------------------------------------------------------------------------

struct JitCtx {
  u8* file = nullptr;  ///< vu.file_data() of this dispatch
  u32 rb = 0;          ///< regfile row stride in bytes
  u32 sn = 0;          ///< states per register row
  u32 pack = 0;        ///< states per host register
  const HostSimdTrace* hs = nullptr;
  VectorUnit* vu = nullptr;
  Memory* mem = nullptr;
  const CycleModel* cm = nullptr;
  std::exception_ptr* error = nullptr;
};

void jit_pack_shim(JitCtx* ctx, u64* buf, u32 loc, u32 s0) noexcept {
  host_simd_pack(ctx->file, loc, ctx->rb, ctx->sn, s0, ctx->pack, buf);
}

void jit_unpack_shim(JitCtx* ctx, u64* buf, u32 loc, u32 s0) noexcept {
  host_simd_unpack(ctx->file, loc, ctx->rb, ctx->sn, s0, ctx->pack, buf);
}

/// Execute one unlowered plan item through the fused tier. Returns nonzero
/// on a C++ exception (captured into ctx->error); the emitted code branches
/// to the epilogue and execute() rethrows — native frames never unwind.
int jit_fallback_shim(JitCtx* ctx, u32 item_index) noexcept {
  try {
    const HostSimdItem& item = ctx->hs->items()[item_index];
    const FusedTrace& fused = ctx->hs->fused();
    fused.execute_op(fused.fused_ops()[item.fused_index], *ctx->vu, *ctx->mem,
                     *ctx->cm);
    return 0;
  } catch (...) {
    *ctx->error = std::current_exception();
    return 1;
  }
}

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

/// ρ/π as a register permutation: new[kPi[s]] = rol(old[s], kAmt[s]), with
/// s = 5r + x' indexing V[5y + x] = lane (x, y). Matches the fused
/// kRhoPi64 mapping (host_simd_kernels.inc), which lower_host_simd already
/// cross-checked against keccak::rho_offsets().
struct RhoPiMap {
  unsigned dst[25];
  u8 amt[25];
};

RhoPiMap rho_pi_map() {
  static constexpr u8 kRho[5][5] = {{0, 1, 62, 28, 27},
                                    {36, 44, 6, 55, 20},
                                    {3, 10, 43, 25, 39},
                                    {41, 45, 15, 21, 8},
                                    {18, 2, 61, 56, 14}};
  RhoPiMap m{};
  for (unsigned r = 0; r < 5; ++r) {
    for (unsigned xp = 0; xp < 5; ++xp) {
      const unsigned s = 5 * r + xp;
      m.dst[s] = 5 * ((2 * (xp + 5 - r)) % 5) + r;
      m.amt[s] = kRho[r][xp];
    }
  }
  return m;
}

/// Stack frame: the packed-state buffers live at [rsp, rsp + 1600) —
/// 25 × 64 bytes under AVX-512 (one zmm spill slot per state register), or
/// two 25 × 32 double buffers under AVX2 (ρπ writes the renamed registers
/// into the alternate buffer and the buffers swap roles).
constexpr u32 kFrameBytes = 1664;  // 1600 + 64-byte alignment headroom
constexpr i32 kAvx2BufBytes = 25 * 32;

void emit_shim_call(JitAssembler& a, void (*fn)(JitCtx*, u64*, u32, u32),
                    i32 buf_off, u32 loc, u32 s0) {
  a.vzeroupper();
  a.mov_rr64(kRdi, kRbx);
  a.lea_rsp_disp32(kRsi, buf_off);
  a.mov_ri32(kRdx, loc);
  a.mov_ri32(kRcx, s0);
  a.mov_ri64(kRax, static_cast<u64>(reinterpret_cast<std::uintptr_t>(fn)));
  a.call_rax();
}

void emit_fallback_call(JitAssembler& a, u32 item_index) {
  a.vzeroupper();
  a.mov_rr64(kRdi, kRbx);
  a.mov_ri32(kRsi, item_index);
  a.mov_ri64(kRax, static_cast<u64>(reinterpret_cast<std::uintptr_t>(
                       &jit_fallback_shim)));
  a.call_rax();
  a.test_eax_eax();
  a.jnz_placeholder();
}

// --- AVX-512 kernels: state resident in zmm0–24, scratch zmm25–31 ---

void emit_theta512(JitAssembler& a) {
  // Column parities C[x] = XOR over the five rows, two ternary-logic XOR3s
  // each; then D[x] = C[x+4] ^ rol(C[x+1], 1) applied down the column.
  for (unsigned x = 0; x < 5; ++x) {
    a.evex_mov_rr(25 + x, x);
    a.evex_vpternlogq(25 + x, x + 5, x + 10, 0x96);
    a.evex_vpternlogq(25 + x, x + 15, x + 20, 0x96);
  }
  for (unsigned x = 0; x < 5; ++x) {
    a.evex_vprolq(30, 25 + (x + 1) % 5, 1);
    a.evex_vpxorq(30, 30, 25 + (x + 4) % 5);
    for (unsigned y = 0; y < 5; ++y) a.evex_vpxorq(5 * y + x, 5 * y + x, 30);
  }
}

void emit_rhopi512(JitAssembler& a, const RhoPiMap& m) {
  // π is pure register renaming: walk each permutation cycle with a single
  // temporary, rotating by the ρ immediates as the values move. Writing the
  // cycle in reverse order keeps every source register still-unread.
  bool done[25] = {};
  done[0] = true;  // lane (0,0) is the fixed point with rotation 0
  for (unsigned s = 1; s < 25; ++s) {
    if (done[s]) continue;
    unsigned cyc[25];
    unsigned k = 0;
    for (unsigned c = s; !done[c]; c = m.dst[c]) {
      cyc[k++] = c;
      done[c] = true;
    }
    a.evex_mov_rr(30, cyc[0]);
    a.evex_vprolq(cyc[0], cyc[k - 1], m.amt[cyc[k - 1]]);
    for (unsigned i = k - 1; i >= 2; --i) {
      a.evex_vprolq(cyc[i], cyc[i - 1], m.amt[cyc[i - 1]]);
    }
    a.evex_vprolq(cyc[1], 30, m.amt[cyc[0]]);
  }
}

void emit_chi512(JitAssembler& a, const HostSimdKernel& ker) {
  // One ternary-logic Chi per lane, with the old row saved in scratch.
  for (unsigned y = 0; y < 25; y += 5) {
    for (unsigned x = 0; x < 5; ++x) a.evex_mov_rr(25 + x, y + x);
    for (unsigned x = 0; x < 5; ++x) {
      a.evex_vpternlogq(y + x, 25 + (x + 1) % 5, 25 + (x + 2) % 5, 0xD2);
    }
  }
  if (ker.iota) {
    a.evex_broadcast_lit(31, a.add_literal(ker.iota_rc));
    a.evex_vpxorq(0, 0, 31);
  }
}

// --- AVX2 kernels: memory-resident state, double-buffered across ρπ ---

void emit_theta2(JitAssembler& a, i32 cur) {
  for (unsigned x = 0; x < 5; ++x) {
    a.vex_load(x, cur + static_cast<i32>(x) * 32);
    for (unsigned k = 1; k < 5; ++k) {
      a.vex_rrm(0xEF, x, x, cur + static_cast<i32>(x + 5 * k) * 32);
    }
  }
  for (unsigned x = 0; x < 5; ++x) {
    a.vex_shift_imm(6, 10, (x + 1) % 5, 1);
    a.vex_shift_imm(2, 11, (x + 1) % 5, 63);
    a.vex_rrr(0xEB, 10, 10, 11);
    a.vex_rrr(0xEF, 5 + x, 10, (x + 4) % 5);
  }
  for (unsigned i = 0; i < 25; ++i) {
    a.vex_rrm(0xEF, 10, 5 + i % 5, cur + static_cast<i32>(i) * 32);
    a.vex_store(10, cur + static_cast<i32>(i) * 32);
  }
}

void emit_rhopi2(JitAssembler& a, const RhoPiMap& m, i32 cur, i32 alt) {
  for (unsigned s = 0; s < 25; ++s) {
    a.vex_load(0, cur + static_cast<i32>(s) * 32);
    if (m.amt[s] != 0) {
      a.vex_shift_imm(6, 1, 0, m.amt[s]);
      a.vex_shift_imm(2, 2, 0, static_cast<u8>(64 - m.amt[s]));
      a.vex_rrr(0xEB, 0, 1, 2);
    }
    a.vex_store(0, alt + static_cast<i32>(m.dst[s]) * 32);
  }
}

void emit_chi2(JitAssembler& a, const HostSimdKernel& ker, i32 cur) {
  for (unsigned y = 0; y < 25; y += 5) {
    for (unsigned x = 0; x < 5; ++x) {
      a.vex_load(x, cur + static_cast<i32>(y + x) * 32);
    }
    for (unsigned x = 0; x < 5; ++x) {
      a.vex_rrr(0xDF, 5, (x + 1) % 5, (x + 2) % 5);
      a.vex_rrr(0xEF, 5, 5, x);
      if (ker.iota && y == 0 && x == 0) {
        a.vex_broadcast_lit(6, a.add_literal(ker.iota_rc));
        a.vex_rrr(0xEF, 5, 5, 6);
      }
      a.vex_store(5, cur + static_cast<i32>(y + x) * 32);
    }
  }
}

void emit_function(JitAssembler& a, const HostSimdTrace& hs, HostSimdIsa isa,
                   u32 pack, u32 groups) {
  const RhoPiMap m = rho_pi_map();
  const bool wide = isa == HostSimdIsa::kAvx512;

  // Prologue: rbp frame, ctx pinned in callee-saved rbx (r12 saved only to
  // keep the frame 16-byte aligned), packed-state buffers carved from the
  // stack and 64-byte aligned.
  a.push_r64(kRbp);
  a.mov_rr64(kRbp, kRsp);
  a.push_r64(kRbx);
  a.push_r64(kR12);
  a.mov_rr64(kRbx, kRdi);
  a.sub_rsp_imm32(kFrameBytes);
  a.and_rsp_imm8(-64);

  const auto& items = hs.items();
  const auto& kernels = hs.kernels();
  for (u32 it = 0; it < items.size(); ++it) {
    const HostSimdItem& item = items[it];
    if (item.kernel_count == 0) {
      emit_fallback_call(a, it);
      continue;
    }
    for (u32 g = 0; g < groups; ++g) {
      const u32 s0 = g * pack;
      emit_shim_call(a, &jit_pack_shim, 0, item.pack_loc, s0);
      i32 cur = 0, alt = kAvx2BufBytes;
      if (wide) {
        for (unsigned i = 0; i < 25; ++i) {
          a.evex_load(i, static_cast<i32>(i) * 64);
        }
      }
      for (u32 k = 0; k < item.kernel_count; ++k) {
        const HostSimdKernel& ker = kernels[item.kernel_first + k];
        switch (ker.kind) {
          case HostSimdKernelKind::kTheta:
            wide ? emit_theta512(a) : emit_theta2(a, cur);
            break;
          case HostSimdKernelKind::kRhoPi:
            if (wide) {
              emit_rhopi512(a, m);
            } else {
              emit_rhopi2(a, m, cur, alt);
              std::swap(cur, alt);
            }
            break;
          case HostSimdKernelKind::kChi:
            wide ? emit_chi512(a, ker) : emit_chi2(a, ker, cur);
            break;
        }
        if (ker.unpack) {
          if (wide) {
            for (unsigned i = 0; i < 25; ++i) {
              a.evex_store(i, static_cast<i32>(i) * 64);
            }
            emit_shim_call(a, &jit_unpack_shim, 0, ker.unpack_loc, s0);
            if (k + 1 < item.kernel_count) {
              for (unsigned i = 0; i < 25; ++i) {
                a.evex_load(i, static_cast<i32>(i) * 64);
              }
            }
          } else {
            emit_shim_call(a, &jit_unpack_shim, cur, ker.unpack_loc, s0);
          }
        }
      }
    }
  }

  // Shared epilogue — also the landing pad of every fallback error branch.
  a.bind_jnz_targets(a.pos());
  a.vzeroupper();
  a.lea_rbp_disp8(kRsp, -16);
  a.pop_r64(kR12);
  a.pop_r64(kRbx);
  a.pop_r64(kRbp);
  a.ret();
}

// ---------------------------------------------------------------------------
// Observability.
// ---------------------------------------------------------------------------

obs::Counter& jit_dispatch_counter(HostSimdIsa isa) {
  static obs::Counter& avx2 = obs::MetricsRegistry::global().counter(
      "kvx_jit_dispatch_avx2_total",
      "JIT executions dispatched to AVX2-emitted code");
  static obs::Counter& avx512 = obs::MetricsRegistry::global().counter(
      "kvx_jit_dispatch_avx512_total",
      "JIT executions dispatched to AVX-512-emitted code");
  return isa == HostSimdIsa::kAvx512 ? avx512 : avx2;
}

obs::Counter& jit_emitted_bytes_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "kvx_jit_emitted_bytes_total",
      "Native code bytes emitted by the JIT backend (pre-page-rounding)");
  return c;
}

}  // namespace

bool jit_supported() noexcept {
#if !defined(KVX_JIT)
#define KVX_JIT 1
#endif
#if KVX_JIT && defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  return true;
#else
  return false;
#endif
}

std::shared_ptr<const JitTrace> lower_jit(
    std::shared_ptr<const HostSimdTrace> hs) {
  KVX_CHECK_MSG(hs != nullptr, "lower_jit: null host-simd plan");
  if (!jit_supported()) {
    throw SimError("jit: native emission requires an x86-64 host with mmap");
  }
  const HostSimdIsa isa = host_simd_dispatch_isa(hs->sn());
  if (isa != HostSimdIsa::kAvx2 && isa != HostSimdIsa::kAvx512) {
    throw SimError("jit: dispatch ISA '" +
                   std::string(host_simd_isa_name(isa)) +
                   "' has no native emitter");
  }
  const u32 pack = host_simd_pack_width(isa);
  const u32 groups = (hs->sn() + pack - 1) / pack;

  JitAssembler a;
  emit_function(a, *hs, isa, pack, groups);
  const std::vector<u8> image = a.finalize();

  auto trace = std::make_shared<JitTrace>();
  trace->hs_ = std::move(hs);
  trace->buf_ = JitCodeBuffer::allocate(image.size());
  std::memcpy(trace->buf_.data(), image.data(), image.size());
  trace->buf_.seal();
  trace->code_size_ = a.code_size();
  trace->literals_ = a.literal_count();
  trace->isa_ = isa;
  trace->pack_ = pack;
  trace->groups_ = groups;
  jit_emitted_bytes_counter().inc(image.size());
  return trace;
}

void JitTrace::execute(VectorUnit& vu, Memory& mem,
                       const CycleModel& cm) const {
  KVX_CHECK_MSG(vu.reg_bytes() == hs_->fused().base().reg_bytes(),
                "trace compiled for a different vector configuration");
  // An ISA pin or environment change since emission invalidates the baked
  // code paths; throwing demotes this dispatch to host-simd, which
  // re-resolves per execute.
  if (host_simd_dispatch_isa(hs_->sn()) != isa_) {
    throw SimError("jit: host ISA changed since emission");
  }
  JitCtx ctx;
  ctx.file = vu.file_data();
  ctx.rb = static_cast<u32>(hs_->fused().base().reg_bytes());
  ctx.sn = hs_->sn();
  ctx.pack = pack_;
  ctx.hs = hs_.get();
  ctx.vu = &vu;
  ctx.mem = &mem;
  ctx.cm = &cm;
  std::exception_ptr error;
  ctx.error = &error;
  const unsigned entry_sn = vu.config().effective_sn();

  using Fn = void (*)(JitCtx*);
  const auto fn =
      reinterpret_cast<Fn>(reinterpret_cast<std::uintptr_t>(buf_.data()));
  fn(&ctx);

  if (vu.config().effective_sn() != entry_sn) vu.set_sn(entry_sn);
  if (error) std::rethrow_exception(error);
  jit_dispatch_counter(isa_).inc();
}

}  // namespace kvx::sim
