#include "kvx/sim/jit/jit_code.hpp"

#include <cstring>

#include "kvx/common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define KVX_JIT_HAVE_MMAP 1
#else
#define KVX_JIT_HAVE_MMAP 0
#endif

namespace kvx::sim {

// ---------------------------------------------------------------------------
// JitCodeBuffer
// ---------------------------------------------------------------------------

JitCodeBuffer::~JitCodeBuffer() {
#if KVX_JIT_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, size_);
#endif
}

JitCodeBuffer::JitCodeBuffer(JitCodeBuffer&& other) noexcept
    : base_(other.base_), size_(other.size_), sealed_(other.sealed_) {
  other.base_ = nullptr;
  other.size_ = 0;
  other.sealed_ = false;
}

JitCodeBuffer& JitCodeBuffer::operator=(JitCodeBuffer&& other) noexcept {
  if (this != &other) {
#if KVX_JIT_HAVE_MMAP
    if (base_ != nullptr) ::munmap(base_, size_);
#endif
    base_ = other.base_;
    size_ = other.size_;
    sealed_ = other.sealed_;
    other.base_ = nullptr;
    other.size_ = 0;
    other.sealed_ = false;
  }
  return *this;
}

JitCodeBuffer JitCodeBuffer::allocate(usize bytes) {
#if KVX_JIT_HAVE_MMAP
  const usize page = static_cast<usize>(::sysconf(_SC_PAGESIZE));
  const usize size = (bytes + page - 1) / page * page;
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    throw SimError("jit: mmap of code buffer failed");
  }
  JitCodeBuffer buf;
  buf.base_ = static_cast<u8*>(p);
  buf.size_ = size;
  return buf;
#else
  (void)bytes;
  throw SimError("jit: no executable-memory support on this platform");
#endif
}

void JitCodeBuffer::seal() {
#if KVX_JIT_HAVE_MMAP
  KVX_CHECK_MSG(base_ != nullptr && !sealed_, "seal of empty/sealed buffer");
  if (::mprotect(base_, size_, PROT_READ | PROT_EXEC) != 0) {
    throw SimError("jit: mprotect(PROT_EXEC) failed (W^X policy?)");
  }
  sealed_ = true;
#else
  throw SimError("jit: no executable-memory support on this platform");
#endif
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

void JitAssembler::imm32(u32 v) {
  byte(static_cast<u8>(v));
  byte(static_cast<u8>(v >> 8));
  byte(static_cast<u8>(v >> 16));
  byte(static_cast<u8>(v >> 24));
}

void JitAssembler::imm64(u64 v) {
  imm32(static_cast<u32>(v));
  imm32(static_cast<u32>(v >> 32));
}

void JitAssembler::push_r64(unsigned r) {
  if (r >= 8) byte(0x41);
  byte(static_cast<u8>(0x50 + (r & 7)));
}

void JitAssembler::pop_r64(unsigned r) {
  if (r >= 8) byte(0x41);
  byte(static_cast<u8>(0x58 + (r & 7)));
}

void JitAssembler::mov_rr64(unsigned dst, unsigned src) {
  byte(static_cast<u8>(0x48 | ((src >= 8) ? 4 : 0) | ((dst >= 8) ? 1 : 0)));
  byte(0x89);
  byte(static_cast<u8>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void JitAssembler::mov_ri32(unsigned dst, u32 imm) {
  KVX_CHECK_MSG(dst < 8, "mov_ri32 only encodes the low GPRs");
  byte(static_cast<u8>(0xB8 + dst));
  imm32(imm);
}

void JitAssembler::mov_ri64(unsigned dst, u64 imm) {
  byte(static_cast<u8>(0x48 | ((dst >= 8) ? 1 : 0)));
  byte(static_cast<u8>(0xB8 + (dst & 7)));
  imm64(imm);
}

void JitAssembler::sub_rsp_imm32(u32 imm) {
  byte(0x48);
  byte(0x81);
  byte(0xEC);
  imm32(imm);
}

void JitAssembler::and_rsp_imm8(i8 imm) {
  byte(0x48);
  byte(0x83);
  byte(0xE4);
  byte(static_cast<u8>(imm));
}

void JitAssembler::lea_rbp_disp8(unsigned dst, i8 disp) {
  byte(static_cast<u8>(0x48 | ((dst >= 8) ? 4 : 0)));
  byte(0x8D);
  byte(static_cast<u8>(0x40 | ((dst & 7) << 3) | kRbp));
  byte(static_cast<u8>(disp));
}

void JitAssembler::lea_rsp_disp32(unsigned dst, i32 disp) {
  byte(static_cast<u8>(0x48 | ((dst >= 8) ? 4 : 0)));
  byte(0x8D);
  byte(static_cast<u8>(0x80 | ((dst & 7) << 3) | kRsp));
  byte(0x24);  // SIB: no index, base = rsp
  imm32(static_cast<u32>(disp));
}

void JitAssembler::call_rax() {
  byte(0xFF);
  byte(0xD0);
}

void JitAssembler::test_eax_eax() {
  byte(0x85);
  byte(0xC0);
}

void JitAssembler::jnz_placeholder() {
  byte(0x0F);
  byte(0x85);
  jnz_fixups_.push_back(code_.size());
  imm32(0);
}

void JitAssembler::bind_jnz_targets(usize target) {
  for (const usize pos : jnz_fixups_) {
    const i64 rel = static_cast<i64>(target) - static_cast<i64>(pos + 4);
    const u32 v = static_cast<u32>(static_cast<i32>(rel));
    std::memcpy(code_.data() + pos, &v, 4);
  }
  jnz_fixups_.clear();
}

void JitAssembler::ret() { byte(0xC3); }

void JitAssembler::vzeroupper() {
  // VEX3 form of vzeroupper (C5-prefix-free keeps the decoder to two prefix
  // shapes): C4 E1 78 77.
  byte(0xC4);
  byte(0xE1);
  byte(0x78);
  byte(0x77);
}

void JitAssembler::rsp_mem_operand(unsigned reg_field, i32 disp) {
  byte(static_cast<u8>(0x80 | ((reg_field & 7) << 3) | kRsp));
  byte(0x24);  // SIB: no index, base = rsp
  imm32(static_cast<u32>(disp));
}

void JitAssembler::rip_lit_operand(unsigned reg_field, u32 lit_index) {
  byte(static_cast<u8>(((reg_field & 7) << 3) | 0x05));  // mod=00, rm=101
  lit_fixups_.push_back({code_.size(), lit_index});
  imm32(0);
}

void JitAssembler::vex3(unsigned reg, unsigned rm_reg, u8 mmmmm, u8 w,
                        unsigned vvvv, u8 l, u8 pp) {
  byte(0xC4);
  byte(static_cast<u8>(((reg >= 8 ? 0u : 1u) << 7) | (1u << 6) |
                       ((rm_reg >= 8 ? 0u : 1u) << 5) | mmmmm));
  byte(static_cast<u8>((static_cast<unsigned>(w) << 7) |
                       ((~vvvv & 0xFu) << 3) |
                       (static_cast<unsigned>(l) << 2) | pp));
}

void JitAssembler::evex(unsigned reg, unsigned rm_reg, u8 mm, u8 w,
                        unsigned vvvv, u8 pp) {
  byte(0x62);
  byte(static_cast<u8>((((reg >> 3) & 1u ? 0u : 1u) << 7) |
                       (((rm_reg >> 4) & 1u ? 0u : 1u) << 6) |
                       (((rm_reg >> 3) & 1u ? 0u : 1u) << 5) |
                       (((reg >> 4) & 1u ? 0u : 1u) << 4) | mm));
  byte(static_cast<u8>((static_cast<unsigned>(w) << 7) |
                       ((~vvvv & 0xFu) << 3) | (1u << 2) | pp));
  // 512-bit, unmasked, no broadcast: L'L = 10, V' = ~vvvv[4], aaa = 0.
  byte(static_cast<u8>(0x40u | (((vvvv >> 4) & 1u ? 0u : 1u) << 3)));
}

void JitAssembler::vex_load(unsigned dst, i32 rsp_disp) {
  vex3(dst, kRsp, 1, 0, 0, 1, 2);  // F3 0F, L=256
  byte(0x6F);
  rsp_mem_operand(dst, rsp_disp);
}

void JitAssembler::vex_store(unsigned src, i32 rsp_disp) {
  vex3(src, kRsp, 1, 0, 0, 1, 2);
  byte(0x7F);
  rsp_mem_operand(src, rsp_disp);
}

void JitAssembler::vex_rrr(u8 opcode, unsigned dst, unsigned a, unsigned b) {
  vex3(dst, b, 1, 0, a, 1, 1);  // 66 0F, L=256
  byte(opcode);
  byte(static_cast<u8>(0xC0 | ((dst & 7) << 3) | (b & 7)));
}

void JitAssembler::vex_rrm(u8 opcode, unsigned dst, unsigned a, i32 rsp_disp) {
  vex3(dst, kRsp, 1, 0, a, 1, 1);
  byte(opcode);
  rsp_mem_operand(dst, rsp_disp);
}

void JitAssembler::vex_shift_imm(unsigned reg_field, unsigned dst,
                                 unsigned src, u8 imm) {
  // Shift-by-immediate is VEX.NDD: the destination lives in vvvv.
  vex3(0, src, 1, 0, dst, 1, 1);
  byte(0x73);
  byte(static_cast<u8>(0xC0 | ((reg_field & 7) << 3) | (src & 7)));
  byte(imm);
}

void JitAssembler::vex_broadcast_lit(unsigned dst, u32 lit_index) {
  vex3(dst, 0, 2, 0, 0, 1, 1);  // 66 0F38.W0, L=256
  byte(0x59);
  rip_lit_operand(dst, lit_index);
}

void JitAssembler::evex_load(unsigned dst, i32 rsp_disp) {
  evex(dst, kRsp, 1, 1, 0, 2);  // F3 0F.W1
  byte(0x6F);
  rsp_mem_operand(dst, rsp_disp);
}

void JitAssembler::evex_store(unsigned src, i32 rsp_disp) {
  evex(src, kRsp, 1, 1, 0, 2);
  byte(0x7F);
  rsp_mem_operand(src, rsp_disp);
}

void JitAssembler::evex_mov_rr(unsigned dst, unsigned src) {
  evex(dst, src, 1, 1, 0, 2);
  byte(0x6F);
  byte(static_cast<u8>(0xC0 | ((dst & 7) << 3) | (src & 7)));
}

void JitAssembler::evex_vpxorq(unsigned dst, unsigned a, unsigned b) {
  evex(dst, b, 1, 1, a, 1);  // 66 0F.W1
  byte(0xEF);
  byte(static_cast<u8>(0xC0 | ((dst & 7) << 3) | (b & 7)));
}

void JitAssembler::evex_vpternlogq(unsigned dst, unsigned a, unsigned b,
                                   u8 imm) {
  evex(dst, b, 3, 1, a, 1);  // 66 0F3A.W1
  byte(0x25);
  byte(static_cast<u8>(0xC0 | ((dst & 7) << 3) | (b & 7)));
  byte(imm);
}

void JitAssembler::evex_vprolq(unsigned dst, unsigned src, u8 imm) {
  // Rotate-by-immediate is EVEX.NDD: the destination lives in vvvv and the
  // modrm reg field selects the /1 (rol) form.
  evex(1, src, 1, 1, dst, 1);
  byte(0x72);
  byte(static_cast<u8>(0xC0 | (1u << 3) | (src & 7)));
  byte(imm);
}

void JitAssembler::evex_broadcast_lit(unsigned dst, u32 lit_index) {
  evex(dst, 0, 2, 1, 0, 1);  // 66 0F38.W1
  byte(0x59);
  rip_lit_operand(dst, lit_index);
}

u32 JitAssembler::add_literal(u64 value) {
  for (usize i = 0; i < literals_.size(); ++i) {
    if (literals_[i] == value) return static_cast<u32>(i);
  }
  literals_.push_back(value);
  return static_cast<u32>(literals_.size() - 1);
}

std::vector<u8> JitAssembler::finalize() {
  KVX_CHECK_MSG(jnz_fixups_.empty(), "unbound jnz fixups at finalize");
  code_size_ = code_.size();
  std::vector<u8> out = code_;
  // 8-align the literal pool; the padding sits past code_size() so the
  // disassembly self-check never sees it.
  while (out.size() % 8 != 0) out.push_back(0xCC);
  const usize pool = out.size();
  for (const u64 lit : literals_) {
    for (unsigned i = 0; i < 8; ++i) {
      out.push_back(static_cast<u8>(lit >> (8 * i)));
    }
  }
  for (const LitFixup& fx : lit_fixups_) {
    const usize target = pool + usize{8} * fx.lit_index;
    const i64 rel = static_cast<i64>(target) - static_cast<i64>(fx.disp_pos + 4);
    const u32 v = static_cast<u32>(static_cast<i32>(rel));
    std::memcpy(out.data() + fx.disp_pos, &v, 4);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Length-decoder
// ---------------------------------------------------------------------------

namespace {

/// modrm/SIB/displacement length for the two memory shapes the encoder can
/// produce, plus register-direct. Returns 0 for anything else.
u32 modrm_tail_len(const u8* p, usize n) {
  if (n < 1) return 0;
  const u8 modrm = p[0];
  const u8 mod = static_cast<u8>(modrm >> 6);
  const u8 rm = static_cast<u8>(modrm & 7);
  if (mod == 3) return 1;                      // register direct
  if (mod == 0 && rm == 5) return n >= 5 ? 5 : 0;  // [rip + disp32]
  if (mod == 2 && rm == 4) {                   // [rsp + disp32] via SIB
    if (n < 6 || p[1] != 0x24) return 0;
    return 6;
  }
  return 0;
}

std::optional<JitDecodedInsn> decode_vex3(const u8* p, usize n) {
  if (n < 4) return std::nullopt;
  const u8 mmmmm = static_cast<u8>(p[1] & 0x1F);
  const u8 w = static_cast<u8>(p[2] >> 7);
  const u8 l = static_cast<u8>((p[2] >> 2) & 1);
  const u8 pp = static_cast<u8>(p[2] & 3);
  const u8 op = p[3];
  if (mmmmm == 1 && pp == 0 && l == 0 && op == 0x77) {
    return JitDecodedInsn{4, "vzeroupper"};
  }
  if (w != 0 || l != 1) return std::nullopt;
  const u8* body = p + 4;
  const usize left = n - 4;
  const u32 tail = modrm_tail_len(body, left);
  if (tail == 0) return std::nullopt;
  if (mmmmm == 1 && pp == 2 && (op == 0x6F || op == 0x7F)) {
    return JitDecodedInsn{4 + tail, op == 0x6F ? "vmovdqu(load)"
                                               : "vmovdqu(store)"};
  }
  if (mmmmm == 1 && pp == 1) {
    switch (op) {
      case 0xEF: return JitDecodedInsn{4 + tail, "vpxor"};
      case 0xDB: return JitDecodedInsn{4 + tail, "vpand"};
      case 0xDF: return JitDecodedInsn{4 + tail, "vpandn"};
      case 0xEB: return JitDecodedInsn{4 + tail, "vpor"};
      case 0x73: {
        const u8 reg = static_cast<u8>((body[0] >> 3) & 7);
        if ((reg != 2 && reg != 6) || (body[0] >> 6) != 3) {
          return std::nullopt;
        }
        if (left < tail + 1) return std::nullopt;
        return JitDecodedInsn{4 + tail + 1, reg == 6 ? "vpsllq" : "vpsrlq"};
      }
      default: return std::nullopt;
    }
  }
  if (mmmmm == 2 && pp == 1 && op == 0x59) {
    return JitDecodedInsn{4 + tail, "vpbroadcastq"};
  }
  return std::nullopt;
}

std::optional<JitDecodedInsn> decode_evex(const u8* p, usize n) {
  if (n < 6) return std::nullopt;
  if ((p[1] & 0x0C) != 0) return std::nullopt;  // reserved bits must be 0
  const u8 mm = static_cast<u8>(p[1] & 3);
  const u8 w = static_cast<u8>(p[2] >> 7);
  const u8 pp = static_cast<u8>(p[2] & 3);
  if ((p[2] & 0x04) == 0) return std::nullopt;  // fixed-1 bit
  if ((p[3] & 0xF0) != 0x40) return std::nullopt;  // z=0, L'L=10, b=0
  const u8 op = p[4];
  const u8* body = p + 5;
  const usize left = n - 5;
  const u32 tail = modrm_tail_len(body, left);
  if (tail == 0 || w != 1) return std::nullopt;
  if (mm == 1 && pp == 2 && (op == 0x6F || op == 0x7F)) {
    return JitDecodedInsn{5 + tail, op == 0x6F ? "vmovdqu64(load)"
                                               : "vmovdqu64(store)"};
  }
  if (mm == 1 && pp == 1 && op == 0xEF) {
    return JitDecodedInsn{5 + tail, "vpxorq"};
  }
  if (mm == 1 && pp == 1 && op == 0x72) {
    const u8 reg = static_cast<u8>((body[0] >> 3) & 7);
    if (reg != 1 || (body[0] >> 6) != 3) return std::nullopt;
    if (left < tail + 1) return std::nullopt;
    return JitDecodedInsn{5 + tail + 1, "vprolq"};
  }
  if (mm == 3 && pp == 1 && op == 0x25) {
    if (left < tail + 1) return std::nullopt;
    return JitDecodedInsn{5 + tail + 1, "vpternlogq"};
  }
  if (mm == 2 && pp == 1 && op == 0x59) {
    return JitDecodedInsn{5 + tail, "vpbroadcastq"};
  }
  return std::nullopt;
}

std::optional<JitDecodedInsn> decode_gpr(const u8* p, usize n, u32 rex_len) {
  const bool rex_w = rex_len != 0 && (p[0] & 0x08) != 0;
  const u8* q = p + rex_len;
  const usize left = n - rex_len;
  if (left < 1) return std::nullopt;
  const u8 op = q[0];
  if (op >= 0x50 && op <= 0x57) return JitDecodedInsn{rex_len + 1, "push"};
  if (op >= 0x58 && op <= 0x5F) return JitDecodedInsn{rex_len + 1, "pop"};
  if (op >= 0xB8 && op <= 0xBF) {
    if (rex_w) {
      if (left < 9) return std::nullopt;
      return JitDecodedInsn{rex_len + 9, "movabs"};
    }
    if (left < 5) return std::nullopt;
    return JitDecodedInsn{rex_len + 5, "mov(imm32)"};
  }
  if (op == 0x89 && rex_w) {
    if (left < 2 || (q[1] >> 6) != 3) return std::nullopt;
    return JitDecodedInsn{rex_len + 2, "mov(rr)"};
  }
  if (op == 0x8D && rex_w) {
    if (left < 2) return std::nullopt;
    // lea's own extra memory shape: [rbp + disp8] (the epilogue rsp restore).
    if ((q[1] >> 6) == 1 && (q[1] & 7) == 5) {
      if (left < 3) return std::nullopt;
      return JitDecodedInsn{rex_len + 3, "lea"};
    }
    const u32 tail = modrm_tail_len(q + 1, left - 1);
    if (tail == 0 || (q[1] >> 6) == 3) return std::nullopt;
    return JitDecodedInsn{rex_len + 1 + tail, "lea"};
  }
  if (op == 0x81 && rex_w) {
    if (left < 6 || q[1] != 0xEC) return std::nullopt;  // sub rsp, imm32
    return JitDecodedInsn{rex_len + 6, "sub(rsp)"};
  }
  if (op == 0x83 && rex_w) {
    if (left < 3 || q[1] != 0xE4) return std::nullopt;  // and rsp, imm8
    return JitDecodedInsn{rex_len + 3, "and(rsp)"};
  }
  if (rex_len != 0) return std::nullopt;
  if (op == 0xFF) {
    if (left < 2 || q[1] != 0xD0) return std::nullopt;  // call rax
    return JitDecodedInsn{2, "call(rax)"};
  }
  if (op == 0x85) {
    if (left < 2 || q[1] != 0xC0) return std::nullopt;  // test eax, eax
    return JitDecodedInsn{2, "test"};
  }
  if (op == 0x0F) {
    if (left < 6 || q[1] != 0x85) return std::nullopt;  // jnz rel32
    return JitDecodedInsn{6, "jnz"};
  }
  if (op == 0xC3) return JitDecodedInsn{1, "ret"};
  return std::nullopt;
}

}  // namespace

std::optional<JitDecodedInsn> jit_decode_one(const u8* p, usize n) {
  if (n == 0) return std::nullopt;
  if (p[0] == 0x62) return decode_evex(p, n);
  if (p[0] == 0xC4) return decode_vex3(p, n);
  if (p[0] >= 0x40 && p[0] <= 0x4F) return decode_gpr(p, n, 1);
  return decode_gpr(p, n, 0);
}

}  // namespace kvx::sim
