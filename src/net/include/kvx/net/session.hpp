// Server-side streaming XOF sessions: the sponge's squeeze-forever
// property exposed over the wire. An OPEN_SESSION request absorbs the
// message into a SHAKE128/256 sponge held by the server; SQUEEZE requests
// then stream arbitrary amounts of output across any number of frames;
// CLOSE_SESSION (or the connection closing) releases the state.
//
// Sessions are owner-scoped: every operation carries the owning
// connection's id and a session is only visible to the connection that
// opened it — one client cannot squeeze (or close) another's stream.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/keccak/sha3.hpp"

namespace kvx::net {

class SessionTable {
 public:
  /// `max_sessions` bounds total live sponges (memory backpressure for
  /// session state, independent of the engine queue).
  explicit SessionTable(usize max_sessions = 1024)
      : max_sessions_(max_sessions) {}

  /// Absorb `message` into a fresh XOF and return its session id (ids are
  /// dense, starting at 1). Returns 0 and sets `error` when the table is
  /// full. `function` must be SHAKE128 or SHAKE256 (callers validate via
  /// net::session_capable before mapping to a Sha3Function).
  u64 open(u64 owner, keccak::Sha3Function function,
           std::span<const u8> message, std::string& error);

  /// Squeeze `n` bytes from session `id` into `out` (appending). Fails
  /// (false + `error`) on an unknown id or an id owned by another
  /// connection — both render identically so ids don't leak liveness.
  bool squeeze(u64 owner, u64 id, usize n, std::vector<u8>& out,
               std::string& error);

  /// Release session `id`. Same visibility rule as squeeze.
  bool close(u64 owner, u64 id, std::string& error);

  /// Drop every session owned by `owner` (connection teardown). Returns
  /// the number released.
  usize drop_owner(u64 owner);

  [[nodiscard]] usize size() const noexcept { return sessions_.size(); }
  [[nodiscard]] u64 opened_total() const noexcept { return next_id_ - 1; }

 private:
  struct Session {
    std::unique_ptr<keccak::Xof> xof;
    u64 owner = 0;
  };

  usize max_sessions_;
  u64 next_id_ = 1;
  std::map<u64, Session> sessions_;
};

}  // namespace kvx::net
