// HashServer — the kvx-hashd service core: a single-threaded epoll event
// loop in front of a BatchHashEngine.
//
// Division of labor:
//   * The event loop owns every socket and never blocks on the engine.
//     One-shot HASH requests are submitted to the engine and the loop
//     moves on; the engine pokes a completion eventfd on every retirement
//     (BatchHashEngine::set_notify_fd) and the loop collects finished
//     results with the non-blocking try_drain_ready() when that fd fires.
//     The engine's worker shards provide all the parallelism — the loop
//     only shuffles bytes.
//   * Streaming XOF sessions (OPEN/SQUEEZE/CLOSE) run host-side on the
//     loop thread (kvx/net/session.hpp): squeezing is a few permutations,
//     far below the syscall noise floor, and keeping sponge state off the
//     worker shards means a session never holds an accelerator lane.
//   * Backpressure is socket-level: when the engine queue climbs to the
//     high watermark the loop stops READING binary connections (EPOLLIN
//     off; kernel buffers and TCP flow control push back to clients) and
//     resumes at the low watermark — hysteresis via BackpressureGovernor,
//     so the epoll interest set doesn't flap. The engine's own blocking
//     max_queue bound is never hit: the derived high watermark sits below
//     it, so the loop thread cannot stall in submit().
//   * Failures stay per-job (the engine's fail-soft chain): a failed job
//     produces a kFailed response carrying the error and the backend
//     demotion path; the connection, its other requests and every other
//     client are untouched.
//   * An HTTP admin plane (GET /metrics, GET /healthz) shares the data
//     port; the first bytes of each connection pick the mode (see
//     kvx/net/http.hpp for why this is unambiguous).
//
// The implementation is Linux-only (epoll + eventfd + accept4); on other
// platforms construction throws. See docs/server.md.
#pragma once

#include <memory>
#include <string>

#include "kvx/common/types.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/net/protocol.hpp"

namespace kvx::net {

struct ServerConfig {
  /// Listen address; keep the default loopback unless fronted by real
  /// authn — the protocol itself is unauthenticated.
  std::string bind_addr = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (tests), reported by port().
  u16 port = 0;
  int listen_backlog = 128;
  /// Engine the server fronts. max_queue should be > 0: it anchors the
  /// backpressure watermarks (and bounds memory under overload).
  engine::EngineConfig engine;
  /// Frame payload cap per connection (protocol violations drop the
  /// connection); default kMaxFramePayload.
  usize max_frame = kMaxFramePayload;
  /// Live streaming-session cap (OPEN beyond it is refused).
  usize max_sessions = 1024;
  /// Queue-depth watermarks for socket backpressure. 0 = derive:
  /// high = 3/4 of engine.max_queue (1024 if unbounded), low = high / 2.
  usize high_watermark = 0;
  usize low_watermark = 0;
};

/// Event-loop-local counters (read them from the loop thread, or after
/// run() returned). The Prometheus mirrors live in the global registry:
/// kvx_server_connections, kvx_server_sessions,
/// kvx_server_backpressure_events_total, kvx_server_requests_total.
struct ServerCounters {
  u64 accepted = 0;          ///< connections accepted
  u64 closed = 0;            ///< connections torn down (any reason)
  u64 requests = 0;          ///< binary requests decoded (well-formed frames)
  u64 responses = 0;         ///< binary responses queued
  u64 protocol_errors = 0;   ///< violations that dropped a connection
  u64 bad_requests = 0;      ///< kBadRequest responses (connection kept)
  u64 engine_failures = 0;   ///< kFailed responses (per-job engine errors)
  u64 http_requests = 0;     ///< admin-plane requests served
  u64 backpressure_engagements = 0;  ///< idle -> engaged transitions
};

class HashServer {
 public:
  /// Binds and listens (throws kvx::Error on any socket failure — nothing
  /// half-constructed survives). The engine starts its workers here.
  explicit HashServer(const ServerConfig& config);
  ~HashServer();

  HashServer(const HashServer&) = delete;
  HashServer& operator=(const HashServer&) = delete;

  /// The bound TCP port (the ephemeral one when config.port was 0).
  [[nodiscard]] u16 port() const noexcept;

  /// Run the event loop until stop(). Not re-entrant; call once.
  void run();

  /// Ask the loop to exit. Thread- and async-signal-safe (one eventfd
  /// write) — call it from a SIGINT/SIGTERM handler.
  void stop() noexcept;

  /// The fronted engine (stats/shutdown introspection for the tool).
  [[nodiscard]] engine::BatchHashEngine& engine() noexcept;

  [[nodiscard]] const ServerCounters& counters() const noexcept;

  /// Live connection count (loop thread only; tests poll via /metrics).
  [[nodiscard]] usize connections() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace kvx::net
