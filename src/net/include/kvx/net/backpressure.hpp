// Hysteresis governor for socket-level backpressure. The server stops
// *reading* client sockets (kernel buffers then TCP flow control push back
// to the clients) when the engine queue climbs to the high watermark, and
// resumes only once it drains to the low one — two thresholds, so a queue
// oscillating around a single threshold cannot flap EPOLL_CTL_MOD on every
// event-loop iteration.
//
// Plain single-threaded state; the event loop is the only caller.
#pragma once

#include "kvx/common/error.hpp"
#include "kvx/common/types.hpp"

namespace kvx::net {

class BackpressureGovernor {
 public:
  /// Engage at depth >= `high`, release at depth <= `low`; requires
  /// low < high (equal thresholds would reintroduce the flapping this
  /// class exists to prevent).
  BackpressureGovernor(usize high, usize low) : high_(high), low_(low) {
    KVX_CHECK(low < high);
  }

  /// Feed the current queue depth. Returns true when the state *changed*
  /// (the caller must then add/remove EPOLLIN on its connections).
  bool update(usize depth) noexcept {
    if (!engaged_ && depth >= high_) {
      engaged_ = true;
      ++engagements_;
      return true;
    }
    if (engaged_ && depth <= low_) {
      engaged_ = false;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool engaged() const noexcept { return engaged_; }
  /// Times the governor transitioned idle -> engaged (the
  /// kvx_server_backpressure_events_total counter source).
  [[nodiscard]] u64 engagements() const noexcept { return engagements_; }
  [[nodiscard]] usize high_watermark() const noexcept { return high_; }
  [[nodiscard]] usize low_watermark() const noexcept { return low_; }

 private:
  usize high_;
  usize low_;
  bool engaged_ = false;
  u64 engagements_ = 0;
};

}  // namespace kvx::net
