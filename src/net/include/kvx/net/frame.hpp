// Transport framing for the kvx-hashd protocol: u32 little-endian payload
// length, then the payload. FrameReader is the receive half — an
// incremental reassembler that accepts bytes in whatever fragments TCP
// delivers (one byte at a time included; see the slow-loris tests) and
// yields complete payloads. Oversized declared lengths are detected from
// the header alone, BEFORE any payload is buffered, so a hostile peer
// cannot make the server allocate 4 GiB by sending five bytes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/net/protocol.hpp"

namespace kvx::net {

/// Append one frame (header + payload) to `out` — the send half.
void append_frame(std::vector<u8>& out, std::span<const u8> payload);

/// Incremental frame reassembler. feed() bytes as they arrive; next()
/// pops complete payloads in order. After any protocol violation the
/// reader is poisoned: feed()/next() return false and error() explains —
/// the owning connection must be dropped.
class FrameReader {
 public:
  explicit FrameReader(usize max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Buffer `data`. Returns false (poisoning the reader) if any declared
  /// frame length exceeds the payload cap.
  bool feed(std::span<const u8> data);

  /// Move the next complete payload into `out`. Returns false when no
  /// complete frame is buffered (or the reader is poisoned).
  bool next(std::vector<u8>& out);

  /// True once a complete frame is buffered (next() will succeed).
  [[nodiscard]] bool has_frame() const noexcept;

  [[nodiscard]] bool poisoned() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes currently buffered (partial frames included) — the per-
  /// connection memory the reader is holding.
  [[nodiscard]] usize buffered() const noexcept { return buffer_.size(); }

 private:
  /// Declared length of the pending frame, if a full header is buffered.
  [[nodiscard]] bool peek_len(u32& len) const noexcept;
  /// Validate the pending header (if any); poisons on an oversized length.
  bool check_header();

  usize max_payload_;
  std::vector<u8> buffer_;
  std::string error_;
};

}  // namespace kvx::net
