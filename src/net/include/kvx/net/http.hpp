// Minimal HTTP/1.x admin plane for kvx-hashd: just enough to serve
// GET /metrics (Prometheus text exposition) and GET /healthz to curl and
// a scraper, on the SAME port as the binary protocol. Disambiguation is
// unambiguous by construction: a binary frame starts with a u32 LE payload
// length capped at 1 MiB, while "GET " / "HEAD" as a u32 is ~0x20544547 —
// far above the cap — so the first four bytes of a connection decide its
// mode with zero ambiguity.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "kvx/common/types.hpp"

namespace kvx::net {

/// True if the first bytes of a connection look like an HTTP request line
/// (needs at least 4 buffered bytes to say yes).
[[nodiscard]] bool looks_like_http(std::span<const u8> data) noexcept;

/// Parsed request line of an HTTP request head.
struct HttpRequest {
  std::string method;
  std::string path;  ///< target with any query string stripped
};

/// True once `data` holds a complete request head (CRLFCRLF seen) and the
/// request line parsed; false while more bytes are needed. A malformed
/// request line yields true with an empty method (caller answers 400).
bool parse_http_request(std::string_view data, HttpRequest& out);

/// Serialize a response with Content-Length and Connection: close.
[[nodiscard]] std::string http_response(int status, std::string_view reason,
                                        std::string_view content_type,
                                        std::string_view body);

}  // namespace kvx::net
