// kvx-hashd wire protocol: the length-prefixed binary request/response
// format the hash service speaks (docs/server.md has the byte-level
// layout and examples).
//
// Transport framing (kvx/net/frame.hpp) is a u32 little-endian payload
// length followed by the payload; this header defines what is *inside* a
// payload. Both directions share the first 9 bytes:
//
//   request  = u64 id (LE) | u8 opcode | opcode-specific body
//   response = u64 id (LE) | u8 status | status-specific body
//
// Opcodes:
//   kHash (1)         u8 algo | u32 out_len | u16 key_len | u16 cust_len |
//                     key bytes | customization bytes | message bytes
//                     (message = everything after the declared prefixes).
//                     One-shot: the job goes through the BatchHashEngine
//                     and the OK response body is the digest.
//   kOpenSession (2)  u8 algo (SHAKE128/256 only) | message bytes.
//                     Absorbs the message into a server-side XOF sponge;
//                     OK body is a u64 session id (LE). The session then
//                     streams output across any number of kSqueeze
//                     requests — the protocol face of the sponge's
//                     squeeze-forever property.
//   kSqueeze (3)      u64 session_id | u32 n. OK body is n bytes of XOF
//                     output, advancing the session's squeeze offset.
//   kCloseSession (4) u64 session_id. OK body empty.
//   kPing (5)         empty body; OK body empty (liveness/latency probe).
//
// Statuses:
//   kOk (0)           request-specific body as above.
//   kBadRequest (1)   body is a human-readable UTF-8 error (unknown
//                     opcode/algo, length mismatch, unknown session, ...).
//   kFailed (2)       the engine retired the job with a per-job error;
//                     body is the error text followed by the backend
//                     demotion path the accelerator walked (fail-soft
//                     forensics, same rendering as the kvx-doctor output).
//
// Every decoder here is total: arbitrary bytes produce either a valid
// struct or a diagnostic — never UB, never an exception. That is the
// property tests/test_net.cpp fuzzes.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/engine/job.hpp"

namespace kvx::net {

/// Hard cap on a frame payload (requests and responses). Oversized frames
/// are a protocol violation: the connection is dropped, not buffered.
inline constexpr usize kMaxFramePayload = usize{1} << 20;  // 1 MiB

/// Cap on requested digest/squeeze output per request; keeps one request
/// from inflating a 13-byte frame into an arbitrarily large response.
inline constexpr usize kMaxOutputLen = usize{1} << 16;  // 64 KiB

/// Bytes shared by every request/response payload (id + opcode/status).
inline constexpr usize kHeaderBytes = 9;

enum class Opcode : u8 {
  kHash = 1,
  kOpenSession = 2,
  kSqueeze = 3,
  kCloseSession = 4,
  kPing = 5,
};

enum class Status : u8 {
  kOk = 0,
  kBadRequest = 1,
  kFailed = 2,
};

/// One decoded client request. Fields beyond `id`/`op` are only meaningful
/// for the opcodes that carry them (see the layout above).
struct Request {
  u64 id = 0;
  Opcode op = Opcode::kPing;
  // kHash
  engine::Algo algo = engine::Algo::kSha3_256;
  u32 out_len = 0;
  std::vector<u8> key;
  std::vector<u8> customization;
  std::vector<u8> message;  ///< also the kOpenSession absorb input
  // kSqueeze / kCloseSession
  u64 session_id = 0;
  u32 squeeze_len = 0;
};

/// One decoded server response.
struct Response {
  u64 id = 0;
  Status status = Status::kOk;
  /// Digest / session id / squeezed bytes for kOk; UTF-8 error text for
  /// kBadRequest and kFailed.
  std::vector<u8> body;

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
  [[nodiscard]] std::string error_text() const {
    return std::string(body.begin(), body.end());
  }
};

/// Decode a request payload. Returns std::nullopt and sets `error` on any
/// malformed input (short payload, unknown opcode/algo, inconsistent
/// lengths, out-of-range output size). Never throws.
[[nodiscard]] std::optional<Request> decode_request(std::span<const u8> payload,
                                                    std::string& error);

/// Encode a request payload (client side: kvx-loadgen, tests).
[[nodiscard]] std::vector<u8> encode_request(const Request& req);

/// Decode a response payload (client side). Same total-function contract
/// as decode_request.
[[nodiscard]] std::optional<Response> decode_response(
    std::span<const u8> payload, std::string& error);

/// Encode an OK response with `body`.
[[nodiscard]] std::vector<u8> encode_response_ok(u64 id,
                                                 std::span<const u8> body);

/// Encode an error response (`status` must not be kOk).
[[nodiscard]] std::vector<u8> encode_response_error(u64 id, Status status,
                                                    std::string_view text);

/// Render a failed JobResult the way the kFailed body carries it: the
/// per-job error, then " | demotion path: tier (err) -> ..." when the
/// accelerator recorded the tiers it walked.
[[nodiscard]] std::string render_failure(const engine::JobResult& result);

/// True if `algo` is an engine algorithm a session can stream (the XOFs).
[[nodiscard]] constexpr bool session_capable(engine::Algo algo) noexcept {
  return algo == engine::Algo::kShake128 || algo == engine::Algo::kShake256;
}

}  // namespace kvx::net
