#include "kvx/net/session.hpp"

#include "kvx/common/strings.hpp"

namespace kvx::net {

u64 SessionTable::open(u64 owner, keccak::Sha3Function function,
                       std::span<const u8> message, std::string& error) {
  if (sessions_.size() >= max_sessions_) {
    error = strfmt("session table full (%zu live sessions)", sessions_.size());
    return 0;
  }
  const u64 id = next_id_++;
  Session s;
  s.xof = std::make_unique<keccak::Xof>(function);
  s.xof->absorb(message);
  s.owner = owner;
  sessions_.emplace(id, std::move(s));
  return id;
}

bool SessionTable::squeeze(u64 owner, u64 id, usize n, std::vector<u8>& out,
                           std::string& error) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.owner != owner) {
    error = strfmt("unknown session %llu", static_cast<unsigned long long>(id));
    return false;
  }
  const usize base = out.size();
  out.resize(base + n);
  it->second.xof->squeeze(std::span<u8>(out.data() + base, n));
  return true;
}

bool SessionTable::close(u64 owner, u64 id, std::string& error) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.owner != owner) {
    error = strfmt("unknown session %llu", static_cast<unsigned long long>(id));
    return false;
  }
  sessions_.erase(it);
  return true;
}

usize SessionTable::drop_owner(u64 owner) {
  usize dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.owner == owner) {
      it = sessions_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace kvx::net
