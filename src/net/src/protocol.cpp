#include "kvx/net/protocol.hpp"

#include "kvx/common/bits.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::net {

namespace {

/// Bounds-checked little-endian cursor over a payload. Every read method
/// fails (returns false) instead of running past the end, so decoders stay
/// total on arbitrary input.
class Reader {
 public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] usize remaining() const noexcept {
    return data_.size() - pos_;
  }

  bool read_u8(u8& out) noexcept {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }
  bool read_u16(u16& out) noexcept {
    if (remaining() < 2) return false;
    out = static_cast<u16>(static_cast<u16>(data_[pos_]) |
                           (static_cast<u16>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }
  bool read_u32(u32& out) noexcept {
    if (remaining() < 4) return false;
    out = load_le32(data_.subspan(pos_).first<4>());
    pos_ += 4;
    return true;
  }
  bool read_u64(u64& out) noexcept {
    if (remaining() < 8) return false;
    out = load_le64(data_.subspan(pos_).first<8>());
    pos_ += 8;
    return true;
  }
  bool read_bytes(usize n, std::vector<u8>& out) {
    if (remaining() < n) return false;
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  /// Everything not yet consumed (the trailing message field).
  void read_rest(std::vector<u8>& out) {
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
    pos_ = data_.size();
  }

 private:
  std::span<const u8> data_;
  usize pos_ = 0;
};

void put_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v & 0xFF));
  out.push_back(static_cast<u8>(v >> 8));
}
void put_u32(std::vector<u8>& out, u32 v) {
  for (usize i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
void put_u64(std::vector<u8>& out, u64 v) {
  for (usize i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

[[nodiscard]] bool valid_algo(u8 raw) noexcept {
  return raw <= static_cast<u8>(engine::Algo::kKmac256);
}

[[nodiscard]] std::optional<Request> fail(std::string& error,
                                          std::string text) {
  error = std::move(text);
  return std::nullopt;
}

}  // namespace

std::optional<Request> decode_request(std::span<const u8> payload,
                                      std::string& error) {
  error.clear();
  if (payload.size() > kMaxFramePayload) {
    return fail(error, strfmt("payload of %zu bytes exceeds the %zu-byte cap",
                              payload.size(), kMaxFramePayload));
  }
  Reader r(payload);
  Request req;
  u8 op = 0;
  if (!r.read_u64(req.id) || !r.read_u8(op)) {
    return fail(error, strfmt("payload of %zu bytes is shorter than the "
                              "%zu-byte request header",
                              payload.size(), kHeaderBytes));
  }
  if (op < static_cast<u8>(Opcode::kHash) ||
      op > static_cast<u8>(Opcode::kPing)) {
    return fail(error, strfmt("unknown opcode %u", unsigned{op}));
  }
  req.op = static_cast<Opcode>(op);

  switch (req.op) {
    case Opcode::kHash: {
      u8 algo = 0;
      u16 key_len = 0;
      u16 cust_len = 0;
      if (!r.read_u8(algo) || !r.read_u32(req.out_len) ||
          !r.read_u16(key_len) || !r.read_u16(cust_len)) {
        return fail(error, "truncated HASH header");
      }
      if (!valid_algo(algo)) {
        return fail(error, strfmt("unknown algorithm %u", unsigned{algo}));
      }
      req.algo = static_cast<engine::Algo>(algo);
      if (req.out_len > kMaxOutputLen) {
        return fail(error, strfmt("out_len %u exceeds the %zu-byte cap",
                                  req.out_len, kMaxOutputLen));
      }
      if (!r.read_bytes(key_len, req.key) ||
          !r.read_bytes(cust_len, req.customization)) {
        return fail(error,
                    strfmt("declared key/customization of %u+%u bytes "
                           "overruns the %zu-byte payload",
                           unsigned{key_len}, unsigned{cust_len},
                           payload.size()));
      }
      r.read_rest(req.message);
      return req;
    }
    case Opcode::kOpenSession: {
      u8 algo = 0;
      if (!r.read_u8(algo)) return fail(error, "truncated OPEN_SESSION header");
      if (!valid_algo(algo)) {
        return fail(error, strfmt("unknown algorithm %u", unsigned{algo}));
      }
      req.algo = static_cast<engine::Algo>(algo);
      if (!session_capable(req.algo)) {
        return fail(error,
                    strfmt("%s cannot stream: sessions are SHAKE128/SHAKE256 "
                           "only",
                           std::string(engine::algo_name(req.algo)).c_str()));
      }
      r.read_rest(req.message);
      return req;
    }
    case Opcode::kSqueeze: {
      if (!r.read_u64(req.session_id) || !r.read_u32(req.squeeze_len)) {
        return fail(error, "truncated SQUEEZE body");
      }
      if (req.squeeze_len == 0 || req.squeeze_len > kMaxOutputLen) {
        return fail(error, strfmt("squeeze length %u outside [1, %zu]",
                                  req.squeeze_len, kMaxOutputLen));
      }
      if (r.remaining() != 0) return fail(error, "trailing bytes after SQUEEZE");
      return req;
    }
    case Opcode::kCloseSession: {
      if (!r.read_u64(req.session_id)) {
        return fail(error, "truncated CLOSE_SESSION body");
      }
      if (r.remaining() != 0) {
        return fail(error, "trailing bytes after CLOSE_SESSION");
      }
      return req;
    }
    case Opcode::kPing: {
      if (r.remaining() != 0) return fail(error, "trailing bytes after PING");
      return req;
    }
  }
  return fail(error, strfmt("unknown opcode %u", unsigned{op}));
}

std::vector<u8> encode_request(const Request& req) {
  std::vector<u8> out;
  put_u64(out, req.id);
  out.push_back(static_cast<u8>(req.op));
  switch (req.op) {
    case Opcode::kHash:
      out.push_back(static_cast<u8>(req.algo));
      put_u32(out, req.out_len);
      put_u16(out, static_cast<u16>(req.key.size()));
      put_u16(out, static_cast<u16>(req.customization.size()));
      out.insert(out.end(), req.key.begin(), req.key.end());
      out.insert(out.end(), req.customization.begin(),
                 req.customization.end());
      out.insert(out.end(), req.message.begin(), req.message.end());
      break;
    case Opcode::kOpenSession:
      out.push_back(static_cast<u8>(req.algo));
      out.insert(out.end(), req.message.begin(), req.message.end());
      break;
    case Opcode::kSqueeze:
      put_u64(out, req.session_id);
      put_u32(out, req.squeeze_len);
      break;
    case Opcode::kCloseSession:
      put_u64(out, req.session_id);
      break;
    case Opcode::kPing:
      break;
  }
  return out;
}

std::optional<Response> decode_response(std::span<const u8> payload,
                                        std::string& error) {
  error.clear();
  if (payload.size() > kMaxFramePayload) {
    error = strfmt("payload of %zu bytes exceeds the %zu-byte cap",
                   payload.size(), kMaxFramePayload);
    return std::nullopt;
  }
  Reader r(payload);
  Response resp;
  u8 status = 0;
  if (!r.read_u64(resp.id) || !r.read_u8(status)) {
    error = strfmt("payload of %zu bytes is shorter than the %zu-byte "
                   "response header",
                   payload.size(), kHeaderBytes);
    return std::nullopt;
  }
  if (status > static_cast<u8>(Status::kFailed)) {
    error = strfmt("unknown status %u", unsigned{status});
    return std::nullopt;
  }
  resp.status = static_cast<Status>(status);
  r.read_rest(resp.body);
  return resp;
}

std::vector<u8> encode_response_ok(u64 id, std::span<const u8> body) {
  std::vector<u8> out;
  out.reserve(kHeaderBytes + body.size());
  put_u64(out, id);
  out.push_back(static_cast<u8>(Status::kOk));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<u8> encode_response_error(u64 id, Status status,
                                      std::string_view text) {
  std::vector<u8> out;
  out.reserve(kHeaderBytes + text.size());
  put_u64(out, id);
  out.push_back(static_cast<u8>(status));
  out.insert(out.end(), text.begin(), text.end());
  return out;
}

std::string render_failure(const engine::JobResult& result) {
  std::string text = result.error;
  if (!result.demotion_path.empty()) {
    text += " | demotion path: ";
    bool first = true;
    for (const engine::TierAttempt& tier : result.demotion_path) {
      if (!first) text += " -> ";
      first = false;
      text += tier.backend;
      if (!tier.error.empty()) {
        text += tier.injected ? " (injected: " : " (";
        text += tier.error + ")";
      }
    }
  }
  return text;
}

}  // namespace kvx::net
