#include "kvx/net/http.hpp"

#include "kvx/common/strings.hpp"

namespace kvx::net {

bool looks_like_http(std::span<const u8> data) noexcept {
  if (data.size() < 4) return false;
  const char* p = reinterpret_cast<const char*>(data.data());
  return std::string_view(p, 4) == "GET " ||
         std::string_view(p, 4) == "HEAD";
}

bool parse_http_request(std::string_view data, HttpRequest& out) {
  const usize head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return false;
  out.method.clear();
  out.path.clear();
  const usize line_end = data.find("\r\n");
  const std::string_view line = data.substr(0, line_end);
  const usize sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return true;  // malformed -> 400
  const usize sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return true;
  out.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const usize query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  out.path = std::string(target);
  return true;
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string head = strfmt(
      "HTTP/1.1 %d %.*s\r\n"
      "Content-Type: %.*s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status, static_cast<int>(reason.size()), reason.data(),
      static_cast<int>(content_type.size()), content_type.data(),
      body.size());
  head.append(body);
  return head;
}

}  // namespace kvx::net
