#include "kvx/net/frame.hpp"

#include "kvx/common/bits.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::net {

void append_frame(std::vector<u8>& out, std::span<const u8> payload) {
  const usize base = out.size();
  out.resize(base + 4);
  store_le32(std::span<u8, 4>(out.data() + base, 4),
             static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool FrameReader::peek_len(u32& len) const noexcept {
  if (buffer_.size() < 4) return false;
  len = load_le32(std::span<const u8, 4>(buffer_.data(), 4));
  return true;
}

bool FrameReader::check_header() {
  u32 len = 0;
  if (!peek_len(len)) return true;  // header still partial — nothing to judge
  if (len > max_payload_) {
    error_ = strfmt("declared frame payload of %u bytes exceeds the "
                    "%zu-byte cap",
                    len, max_payload_);
    buffer_.clear();
    buffer_.shrink_to_fit();
    return false;
  }
  return true;
}

bool FrameReader::feed(std::span<const u8> data) {
  if (poisoned()) return false;
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  return check_header();
}

bool FrameReader::has_frame() const noexcept {
  u32 len = 0;
  if (poisoned() || !peek_len(len)) return false;
  return len <= max_payload_ && buffer_.size() >= 4 + static_cast<usize>(len);
}

bool FrameReader::next(std::vector<u8>& out) {
  if (!has_frame()) return false;
  u32 len = 0;
  if (!peek_len(len)) return false;  // unreachable: has_frame() checked
  const auto begin = buffer_.begin() + 4;
  const auto end = begin + static_cast<std::ptrdiff_t>(len);
  out.assign(begin, end);
  buffer_.erase(buffer_.begin(), end);
  // The next frame's header is now at the front; an oversized one poisons
  // the reader here, before its payload is ever buffered.
  check_header();
  return true;
}

}  // namespace kvx::net
