#include "kvx/net/server.hpp"

#include <cerrno>
#include <cstring>
#include <iterator>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/net/backpressure.hpp"
#include "kvx/net/frame.hpp"
#include "kvx/net/http.hpp"
#include "kvx/net/session.hpp"
#include "kvx/obs/metrics.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace kvx::net {

#if defined(__linux__)

namespace {

/// epoll user-data ids for the three non-connection fds; connection ids
/// start above so the dispatcher can tell them apart.
constexpr u64 kListenTag = 0;
constexpr u64 kStopTag = 1;
constexpr u64 kEngineTag = 2;
constexpr u64 kFirstConnId = 16;

[[noreturn]] void throw_errno(const char* what) {
  throw Error(strfmt("%s: %s", what, std::strerror(errno)));
}

}  // namespace

struct HashServer::Impl {
  enum class Mode { kUnknown, kBinary, kHttp };

  struct Conn {
    int fd = -1;
    u64 id = 0;
    Mode mode = Mode::kUnknown;
    /// Bytes buffered before the mode is known (needs 4 to decide).
    std::vector<u8> head;
    FrameReader reader;          ///< binary mode
    std::string http_buf;        ///< http mode
    std::vector<u8> out;         ///< pending egress bytes
    usize out_pos = 0;           ///< already-sent prefix of `out`
    u64 inflight = 0;            ///< engine jobs awaiting results
    bool want_close = false;     ///< close once out + inflight drain
    bool epollin = true;         ///< EPOLLIN currently in the interest set
    bool epollout = false;       ///< EPOLLOUT currently in the interest set

    explicit Conn(usize max_frame) : reader(max_frame) {}
  };

  /// Engine seq -> the connection/request the response must route to.
  struct Pending {
    u64 conn_id = 0;
    u64 request_id = 0;
  };

  ServerConfig cfg;
  engine::BatchHashEngine eng;
  SessionTable sessions;
  BackpressureGovernor governor;
  ServerCounters counters;

  int listen_fd = -1;
  int epoll_fd = -1;
  int stop_fd = -1;
  int engine_fd = -1;
  u16 bound_port = 0;
  u64 next_conn_id = kFirstConnId;
  u64 next_result_seq = 0;  ///< seq of the next result try_drain_ready yields
  std::unordered_map<u64, std::unique_ptr<Conn>> conns;
  std::unordered_map<u64, Pending> pending;
  std::vector<engine::JobResult> drained;  ///< reused drain buffer
  bool running = false;

  obs::Gauge* conn_gauge = nullptr;
  obs::Gauge* sess_gauge = nullptr;
  obs::Counter* bp_counter = nullptr;
  obs::Counter* req_counter = nullptr;

  static BackpressureGovernor make_governor(const ServerConfig& c) {
    usize high = c.high_watermark;
    if (high == 0) {
      high = c.engine.max_queue != 0 ? (c.engine.max_queue * 3) / 4 : 1024;
    }
    if (c.engine.max_queue != 0 && high >= c.engine.max_queue) {
      // The loop thread must never block in submit(); keep the engage
      // point strictly below the engine's blocking bound.
      high = c.engine.max_queue - 1;
    }
    if (high < 2) high = 2;
    usize low = c.low_watermark != 0 ? c.low_watermark : high / 2;
    if (low >= high) low = high - 1;
    return BackpressureGovernor(high, low);
  }

  explicit Impl(const ServerConfig& config)
      : cfg(config),
        eng(config.engine),
        sessions(config.max_sessions),
        governor(make_governor(config)) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    conn_gauge = &reg.gauge("kvx_server_connections",
                            "Live client connections (binary + http).");
    sess_gauge = &reg.gauge("kvx_server_sessions",
                            "Live streaming XOF sessions.");
    bp_counter = &reg.counter(
        "kvx_server_backpressure_events_total",
        "Socket backpressure engagements (engine queue hit the high "
        "watermark).");
    req_counter = &reg.counter("kvx_server_requests_total",
                               "Binary protocol requests decoded.");

    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) throw_errno("socket");
    try {
      const int one = 1;
      (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(cfg.port);
      if (::inet_pton(AF_INET, cfg.bind_addr.c_str(), &addr.sin_addr) != 1) {
        throw Error(strfmt("invalid bind address '%s'",
                           cfg.bind_addr.c_str()));
      }
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof addr) != 0) {
        throw_errno("bind");
      }
      if (::listen(listen_fd, cfg.listen_backlog) != 0) throw_errno("listen");
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                        &len) != 0) {
        throw_errno("getsockname");
      }
      bound_port = ntohs(bound.sin_port);

      epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (epoll_fd < 0) throw_errno("epoll_create1");
      stop_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (stop_fd < 0) throw_errno("eventfd");
      engine_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (engine_fd < 0) throw_errno("eventfd");

      epoll_add(listen_fd, kListenTag, EPOLLIN);
      epoll_add(stop_fd, kStopTag, EPOLLIN);
      epoll_add(engine_fd, kEngineTag, EPOLLIN);
      eng.set_notify_fd(engine_fd);
    } catch (...) {
      close_fds();
      throw;
    }
  }

  ~Impl() {
    // Workers may still be retiring; detach the notify fd before the fd
    // dies so notify_retire() never writes to a recycled descriptor.
    eng.set_notify_fd(-1);
    eng.close();
    for (auto& [id, conn] : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns.clear();
    close_fds();
  }

  void close_fds() noexcept {
    eng.set_notify_fd(-1);
    if (listen_fd >= 0) ::close(listen_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (stop_fd >= 0) ::close(stop_fd);
    if (engine_fd >= 0) ::close(engine_fd);
    listen_fd = epoll_fd = stop_fd = engine_fd = -1;
  }

  void epoll_add(int fd, u64 tag, u32 events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }

  void update_interest(Conn& conn) noexcept {
    epoll_event ev{};
    ev.events = (conn.epollin ? EPOLLIN : 0u) |
                (conn.epollout ? EPOLLOUT : 0u) | EPOLLRDHUP;
    ev.data.u64 = conn.id;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  // --- Connection lifecycle -------------------------------------------------

  void accept_ready() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // EMFILE etc. — shed the connection, keep serving
      }
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const u64 id = next_conn_id++;
      auto conn = std::make_unique<Conn>(cfg.max_frame);
      conn->fd = fd;
      conn->id = id;
      // New connections always read: the mode is still unknown and the
      // admin plane (HTTP) must stay reachable under backpressure. Ones
      // that turn out binary are muted the moment the mode resolves
      // (ingest()), before any of their frames are processed.
      epoll_add(fd, id, EPOLLIN | EPOLLRDHUP);
      conns.emplace(id, std::move(conn));
      counters.accepted += 1;
      conn_gauge->set(static_cast<double>(conns.size()));
    }
  }

  void close_conn(u64 id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    ::close(it->second->fd);
    const usize dropped = sessions.drop_owner(id);
    if (dropped != 0) sess_gauge->set(static_cast<double>(sessions.size()));
    conns.erase(it);
    counters.closed += 1;
    conn_gauge->set(static_cast<double>(conns.size()));
    // In-flight jobs for this conn stay in `pending`; their results are
    // discarded on arrival (the routing entry outlives the socket).
  }

  // --- Egress ---------------------------------------------------------------

  /// Send as much of conn.out as the socket accepts; arms EPOLLOUT for the
  /// remainder. Returns false when the conn died (write error).
  bool flush_writes(u64 id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return false;
    Conn& conn = *it->second;
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                               conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_conn(id);
        return false;
      }
      conn.out_pos += static_cast<usize>(n);
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
      if (conn.epollout) {
        conn.epollout = false;
        update_interest(conn);
      }
      if (conn.want_close && conn.inflight == 0) {
        close_conn(id);
        return false;
      }
    } else if (!conn.epollout) {
      conn.epollout = true;
      update_interest(conn);
    }
    return true;
  }

  void queue_response(Conn& conn, std::span<const u8> payload) {
    append_frame(conn.out, payload);
    counters.responses += 1;
  }

  // --- Binary protocol ------------------------------------------------------

  /// Handle one decoded-or-not request payload. Returns false when the
  /// connection was closed.
  bool handle_request(u64 conn_id, const std::vector<u8>& payload) {
    const auto it = conns.find(conn_id);
    if (it == conns.end()) return false;
    Conn& conn = *it->second;
    counters.requests += 1;
    req_counter->inc();

    std::string error;
    std::optional<Request> req = decode_request(payload, error);
    if (!req) {
      // Framing is intact, so the stream stays parseable: answer and keep
      // the connection. Best-effort request id (present when >= 8 bytes).
      u64 id = 0;
      if (payload.size() >= 8) {
        id = load_le64(std::span<const u8, 8>(payload.data(), 8));
      }
      counters.bad_requests += 1;
      queue_response(conn,
                     encode_response_error(id, Status::kBadRequest, error));
      return true;
    }

    switch (req->op) {
      case Opcode::kPing: {
        queue_response(conn, encode_response_ok(req->id, {}));
        return true;
      }
      case Opcode::kOpenSession: {
        const u64 sid = sessions.open(conn_id,
                                      engine::base_function(req->algo),
                                      req->message, error);
        if (sid == 0) {
          counters.bad_requests += 1;
          queue_response(
              conn, encode_response_error(req->id, Status::kBadRequest,
                                          error));
          return true;
        }
        sess_gauge->set(static_cast<double>(sessions.size()));
        u8 body[8];
        store_le64(std::span<u8, 8>(body, 8), sid);
        queue_response(conn, encode_response_ok(req->id, body));
        return true;
      }
      case Opcode::kSqueeze: {
        std::vector<u8> body;
        if (!sessions.squeeze(conn_id, req->session_id, req->squeeze_len,
                              body, error)) {
          counters.bad_requests += 1;
          queue_response(
              conn, encode_response_error(req->id, Status::kBadRequest,
                                          error));
          return true;
        }
        queue_response(conn, encode_response_ok(req->id, body));
        return true;
      }
      case Opcode::kCloseSession: {
        if (!sessions.close(conn_id, req->session_id, error)) {
          counters.bad_requests += 1;
          queue_response(
              conn, encode_response_error(req->id, Status::kBadRequest,
                                          error));
          return true;
        }
        sess_gauge->set(static_cast<double>(sessions.size()));
        queue_response(conn, encode_response_ok(req->id, {}));
        return true;
      }
      case Opcode::kHash: {
        engine::HashJob job;
        job.algo = req->algo;
        job.out_len = req->out_len;
        job.message = std::move(req->message);
        job.key = std::move(req->key);
        job.customization = std::move(req->customization);
        // Never blocks: the governor engages strictly below max_queue, so
        // there is always ring headroom when the loop thread gets here.
        // Malformed jobs (bad out_len, key on a non-KMAC algo) retire
        // immediately as per-job failures and come back via the normal
        // result path.
        const u64 seq = eng.submit(std::move(job));
        pending.emplace(seq, Pending{conn_id, req->id});
        conn.inflight += 1;
        return true;
      }
    }
    return true;
  }

  /// Drain complete frames from a binary connection, respecting
  /// backpressure between frames. Returns false when the conn died.
  bool process_frames(u64 conn_id) {
    std::vector<u8> payload;
    for (;;) {
      if (governor.engaged()) return true;  // frames stay buffered
      const auto it = conns.find(conn_id);
      if (it == conns.end()) return false;
      Conn& conn = *it->second;
      if (!conn.reader.next(payload)) {
        if (conn.reader.poisoned()) {
          counters.protocol_errors += 1;
          close_conn(conn_id);
          return false;
        }
        return true;
      }
      if (!handle_request(conn_id, payload)) return false;
      if (governor.update(eng.queue_depth())) on_backpressure_change();
    }
  }

  // --- HTTP admin plane -----------------------------------------------------

  void handle_http(u64 conn_id) {
    const auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    Conn& conn = *it->second;
    HttpRequest req;
    if (!parse_http_request(conn.http_buf, req)) {
      if (conn.http_buf.size() > usize{64} * 1024) {
        counters.protocol_errors += 1;
        close_conn(conn_id);
      }
      return;  // head incomplete — keep reading
    }
    counters.http_requests += 1;
    std::string response;
    if (req.method != "GET") {
      response = http_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n");
    } else if (req.path == "/metrics") {
      response = http_response(
          200, "OK", "text/plain; version=0.0.4",
          obs::MetricsRegistry::global().to_prometheus());
    } else if (req.path == "/healthz") {
      const engine::EngineStats st = eng.stats();
      const bool ok = st.submitted >= st.completed + st.failed;
      const std::string body = strfmt(
          "%s submitted=%llu completed=%llu failed=%llu in_flight=%llu "
          "sessions=%zu backpressure=%s\n",
          ok ? "ok" : "UNHEALTHY",
          static_cast<unsigned long long>(st.submitted),
          static_cast<unsigned long long>(st.completed),
          static_cast<unsigned long long>(st.failed),
          static_cast<unsigned long long>(eng.in_flight()), sessions.size(),
          governor.engaged() ? "engaged" : "idle");
      response = http_response(ok ? 200 : 503,
                               ok ? "OK" : "Service Unavailable",
                               "text/plain", body);
    } else {
      response = http_response(404, "Not Found", "text/plain",
                               "not found (try /metrics or /healthz)\n");
    }
    conn.out.insert(conn.out.end(), response.begin(), response.end());
    conn.want_close = true;
    conn.epollin = false;
    update_interest(conn);
    flush_writes(conn_id);
  }

  // --- Ingress --------------------------------------------------------------

  void conn_readable(u64 conn_id) {
    u8 buf[64 * 1024];
    for (;;) {
      const auto it = conns.find(conn_id);
      if (it == conns.end()) return;
      Conn& conn = *it->second;
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_conn(conn_id);
        return;
      }
      if (n == 0) {  // orderly peer shutdown
        close_conn(conn_id);
        return;
      }
      const std::span<const u8> data(buf, static_cast<usize>(n));
      if (!ingest(conn, data)) return;
      if (static_cast<usize>(n) < sizeof buf) break;  // drained the socket
    }
    const auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    if (it->second->mode == Mode::kBinary) {
      if (!process_frames(conn_id)) return;
      flush_writes(conn_id);
    } else if (it->second->mode == Mode::kHttp) {
      handle_http(conn_id);
    }
  }

  /// Route freshly-read bytes by mode (deciding it on the first 4 bytes).
  /// Returns false when the connection was closed.
  bool ingest(Conn& conn, std::span<const u8> data) {
    if (conn.mode == Mode::kUnknown) {
      conn.head.insert(conn.head.end(), data.begin(), data.end());
      if (conn.head.size() < 4) return true;  // can't decide yet
      conn.mode = looks_like_http(conn.head) ? Mode::kHttp : Mode::kBinary;
      const std::vector<u8> head = std::move(conn.head);
      conn.head.clear();
      if (conn.mode == Mode::kHttp) {
        conn.http_buf.append(reinterpret_cast<const char*>(head.data()),
                             head.size());
        return true;
      }
      if (governor.engaged() && conn.epollin) {
        // Resolved to binary while backpressure is on: mute it like the
        // rest of the data plane (release restores EPOLLIN).
        conn.epollin = false;
        update_interest(conn);
      }
      if (!conn.reader.feed(head)) {
        counters.protocol_errors += 1;
        close_conn(conn.id);
        return false;
      }
      return true;
    }
    if (conn.mode == Mode::kHttp) {
      conn.http_buf.append(reinterpret_cast<const char*>(data.data()),
                           data.size());
      return true;
    }
    if (!conn.reader.feed(data)) {
      counters.protocol_errors += 1;
      close_conn(conn.id);
      return false;
    }
    return true;
  }

  // --- Engine completions ---------------------------------------------------

  void engine_ready() {
    u64 clear = 0;
    // Coalesced edge: one read clears however many retirements fired.
    (void)!::read(engine_fd, &clear, sizeof clear);
    drained.clear();
    eng.try_drain_ready(drained);
    for (engine::JobResult& r : drained) {
      const u64 seq = next_result_seq++;
      const auto pit = pending.find(seq);
      if (pit == pending.end()) continue;  // job from a direct submit (none)
      const Pending route = pit->second;
      pending.erase(pit);
      const auto cit = conns.find(route.conn_id);
      if (cit == conns.end()) continue;  // client left; drop the result
      Conn& conn = *cit->second;
      conn.inflight -= 1;
      if (r.ok()) {
        queue_response(conn,
                       encode_response_ok(route.request_id, r.digest));
      } else {
        counters.engine_failures += 1;
        queue_response(conn,
                       encode_response_error(route.request_id,
                                             Status::kFailed,
                                             render_failure(r)));
      }
      flush_writes(route.conn_id);
    }
    if (governor.update(eng.queue_depth())) on_backpressure_change();
  }

  // --- Backpressure ---------------------------------------------------------

  void on_backpressure_change() {
    if (governor.engaged()) {
      counters.backpressure_engagements += 1;
      bp_counter->inc();
      for (auto& [id, conn] : conns) {
        // kUnknown conns keep reading: they may be an admin-plane curl,
        // and they are muted on resolving to binary anyway.
        if (conn->mode == Mode::kBinary && conn->epollin) {
          conn->epollin = false;
          update_interest(*conn);
        }
      }
      return;
    }
    // Released: restore EPOLLIN, then work through frames that piled up in
    // the readers while the sockets were muted. Re-engagement mid-sweep
    // stops the sweep (process_frames checks the governor per frame).
    std::vector<u64> ids;
    ids.reserve(conns.size());
    for (auto& [id, conn] : conns) {
      if (conn->mode == Mode::kBinary && !conn->want_close &&
          !conn->epollin) {
        conn->epollin = true;
        update_interest(*conn);
      }
      ids.push_back(id);
    }
    for (const u64 id : ids) {
      if (governor.engaged()) break;
      const auto it = conns.find(id);
      if (it == conns.end() || it->second->mode != Mode::kBinary) continue;
      if (process_frames(id)) flush_writes(id);
    }
  }

  // --- Event loop -----------------------------------------------------------

  void run() {
    KVX_CHECK(!running);
    running = true;
    epoll_event events[128];
    for (;;) {
      const int n = ::epoll_wait(epoll_fd, events,
                                 static_cast<int>(std::size(events)), -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("epoll_wait");
      }
      for (int i = 0; i < n; ++i) {
        const u64 tag = events[i].data.u64;
        const u32 ev = events[i].events;
        if (tag == kStopTag) {
          running = false;
          continue;
        }
        if (tag == kListenTag) {
          accept_ready();
          continue;
        }
        if (tag == kEngineTag) {
          engine_ready();
          continue;
        }
        // Connection event. The conn may have been closed by an earlier
        // event in this batch; stale tags just miss the map.
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(tag);
          continue;
        }
        if ((ev & EPOLLOUT) != 0 && !flush_writes(tag)) continue;
        if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) conn_readable(tag);
      }
      if (!running) break;
    }
    // Graceful exit: stop intake, let queued jobs finish retiring (the
    // engine drains on close+destruct), answer nothing further.
  }

  void stop() noexcept {
    const u64 one = 1;
    (void)!::write(stop_fd, &one, sizeof one);
  }
};

HashServer::HashServer(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

HashServer::~HashServer() = default;

u16 HashServer::port() const noexcept { return impl_->bound_port; }

void HashServer::run() { impl_->run(); }

void HashServer::stop() noexcept { impl_->stop(); }

engine::BatchHashEngine& HashServer::engine() noexcept { return impl_->eng; }

const ServerCounters& HashServer::counters() const noexcept {
  return impl_->counters;
}

usize HashServer::connections() const noexcept { return impl_->conns.size(); }

#else  // !__linux__

struct HashServer::Impl {};

HashServer::HashServer(const ServerConfig&) {
  throw Error("HashServer requires Linux (epoll/eventfd)");
}
HashServer::~HashServer() = default;
u16 HashServer::port() const noexcept { return 0; }
void HashServer::run() {}
void HashServer::stop() noexcept {}
engine::BatchHashEngine& HashServer::engine() noexcept {
  __builtin_unreachable();
}
const ServerCounters& HashServer::counters() const noexcept {
  static ServerCounters c;
  return c;
}
usize HashServer::connections() const noexcept { return 0; }

#endif

}  // namespace kvx::net
