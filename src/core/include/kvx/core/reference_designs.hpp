// Published figures of the related-work designs the paper compares against
// (Tables 7 and 8). These are quoted constants — the paper itself compares
// against the numbers reported by the respective authors, not against
// re-implementations.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "kvx/common/types.hpp"

namespace kvx::core {

struct ReferenceDesign {
  std::string_view name;
  std::string_view citation;    ///< paper reference tag
  unsigned arch_bits;           ///< 32 or 64
  std::optional<double> cycles_per_round;
  std::optional<double> cycles_per_byte;
  double throughput_e3;         ///< (bits/cycle) × 10³
  std::optional<unsigned> area_slices;  ///< nullopt: simulation only
};

/// Rawat & Schaumont, vector ISE in GEM5 (64-bit comparison of Table 7).
[[nodiscard]] const ReferenceDesign& rawat_vector_ise() noexcept;

/// The five 32-bit rows of Table 8 that are not ours.
[[nodiscard]] std::span<const ReferenceDesign> table8_references() noexcept;

/// The paper's measured Ibex C-code baseline row (PQ-M4 Keccak on Ibex).
[[nodiscard]] const ReferenceDesign& paper_ibex_ccode() noexcept;

}  // namespace kvx::core
