// Performance metrics used in the paper's Tables 7 and 8.
#pragma once

#include "kvx/common/types.hpp"

namespace kvx::core {

/// Bytes of one Keccak-f[1600] state (the tables' cycles/byte denominator:
/// "cycles per message byte in one Keccak state" over the full permutation).
inline constexpr double kStateBytes = 200.0;
inline constexpr double kStateBits = 1600.0;

/// cycles/byte for a full permutation latency (one state's 200 bytes).
[[nodiscard]] constexpr double cycles_per_byte(u64 permutation_cycles) noexcept {
  return static_cast<double>(permutation_cycles) / kStateBytes;
}

/// Throughput in (bits/cycle) × 10³ as reported by the paper: `sn` states of
/// 1600 bits complete every `permutation_cycles` cycles.
[[nodiscard]] constexpr double throughput_e3(u64 permutation_cycles,
                                             unsigned sn) noexcept {
  return kStateBits * static_cast<double>(sn) /
         static_cast<double>(permutation_cycles) * 1000.0;
}

/// Throughput in bits/s at a clock frequency (paper implements at 100 MHz).
[[nodiscard]] constexpr double throughput_bps(u64 permutation_cycles,
                                              unsigned sn,
                                              double clock_hz) noexcept {
  return kStateBits * static_cast<double>(sn) /
         static_cast<double>(permutation_cycles) * clock_hz;
}

}  // namespace kvx::core
