// Analytical FPGA area model (slices on a Xilinx Alveo U250).
//
// The paper reports post-implementation slice counts from Vivado 2020.1 for
// seven design points: the bare Ibex core and the SIMD processor at
// ELEN ∈ {64, 32} × EleNum ∈ {5, 15, 30}. We do not have the authors'
// SystemVerilog or a Vivado flow, so — per the substitution policy in
// DESIGN.md — area is produced by a model calibrated to those published
// points: for each ELEN a quadratic in EleNum through the three published
// sizes (the mild sub-linearity reflects LUT packing improving as the lane
// array grows). The model reproduces the paper's points exactly and is used
// only for the relative comparisons the paper makes (×6.3, ×31.5, ×111.2).
#pragma once

#include "kvx/common/types.hpp"

namespace kvx::core {

class AreaModel {
 public:
  /// Slices of the bare Ibex scalar core (paper Table 8, "Ibex core" row).
  [[nodiscard]] static unsigned scalar_core_slices() noexcept { return 432; }

  /// Slices of the full SIMD processor for a given ELEN (32/64) and EleNum.
  /// Calibrated to the paper's published points; interpolates/extrapolates
  /// elsewhere (clamped to be monotonically increasing in EleNum).
  [[nodiscard]] static unsigned simd_processor_slices(unsigned elen_bits,
                                                      unsigned ele_num);

  /// Rough per-component breakdown at a design point (documentation aid:
  /// fractions follow the paper's §4.2 discussion that the 32-bit design
  /// spends more on rotation networks and the 64-bit one on datapath and
  /// register file).
  struct Breakdown {
    unsigned scalar_core;
    unsigned vector_regfile;
    unsigned lane_datapath;
    unsigned rotation_network;
    unsigned control;
  };
  [[nodiscard]] static Breakdown breakdown(unsigned elen_bits, unsigned ele_num);
};

}  // namespace kvx::core
