// Builders for the Keccak-f[1600] assembly programs of the paper.
//
// Four program variants are generated:
//  * Arch::k64Lmul1 — the paper's Algorithm 2: 64-bit architecture, every
//    vector instruction operates on one register (LMUL = 1);
//  * Arch::k64Lmul8 — Algorithm 3: ρ/π/χ run over all five planes under a
//    single instruction (LMUL = 8, VL = 5·EleNum);
//  * Arch::k32Lmul8 — the 32-bit architecture (§3.2): lanes split into
//    hi/lo 32-bit words in separate registers, paired rotation
//    instructions, indexed loads/stores for the hi/lo exchange;
//  * Arch::k64PureRvv — ablation: the same permutation written with ONLY
//    standard RVV 1.0 instructions (vrgather for slides, vsll/vsrl/vor for
//    rotations, memory round-trips for π, a staged RC row for ι) — what a
//    programmer must do without the paper's custom extensions.
//
// The generated source is human-readable assembly (dumpable by examples)
// and is assembled into a Program image on construction.
#pragma once

#include <string>

#include "kvx/asm/assembler.hpp"

namespace kvx::core {

enum class Arch {
  k64Lmul1,
  k64Lmul8,
  k32Lmul8,
  k64PureRvv,
  /// The paper's §5 future-work direction: coarser-grained fused
  /// instructions (vthetac, vrhopi, vchi) on top of the LMUL=8 layout.
  k64Fused,
  /// The alternative the paper's §4.1 rejects: group four planes at
  /// LMUL=4 and handle the fifth at LMUL=1, "configuring the LMUL value
  /// in an alternating way". Implemented to quantify the rejection.
  k64Lmul4Plus1,
};

/// Human-readable name of an architecture variant.
[[nodiscard]] std::string_view arch_name(Arch arch) noexcept;

/// ELEN (bits) of a variant.
[[nodiscard]] constexpr unsigned arch_elen(Arch arch) noexcept {
  return arch == Arch::k32Lmul8 ? 32u : 64u;
}

struct ProgramOptions {
  Arch arch = Arch::k64Lmul1;
  unsigned ele_num = 5;   ///< elements per vector register
  unsigned rounds = 24;   ///< permutation rounds
  bool single_round = false;  ///< emit one un-looped round between the round
                              ///< markers (exact round-latency measurement)
  unsigned absorb_blocks = 0; ///< >0: emit an on-device sponge program that
                              ///< XORs this many staged message blocks into
                              ///< the state (one permutation after each)
                              ///< without leaving the register file
                              ///< (64-bit architectures only)
  unsigned first_round = 0;  ///< starting iota round-constant index: 0 for
                             ///< the paper's reduced-round convention,
                             ///< 24 − rounds for the FIPS 202 Keccak-p
                             ///< convention (TurboSHAKE runs rounds 12..23)
};

/// Marker ids the generated programs emit via the marker CSR.
///
/// Every round body — looped or single_round — is bracketed by
/// kRoundStart/kRoundEnd and emits the step boundaries (markers cost zero
/// cycles, see the cycle model): θ spans kRoundStart..kStepRho, ρ spans
/// kStepRho..kStepPi, and so on; ι ends at kRoundEnd. Loop-mode programs
/// additionally bracket the whole permutation (kPermStart..kPermEnd), so
/// the inter-round loop control is the kRoundEnd..kRoundStart gap. The
/// observability layer folds these into obs::StepCycleStats
/// (kvx/core/step_attribution.hpp).
struct Markers {
  static constexpr u32 kPermStart = 1;  ///< before the first round
  static constexpr u32 kPermEnd = 2;    ///< after the last round
  static constexpr u32 kRoundStart = 3; ///< before each round body
  static constexpr u32 kRoundEnd = 4;   ///< after each round body
  static constexpr u32 kStepRho = 11;
  static constexpr u32 kStepPi = 12;
  static constexpr u32 kStepChi = 13;
  static constexpr u32 kStepIota = 14;
  /// absorb-mode programs: start of each block's absorb phase.
  static constexpr u32 kAbsorb = 5;
};

/// A generated Keccak program: source text plus the assembled image.
/// Data-section symbols:
///   "state"   — 5 rows × EleNum lanes of 8 bytes (plane-major; the 32-bit
///               architecture uses the same 64-bit-lane layout and performs
///               the hi/lo split with indexed addressing, as in §3.2)
///   "idx_lo"/"idx_hi" — (32-bit arch) index tables for the hi/lo exchange
///   "scratch" / "idx_pi" / "rc_rows" — (pure-RVV arch) π round-trip area,
///               π scatter indices and staged ι rows
struct KeccakProgram {
  ProgramOptions options;
  std::string source;
  assembler::Program image;

  /// Byte offset of lane (x, y) of state `s` inside the "state" region.
  [[nodiscard]] u32 lane_offset(unsigned s, unsigned x, unsigned y) const {
    return (y * options.ele_num + 5 * s + x) * 8;
  }
};

/// Build (and assemble) a Keccak program.
[[nodiscard]] KeccakProgram build_keccak_program(const ProgramOptions& options);

}  // namespace kvx::core
