// VectorKeccak — the paper's HW/SW co-design, wrapped as a library.
//
// Owns a simulated SIMD processor configured for one of the architecture
// variants, the generated Keccak assembly program, and the data-staging
// logic. `permute()` runs up to SN Keccak-f[1600] permutations in parallel
// on the simulated accelerator; the measurement helpers reproduce the
// paper's cycles/round and cycles/permutation numbers.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "kvx/core/program_builder.hpp"
#include "kvx/core/step_attribution.hpp"
#include "kvx/keccak/state.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/exec_backend.hpp"
#include "kvx/sim/fault_injector.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/jit/jit_trace.hpp"
#include "kvx/sim/trace_fusion.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::core {

struct VectorKeccakConfig {
  Arch arch = Arch::k64Lmul1;
  unsigned ele_num = 5;  ///< elements per vector register (5·SN, or more)
  unsigned rounds = 24;
  unsigned first_round = 0;  ///< ι round-constant start (12 for Keccak-p[1600,12])

  /// Functional execution backend. The jit/host-simd/fused/trace backends
  /// produce bit-identical digests, register state and cycle counts; a
  /// compile rejection or a runtime SimError demotes tier by tier
  /// (jit → host-simd → fused → trace → interpreter) rather than failing
  /// the run.
  sim::ExecBackend backend = sim::ExecBackend::kInterpreter;

  /// Optional deterministic fault injector (null = disabled). Shared by
  /// every instance constructed from this config — engine shards draw from
  /// one decision stream. See kvx/sim/fault_injector.hpp.
  std::shared_ptr<sim::FaultInjector> fault_injector = nullptr;

  [[nodiscard]] unsigned sn() const noexcept { return ele_num / 5; }
};

/// Cycle measurements of the last permute() run.
struct PermutationTiming {
  u64 total_cycles = 0;        ///< whole run incl. state load/store + halt
  u64 permutation_cycles = 0;  ///< marker-to-marker, 24-round loop only
  u64 instructions = 0;
};

/// One tier tried during construction or a dispatch — the unit of the
/// per-job failure forensics the engine attaches to JobResult.
struct BackendAttempt {
  sim::ExecBackend tier = sim::ExecBackend::kInterpreter;
  std::string error;     ///< "" when the tier succeeded
  bool injected = false; ///< error came from the fault injector
};

class VectorKeccak {
 public:
  explicit VectorKeccak(const VectorKeccakConfig& config);

  /// Construct around a prebuilt (shared, immutable) program. Program
  /// generation + assembly dominates construction cost; host-side batching
  /// layers (kvx_engine) that stand up one accelerator instance per worker
  /// shard build the program once and share it across all shards.
  VectorKeccak(const VectorKeccakConfig& config,
               std::shared_ptr<const KeccakProgram> program);

  /// Build the permutation program for `config`, shareable across instances.
  [[nodiscard]] static std::shared_ptr<const KeccakProgram> build_program(
      const VectorKeccakConfig& config);

  [[nodiscard]] const VectorKeccakConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const KeccakProgram& program() const noexcept {
    return *program_;
  }
  [[nodiscard]] const std::shared_ptr<const KeccakProgram>& shared_program()
      const noexcept {
    return program_;
  }
  [[nodiscard]] const sim::SimdProcessor& processor() const noexcept {
    return *proc_;
  }

  /// Permute up to SN states in place on the simulated accelerator.
  /// Throws kvx::Error when states.size() > SN.
  ///
  /// Fail-soft: a SimError on any compiled tier (injected fault, replay
  /// fault, host-ISA drift under the jit) demotes THIS dispatch one tier
  /// at a time — jit → host-simd → fused → trace → interpreter —
  /// restaging the input states before each retry, so transient faults
  /// cost a fallback, not a wrong digest. Only an interpreter-tier
  /// SimError propagates to the caller.
  void permute(std::span<keccak::State> states);

  /// Backend that permute() starts a dispatch on: the configured one,
  /// downgraded if trace compilation was rejected (or injected-failed).
  [[nodiscard]] sim::ExecBackend active_backend() const noexcept {
    if (jit_ != nullptr) return sim::ExecBackend::kJit;
    if (hs_ != nullptr) return sim::ExecBackend::kHostSimd;
    if (fused_ != nullptr) return sim::ExecBackend::kFusedTrace;
    return trace_ != nullptr ? sim::ExecBackend::kCompiledTrace
                             : sim::ExecBackend::kInterpreter;
  }

  /// Backend that actually completed the last successful permute() — equal
  /// to active_backend() unless that dispatch demoted mid-chain.
  [[nodiscard]] sim::ExecBackend last_backend() const noexcept {
    return last_backend_;
  }

  /// Cumulative backend demotions: compile-time downgrades at construction
  /// plus per-dispatch demotions inside permute().
  [[nodiscard]] u64 backend_fallbacks() const noexcept { return fallbacks_; }

  /// Human-readable reason of the most recent demotion ("" if none).
  [[nodiscard]] const std::string& last_fallback_error() const noexcept {
    return last_fallback_error_;
  }

  /// Tiers rejected at construction, in demotion-chain order (empty when
  /// the configured backend compiled first try). Fixed for this instance's
  /// lifetime; the engine prepends it to every job's demotion path.
  [[nodiscard]] const std::vector<BackendAttempt>& construction_attempts()
      const noexcept {
    return construction_attempts_;
  }

  /// Every tier the LAST permute() tried, in order: zero or more failures
  /// followed by one success — or all failures if the interpreter itself
  /// threw. Overwritten by each dispatch.
  [[nodiscard]] const std::vector<BackendAttempt>& last_dispatch_attempts()
      const noexcept {
    return dispatch_attempts_;
  }

  /// Fraction of trace records covered by super-kernels ([0, 1]); 0 when
  /// the active backend is neither the fused trace nor host-simd (which
  /// shares the fused artifact).
  [[nodiscard]] double fusion_coverage() const noexcept {
    return fused_ != nullptr ? fused_->coverage() : 0.0;
  }

  /// Fraction of trace records the host-SIMD plan lowers to host
  /// intrinsics ([0, 1]); 0 when the active backend is neither host-simd
  /// nor jit (which compiles the same plan to native code).
  [[nodiscard]] double host_simd_coverage() const noexcept {
    return hs_ != nullptr ? hs_->lowered_coverage() : 0.0;
  }

  /// Native code bytes of the jit compilation (page-rounded W^X buffer);
  /// 0 when the active backend is not jit.
  [[nodiscard]] usize jit_code_bytes() const noexcept {
    return jit_ != nullptr ? jit_->buffer_bytes() : 0;
  }

  /// Host ISA the jit code was emitted for (nullopt when not jit).
  [[nodiscard]] std::optional<sim::HostSimdIsa> jit_isa() const noexcept {
    if (jit_ == nullptr) return std::nullopt;
    return jit_->isa();
  }

  [[nodiscard]] const PermutationTiming& last_timing() const noexcept {
    return timing_;
  }

  /// Per-step cycle attribution of the last permute() run (θ/ρπ/χι plus
  /// loop overhead; see step_attribution.hpp). Bit-identical across the
  /// three backends: the trace and fused backends replay the marker stream
  /// recorded from the interpreter, so their attribution is computed once
  /// at compile time and reused.
  [[nodiscard]] const obs::StepCycleStats& last_step_cycles() const noexcept {
    return step_cycles_;
  }

  /// Latency of one Keccak round in cycles (dedicated single-round program,
  /// measured marker-to-marker: the paper's cycles/round column).
  [[nodiscard]] u64 measure_round_cycles() const;

  /// Latency of the full 24-round permutation loop in cycles
  /// (marker-to-marker around the loop, excluding state load/store).
  [[nodiscard]] u64 measure_permutation_cycles();

 private:
  void stage_states(std::span<const keccak::State> states);
  void unstage_states(std::span<keccak::State> states) const;
  /// Stage + execute one dispatch on `tier` (throws SimError on fault).
  void run_backend(sim::ExecBackend tier,
                   std::span<const keccak::State> states);
  void note_fallback(sim::ExecBackend from, sim::ExecBackend to,
                     const char* error);

  VectorKeccakConfig config_;
  std::shared_ptr<const KeccakProgram> program_;
  std::unique_ptr<sim::SimdProcessor> proc_;
  u32 state_base_ = 0;
  PermutationTiming timing_;
  obs::StepCycleStats step_cycles_;
  /// Attribution of the immutable recorded marker stream, computed once at
  /// construction and reused by every trace-backed dispatch (the trace,
  /// fused and host-simd tiers all replay the same stream).
  obs::StepCycleStats trace_step_cycles_;
  /// Reused staging scratch (one plane-major block); mutable because
  /// unstage_states() is logically const.
  mutable std::vector<u8> stage_block_;
  std::shared_ptr<const sim::CompiledTrace> trace_;  ///< null = interpreter
  std::shared_ptr<const sim::FusedTrace> fused_;     ///< kFusedTrace and up
  std::shared_ptr<const sim::HostSimdTrace> hs_;     ///< kHostSimd and up
  std::shared_ptr<const sim::JitTrace> jit_;         ///< kJit only
  sim::ExecBackend last_backend_ = sim::ExecBackend::kInterpreter;
  u64 fallbacks_ = 0;               ///< cumulative backend demotions
  std::string last_fallback_error_; ///< reason of the latest demotion
  std::vector<BackendAttempt> construction_attempts_;
  std::vector<BackendAttempt> dispatch_attempts_;
};

}  // namespace kvx::core
