// On-device sponge absorption: the whole absorb phase (block XOR +
// permutation, repeated) runs on the simulated accelerator with the Keccak
// states resident in the vector register file — the paper's §4.1
// observation that "all operations work without loading or storing
// intermediate data to/from memory" extended from one permutation to a full
// multi-block message.
//
// The host stages rate-padded blocks for up to SN messages in lockstep; one
// simulator run absorbs everything. bench/absorb_overhead quantifies the
// per-block cost (a few tens of cycles on top of each 24-round
// permutation).
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "kvx/core/program_builder.hpp"
#include "kvx/keccak/state.hpp"
#include "kvx/obs/step_cycles.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::core {

class OnDeviceSponge {
 public:
  /// `arch` must be a 64-bit custom-ISE variant; `rate_bytes` is the sponge
  /// rate (e.g. 168 for SHAKE128, 136 for SHA3-256).
  OnDeviceSponge(Arch arch, unsigned ele_num, usize rate_bytes);

  [[nodiscard]] unsigned sn() const noexcept { return ele_num_ / 5; }
  [[nodiscard]] usize rate_bytes() const noexcept { return rate_; }

  /// Absorb `blocks_per_message` rate-sized blocks for each message in
  /// lockstep (messages.size() ≤ SN; every message must be exactly
  /// blocks_per_message · rate bytes — i.e. already padded). Returns the
  /// resulting Keccak states, ready for host-side squeezing.
  [[nodiscard]] std::vector<keccak::State> absorb(
      std::span<const std::vector<u8>> padded_messages);

  /// Cycles of the last absorb run (marker-to-marker: absorb+permute loop).
  [[nodiscard]] u64 last_cycles() const noexcept { return last_cycles_; }

  /// Per-block absorb-phase overhead in cycles measured on the last run
  /// (block load + XOR + loop control, excluding the permutation rounds).
  [[nodiscard]] u64 last_absorb_overhead_per_block() const noexcept {
    return absorb_overhead_;
  }

  /// Per-step attribution of last_cycles() (block staging lands in the
  /// `absorb` bucket; see kvx/core/step_attribution.hpp).
  [[nodiscard]] const obs::StepCycleStats& last_step_cycles() const noexcept {
    return step_cycles_;
  }

 private:
  struct Engine {
    KeccakProgram program;
    std::unique_ptr<sim::SimdProcessor> proc;
  };
  Engine& engine_for(unsigned blocks);

  Arch arch_;
  unsigned ele_num_;
  usize rate_;
  std::map<unsigned, Engine> engines_;  ///< keyed by block count
  u64 last_cycles_ = 0;
  u64 absorb_overhead_ = 0;
  obs::StepCycleStats step_cycles_;
};

}  // namespace kvx::core
