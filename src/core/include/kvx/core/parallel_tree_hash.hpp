// Accelerated tree hashing: the leaves of the KangarooTwelve-style tree
// (see keccak/tree_hash.hpp) are independent equal-length messages, so the
// accelerator hashes SN of them per lockstep batch — converting the paper's
// multi-state parallelism into single-message throughput.
#pragma once

#include "kvx/core/parallel_sha3.hpp"
#include "kvx/keccak/tree_hash.hpp"

namespace kvx::core {

class ParallelTreeHash {
 public:
  /// `arch` must be a 64-bit variant or the 32-bit architecture; the
  /// instance owns a 12-round (TurboSHAKE) accelerator configuration.
  ParallelTreeHash(Arch arch, unsigned ele_num,
                   const keccak::TreeHashParams& params = {});

  /// Tree-hash `msg` to `out_len` bytes; bit-identical to the host
  /// keccak::tree_hash128.
  [[nodiscard]] std::vector<u8> hash(std::span<const u8> msg, usize out_len);

  [[nodiscard]] const BatchStats& stats() const noexcept {
    return accel_.stats();
  }
  [[nodiscard]] unsigned lanes() const noexcept { return accel_.lanes(); }

 private:
  keccak::TreeHashParams params_;
  ParallelSha3 accel_;
};

}  // namespace kvx::core
