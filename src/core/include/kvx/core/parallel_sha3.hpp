// Batched SHA-3 / SHAKE / cSHAKE / KMAC on the simulated vector accelerator.
//
// This is the HW/SW co-design split of the paper's motivating workload
// (§1, CRYSTALS-Kyber matrix generation): software performs the sponge
// bookkeeping (padding, absorb XOR, squeeze copy) while the accelerator
// runs up to SN Keccak-f[1600] permutations in lockstep. With
// `on_device_absorb` the absorb phase itself also runs on the accelerator
// (OnDeviceSponge): states stay in the vector register file across all
// message blocks.
//
// Lockstep batching requires all messages in a batch to have the same
// length (exactly the Kyber situation: seed ‖ row ‖ column indices of equal
// size). hash_batch() groups arbitrary inputs by length automatically.
#pragma once

#include <memory>
#include <vector>

#include "kvx/core/on_device_sponge.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/obs/step_cycles.hpp"

namespace kvx::core {

/// Accumulated accelerator statistics.
struct BatchStats {
  u64 accelerator_cycles = 0;   ///< simulated cycles spent in permutations
  u64 permutation_batches = 0;  ///< accelerator invocations
  u64 permutations = 0;         ///< state-permutations performed (≤ SN each)
  /// Per-step attribution of accelerator_cycles (θ/ρπ/χι/absorb/other);
  /// step_cycles.total == accelerator_cycles, exactly.
  obs::StepCycleStats step_cycles;
};

struct ParallelSha3Options {
  /// Run the absorb phase on the accelerator too (64-bit custom-ISE archs
  /// only): message blocks are staged and XORed into register-resident
  /// states by the generated on-device absorb program.
  bool on_device_absorb = false;
};

class ParallelSha3 {
 public:
  explicit ParallelSha3(const VectorKeccakConfig& config,
                        const ParallelSha3Options& options = {});

  /// Construct around a prebuilt permutation program (see
  /// VectorKeccak::build_program). All instances sharing the program still
  /// own independent simulator state, so each is safe to drive from its own
  /// thread.
  ParallelSha3(const VectorKeccakConfig& config,
               std::shared_ptr<const KeccakProgram> program,
               const ParallelSha3Options& options = {});

  /// Cheap per-shard clone: a fresh instance (own simulator, zeroed stats)
  /// that shares this instance's immutable program.
  [[nodiscard]] std::unique_ptr<ParallelSha3> clone() const;

  [[nodiscard]] unsigned lanes() const noexcept { return vk_.config().sn(); }
  [[nodiscard]] const VectorKeccakConfig& config() const noexcept {
    return vk_.config();
  }
  [[nodiscard]] const ParallelSha3Options& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::shared_ptr<const KeccakProgram>& shared_program()
      const noexcept {
    return vk_.shared_program();
  }

  /// Backend the permutation accelerator actually uses (the configured one,
  /// downgraded to the interpreter if trace compilation was rejected).
  [[nodiscard]] sim::ExecBackend active_backend() const noexcept {
    return vk_.active_backend();
  }

  /// Backend that completed the most recent permutation dispatch — equal to
  /// active_backend() unless that dispatch demoted mid-chain (fail-soft
  /// fallback; see VectorKeccak::permute).
  [[nodiscard]] sim::ExecBackend last_backend() const noexcept {
    return vk_.last_backend();
  }

  /// Cumulative backend demotions of this accelerator (compile-time
  /// downgrades plus per-dispatch fallbacks).
  [[nodiscard]] u64 backend_fallbacks() const noexcept {
    return vk_.backend_fallbacks();
  }

  /// Tiers rejected when the accelerator was constructed (forensics; see
  /// VectorKeccak::construction_attempts).
  [[nodiscard]] const std::vector<BackendAttempt>& construction_attempts()
      const noexcept {
    return vk_.construction_attempts();
  }

  /// Tier-by-tier record of the most recent permutation dispatch (see
  /// VectorKeccak::last_dispatch_attempts).
  [[nodiscard]] const std::vector<BackendAttempt>& last_dispatch_attempts()
      const noexcept {
    return vk_.last_dispatch_attempts();
  }

  /// Fraction of trace records fused into super-kernels ([0, 1]); 0 unless
  /// the active backend is the fused trace.
  [[nodiscard]] double fusion_coverage() const noexcept {
    return vk_.fusion_coverage();
  }

  /// Fraction of trace records the host-SIMD plan lowers to host
  /// intrinsics ([0, 1]); 0 unless the active backend is host-simd or jit.
  [[nodiscard]] double host_simd_coverage() const noexcept {
    return vk_.host_simd_coverage();
  }

  /// Native code bytes of the jit compilation (page-rounded W^X buffer);
  /// 0 unless the active backend is jit.
  [[nodiscard]] usize jit_code_bytes() const noexcept {
    return vk_.jit_code_bytes();
  }

  /// Host ISA the jit code was emitted for (nullopt unless jit).
  [[nodiscard]] std::optional<sim::HostSimdIsa> jit_isa() const noexcept {
    return vk_.jit_isa();
  }

  /// Hash a batch of messages with a fixed-output function; every message
  /// may have a different length (grouped internally).
  [[nodiscard]] std::vector<std::vector<u8>> hash_batch(
      keccak::Sha3Function f, std::span<const std::vector<u8>> messages);

  /// SHAKE a batch of messages to `out_len` bytes each.
  [[nodiscard]] std::vector<std::vector<u8>> xof_batch(
      keccak::Sha3Function f, std::span<const std::vector<u8>> messages,
      usize out_len);

  /// Batched cSHAKE (SP 800-185): security_bits ∈ {128, 256}.
  [[nodiscard]] std::vector<std::vector<u8>> cshake_batch(
      unsigned security_bits, std::span<const std::vector<u8>> messages,
      usize out_len, std::span<const u8> function_name,
      std::span<const u8> customization);

  /// Batched KMAC: one key, many messages (e.g. firmware chunks).
  [[nodiscard]] std::vector<std::vector<u8>> kmac_batch(
      unsigned security_bits, std::span<const u8> key,
      std::span<const std::vector<u8>> messages, usize out_len,
      std::span<const u8> customization = {});

  /// Raw sponge batch with an explicit rate and domain-separation byte —
  /// the extension point for custom sponge modes (TurboSHAKE tree nodes,
  /// Keccak-based PRFs). The permutation is whatever this instance's
  /// VectorKeccakConfig selects (24 rounds for FIPS functions; construct
  /// with rounds = 12 / first_round = 12 for TurboSHAKE).
  [[nodiscard]] std::vector<std::vector<u8>> raw_batch(
      usize rate, u8 domain, std::span<const std::vector<u8>> messages,
      usize out_len);

  /// Partial-batch dispatch: run ONE lockstep group of ≤ SN equal-length
  /// messages through the raw sponge, writing `out_len` bytes per message
  /// into `outs`. This skips raw_batch()'s by-length grouping pass — the
  /// entry point for host-side batching layers (kvx_engine shards) that
  /// fill the SN lanes themselves.
  void dispatch_group(usize rate, u8 domain,
                      std::span<const std::vector<u8>> messages,
                      std::span<std::vector<u8>> outs, usize out_len);

  [[nodiscard]] const BatchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  /// Run one lockstep group (equal-length messages, ≤ SN of them) with an
  /// explicit rate and domain byte.
  void run_group(usize rate, u8 domain,
                 std::span<const std::vector<u8>*> msgs,
                 std::span<std::vector<u8>*> outs, usize out_len);

  void permute_states(std::span<keccak::State> states);

  VectorKeccak vk_;
  ParallelSha3Options options_;
  std::unique_ptr<OnDeviceSponge> device_sponge_;  ///< per-rate lazily built
  usize device_sponge_rate_ = 0;
  BatchStats stats_;
};

}  // namespace kvx::core
