// Fold a recorded marker stream into per-step cycle attribution.
//
// The generated programs bracket every round body with kRoundStart/kRoundEnd
// and emit a zero-cost marker at each step-mapping boundary (see Markers in
// program_builder.hpp), so the marker stream partitions the permutation
// window into contiguous segments. Each segment is attributed to the bucket
// of its *trailing* marker:
//
//   ..kStepRho            θ       (round start .. end of θ)
//   ..kStepPi, ..kStepChi ρπ      (ρ, then the π scatter)
//   ..kStepIota, ..kRoundEnd χι   (χ, then ι)
//   kAbsorb..kRoundStart  absorb  (on-device block staging)
//   anything else         other   (loop control between rounds/blocks)
//
// Since the segments tile [kPermStart .. kPermEnd] exactly, the invariant
// theta + rho_pi + chi_iota + absorb + other == total holds by construction
// on every backend — the trace and fused backends replay the marker stream
// recorded from the interpreter bit-identically.
#pragma once

#include <span>

#include "kvx/obs/step_cycles.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::core {

/// Attribute a marker stream. When the stream contains a
/// kPermStart..kPermEnd pair, attribution covers exactly that window (the
/// paper's cycles/permutation region); otherwise the whole stream is used
/// (single-round programs: kRoundStart..kRoundEnd). Returns all-zero stats
/// for streams with fewer than two markers.
[[nodiscard]] obs::StepCycleStats attribute_step_cycles(
    std::span<const sim::Marker> markers);

}  // namespace kvx::core
