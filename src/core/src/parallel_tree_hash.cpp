#include "kvx/core/parallel_tree_hash.hpp"

namespace kvx::core {

namespace {

constexpr usize kTurboShake128Rate = 168;

VectorKeccakConfig turbo_config(Arch arch, unsigned ele_num) {
  VectorKeccakConfig cfg;
  cfg.arch = arch;
  cfg.ele_num = ele_num;
  cfg.rounds = 12;       // Keccak-p[1600, 12]
  cfg.first_round = 12;  // FIPS round-index convention (rounds 12..23)
  return cfg;
}

}  // namespace

ParallelTreeHash::ParallelTreeHash(Arch arch, unsigned ele_num,
                                   const keccak::TreeHashParams& params)
    : params_(params), accel_(turbo_config(arch, ele_num)) {}

std::vector<u8> ParallelTreeHash::hash(std::span<const u8> msg,
                                       usize out_len) {
  using keccak::TreeHashDomains;
  if (msg.size() <= params_.chunk_bytes) {
    const std::vector<std::vector<u8>> one = {{msg.begin(), msg.end()}};
    return accel_.raw_batch(kTurboShake128Rate, TreeHashDomains::kSingle, one,
                            out_len)[0];
  }
  const std::span<const u8> first = msg.first(params_.chunk_bytes);
  std::vector<std::vector<u8>> leaves;
  for (usize pos = params_.chunk_bytes; pos < msg.size();
       pos += params_.chunk_bytes) {
    const usize take = std::min(params_.chunk_bytes, msg.size() - pos);
    leaves.emplace_back(msg.begin() + static_cast<std::ptrdiff_t>(pos),
                        msg.begin() + static_cast<std::ptrdiff_t>(pos + take));
  }
  // All full-size leaves run in lockstep batches of SN; a short final leaf
  // (different length) forms its own group inside raw_batch.
  const auto cvs = accel_.raw_batch(kTurboShake128Rate, TreeHashDomains::kLeaf,
                                    leaves, params_.cv_bytes);
  const std::vector<std::vector<u8>> final_node = {
      keccak::tree_hash_final_input(first, cvs)};
  return accel_.raw_batch(kTurboShake128Rate, TreeHashDomains::kFinal,
                          final_node, out_len)[0];
}

}  // namespace kvx::core
