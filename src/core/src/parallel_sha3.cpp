#include "kvx/core/parallel_sha3.hpp"

#include <algorithm>
#include <map>

#include "kvx/common/error.hpp"
#include "kvx/keccak/sp800_185.hpp"

namespace kvx::core {

using keccak::Sha3Function;
using keccak::State;

ParallelSha3::ParallelSha3(const VectorKeccakConfig& config,
                           const ParallelSha3Options& options)
    : ParallelSha3(config, VectorKeccak::build_program(config), options) {}

std::unique_ptr<ParallelSha3> ParallelSha3::clone() const {
  return std::make_unique<ParallelSha3>(vk_.config(), vk_.shared_program(),
                                        options_);
}

ParallelSha3::ParallelSha3(const VectorKeccakConfig& config,
                           std::shared_ptr<const KeccakProgram> program,
                           const ParallelSha3Options& options)
    : vk_(config, std::move(program)), options_(options) {
  if (options_.on_device_absorb) {
    KVX_CHECK_MSG(config.arch == Arch::k64Lmul1 ||
                      config.arch == Arch::k64Lmul8 ||
                      config.arch == Arch::k64Fused,
                  "on-device absorb requires a 64-bit custom-ISE arch");
    KVX_CHECK_MSG(config.rounds == 24 && config.first_round == 0,
                  "on-device absorb supports the full Keccak-f only");
  }
}

void ParallelSha3::permute_states(std::span<State> states) {
  vk_.permute(states);
  stats_.accelerator_cycles += vk_.last_timing().permutation_cycles;
  stats_.permutation_batches += 1;
  stats_.permutations += states.size();
  stats_.step_cycles += vk_.last_step_cycles();
}

void ParallelSha3::run_group(usize rate, u8 domain,
                             std::span<const std::vector<u8>*> msgs,
                             std::span<std::vector<u8>*> outs, usize out_len) {
  KVX_CHECK(msgs.size() == outs.size());
  KVX_CHECK(msgs.size() <= lanes());
  const usize n = msgs.size();
  const usize len = msgs.empty() ? 0 : msgs[0]->size();

  std::vector<State> states(n);

  if (options_.on_device_absorb) {
    // Pad every message to a whole number of rate blocks host-side, then
    // hand the entire absorb phase to the accelerator-resident sponge.
    const usize padded_len = (len / rate + 1) * rate;
    std::vector<std::vector<u8>> padded(n);
    for (usize s = 0; s < n; ++s) {
      padded[s].assign(padded_len, 0);
      std::copy(msgs[s]->begin(), msgs[s]->end(), padded[s].begin());
      padded[s][len] ^= domain;
      padded[s][padded_len - 1] ^= 0x80;
    }
    if (device_sponge_ == nullptr || device_sponge_rate_ != rate) {
      device_sponge_ = std::make_unique<OnDeviceSponge>(
          vk_.config().arch, vk_.config().ele_num, rate);
      device_sponge_rate_ = rate;
    }
    const auto absorbed = device_sponge_->absorb(padded);
    std::copy(absorbed.begin(), absorbed.end(), states.begin());
    const auto blocks = padded_len / rate;
    stats_.accelerator_cycles += device_sponge_->last_cycles();
    stats_.permutation_batches += blocks;
    stats_.permutations += blocks * n;
    stats_.step_cycles += device_sponge_->last_step_cycles();
  } else {
    // Absorb full blocks in lockstep (all messages have equal length).
    usize pos = 0;
    while (len - pos >= rate) {
      for (usize s = 0; s < n; ++s) {
        states[s].xor_bytes(std::span<const u8>(*msgs[s]).subspan(pos, rate));
      }
      permute_states(states);
      pos += rate;
    }
    // Final partial block with pad10*1 + domain bits.
    const usize tail = len - pos;
    for (usize s = 0; s < n; ++s) {
      std::vector<u8> block(rate, 0);
      std::copy_n(msgs[s]->begin() + static_cast<std::ptrdiff_t>(pos), tail,
                  block.begin());
      block[tail] ^= domain;
      block[rate - 1] ^= 0x80;
      states[s].xor_bytes(block);
    }
    permute_states(states);
  }

  // Squeeze in lockstep.
  for (usize s = 0; s < n; ++s) outs[s]->assign(out_len, 0);
  usize produced = 0;
  while (produced < out_len) {
    const usize take = std::min(out_len - produced, rate);
    for (usize s = 0; s < n; ++s) {
      states[s].extract_bytes(
          std::span<u8>(*outs[s]).subspan(produced, take));
    }
    produced += take;
    if (produced < out_len) permute_states(states);
  }
}

void ParallelSha3::dispatch_group(usize rate, u8 domain,
                                  std::span<const std::vector<u8>> messages,
                                  std::span<std::vector<u8>> outs,
                                  usize out_len) {
  KVX_CHECK(messages.size() == outs.size());
  const usize len = messages.empty() ? 0 : messages[0].size();
  std::vector<const std::vector<u8>*> msgs(messages.size());
  std::vector<std::vector<u8>*> out_ptrs(outs.size());
  for (usize i = 0; i < messages.size(); ++i) {
    KVX_CHECK_MSG(messages[i].size() == len,
                  "dispatch_group requires equal-length messages");
    msgs[i] = &messages[i];
    out_ptrs[i] = &outs[i];
  }
  run_group(rate, domain, msgs, out_ptrs, out_len);
}

std::vector<std::vector<u8>> ParallelSha3::raw_batch(
    usize rate, u8 domain, std::span<const std::vector<u8>> messages,
    usize out_len) {
  std::vector<std::vector<u8>> outs(messages.size());

  // Group message indices by length, then run lockstep groups of ≤ SN.
  std::map<usize, std::vector<usize>> by_len;
  for (usize i = 0; i < messages.size(); ++i) {
    by_len[messages[i].size()].push_back(i);
  }
  for (const auto& [len, indices] : by_len) {
    (void)len;
    for (usize start = 0; start < indices.size(); start += lanes()) {
      const usize n = std::min<usize>(lanes(), indices.size() - start);
      std::vector<const std::vector<u8>*> msgs(n);
      std::vector<std::vector<u8>*> group_outs(n);
      for (usize k = 0; k < n; ++k) {
        msgs[k] = &messages[indices[start + k]];
        group_outs[k] = &outs[indices[start + k]];
      }
      run_group(rate, domain, msgs, group_outs, out_len);
    }
  }
  return outs;
}

std::vector<std::vector<u8>> ParallelSha3::hash_batch(
    Sha3Function f, std::span<const std::vector<u8>> messages) {
  const usize d = keccak::digest_bytes(f);
  KVX_CHECK_MSG(d != 0, "hash_batch requires a fixed-output function");
  return xof_batch(f, messages, d);
}

std::vector<std::vector<u8>> ParallelSha3::xof_batch(
    Sha3Function f, std::span<const std::vector<u8>> messages, usize out_len) {
  const u8 domain = keccak::digest_bytes(f) == 0 ? u8{0x1F} : u8{0x06};
  return raw_batch(keccak::rate_bytes(f), domain, messages, out_len);
}

std::vector<std::vector<u8>> ParallelSha3::cshake_batch(
    unsigned security_bits, std::span<const std::vector<u8>> messages,
    usize out_len, std::span<const u8> function_name,
    std::span<const u8> customization) {
  KVX_CHECK_MSG(security_bits == 128 || security_bits == 256,
                "cSHAKE security must be 128 or 256");
  const usize rate = security_bits == 128 ? 168 : 136;
  if (function_name.empty() && customization.empty()) {
    return raw_batch(rate, 0x1F, messages, out_len);  // degrades to SHAKE
  }
  // Prepend the bytepad(encode_string(N) || encode_string(S), rate) prefix
  // to every message; the accelerator then treats it as plain input.
  std::vector<u8> prefix = keccak::encode_string(function_name);
  const auto s_enc = keccak::encode_string(customization);
  prefix.insert(prefix.end(), s_enc.begin(), s_enc.end());
  const auto padded_prefix = keccak::bytepad(prefix, rate);

  std::vector<std::vector<u8>> prefixed(messages.size());
  for (usize i = 0; i < messages.size(); ++i) {
    prefixed[i] = padded_prefix;
    prefixed[i].insert(prefixed[i].end(), messages[i].begin(),
                       messages[i].end());
  }
  return raw_batch(rate, 0x04, prefixed, out_len);
}

std::vector<std::vector<u8>> ParallelSha3::kmac_batch(
    unsigned security_bits, std::span<const u8> key,
    std::span<const std::vector<u8>> messages, usize out_len,
    std::span<const u8> customization) {
  KVX_CHECK_MSG(security_bits == 128 || security_bits == 256,
                "KMAC security must be 128 or 256");
  const usize rate = security_bits == 128 ? 168 : 136;
  static constexpr u8 kName[] = {'K', 'M', 'A', 'C'};
  const auto key_block = keccak::bytepad(keccak::encode_string(key), rate);
  const auto len_enc = keccak::right_encode(static_cast<u64>(out_len) * 8);

  std::vector<std::vector<u8>> inputs(messages.size());
  for (usize i = 0; i < messages.size(); ++i) {
    inputs[i] = key_block;
    inputs[i].insert(inputs[i].end(), messages[i].begin(), messages[i].end());
    inputs[i].insert(inputs[i].end(), len_enc.begin(), len_enc.end());
  }
  return cshake_batch(security_bits, inputs, out_len, kName, customization);
}

}  // namespace kvx::core
