#include "kvx/core/program_builder.hpp"

#include <cstdarg>
#include <cstdio>

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/sim/scalar_core.hpp"

namespace kvx::core {
namespace {

/// Tiny assembly emitter: collects lines, supports printf-style emission.
class Emitter {
 public:
  void raw(const std::string& s) { out_ += s; out_ += '\n'; }

  void op(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string line(static_cast<usize>(n), '\0');
    std::vsnprintf(line.data(), static_cast<usize>(n) + 1, fmt, args);
    va_end(args);
    out_ += "    ";
    out_ += line;
    out_ += '\n';
  }

  void label(const char* name) { out_ += name; out_ += ":\n"; }
  void comment(const char* text) { out_ += "    # "; out_ += text; out_ += '\n'; }
  void blank() { out_ += '\n'; }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

void emit_marker(Emitter& e, u32 id) {
  e.op("csrwi 0x%X, %u", sim::csr::kMarker, id);
}

// ---------------------------------------------------------------------------
// 64-bit architecture (Algorithms 2 and 3).
// ---------------------------------------------------------------------------

/// θ step at LMUL=1 (shared by Algorithm 2 and Algorithm 3).
void emit_theta64(Emitter& e) {
  e.comment("theta step");
  e.op("vxor.vv v5,v3,v4");
  e.op("vxor.vv v6,v1,v2");
  e.op("vxor.vv v7,v0,v6");
  e.op("vxor.vv v5,v5,v7");
  e.op("vslideupm.vi v6,v5,1");
  e.op("vslidedownm.vi v7,v5,1");
  e.op("vrotup.vi v7,v7,1");
  e.op("vxor.vv v5,v6,v7");
  e.op("vxor.vv v0,v0,v5");
  e.op("vxor.vv v1,v1,v5");
  e.op("vxor.vv v2,v2,v5");
  e.op("vxor.vv v3,v3,v5");
  e.op("vxor.vv v4,v4,v5");
}

/// One round body per Algorithm 2 (LMUL = 1 throughout).
void emit_round64_lmul1(Emitter& e, bool sm) {
  emit_theta64(e);
  if (sm) emit_marker(e, Markers::kStepRho);
  e.comment("rho step");
  for (int y = 0; y < 5; ++y) e.op("v64rho.vi v%d,v%d,%d", y, y, y);
  if (sm) emit_marker(e, Markers::kStepPi);
  e.comment("pi step");
  for (int y = 0; y < 5; ++y) e.op("vpi.vi v5,v%d,%d", y, y);
  if (sm) emit_marker(e, Markers::kStepChi);
  e.comment("chi step");
  for (int k = 0; k < 5; ++k) e.op("vslidedownm.vi v%d,v%d,1", 10 + k, 5 + k);
  for (int k = 0; k < 5; ++k) e.op("vxor.vx v%d,v%d,s2", 10 + k, 10 + k);
  for (int k = 0; k < 5; ++k) e.op("vslidedownm.vi v%d,v%d,2", 15 + k, 5 + k);
  for (int k = 0; k < 5; ++k) e.op("vand.vv v%d,v%d,v%d", 10 + k, 10 + k, 15 + k);
  for (int k = 0; k < 5; ++k) e.op("vxor.vv v%d,v%d,v%d", k, 5 + k, 10 + k);
  if (sm) emit_marker(e, Markers::kStepIota);
  e.comment("iota step");
  e.op("viota.vx v0,v0,s3");
}

/// One round body per Algorithm 3 (ρ, π, χ at LMUL = 8, VL = 5·EleNum).
void emit_round64_lmul8(Emitter& e, bool sm) {
  emit_theta64(e);
  if (sm) emit_marker(e, Markers::kStepRho);
  e.comment("rho step (LMUL=8)");
  e.op("vsetvli x0,s5,e64,m8,tu,mu");
  e.op("v64rho.vi v0,v0,-1");
  if (sm) emit_marker(e, Markers::kStepPi);
  e.comment("pi step (LMUL=8)");
  e.op("vpi.vi v8,v0,-1");
  if (sm) emit_marker(e, Markers::kStepChi);
  e.comment("chi step (LMUL=8)");
  e.op("vslidedownm.vi v16,v8,1");
  e.op("vxor.vx v16,v16,s2");
  e.op("vslidedownm.vi v24,v8,2");
  e.op("vand.vv v16,v16,v24");
  e.op("vxor.vv v0,v8,v16");
  if (sm) emit_marker(e, Markers::kStepIota);
  e.comment("iota step");
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.op("viota.vx v0,v0,s3");
}

/// One round using the fused-instruction extension (paper §5 future work):
/// θ's slide/rotate/xor combine collapses into vthetac, ρ∘π into vrhopi,
/// and the whole χ row computation into vchi.
void emit_round64_fused(Emitter& e, bool sm) {
  e.comment("theta step (fused parity-combine)");
  e.op("vxor.vv v5,v3,v4");
  e.op("vxor.vv v6,v1,v2");
  e.op("vxor.vv v7,v0,v6");
  e.op("vxor.vv v5,v5,v7");
  e.op("vthetac.vv v6,v5");
  for (int y = 0; y < 5; ++y) e.op("vxor.vv v%d,v%d,v6", y, y);
  if (sm) emit_marker(e, Markers::kStepRho);
  e.comment("fused rho+pi step (LMUL=8)");
  e.op("vsetvli x0,s5,e64,m8,tu,mu");
  if (sm) emit_marker(e, Markers::kStepPi);  // rho and pi are one instruction
  e.op("vrhopi.vi v8,v0,-1");
  if (sm) emit_marker(e, Markers::kStepChi);
  e.comment("fused chi step (LMUL=8)");
  e.op("vchi.vv v0,v8");
  if (sm) emit_marker(e, Markers::kStepIota);
  e.comment("iota step");
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.op("viota.vx v0,v0,s3");
}

/// One round with the LMUL = 4 + 1 split the paper's §4.1 rejects: the
/// first four planes are grouped (m4), the fifth runs alone (m1), paying a
/// vsetvli reconfiguration at every hand-over.
void emit_round64_lmul4(Emitter& e, bool sm) {
  emit_theta64(e);
  if (sm) emit_marker(e, Markers::kStepRho);
  e.comment("rho step (LMUL=4 group, then the fifth plane at LMUL=1)");
  e.op("vsetvli x0,s6,e64,m4,tu,mu");
  e.op("v64rho.vi v0,v0,-1");
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.op("v64rho.vi v4,v4,4");
  if (sm) emit_marker(e, Markers::kStepPi);
  e.comment("pi step (4 + 1)");
  e.op("vsetvli x0,s6,e64,m4,tu,mu");
  e.op("vpi.vi v8,v0,-1");
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.op("vpi.vi v8,v4,4");
  if (sm) emit_marker(e, Markers::kStepChi);
  e.comment("chi step (4 + 1)");
  e.op("vsetvli x0,s6,e64,m4,tu,mu");
  e.op("vslidedownm.vi v16,v8,1");
  e.op("vxor.vx v16,v16,s2");
  e.op("vslidedownm.vi v24,v8,2");
  e.op("vand.vv v16,v16,v24");
  e.op("vxor.vv v0,v8,v16");
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.op("vslidedownm.vi v20,v12,1");
  e.op("vxor.vx v20,v20,s2");
  e.op("vslidedownm.vi v28,v12,2");
  e.op("vand.vv v20,v20,v28");
  e.op("vxor.vv v4,v12,v20");
  if (sm) emit_marker(e, Markers::kStepIota);
  e.comment("iota step");
  e.op("viota.vx v0,v0,s3");
}

std::string build_source_64(const ProgramOptions& o) {
  const bool lmul8 = o.arch == Arch::k64Lmul8;
  const bool fused = o.arch == Arch::k64Fused;
  const bool lmul4 = o.arch == Arch::k64Lmul4Plus1;
  const unsigned row_bytes = o.ele_num * 8;
  Emitter e;
  e.raw("# Keccak-f[1600], 64-bit architecture, " +
        std::string(lmul4 ? "LMUL=4+1 (the alternative SS4.1 rejects)"
                    : fused ? "fused-instruction extension (paper SS5 future work)"
                    : lmul8 ? "LMUL=8 (Algorithm 3)"
                            : "LMUL=1 (Algorithm 2)"));
  e.raw(strfmt("# EleNum=%u, SN=%u, rounds=%u", o.ele_num, o.ele_num / 5,
               o.rounds));
  e.raw(".text");
  e.comment("prologue: s1=EleNum, s2=-1 (NOT via XOR), s3=round, s4=rounds");
  e.op("li s1, %u", o.ele_num);
  e.op("li s2, -1");
  e.op("li s3, %u", o.first_round);
  e.op("li s4, %u", o.first_round + o.rounds);
  if (lmul8 || fused) e.op("li s5, %u", 5 * o.ele_num);
  if (lmul4) e.op("li s6, %u", 4 * o.ele_num);
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.comment("load the five planes from data memory");
  e.op("la a0, state");
  e.op("mv a1, a0");
  for (int y = 0; y < 5; ++y) {
    e.op("vle64.v v%d,(a1)", y);
    if (y != 4) e.op("addi a1,a1,%u", row_bytes);
  }
  e.blank();

  const auto emit_round = [&](bool sm) {
    if (lmul4) {
      emit_round64_lmul4(e, sm);
    } else if (fused) {
      emit_round64_fused(e, sm);
    } else if (lmul8) {
      emit_round64_lmul8(e, sm);
    } else {
      emit_round64_lmul1(e, sm);
    }
  };
  if (o.single_round) {
    emit_marker(e, Markers::kRoundStart);
    emit_round(true);
    emit_marker(e, Markers::kRoundEnd);
  } else if (o.absorb_blocks > 0) {
    // On-device sponge: for each staged block, XOR it into the state held
    // in v0..v4 and run the full permutation — the state never leaves the
    // register file between blocks (paper SS4.1: "without loading or
    // storing intermediate data to/from memory").
    e.comment("on-device absorb loop");
    e.op("li s6, 0");
    e.op("li s7, %u", o.absorb_blocks);
    e.op("la a2, blocks");
    emit_marker(e, Markers::kPermStart);
    e.label("absorb_block");
    emit_marker(e, Markers::kAbsorb);
    e.op("mv a1, a2");
    for (int y = 0; y < 5; ++y) {
      e.op("vle64.v v%d,(a1)", 10 + y);
      if (y != 4) e.op("addi a1,a1,%u", row_bytes);
    }
    for (int y = 0; y < 5; ++y) e.op("vxor.vv v%d,v%d,v%d", y, y, 10 + y);
    e.op("addi a2,a2,%u", 5 * row_bytes);
    e.op("li s3, %u", o.first_round);
    e.label("permutation");
    emit_marker(e, Markers::kRoundStart);
    emit_round(true);
    emit_marker(e, Markers::kRoundEnd);
    e.comment("next round");
    e.op("addi s3,s3,1");
    e.op("blt s3,s4,permutation");
    e.comment("next block");
    e.op("addi s6,s6,1");
    e.op("blt s6,s7,absorb_block");
    emit_marker(e, Markers::kPermEnd);
  } else {
    emit_marker(e, Markers::kPermStart);
    e.label("permutation");
    emit_marker(e, Markers::kRoundStart);
    emit_round(true);
    emit_marker(e, Markers::kRoundEnd);
    e.comment("next round");
    e.op("addi s3,s3,1");
    e.op("blt s3,s4,permutation");
    emit_marker(e, Markers::kPermEnd);
  }

  e.blank();
  e.comment("store the five planes back");
  e.op("mv a1, a0");
  for (int y = 0; y < 5; ++y) {
    e.op("vse64.v v%d,(a1)", y);
    if (y != 4) e.op("addi a1,a1,%u", row_bytes);
  }
  e.op("ebreak");
  e.blank();
  e.raw(".data");
  e.label("state");
  e.op(".zero %u", 5 * row_bytes);
  if (o.absorb_blocks > 0) {
    e.label("blocks");
    e.op(".zero %u", o.absorb_blocks * 5 * row_bytes);
  }
  return e.take();
}

// ---------------------------------------------------------------------------
// 32-bit architecture (§3.2): lo halves in v0..v4, hi halves in v16..v20.
// ---------------------------------------------------------------------------

void emit_round32_lmul8(Emitter& e, bool sm) {
  e.comment("theta step (LMUL=1, both halves)");
  // Column parities: B_lo -> v5, B_hi -> v21.
  e.op("vxor.vv v5,v3,v4");
  e.op("vxor.vv v6,v1,v2");
  e.op("vxor.vv v7,v0,v6");
  e.op("vxor.vv v5,v5,v7");
  e.op("vxor.vv v21,v19,v20");
  e.op("vxor.vv v22,v17,v18");
  e.op("vxor.vv v23,v16,v22");
  e.op("vxor.vv v21,v21,v23");
  // C[x] = B[x-1] ^ ROT64(B[x+1], 1) via the paired rotate instructions.
  e.op("vslideupm.vi v6,v5,1");
  e.op("vslideupm.vi v22,v21,1");
  e.op("vslidedownm.vi v7,v5,1");
  e.op("vslidedownm.vi v23,v21,1");
  e.op("v32lrotup.vv v8,v23,v7");
  e.op("v32hrotup.vv v24,v23,v7");
  e.op("vxor.vv v5,v6,v8");
  e.op("vxor.vv v21,v22,v24");
  for (int y = 0; y < 5; ++y) e.op("vxor.vv v%d,v%d,v5", y, y);
  for (int y = 0; y < 5; ++y) e.op("vxor.vv v%d,v%d,v21", 16 + y, 16 + y);
  if (sm) emit_marker(e, Markers::kStepRho);
  e.comment("rho step (LMUL=8, paired hi/lo rotation)");
  e.op("vsetvli x0,s5,e32,m8,tu,mu");
  e.op("v32lrho.vv v8,v16,v0");
  e.op("v32hrho.vv v24,v16,v0");
  if (sm) emit_marker(e, Markers::kStepPi);
  e.comment("pi step (LMUL=8, both halves)");
  e.op("vpi.vi v0,v8,-1");
  e.op("vpi.vi v16,v24,-1");
  if (sm) emit_marker(e, Markers::kStepChi);
  e.comment("chi step (LMUL=8), low then high halves");
  e.op("vslidedownm.vi v8,v0,1");
  e.op("vxor.vx v8,v8,s2");
  e.op("vslidedownm.vi v24,v0,2");
  e.op("vand.vv v8,v8,v24");
  e.op("vxor.vv v0,v0,v8");
  e.op("vslidedownm.vi v8,v16,1");
  e.op("vxor.vx v8,v8,s2");
  e.op("vslidedownm.vi v24,v16,2");
  e.op("vand.vv v8,v8,v24");
  e.op("vxor.vv v16,v16,v8");
  if (sm) emit_marker(e, Markers::kStepIota);
  e.comment("iota step (split RC table; runs twice per round)");
  e.op("vsetvli x0,s1,e32,m1,tu,mu");
  e.op("viota.vx v0,v0,s6");
  e.op("viota.vx v16,v16,s7");
}

std::string build_source_32(const ProgramOptions& o) {
  const unsigned row_bytes = o.ele_num * 8;  // 64-bit lanes in memory
  Emitter e;
  e.raw("# Keccak-f[1600], 32-bit architecture, LMUL=8 (paper §3.2/§4.1)");
  e.raw(strfmt("# EleNum=%u, SN=%u, rounds=%u", o.ele_num, o.ele_num / 5,
               o.rounds));
  e.raw(".text");
  e.op("li s1, %u", o.ele_num);
  e.op("li s5, %u", 5 * o.ele_num);
  e.op("li s2, -1");
  e.op("li s3, %u", o.first_round);
  e.op("li s4, %u", o.first_round + o.rounds);
  e.op("li s6, %u", 2 * o.first_round);      // RC index, low halves
  e.op("li s7, %u", 2 * o.first_round + 1);  // RC index, high halves
  e.op("vsetvli x0,s1,e32,m1,tu,mu");
  e.comment("index vectors for the hi/lo lane exchange (indexed addressing)");
  e.op("la a1, idx_lo");
  e.op("vle32.v v30,(a1)");
  e.op("la a1, idx_hi");
  e.op("vle32.v v31,(a1)");
  e.comment("indexed loads: lo words -> v0..v4, hi words -> v16..v20");
  e.op("la a0, state");
  e.op("mv a1, a0");
  for (int y = 0; y < 5; ++y) {
    e.op("vluxei32.v v%d,(a1),v30", y);
    e.op("vluxei32.v v%d,(a1),v31", 16 + y);
    if (y != 4) e.op("addi a1,a1,%u", row_bytes);
  }
  e.blank();

  if (o.single_round) {
    emit_marker(e, Markers::kRoundStart);
    emit_round32_lmul8(e, true);
    emit_marker(e, Markers::kRoundEnd);
  } else {
    emit_marker(e, Markers::kPermStart);
    e.label("permutation");
    emit_marker(e, Markers::kRoundStart);
    emit_round32_lmul8(e, true);
    emit_marker(e, Markers::kRoundEnd);
    e.comment("next round");
    e.op("addi s6,s6,2");
    e.op("addi s7,s7,2");
    e.op("addi s3,s3,1");
    e.op("blt s3,s4,permutation");
    emit_marker(e, Markers::kPermEnd);
  }

  e.blank();
  e.comment("indexed stores back to the 64-bit lane layout");
  e.op("mv a1, a0");
  for (int y = 0; y < 5; ++y) {
    e.op("vsuxei32.v v%d,(a1),v30", y);
    e.op("vsuxei32.v v%d,(a1),v31", 16 + y);
    if (y != 4) e.op("addi a1,a1,%u", row_bytes);
  }
  e.op("ebreak");
  e.blank();
  e.raw(".data");
  e.label("state");
  e.op(".zero %u", 5 * row_bytes);
  e.label("idx_lo");
  for (unsigned i = 0; i < o.ele_num; ++i) e.op(".word %u", 8 * i);
  e.label("idx_hi");
  for (unsigned i = 0; i < o.ele_num; ++i) e.op(".word %u", 8 * i + 4);
  return e.take();
}

// ---------------------------------------------------------------------------
// Pure-RVV ablation (64-bit, no custom instructions).
// ---------------------------------------------------------------------------
//
// Register map:
//   v0..v4   state A           v15/v16/v17  gather indices (down1/up1/down2)
//   v5..v9   E / F scratch     v18..v22     rho shift amounts per plane
//   v10..v14 chi scratch       v23..v27     rho complement shifts per plane
//   v28      staging (pi indices / iota RC row)
// Scalars: s8=63, s9=idx_pi base, s10=scratch base, t5=rc row cursor.

void emit_round64_purervv(Emitter& e, const ProgramOptions& o, bool sm) {
  const unsigned row_bytes = o.ele_num * 8;
  e.comment("theta (vrgather slides + shift/or rotate)");
  e.op("vxor.vv v5,v3,v4");
  e.op("vxor.vv v6,v1,v2");
  e.op("vxor.vv v7,v0,v6");
  e.op("vxor.vv v5,v5,v7");
  e.op("vrgather.vv v6,v5,v16");   // B[x-1]
  e.op("vrgather.vv v7,v5,v15");   // B[x+1]
  e.op("vsll.vi v8,v7,1");
  e.op("vsrl.vx v9,v7,s8");
  e.op("vor.vv v7,v8,v9");
  e.op("vxor.vv v5,v6,v7");
  for (int y = 0; y < 5; ++y) e.op("vxor.vv v%d,v%d,v5", y, y);
  if (sm) emit_marker(e, Markers::kStepRho);
  e.comment("rho (per-element shift vectors, three ops per plane)");
  for (int y = 0; y < 5; ++y) {
    e.op("vsll.vv v10,v%d,v%d", y, 18 + y);
    e.op("vsrl.vv v11,v%d,v%d", y, 23 + y);
    e.op("vor.vv v%d,v10,v11", 5 + y);
  }
  if (sm) emit_marker(e, Markers::kStepPi);
  e.comment("pi (indexed-store scatter through memory, then reload)");
  e.op("mv t2, s9");
  for (int b = 0; b < 5; ++b) {
    e.op("vle32.v v28,(t2)");
    e.op("addi t2,t2,%u", o.ele_num * 4);
    e.op("vsuxei32.v v%d,(s10),v28", 5 + b);
  }
  e.op("mv t3, s10");
  for (int y = 0; y < 5; ++y) {
    e.op("vle64.v v%d,(t3)", 5 + y);
    if (y != 4) e.op("addi t3,t3,%u", row_bytes);
  }
  if (sm) emit_marker(e, Markers::kStepChi);
  e.comment("chi (vrgather slides)");
  for (int y = 0; y < 5; ++y) {
    e.op("vrgather.vv v10,v%d,v15", 5 + y);
    e.op("vxor.vx v10,v10,s2");
    e.op("vrgather.vv v11,v%d,v17", 5 + y);
    e.op("vand.vv v10,v10,v11");
    e.op("vxor.vv v%d,v%d,v10", y, 5 + y);
  }
  if (sm) emit_marker(e, Markers::kStepIota);
  e.comment("iota (staged RC row from memory)");
  e.op("vle64.v v28,(t5)");
  e.op("addi t5,t5,%u", row_bytes);
  e.op("vxor.vv v0,v0,v28");
}

std::string build_source_64_purervv(const ProgramOptions& o) {
  const unsigned row_bytes = o.ele_num * 8;
  const unsigned sn = o.ele_num / 5;
  Emitter e;
  e.raw("# Keccak-f[1600], 64-bit, standard RVV 1.0 instructions ONLY");
  e.raw("# (ablation: what the programmer must do without the custom ISE)");
  e.raw(strfmt("# EleNum=%u, SN=%u, rounds=%u", o.ele_num, sn, o.rounds));
  e.raw(".text");
  e.op("li s1, %u", o.ele_num);
  e.op("li s2, -1");
  e.op("li s3, 0");
  e.op("li s4, %u", o.rounds);
  e.op("li s8, 63");
  e.op("vsetvli x0,s1,e64,m1,tu,mu");
  e.comment("constant vectors: gather indices and rho shift amounts");
  e.op("la a1, tables");
  e.op("vle64.v v15,(a1)");
  for (int r = 0; r < 2; ++r) {
    e.op("addi a1,a1,%u", row_bytes);
    e.op("vle64.v v%d,(a1)", 16 + r);
  }
  for (int r = 0; r < 10; ++r) {
    e.op("addi a1,a1,%u", row_bytes);
    e.op("vle64.v v%d,(a1)", 18 + r);
  }
  e.op("la s9, idx_pi");
  e.op("la s10, scratch");
  e.op("la t5, rc_rows");
  e.comment("load the five planes");
  e.op("la a0, state");
  e.op("mv a1, a0");
  for (int y = 0; y < 5; ++y) {
    e.op("vle64.v v%d,(a1)", y);
    if (y != 4) e.op("addi a1,a1,%u", row_bytes);
  }
  e.blank();

  if (o.single_round) {
    emit_marker(e, Markers::kRoundStart);
    emit_round64_purervv(e, o, true);
    emit_marker(e, Markers::kRoundEnd);
  } else {
    emit_marker(e, Markers::kPermStart);
    e.label("permutation");
    emit_marker(e, Markers::kRoundStart);
    emit_round64_purervv(e, o, true);
    emit_marker(e, Markers::kRoundEnd);
    e.comment("next round");
    e.op("addi s3,s3,1");
    e.op("blt s3,s4,permutation");
    emit_marker(e, Markers::kPermEnd);
  }

  e.blank();
  e.op("mv a1, a0");
  for (int y = 0; y < 5; ++y) {
    e.op("vse64.v v%d,(a1)", y);
    if (y != 4) e.op("addi a1,a1,%u", row_bytes);
  }
  e.op("ebreak");

  // ---- data section ----
  const auto& rho = keccak::rho_offsets();
  const auto& rc = keccak::round_constants();
  e.blank();
  e.raw(".data");
  e.label("state");
  e.op(".zero %u", 5 * row_bytes);
  e.label("scratch");
  e.op(".zero %u", 5 * row_bytes + row_bytes);  // + dump zone for tail elems
  e.label("tables");
  // slide-down-1, slide-up-1, slide-down-2 gather indices.
  for (int delta : {+1, -1, +2}) {
    for (unsigned ei = 0; ei < o.ele_num; ++ei) {
      u64 idx = ei;
      if (ei < 5 * sn) {
        const unsigned i = ei / 5, j = ei % 5;
        idx = 5 * i + static_cast<unsigned>((static_cast<int>(j) + delta + 10) % 5);
      }
      e.op(".dword %llu", static_cast<unsigned long long>(idx));
    }
  }
  // rho shift amounts then complements, per plane.
  for (int pass = 0; pass < 2; ++pass) {
    for (unsigned y = 0; y < 5; ++y) {
      for (unsigned ei = 0; ei < o.ele_num; ++ei) {
        unsigned off = ei < 5 * sn ? rho[y][ei % 5] : 0;
        if (pass == 1) off = (64 - off) % 64;
        e.op(".dword %u", off);
      }
    }
  }
  e.label("idx_pi");
  // Scatter indices: source plane b element (5i + a) lands at
  // F[x = b, y = 2(a - b) mod 5] -> byte offset (y*EleNum + 5i + b)*8.
  for (unsigned b = 0; b < 5; ++b) {
    for (unsigned ei = 0; ei < o.ele_num; ++ei) {
      u32 off;
      if (ei < 5 * sn) {
        const unsigned i = ei / 5, a = ei % 5;
        const unsigned y = (2 * (a + 5 - b)) % 5;
        off = (y * o.ele_num + 5 * i + b) * 8;
      } else {
        off = 5 * row_bytes + ei * 8;  // dump zone
      }
      e.op(".word %u", off);
    }
  }
  e.op(".align 3");  // idx_pi is word-granular; RC rows are dwords
  e.label("rc_rows");
  for (unsigned r = 0; r < o.rounds; ++r) {
    for (unsigned ei = 0; ei < o.ele_num; ++ei) {
      const bool lane0 = ei < 5 * sn && ei % 5 == 0;
      e.op(".dword 0x%llx",
           static_cast<unsigned long long>(
               lane0 ? rc[(o.first_round + r) % 24] : 0));
    }
  }
  return e.take();
}

}  // namespace

std::string_view arch_name(Arch arch) noexcept {
  switch (arch) {
    case Arch::k64Lmul1: return "64-bit LMUL=1";
    case Arch::k64Lmul8: return "64-bit LMUL=8";
    case Arch::k32Lmul8: return "32-bit LMUL=8";
    case Arch::k64PureRvv: return "64-bit pure-RVV";
    case Arch::k64Fused: return "64-bit fused-ISE";
    case Arch::k64Lmul4Plus1: return "64-bit LMUL=4+1";
  }
  return "?";
}

KeccakProgram build_keccak_program(const ProgramOptions& options) {
  KVX_CHECK_MSG(options.ele_num >= 5, "need at least one Keccak state");
  KVX_CHECK_MSG(options.rounds >= 1 && options.rounds <= 24,
                "rounds must be in [1, 24]");
  KVX_CHECK_MSG(options.first_round + options.rounds <= 24,
                "first_round + rounds must not exceed 24");
  KVX_CHECK_MSG(options.absorb_blocks == 0 || !options.single_round,
                "absorb mode and single_round are exclusive");
  KVX_CHECK_MSG(options.absorb_blocks == 0 || options.arch != Arch::k32Lmul8,
                "on-device absorb is implemented for the 64-bit archs");
  KVX_CHECK_MSG(options.absorb_blocks == 0 || options.arch != Arch::k64PureRvv,
                "on-device absorb is implemented for the custom-ISE archs");
  KeccakProgram prog;
  prog.options = options;
  switch (options.arch) {
    case Arch::k64Lmul1:
    case Arch::k64Lmul8:
    case Arch::k64Fused:
    case Arch::k64Lmul4Plus1:
      prog.source = build_source_64(options);
      break;
    case Arch::k32Lmul8:
      prog.source = build_source_32(options);
      break;
    case Arch::k64PureRvv:
      prog.source = build_source_64_purervv(options);
      break;
  }
  prog.image = assembler::assemble(prog.source);
  return prog;
}

}  // namespace kvx::core
