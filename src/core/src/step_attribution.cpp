#include "kvx/core/step_attribution.hpp"

#include "kvx/core/program_builder.hpp"

namespace kvx::core {

obs::StepCycleStats attribute_step_cycles(
    std::span<const sim::Marker> markers) {
  // Narrow to the permutation window when the program brackets one.
  usize begin = 0, end = markers.size();
  for (usize i = 0; i < markers.size(); ++i) {
    if (markers[i].id == Markers::kPermStart) {
      begin = i;
      break;
    }
  }
  for (usize i = markers.size(); i > begin; --i) {
    if (markers[i - 1].id == Markers::kPermEnd) {
      end = i;
      break;
    }
  }

  obs::StepCycleStats s;
  if (end - begin < 2) return s;
  for (usize i = begin + 1; i < end; ++i) {
    const sim::Marker& prev = markers[i - 1];
    const sim::Marker& cur = markers[i];
    const u64 delta = cur.cycle - prev.cycle;
    switch (cur.id) {
      case Markers::kStepRho:
        s.theta += delta;
        break;
      case Markers::kStepPi:
      case Markers::kStepChi:
        s.rho_pi += delta;
        break;
      case Markers::kStepIota:
      case Markers::kRoundEnd:
        s.chi_iota += delta;
        if (cur.id == Markers::kRoundEnd) s.rounds += 1;
        break;
      case Markers::kRoundStart:
        if (prev.id == Markers::kAbsorb) {
          s.absorb += delta;
        } else {
          s.other += delta;
        }
        break;
      default:  // kAbsorb, kPermEnd, unknown ids: inter-region control
        s.other += delta;
        break;
    }
  }
  s.total = markers[end - 1].cycle - markers[begin].cycle;
  return s;
}

}  // namespace kvx::core
