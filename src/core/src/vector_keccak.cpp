#include "kvx/core/vector_keccak.hpp"

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::core {

namespace {

sim::ProcessorConfig processor_config(const VectorKeccakConfig& c) {
  sim::ProcessorConfig pc;
  pc.vector.elen_bits = arch_elen(c.arch);
  pc.vector.ele_num = c.ele_num;
  pc.vector.sn = c.sn();
  return pc;
}

}  // namespace

namespace {

ProgramOptions program_options(const VectorKeccakConfig& c, bool single_round) {
  ProgramOptions o;
  o.arch = c.arch;
  o.ele_num = c.ele_num;
  o.rounds = c.rounds;
  o.single_round = single_round;
  o.first_round = c.first_round;
  return o;
}

}  // namespace

std::shared_ptr<const KeccakProgram> VectorKeccak::build_program(
    const VectorKeccakConfig& config) {
  return std::make_shared<const KeccakProgram>(
      build_keccak_program(program_options(config, false)));
}

VectorKeccak::VectorKeccak(const VectorKeccakConfig& config)
    : VectorKeccak(config, build_program(config)) {}

VectorKeccak::VectorKeccak(const VectorKeccakConfig& config,
                           std::shared_ptr<const KeccakProgram> program)
    : config_(config),
      program_(std::move(program)),
      proc_(std::make_unique<sim::SimdProcessor>(processor_config(config))) {
  KVX_CHECK_MSG(config_.sn() >= 1, "EleNum must allow at least one state");
  KVX_CHECK_MSG(program_ != nullptr, "shared program must not be null");
  KVX_CHECK_MSG(program_->options.arch == config_.arch &&
                    program_->options.ele_num == config_.ele_num &&
                    program_->options.rounds == config_.rounds &&
                    program_->options.first_round == config_.first_round &&
                    !program_->options.single_round,
                "shared program was built for a different configuration");
  proc_->load_program(program_->image);
  state_base_ = program_->image.symbol("state");

  if (config_.backend != sim::ExecBackend::kInterpreter) {
    // The staged-state area is the verify region of the trace compiler's
    // data-independence check: its contents differ between the two recording
    // runs, so any program whose control flow or operands depend on state
    // data is rejected and we stay on the interpreter.
    sim::TraceCompileOptions opts;
    opts.verify_base = state_base_;
    opts.verify_len = usize{5} * config_.ele_num * 8;
    try {
      if (config_.backend == sim::ExecBackend::kFusedTrace) {
        fused_ = sim::TraceCache::global().get_or_compile_fused(
            program_->image, processor_config(config_), opts);
      } else {
        trace_ = sim::TraceCache::global().get_or_compile(
            program_->image, processor_config(config_), opts);
      }
    } catch (const SimError&) {
      trace_ = nullptr;  // interpreter fallback
      fused_ = nullptr;
    }
  }
}

void VectorKeccak::stage_states(std::span<const keccak::State> states) {
  // Plane-major layout (paper Figure 5): row y holds lane (x, y) of state s
  // at element 5s + x. Unused elements are zeroed.
  const unsigned e = config_.ele_num;
  std::vector<u8> block(5 * e * 8, 0);
  for (unsigned y = 0; y < 5; ++y) {
    for (usize s = 0; s < states.size(); ++s) {
      for (unsigned x = 0; x < 5; ++x) {
        const u64 lane = states[s].lane(x, y);
        const usize off = (y * e + 5 * s + x) * 8;
        for (unsigned b = 0; b < 8; ++b) {
          block[off + b] = static_cast<u8>(lane >> (8 * b));
        }
      }
    }
  }
  proc_->dmem().write_block(state_base_, block);
}

void VectorKeccak::unstage_states(std::span<keccak::State> states) const {
  const unsigned e = config_.ele_num;
  for (unsigned y = 0; y < 5; ++y) {
    for (usize s = 0; s < states.size(); ++s) {
      for (unsigned x = 0; x < 5; ++x) {
        const u32 addr =
            state_base_ + static_cast<u32>((y * e + 5 * s + x) * 8);
        states[s].lane(x, y) = proc_->dmem().read64(addr);
      }
    }
  }
}

void VectorKeccak::permute(std::span<keccak::State> states) {
  if (states.size() > config_.sn()) {
    throw Error(strfmt("permute: %zu states exceed SN=%u", states.size(),
                       config_.sn()));
  }
  stage_states(states);
  if (fused_ != nullptr) {
    // Super-kernel replay: architectural effects identical to the base
    // trace (and hence the interpreter); timing passes through unchanged.
    proc_->vector().clear_registers();
    fused_->execute(proc_->vector(), proc_->dmem(),
                    proc_->config().cycle_model);
    timing_.total_cycles = fused_->total_cycles();
    timing_.permutation_cycles =
        fused_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = fused_->instructions();
    step_cycles_ = attribute_step_cycles(fused_->markers());
  } else if (trace_ != nullptr) {
    // Replay the pre-decoded kernel trace. Register file and data memory
    // end up bit-identical to an interpreter run; timing was recorded from
    // the interpreter under the same cycle model.
    proc_->vector().clear_registers();
    trace_->execute(proc_->vector(), proc_->dmem(),
                    proc_->config().cycle_model);
    timing_.total_cycles = trace_->total_cycles();
    timing_.permutation_cycles =
        trace_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = trace_->instructions();
    step_cycles_ = attribute_step_cycles(trace_->markers());
  } else {
    proc_->reset_run_state();
    proc_->vector().clear_registers();
    proc_->run();
    timing_.total_cycles = proc_->cycles();
    timing_.permutation_cycles =
        proc_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = proc_->stats().instructions;
    step_cycles_ = attribute_step_cycles(proc_->markers());
  }
  unstage_states(states);
}

u64 VectorKeccak::measure_round_cycles() const {
  const KeccakProgram p =
      build_keccak_program(program_options(config_, /*single_round=*/true));
  sim::SimdProcessor proc(processor_config(config_));
  proc.load_program(p.image);
  proc.run();
  return proc.cycles_between(Markers::kRoundStart, Markers::kRoundEnd);
}

u64 VectorKeccak::measure_permutation_cycles() {
  std::vector<keccak::State> states(config_.sn());
  permute(states);
  return timing_.permutation_cycles;
}

}  // namespace kvx::core
