#include "kvx/core/vector_keccak.hpp"

#include <cstring>
#include <string_view>

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/trace_event.hpp"

namespace kvx::core {

namespace {

/// Every injector-produced error message carries this marker (see
/// fault_injector.cpp), which is how forensics tell injected failures from
/// genuine ones without threading a flag through the exception. Searched
/// as a substring because what() wraps the message in an error-category
/// prefix ("sim: ...").
bool is_injected_error(const char* error) noexcept {
  return std::string_view(error).find("injected fault") !=
         std::string_view::npos;
}

sim::ProcessorConfig processor_config(const VectorKeccakConfig& c) {
  sim::ProcessorConfig pc;
  pc.vector.elen_bits = arch_elen(c.arch);
  pc.vector.ele_num = c.ele_num;
  pc.vector.sn = c.sn();
  return pc;
}

}  // namespace

namespace {

ProgramOptions program_options(const VectorKeccakConfig& c, bool single_round) {
  ProgramOptions o;
  o.arch = c.arch;
  o.ele_num = c.ele_num;
  o.rounds = c.rounds;
  o.single_round = single_round;
  o.first_round = c.first_round;
  return o;
}

}  // namespace

std::shared_ptr<const KeccakProgram> VectorKeccak::build_program(
    const VectorKeccakConfig& config) {
  return std::make_shared<const KeccakProgram>(
      build_keccak_program(program_options(config, false)));
}

VectorKeccak::VectorKeccak(const VectorKeccakConfig& config)
    : VectorKeccak(config, build_program(config)) {}

VectorKeccak::VectorKeccak(const VectorKeccakConfig& config,
                           std::shared_ptr<const KeccakProgram> program)
    : config_(config),
      program_(std::move(program)),
      proc_(std::make_unique<sim::SimdProcessor>(processor_config(config))) {
  KVX_CHECK_MSG(config_.sn() >= 1, "EleNum must allow at least one state");
  KVX_CHECK_MSG(program_ != nullptr, "shared program must not be null");
  KVX_CHECK_MSG(program_->options.arch == config_.arch &&
                    program_->options.ele_num == config_.ele_num &&
                    program_->options.rounds == config_.rounds &&
                    program_->options.first_round == config_.first_round &&
                    !program_->options.single_round,
                "shared program was built for a different configuration");
  proc_->load_program(program_->image);
  state_base_ = program_->image.symbol("state");

  // The staged-state area is the verify region of the trace compiler's
  // data-independence check: its contents differ between the two recording
  // runs, so any program whose control flow or operands depend on state
  // data is rejected. Rejection (genuine or injected) demotes tier by tier
  // — fused → trace → interpreter — and each demotion is counted.
  sim::TraceCompileOptions opts;
  opts.verify_base = state_base_;
  opts.verify_len = usize{5} * config_.ele_num * 8;
  sim::FaultInjector* inj = config_.fault_injector.get();
  for (sim::ExecBackend tier = config_.backend;
       tier != sim::ExecBackend::kInterpreter;
       tier = sim::demote_backend(tier)) {
    try {
      // Injected compile failures are drawn here, NOT inside the trace
      // cache: the cache caches rejections negatively, and an injected
      // fault must never poison the shared artifact for other shards.
      if (inj != nullptr && inj->draw(sim::FaultSite::kTraceCompile)) {
        inj->fail_compile(std::string(sim::backend_name(tier)));
      }
      if (tier == sim::ExecBackend::kJit) {
        jit_ = sim::TraceCache::global().get_or_compile_jit(
            program_->image, processor_config(config_), opts);
        // Demotion targets of transient jit dispatch faults (including
        // host-ISA drift): the native code shares its host-SIMD plan and,
        // through it, the whole lower chain — no extra cache round trips.
        hs_ = jit_->shared_host_simd();
        fused_ = hs_->shared_fused();
        trace_ = fused_->shared_base();
      } else if (tier == sim::ExecBackend::kHostSimd) {
        hs_ = sim::TraceCache::global().get_or_compile_host_simd(
            program_->image, processor_config(config_), opts);
        // Demotion targets of transient host-simd dispatch faults: the
        // plan shares its fused artifact and (through it) the base
        // recording, so no extra cache round trips.
        fused_ = hs_->shared_fused();
        trace_ = fused_->shared_base();
      } else if (tier == sim::ExecBackend::kFusedTrace) {
        fused_ = sim::TraceCache::global().get_or_compile_fused(
            program_->image, processor_config(config_), opts);
        // Demotion target of transient fused-dispatch faults: the fused
        // artifact already shares its base recording, so no extra cache
        // round trip (and no extra cache-hit accounting).
        trace_ = fused_->shared_base();
      } else {
        trace_ = sim::TraceCache::global().get_or_compile(
            program_->image, processor_config(config_), opts);
      }
      break;
    } catch (const SimError& e) {
      jit_ = nullptr;
      hs_ = nullptr;
      fused_ = nullptr;
      trace_ = nullptr;
      construction_attempts_.push_back(
          {tier, e.what(), is_injected_error(e.what())});
      note_fallback(tier, sim::demote_backend(tier), e.what());
    }
  }
  last_backend_ = active_backend();
  if (trace_ != nullptr) {
    // The marker stream was recorded once from the interpreter and is
    // immutable; every trace-backed tier replays it verbatim, so its
    // attribution can be computed here instead of on every dispatch.
    trace_step_cycles_ = attribute_step_cycles(trace_->markers());
  }
}

void VectorKeccak::note_fallback(sim::ExecBackend from, sim::ExecBackend to,
                                 const char* error) {
  fallbacks_ += 1;
  last_fallback_error_ = error;
  obs::FlightRecorder::global().record(
      obs::FlightEventType::kBackendDemotion,
      static_cast<u16>((static_cast<u16>(from) << 8) |
                       static_cast<u16>(to)),
      is_injected_error(error) ? 1 : 0, obs::flight_hash(error));
  obs::TraceEventSink& sink = obs::TraceEventSink::global();
  if (sink.enabled()) {
    sink.instant("sim", "backend_fallback",
                 strfmt("{\"from\":\"%s\",\"to\":\"%s\"}",
                        std::string(sim::backend_name(from)).c_str(),
                        std::string(sim::backend_name(to)).c_str()));
  }
}

void VectorKeccak::stage_states(std::span<const keccak::State> states) {
  // Plane-major layout (paper Figure 5): row y holds lane (x, y) of state s
  // at element 5s + x. Unused elements are zeroed. One lane is one aligned
  // 8-byte copy into a reused scratch block (lanes are little-endian u64s,
  // same as the simulated memory), staged with a single block write.
  const unsigned e = config_.ele_num;
  stage_block_.assign(usize{5} * e * 8, 0);
  for (unsigned y = 0; y < 5; ++y) {
    for (usize s = 0; s < states.size(); ++s) {
      for (unsigned x = 0; x < 5; ++x) {
        const u64 lane = states[s].lane(x, y);
        std::memcpy(&stage_block_[(y * e + 5 * s + x) * 8], &lane, 8);
      }
    }
  }
  proc_->dmem().write_block(state_base_, stage_block_);
}

void VectorKeccak::unstage_states(std::span<keccak::State> states) const {
  const unsigned e = config_.ele_num;
  stage_block_.resize(usize{5} * e * 8);
  proc_->dmem().read_block(state_base_, stage_block_);
  for (unsigned y = 0; y < 5; ++y) {
    for (usize s = 0; s < states.size(); ++s) {
      for (unsigned x = 0; x < 5; ++x) {
        std::memcpy(&states[s].lane(x, y),
                    &stage_block_[(y * e + 5 * s + x) * 8], 8);
      }
    }
  }
}

void VectorKeccak::permute(std::span<keccak::State> states) {
  if (states.size() > config_.sn()) {
    throw Error(strfmt("permute: %zu states exceed SN=%u", states.size(),
                       config_.sn()));
  }
  sim::ExecBackend tier = active_backend();
  dispatch_attempts_.clear();
  for (;;) {
    try {
      run_backend(tier, states);
      last_backend_ = tier;
      dispatch_attempts_.push_back({tier, "", false});
      unstage_states(states);
      return;
    } catch (const SimError& e) {
      dispatch_attempts_.push_back(
          {tier, e.what(), is_injected_error(e.what())});
      if (tier == sim::ExecBackend::kInterpreter) throw;
      // run_backend restages the input states on entry, so whatever the
      // faulted tier left in the register file or the staged-state region
      // (including injected bit flips) cannot leak into the retry.
      const sim::ExecBackend to = sim::demote_backend(tier);
      note_fallback(tier, to, e.what());
      tier = to;
    }
  }
}

void VectorKeccak::run_backend(sim::ExecBackend tier,
                               std::span<const keccak::State> states) {
  stage_states(states);
  sim::FaultInjector* inj = config_.fault_injector.get();
  const std::string tier_name(sim::backend_name(tier));
  std::optional<sim::FaultKind> fault;
  if (inj != nullptr) {
    fault = inj->draw(sim::FaultSite::kExecute);
    if (fault == sim::FaultKind::kSimFault) inj->throw_sim_fault(tier_name);
  }
  if (tier == sim::ExecBackend::kJit) {
    // Emitted native code over the host-SIMD plan; register file, data
    // memory and (pass-through) timing are bit-identical to the host-simd
    // tier — and hence every tier below it.
    proc_->vector().clear_registers();
    jit_->execute(proc_->vector(), proc_->dmem(),
                  proc_->config().cycle_model);
    timing_.total_cycles = jit_->total_cycles();
    timing_.permutation_cycles =
        jit_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = jit_->instructions();
    step_cycles_ = trace_step_cycles_;
  } else if (tier == sim::ExecBackend::kHostSimd) {
    // Lowered super-kernel runs on the host's own vector ISA; register
    // file and data memory end up bit-identical to the fused tier (and
    // hence the interpreter); timing passes through unchanged.
    proc_->vector().clear_registers();
    hs_->execute(proc_->vector(), proc_->dmem(),
                 proc_->config().cycle_model);
    timing_.total_cycles = hs_->total_cycles();
    timing_.permutation_cycles =
        hs_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = hs_->instructions();
    step_cycles_ = trace_step_cycles_;
  } else if (tier == sim::ExecBackend::kFusedTrace) {
    // Super-kernel replay: architectural effects identical to the base
    // trace (and hence the interpreter); timing passes through unchanged.
    proc_->vector().clear_registers();
    fused_->execute(proc_->vector(), proc_->dmem(),
                    proc_->config().cycle_model);
    timing_.total_cycles = fused_->total_cycles();
    timing_.permutation_cycles =
        fused_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = fused_->instructions();
    step_cycles_ = trace_step_cycles_;
  } else if (tier == sim::ExecBackend::kCompiledTrace) {
    // Replay the pre-decoded kernel trace. Register file and data memory
    // end up bit-identical to an interpreter run; timing was recorded from
    // the interpreter under the same cycle model.
    proc_->vector().clear_registers();
    trace_->execute(proc_->vector(), proc_->dmem(),
                    proc_->config().cycle_model);
    timing_.total_cycles = trace_->total_cycles();
    timing_.permutation_cycles =
        trace_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = trace_->instructions();
    step_cycles_ = trace_step_cycles_;
  } else {
    proc_->reset_run_state();
    proc_->vector().clear_registers();
    if (inj != nullptr && inj->plan().at_instruction != 0) {
      // Site-addressed synthetic fault: throw out of the interpreter at a
      // chosen executed-instruction index (one-shot). The hook is cleared
      // on every exit path so later runs pay nothing for it.
      u64 executed = 0;
      proc_->set_trace([inj, &executed](u32, const isa::Instruction&) {
        if (inj->fire_instruction_fault(++executed)) {
          throw SimError(strfmt(
              "injected fault: synthetic fault at instruction %llu",
              static_cast<unsigned long long>(executed)));
        }
      });
      try {
        proc_->run();
      } catch (...) {
        proc_->set_trace({});
        throw;
      }
      proc_->set_trace({});
    } else {
      proc_->run();
    }
    timing_.total_cycles = proc_->cycles();
    timing_.permutation_cycles =
        proc_->cycles_between(Markers::kPermStart, Markers::kPermEnd);
    timing_.instructions = proc_->stats().instructions;
    step_cycles_ = attribute_step_cycles(proc_->markers());
  }
  if (fault.has_value()) {
    // Detected corruption: flip one bit in the tier's output state, then
    // raise — the demoted retry (or the caller's per-job error) takes over.
    inj->corrupt(*fault, proc_->vector(), proc_->dmem(), state_base_,
                 usize{5} * config_.ele_num * 8, tier_name);
  }
}

u64 VectorKeccak::measure_round_cycles() const {
  const KeccakProgram p =
      build_keccak_program(program_options(config_, /*single_round=*/true));
  sim::SimdProcessor proc(processor_config(config_));
  proc.load_program(p.image);
  proc.run();
  return proc.cycles_between(Markers::kRoundStart, Markers::kRoundEnd);
}

u64 VectorKeccak::measure_permutation_cycles() {
  std::vector<keccak::State> states(config_.sn());
  permute(states);
  return timing_.permutation_cycles;
}

}  // namespace kvx::core
