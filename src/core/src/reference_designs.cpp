#include "kvx/core/reference_designs.hpp"

#include <array>

namespace kvx::core {
namespace {

constexpr ReferenceDesign kRawat{
    "Vector Extensions (GEM5)", "[20]", 64,
    /*cycles_per_round=*/66.0, /*cycles_per_byte=*/std::nullopt,
    /*throughput_e3=*/1010.1, /*area_slices=*/std::nullopt};

constexpr std::array<ReferenceDesign, 5> kTable8 = {{
    {"LEON3 ISE", "[25]", 32, std::nullopt, 369.0, 21.68, 8648},
    {"MIPS Native ISE", "[10]", 32, std::nullopt, 178.1, 44.92, 6595},
    {"MIPS Co-processor ISE", "[10]", 32, std::nullopt, 137.9, 58.01, 7643},
    {"OASIP", "[19]", 32, std::nullopt, 291.5, 27.44, 981},
    {"DASIP", "[19]", 32, std::nullopt, 130.4, 61.35, 1522},
}};

constexpr ReferenceDesign kIbexCcode{
    "Ibex core (C-code)", "[13,16]", 32,
    /*cycles_per_round=*/2908.0, /*cycles_per_byte=*/355.69,
    /*throughput_e3=*/22.45, /*area_slices=*/432};

}  // namespace

const ReferenceDesign& rawat_vector_ise() noexcept { return kRawat; }

std::span<const ReferenceDesign> table8_references() noexcept { return kTable8; }

const ReferenceDesign& paper_ibex_ccode() noexcept { return kIbexCcode; }

}  // namespace kvx::core
