#include "kvx/core/area_model.hpp"

#include <cmath>

#include "kvx/common/error.hpp"

namespace kvx::core {
namespace {

/// Quadratic slices(EleNum) = a + b·n + c·n², fitted exactly through the
/// paper's three published points per ELEN.
struct Quadratic {
  double a, b, c;
  [[nodiscard]] double eval(double n) const { return a + b * n + c * n * n; }
};

/// Solve the 3-point interpolation for (n0,s0),(n1,s1),(n2,s2).
constexpr Quadratic fit(double n0, double s0, double n1, double s1, double n2,
                        double s2) {
  // Divided differences.
  const double d01 = (s1 - s0) / (n1 - n0);
  const double d12 = (s2 - s1) / (n2 - n1);
  const double c = (d12 - d01) / (n2 - n0);
  const double b = d01 - c * (n0 + n1);
  const double a = s0 - b * n0 - c * n0 * n0;
  return {a, b, c};
}

// Paper Table 7: 64-bit, EleNum 5/15/30 -> 7323 / 24789 / 48180 slices.
constexpr Quadratic kFit64 = fit(5, 7323, 15, 24789, 30, 48180);
// Paper Table 8: 32-bit, EleNum 5/15/30 -> 6359 / 23408 / 48036 slices.
constexpr Quadratic kFit32 = fit(5, 6359, 15, 23408, 30, 48036);

}  // namespace

unsigned AreaModel::simd_processor_slices(unsigned elen_bits, unsigned ele_num) {
  KVX_CHECK_MSG(elen_bits == 32 || elen_bits == 64, "ELEN must be 32 or 64");
  KVX_CHECK_MSG(ele_num >= 1 && ele_num <= 100,
                "area model calibrated for EleNum in [1, 100]");
  const Quadratic& q = elen_bits == 64 ? kFit64 : kFit32;
  const double v = q.eval(static_cast<double>(ele_num));
  // Never report below the bare scalar core.
  return static_cast<unsigned>(
      std::lround(std::max(v, static_cast<double>(scalar_core_slices()))));
}

AreaModel::Breakdown AreaModel::breakdown(unsigned elen_bits, unsigned ele_num) {
  const unsigned total = simd_processor_slices(elen_bits, ele_num);
  const unsigned vec = total - scalar_core_slices();
  // Qualitative split following §4.2: the 32-bit design spends a larger
  // share on the paired rotation networks, the 64-bit one on the wider
  // datapath and register file.
  const double rf = elen_bits == 64 ? 0.38 : 0.30;
  const double dp = elen_bits == 64 ? 0.34 : 0.26;
  const double rot = elen_bits == 64 ? 0.14 : 0.30;
  Breakdown b{};
  b.scalar_core = scalar_core_slices();
  b.vector_regfile = static_cast<unsigned>(vec * rf);
  b.lane_datapath = static_cast<unsigned>(vec * dp);
  b.rotation_network = static_cast<unsigned>(vec * rot);
  b.control = vec - b.vector_regfile - b.lane_datapath - b.rotation_network;
  return b;
}

}  // namespace kvx::core
