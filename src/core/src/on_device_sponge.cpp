#include "kvx/core/on_device_sponge.hpp"

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/core/step_attribution.hpp"
#include "kvx/core/vector_keccak.hpp"

namespace kvx::core {

OnDeviceSponge::OnDeviceSponge(Arch arch, unsigned ele_num, usize rate_bytes_in)
    : arch_(arch), ele_num_(ele_num), rate_(rate_bytes_in) {
  KVX_CHECK_MSG(arch == Arch::k64Lmul1 || arch == Arch::k64Lmul8 ||
                    arch == Arch::k64Fused,
                "on-device sponge requires a 64-bit custom-ISE arch");
  KVX_CHECK_MSG(ele_num_ >= 5, "need at least one state");
  KVX_CHECK_MSG(rate_ > 0 && rate_ < keccak::kStateBytes && rate_ % 8 == 0,
                "rate must be a positive multiple of 8 below 200");
}

OnDeviceSponge::Engine& OnDeviceSponge::engine_for(unsigned blocks) {
  auto it = engines_.find(blocks);
  if (it == engines_.end()) {
    ProgramOptions opts;
    opts.arch = arch_;
    opts.ele_num = ele_num_;
    opts.absorb_blocks = blocks;
    Engine engine{build_keccak_program(opts), nullptr};
    sim::ProcessorConfig cfg;
    cfg.vector.elen_bits = 64;
    cfg.vector.ele_num = ele_num_;
    // Block staging grows with message size; size the data memory to fit.
    cfg.dmem_bytes =
        std::max<usize>(1 << 20, (blocks + 2) * 5ull * ele_num_ * 8 + (1 << 16));
    engine.proc = std::make_unique<sim::SimdProcessor>(cfg);
    engine.proc->load_program(engine.program.image);
    it = engines_.emplace(blocks, std::move(engine)).first;
  }
  return it->second;
}

std::vector<keccak::State> OnDeviceSponge::absorb(
    std::span<const std::vector<u8>> padded_messages) {
  KVX_CHECK_MSG(!padded_messages.empty(), "no messages");
  KVX_CHECK_MSG(padded_messages.size() <= sn(), "more messages than SN");
  const usize len = padded_messages[0].size();
  KVX_CHECK_MSG(len > 0 && len % rate_ == 0,
                "messages must be rate-padded (multiple of the rate)");
  for (const auto& m : padded_messages) {
    KVX_CHECK_MSG(m.size() == len, "lockstep absorb requires equal lengths");
  }
  const auto blocks = static_cast<unsigned>(len / rate_);

  Engine& engine = engine_for(blocks);
  sim::SimdProcessor& proc = *engine.proc;

  // Stage every block, plane-major per state: block region b holds, for row
  // y and state s, lane (x, y) of that message's b-th rate block (lanes
  // beyond the rate are zero — the capacity is never touched by absorb).
  const u32 blocks_base = engine.program.image.symbol("blocks");
  const unsigned e = ele_num_;
  std::vector<u8> staged(static_cast<usize>(blocks) * 5 * e * 8, 0);
  for (unsigned b = 0; b < blocks; ++b) {
    for (usize s = 0; s < padded_messages.size(); ++s) {
      const auto& msg = padded_messages[s];
      for (usize lane = 0; lane < rate_ / 8; ++lane) {
        u64 v = 0;
        for (unsigned k = 0; k < 8; ++k) {
          v |= static_cast<u64>(msg[b * rate_ + 8 * lane + k]) << (8 * k);
        }
        const usize x = lane % 5;
        const usize y = lane / 5;
        const usize off =
            (static_cast<usize>(b) * 5 * e + y * e + 5 * s + x) * 8;
        for (unsigned k = 0; k < 8; ++k) {
          staged[off + k] = static_cast<u8>(v >> (8 * k));
        }
      }
    }
  }
  proc.dmem().write_block(blocks_base, staged);

  // Zero-initialize the state region (fresh sponge), run, read back.
  const u32 state_base = engine.program.image.symbol("state");
  proc.dmem().write_block(state_base, std::vector<u8>(5 * e * 8, 0));
  proc.vector().clear_registers();
  proc.reset_run_state();
  proc.run();
  last_cycles_ = proc.cycles_between(Markers::kPermStart, Markers::kPermEnd);
  step_cycles_ = attribute_step_cycles(proc.markers());

  // Absorb overhead: cycles from each kAbsorb marker to the work the
  // permutation itself would have cost (total minus rounds) / blocks.
  const auto absorb_marks = proc.marker_deltas(Markers::kAbsorb);
  if (!absorb_marks.empty()) {
    // Delta between consecutive block starts = absorb phase + permutation.
    // A plain permutation-only program costs perm_only cycles per block.
    VectorKeccak plain({arch_, ele_num_, 24});
    const u64 perm_only = plain.measure_permutation_cycles();
    const u64 per_block = absorb_marks.front();
    absorb_overhead_ = per_block > perm_only ? per_block - perm_only : 0;
  }

  std::vector<keccak::State> states(padded_messages.size());
  for (unsigned y = 0; y < 5; ++y) {
    for (usize s = 0; s < states.size(); ++s) {
      for (unsigned x = 0; x < 5; ++x) {
        states[s].lane(x, y) =
            proc.dmem().read64(state_base + static_cast<u32>(
                                                (y * e + 5 * s + x) * 8));
      }
    }
  }
  return states;
}

}  // namespace kvx::core
