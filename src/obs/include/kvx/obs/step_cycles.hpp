// Per-step cycle attribution of the Keccak permutation programs.
//
// The paper's whole argument is cycle-level: its tables break one
// Keccak-f[1600] round into the step mappings θ, ρπ and χι per architecture
// variant. StepCycleStats is the observability-layer carrier for exactly
// that breakdown, rolled up from the 0-cycle markers the generated programs
// emit (kvx/core/program_builder.hpp) and accumulated across permutations,
// batches and engine shards.
//
// Invariant (enforced by tests/test_observability.cpp): every cycle between
// the permutation-start and permutation-end markers lands in exactly one
// bucket, so theta + rho_pi + chi_iota + absorb + other == total, exactly,
// on every backend (interpreter, compiled trace, fused trace).
#pragma once

#include "kvx/common/types.hpp"

namespace kvx::obs {

/// Cycles attributed to each Keccak step mapping (the paper's grouping:
/// ρ and π as one mapping, χ and ι as one mapping).
struct StepCycleStats {
  u64 theta = 0;     ///< θ: column parity + combine + apply
  u64 rho_pi = 0;    ///< ρπ: lane rotations + the column-mode permutation
  u64 chi_iota = 0;  ///< χι: row nonlinearity + round constant
  u64 absorb = 0;    ///< on-device absorb staging (block load + XOR)
  u64 other = 0;     ///< loop control and anything between rounds
  u64 total = 0;     ///< permutation-start to permutation-end, inclusive
  u64 rounds = 0;    ///< Keccak rounds covered

  constexpr StepCycleStats& operator+=(const StepCycleStats& o) noexcept {
    theta += o.theta;
    rho_pi += o.rho_pi;
    chi_iota += o.chi_iota;
    absorb += o.absorb;
    other += o.other;
    total += o.total;
    rounds += o.rounds;
    return *this;
  }

  /// Counter-style difference (all fields are monotone accumulators).
  [[nodiscard]] constexpr StepCycleStats minus(
      const StepCycleStats& o) const noexcept {
    return {theta - o.theta,       rho_pi - o.rho_pi, chi_iota - o.chi_iota,
            absorb - o.absorb,     other - o.other,   total - o.total,
            rounds - o.rounds};
  }

  /// Sum of every attribution bucket; equals `total` by construction.
  [[nodiscard]] constexpr u64 attributed() const noexcept {
    return theta + rho_pi + chi_iota + absorb + other;
  }

  friend constexpr bool operator==(const StepCycleStats&,
                                   const StepCycleStats&) noexcept = default;
};

}  // namespace kvx::obs
