// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
// histograms with striped per-thread shards aggregated on scrape.
//
// Hot-path cost is one relaxed fetch_add on a cache-line-padded shard
// selected by a thread-local stripe index — no registry lock, no
// allocation, no contention between engine worker shards. Scraping
// (snapshot / to_prometheus / to_json) walks every stripe under the
// registry mutex; it is intended for periodic exporters and end-of-run
// dumps, not per-job paths.
//
// Exposition formats:
//  * to_prometheus() — Prometheus text exposition format 0.0.4
//    (`# HELP` / `# TYPE` headers, `_bucket{le="..."}` histogram series);
//  * to_json()       — a stable machine-readable snapshot
//    {"counters":{...},"gauges":{...},"histograms":{...}} consumed by
//    `kvx-batch --metrics-json` and the CI observability smoke step.
//
// Metric names must match [a-zA-Z_][a-zA-Z0-9_]* (enforced); see
// docs/observability.md for the names the engine and trace cache export.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::obs {

namespace detail {

/// Number of stripes counters/histograms are sharded over. A power of two
/// comfortably above the engine's worker-thread counts keeps stripe
/// collisions (and hence cache-line bouncing) rare without bloating every
/// metric.
inline constexpr usize kStripes = 16;

/// Stable per-thread stripe index in [0, kStripes).
[[nodiscard]] usize stripe_index() noexcept;

/// One cache line per stripe so two threads never false-share a counter.
struct alignas(64) PaddedU64 {
  std::atomic<u64> value{0};
};

}  // namespace detail

/// Monotone counter. inc() is wait-free on the caller's stripe.
class Counter {
 public:
  void inc(u64 delta = 1) noexcept {
    stripes_[detail::stripe_index()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Aggregated value across all stripes.
  [[nodiscard]] u64 value() const noexcept {
    u64 sum = 0;
    for (const auto& s : stripes_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  detail::PaddedU64 stripes_[detail::kStripes];
};

/// Last-write-wins gauge (queue depth, coverage percentages, ...). Stored as
/// a double so it can carry ratios; set/add are single relaxed atomics.
///
/// A gauge can alternatively be *bound* to a callback: value() — and hence
/// every scrape — then evaluates the callback instead of reading the stored
/// value, so the metric is aggregated at observation time and can never go
/// stale or race with its source (the engine binds its queue-depth gauges
/// this way; see docs/observability.md). set()/add() while bound still
/// update the stored value but stay shadowed until unbind().
class Gauge {
 public:
  void set(double v) noexcept { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double delta) noexcept {
    u64 cur = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const u64 next = pack(unpack(cur) + delta);
      if (bits_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
        return;
      }
    }
  }
  [[nodiscard]] double value() const;

  /// Last stored value, never evaluating a bound callback — the only value
  /// the post-mortem writer may read from a signal context. Bound gauges
  /// report their most recent set() (0 if never set) until unbind() freezes
  /// the final callback value.
  [[nodiscard]] double stored_value() const noexcept {
    return unpack(bits_.load(std::memory_order_relaxed));
  }

  /// Bind `fn` as the live value source. Returns a token for unbind();
  /// a later bind supersedes an earlier one (its token goes stale).
  u64 bind(std::function<double()> fn);
  /// Remove the callback if `token` is still the current binding, storing
  /// the callback's final value so post-unbind reads stay meaningful.
  void unbind(u64 token);

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  static u64 pack(double v) noexcept {
    u64 bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    return bits;
  }
  static double unpack(u64 bits) noexcept {
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::atomic<u64> bits_{0};
  /// Callback binding (scrape path only; set()/value() without a binding
  /// never touch the mutex).
  std::atomic<bool> bound_{false};
  mutable std::mutex cb_mutex_;
  std::function<double()> cb_;
  u64 cb_token_ = 0;
};

/// Fixed-bucket histogram. Bounds are upper-inclusive (`le`), strictly
/// increasing, fixed at creation; observations beyond the last bound land
/// only in the implicit +Inf bucket. Each stripe owns a full bucket array,
/// so observe() touches only the caller's stripe.
class Histogram {
 public:
  /// One exemplar per bucket: the bucket-max observation and the flight-
  /// recorder sequence number recorded with it (0 = none yet). kvx-doctor
  /// uses the latency histogram's exemplars to reconstruct what the engine
  /// was doing around its worst jobs.
  struct Exemplar {
    u64 value = 0;
    u64 flight_seq = 0;
  };

  void observe(u64 v) noexcept;
  /// observe(v), additionally stamping `flight_seq` as the bucket's
  /// exemplar if `v` is the largest observation that bucket has seen.
  void observe_exemplar(u64 v, u64 flight_seq) noexcept;

  [[nodiscard]] const std::vector<u64>& bounds() const noexcept {
    return bounds_;
  }
  /// Cumulative count per bound (Prometheus `le` semantics) plus +Inf last.
  [[nodiscard]] std::vector<u64> cumulative_counts() const;
  [[nodiscard]] u64 count() const noexcept;
  [[nodiscard]] u64 sum() const noexcept;
  /// Per-bucket exemplars (bounds + 1 entries).
  [[nodiscard]] std::vector<Exemplar> exemplars() const;

  /// Allocation-free scrape for the post-mortem writer: fills per-bucket
  /// (non-cumulative) counts and exemplars into caller-owned arrays of at
  /// least bounds().size() + 1 entries. Signal-safe; returns the bucket
  /// count written, or 0 if `cap` is too small.
  usize fill_pm(u64* counts, u64* ex_value, u64* ex_seq, u64* sum_out,
                usize cap) const noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<u64> bounds);

  struct Stripe {
    detail::PaddedU64 sum;
    std::unique_ptr<std::atomic<u64>[]> buckets;  ///< bounds + 1 (+Inf)
  };

  /// CAS-max on value, then store seq: two racing observers may leave the
  /// smaller one's seq behind — an acceptable diagnostic-grade race that
  /// keeps the hot path to one load + (rarely) one CAS.
  struct ExemplarSlot {
    std::atomic<u64> value{0};
    std::atomic<u64> seq{0};
  };

  std::vector<u64> bounds_;
  Stripe stripes_[detail::kStripes];
  std::unique_ptr<ExemplarSlot[]> exemplars_;  ///< bounds + 1 (shared)
};

/// Callback-backed summary: quantiles evaluated at scrape time from a
/// source the owner keeps (the engine's latency reservoir). Exposed in the
/// Prometheus text format as `name{quantile="..."}` series plus _sum and
/// _count, and under "summaries" in the JSON exposition. Omitted from
/// post-mortem dumps (the callback needs the owner's lock).
class Summary {
 public:
  struct Snapshot {
    std::vector<std::pair<double, double>> quantiles;  ///< (q, value)
    u64 count = 0;
    double sum = 0.0;
  };

  /// Bind the snapshot source; same token/supersession contract as
  /// Gauge::bind.
  u64 bind(std::function<Snapshot()> fn);
  /// Freeze the final snapshot if `token` is still the current binding.
  void unbind(u64 token);
  [[nodiscard]] Snapshot value() const;

 private:
  friend class MetricsRegistry;
  Summary() = default;
  mutable std::mutex mutex_;
  std::function<Snapshot()> cb_;
  u64 cb_token_ = 0;
  Snapshot frozen_;
};

/// Exponential default buckets for nanosecond latencies: 1 µs .. ~17 s.
[[nodiscard]] std::vector<u64> default_latency_bounds_ns();

/// Point-in-time snapshot of one metric (stable scrape order: registration
/// order within each kind).
struct MetricSample {
  std::string name;
  std::string help;
  /// Pre-rendered Prometheus label pairs (`k="v",k2="v2"`); "" for the
  /// common unlabeled case.
  std::string labels;
  enum class Kind { kCounter, kGauge, kHistogram, kSummary } kind =
      Kind::kCounter;
  u64 counter_value = 0;
  double gauge_value = 0.0;
  std::vector<u64> bounds;        ///< histogram only
  std::vector<u64> cumulative;    ///< histogram only, bounds + 1 entries
  std::vector<Histogram::Exemplar> exemplars;  ///< histogram only
  u64 hist_count = 0;
  u64 hist_sum = 0;
  Summary::Snapshot summary;      ///< summary only
};

class MetricsRegistry {
 public:
  /// The process-wide registry the engine, trace cache and tools share.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Re-registering an existing name returns the
  /// same object; a kind mismatch throws kvx::Error, as does an invalid
  /// name. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Gauge carrying fixed, pre-rendered Prometheus labels (`k="v",...`) —
  /// exposed as `name{labels} value` (kvx_build_info). Lookup is by name
  /// only; the labels of the first registration win.
  Gauge& labeled_gauge(const std::string& name, const std::string& labels,
                       const std::string& help = "");
  /// `bounds` must be strictly increasing; empty = default_latency_bounds_ns.
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       std::vector<u64> bounds = {});
  Summary& summary(const std::string& name, const std::string& help = "");

  [[nodiscard]] std::vector<MetricSample> snapshot() const;
  [[nodiscard]] std::string to_prometheus() const;
  [[nodiscard]] std::string to_json() const;

  /// Drop every metric (tests only — outstanding references go stale).
  void reset();

  // --- Async-signal-safe scrape support (post-mortem dumps) ---------------
  // Registration also appends each entry to a fixed, append-only side index
  // readable without the registry mutex. Summaries are excluded (their
  // value needs a callback); bound gauges report stored_value().

  static constexpr usize kPmMaxMetrics = 256;
  static constexpr usize kPmMaxBuckets = 32;

  struct PmRead {
    const char* name = nullptr;  ///< NOT nul-padded; use name_len
    usize name_len = 0;
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    u64 counter_value = 0;
    double gauge_value = 0.0;
    const u64* bounds = nullptr;
    usize bounds_len = 0;        ///< 0 also when bounds+1 > kPmMaxBuckets
    u64 counts[kPmMaxBuckets];   ///< per-bucket, bounds_len + 1 valid
    u64 sum = 0;
    u64 ex_value[kPmMaxBuckets];
    u64 ex_seq[kPmMaxBuckets];
  };

  /// Entries registered so far (monotone; stable once returned).
  [[nodiscard]] usize pm_count() const noexcept {
    return pm_count_.load(std::memory_order_acquire);
  }
  /// Sample metric `i` of the side index into `out` without locking or
  /// allocating. Signal-safe. Returns false for i ≥ pm_count().
  bool pm_read(usize i, PmRead& out) const noexcept;

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string labels;
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Summary> summary;
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        MetricSample::Kind kind);
  void pm_publish_locked(Entry& e);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  Entry* pm_entries_[kPmMaxMetrics] = {};
  std::atomic<usize> pm_count_{0};
};

}  // namespace kvx::obs
