// Always-on, lock-free, fixed-memory flight recorder.
//
// Every thread that records events claims one fixed-capacity ring of
// compact structured slots; a process-wide monotonic sequence number is
// stamped into each event so the per-thread rings can be merged into one
// causal timeline after the fact (snapshot_merged(), the post-mortem dump,
// kvx-doctor). The recorder is the black box the fail-soft engine flies
// with: job submit/retire/failure, dispatch, backend demotions (with
// from/to tier and an error hash), trace-cache compiles and hits,
// fault-injector firings and queue park/steal all leave a trace here at a
// cost of one relaxed fetch_add plus a handful of relaxed stores.
//
// Concurrency model:
//  * Writers: each ring has exactly one owner thread at a time (claimed on
//    the thread's first event, released by its thread-local destructor and
//    then reusable by a later thread). Slot writes use a seqlock protocol —
//    seq := 0, payload, seq := s (release) — so a concurrent reader either
//    sees a consistent slot or skips it.
//  * Readers (snapshot_merged, the dump writer) never take a lock and never
//    stop the writers: torn slots are simply dropped. All cross-thread
//    fields are std::atomic, so the whole protocol is clean under TSan.
//  * Memory is fixed: at most kMaxRings rings of kRingCapacity slots, ever.
//    Rings wrap (old events are overwritten) and threads beyond kMaxRings
//    drop events into a counter instead of blocking — the recorder degrades
//    by forgetting, never by slowing the engine down.
//
// The crash handler (kvx/obs/postmortem.hpp) reads rings via ring_at() with
// only async-signal-safe operations; record() itself must NOT be called
// from a signal context (it may allocate on a thread's first event).
#pragma once

#include <atomic>
#include <string_view>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::obs {

/// Event vocabulary. Values are part of the on-disk post-mortem format
/// (dump version 1) — append new types, never renumber.
enum class FlightEventType : u16 {
  kNone = 0,
  kJobSubmit = 1,        ///< a0 = first seq id, a1 = job count
  kJobRetire = 2,        ///< code = failed-in-batch, a0 = first seq id, a1 = jobs
  kJobFail = 3,          ///< a0 = job seq id, a1 = error hash
  kDispatch = 4,         ///< a0 = jobs in batch, a1 = shard index
  kBackendDemotion = 5,  ///< code = (from<<8)|to tier, a0 = injected, a1 = error hash
  kTraceCompile = 6,     ///< code = artifact tier (0 trace/1 fused/2 host-simd/3 jit), a0 = ns
  kTraceReject = 7,      ///< code = artifact tier, a1 = error hash
  kTraceCacheHit = 8,    ///< cache lookup served without compiling
  kFaultInjected = 9,    ///< code = fault kind bit, a0 = site, a1 = draw index
  kQueuePark = 10,       ///< code = 0 consumer / 1 producer
  kQueueSteal = 11,      ///< a0 = victim ring, a1 = jobs stolen
};

/// Stable lower-case name ("job_submit", "backend_demotion", ...).
[[nodiscard]] std::string_view flight_event_name(FlightEventType t) noexcept;

/// FNV-1a 64 of an error string — events carry the hash, not the text, so
/// recording never allocates. kvx-doctor matches hashes across events.
[[nodiscard]] u64 flight_hash(std::string_view s) noexcept;

/// One decoded event (snapshot_merged(), parse_dump()).
struct FlightEvent {
  u64 seq = 0;   ///< global causal order (1-based, strictly increasing)
  u64 ns = 0;    ///< steady-clock timestamp
  u16 type_raw = 0;
  u16 code = 0;
  u32 ring = 0;  ///< ring (≈ thread) the event was recorded on
  u64 a0 = 0;
  u64 a1 = 0;

  [[nodiscard]] FlightEventType type() const noexcept {
    return static_cast<FlightEventType>(type_raw);
  }
};

class FlightRecorder {
 public:
  static constexpr usize kMaxRings = 32;
  static constexpr usize kRingCapacity = 1024;  ///< power of two

  /// One storage slot: a seqlock over 5 atomics. seq == 0 means "empty or
  /// mid-write"; readers re-check seq after loading the payload.
  struct Slot {
    std::atomic<u64> seq{0};
    std::atomic<u64> ns{0};
    std::atomic<u64> meta{0};  ///< type | code << 16
    std::atomic<u64> a0{0};
    std::atomic<u64> a1{0};
  };

  struct Ring {
    std::atomic<u64> written{0};   ///< events ever written (monotone)
    std::atomic<u32> claimed{0};   ///< 1 while an owner thread is alive
    u32 index = 0;                 ///< dense ring id (stable for life)
    Slot slots[kRingCapacity];
  };

  /// The process-wide recorder (intentionally leaked: thread-local ring
  /// releases may run during late thread teardown).
  static FlightRecorder& global();

  /// Record one event; returns its global sequence number (0 when the
  /// recorder is disabled or every ring is taken). Wait-free after the
  /// calling thread's first event. NOT async-signal-safe.
  u64 record(FlightEventType type, u16 code = 0, u64 a0 = 0,
             u64 a1 = 0) noexcept;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Disable/re-enable recording (the overhead bench measures both sides).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  struct RingInfo {
    u32 index = 0;
    u64 written = 0;  ///< events ever written; > stored means the ring wrapped
    u64 stored = 0;   ///< slots currently holding events (≤ kRingCapacity)
  };

  /// Merge every ring into one timeline sorted by global sequence number.
  /// Lock-free and non-quiescent: events written concurrently may or may
  /// not appear, torn slots are skipped.
  [[nodiscard]] std::vector<FlightEvent> snapshot_merged(
      std::vector<RingInfo>* rings = nullptr) const;

  /// Events dropped because more than kMaxRings threads recorded.
  [[nodiscard]] u64 dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Live rings (allocated so far; ≤ kMaxRings). Signal-safe.
  [[nodiscard]] usize ring_count() const noexcept {
    return ring_count_.load(std::memory_order_acquire);
  }
  /// Raw ring access for the post-mortem writer. Signal-safe; may return
  /// nullptr for i ≥ ring_count().
  [[nodiscard]] const Ring* ring_at(usize i) const noexcept {
    return i < kMaxRings ? rings_[i].load(std::memory_order_acquire) : nullptr;
  }

  /// Zero every ring and restart the sequence counter. Tests only — racing
  /// writers on other threads may interleave undefined-but-safe garbage.
  void clear() noexcept;

 private:
  FlightRecorder() = default;

  Ring* claim_ring() noexcept;
  friend struct FlightTls;

  std::atomic<Ring*> rings_[kMaxRings] = {};
  std::atomic<u32> ring_count_{0};
  std::atomic<u64> seq_{1};
  std::atomic<u64> dropped_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace kvx::obs
