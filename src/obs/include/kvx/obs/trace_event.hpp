// Chrome trace_event JSON tracer.
//
// Events are recorded into fixed-capacity per-thread ring buffers and
// drained into the Trace Event Format's JSON array form
// ({"traceEvents":[...]}) at shutdown — the files open directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Emitted phases:
//
//   'X' complete  — a named span with ts + dur (job execution, trace
//                   compile/fuse phases, batch dispatches);
//   'i' instant   — a point event (trace-cache hit/miss, job submit);
//   'C' counter   — a sampled numeric series (queue depth).
//
// Timestamps are microseconds (double) from the steady clock, rebased to
// the first enable() call; tid is a small dense per-thread index. Tracing
// is globally disabled by default: when disabled, record sites cost one
// relaxed atomic load. When a ring wraps, the oldest events are overwritten
// and a per-ring dropped counter is reported in the metadata so truncation
// is never silent.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::obs {

class TraceEventSink {
 public:
  /// The process-wide sink the engine, trace cache and tools share.
  static TraceEventSink& global();

  TraceEventSink();
  TraceEventSink(const TraceEventSink&) = delete;
  TraceEventSink& operator=(const TraceEventSink&) = delete;

  /// Start recording. The first call pins the timestamp origin.
  void enable();
  /// Stop recording; already-buffered events are kept for write_json().
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the trace origin (monotonic). 0 before enable().
  [[nodiscard]] double now_us() const noexcept;

  /// 'X' complete event: a span [begin_us, begin_us + dur_us) on this
  /// thread's track. `cat` groups events in the viewer ("engine", "backend",
  /// "cache"); `args_json` is an optional pre-serialized JSON object body
  /// (e.g. "{\"bytes\":4096}") attached as the event's args.
  void complete(const char* cat, const char* name, double begin_us,
                double dur_us, std::string args_json = {});

  /// 'i' instant event at now.
  void instant(const char* cat, const char* name, std::string args_json = {});

  /// 'C' counter sample: series `name` takes `value` at now.
  void counter(const char* cat, const char* name, double value);

  /// Serialize everything recorded so far as a Chrome trace JSON document.
  /// Events from all threads are merged; per-thread drop counts (ring
  /// overwrites) are included as metadata events named "kvx_dropped_events".
  [[nodiscard]] std::string to_json() const;

  /// to_json() straight to a file. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Total events overwritten by ring wrap-around across all threads.
  [[nodiscard]] u64 dropped() const;

  /// Forget all buffered events and drop counts (tests only).
  void clear();

 private:
  struct Event {
    char phase = 'i';          // 'X', 'i', 'C'
    const char* cat = "";      // static string
    const char* name = "";     // static string
    double ts_us = 0.0;
    double dur_us = 0.0;       // 'X' only
    double value = 0.0;        // 'C' only
    std::string args_json;     // optional, pre-serialized object
  };

  /// One ring per thread; the ring's mutex is only ever contended by the
  /// end-of-run drain, so record-side locking is effectively uncontended.
  struct Ring {
    static constexpr usize kCapacity = 1 << 14;  // 16384 events / thread
    mutable std::mutex mutex;
    std::vector<Event> events;  // circular once full
    usize next = 0;             // write cursor
    u64 dropped = 0;            // overwritten events
    u32 tid = 0;                // dense thread index for the viewer
  };

  Ring& ring_for_this_thread();
  void record(Event e);

  /// Process-unique, never reused — the per-thread ring cache is keyed by
  /// this rather than the sink's address, so a new sink allocated where a
  /// destroyed one lived can never revive a stale cached ring.
  const u64 id_;

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_{};

  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII helper emitting one 'X' complete event for the enclosing scope.
class TraceSpan {
 public:
  TraceSpan(TraceEventSink& sink, const char* cat, const char* name)
      : sink_(sink), cat_(cat), name_(name) {
    if (sink_.enabled()) begin_us_ = sink_.now_us();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (begin_us_ >= 0.0 && sink_.enabled()) {
      sink_.complete(cat_, name_, begin_us_, sink_.now_us() - begin_us_,
                     std::move(args_json_));
    }
  }

  /// Attach a pre-serialized JSON object as the span's args.
  void set_args(std::string args_json) { args_json_ = std::move(args_json); }

 private:
  TraceEventSink& sink_;
  const char* cat_;
  const char* name_;
  double begin_us_ = -1.0;
  std::string args_json_;
};

}  // namespace kvx::obs
