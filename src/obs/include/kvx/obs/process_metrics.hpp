// Build-info and process self-metrics.
//
// publish_build_info() registers the conventional Prometheus info gauge
//   kvx_build_info{version="...",compiler="...",host_simd_isa="...",jit="..."} 1
// and mirrors the same text into every post-mortem dump. register_
// process_metrics() binds kvx_process_rss_bytes, kvx_process_cpu_seconds_
// total and kvx_process_uptime_seconds so each scrape reads live values.
// Both are idempotent per registry generation and cheap to call from every
// engine construction (they survive MetricsRegistry::reset() in tests by
// simply re-registering).
#pragma once

#include <string>

#include "kvx/common/types.hpp"

namespace kvx::obs {

/// Version string baked into the library ("unknown" if the build did not
/// define KVX_VERSION_STRING).
[[nodiscard]] const char* build_version() noexcept;

/// Compiler identification string (__VERSION__).
[[nodiscard]] const char* build_compiler() noexcept;

/// Register/refresh kvx_build_info with the given dynamic labels and push
/// the text block into post-mortem dumps. `host_simd_isa` is the tier-zero
/// lowering ISA ("avx2", "avx512", "scalar", ...); `jit` is "on"/"off".
void publish_build_info(const std::string& host_simd_isa,
                        const std::string& jit);

/// Bind kvx_process_rss_bytes (resident set, /proc/self/statm; 0 where
/// unavailable), kvx_process_cpu_seconds_total (getrusage user+sys) and
/// kvx_process_uptime_seconds (steady clock since first call).
void register_process_metrics();

}  // namespace kvx::obs
