// Crash post-mortems: async-signal-safe dumps of the flight recorder, the
// metrics registry, per-engine/per-shard stat mirrors and build info.
//
// Two producers write the same versioned binary format (see below):
//  * install_crash_handler() hooks the fatal signals (SIGSEGV, SIGBUS,
//    SIGILL, SIGFPE, SIGABRT) and std::terminate. The handler runs with
//    only async-signal-safe operations — pre-resolved file path, raw
//    open/write, fixed stack buffers, atomic loads — writes one dump to
//    `<dir>/kvx_postmortem_<pid>_crash.kvxdump`, then re-raises the signal
//    with the default disposition so the exit status is preserved.
//  * dump_now(reason) writes an explicit dump from normal context (same
//    writer, same constraints kept for simplicity) and returns the path.
//    auto_dump(reason) is the rate-capped variant the engine calls on every
//    backend demotion and per-job failure; it is a no-op until enabled.
//
// Configuration: set_dump_dir()/set_auto_dump()/install_crash_handler()
// explicitly, or export KVX_POSTMORTEM=<dir> and let init_from_env() (run
// by every BatchHashEngine construction) switch everything on at once.
// KVX_POSTMORTEM_MAX caps auto dumps per process (default 4; explicit
// dump_now() calls are never capped).
//
// Dump format, version 1 (little-endian, packed):
//   header : magic "KVXPMDMP" | u32 version | u32 section_count | u64 pid
//   section: u32 kind | u32 reserved | u64 payload_bytes | payload
//   kinds  : 1 reason     — u32 signal | u32 len | bytes
//            2 build_info — u32 len | "key=value\n"... text
//            3 events     — u32 ring_count | u32 dropped_lo; per ring:
//                           u32 index | u32 pad | u64 written | u64 stored |
//                           stored × (seq,ns,meta,a0,a1) u64 records
//                           (seq == 0 records are torn/empty: skip)
//            4 metrics    — u32 count; per metric: u32 kind | u32 name_len |
//                           u32 bounds_len | u32 pad | name |
//                           counter: u64 value / gauge: f64 bits /
//                           histogram: bounds | per-bucket counts | sum |
//                           per-bucket exemplar (value, flight seq) pairs
//            5 engines    — u32 count; per engine: u32 shard_count|u32 pad|
//                           u64 submitted|completed|failed; per shard 7×u64
//                           (jobs, failures, fallbacks, dispatches,
//                            sim_cycles, permutations, bytes)
// Constraints the format inherits from signal context: bound gauges report
// their last stored value (callbacks cannot run under a signal), summary
// metrics are omitted (they are derived under the engine lock), and a
// mid-flight dump may legitimately show submitted > completed + failed.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "kvx/common/types.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/metrics.hpp"

namespace kvx::obs::pm {

inline constexpr u32 kDumpVersion = 1;
inline constexpr char kDumpMagic[8] = {'K', 'V', 'X', 'P', 'M', 'D', 'M', 'P'};

enum class SectionKind : u32 {
  kReason = 1,
  kBuildInfo = 2,
  kEvents = 3,
  kMetrics = 4,
  kEngines = 5,
};

// ---------------------------------------------------------------------------
// Engine stat mirrors: POD blocks of relaxed atomics engines keep in sync so
// the signal handler can scrape per-shard EngineStats without any lock.

inline constexpr usize kMaxEngines = 8;
inline constexpr usize kMaxShards = 32;

struct EngineShardMirror {
  std::atomic<u64> jobs{0};
  std::atomic<u64> failures{0};
  std::atomic<u64> fallbacks{0};
  std::atomic<u64> dispatches{0};
  std::atomic<u64> sim_cycles{0};
  std::atomic<u64> permutations{0};
  std::atomic<u64> bytes{0};
};

struct EngineMirror {
  std::atomic<u32> in_use{0};
  std::atomic<u32> shard_count{0};
  std::atomic<u64> submitted{0};
  std::atomic<u64> completed{0};
  std::atomic<u64> failed{0};
  EngineShardMirror shards[kMaxShards];
};

/// Claim a mirror slot (nullptr once kMaxEngines engines are live — such an
/// engine simply stays invisible to dumps).
[[nodiscard]] EngineMirror* claim_engine_mirror() noexcept;
void release_engine_mirror(EngineMirror* mirror) noexcept;

// ---------------------------------------------------------------------------
// Configuration + dump entry points.

/// Directory dumps are written to ("." until configured). Also enables
/// auto dumps.
void set_dump_dir(const std::string& dir);
void set_auto_dump(bool enabled) noexcept;
[[nodiscard]] bool auto_dump_enabled() noexcept;

/// Hook SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT (on an alternate stack) and
/// std::terminate. Idempotent; chains to the default disposition after the
/// dump so exit statuses and core files are unaffected.
void install_crash_handler();

/// Record the build-info text ("key=value\n"...) embedded in every dump.
/// Truncated to an internal fixed buffer; later calls overwrite.
void set_build_info(const std::string& text);

/// Write one dump right now; returns the file path ("" on I/O failure).
/// Never rate-capped. Safe from any normal (non-signal) context.
std::string dump_now(const std::string& reason);

/// dump_now() iff auto dumps are enabled and fewer than the cap have been
/// written (KVX_POSTMORTEM_MAX, default 4). The engine calls this on every
/// backend demotion and per-job failure.
void auto_dump(const char* reason) noexcept;

/// Dumps written by this process so far (crash + explicit + auto).
[[nodiscard]] u64 dump_count() noexcept;

/// One-shot: if KVX_POSTMORTEM is set, adopt it as the dump directory,
/// enable auto dumps and install the crash handler. Called by every
/// BatchHashEngine construction; cheap and idempotent.
void init_from_env();

// ---------------------------------------------------------------------------
// Parsing (kvx-doctor, tests). Plain ifstream reads; throws kvx::Error on a
// malformed file.

struct DumpRing {
  u32 index = 0;
  u64 written = 0;
  u64 stored = 0;
};

struct DumpMetric {
  std::string name;
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  u64 counter_value = 0;
  double gauge_value = 0.0;
  std::vector<u64> bounds;
  std::vector<u64> bucket_counts;  ///< per-bucket (not cumulative), bounds+1
  u64 sum = 0;
  std::vector<std::pair<u64, u64>> exemplars;  ///< (value, flight seq) per bucket
};

struct DumpShard {
  u64 jobs = 0;
  u64 failures = 0;
  u64 fallbacks = 0;
  u64 dispatches = 0;
  u64 sim_cycles = 0;
  u64 permutations = 0;
  u64 bytes = 0;
};

struct DumpEngine {
  u64 submitted = 0;
  u64 completed = 0;
  u64 failed = 0;
  std::vector<DumpShard> shards;
};

struct PostmortemDump {
  u32 version = 0;
  u64 pid = 0;
  int signal = 0;         ///< 0 for explicit dumps
  std::string reason;
  std::string build_info;
  u64 events_dropped = 0;
  std::vector<DumpRing> rings;
  std::vector<FlightEvent> events;  ///< merged, sorted by seq
  std::vector<DumpMetric> metrics;
  std::vector<DumpEngine> engines;
};

[[nodiscard]] PostmortemDump parse_dump(const std::string& path);

}  // namespace kvx::obs::pm
