#include "kvx/obs/trace_event.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace kvx::obs {

namespace {

std::string format_ts(double v) {
  // Chrome's importer accepts fractional microseconds; three decimals keeps
  // nanosecond resolution without float noise.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::atomic<u64> g_next_sink_id{1};

}  // namespace

TraceEventSink::TraceEventSink()
    : id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceEventSink& TraceEventSink::global() {
  static TraceEventSink sink;
  return sink;
}

void TraceEventSink::enable() {
  std::lock_guard lock(rings_mutex_);
  if (origin_ == std::chrono::steady_clock::time_point{}) {
    origin_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceEventSink::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double TraceEventSink::now_us() const noexcept {
  if (origin_ == std::chrono::steady_clock::time_point{}) return 0.0;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - origin_)
                      .count();
  return static_cast<double>(ns) / 1e3;
}

TraceEventSink::Ring& TraceEventSink::ring_for_this_thread() {
  // One ring per (sink, thread). The cache is keyed by the sink's
  // process-unique id, not its address: tests construct and destroy their
  // own sinks, and a successor allocated at the same address must not
  // resurrect a pointer into the freed predecessor's rings.
  thread_local u64 cached_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_id == id_ && cached_ring != nullptr) return *cached_ring;

  std::lock_guard lock(rings_mutex_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<u32>(rings_.size());
  ring->events.reserve(256);
  rings_.push_back(std::move(ring));
  cached_id = id_;
  cached_ring = rings_.back().get();
  return *cached_ring;
}

void TraceEventSink::record(Event e) {
  Ring& ring = ring_for_this_thread();
  std::lock_guard lock(ring.mutex);
  if (ring.events.size() < Ring::kCapacity) {
    ring.events.push_back(std::move(e));
  } else {
    ring.events[ring.next] = std::move(e);
    ring.dropped += 1;
  }
  ring.next = (ring.next + 1) % Ring::kCapacity;
}

void TraceEventSink::complete(const char* cat, const char* name,
                              double begin_us, double dur_us,
                              std::string args_json) {
  if (!enabled()) return;
  Event e;
  e.phase = 'X';
  e.cat = cat;
  e.name = name;
  e.ts_us = begin_us;
  e.dur_us = dur_us;
  e.args_json = std::move(args_json);
  record(std::move(e));
}

void TraceEventSink::instant(const char* cat, const char* name,
                             std::string args_json) {
  if (!enabled()) return;
  Event e;
  e.phase = 'i';
  e.cat = cat;
  e.name = name;
  e.ts_us = now_us();
  e.args_json = std::move(args_json);
  record(std::move(e));
}

void TraceEventSink::counter(const char* cat, const char* name, double value) {
  if (!enabled()) return;
  Event e;
  e.phase = 'C';
  e.cat = cat;
  e.name = name;
  e.ts_us = now_us();
  e.value = value;
  record(std::move(e));
}

std::string TraceEventSink::to_json() const {
  std::lock_guard lock(rings_mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ',';
    first = false;
    out += obj;
  };
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    const std::string tid = std::to_string(ring->tid);
    // Replay in ring order: when wrapped, the oldest surviving event sits at
    // the write cursor.
    const usize n = ring->events.size();
    const usize start = n < Ring::kCapacity ? 0 : ring->next;
    for (usize i = 0; i < n; ++i) {
      const Event& e = ring->events[(start + i) % n];
      std::string obj = "{\"ph\":\"";
      obj += e.phase;
      obj += "\",\"cat\":\"";
      obj += e.cat;
      obj += "\",\"name\":\"";
      obj += e.name;
      obj += "\",\"pid\":1,\"tid\":" + tid +
             ",\"ts\":" + format_ts(e.ts_us);
      if (e.phase == 'X') {
        obj += ",\"dur\":" + format_ts(e.dur_us);
      }
      if (e.phase == 'C') {
        obj += ",\"args\":{\"value\":" + format_ts(e.value) + "}";
      } else if (!e.args_json.empty()) {
        obj += ",\"args\":" + e.args_json;
      }
      obj += '}';
      emit(obj);
    }
    if (ring->dropped != 0) {
      emit("{\"ph\":\"i\",\"cat\":\"obs\",\"name\":\"kvx_dropped_events\","
           "\"pid\":1,\"tid\":" +
           tid + ",\"ts\":0,\"args\":{\"dropped\":" +
           std::to_string(ring->dropped) + "}}");
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceEventSink::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

u64 TraceEventSink::dropped() const {
  std::lock_guard lock(rings_mutex_);
  u64 total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void TraceEventSink::clear() {
  std::lock_guard lock(rings_mutex_);
  for (auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

}  // namespace kvx::obs
