#include "kvx/obs/postmortem.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "kvx/common/error.hpp"

namespace kvx::obs::pm {

namespace {

// ---------------------------------------------------------------------------
// Configuration state. Everything the signal handler touches is either an
// atomic or a fixed buffer that is only mutated from normal context before
// the handler can fire (set_dump_dir/install happen at startup in practice;
// a torn path in a true startup race yields a failed open(), not UB).

constexpr usize kDirMax = 512;
constexpr usize kPathMax = 640;
constexpr usize kBuildInfoMax = 1024;
constexpr usize kReasonMax = 256;

char g_dump_dir[kDirMax] = ".";
std::atomic<bool> g_auto_dump{false};
std::atomic<u64> g_auto_cap{4};
std::atomic<u64> g_dumps_written{0};
std::atomic<u64> g_auto_dumps_written{0};

char g_build_info[kBuildInfoMax];
std::atomic<usize> g_build_info_len{0};

/// Crash path pre-rendered at install time so the handler never formats.
char g_crash_path[kPathMax];
std::atomic<bool> g_crash_path_ready{false};
std::atomic<u32> g_crash_dump_active{0};  ///< double-fault guard

std::atomic<bool> g_handler_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

// ---------------------------------------------------------------------------
// Async-signal-safe writer: raw fd, fixed buffer, EINTR retries. Every
// helper is noexcept and allocation-free; both the crash handler and
// dump_now() use it so the two paths can never diverge in format.

class Writer {
 public:
  explicit Writer(int fd) noexcept : fd_(fd) {}
  ~Writer() { flush(); }

  void put_bytes(const void* data, usize len) noexcept {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const usize room = sizeof buf_ - used_;
      if (room == 0) {
        flush();
        continue;
      }
      const usize take = len < room ? len : room;
      std::memcpy(buf_ + used_, p, take);
      used_ += take;
      p += take;
      len -= take;
    }
  }
  void put_u32(u32 v) noexcept { put_bytes(&v, sizeof v); }
  void put_u64(u64 v) noexcept { put_bytes(&v, sizeof v); }
  void put_f64(double v) noexcept { put_bytes(&v, sizeof v); }

  void flush() noexcept {
    usize off = 0;
    while (off < used_) {
      const ssize_t n = ::write(fd_, buf_ + off, used_ - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok_ = false;
        break;
      }
      off += static_cast<usize>(n);
    }
    used_ = 0;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  int fd_;
  char buf_[512];
  usize used_ = 0;
  bool ok_ = true;
};

/// Minimal unsigned decimal formatter (snprintf is not signal-safe).
usize format_u64(u64 v, char* out, usize cap) noexcept {
  char tmp[20];
  usize n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  if (n > cap) return 0;
  for (usize i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

/// Build "<dir>/kvx_postmortem_<pid>_<tag>.kvxdump" into `out`. `tag` is
/// either a literal ("crash") or a dump ordinal. Signal-safe.
bool build_path(char* out, usize cap, const char* dir, u64 pid,
                const char* tag_str, u64 tag_num, bool use_num) noexcept {
  usize pos = 0;
  const auto append = [&](const char* s) {
    const usize len = std::strlen(s);
    if (pos + len >= cap) return false;
    std::memcpy(out + pos, s, len);
    pos += len;
    return true;
  };
  const auto append_num = [&](u64 v) {
    char digits[20];
    const usize len = format_u64(v, digits, sizeof digits);
    if (len == 0 || pos + len >= cap) return false;
    std::memcpy(out + pos, digits, len);
    pos += len;
    return true;
  };
  if (!append(dir) || !append("/kvx_postmortem_") || !append_num(pid) ||
      !append("_")) {
    return false;
  }
  if (use_num ? !append_num(tag_num) : !append(tag_str)) return false;
  if (!append(".kvxdump")) return false;
  out[pos] = '\0';
  return true;
}

// ---------------------------------------------------------------------------
// Section payloads. Each section is written in two passes over the same
// data: size_*() computes payload_bytes for the section header, write_*()
// emits it. State that could move between the passes (ring `written`
// cursors, metric count) is captured once up front so header and payload
// always agree; slots that advance mid-write only change *values*, and
// torn slots are emitted as zero records the parser skips.

struct EventsPlan {
  usize ring_count = 0;
  u64 stored[FlightRecorder::kMaxRings];
  u64 written[FlightRecorder::kMaxRings];
  u32 index[FlightRecorder::kMaxRings];
};

void plan_events(EventsPlan& plan) noexcept {
  const FlightRecorder& rec = FlightRecorder::global();
  const usize n = rec.ring_count();
  plan.ring_count = 0;
  for (usize i = 0; i < n && i < FlightRecorder::kMaxRings; ++i) {
    const FlightRecorder::Ring* ring = rec.ring_at(i);
    if (ring == nullptr) continue;
    const u64 written = ring->written.load(std::memory_order_acquire);
    const usize k = plan.ring_count++;
    plan.index[k] = ring->index;
    plan.written[k] = written;
    plan.stored[k] = written < FlightRecorder::kRingCapacity
                         ? written
                         : FlightRecorder::kRingCapacity;
  }
}

u64 size_events(const EventsPlan& plan) noexcept {
  u64 bytes = 8;  // ring_count + dropped_lo
  for (usize i = 0; i < plan.ring_count; ++i) {
    bytes += 8 + 16 + plan.stored[i] * 40;
  }
  return bytes;
}

void write_events(Writer& w, const EventsPlan& plan) noexcept {
  const FlightRecorder& rec = FlightRecorder::global();
  w.put_u32(static_cast<u32>(plan.ring_count));
  w.put_u32(static_cast<u32>(rec.dropped() & 0xFFFFFFFFull));
  for (usize i = 0; i < plan.ring_count; ++i) {
    w.put_u32(plan.index[i]);
    w.put_u32(0);
    w.put_u64(plan.written[i]);
    w.put_u64(plan.stored[i]);
    const FlightRecorder::Ring* ring = rec.ring_at(plan.index[i]);
    for (u64 s = 0; s < plan.stored[i]; ++s) {
      if (ring == nullptr) {  // unreachable (rings are never freed)
        for (int f = 0; f < 5; ++f) w.put_u64(0);
        continue;
      }
      const FlightRecorder::Slot& slot = ring->slots[s];
      const u64 seq0 = slot.seq.load(std::memory_order_acquire);
      const u64 ns = slot.ns.load(std::memory_order_relaxed);
      const u64 meta = slot.meta.load(std::memory_order_relaxed);
      const u64 a0 = slot.a0.load(std::memory_order_relaxed);
      const u64 a1 = slot.a1.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) != seq0) {
        for (int f = 0; f < 5; ++f) w.put_u64(0);  // torn: zero record
        continue;
      }
      w.put_u64(seq0);
      w.put_u64(ns);
      w.put_u64(meta);
      w.put_u64(a0);
      w.put_u64(a1);
    }
  }
}

u64 metric_payload_bytes(const MetricsRegistry::PmRead& m) noexcept {
  u64 bytes = 16 + m.name_len;  // kind + name_len + bounds_len + pad + name
  switch (m.kind) {
    case MetricSample::Kind::kCounter:
    case MetricSample::Kind::kGauge:
      bytes += 8;
      break;
    case MetricSample::Kind::kHistogram:
      // bounds | per-bucket counts | sum | per-bucket (ex_value, ex_seq)
      bytes += m.bounds_len * 8 + (m.bounds_len + 1) * 8 + 8 +
               (m.bounds_len + 1) * 16;
      break;
    case MetricSample::Kind::kSummary:
      break;  // never indexed
  }
  return bytes;
}

u64 size_metrics(usize count) noexcept {
  u64 bytes = 4;  // count
  MetricsRegistry::PmRead m;
  const MetricsRegistry& reg = MetricsRegistry::global();
  for (usize i = 0; i < count; ++i) {
    if (!reg.pm_read(i, m)) continue;
    bytes += metric_payload_bytes(m);
  }
  return bytes;
}

void write_metrics(Writer& w, usize count) noexcept {
  w.put_u32(static_cast<u32>(count));
  MetricsRegistry::PmRead m;
  const MetricsRegistry& reg = MetricsRegistry::global();
  for (usize i = 0; i < count; ++i) {
    if (!reg.pm_read(i, m)) {
      // Keep header/payload agreement: emit an empty counter.
      w.put_u32(static_cast<u32>(MetricSample::Kind::kCounter));
      w.put_u32(0);
      w.put_u32(0);
      w.put_u32(0);
      w.put_u64(0);
      continue;
    }
    w.put_u32(static_cast<u32>(m.kind));
    w.put_u32(static_cast<u32>(m.name_len));
    w.put_u32(static_cast<u32>(m.bounds_len));
    w.put_u32(0);
    w.put_bytes(m.name, m.name_len);
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        w.put_u64(m.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        w.put_f64(m.gauge_value);
        break;
      case MetricSample::Kind::kHistogram: {
        for (usize b = 0; b < m.bounds_len; ++b) w.put_u64(m.bounds[b]);
        for (usize b = 0; b <= m.bounds_len; ++b) {
          // bounds_len == 0 means fill_pm overflowed: one zero +Inf bucket.
          w.put_u64(m.bounds_len == 0 ? 0 : m.counts[b]);
        }
        w.put_u64(m.sum);
        for (usize b = 0; b <= m.bounds_len; ++b) {
          w.put_u64(m.bounds_len == 0 ? 0 : m.ex_value[b]);
          w.put_u64(m.bounds_len == 0 ? 0 : m.ex_seq[b]);
        }
        break;
      }
      case MetricSample::Kind::kSummary:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine mirror pool.

EngineMirror g_mirrors[kMaxEngines];

usize count_engines() noexcept {
  usize n = 0;
  for (const auto& m : g_mirrors) {
    if (m.in_use.load(std::memory_order_acquire) != 0) ++n;
  }
  return n;
}

u64 size_engines() noexcept {
  u64 bytes = 4;
  for (const auto& m : g_mirrors) {
    if (m.in_use.load(std::memory_order_acquire) == 0) continue;
    const u32 shards = m.shard_count.load(std::memory_order_relaxed);
    bytes += 8 + 24 + static_cast<u64>(shards) * 56;
  }
  return bytes;
}

void write_engines(Writer& w) noexcept {
  w.put_u32(static_cast<u32>(count_engines()));
  for (const auto& m : g_mirrors) {
    if (m.in_use.load(std::memory_order_acquire) == 0) continue;
    const u32 shards = m.shard_count.load(std::memory_order_relaxed);
    w.put_u32(shards);
    w.put_u32(0);
    w.put_u64(m.submitted.load(std::memory_order_relaxed));
    w.put_u64(m.completed.load(std::memory_order_relaxed));
    w.put_u64(m.failed.load(std::memory_order_relaxed));
    for (u32 s = 0; s < shards && s < kMaxShards; ++s) {
      const EngineShardMirror& sh = m.shards[s];
      w.put_u64(sh.jobs.load(std::memory_order_relaxed));
      w.put_u64(sh.failures.load(std::memory_order_relaxed));
      w.put_u64(sh.fallbacks.load(std::memory_order_relaxed));
      w.put_u64(sh.dispatches.load(std::memory_order_relaxed));
      w.put_u64(sh.sim_cycles.load(std::memory_order_relaxed));
      w.put_u64(sh.permutations.load(std::memory_order_relaxed));
      w.put_u64(sh.bytes.load(std::memory_order_relaxed));
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-dump writer (shared by crash handler and dump_now).

bool write_dump_to(const char* path, int signal_no, const char* reason,
                   usize reason_len) noexcept {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  if (reason_len > kReasonMax) reason_len = kReasonMax;
  EventsPlan plan;
  plan_events(plan);
  const usize metric_count = MetricsRegistry::global().pm_count();
  const usize build_len = g_build_info_len.load(std::memory_order_acquire);

  Writer w(fd);
  // Header.
  w.put_bytes(kDumpMagic, sizeof kDumpMagic);
  w.put_u32(kDumpVersion);
  w.put_u32(5);  // section_count
  w.put_u64(static_cast<u64>(::getpid()));
  // Reason.
  w.put_u32(static_cast<u32>(SectionKind::kReason));
  w.put_u32(0);
  w.put_u64(8 + reason_len);
  w.put_u32(static_cast<u32>(signal_no));
  w.put_u32(static_cast<u32>(reason_len));
  w.put_bytes(reason, reason_len);
  // Build info.
  w.put_u32(static_cast<u32>(SectionKind::kBuildInfo));
  w.put_u32(0);
  w.put_u64(4 + build_len);
  w.put_u32(static_cast<u32>(build_len));
  w.put_bytes(g_build_info, build_len);
  // Events.
  w.put_u32(static_cast<u32>(SectionKind::kEvents));
  w.put_u32(0);
  w.put_u64(size_events(plan));
  write_events(w, plan);
  // Metrics.
  w.put_u32(static_cast<u32>(SectionKind::kMetrics));
  w.put_u32(0);
  w.put_u64(size_metrics(metric_count));
  write_metrics(w, metric_count);
  // Engines.
  w.put_u32(static_cast<u32>(SectionKind::kEngines));
  w.put_u32(0);
  w.put_u64(size_engines());
  write_engines(w);

  w.flush();
  const bool ok = w.ok();
  ::close(fd);
  if (ok) g_dumps_written.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

// ---------------------------------------------------------------------------
// Crash handling.

void write_crash_dump(int signal_no, const char* reason) noexcept {
  // One crash dump per process: a fault inside the handler (or a second
  // faulting thread) must not recurse or interleave writes.
  u32 expected = 0;
  if (!g_crash_dump_active.compare_exchange_strong(
          expected, 1, std::memory_order_acq_rel)) {
    return;
  }
  if (!g_crash_path_ready.load(std::memory_order_acquire)) return;
  write_dump_to(g_crash_path, signal_no, reason, std::strlen(reason));
  // Best-effort breadcrumb on stderr (write() is signal-safe).
  const char* msg = "kvx: post-mortem dump written: ";
  (void)!::write(2, msg, std::strlen(msg));
  (void)!::write(2, g_crash_path, std::strlen(g_crash_path));
  (void)!::write(2, "\n", 1);
}

void fatal_signal_handler(int signo, siginfo_t*, void*) {
  write_crash_dump(signo, "fatal signal");
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (exit status, core files, test harnesses all
  // see the truth).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

[[noreturn]] void terminate_handler() {
  write_crash_dump(0, "std::terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

EngineMirror* claim_engine_mirror() noexcept {
  for (auto& m : g_mirrors) {
    u32 expected = 0;
    if (m.in_use.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel)) {
      m.shard_count.store(0, std::memory_order_relaxed);
      m.submitted.store(0, std::memory_order_relaxed);
      m.completed.store(0, std::memory_order_relaxed);
      m.failed.store(0, std::memory_order_relaxed);
      for (auto& sh : m.shards) {
        sh.jobs.store(0, std::memory_order_relaxed);
        sh.failures.store(0, std::memory_order_relaxed);
        sh.fallbacks.store(0, std::memory_order_relaxed);
        sh.dispatches.store(0, std::memory_order_relaxed);
        sh.sim_cycles.store(0, std::memory_order_relaxed);
        sh.permutations.store(0, std::memory_order_relaxed);
        sh.bytes.store(0, std::memory_order_relaxed);
      }
      return &m;
    }
  }
  return nullptr;
}

void release_engine_mirror(EngineMirror* mirror) noexcept {
  if (mirror != nullptr) mirror->in_use.store(0, std::memory_order_release);
}

void set_dump_dir(const std::string& dir) {
  const usize len = dir.size() < kDirMax - 1 ? dir.size() : kDirMax - 1;
  std::memcpy(g_dump_dir, dir.data(), len);
  g_dump_dir[len] = '\0';
  g_auto_dump.store(true, std::memory_order_release);
  // Re-render the crash path against the new directory if the handler is
  // already installed.
  if (g_handler_installed.load(std::memory_order_acquire)) {
    g_crash_path_ready.store(
        build_path(g_crash_path, sizeof g_crash_path, g_dump_dir,
                   static_cast<u64>(::getpid()), "crash", 0, false),
        std::memory_order_release);
  }
}

void set_auto_dump(bool enabled) noexcept {
  g_auto_dump.store(enabled, std::memory_order_release);
}

bool auto_dump_enabled() noexcept {
  return g_auto_dump.load(std::memory_order_acquire);
}

void install_crash_handler() {
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  g_crash_path_ready.store(
      build_path(g_crash_path, sizeof g_crash_path, g_dump_dir,
                 static_cast<u64>(::getpid()), "crash", 0, false),
      std::memory_order_release);

  // A dedicated stack so a stack-overflow SIGSEGV can still dump.
  static char alt_stack[64 * 1024];
  stack_t ss{};
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof alt_stack;
  ss.ss_flags = 0;
  (void)::sigaltstack(&ss, nullptr);

  struct sigaction sa{};
  sa.sa_sigaction = fatal_signal_handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  ::sigemptyset(&sa.sa_mask);
  for (const int signo : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    (void)::sigaction(signo, &sa, nullptr);
  }
  g_prev_terminate = std::set_terminate(terminate_handler);
}

void set_build_info(const std::string& text) {
  const usize len =
      text.size() < kBuildInfoMax ? text.size() : kBuildInfoMax;
  std::memcpy(g_build_info, text.data(), len);
  g_build_info_len.store(len, std::memory_order_release);
}

std::string dump_now(const std::string& reason) {
  static std::atomic<u64> next_ordinal{0};
  char path[kPathMax];
  const u64 ordinal = next_ordinal.fetch_add(1, std::memory_order_relaxed);
  if (!build_path(path, sizeof path, g_dump_dir,
                  static_cast<u64>(::getpid()), nullptr, ordinal, true)) {
    return "";
  }
  if (!write_dump_to(path, 0, reason.data(), reason.size())) return "";
  return path;
}

void auto_dump(const char* reason) noexcept {
  if (!g_auto_dump.load(std::memory_order_acquire)) return;
  // Cap + increment in one CAS loop so concurrent failures cannot overshoot.
  const u64 cap = g_auto_cap.load(std::memory_order_relaxed);
  u64 n = g_auto_dumps_written.load(std::memory_order_relaxed);
  do {
    if (n >= cap) return;
  } while (!g_auto_dumps_written.compare_exchange_weak(
      n, n + 1, std::memory_order_acq_rel));
  try {
    dump_now(reason != nullptr ? reason : "auto");
  } catch (...) {
    // dump_now allocates one std::string; swallow rather than crash the
    // failure path we are trying to document.
  }
}

u64 dump_count() noexcept {
  return g_dumps_written.load(std::memory_order_relaxed);
}

void init_from_env() {
  static std::atomic<bool> done{false};
  bool expected = false;
  if (!done.compare_exchange_strong(expected, true,
                                    std::memory_order_acq_rel)) {
    return;
  }
  const char* cap = std::getenv("KVX_POSTMORTEM_MAX");
  if (cap != nullptr && *cap != '\0') {
    g_auto_cap.store(std::strtoull(cap, nullptr, 10),
                     std::memory_order_relaxed);
  }
  const char* dir = std::getenv("KVX_POSTMORTEM");
  if (dir == nullptr || *dir == '\0') return;
  set_dump_dir(dir);
  install_crash_handler();
}

// ---------------------------------------------------------------------------
// Parsing.

namespace {

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    if (!in_) throw Error("postmortem: cannot open dump '" + path + "'");
  }

  void read_bytes(void* out, usize len) {
    in_.read(static_cast<char*>(out), static_cast<std::streamsize>(len));
    if (in_.gcount() != static_cast<std::streamsize>(len)) {
      throw Error("postmortem: truncated dump");
    }
  }
  u32 read_u32() {
    u32 v;
    read_bytes(&v, sizeof v);
    return v;
  }
  u64 read_u64() {
    u64 v;
    read_bytes(&v, sizeof v);
    return v;
  }
  double read_f64() {
    double v;
    read_bytes(&v, sizeof v);
    return v;
  }
  std::string read_string(usize len) {
    std::string s(len, '\0');
    if (len > 0) read_bytes(s.data(), len);
    return s;
  }
  void skip(u64 len) {
    in_.seekg(static_cast<std::streamoff>(len), std::ios::cur);
    if (!in_) throw Error("postmortem: truncated dump");
  }

 private:
  std::ifstream in_;
};

void parse_events(Reader& r, PostmortemDump& dump) {
  const u32 ring_count = r.read_u32();
  dump.events_dropped = r.read_u32();
  for (u32 i = 0; i < ring_count; ++i) {
    DumpRing ring;
    ring.index = r.read_u32();
    (void)r.read_u32();  // pad
    ring.written = r.read_u64();
    ring.stored = r.read_u64();
    if (ring.stored > FlightRecorder::kRingCapacity) {
      throw Error("postmortem: ring stored count out of range");
    }
    for (u64 s = 0; s < ring.stored; ++s) {
      FlightEvent ev;
      ev.seq = r.read_u64();
      ev.ns = r.read_u64();
      const u64 meta = r.read_u64();
      ev.type_raw = static_cast<u16>(meta & 0xFFFF);
      ev.code = static_cast<u16>((meta >> 16) & 0xFFFF);
      ev.ring = ring.index;
      ev.a0 = r.read_u64();
      ev.a1 = r.read_u64();
      if (ev.seq != 0) dump.events.push_back(ev);  // 0 = empty/torn slot
    }
    dump.rings.push_back(ring);
  }
  std::sort(dump.events.begin(), dump.events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
}

void parse_metrics(Reader& r, PostmortemDump& dump) {
  const u32 count = r.read_u32();
  for (u32 i = 0; i < count; ++i) {
    DumpMetric m;
    const u32 kind = r.read_u32();
    const u32 name_len = r.read_u32();
    const u32 bounds_len = r.read_u32();
    (void)r.read_u32();  // pad
    if (name_len > 4096 || bounds_len > MetricsRegistry::kPmMaxBuckets) {
      throw Error("postmortem: metric record out of range");
    }
    m.name = r.read_string(name_len);
    m.kind = static_cast<MetricSample::Kind>(kind);
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        m.counter_value = r.read_u64();
        break;
      case MetricSample::Kind::kGauge:
        m.gauge_value = r.read_f64();
        break;
      case MetricSample::Kind::kHistogram: {
        m.bounds.resize(bounds_len);
        for (auto& b : m.bounds) b = r.read_u64();
        m.bucket_counts.resize(bounds_len + 1);
        for (auto& c : m.bucket_counts) c = r.read_u64();
        m.sum = r.read_u64();
        m.exemplars.resize(bounds_len + 1);
        for (auto& ex : m.exemplars) {
          ex.first = r.read_u64();
          ex.second = r.read_u64();
        }
        break;
      }
      default:
        throw Error("postmortem: unknown metric kind in dump");
    }
    dump.metrics.push_back(std::move(m));
  }
}

void parse_engines(Reader& r, PostmortemDump& dump) {
  const u32 count = r.read_u32();
  if (count > kMaxEngines) {
    throw Error("postmortem: engine count out of range");
  }
  for (u32 i = 0; i < count; ++i) {
    DumpEngine e;
    const u32 shard_count = r.read_u32();
    (void)r.read_u32();  // pad
    if (shard_count > kMaxShards) {
      throw Error("postmortem: shard count out of range");
    }
    e.submitted = r.read_u64();
    e.completed = r.read_u64();
    e.failed = r.read_u64();
    for (u32 s = 0; s < shard_count; ++s) {
      DumpShard sh;
      sh.jobs = r.read_u64();
      sh.failures = r.read_u64();
      sh.fallbacks = r.read_u64();
      sh.dispatches = r.read_u64();
      sh.sim_cycles = r.read_u64();
      sh.permutations = r.read_u64();
      sh.bytes = r.read_u64();
      e.shards.push_back(sh);
    }
    dump.engines.push_back(std::move(e));
  }
}

}  // namespace

PostmortemDump parse_dump(const std::string& path) {
  Reader r(path);
  char magic[8];
  r.read_bytes(magic, sizeof magic);
  if (std::memcmp(magic, kDumpMagic, sizeof magic) != 0) {
    throw Error("postmortem: bad magic in '" + path + "'");
  }
  PostmortemDump dump;
  dump.version = r.read_u32();
  if (dump.version != kDumpVersion) {
    throw Error("postmortem: unsupported dump version " +
                std::to_string(dump.version));
  }
  const u32 section_count = r.read_u32();
  dump.pid = r.read_u64();
  for (u32 i = 0; i < section_count; ++i) {
    const u32 kind = r.read_u32();
    (void)r.read_u32();  // reserved
    const u64 payload = r.read_u64();
    switch (static_cast<SectionKind>(kind)) {
      case SectionKind::kReason: {
        dump.signal = static_cast<int>(r.read_u32());
        const u32 len = r.read_u32();
        if (len > payload) throw Error("postmortem: reason overruns section");
        dump.reason = r.read_string(len);
        break;
      }
      case SectionKind::kBuildInfo: {
        const u32 len = r.read_u32();
        if (len > payload) {
          throw Error("postmortem: build info overruns section");
        }
        dump.build_info = r.read_string(len);
        break;
      }
      case SectionKind::kEvents:
        parse_events(r, dump);
        break;
      case SectionKind::kMetrics:
        parse_metrics(r, dump);
        break;
      case SectionKind::kEngines:
        parse_engines(r, dump);
        break;
      default:
        r.skip(payload);  // forward compatibility: unknown sections skip
        break;
    }
  }
  return dump;
}

}  // namespace kvx::obs::pm
