#include "kvx/obs/process_metrics.hpp"

#include <chrono>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

#include "kvx/obs/metrics.hpp"
#include "kvx/obs/postmortem.hpp"

namespace kvx::obs {

namespace {

double rss_bytes() noexcept {
#if defined(__linux__)
  // statm field 2 is resident pages; cheaper and simpler than /proc status.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  unsigned long size = 0;
  unsigned long resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(::sysconf(_SC_PAGESIZE));
#else
  return 0.0;
#endif
}

double cpu_seconds() noexcept {
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

const char* build_version() noexcept {
#ifdef KVX_VERSION_STRING
  return KVX_VERSION_STRING;
#else
  return "unknown";
#endif
}

const char* build_compiler() noexcept {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

void publish_build_info(const std::string& host_simd_isa,
                        const std::string& jit) {
  const std::string labels = "version=\"" + escape_label(build_version()) +
                             "\",compiler=\"" +
                             escape_label(build_compiler()) +
                             "\",host_simd_isa=\"" +
                             escape_label(host_simd_isa) + "\",jit=\"" +
                             escape_label(jit) + "\"";
  MetricsRegistry::global()
      .labeled_gauge("kvx_build_info", labels,
                     "Build identification; value is always 1")
      .set(1.0);
  pm::set_build_info("version=" + std::string(build_version()) +
                     "\ncompiler=" + build_compiler() +
                     "\nhost_simd_isa=" + host_simd_isa + "\njit=" + jit +
                     "\n");
}

void register_process_metrics() {
  (void)process_epoch();  // pin the uptime epoch to the first registration
  auto& reg = MetricsRegistry::global();
  reg.gauge("kvx_process_rss_bytes", "Resident set size in bytes")
      .bind(rss_bytes);
  reg.gauge("kvx_process_cpu_seconds_total",
            "Total user+system CPU time consumed by the process")
      .bind(cpu_seconds);
  reg.gauge("kvx_process_uptime_seconds",
            "Seconds since process metrics were first registered")
      .bind([] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             process_epoch())
            .count();
      });
}

}  // namespace kvx::obs
