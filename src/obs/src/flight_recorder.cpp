#include "kvx/obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>

namespace kvx::obs {

namespace {

u64 steady_now_ns() noexcept {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

std::string_view flight_event_name(FlightEventType t) noexcept {
  switch (t) {
    case FlightEventType::kNone: return "none";
    case FlightEventType::kJobSubmit: return "job_submit";
    case FlightEventType::kJobRetire: return "job_retire";
    case FlightEventType::kJobFail: return "job_fail";
    case FlightEventType::kDispatch: return "dispatch";
    case FlightEventType::kBackendDemotion: return "backend_demotion";
    case FlightEventType::kTraceCompile: return "trace_compile";
    case FlightEventType::kTraceReject: return "trace_reject";
    case FlightEventType::kTraceCacheHit: return "trace_cache_hit";
    case FlightEventType::kFaultInjected: return "fault_injected";
    case FlightEventType::kQueuePark: return "queue_park";
    case FlightEventType::kQueueSteal: return "queue_steal";
  }
  return "unknown";
}

u64 flight_hash(std::string_view s) noexcept {
  u64 h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Thread-local ring handle. The destructor releases the claim so a later
/// thread can reuse the ring (its events survive for post-mortems either
/// way; a reused ring simply continues the track).
struct FlightTls {
  FlightRecorder::Ring* ring = nullptr;
  ~FlightTls() {
    if (ring != nullptr) ring->claimed.store(0, std::memory_order_release);
  }
};

FlightRecorder& FlightRecorder::global() {
  // Leaked on purpose: FlightTls destructors of detached threads may run
  // after static destruction would have torn the recorder down.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::claim_ring() noexcept {
  // Reuse a released ring first (threads come and go; rings are forever).
  for (usize i = 0; i < kMaxRings; ++i) {
    Ring* r = rings_[i].load(std::memory_order_acquire);
    if (r == nullptr) break;  // slots are filled densely
    u32 expected = 0;
    if (r->claimed.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel)) {
      return r;
    }
  }
  // Allocate a fresh ring into the next free slot.
  for (;;) {
    const u32 count = ring_count_.load(std::memory_order_acquire);
    if (count >= kMaxRings) return nullptr;
    Ring* fresh = new (std::nothrow) Ring();
    if (fresh == nullptr) return nullptr;
    fresh->index = count;
    fresh->claimed.store(1, std::memory_order_relaxed);
    Ring* expected = nullptr;
    if (rings_[count].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel)) {
      ring_count_.store(count + 1, std::memory_order_release);
      return fresh;
    }
    // Another thread published slot `count` first; retry (and maybe claim
    // a released ring that appeared meanwhile).
    delete fresh;
    Ring* r = rings_[count].load(std::memory_order_acquire);
    u32 claim = 0;
    if (r != nullptr && r->claimed.compare_exchange_strong(
                            claim, 1, std::memory_order_acq_rel)) {
      return r;
    }
  }
}

u64 FlightRecorder::record(FlightEventType type, u16 code, u64 a0,
                           u64 a1) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return 0;
  thread_local FlightTls tls;
  if (tls.ring == nullptr) {
    tls.ring = claim_ring();
    if (tls.ring == nullptr) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
  }
  Ring& ring = *tls.ring;
  const u64 seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const u64 w = ring.written.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[w % kRingCapacity];
  // Seqlock write: invalidate, fill, publish.
  slot.seq.store(0, std::memory_order_release);
  slot.ns.store(steady_now_ns(), std::memory_order_relaxed);
  slot.meta.store(static_cast<u64>(type) | (static_cast<u64>(code) << 16),
                  std::memory_order_relaxed);
  slot.a0.store(a0, std::memory_order_relaxed);
  slot.a1.store(a1, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
  ring.written.store(w + 1, std::memory_order_release);
  return seq;
}

std::vector<FlightEvent> FlightRecorder::snapshot_merged(
    std::vector<RingInfo>* rings) const {
  std::vector<FlightEvent> out;
  if (rings != nullptr) rings->clear();
  const usize n = ring_count();
  for (usize i = 0; i < n; ++i) {
    const Ring* ring = ring_at(i);
    if (ring == nullptr) continue;
    const u64 written = ring->written.load(std::memory_order_acquire);
    const u64 stored = std::min<u64>(written, kRingCapacity);
    if (rings != nullptr) rings->push_back({ring->index, written, stored});
    for (usize s = 0; s < stored; ++s) {
      const Slot& slot = ring->slots[s];
      // Seqlock read: a slot whose seq changes under us is being rewritten
      // by the owner thread — drop it rather than report torn fields.
      const u64 seq0 = slot.seq.load(std::memory_order_acquire);
      if (seq0 == 0) continue;
      FlightEvent ev;
      ev.seq = seq0;
      ev.ns = slot.ns.load(std::memory_order_relaxed);
      const u64 meta = slot.meta.load(std::memory_order_relaxed);
      ev.type_raw = static_cast<u16>(meta & 0xFFFF);
      ev.code = static_cast<u16>((meta >> 16) & 0xFFFF);
      ev.ring = ring->index;
      ev.a0 = slot.a0.load(std::memory_order_relaxed);
      ev.a1 = slot.a1.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) != seq0) continue;
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::clear() noexcept {
  const usize n = ring_count();
  for (usize i = 0; i < n; ++i) {
    Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (Slot& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
      slot.ns.store(0, std::memory_order_relaxed);
      slot.meta.store(0, std::memory_order_relaxed);
      slot.a0.store(0, std::memory_order_relaxed);
      slot.a1.store(0, std::memory_order_relaxed);
    }
    ring->written.store(0, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
  seq_.store(1, std::memory_order_release);
}

}  // namespace kvx::obs
