#include "kvx/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "kvx/common/error.hpp"

namespace kvx::obs {

namespace detail {

usize stripe_index() noexcept {
  // Hand out stripe slots round-robin per thread; cheaper and more evenly
  // distributed than hashing std::this_thread::get_id().
  static std::atomic<usize> next{0};
  thread_local const usize slot =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return slot;
}

}  // namespace detail

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  });
}

const char* kind_name(MetricSample::Kind k) {
  switch (k) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
    case MetricSample::Kind::kSummary: return "summary";
  }
  return "?";
}

/// Render a quantile label value without trailing zeros ("0.5", "0.999",
/// "1") — the conventional Prometheus spelling.
std::string quantile_label(double q) {
  std::ostringstream os;
  os << q;
  return os.str();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

double Gauge::value() const {
  if (bound_.load(std::memory_order_acquire)) {
    std::lock_guard lock(cb_mutex_);
    if (cb_) return cb_();
  }
  return unpack(bits_.load(std::memory_order_relaxed));
}

u64 Gauge::bind(std::function<double()> fn) {
  std::lock_guard lock(cb_mutex_);
  cb_ = std::move(fn);
  const u64 token = ++cb_token_;
  bound_.store(static_cast<bool>(cb_), std::memory_order_release);
  return token;
}

void Gauge::unbind(u64 token) {
  std::lock_guard lock(cb_mutex_);
  if (token != cb_token_ || !cb_) return;  // superseded by a later bind
  // Freeze the final callback value so post-unbind reads stay meaningful.
  bits_.store(pack(cb_()), std::memory_order_relaxed);
  cb_ = nullptr;
  bound_.store(false, std::memory_order_release);
}

u64 Summary::bind(std::function<Snapshot()> fn) {
  std::lock_guard lock(mutex_);
  cb_ = std::move(fn);
  return ++cb_token_;
}

void Summary::unbind(u64 token) {
  std::lock_guard lock(mutex_);
  if (token != cb_token_ || !cb_) return;  // superseded by a later bind
  frozen_ = cb_();
  cb_ = nullptr;
}

Summary::Snapshot Summary::value() const {
  std::lock_guard lock(mutex_);
  if (cb_) return cb_();
  return frozen_;
}

Histogram::Histogram(std::vector<u64> bounds) : bounds_(std::move(bounds)) {
  KVX_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly increasing");
  for (auto& s : stripes_) {
    s.buckets = std::make_unique<std::atomic<u64>[]>(bounds_.size() + 1);
    for (usize i = 0; i <= bounds_.size(); ++i) s.buckets[i].store(0);
  }
  exemplars_ = std::make_unique<ExemplarSlot[]>(bounds_.size() + 1);
}

void Histogram::observe(u64 v) noexcept {
  auto& stripe = stripes_[detail::stripe_index()];
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const usize idx = static_cast<usize>(it - bounds_.begin());
  stripe.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.value.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::observe_exemplar(u64 v, u64 flight_seq) noexcept {
  auto& stripe = stripes_[detail::stripe_index()];
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const usize idx = static_cast<usize>(it - bounds_.begin());
  stripe.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.value.fetch_add(v, std::memory_order_relaxed);
  ExemplarSlot& ex = exemplars_[idx];
  u64 cur = ex.value.load(std::memory_order_relaxed);
  while (v >= cur) {  // >= so a tie still refreshes the (newer) flight seq
    if (ex.value.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      ex.seq.store(flight_seq, std::memory_order_relaxed);
      return;
    }
  }
}

std::vector<u64> Histogram::cumulative_counts() const {
  std::vector<u64> per_bucket(bounds_.size() + 1, 0);
  for (const auto& s : stripes_) {
    for (usize i = 0; i <= bounds_.size(); ++i) {
      per_bucket[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  u64 running = 0;
  for (auto& b : per_bucket) {
    running += b;
    b = running;
  }
  return per_bucket;
}

u64 Histogram::count() const noexcept {
  u64 total = 0;
  for (const auto& s : stripes_) {
    for (usize i = 0; i <= bounds_.size(); ++i) {
      total += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

u64 Histogram::sum() const noexcept {
  u64 total = 0;
  for (const auto& s : stripes_) {
    total += s.sum.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Histogram::Exemplar> Histogram::exemplars() const {
  std::vector<Exemplar> out(bounds_.size() + 1);
  for (usize i = 0; i <= bounds_.size(); ++i) {
    out[i].value = exemplars_[i].value.load(std::memory_order_relaxed);
    out[i].flight_seq = exemplars_[i].seq.load(std::memory_order_relaxed);
  }
  return out;
}

usize Histogram::fill_pm(u64* counts, u64* ex_value, u64* ex_seq,
                         u64* sum_out, usize cap) const noexcept {
  const usize n = bounds_.size() + 1;
  if (n > cap) return 0;
  for (usize i = 0; i < n; ++i) {
    counts[i] = 0;
    ex_value[i] = exemplars_[i].value.load(std::memory_order_relaxed);
    ex_seq[i] = exemplars_[i].seq.load(std::memory_order_relaxed);
  }
  u64 total = 0;
  for (const auto& s : stripes_) {
    for (usize i = 0; i < n; ++i) {
      counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    total += s.sum.value.load(std::memory_order_relaxed);
  }
  *sum_out = total;
  return n;
}

std::vector<u64> default_latency_bounds_ns() {
  // 1 µs doubling to ~17.2 s: 25 bounds covering both the sub-millisecond
  // single-job path and multi-second saturated-queue tails.
  std::vector<u64> bounds;
  bounds.reserve(25);
  u64 b = 1'000;
  for (int i = 0; i < 25; ++i) {
    bounds.push_back(b);
    b *= 2;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help,
    MetricSample::Kind kind) {
  if (!valid_metric_name(name)) {
    throw Error("obs: invalid metric name '" + name + "'");
  }
  for (auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw Error("obs: metric '" + name + "' already registered as " +
                    kind_name(e->kind) + ", requested " + kind_name(kind));
      }
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

void MetricsRegistry::pm_publish_locked(Entry& e) {
  // Summaries need their owner's callback (and lock) to evaluate — they
  // cannot be scraped from a signal context, so they stay out of the index.
  if (e.kind == MetricSample::Kind::kSummary) return;
  const usize n = pm_count_.load(std::memory_order_relaxed);
  if (n >= kPmMaxMetrics) return;  // overflow: absent from dumps, that's all
  pm_entries_[n] = &e;
  pm_count_.store(n + 1, std::memory_order_release);
}

bool MetricsRegistry::pm_read(usize i, PmRead& out) const noexcept {
  if (i >= pm_count()) return false;
  const Entry* e = pm_entries_[i];
  out.name = e->name.c_str();
  out.name_len = e->name.size();
  out.kind = e->kind;
  out.counter_value = 0;
  out.gauge_value = 0.0;
  out.bounds = nullptr;
  out.bounds_len = 0;
  out.sum = 0;
  switch (e->kind) {
    case MetricSample::Kind::kCounter:
      if (e->counter) out.counter_value = e->counter->value();
      break;
    case MetricSample::Kind::kGauge:
      if (e->gauge) out.gauge_value = e->gauge->stored_value();
      break;
    case MetricSample::Kind::kHistogram:
      if (e->histogram) {
        const usize n = e->histogram->fill_pm(out.counts, out.ex_value,
                                              out.ex_seq, &out.sum,
                                              kPmMaxBuckets);
        if (n != 0) {
          out.bounds = e->histogram->bounds().data();
          out.bounds_len = e->histogram->bounds().size();
        }
      }
      break;
    case MetricSample::Kind::kSummary:
      break;  // never indexed
  }
  return true;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& e = find_or_create(name, help, MetricSample::Kind::kCounter);
  if (!e.counter) {
    e.counter.reset(new Counter());
    pm_publish_locked(e);
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& e = find_or_create(name, help, MetricSample::Kind::kGauge);
  if (!e.gauge) {
    e.gauge.reset(new Gauge());
    pm_publish_locked(e);
  }
  return *e.gauge;
}

Gauge& MetricsRegistry::labeled_gauge(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& e = find_or_create(name, help, MetricSample::Kind::kGauge);
  if (!e.gauge) {
    e.gauge.reset(new Gauge());
    e.labels = labels;
    pm_publish_locked(e);
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<u64> bounds) {
  std::lock_guard lock(mutex_);
  Entry& e = find_or_create(name, help, MetricSample::Kind::kHistogram);
  if (!e.histogram) {
    if (bounds.empty()) bounds = default_latency_bounds_ns();
    e.histogram.reset(new Histogram(std::move(bounds)));
    pm_publish_locked(e);
  }
  return *e.histogram;
}

Summary& MetricsRegistry::summary(const std::string& name,
                                  const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& e = find_or_create(name, help, MetricSample::Kind::kSummary);
  if (!e.summary) e.summary.reset(new Summary());
  return *e.summary;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.help = e->help;
    s.labels = e->labels;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricSample::Kind::kCounter:
        s.counter_value = e->counter->value();
        break;
      case MetricSample::Kind::kGauge:
        s.gauge_value = e->gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        s.bounds = e->histogram->bounds();
        s.cumulative = e->histogram->cumulative_counts();
        s.exemplars = e->histogram->exemplars();
        s.hist_count = s.cumulative.empty() ? 0 : s.cumulative.back();
        s.hist_sum = e->histogram->sum();
        break;
      case MetricSample::Kind::kSummary:
        s.summary = e->summary->value();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  for (const auto& s : snapshot()) {
    if (!s.help.empty()) {
      out += "# HELP " + s.name + " " + s.help + "\n";
    }
    out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += s.name + " " + std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += s.name;
        if (!s.labels.empty()) out += "{" + s.labels + "}";
        out += " " + format_double(s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        for (usize i = 0; i < s.bounds.size(); ++i) {
          out += s.name + "_bucket{le=\"" + std::to_string(s.bounds[i]) +
                 "\"} " + std::to_string(s.cumulative[i]) + "\n";
        }
        out += s.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(s.hist_count) + "\n";
        out += s.name + "_sum " + std::to_string(s.hist_sum) + "\n";
        out += s.name + "_count " + std::to_string(s.hist_count) + "\n";
        break;
      }
      case MetricSample::Kind::kSummary: {
        for (const auto& [q, v] : s.summary.quantiles) {
          out += s.name + "{quantile=\"" + quantile_label(q) + "\"} " +
                 format_double(v) + "\n";
        }
        out += s.name + "_sum " + format_double(s.summary.sum) + "\n";
        out += s.name + "_count " + std::to_string(s.summary.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const auto samples = snapshot();
  std::string counters, gauges, histograms, summaries;
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (!counters.empty()) counters += ',';
        append_json_string(counters, s.name);
        counters += ':' + std::to_string(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        append_json_string(gauges, s.name);
        gauges += ':' + format_double(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ',';
        append_json_string(histograms, s.name);
        histograms += ":{\"bounds\":[";
        for (usize i = 0; i < s.bounds.size(); ++i) {
          if (i != 0) histograms += ',';
          histograms += std::to_string(s.bounds[i]);
        }
        histograms += "],\"cumulative\":[";
        for (usize i = 0; i < s.cumulative.size(); ++i) {
          if (i != 0) histograms += ',';
          histograms += std::to_string(s.cumulative[i]);
        }
        histograms += "],\"count\":" + std::to_string(s.hist_count) +
                      ",\"sum\":" + std::to_string(s.hist_sum);
        // Exemplars: (value, flight-recorder seq) of the bucket-max job.
        // Only emitted once any bucket has one, to keep scrapes compact.
        bool any_exemplar = false;
        for (const auto& ex : s.exemplars) {
          if (ex.flight_seq != 0) { any_exemplar = true; break; }
        }
        if (any_exemplar) {
          histograms += ",\"exemplars\":[";
          for (usize i = 0; i < s.exemplars.size(); ++i) {
            if (i != 0) histograms += ',';
            histograms += "[" + std::to_string(s.exemplars[i].value) + "," +
                          std::to_string(s.exemplars[i].flight_seq) + "]";
          }
          histograms += "]";
        }
        histograms += "}";
        break;
      }
      case MetricSample::Kind::kSummary: {
        if (!summaries.empty()) summaries += ',';
        append_json_string(summaries, s.name);
        summaries += ":{\"quantiles\":{";
        bool first = true;
        for (const auto& [q, v] : s.summary.quantiles) {
          if (!first) summaries += ',';
          first = false;
          append_json_string(summaries, quantile_label(q));
          summaries += ':' + format_double(v);
        }
        summaries += "},\"count\":" + std::to_string(s.summary.count) +
                     ",\"sum\":" + format_double(s.summary.sum) + "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "},\"summaries\":{" + summaries +
         "}}";
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  // Drop the signal-safe index before the entries it points into: a reader
  // (crash handler) that raced a reset sees count 0, never a dangling entry.
  pm_count_.store(0, std::memory_order_release);
  entries_.clear();
}

}  // namespace kvx::obs
