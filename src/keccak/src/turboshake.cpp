#include "kvx/keccak/turboshake.hpp"

#include "kvx/common/error.hpp"
#include "kvx/keccak/keccak_p.hpp"

namespace kvx::keccak {
namespace {

usize rate_for(unsigned security_bits) {
  switch (security_bits) {
    case 128: return 168;
    case 256: return 136;
    default:
      throw Error("TurboSHAKE security level must be 128 or 256");
  }
}

u8 checked_domain(u8 domain) {
  if (domain < 0x01 || domain > 0x7F) {
    throw Error("TurboSHAKE domain byte must be in [0x01, 0x7F]");
  }
  return domain;
}

std::vector<u8> one_shot(unsigned security_bits, std::span<const u8> msg,
                         usize out_len, u8 domain) {
  TurboShake xof(security_bits, domain);
  xof.absorb(msg);
  return xof.squeeze(out_len);
}

}  // namespace

void permute_12(State& s) noexcept {
  KeccakP1600::StateArray a{};
  std::copy(s.flat().begin(), s.flat().end(), a.begin());
  KeccakP1600::permute(a, 12);
  std::copy(a.begin(), a.end(), s.flat().begin());
}

std::vector<u8> turboshake128(std::span<const u8> msg, usize out_len,
                              u8 domain) {
  return one_shot(128, msg, out_len, domain);
}

std::vector<u8> turboshake256(std::span<const u8> msg, usize out_len,
                              u8 domain) {
  return one_shot(256, msg, out_len, domain);
}

TurboShake::TurboShake(unsigned security_bits, u8 domain)
    : sponge_(rate_for(security_bits),
              static_cast<Domain>(checked_domain(domain)),
              [](State& s) { permute_12(s); }) {}

TurboShake& TurboShake::absorb(std::span<const u8> data) {
  sponge_.absorb(data);
  return *this;
}

void TurboShake::squeeze(std::span<u8> out) { sponge_.squeeze(out); }

std::vector<u8> TurboShake::squeeze(usize n) {
  std::vector<u8> out(n);
  sponge_.squeeze(out);
  return out;
}

void TurboShake::reset() { sponge_.reset(); }

}  // namespace kvx::keccak
