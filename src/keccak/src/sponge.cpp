#include "kvx/keccak/sponge.hpp"

#include "kvx/common/error.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::keccak {

Sponge::Sponge(usize rate_bytes_in, Domain domain)
    : Sponge(rate_bytes_in, domain, [](State& s) { permute_fast(s); }) {}

Sponge::Sponge(usize rate_bytes_in, Domain domain, Permutation f)
    : f_(std::move(f)), rate_(rate_bytes_in), domain_(domain) {
  KVX_CHECK_MSG(rate_ > 0 && rate_ < kStateBytes, "sponge rate out of range");
  KVX_CHECK(f_ != nullptr);
}

void Sponge::run_permutation() {
  f_(state_);
  ++perm_count_;
}

void Sponge::absorb(std::span<const u8> data) {
  KVX_CHECK_MSG(!squeezing_, "absorb after squeeze started");
  while (!data.empty()) {
    const usize take = std::min(data.size(), rate_ - absorbed_in_block_);
    // XOR into the state at the current block offset.
    for (usize i = 0; i < take; ++i) {
      const usize pos = absorbed_in_block_ + i;
      state_.flat()[pos / 8] ^= static_cast<u64>(data[i]) << (8 * (pos % 8));
    }
    absorbed_in_block_ += take;
    data = data.subspan(take);
    if (absorbed_in_block_ == rate_) {
      run_permutation();
      absorbed_in_block_ = 0;
    }
  }
}

void Sponge::pad_and_switch() {
  // pad10*1 with the domain suffix: suffix byte at the first free position,
  // 0x80 into the last byte of the block (they coincide when one byte left —
  // the two XORs then combine, which is exactly the FIPS 202 rule).
  const usize pos = absorbed_in_block_;
  state_.flat()[pos / 8] ^= static_cast<u64>(static_cast<u8>(domain_)) << (8 * (pos % 8));
  const usize last = rate_ - 1;
  state_.flat()[last / 8] ^= u64{0x80} << (8 * (last % 8));
  run_permutation();
  squeezing_ = true;
  squeeze_offset_ = 0;
}

void Sponge::squeeze(std::span<u8> out) {
  if (!squeezing_) pad_and_switch();
  while (!out.empty()) {
    if (squeeze_offset_ == rate_) {
      run_permutation();
      squeeze_offset_ = 0;
    }
    const usize take = std::min(out.size(), rate_ - squeeze_offset_);
    for (usize i = 0; i < take; ++i) {
      const usize pos = squeeze_offset_ + i;
      out[i] = static_cast<u8>(state_.flat()[pos / 8] >> (8 * (pos % 8)));
    }
    squeeze_offset_ += take;
    out = out.subspan(take);
  }
}

void Sponge::reset() {
  state_ = State{};
  absorbed_in_block_ = 0;
  squeeze_offset_ = 0;
  squeezing_ = false;
  perm_count_ = 0;
}

}  // namespace kvx::keccak
