#include "kvx/keccak/sha3.hpp"

#include "kvx/common/error.hpp"

namespace kvx::keccak {
namespace {

Domain domain_of(Sha3Function f) {
  return (f == Sha3Function::kShake128 || f == Sha3Function::kShake256)
             ? Domain::kShake
             : Domain::kSha3;
}

template <usize N>
std::array<u8, N> fixed_hash(Sha3Function f, std::span<const u8> msg) {
  Sponge sponge(rate_bytes(f), domain_of(f));
  sponge.absorb(msg);
  std::array<u8, N> out{};
  sponge.squeeze(out);
  return out;
}

}  // namespace

std::string_view name(Sha3Function f) noexcept {
  switch (f) {
    case Sha3Function::kSha3_224: return "SHA3-224";
    case Sha3Function::kSha3_256: return "SHA3-256";
    case Sha3Function::kSha3_384: return "SHA3-384";
    case Sha3Function::kSha3_512: return "SHA3-512";
    case Sha3Function::kShake128: return "SHAKE128";
    case Sha3Function::kShake256: return "SHAKE256";
  }
  return "?";
}

std::array<u8, 28> sha3_224(std::span<const u8> msg) {
  return fixed_hash<28>(Sha3Function::kSha3_224, msg);
}
std::array<u8, 32> sha3_256(std::span<const u8> msg) {
  return fixed_hash<32>(Sha3Function::kSha3_256, msg);
}
std::array<u8, 48> sha3_384(std::span<const u8> msg) {
  return fixed_hash<48>(Sha3Function::kSha3_384, msg);
}
std::array<u8, 64> sha3_512(std::span<const u8> msg) {
  return fixed_hash<64>(Sha3Function::kSha3_512, msg);
}

std::vector<u8> shake128(std::span<const u8> msg, usize out_len) {
  return hash(Sha3Function::kShake128, msg, out_len);
}
std::vector<u8> shake256(std::span<const u8> msg, usize out_len) {
  return hash(Sha3Function::kShake256, msg, out_len);
}

std::vector<u8> hash(Sha3Function f, std::span<const u8> msg, usize out_len) {
  if (digest_bytes(f) != 0) {
    KVX_CHECK_MSG(out_len == digest_bytes(f),
                  "fixed-output SHA-3 length mismatch");
  }
  Sponge sponge(rate_bytes(f), domain_of(f));
  sponge.absorb(msg);
  std::vector<u8> out(out_len);
  sponge.squeeze(out);
  return out;
}

Hasher::Hasher(Sha3Function f)
    : func_(f), sponge_(rate_bytes(f), domain_of(f)) {
  KVX_CHECK_MSG(digest_bytes(f) != 0, "Hasher requires a fixed-output function");
}

Hasher& Hasher::update(std::span<const u8> data) {
  sponge_.absorb(data);
  return *this;
}

Hasher& Hasher::update(std::string_view text) {
  return update(std::span<const u8>(
      reinterpret_cast<const u8*>(text.data()), text.size()));
}

std::vector<u8> Hasher::digest() {
  std::vector<u8> out(digest_bytes(func_));
  sponge_.squeeze(out);
  sponge_.reset();
  return out;
}

Xof::Xof(Sha3Function f) : sponge_(rate_bytes(f), domain_of(f)) {
  KVX_CHECK_MSG(digest_bytes(f) == 0, "Xof requires SHAKE128 or SHAKE256");
}

Xof::Xof(Sha3Function f, Sponge::Permutation permutation)
    : sponge_(rate_bytes(f), domain_of(f), std::move(permutation)) {
  KVX_CHECK_MSG(digest_bytes(f) == 0, "Xof requires SHAKE128 or SHAKE256");
}

Xof& Xof::absorb(std::span<const u8> data) {
  sponge_.absorb(data);
  return *this;
}

Xof& Xof::absorb(std::string_view text) {
  return absorb(std::span<const u8>(
      reinterpret_cast<const u8*>(text.data()), text.size()));
}

void Xof::squeeze(std::span<u8> out) { sponge_.squeeze(out); }

std::vector<u8> Xof::squeeze(usize n) {
  std::vector<u8> out(n);
  sponge_.squeeze(out);
  return out;
}

void Xof::reset() { sponge_.reset(); }

}  // namespace kvx::keccak
