#include "kvx/keccak/state.hpp"

#include "kvx/common/error.hpp"

namespace kvx::keccak {

void State::xor_bytes(std::span<const u8> data) noexcept {
  for (usize i = 0; i < data.size(); ++i) {
    lanes_[i / 8] ^= static_cast<u64>(data[i]) << (8 * (i % 8));
  }
}

void State::extract_bytes(std::span<u8> out) const noexcept {
  for (usize i = 0; i < out.size(); ++i) {
    out[i] = static_cast<u8>(lanes_[i / 8] >> (8 * (i % 8)));
  }
}

std::array<u8, kStateBytes> State::to_bytes() const noexcept {
  std::array<u8, kStateBytes> out{};
  extract_bytes(out);
  return out;
}

State State::from_bytes(std::span<const u8, kStateBytes> bytes) noexcept {
  State s;
  for (usize i = 0; i < kStateBytes; ++i) {
    s.lanes_[i / 8] |= static_cast<u64>(bytes[i]) << (8 * (i % 8));
  }
  return s;
}

}  // namespace kvx::keccak
