#include "kvx/keccak/sp800_185.hpp"

#include "kvx/common/error.hpp"

namespace kvx::keccak {
namespace {

/// Big-endian minimal (nonempty) byte representation of x.
std::vector<u8> minimal_be(u64 x) {
  std::vector<u8> bytes;
  do {
    bytes.insert(bytes.begin(), static_cast<u8>(x & 0xFF));
    x >>= 8;
  } while (x != 0);
  return bytes;
}

/// cSHAKE domain-separation suffix: two zero bits then pad10*1 -> 0x04.
constexpr auto kCshakeDomain = static_cast<Domain>(0x04);

std::vector<u8> cshake_impl(usize rate, std::span<const u8> msg, usize out_len,
                            std::span<const u8> function_name,
                            std::span<const u8> customization) {
  if (function_name.empty() && customization.empty()) {
    // SP 800-185 §3.3: cSHAKE with empty N and S *is* SHAKE.
    Sponge sponge(rate, Domain::kShake);
    sponge.absorb(msg);
    std::vector<u8> out(out_len);
    sponge.squeeze(out);
    return out;
  }
  std::vector<u8> prefix = encode_string(function_name);
  const std::vector<u8> s_enc = encode_string(customization);
  prefix.insert(prefix.end(), s_enc.begin(), s_enc.end());
  Sponge sponge(rate, kCshakeDomain);
  sponge.absorb(bytepad(prefix, rate));
  sponge.absorb(msg);
  std::vector<u8> out(out_len);
  sponge.squeeze(out);
  return out;
}

std::vector<u8> kmac_impl(usize rate, std::span<const u8> key,
                          std::span<const u8> msg, usize out_len,
                          std::span<const u8> customization, bool xof) {
  static constexpr u8 kName[] = {'K', 'M', 'A', 'C'};
  // newX = bytepad(encode_string(K), rate) || X || right_encode(L or 0).
  std::vector<u8> data = bytepad(encode_string(key), rate);
  data.insert(data.end(), msg.begin(), msg.end());
  const std::vector<u8> len_enc =
      right_encode(xof ? 0 : static_cast<u64>(out_len) * 8);
  data.insert(data.end(), len_enc.begin(), len_enc.end());
  return cshake_impl(rate, data, out_len, kName, customization);
}

std::vector<u8> tuple_hash_impl(usize rate,
                                std::span<const std::vector<u8>> tuple,
                                usize out_len,
                                std::span<const u8> customization) {
  static constexpr u8 kName[] = {'T', 'u', 'p', 'l', 'e', 'H', 'a', 's', 'h'};
  std::vector<u8> data;
  for (const auto& item : tuple) {
    const std::vector<u8> enc = encode_string(item);
    data.insert(data.end(), enc.begin(), enc.end());
  }
  const std::vector<u8> len_enc = right_encode(static_cast<u64>(out_len) * 8);
  data.insert(data.end(), len_enc.begin(), len_enc.end());
  return cshake_impl(rate, data, out_len, kName, customization);
}

constexpr usize kRate128 = 168;
constexpr usize kRate256 = 136;

}  // namespace

std::vector<u8> left_encode(u64 x) {
  std::vector<u8> bytes = minimal_be(x);
  KVX_CHECK(bytes.size() < 256);
  bytes.insert(bytes.begin(), static_cast<u8>(bytes.size()));
  return bytes;
}

std::vector<u8> right_encode(u64 x) {
  std::vector<u8> bytes = minimal_be(x);
  KVX_CHECK(bytes.size() < 256);
  bytes.push_back(static_cast<u8>(bytes.size()));
  return bytes;
}

std::vector<u8> encode_string(std::span<const u8> s) {
  std::vector<u8> out = left_encode(static_cast<u64>(s.size()) * 8);
  out.insert(out.end(), s.begin(), s.end());
  return out;
}

std::vector<u8> encode_string(std::string_view s) {
  return encode_string(std::span<const u8>(
      reinterpret_cast<const u8*>(s.data()), s.size()));
}

std::vector<u8> bytepad(std::span<const u8> x, usize w) {
  KVX_CHECK_MSG(w > 0, "bytepad width must be positive");
  std::vector<u8> out = left_encode(w);
  out.insert(out.end(), x.begin(), x.end());
  while (out.size() % w != 0) out.push_back(0);
  return out;
}

std::vector<u8> cshake128(std::span<const u8> msg, usize out_len,
                          std::span<const u8> function_name,
                          std::span<const u8> customization) {
  return cshake_impl(kRate128, msg, out_len, function_name, customization);
}

std::vector<u8> cshake256(std::span<const u8> msg, usize out_len,
                          std::span<const u8> function_name,
                          std::span<const u8> customization) {
  return cshake_impl(kRate256, msg, out_len, function_name, customization);
}

std::vector<u8> kmac128(std::span<const u8> key, std::span<const u8> msg,
                        usize out_len, std::span<const u8> customization) {
  return kmac_impl(kRate128, key, msg, out_len, customization, false);
}

std::vector<u8> kmac256(std::span<const u8> key, std::span<const u8> msg,
                        usize out_len, std::span<const u8> customization) {
  return kmac_impl(kRate256, key, msg, out_len, customization, false);
}

std::vector<u8> kmacxof128(std::span<const u8> key, std::span<const u8> msg,
                           usize out_len, std::span<const u8> customization) {
  return kmac_impl(kRate128, key, msg, out_len, customization, true);
}

std::vector<u8> kmacxof256(std::span<const u8> key, std::span<const u8> msg,
                           usize out_len, std::span<const u8> customization) {
  return kmac_impl(kRate256, key, msg, out_len, customization, true);
}

std::vector<u8> tuple_hash128(std::span<const std::vector<u8>> tuple,
                              usize out_len,
                              std::span<const u8> customization) {
  return tuple_hash_impl(kRate128, tuple, out_len, customization);
}

std::vector<u8> tuple_hash256(std::span<const std::vector<u8>> tuple,
                              usize out_len,
                              std::span<const u8> customization) {
  return tuple_hash_impl(kRate256, tuple, out_len, customization);
}

}  // namespace kvx::keccak
