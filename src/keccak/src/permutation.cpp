#include "kvx/keccak/permutation.hpp"

#include <bit>

#include "kvx/common/bits.hpp"

namespace kvx::keccak {

const std::array<u64, kNumRounds>& round_constants() noexcept {
  // Paper Table 6 (identical to FIPS 202 §3.2.5).
  static constexpr std::array<u64, kNumRounds> kRc = {
      0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808Aull,
      0x8000000080008000ull, 0x000000000000808Bull, 0x0000000080000001ull,
      0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008Aull,
      0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000Aull,
      0x000000008000808Bull, 0x800000000000008Bull, 0x8000000000008089ull,
      0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
      0x000000000000800Aull, 0x800000008000000Aull, 0x8000000080008081ull,
      0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
  };
  return kRc;
}

const std::array<std::array<unsigned, 5>, 5>& rho_offsets() noexcept {
  // Paper Table 2, stored [y][x]: offsets()[y][x] rotates lane (x, y).
  static constexpr std::array<std::array<unsigned, 5>, 5> kOffsets = {{
      {0, 1, 62, 28, 27},   // y = 0
      {36, 44, 6, 55, 20},  // y = 1
      {3, 10, 43, 25, 39},  // y = 2
      {41, 45, 15, 21, 8},  // y = 3
      {18, 2, 61, 56, 14},  // y = 4
  }};
  return kOffsets;
}

void theta(State& s) noexcept {
  // B[x] = column parity; C[x] = B[x-1] ^ ROT(B[x+1], 1); A[x,y] ^= C[x].
  std::array<u64, 5> b{};
  for (usize x = 0; x < 5; ++x) {
    b[x] = s.lane(x, 0) ^ s.lane(x, 1) ^ s.lane(x, 2) ^ s.lane(x, 3) ^ s.lane(x, 4);
  }
  std::array<u64, 5> c{};
  for (usize x = 0; x < 5; ++x) {
    c[x] = b[(x + 4) % 5] ^ rotl64(b[(x + 1) % 5], 1);
  }
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) s.lane(x, y) ^= c[x];
  }
}

void rho(State& s) noexcept {
  const auto& r = rho_offsets();
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) s.lane(x, y) = rotl64(s.lane(x, y), r[y][x]);
  }
}

void pi(State& s) noexcept {
  const State e = s;
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) s.lane(x, y) = e.lane(x + 3 * y, x);
  }
}

void chi(State& s) noexcept {
  for (usize y = 0; y < 5; ++y) {
    std::array<u64, 5> f{};
    for (usize x = 0; x < 5; ++x) f[x] = s.lane(x, y);
    for (usize x = 0; x < 5; ++x) {
      s.lane(x, y) = f[x] ^ (~f[(x + 1) % 5] & f[(x + 2) % 5]);
    }
  }
}

void iota(State& s, usize round_index) noexcept {
  s.lane(0, 0) ^= round_constants()[round_index % kNumRounds];
}

// ---------------------------------------------------------------------------
// Inverse step mappings.
// ---------------------------------------------------------------------------

namespace {

/// Column parities p[x] of a state.
std::array<u64, 5> parities(const State& s) noexcept {
  std::array<u64, 5> p{};
  for (usize x = 0; x < 5; ++x) {
    p[x] = s.lane(x, 0) ^ s.lane(x, 1) ^ s.lane(x, 2) ^ s.lane(x, 3) ^ s.lane(x, 4);
  }
  return p;
}

/// The θ parity transfer M = I + Ê acting on the 5×64-bit parity plane,
/// where Ê(p)[x] = p[x-1] ^ ROTL(p[x+1], 1).
std::array<u64, 5> theta_parity_map(const std::array<u64, 5>& p) noexcept {
  std::array<u64, 5> out{};
  for (usize x = 0; x < 5; ++x) {
    out[x] = p[x] ^ p[(x + 4) % 5] ^ rotl64(p[(x + 1) % 5], 1);
  }
  return out;
}

/// Rows of M⁻¹ (computed once by Gauss–Jordan elimination over GF(2) on the
/// 320 × 320 bit-matrix). Row i, ANDed with a parity vector and reduced by
/// overall parity, yields bit i of M⁻¹·p.
const std::array<std::array<u64, 5>, 320>& inverse_theta_matrix() {
  static const auto kInv = [] {
    // rows[i] = [ M-part (5×u64) | identity-part (5×u64) ]
    struct Row {
      std::array<u64, 5> m;
      std::array<u64, 5> id;
    };
    std::array<Row, 320> rows{};
    // Build M column by column: column j = M e_j; rows pick up single bits.
    for (usize j = 0; j < 320; ++j) {
      std::array<u64, 5> e{};
      e[j / 64] = u64{1} << (j % 64);
      const auto col = theta_parity_map(e);
      for (usize i = 0; i < 320; ++i) {
        if ((col[i / 64] >> (i % 64)) & 1u) rows[i].m[j / 64] |= u64{1} << (j % 64);
      }
      rows[j].id[j / 64] |= u64{1} << (j % 64);
    }
    // Gauss–Jordan.
    for (usize col_i = 0; col_i < 320; ++col_i) {
      const usize w = col_i / 64;
      const u64 bit = u64{1} << (col_i % 64);
      usize pivot = col_i;
      while (pivot < 320 && !(rows[pivot].m[w] & bit)) ++pivot;
      // θ is invertible on Keccak-f[1600], so a pivot always exists.
      std::swap(rows[col_i], rows[pivot]);
      for (usize r = 0; r < 320; ++r) {
        if (r != col_i && (rows[r].m[w] & bit)) {
          for (usize k = 0; k < 5; ++k) {
            rows[r].m[k] ^= rows[col_i].m[k];
            rows[r].id[k] ^= rows[col_i].id[k];
          }
        }
      }
    }
    std::array<std::array<u64, 5>, 320> inv{};
    for (usize i = 0; i < 320; ++i) inv[i] = rows[i].id;
    return inv;
  }();
  return kInv;
}

}  // namespace

void inv_theta(State& s) noexcept {
  // P(B) = M·P(A)  ⇒  P(A) = M⁻¹·P(B);  A = B ^ Ê(P(A)).
  const auto pb = parities(s);
  const auto& minv = inverse_theta_matrix();
  std::array<u64, 5> pa{};
  for (usize i = 0; i < 320; ++i) {
    unsigned acc = 0;
    for (usize k = 0; k < 5; ++k) {
      acc ^= static_cast<unsigned>(std::popcount(minv[i][k] & pb[k]));
    }
    if (acc & 1u) pa[i / 64] |= u64{1} << (i % 64);
  }
  std::array<u64, 5> c{};
  for (usize x = 0; x < 5; ++x) {
    c[x] = pa[(x + 4) % 5] ^ rotl64(pa[(x + 1) % 5], 1);
  }
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) s.lane(x, y) ^= c[x];
  }
}

void inv_rho(State& s) noexcept {
  const auto& r = rho_offsets();
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) s.lane(x, y) = rotr64(s.lane(x, y), r[y][x]);
  }
}

void inv_pi(State& s) noexcept {
  const State f = s;
  // π maps E[(x+3y) mod 5, x] → F[x, y]; solve for E.
  for (usize xs = 0; xs < 5; ++xs) {
    for (usize ys = 0; ys < 5; ++ys) {
      s.lane(xs, ys) = f.lane(ys, 2 * (xs + 5 - ys));
    }
  }
}

void inv_chi(State& s) noexcept {
  // χ acts independently on each (row, z) 5-bit slice; invert via a 32-entry
  // lookup of the forward bijection.
  static const auto kInvTable = [] {
    std::array<u8, 32> inv{};
    for (u32 a = 0; a < 32; ++a) {
      u32 b = 0;
      for (u32 x = 0; x < 5; ++x) {
        const u32 ax = (a >> x) & 1u;
        const u32 a1 = (a >> ((x + 1) % 5)) & 1u;
        const u32 a2 = (a >> ((x + 2) % 5)) & 1u;
        b |= (ax ^ (~a1 & a2 & 1u)) << x;
      }
      inv[b] = static_cast<u8>(a);
    }
    return inv;
  }();
  for (usize y = 0; y < 5; ++y) {
    std::array<u64, 5> in{};
    for (usize x = 0; x < 5; ++x) in[x] = s.lane(x, y);
    std::array<u64, 5> out{};
    for (unsigned z = 0; z < 64; ++z) {
      u32 slice = 0;
      for (usize x = 0; x < 5; ++x) slice |= static_cast<u32>((in[x] >> z) & 1u) << x;
      const u32 orig = kInvTable[slice];
      for (usize x = 0; x < 5; ++x) {
        out[x] |= static_cast<u64>((orig >> x) & 1u) << z;
      }
    }
    for (usize x = 0; x < 5; ++x) s.lane(x, y) = out[x];
  }
}

void inv_iota(State& s, usize round_index) noexcept { iota(s, round_index); }

// ---------------------------------------------------------------------------
// Full permutation.
// ---------------------------------------------------------------------------

void round(State& s, usize round_index) noexcept {
  theta(s);
  rho(s);
  pi(s);
  chi(s);
  iota(s, round_index);
}

void permute(State& s) noexcept {
  for (usize i = 0; i < kNumRounds; ++i) round(s, i);
}

void permute_fast(State& s) noexcept {
  // Lane-unrolled implementation in the style of the XKCP compact readable
  // code: θ and ρ∘π fused into a single pass with explicit temporaries.
  auto a = s.flat();
  u64 a00 = a[0], a10 = a[1], a20 = a[2], a30 = a[3], a40 = a[4];
  u64 a01 = a[5], a11 = a[6], a21 = a[7], a31 = a[8], a41 = a[9];
  u64 a02 = a[10], a12 = a[11], a22 = a[12], a32 = a[13], a42 = a[14];
  u64 a03 = a[15], a13 = a[16], a23 = a[17], a33 = a[18], a43 = a[19];
  u64 a04 = a[20], a14 = a[21], a24 = a[22], a34 = a[23], a44 = a[24];

  const auto& rc = round_constants();
  for (usize i = 0; i < kNumRounds; ++i) {
    // θ
    const u64 b0 = a00 ^ a01 ^ a02 ^ a03 ^ a04;
    const u64 b1 = a10 ^ a11 ^ a12 ^ a13 ^ a14;
    const u64 b2 = a20 ^ a21 ^ a22 ^ a23 ^ a24;
    const u64 b3 = a30 ^ a31 ^ a32 ^ a33 ^ a34;
    const u64 b4 = a40 ^ a41 ^ a42 ^ a43 ^ a44;
    const u64 c0 = b4 ^ rotl64(b1, 1);
    const u64 c1 = b0 ^ rotl64(b2, 1);
    const u64 c2 = b1 ^ rotl64(b3, 1);
    const u64 c3 = b2 ^ rotl64(b4, 1);
    const u64 c4 = b3 ^ rotl64(b0, 1);
    a00 ^= c0; a01 ^= c0; a02 ^= c0; a03 ^= c0; a04 ^= c0;
    a10 ^= c1; a11 ^= c1; a12 ^= c1; a13 ^= c1; a14 ^= c1;
    a20 ^= c2; a21 ^= c2; a22 ^= c2; a23 ^= c2; a24 ^= c2;
    a30 ^= c3; a31 ^= c3; a32 ^= c3; a33 ^= c3; a34 ^= c3;
    a40 ^= c4; a41 ^= c4; a42 ^= c4; a43 ^= c4; a44 ^= c4;

    // ρ then π: f(x, y) = rot(e((x + 3y) mod 5, x)).
    const u64 f00 = a00;              // rot 0
    const u64 f10 = rotl64(a11, 44);
    const u64 f20 = rotl64(a22, 43);
    const u64 f30 = rotl64(a33, 21);
    const u64 f40 = rotl64(a44, 14);
    const u64 f01 = rotl64(a30, 28);
    const u64 f11 = rotl64(a41, 20);
    const u64 f21 = rotl64(a02, 3);
    const u64 f31 = rotl64(a13, 45);
    const u64 f41 = rotl64(a24, 61);
    const u64 f02 = rotl64(a10, 1);
    const u64 f12 = rotl64(a21, 6);
    const u64 f22 = rotl64(a32, 25);
    const u64 f32 = rotl64(a43, 8);
    const u64 f42 = rotl64(a04, 18);
    const u64 f03 = rotl64(a40, 27);
    const u64 f13 = rotl64(a01, 36);
    const u64 f23 = rotl64(a12, 10);
    const u64 f33 = rotl64(a23, 15);
    const u64 f43 = rotl64(a34, 56);
    const u64 f04 = rotl64(a20, 62);
    const u64 f14 = rotl64(a31, 55);
    const u64 f24 = rotl64(a42, 39);
    const u64 f34 = rotl64(a03, 41);
    const u64 f44 = rotl64(a14, 2);

    // χ and ι.
    a00 = f00 ^ (~f10 & f20) ^ rc[i];
    a10 = f10 ^ (~f20 & f30);
    a20 = f20 ^ (~f30 & f40);
    a30 = f30 ^ (~f40 & f00);
    a40 = f40 ^ (~f00 & f10);
    a01 = f01 ^ (~f11 & f21);
    a11 = f11 ^ (~f21 & f31);
    a21 = f21 ^ (~f31 & f41);
    a31 = f31 ^ (~f41 & f01);
    a41 = f41 ^ (~f01 & f11);
    a02 = f02 ^ (~f12 & f22);
    a12 = f12 ^ (~f22 & f32);
    a22 = f22 ^ (~f32 & f42);
    a32 = f32 ^ (~f42 & f02);
    a42 = f42 ^ (~f02 & f12);
    a03 = f03 ^ (~f13 & f23);
    a13 = f13 ^ (~f23 & f33);
    a23 = f23 ^ (~f33 & f43);
    a33 = f33 ^ (~f43 & f03);
    a43 = f43 ^ (~f03 & f13);
    a04 = f04 ^ (~f14 & f24);
    a14 = f14 ^ (~f24 & f34);
    a24 = f24 ^ (~f34 & f44);
    a34 = f34 ^ (~f44 & f04);
    a44 = f44 ^ (~f04 & f14);
  }

  a[0] = a00; a[1] = a10; a[2] = a20; a[3] = a30; a[4] = a40;
  a[5] = a01; a[6] = a11; a[7] = a21; a[8] = a31; a[9] = a41;
  a[10] = a02; a[11] = a12; a[12] = a22; a[13] = a32; a[14] = a42;
  a[15] = a03; a[16] = a13; a[17] = a23; a[18] = a33; a[19] = a43;
  a[20] = a04; a[21] = a14; a[22] = a24; a[23] = a34; a[24] = a44;
}

}  // namespace kvx::keccak
