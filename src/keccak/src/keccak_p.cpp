#include "kvx/keccak/keccak_p.hpp"

namespace kvx::keccak {

bool lfsr_rc_bit(unsigned t) noexcept {
  // FIPS 202 Algorithm 5: R = 10000000; for i in 1..t mod 255 step the LFSR
  // with feedback polynomial x^8 + x^6 + x^5 + x^4 + 1.
  const unsigned tm = t % 255;
  if (tm == 0) return true;
  u16 r = 0x01;  // bit 0 = R[0]
  for (unsigned i = 1; i <= tm; ++i) {
    r = static_cast<u16>(r << 1);
    if (r & 0x100) {
      r ^= 0x171;  // x^8 -> x^6 + x^5 + x^4 + 1 (0b01110001 + carry clear)
    }
  }
  return (r & 1) != 0;
}

u64 derived_round_constant(unsigned l_param, unsigned ir) noexcept {
  u64 rc = 0;
  for (unsigned j = 0; j <= l_param; ++j) {
    if (lfsr_rc_bit(j + 7 * ir)) rc |= u64{1} << ((1u << j) - 1);
  }
  return rc;
}

unsigned derived_rho_offset(unsigned x, unsigned y, unsigned w) noexcept {
  if (x == 0 && y == 0) return 0;
  // Walk (1,0) -> (y, (2x+3y) mod 5), offset (t+1)(t+2)/2 at step t.
  unsigned cx = 1, cy = 0;
  for (unsigned t = 0; t < 24; ++t) {
    if (cx == x && cy == y) return ((t + 1) * (t + 2) / 2) % w;
    const unsigned nx = cy;
    const unsigned ny = (2 * cx + 3 * cy) % 5;
    cx = nx;
    cy = ny;
  }
  return 0;  // unreachable: the walk visits all 24 non-origin positions
}

}  // namespace kvx::keccak
