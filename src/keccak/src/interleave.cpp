#include "kvx/keccak/interleave.hpp"

#include "kvx/common/bits.hpp"

namespace kvx::keccak {
namespace {

/// Compact the even-indexed bits of a 64-bit word into its low 32 bits
/// (a perfect outer unshuffle, done with the classic delta-swap ladder).
u64 unshuffle(u64 x) noexcept {
  u64 t = 0;
  t = (x ^ (x >> 1)) & 0x2222222222222222ull; x ^= t ^ (t << 1);
  t = (x ^ (x >> 2)) & 0x0C0C0C0C0C0C0C0Cull; x ^= t ^ (t << 2);
  t = (x ^ (x >> 4)) & 0x00F000F000F000F0ull; x ^= t ^ (t << 4);
  t = (x ^ (x >> 8)) & 0x0000FF000000FF00ull; x ^= t ^ (t << 8);
  t = (x ^ (x >> 16)) & 0x00000000FFFF0000ull; x ^= t ^ (t << 16);
  return x;
}

/// Inverse of unshuffle: spread low 32 bits to even positions, high 32 to odd.
u64 shuffle(u64 x) noexcept {
  u64 t = 0;
  t = (x ^ (x >> 16)) & 0x00000000FFFF0000ull; x ^= t ^ (t << 16);
  t = (x ^ (x >> 8)) & 0x0000FF000000FF00ull; x ^= t ^ (t << 8);
  t = (x ^ (x >> 4)) & 0x00F000F000F000F0ull; x ^= t ^ (t << 4);
  t = (x ^ (x >> 2)) & 0x0C0C0C0C0C0C0C0Cull; x ^= t ^ (t << 2);
  t = (x ^ (x >> 1)) & 0x2222222222222222ull; x ^= t ^ (t << 1);
  return x;
}

}  // namespace

Interleaved interleave(u64 lane) noexcept {
  const u64 u = unshuffle(lane);
  return {static_cast<u32>(u), static_cast<u32>(u >> 32)};
}

u64 deinterleave(Interleaved v) noexcept {
  return shuffle(concat32(v.odd, v.even));
}

Interleaved rotl_interleaved(Interleaved v, unsigned n) noexcept {
  const unsigned r = n % 64u;
  const unsigned half = r / 2;
  if (r % 2 == 0) {
    return {rotl32(v.even, half), rotl32(v.odd, half)};
  }
  // Odd rotation swaps the roles: old odd bits land on even positions
  // (rotated by half+1), old even bits land on odd positions (by half).
  return {rotl32(v.odd, half + 1), rotl32(v.even, half)};
}

}  // namespace kvx::keccak
