#include "kvx/keccak/duplex.hpp"

#include "kvx/common/error.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::keccak {

Duplex::Duplex(usize rate_bytes_in)
    : Duplex(rate_bytes_in, [](State& s) { permute_fast(s); }) {}

Duplex::Duplex(usize rate_bytes_in, Permutation f)
    : f_(std::move(f)), rate_(rate_bytes_in) {
  KVX_CHECK_MSG(rate_ > 1 && rate_ < kStateBytes, "duplex rate out of range");
  KVX_CHECK(f_ != nullptr);
}

std::vector<u8> Duplex::duplexing(std::span<const u8> sigma, usize out_len) {
  if (sigma.size() > max_input_bytes()) {
    throw Error("duplexing input exceeds rate - 1 bytes");
  }
  if (out_len > rate_) {
    throw Error("duplexing output exceeds the rate");
  }
  // pad10*1 framing of sigma into one rate block.
  std::vector<u8> block(rate_, 0);
  std::copy(sigma.begin(), sigma.end(), block.begin());
  block[sigma.size()] ^= 0x01;
  block[rate_ - 1] ^= 0x80;
  state_.xor_bytes(block);
  f_(state_);
  ++count_;
  std::vector<u8> out(out_len);
  state_.extract_bytes(out);
  return out;
}

void Duplex::reset() {
  state_ = State{};
  count_ = 0;
}

}  // namespace kvx::keccak
