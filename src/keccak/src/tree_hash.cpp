#include "kvx/keccak/tree_hash.hpp"

#include "kvx/common/error.hpp"
#include "kvx/keccak/sp800_185.hpp"
#include "kvx/keccak/turboshake.hpp"

namespace kvx::keccak {

std::vector<u8> tree_hash_final_input(
    std::span<const u8> first_chunk,
    std::span<const std::vector<u8>> chaining_values) {
  // S0 ‖ 0x03 0⁷ ‖ CV_1 … CV_{n−1} ‖ right_encode(n−1) ‖ 0xFF 0xFF.
  std::vector<u8> node(first_chunk.begin(), first_chunk.end());
  static constexpr u8 kSeparator[8] = {0x03, 0, 0, 0, 0, 0, 0, 0};
  node.insert(node.end(), std::begin(kSeparator), std::end(kSeparator));
  for (const auto& cv : chaining_values) {
    node.insert(node.end(), cv.begin(), cv.end());
  }
  const auto count = right_encode(chaining_values.size());
  node.insert(node.end(), count.begin(), count.end());
  node.push_back(0xFF);
  node.push_back(0xFF);
  return node;
}

std::vector<u8> tree_hash128(std::span<const u8> msg, usize out_len,
                             const TreeHashParams& params) {
  KVX_CHECK_MSG(params.chunk_bytes > 0, "chunk size must be positive");
  if (msg.size() <= params.chunk_bytes) {
    return turboshake128(msg, out_len, TreeHashDomains::kSingle);
  }
  const std::span<const u8> first = msg.first(params.chunk_bytes);
  std::vector<std::vector<u8>> cvs;
  for (usize pos = params.chunk_bytes; pos < msg.size();
       pos += params.chunk_bytes) {
    const usize take = std::min(params.chunk_bytes, msg.size() - pos);
    cvs.push_back(turboshake128(msg.subspan(pos, take), params.cv_bytes,
                                TreeHashDomains::kLeaf));
  }
  return turboshake128(tree_hash_final_input(first, cvs), out_len,
                       TreeHashDomains::kFinal);
}

}  // namespace kvx::keccak
