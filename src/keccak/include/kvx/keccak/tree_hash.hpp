// KangarooTwelve-style tree hashing over TurboSHAKE128.
//
// Long messages are cut into fixed-size chunks; chunks after the first are
// hashed to 32-byte chaining values (leaf domain 0x0B) which are appended —
// with the K12 framing (the 0x03‖0⁷ separator, right_encode(n−1), 0xFF 0xFF
// suffix) — to the first chunk and hashed by the final node (domain 0x06).
// A message of at most one chunk is hashed flat with domain 0x07.
//
// The leaves are *independent*, so a wide SHA-3 accelerator can hash SN of
// them per permutation batch — this is how the paper's multi-state
// parallelism (Figure 5) speeds up a SINGLE long message, not just message
// batches. core/parallel_tree_hash.hpp provides that accelerated path; this
// header is the host reference.
//
// Note: implemented from the KangarooTwelve construction; no official test
// vectors are available offline, so conformance is established structurally
// (tests cover framing boundaries, single-chunk equivalence and the
// host-vs-accelerator differential).
#pragma once

#include <span>
#include <vector>

#include "kvx/common/types.hpp"

namespace kvx::keccak {

struct TreeHashParams {
  usize chunk_bytes = 8192;  ///< K12 chunk size
  usize cv_bytes = 32;       ///< chaining-value length
};

/// Domain-separation bytes of the construction.
struct TreeHashDomains {
  static constexpr u8 kSingle = 0x07;  ///< ≤ one chunk: flat hash
  static constexpr u8 kLeaf = 0x0B;    ///< chaining-value leaves
  static constexpr u8 kFinal = 0x06;   ///< final (trunk) node
};

/// Tree-hash `msg` to `out_len` bytes (host reference implementation).
[[nodiscard]] std::vector<u8> tree_hash128(std::span<const u8> msg,
                                           usize out_len,
                                           const TreeHashParams& params = {});

/// Build the final-node input from the first chunk and the chaining values
/// (shared by the host and accelerated implementations).
[[nodiscard]] std::vector<u8> tree_hash_final_input(
    std::span<const u8> first_chunk,
    std::span<const std::vector<u8>> chaining_values);

}  // namespace kvx::keccak
