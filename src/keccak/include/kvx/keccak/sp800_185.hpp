// NIST SP 800-185 derived functions: cSHAKE, KMAC and TupleHash.
//
// These are the standardized constructions layered on the same
// Keccak-f[1600] sponge the paper accelerates — any workload using them
// (KMAC authentication, domain-separated XOFs) benefits from the custom
// vector extensions identically, so a complete SHA-3 library ships them.
//
// Implemented from SP 800-185: the string-encoding primitives
// (left_encode / right_encode / encode_string / bytepad) are exposed for
// testing; cSHAKE falls back to plain SHAKE when both the function name N
// and the customization string S are empty, as the spec requires.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "kvx/keccak/sponge.hpp"

namespace kvx::keccak {

// --- SP 800-185 §2.3 string encodings ---------------------------------------

/// left_encode(x): big-endian minimal bytes of x, preceded by their count.
[[nodiscard]] std::vector<u8> left_encode(u64 x);

/// right_encode(x): big-endian minimal bytes of x, followed by their count.
[[nodiscard]] std::vector<u8> right_encode(u64 x);

/// encode_string(s) = left_encode(8·|s|) ‖ s.
[[nodiscard]] std::vector<u8> encode_string(std::span<const u8> s);
[[nodiscard]] std::vector<u8> encode_string(std::string_view s);

/// bytepad(x, w) = left_encode(w) ‖ x ‖ 0… (to a multiple of w bytes).
[[nodiscard]] std::vector<u8> bytepad(std::span<const u8> x, usize w);

// --- cSHAKE ------------------------------------------------------------------

/// cSHAKE128(X, L, N, S); returns L bytes. Empty N and S degrade to SHAKE128.
[[nodiscard]] std::vector<u8> cshake128(std::span<const u8> msg, usize out_len,
                                        std::span<const u8> function_name,
                                        std::span<const u8> customization);

/// cSHAKE256.
[[nodiscard]] std::vector<u8> cshake256(std::span<const u8> msg, usize out_len,
                                        std::span<const u8> function_name,
                                        std::span<const u8> customization);

// --- KMAC ---------------------------------------------------------------------

/// KMAC128(K, X, L, S) — fixed-length MAC (L encoded into the input).
[[nodiscard]] std::vector<u8> kmac128(std::span<const u8> key,
                                      std::span<const u8> msg, usize out_len,
                                      std::span<const u8> customization = {});

/// KMAC256.
[[nodiscard]] std::vector<u8> kmac256(std::span<const u8> key,
                                      std::span<const u8> msg, usize out_len,
                                      std::span<const u8> customization = {});

/// KMACXOF128 — arbitrary-length variant (right_encode(0) per §4.3.1).
[[nodiscard]] std::vector<u8> kmacxof128(std::span<const u8> key,
                                         std::span<const u8> msg, usize out_len,
                                         std::span<const u8> customization = {});

/// KMACXOF256.
[[nodiscard]] std::vector<u8> kmacxof256(std::span<const u8> key,
                                         std::span<const u8> msg, usize out_len,
                                         std::span<const u8> customization = {});

// --- TupleHash -------------------------------------------------------------------

/// TupleHash128 — unambiguous hash of a sequence of byte strings.
[[nodiscard]] std::vector<u8> tuple_hash128(
    std::span<const std::vector<u8>> tuple, usize out_len,
    std::span<const u8> customization = {});

/// TupleHash256.
[[nodiscard]] std::vector<u8> tuple_hash256(
    std::span<const std::vector<u8>> tuple, usize out_len,
    std::span<const u8> customization = {});

}  // namespace kvx::keccak
