// The 1600-bit Keccak state: a 5 × 5 matrix of 64-bit lanes.
//
// Conventions follow FIPS 202 and the paper's Algorithm 1: `lane(x, y)` is
// the lane in column x (0..4) and row/plane y (0..4); the byte <-> state
// mapping is the standard little-endian lane ordering, lane (x, y) holding
// message bytes 8·(5y + x) .. 8·(5y + x) + 7.
#pragma once

#include <array>
#include <span>

#include "kvx/common/types.hpp"

namespace kvx::keccak {

inline constexpr usize kLanes = 25;        ///< lanes per state
inline constexpr usize kStateBytes = 200;  ///< 1600 bits

/// A single Keccak-f[1600] state.
class State {
 public:
  /// All-zero state.
  constexpr State() noexcept : lanes_{} {}

  /// Access lane (x, y). Indices are taken modulo 5 so step-mapping code can
  /// write `lane(x + 1, y)` without explicit wrapping.
  [[nodiscard]] constexpr u64& lane(usize x, usize y) noexcept {
    return lanes_[5 * (y % 5) + (x % 5)];
  }
  [[nodiscard]] constexpr u64 lane(usize x, usize y) const noexcept {
    return lanes_[5 * (y % 5) + (x % 5)];
  }

  /// Flat lane view, index = 5y + x.
  [[nodiscard]] constexpr std::span<u64, kLanes> flat() noexcept { return lanes_; }
  [[nodiscard]] constexpr std::span<const u64, kLanes> flat() const noexcept {
    return lanes_;
  }

  /// XOR `data` into the first `data.size()` bytes of the state (absorb).
  /// `data.size()` must be <= 200.
  void xor_bytes(std::span<const u8> data) noexcept;

  /// Copy the first `out.size()` bytes of the state into `out` (squeeze).
  /// `out.size()` must be <= 200.
  void extract_bytes(std::span<u8> out) const noexcept;

  /// Serialize all 200 state bytes.
  [[nodiscard]] std::array<u8, kStateBytes> to_bytes() const noexcept;

  /// Deserialize a state from 200 bytes.
  [[nodiscard]] static State from_bytes(std::span<const u8, kStateBytes> bytes) noexcept;

  friend constexpr bool operator==(const State&, const State&) noexcept = default;

 private:
  std::array<u64, kLanes> lanes_;
};

}  // namespace kvx::keccak
