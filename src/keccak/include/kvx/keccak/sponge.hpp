// The sponge construction (paper Figure 1): padding, absorbing, squeezing.
//
// The sponge is parameterized by the rate r (bytes) and a domain-separation
// suffix; capacity c = 200 − r bytes. Padding is the FIPS 202 pad10*1 rule
// with the domain bits prepended (0x06 for SHA-3, 0x1F for SHAKE, 0x01 for
// raw Keccak).
#pragma once

#include <functional>
#include <span>

#include "kvx/keccak/state.hpp"

namespace kvx::keccak {

/// Domain-separation suffixes (bits appended before pad10*1, LSB-first).
enum class Domain : u8 {
  kKeccak = 0x01,  ///< original Keccak submission (no suffix)
  kSha3 = 0x06,    ///< SHA-3 fixed-output functions ("01" suffix)
  kShake = 0x1F,   ///< SHAKE extendable-output functions ("1111" suffix)
};

/// Incremental sponge engine over Keccak-f[1600].
///
/// The permutation is pluggable so the same sponge logic can drive either the
/// host golden model or the simulated vector accelerator (HW/SW co-design:
/// software does padding/absorb/squeeze bookkeeping, the accelerator runs f).
class Sponge {
 public:
  using Permutation = std::function<void(State&)>;

  /// `rate_bytes` must be in (0, 200) and is the block size of the sponge.
  Sponge(usize rate_bytes, Domain domain);

  /// Use a custom permutation backend (defaults to the host permute_fast).
  Sponge(usize rate_bytes, Domain domain, Permutation f);

  /// Absorb message bytes. May be called repeatedly before squeezing starts.
  void absorb(std::span<const u8> data);

  /// Squeeze output bytes. The first call applies padding; further absorbs
  /// are not allowed afterwards.
  void squeeze(std::span<u8> out);

  /// Reset to the empty state for a fresh message.
  void reset();

  [[nodiscard]] usize rate_bytes() const noexcept { return rate_; }
  [[nodiscard]] usize capacity_bytes() const noexcept { return kStateBytes - rate_; }
  [[nodiscard]] const State& state() const noexcept { return state_; }
  /// Number of Keccak-f permutations applied so far (perf accounting).
  [[nodiscard]] usize permutation_count() const noexcept { return perm_count_; }

 private:
  void run_permutation();
  void pad_and_switch();

  State state_;
  Permutation f_;
  usize rate_;
  Domain domain_;
  usize absorbed_in_block_ = 0;  ///< bytes absorbed into the current block
  usize squeeze_offset_ = 0;     ///< bytes squeezed out of the current block
  bool squeezing_ = false;
  usize perm_count_ = 0;
};

}  // namespace kvx::keccak
