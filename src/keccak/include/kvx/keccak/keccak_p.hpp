// The generalized Keccak-p[b, nr] permutation family of FIPS 202 §3.
//
// Keccak-f[1600] is the b = 1600 member; the standard also defines states of
// b = 25·w bits for lane widths w ∈ {1, 2, 4, 8, 16, 32, 64}. This module
// implements the family generically:
//
//  * the ρ rotation offsets are *derived* from the (t+1)(t+2)/2 walk of
//    FIPS 202 §3.2.2 (not copied from a table);
//  * the ι round constants are *generated* by the rc(t) LFSR of §3.2.5
//    (x⁸ + x⁶ + x⁵ + x⁴ + 1 over GF(2));
//
// which gives the test suite an independent derivation to cross-check the
// hardcoded Keccak-f[1600] tables (paper Tables 2 and 6) against.
//
// Reduced-round members (Keccak-p[1600, 12] etc.) are the basis of
// TurboSHAKE/KangarooTwelve-style constructions.
#pragma once

#include <array>
#include <bit>
#include <concepts>

#include "kvx/common/types.hpp"

namespace kvx::keccak {

/// rc(t): bit t of the degree-8 LFSR stream of FIPS 202 §3.2.5.
[[nodiscard]] bool lfsr_rc_bit(unsigned t) noexcept;

/// ι round constant for lane width 2^l_param and round index ir
/// (RC[2^j − 1] = rc(j + 7·ir) for j = 0..l_param).
[[nodiscard]] u64 derived_round_constant(unsigned l_param, unsigned ir) noexcept;

/// ρ offset for lane (x, y) at lane width w (FIPS 202 §3.2.2 walk).
[[nodiscard]] unsigned derived_rho_offset(unsigned x, unsigned y,
                                          unsigned w) noexcept;

/// Keccak-p over lanes of type Lane (u8/u16/u32/u64 → b = 200/400/800/1600).
template <std::unsigned_integral Lane>
class KeccakP {
 public:
  static constexpr unsigned kW = 8 * sizeof(Lane);          ///< lane width
  static constexpr unsigned kL = std::countr_zero(kW);      ///< log2(w)
  static constexpr unsigned kB = 25 * kW;                   ///< state bits
  static constexpr unsigned kDefaultRounds = 12 + 2 * kL;   ///< nr of Keccak-f

  using StateArray = std::array<Lane, 25>;  ///< flat index 5y + x

  /// Rotate within the lane width.
  [[nodiscard]] static constexpr Lane rot(Lane v, unsigned n) noexcept {
    return std::rotl(v, static_cast<int>(n % kW));
  }

  static void theta(StateArray& a) noexcept {
    std::array<Lane, 5> b{}, c{};
    for (usize x = 0; x < 5; ++x) {
      b[x] = static_cast<Lane>(a[x] ^ a[5 + x] ^ a[10 + x] ^ a[15 + x] ^
                               a[20 + x]);
    }
    for (usize x = 0; x < 5; ++x) {
      c[x] = static_cast<Lane>(b[(x + 4) % 5] ^ rot(b[(x + 1) % 5], 1));
    }
    for (usize y = 0; y < 5; ++y) {
      for (usize x = 0; x < 5; ++x) a[5 * y + x] ^= c[x];
    }
  }

  static void rho(StateArray& a) noexcept {
    for (unsigned y = 0; y < 5; ++y) {
      for (unsigned x = 0; x < 5; ++x) {
        a[5 * y + x] = rot(a[5 * y + x], derived_rho_offset(x, y, kW));
      }
    }
  }

  static void pi(StateArray& a) noexcept {
    const StateArray e = a;
    for (usize y = 0; y < 5; ++y) {
      for (usize x = 0; x < 5; ++x) {
        a[5 * y + x] = e[5 * x + (x + 3 * y) % 5];
      }
    }
  }

  static void chi(StateArray& a) noexcept {
    for (usize y = 0; y < 5; ++y) {
      std::array<Lane, 5> f{};
      for (usize x = 0; x < 5; ++x) f[x] = a[5 * y + x];
      for (usize x = 0; x < 5; ++x) {
        a[5 * y + x] = static_cast<Lane>(
            f[x] ^ (static_cast<Lane>(~f[(x + 1) % 5]) & f[(x + 2) % 5]));
      }
    }
  }

  /// ι with the FIPS 202 round-index convention: for an nr-round
  /// permutation the rounds are ir = 12 + 2l − nr … 12 + 2l − 1.
  static void iota(StateArray& a, unsigned ir) noexcept {
    a[0] ^= static_cast<Lane>(derived_round_constant(kL, ir));
  }

  static void round(StateArray& a, unsigned ir) noexcept {
    theta(a);
    rho(a);
    pi(a);
    chi(a);
    iota(a, ir);
  }

  /// Keccak-p[25·w, nr].
  static void permute(StateArray& a,
                      unsigned num_rounds = kDefaultRounds) noexcept {
    const unsigned first = kDefaultRounds - num_rounds;
    for (unsigned ir = first; ir < kDefaultRounds; ++ir) round(a, ir);
  }
};

using KeccakP200 = KeccakP<u8>;
using KeccakP400 = KeccakP<u16>;
using KeccakP800 = KeccakP<u32>;
using KeccakP1600 = KeccakP<u64>;

}  // namespace kvx::keccak
