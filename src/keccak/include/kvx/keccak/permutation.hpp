// Keccak-f[1600]: the five step mappings and the full 24-round permutation.
//
// Two implementations are provided:
//  * the *reference* path — each step mapping (θ, ρ, π, χ, ι) as a separate
//    function operating plane-per-plane, exactly as in the paper's
//    Algorithm 1; this is the golden model the simulator is checked against,
//    and the per-step functions let tests compare intermediate registers;
//  * an *optimized* lane-unrolled path (XKCP-compact style) used by the host
//    SHA-3 library and as a host-speed baseline in benchmarks.
//
// Inverse step mappings are provided for property tests (every step of
// Keccak-f is a bijection on the 1600-bit state).
#pragma once

#include <array>

#include "kvx/keccak/state.hpp"

namespace kvx::keccak {

inline constexpr usize kNumRounds = 24;

/// ι round constants, RC[0..23] (paper Table 6 / FIPS 202).
[[nodiscard]] const std::array<u64, kNumRounds>& round_constants() noexcept;

/// ρ rotation offsets indexed [y][x] — i.e. `rho_offsets()[y][x]` is the
/// left-rotation applied to lane (x, y). Matches the paper's Table 2 with
/// rows y and columns x. This [row][lane] indexing is exactly the hardware
/// lookup table the `v64rho`/`v32lrho`/`v32hrho` instructions consult.
[[nodiscard]] const std::array<std::array<unsigned, 5>, 5>& rho_offsets() noexcept;

// --- Individual step mappings (reference, plane-per-plane) ----------------

/// θ: XOR every bit with the parities of the two adjacent columns.
void theta(State& s) noexcept;
/// ρ: rotate each lane by its position-dependent offset.
void rho(State& s) noexcept;
/// π: lane permutation F[x, y] = E[(x + 3y) mod 5, x].
void pi(State& s) noexcept;
/// χ: the only non-linear step, row-wise  H[x] = F[x] ^ (~F[x+1] & F[x+2]).
void chi(State& s) noexcept;
/// ι: XOR RC[round] into lane (0, 0).
void iota(State& s, usize round) noexcept;

// --- Inverses (for bijectivity property tests) -----------------------------

void inv_theta(State& s) noexcept;
void inv_rho(State& s) noexcept;
void inv_pi(State& s) noexcept;
void inv_chi(State& s) noexcept;
void inv_iota(State& s, usize round) noexcept;

/// One full round: θ, ρ, π, χ, ι in order.
void round(State& s, usize round_index) noexcept;

/// The full 24-round Keccak-f[1600] permutation (reference path).
void permute(State& s) noexcept;

/// The full permutation, lane-unrolled optimized path. Bit-identical to
/// permute(); used where host throughput matters.
void permute_fast(State& s) noexcept;

}  // namespace kvx::keccak
