// 32-bit lane representations for Keccak.
//
// The paper's §3.2 discusses two ways of cutting a 64-bit lane into 32-bit
// words for a 32-bit datapath:
//
//  * the *bit-interleaving* technique — even bits in one word, odd bits in
//    the other, so a 64-bit rotation becomes two independent 32-bit
//    rotations (cheap rotations, but the lane must be converted on entry and
//    exit when SHA-3 interoperates with other code);
//  * the *hi/lo split* the paper adopts — most/least significant 32 bits in
//    separate registers, no conversion needed, with dedicated paired
//    rotation instructions (v32lrotup/v32hrotup, v32lrho/v32hrho) in
//    hardware.
//
// This module implements both so the bench/ablation_interleave experiment
// can quantify the trade-off.
#pragma once

#include <utility>

#include "kvx/common/types.hpp"

namespace kvx::keccak {

/// A 64-bit lane held as two bit-interleaved 32-bit halves.
struct Interleaved {
  u32 even;  ///< bits 0, 2, 4, ... of the lane
  u32 odd;   ///< bits 1, 3, 5, ... of the lane

  friend constexpr bool operator==(Interleaved, Interleaved) noexcept = default;
};

/// Split a lane into its bit-interleaved representation.
[[nodiscard]] Interleaved interleave(u64 lane) noexcept;

/// Recombine a bit-interleaved pair into the original lane.
[[nodiscard]] u64 deinterleave(Interleaved v) noexcept;

/// Rotate an interleaved lane left by n (0..63) using only 32-bit rotations:
/// rotating by 2k rotates both halves by k; rotating by 2k+1 rotates the odd
/// half by k+1 into the even slot and the even half by k into the odd slot.
[[nodiscard]] Interleaved rotl_interleaved(Interleaved v, unsigned n) noexcept;

/// A 64-bit lane held as plain hi/lo 32-bit halves (the paper's layout).
struct HiLo {
  u32 hi;
  u32 lo;

  friend constexpr bool operator==(HiLo, HiLo) noexcept = default;
};

/// Split a lane into hi/lo halves.
[[nodiscard]] constexpr HiLo split_hilo(u64 lane) noexcept {
  return {static_cast<u32>(lane >> 32), static_cast<u32>(lane)};
}

/// Recombine hi/lo halves.
[[nodiscard]] constexpr u64 join_hilo(HiLo v) noexcept {
  return (static_cast<u64>(v.hi) << 32) | v.lo;
}

/// Rotate a hi/lo lane left by n. This is the operation the custom paired
/// instructions implement in hardware: concatenate, rotate 64-bit, split.
/// In software on a 32-bit datapath it costs shifts+ORs across both words.
[[nodiscard]] constexpr HiLo rotl_hilo(HiLo v, unsigned n) noexcept {
  const u64 x = join_hilo(v);
  const unsigned r = n % 64u;
  const u64 y = r == 0 ? x : (x << r) | (x >> (64u - r));
  return split_hilo(y);
}

/// Count of 32-bit shift/or operations a software hi/lo rotation by n costs
/// on a plain RV32 datapath (for the ablation bench's operation model).
[[nodiscard]] constexpr unsigned hilo_rot_op_count(unsigned n) noexcept {
  const unsigned r = n % 64u;
  if (r == 0) return 0;
  if (r % 32u == 0) return 0;       // pure word swap
  return 8;                         // 4 shifts + 2 ors per half-pair... see bench
}

/// Count of 32-bit rotate operations an interleaved rotation by n costs.
[[nodiscard]] constexpr unsigned interleaved_rot_op_count(unsigned n) noexcept {
  const unsigned r = n % 64u;
  if (r == 0) return 0;
  return 2;                         // one 32-bit rotation per half
}

}  // namespace kvx::keccak
