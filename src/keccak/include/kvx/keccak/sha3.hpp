// FIPS 202 hash and extendable-output functions built on the sponge.
//
// One-shot helpers plus incremental hasher/XOF classes. All six functions of
// the SHA-3 family are provided: SHA3-224/256/384/512, SHAKE128, SHAKE256.
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "kvx/keccak/sponge.hpp"

namespace kvx::keccak {

/// The six FIPS 202 functions.
enum class Sha3Function {
  kSha3_224,
  kSha3_256,
  kSha3_384,
  kSha3_512,
  kShake128,
  kShake256,
};

/// Sponge rate in bytes for a function (r = 200 − 2·security/8).
[[nodiscard]] constexpr usize rate_bytes(Sha3Function f) noexcept {
  switch (f) {
    case Sha3Function::kSha3_224: return 144;
    case Sha3Function::kSha3_256: return 136;
    case Sha3Function::kSha3_384: return 104;
    case Sha3Function::kSha3_512: return 72;
    case Sha3Function::kShake128: return 168;
    case Sha3Function::kShake256: return 136;
  }
  return 0;
}

/// Fixed digest size in bytes (0 for the XOFs).
[[nodiscard]] constexpr usize digest_bytes(Sha3Function f) noexcept {
  switch (f) {
    case Sha3Function::kSha3_224: return 28;
    case Sha3Function::kSha3_256: return 32;
    case Sha3Function::kSha3_384: return 48;
    case Sha3Function::kSha3_512: return 64;
    case Sha3Function::kShake128:
    case Sha3Function::kShake256: return 0;
  }
  return 0;
}

/// Human-readable name ("SHA3-256", "SHAKE128", ...).
[[nodiscard]] std::string_view name(Sha3Function f) noexcept;

// --- One-shot hashing -------------------------------------------------------

[[nodiscard]] std::array<u8, 28> sha3_224(std::span<const u8> msg);
[[nodiscard]] std::array<u8, 32> sha3_256(std::span<const u8> msg);
[[nodiscard]] std::array<u8, 48> sha3_384(std::span<const u8> msg);
[[nodiscard]] std::array<u8, 64> sha3_512(std::span<const u8> msg);
[[nodiscard]] std::vector<u8> shake128(std::span<const u8> msg, usize out_len);
[[nodiscard]] std::vector<u8> shake256(std::span<const u8> msg, usize out_len);

/// Generic one-shot: for the fixed functions `out_len` must equal
/// digest_bytes(f); for the XOFs any `out_len` is allowed.
[[nodiscard]] std::vector<u8> hash(Sha3Function f, std::span<const u8> msg,
                                   usize out_len);

// --- Incremental API --------------------------------------------------------

/// Incremental hasher for the fixed-output functions.
class Hasher {
 public:
  explicit Hasher(Sha3Function f);

  Hasher& update(std::span<const u8> data);
  Hasher& update(std::string_view text);

  /// Finalize and return the digest. The hasher resets for reuse.
  [[nodiscard]] std::vector<u8> digest();

  [[nodiscard]] Sha3Function function() const noexcept { return func_; }

 private:
  Sha3Function func_;
  Sponge sponge_;
};

/// Incremental XOF (SHAKE128/256): absorb, then squeeze any amount, repeatedly.
class Xof {
 public:
  explicit Xof(Sha3Function f);

  /// Construct with a custom permutation backend (e.g. the simulated
  /// accelerator) — the HW/SW co-design composition point.
  Xof(Sha3Function f, Sponge::Permutation permutation);

  Xof& absorb(std::span<const u8> data);
  Xof& absorb(std::string_view text);
  void squeeze(std::span<u8> out);
  [[nodiscard]] std::vector<u8> squeeze(usize n);
  void reset();

  [[nodiscard]] usize permutation_count() const noexcept {
    return sponge_.permutation_count();
  }

 private:
  Sponge sponge_;
};

}  // namespace kvx::keccak
