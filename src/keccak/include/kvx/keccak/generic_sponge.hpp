// Sponge construction over any Keccak-p[b, nr] member — the lightweight
// instances (b = 200/400/800) that the IoT-class related work (OASIP/DASIP,
// paper §2.3) targets on constrained cores, alongside the full b = 1600.
//
// Header-only template; the b = 1600 production path remains the
// non-template `Sponge` (kvx/keccak/sponge.hpp), which this class matches
// bit-for-bit at equal parameters (tested).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "kvx/common/error.hpp"
#include "kvx/keccak/keccak_p.hpp"

namespace kvx::keccak {

/// Sponge over KeccakP<Lane> (state of 25 lanes, 25·sizeof(Lane) bytes).
template <typename P>
class GenericSponge {
 public:
  static constexpr usize kStateBytes = 25 * sizeof(typename P::StateArray::value_type);

  /// `rate_bytes` in (0, state bytes); `domain` is the suffix byte XORed at
  /// the pad position; `rounds` defaults to the member's full count.
  GenericSponge(usize rate_bytes, u8 domain,
                unsigned rounds = P::kDefaultRounds)
      : rate_(rate_bytes), domain_(domain), rounds_(rounds) {
    KVX_CHECK_MSG(rate_ > 0 && rate_ < kStateBytes,
                  "generic sponge rate out of range");
    KVX_CHECK_MSG(rounds_ >= 1 && rounds_ <= P::kDefaultRounds,
                  "round count out of range");
  }

  void absorb(std::span<const u8> data) {
    KVX_CHECK_MSG(!squeezing_, "absorb after squeeze started");
    while (!data.empty()) {
      const usize take = std::min(data.size(), rate_ - offset_);
      for (usize i = 0; i < take; ++i) xor_byte(offset_ + i, data[i]);
      offset_ += take;
      data = data.subspan(take);
      if (offset_ == rate_) {
        P::permute(state_, rounds_);
        offset_ = 0;
      }
    }
  }

  void squeeze(std::span<u8> out) {
    if (!squeezing_) {
      xor_byte(offset_, domain_);
      xor_byte(rate_ - 1, 0x80);
      P::permute(state_, rounds_);
      squeezing_ = true;
      offset_ = 0;
    }
    while (!out.empty()) {
      if (offset_ == rate_) {
        P::permute(state_, rounds_);
        offset_ = 0;
      }
      const usize take = std::min(out.size(), rate_ - offset_);
      for (usize i = 0; i < take; ++i) out[i] = byte_at(offset_ + i);
      offset_ += take;
      out = out.subspan(take);
    }
  }

  [[nodiscard]] std::vector<u8> squeeze(usize n) {
    std::vector<u8> out(n);
    squeeze(out);
    return out;
  }

 private:
  using Lane = typename P::StateArray::value_type;
  static constexpr usize kLaneBytes = sizeof(Lane);

  void xor_byte(usize pos, u8 v) {
    state_[pos / kLaneBytes] ^=
        static_cast<Lane>(static_cast<Lane>(v)
                          << (8 * (pos % kLaneBytes)));
  }

  [[nodiscard]] u8 byte_at(usize pos) const {
    return static_cast<u8>(state_[pos / kLaneBytes] >>
                           (8 * (pos % kLaneBytes)));
  }

  typename P::StateArray state_{};
  usize rate_;
  u8 domain_;
  unsigned rounds_;
  usize offset_ = 0;
  bool squeezing_ = false;
};

/// Lightweight hash over Keccak-p[800, 22] (e.g. rate 68 = "Keccak[c=256]
/// at b=800" class parameters), one-shot helper.
[[nodiscard]] inline std::vector<u8> lightweight_hash800(
    std::span<const u8> msg, usize out_len, usize rate_bytes = 68) {
  GenericSponge<KeccakP800> sponge(rate_bytes, 0x1F);
  sponge.absorb(msg);
  return sponge.squeeze(out_len);
}

/// Tiny hash over Keccak-p[200, 18] (8-bit lanes, smart-card class).
[[nodiscard]] inline std::vector<u8> lightweight_hash200(
    std::span<const u8> msg, usize out_len, usize rate_bytes = 9) {
  GenericSponge<KeccakP200> sponge(rate_bytes, 0x1F);
  sponge.absorb(msg);
  return sponge.squeeze(out_len);
}

}  // namespace kvx::keccak
