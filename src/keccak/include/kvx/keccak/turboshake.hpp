// TurboSHAKE — the 12-round reduced Keccak XOF (Keccak-p[1600, 12] sponge),
// standardized in the KangarooTwelve/TurboSHAKE line of work.
//
// TurboSHAKE128/256 use the SHAKE rates (168/136 bytes) with the
// permutation reduced to the last 12 rounds of Keccak-f[1600] and a
// caller-chosen domain-separation byte D ∈ [0x01, 0x7F]. Halving the rounds
// doubles throughput; on the paper's accelerator the same assembly programs
// apply with rounds = 12 and first_round = 12 (see ProgramOptions), making
// this the natural "cheap XOF" consumer of the custom extensions.
#pragma once

#include <span>
#include <vector>

#include "kvx/keccak/sponge.hpp"

namespace kvx::keccak {

/// The 12-round permutation (rounds 12..23 of Keccak-f[1600]).
void permute_12(State& s) noexcept;

/// TurboSHAKE128(M, D, L). D must be in [0x01, 0x7F] (default 0x1F).
[[nodiscard]] std::vector<u8> turboshake128(std::span<const u8> msg,
                                            usize out_len, u8 domain = 0x1F);

/// TurboSHAKE256(M, D, L).
[[nodiscard]] std::vector<u8> turboshake256(std::span<const u8> msg,
                                            usize out_len, u8 domain = 0x1F);

/// Incremental TurboSHAKE XOF.
class TurboShake {
 public:
  /// `security_bits` is 128 or 256; `domain` in [0x01, 0x7F].
  TurboShake(unsigned security_bits, u8 domain = 0x1F);

  TurboShake& absorb(std::span<const u8> data);
  void squeeze(std::span<u8> out);
  [[nodiscard]] std::vector<u8> squeeze(usize n);
  void reset();

 private:
  Sponge sponge_;
};

}  // namespace kvx::keccak
