// The Keccak duplex construction (Bertoni et al.): interleaved
// absorb/squeeze calls over one permutation state — the primitive behind
// authenticated encryption (Ketje/Keyak-style) and stateful PRNGs.
//
// Each duplexing(σ, ℓ) call pads σ (pad10*1) into one rate block, XORs it
// into the state, permutes once, and returns the first ℓ ≤ rate bytes of
// the new state. Security reduces to the sponge via the duplexing lemma.
#pragma once

#include <span>
#include <vector>

#include "kvx/keccak/sponge.hpp"

namespace kvx::keccak {

class Duplex {
 public:
  using Permutation = Sponge::Permutation;

  /// `rate_bytes` in (1, 200); input per call is limited to rate − 1 bytes
  /// (one byte is reserved for the pad10*1 framing).
  explicit Duplex(usize rate_bytes);
  Duplex(usize rate_bytes, Permutation f);

  [[nodiscard]] usize rate_bytes() const noexcept { return rate_; }
  [[nodiscard]] usize max_input_bytes() const noexcept { return rate_ - 1; }

  /// One duplexing call. `sigma.size()` ≤ max_input_bytes(),
  /// `out_len` ≤ rate_bytes().
  [[nodiscard]] std::vector<u8> duplexing(std::span<const u8> sigma,
                                          usize out_len);

  /// Reset to the all-zero state.
  void reset();

  [[nodiscard]] usize permutation_count() const noexcept { return count_; }

 private:
  State state_;
  Permutation f_;
  usize rate_;
  usize count_ = 0;
};

}  // namespace kvx::keccak
