// Instruction set definition for the KVX SIMD processor.
//
// Three instruction groups, mirroring the paper's processor:
//  * the RV32IM base ISA executed by the Ibex-like scalar core;
//  * a subset of the RISC-V vector extension v1.0 (configuration-setting,
//    vector loads/stores, vector integer arithmetic);
//  * the ten custom Keccak vector instructions of the paper (§3.3),
//    placed in the custom-1 opcode space (0101011).
//
// The X-macro table below is the single source of truth: the encoder,
// decoder, disassembler, assembler and simulator all derive their dispatch
// from it, so the groups cannot drift apart.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "kvx/common/types.hpp"

namespace kvx::isa {

/// Instruction encoding format. Determines which fields of `Instruction`
/// are meaningful and how encode/decode pack them.
enum class Format : u8 {
  kR,         ///< register-register (funct7 | rs2 | rs1 | funct3 | rd)
  kI,         ///< 12-bit signed immediate (loads, ALU-imm, jalr)
  kIShift,    ///< shift-immediate (funct7 | shamt | rs1 | funct3 | rd)
  kS,         ///< store
  kB,         ///< branch
  kU,         ///< upper immediate (lui/auipc)
  kJ,         ///< jal
  kSystem,    ///< ecall/ebreak (imm distinguishes)
  kCsr,       ///< csrrw/csrrs/csrrc — imm = csr address, rs1 = source reg
  kCsrI,      ///< csrrwi/... — imm = csr address, rs1 field = 5-bit uimm
  kVSetVLI,   ///< vsetvli rd, rs1, vtypei
  kVArith,    ///< OP-V vector arithmetic (operand kind from the table)
  kVLoad,     ///< vector load (unit / strided / indexed from `mop`)
  kVStore,    ///< vector store
  kVCustom,   ///< custom-1 Keccak vector instruction
};

/// Operand flavour of a vector arithmetic/custom instruction.
enum class VOperands : u8 {
  kNone,  ///< not a vector-arith instruction
  kVV,    ///< vector-vector
  kVX,    ///< vector-scalar
  kVI,    ///< vector-immediate
};

/// Vector memory addressing mode (RVV `mop` field).
enum class VMop : u8 {
  kUnit = 0b00,
  kIndexed = 0b01,   ///< indexed-unordered
  kStrided = 0b10,
};

// X(name, mnemonic, format, voperands, major, funct3, funct7_or_funct6, aux)
//   major  : 7-bit major opcode
//   funct3 : 3-bit minor opcode (or RVV width field for loads/stores)
//   funct7 : funct7 (scalar R / shift), funct6 (vector), or 0
//   aux    : format-specific (kSystem: imm12; kVLoad/kVStore: mop;
//            element width in bits for vector memory ops is derived from
//            funct3)
#define KVX_OPCODE_LIST(X)                                                      \
  /* ---- RV32I ---- */                                                         \
  X(kLui, "lui", kU, kNone, 0b0110111, 0, 0, 0)                                 \
  X(kAuipc, "auipc", kU, kNone, 0b0010111, 0, 0, 0)                             \
  X(kJal, "jal", kJ, kNone, 0b1101111, 0, 0, 0)                                 \
  X(kJalr, "jalr", kI, kNone, 0b1100111, 0b000, 0, 0)                           \
  X(kBeq, "beq", kB, kNone, 0b1100011, 0b000, 0, 0)                             \
  X(kBne, "bne", kB, kNone, 0b1100011, 0b001, 0, 0)                             \
  X(kBlt, "blt", kB, kNone, 0b1100011, 0b100, 0, 0)                             \
  X(kBge, "bge", kB, kNone, 0b1100011, 0b101, 0, 0)                             \
  X(kBltu, "bltu", kB, kNone, 0b1100011, 0b110, 0, 0)                           \
  X(kBgeu, "bgeu", kB, kNone, 0b1100011, 0b111, 0, 0)                           \
  X(kLb, "lb", kI, kNone, 0b0000011, 0b000, 0, 0)                               \
  X(kLh, "lh", kI, kNone, 0b0000011, 0b001, 0, 0)                               \
  X(kLw, "lw", kI, kNone, 0b0000011, 0b010, 0, 0)                               \
  X(kLbu, "lbu", kI, kNone, 0b0000011, 0b100, 0, 0)                             \
  X(kLhu, "lhu", kI, kNone, 0b0000011, 0b101, 0, 0)                             \
  X(kSb, "sb", kS, kNone, 0b0100011, 0b000, 0, 0)                               \
  X(kSh, "sh", kS, kNone, 0b0100011, 0b001, 0, 0)                               \
  X(kSw, "sw", kS, kNone, 0b0100011, 0b010, 0, 0)                               \
  X(kAddi, "addi", kI, kNone, 0b0010011, 0b000, 0, 0)                           \
  X(kSlti, "slti", kI, kNone, 0b0010011, 0b010, 0, 0)                           \
  X(kSltiu, "sltiu", kI, kNone, 0b0010011, 0b011, 0, 0)                         \
  X(kXori, "xori", kI, kNone, 0b0010011, 0b100, 0, 0)                           \
  X(kOri, "ori", kI, kNone, 0b0010011, 0b110, 0, 0)                             \
  X(kAndi, "andi", kI, kNone, 0b0010011, 0b111, 0, 0)                           \
  X(kSlli, "slli", kIShift, kNone, 0b0010011, 0b001, 0b0000000, 0)              \
  X(kSrli, "srli", kIShift, kNone, 0b0010011, 0b101, 0b0000000, 0)              \
  X(kSrai, "srai", kIShift, kNone, 0b0010011, 0b101, 0b0100000, 0)              \
  X(kAdd, "add", kR, kNone, 0b0110011, 0b000, 0b0000000, 0)                     \
  X(kSub, "sub", kR, kNone, 0b0110011, 0b000, 0b0100000, 0)                     \
  X(kSll, "sll", kR, kNone, 0b0110011, 0b001, 0b0000000, 0)                     \
  X(kSlt, "slt", kR, kNone, 0b0110011, 0b010, 0b0000000, 0)                     \
  X(kSltu, "sltu", kR, kNone, 0b0110011, 0b011, 0b0000000, 0)                   \
  X(kXor, "xor", kR, kNone, 0b0110011, 0b100, 0b0000000, 0)                     \
  X(kSrl, "srl", kR, kNone, 0b0110011, 0b101, 0b0000000, 0)                     \
  X(kSra, "sra", kR, kNone, 0b0110011, 0b101, 0b0100000, 0)                     \
  X(kOr, "or", kR, kNone, 0b0110011, 0b110, 0b0000000, 0)                       \
  X(kAnd, "and", kR, kNone, 0b0110011, 0b111, 0b0000000, 0)                     \
  X(kFence, "fence", kI, kNone, 0b0001111, 0b000, 0, 0)                         \
  X(kEcall, "ecall", kSystem, kNone, 0b1110011, 0b000, 0, 0)                    \
  X(kEbreak, "ebreak", kSystem, kNone, 0b1110011, 0b000, 0, 1)                  \
  X(kCsrrw, "csrrw", kCsr, kNone, 0b1110011, 0b001, 0, 0)                       \
  X(kCsrrs, "csrrs", kCsr, kNone, 0b1110011, 0b010, 0, 0)                       \
  X(kCsrrc, "csrrc", kCsr, kNone, 0b1110011, 0b011, 0, 0)                       \
  X(kCsrrwi, "csrrwi", kCsrI, kNone, 0b1110011, 0b101, 0, 0)                    \
  X(kCsrrsi, "csrrsi", kCsrI, kNone, 0b1110011, 0b110, 0, 0)                    \
  X(kCsrrci, "csrrci", kCsrI, kNone, 0b1110011, 0b111, 0, 0)                    \
  /* ---- RV32 Zbb subset (rotate + logic-with-negate; used by the           \
     bit-interleaved scalar Keccak baseline) ---- */                           \
  X(kRol, "rol", kR, kNone, 0b0110011, 0b001, 0b0110000, 0)                     \
  X(kRor, "ror", kR, kNone, 0b0110011, 0b101, 0b0110000, 0)                     \
  X(kRori, "rori", kIShift, kNone, 0b0010011, 0b101, 0b0110000, 0)              \
  X(kAndn, "andn", kR, kNone, 0b0110011, 0b111, 0b0100000, 0)                   \
  X(kOrn, "orn", kR, kNone, 0b0110011, 0b110, 0b0100000, 0)                     \
  X(kXnor, "xnor", kR, kNone, 0b0110011, 0b100, 0b0100000, 0)                   \
  /* ---- RV32M ---- */                                                         \
  X(kMul, "mul", kR, kNone, 0b0110011, 0b000, 0b0000001, 0)                     \
  X(kMulh, "mulh", kR, kNone, 0b0110011, 0b001, 0b0000001, 0)                   \
  X(kMulhsu, "mulhsu", kR, kNone, 0b0110011, 0b010, 0b0000001, 0)               \
  X(kMulhu, "mulhu", kR, kNone, 0b0110011, 0b011, 0b0000001, 0)                 \
  X(kDiv, "div", kR, kNone, 0b0110011, 0b100, 0b0000001, 0)                     \
  X(kDivu, "divu", kR, kNone, 0b0110011, 0b101, 0b0000001, 0)                   \
  X(kRem, "rem", kR, kNone, 0b0110011, 0b110, 0b0000001, 0)                     \
  X(kRemu, "remu", kR, kNone, 0b0110011, 0b111, 0b0000001, 0)                   \
  /* ---- RVV 1.0 subset: configuration ---- */                                 \
  X(kVsetvli, "vsetvli", kVSetVLI, kNone, 0b1010111, 0b111, 0, 0)               \
  /* ---- RVV subset: unit-stride loads/stores ---- */                          \
  X(kVle8, "vle8.v", kVLoad, kNone, 0b0000111, 0b000, 0, 0b00)                  \
  X(kVle16, "vle16.v", kVLoad, kNone, 0b0000111, 0b101, 0, 0b00)                \
  X(kVle32, "vle32.v", kVLoad, kNone, 0b0000111, 0b110, 0, 0b00)                \
  X(kVle64, "vle64.v", kVLoad, kNone, 0b0000111, 0b111, 0, 0b00)                \
  X(kVse8, "vse8.v", kVStore, kNone, 0b0100111, 0b000, 0, 0b00)                 \
  X(kVse16, "vse16.v", kVStore, kNone, 0b0100111, 0b101, 0, 0b00)               \
  X(kVse32, "vse32.v", kVStore, kNone, 0b0100111, 0b110, 0, 0b00)               \
  X(kVse64, "vse64.v", kVStore, kNone, 0b0100111, 0b111, 0, 0b00)               \
  /* ---- RVV subset: strided ---- */                                           \
  X(kVlse32, "vlse32.v", kVLoad, kNone, 0b0000111, 0b110, 0, 0b10)              \
  X(kVlse64, "vlse64.v", kVLoad, kNone, 0b0000111, 0b111, 0, 0b10)              \
  X(kVsse32, "vsse32.v", kVStore, kNone, 0b0100111, 0b110, 0, 0b10)             \
  X(kVsse64, "vsse64.v", kVStore, kNone, 0b0100111, 0b111, 0, 0b10)             \
  /* ---- RVV subset: indexed (paper §3.2: hi/lo lane exchange) ---- */         \
  X(kVluxei32, "vluxei32.v", kVLoad, kNone, 0b0000111, 0b110, 0, 0b01)          \
  X(kVsuxei32, "vsuxei32.v", kVStore, kNone, 0b0100111, 0b110, 0, 0b01)         \
  /* ---- RVV subset: integer arithmetic ---- */                                \
  X(kVaddVV, "vadd.vv", kVArith, kVV, 0b1010111, 0b000, 0b000000, 0)            \
  X(kVaddVX, "vadd.vx", kVArith, kVX, 0b1010111, 0b100, 0b000000, 0)            \
  X(kVaddVI, "vadd.vi", kVArith, kVI, 0b1010111, 0b011, 0b000000, 0)            \
  X(kVsubVV, "vsub.vv", kVArith, kVV, 0b1010111, 0b000, 0b000010, 0)            \
  X(kVsubVX, "vsub.vx", kVArith, kVX, 0b1010111, 0b100, 0b000010, 0)            \
  X(kVandVV, "vand.vv", kVArith, kVV, 0b1010111, 0b000, 0b001001, 0)            \
  X(kVandVX, "vand.vx", kVArith, kVX, 0b1010111, 0b100, 0b001001, 0)            \
  X(kVandVI, "vand.vi", kVArith, kVI, 0b1010111, 0b011, 0b001001, 0)            \
  X(kVorVV, "vor.vv", kVArith, kVV, 0b1010111, 0b000, 0b001010, 0)              \
  X(kVorVX, "vor.vx", kVArith, kVX, 0b1010111, 0b100, 0b001010, 0)              \
  X(kVorVI, "vor.vi", kVArith, kVI, 0b1010111, 0b011, 0b001010, 0)              \
  X(kVxorVV, "vxor.vv", kVArith, kVV, 0b1010111, 0b000, 0b001011, 0)            \
  X(kVxorVX, "vxor.vx", kVArith, kVX, 0b1010111, 0b100, 0b001011, 0)            \
  X(kVxorVI, "vxor.vi", kVArith, kVI, 0b1010111, 0b011, 0b001011, 0)            \
  X(kVrgatherVV, "vrgather.vv", kVArith, kVV, 0b1010111, 0b000, 0b001100, 0)    \
  X(kVslideupVI, "vslideup.vi", kVArith, kVI, 0b1010111, 0b011, 0b001110, 0)    \
  X(kVslidedownVI, "vslidedown.vi", kVArith, kVI, 0b1010111, 0b011, 0b001111, 0)\
  X(kVmvVV, "vmv.v.v", kVArith, kVV, 0b1010111, 0b000, 0b010111, 1)             \
  X(kVmvVX, "vmv.v.x", kVArith, kVX, 0b1010111, 0b100, 0b010111, 1)             \
  X(kVmvVI, "vmv.v.i", kVArith, kVI, 0b1010111, 0b011, 0b010111, 1)             \
  X(kVsllVV, "vsll.vv", kVArith, kVV, 0b1010111, 0b000, 0b100101, 0)            \
  X(kVsllVX, "vsll.vx", kVArith, kVX, 0b1010111, 0b100, 0b100101, 0)            \
  X(kVsllVI, "vsll.vi", kVArith, kVI, 0b1010111, 0b011, 0b100101, 0)            \
  X(kVsrlVV, "vsrl.vv", kVArith, kVV, 0b1010111, 0b000, 0b101000, 0)            \
  X(kVsrlVX, "vsrl.vx", kVArith, kVX, 0b1010111, 0b100, 0b101000, 0)            \
  X(kVsrlVI, "vsrl.vi", kVArith, kVI, 0b1010111, 0b011, 0b101000, 0)            \
  X(kVminuVV, "vminu.vv", kVArith, kVV, 0b1010111, 0b000, 0b000100, 0)          \
  X(kVminuVX, "vminu.vx", kVArith, kVX, 0b1010111, 0b100, 0b000100, 0)          \
  X(kVminVV, "vmin.vv", kVArith, kVV, 0b1010111, 0b000, 0b000101, 0)            \
  X(kVminVX, "vmin.vx", kVArith, kVX, 0b1010111, 0b100, 0b000101, 0)            \
  X(kVmaxuVV, "vmaxu.vv", kVArith, kVV, 0b1010111, 0b000, 0b000110, 0)          \
  X(kVmaxuVX, "vmaxu.vx", kVArith, kVX, 0b1010111, 0b100, 0b000110, 0)          \
  X(kVmaxVV, "vmax.vv", kVArith, kVV, 0b1010111, 0b000, 0b000111, 0)            \
  X(kVmaxVX, "vmax.vx", kVArith, kVX, 0b1010111, 0b100, 0b000111, 0)            \
  /* mask-writing integer compares (vd is a mask register) */                   \
  X(kVmseqVV, "vmseq.vv", kVArith, kVV, 0b1010111, 0b000, 0b011000, 0)          \
  X(kVmseqVX, "vmseq.vx", kVArith, kVX, 0b1010111, 0b100, 0b011000, 0)          \
  X(kVmseqVI, "vmseq.vi", kVArith, kVI, 0b1010111, 0b011, 0b011000, 0)          \
  X(kVmsneVV, "vmsne.vv", kVArith, kVV, 0b1010111, 0b000, 0b011001, 0)          \
  X(kVmsneVX, "vmsne.vx", kVArith, kVX, 0b1010111, 0b100, 0b011001, 0)          \
  X(kVmsneVI, "vmsne.vi", kVArith, kVI, 0b1010111, 0b011, 0b011001, 0)          \
  X(kVmsltuVV, "vmsltu.vv", kVArith, kVV, 0b1010111, 0b000, 0b011010, 0)        \
  X(kVmsltuVX, "vmsltu.vx", kVArith, kVX, 0b1010111, 0b100, 0b011010, 0)        \
  X(kVmsltVV, "vmslt.vv", kVArith, kVV, 0b1010111, 0b000, 0b011011, 0)          \
  X(kVmsltVX, "vmslt.vx", kVArith, kVX, 0b1010111, 0b100, 0b011011, 0)          \
  /* vmerge shares funct6 with vmv; vm=0 selects the merge form (aux: 2) */     \
  X(kVmergeVVM, "vmerge.vvm", kVArith, kVV, 0b1010111, 0b000, 0b010111, 2)      \
  X(kVmergeVXM, "vmerge.vxm", kVArith, kVX, 0b1010111, 0b100, 0b010111, 2)      \
  X(kVmergeVIM, "vmerge.vim", kVArith, kVI, 0b1010111, 0b011, 0b010111, 2)      \
  /* single-width integer reductions (OPMVV, funct3 010) */                     \
  X(kVredsumVS, "vredsum.vs", kVArith, kVV, 0b1010111, 0b010, 0b000000, 0)      \
  X(kVredandVS, "vredand.vs", kVArith, kVV, 0b1010111, 0b010, 0b000001, 0)      \
  X(kVredorVS, "vredor.vs", kVArith, kVV, 0b1010111, 0b010, 0b000010, 0)        \
  X(kVredxorVS, "vredxor.vs", kVArith, kVV, 0b1010111, 0b010, 0b000011, 0)      \
  /* ---- The ten custom Keccak vector instructions (paper §3.3) ---- */        \
  X(kVslidedownmVI, "vslidedownm.vi", kVCustom, kVI, 0b0101011, 0b011, 0b000001, 0) \
  X(kVslideupmVI, "vslideupm.vi", kVCustom, kVI, 0b0101011, 0b011, 0b000010, 0) \
  X(kVrotupVI, "vrotup.vi", kVCustom, kVI, 0b0101011, 0b011, 0b000011, 0)       \
  X(kV32lrotupVV, "v32lrotup.vv", kVCustom, kVV, 0b0101011, 0b000, 0b000100, 0) \
  X(kV32hrotupVV, "v32hrotup.vv", kVCustom, kVV, 0b0101011, 0b000, 0b000101, 0) \
  X(kV64rhoVI, "v64rho.vi", kVCustom, kVI, 0b0101011, 0b011, 0b000110, 0)       \
  X(kV32lrhoVV, "v32lrho.vv", kVCustom, kVV, 0b0101011, 0b000, 0b000111, 0)     \
  X(kV32hrhoVV, "v32hrho.vv", kVCustom, kVV, 0b0101011, 0b000, 0b001000, 0)     \
  X(kVpiVI, "vpi.vi", kVCustom, kVI, 0b0101011, 0b011, 0b001001, 0)             \
  X(kViotaVX, "viota.vx", kVCustom, kVX, 0b0101011, 0b100, 0b001010, 0)         \
  /* ---- Fused-instruction extension (paper §5 future work: "increase the    \
     granularity / combine adjacent operations"). NOT part of the paper's     \
     ten instructions; provided for the ablation_fusion study. ---- */         \
  X(kVthetacVV, "vthetac.vv", kVCustom, kVV, 0b0101011, 0b000, 0b010001, 0)     \
  X(kVrhopiVI, "vrhopi.vi", kVCustom, kVI, 0b0101011, 0b011, 0b010010, 0)       \
  X(kVchiVV, "vchi.vv", kVCustom, kVV, 0b0101011, 0b000, 0b010011, 0)

/// Every instruction understood by the KVX toolchain and simulator.
enum class Opcode : u16 {
#define KVX_X(name, ...) name,
  KVX_OPCODE_LIST(KVX_X)
#undef KVX_X
      kInvalid,
};

/// Per-opcode static metadata (from the X-macro table).
struct OpcodeInfo {
  Opcode op;
  std::string_view mnemonic;
  Format format;
  VOperands voperands;
  u8 major;    ///< 7-bit major opcode
  u8 funct3;   ///< funct3 (vector memory: RVV width code)
  u8 funct7;   ///< funct7 / funct6
  u8 aux;      ///< kSystem: imm12; vector memory: mop
};

/// Metadata for `op`. `op` must not be kInvalid.
[[nodiscard]] const OpcodeInfo& info(Opcode op) noexcept;

/// Number of defined opcodes.
[[nodiscard]] usize opcode_count() noexcept;

/// All opcodes, in table order (for parameterized tests).
[[nodiscard]] std::span<const OpcodeInfo> all_opcodes() noexcept;

/// Mnemonic for `op` ("vxor.vv", "addi", ...).
[[nodiscard]] std::string_view mnemonic(Opcode op) noexcept;

/// True for the ten paper-specific custom instructions.
[[nodiscard]] constexpr bool is_custom(Opcode op) noexcept {
  switch (op) {
    case Opcode::kVslidedownmVI:
    case Opcode::kVslideupmVI:
    case Opcode::kVrotupVI:
    case Opcode::kV32lrotupVV:
    case Opcode::kV32hrotupVV:
    case Opcode::kV64rhoVI:
    case Opcode::kV32lrhoVV:
    case Opcode::kV32hrhoVV:
    case Opcode::kVpiVI:
    case Opcode::kViotaVX:
      return true;
    default:
      return false;
  }
}

/// True for the fused-operation extension instructions (our implementation
/// of the paper's §5 future-work direction; not among the original ten).
[[nodiscard]] constexpr bool is_fused_extension(Opcode op) noexcept {
  switch (op) {
    case Opcode::kVthetacVV:
    case Opcode::kVrhopiVI:
    case Opcode::kVchiVV:
      return true;
    default:
      return false;
  }
}

/// True for any vector instruction (config, memory, arithmetic, custom).
[[nodiscard]] bool is_vector(Opcode op) noexcept;

/// Element width in bits for a vector memory opcode (8/16/32/64), 0 otherwise.
[[nodiscard]] unsigned vmem_width_bits(Opcode op) noexcept;

}  // namespace kvx::isa
