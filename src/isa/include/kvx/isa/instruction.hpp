// Decoded instruction representation and the RVV vtype helper.
#pragma once

#include "kvx/common/types.hpp"
#include "kvx/isa/opcode.hpp"

namespace kvx::isa {

/// RVV vtype: selected element width, register-group multiplier, tail/mask
/// policies. Only integer LMUL ≥ 1 is supported (the paper uses 1 and 8).
struct VType {
  unsigned sew = 32;   ///< selected element width in bits (8/16/32/64)
  unsigned lmul = 1;   ///< register group multiplier (1/2/4/8)
  bool tail_agnostic = false;   ///< ta (false = tail-undisturbed, "tu")
  bool mask_agnostic = false;   ///< ma (false = mask-undisturbed, "mu")

  /// Pack into the 8-bit vtype encoding (vlmul[2:0] | vsew[5:3] | vta | vma).
  [[nodiscard]] u32 to_bits() const;

  /// Decode from vtype bits. Throws DecodeError for reserved encodings.
  [[nodiscard]] static VType from_bits(u32 bits);

  /// Render as assembly operands: "e64,m8,tu,mu".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const VType&, const VType&) noexcept = default;
};

/// A decoded (or to-be-encoded) instruction.
///
/// Field usage by format:
///   scalar R       : rd, rs1, rs2
///   scalar I/shift : rd, rs1, imm
///   S              : rs1 (base), rs2 (source), imm
///   B              : rs1, rs2, imm (byte offset)
///   U/J            : rd, imm
///   kCsr/kCsrI     : rd, rs1 (reg or 5-bit uimm), imm = CSR address
///   kVSetVLI       : rd, rs1, vtype
///   kVArith/kVCustom: rd = vd, rs2 = vs2, then vs1 (VV) / rs1 (VX) /
///                    imm (VI); vm = !masked
///   kVLoad/kVStore : rd = vd/vs3, rs1 = base, rs2 = stride reg (strided)
///                    or index vector (indexed); vm
struct Instruction {
  Opcode op = Opcode::kInvalid;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;
  bool vm = true;  ///< vector mask bit: true = unmasked
  VType vtype{};   ///< only meaningful for kVsetvli

  friend bool operator==(const Instruction&, const Instruction&) noexcept = default;
};

/// ABI name of scalar register `x` ("zero", "ra", "sp", "s1", "a0", ...).
[[nodiscard]] std::string_view xreg_name(unsigned x) noexcept;

/// Parse a scalar register name ("x5", "t0", "s1", ...). Returns -1 if invalid.
[[nodiscard]] int parse_xreg(std::string_view name) noexcept;

/// Parse a vector register name ("v0".."v31"). Returns -1 if invalid.
[[nodiscard]] int parse_vreg(std::string_view name) noexcept;

}  // namespace kvx::isa
