// Binary encoding and decoding of KVX instructions (32-bit words).
#pragma once

#include "kvx/isa/instruction.hpp"

namespace kvx::isa {

/// Encode a decoded instruction into its 32-bit machine word.
/// Throws kvx::Error if an operand is out of range for the format
/// (e.g. an immediate that does not fit, a misaligned branch offset).
[[nodiscard]] u32 encode(const Instruction& inst);

/// Decode a 32-bit machine word. Throws kvx::DecodeError for words that do
/// not correspond to any supported instruction.
[[nodiscard]] Instruction decode(u32 word);

/// Decode, returning kInvalid instead of throwing (for disassembler sweeps).
[[nodiscard]] Instruction try_decode(u32 word) noexcept;

}  // namespace kvx::isa
