// Disassembler: render decoded instructions as assembly text that the
// kvx_asm assembler accepts back (round-trip property, tested).
#pragma once

#include <string>

#include "kvx/isa/instruction.hpp"

namespace kvx::isa {

/// Disassemble one instruction. `pc` is used to render branch/jump targets
/// as absolute addresses in a trailing comment.
[[nodiscard]] std::string disassemble(const Instruction& inst);

/// Disassemble a raw word ("<invalid 0x????????>" if undecodable).
[[nodiscard]] std::string disassemble_word(u32 word);

}  // namespace kvx::isa
