#include "kvx/isa/opcode.hpp"

#include <array>
#include <span>

#include "kvx/common/error.hpp"

namespace kvx::isa {
namespace {

constexpr std::array kTable = {
#define KVX_X(name, mnem, fmt, vops, major, f3, f7, aux)                \
  OpcodeInfo{Opcode::name, mnem, Format::fmt, VOperands::vops,          \
             static_cast<u8>(major), static_cast<u8>(f3),               \
             static_cast<u8>(f7), static_cast<u8>(aux)},
    KVX_OPCODE_LIST(KVX_X)
#undef KVX_X
};

}  // namespace

const OpcodeInfo& info(Opcode op) noexcept {
  const auto idx = static_cast<usize>(op);
  return kTable[idx < kTable.size() ? idx : 0];
}

usize opcode_count() noexcept { return kTable.size(); }

std::span<const OpcodeInfo> all_opcodes() noexcept { return kTable; }

std::string_view mnemonic(Opcode op) noexcept {
  return op == Opcode::kInvalid ? std::string_view("<invalid>")
                                : info(op).mnemonic;
}

bool is_vector(Opcode op) noexcept {
  switch (info(op).format) {
    case Format::kVSetVLI:
    case Format::kVArith:
    case Format::kVLoad:
    case Format::kVStore:
    case Format::kVCustom:
      return true;
    default:
      return false;
  }
}

unsigned vmem_width_bits(Opcode op) noexcept {
  const auto& i = info(op);
  if (i.format != Format::kVLoad && i.format != Format::kVStore) return 0;
  switch (i.funct3) {
    case 0b000: return 8;
    case 0b101: return 16;
    case 0b110: return 32;
    case 0b111: return 64;
    default: return 0;
  }
}

}  // namespace kvx::isa
