#include "kvx/isa/encoding.hpp"

#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::isa {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw Error(std::string("encode: ") + what);
}

u32 reg_field(u8 r) {
  require(r < 32, "register index out of range");
  return r;
}

/// True if this VI-form instruction interprets its 5-bit immediate as
/// unsigned (RVV shifts and slides; the custom modulo-slides and vrotup).
bool vi_imm_is_unsigned(Opcode op) {
  switch (op) {
    case Opcode::kVsllVI:
    case Opcode::kVsrlVI:
    case Opcode::kVslideupVI:
    case Opcode::kVslidedownVI:
    case Opcode::kVslidedownmVI:
    case Opcode::kVslideupmVI:
    case Opcode::kVrotupVI:
      return true;
    default:
      return false;
  }
}

u32 encode_vi_imm(Opcode op, i32 imm) {
  if (vi_imm_is_unsigned(op)) {
    require(imm >= 0 && imm < 32, "unsigned vector immediate out of range");
  } else {
    require(fits_signed(imm, 5), "signed vector immediate out of range");
  }
  return static_cast<u32>(imm) & 0x1Fu;
}

i32 decode_vi_imm(Opcode op, u32 field) {
  return vi_imm_is_unsigned(op) ? static_cast<i32>(field)
                                : sign_extend(field, 5);
}

u32 encode_varith_like(const Instruction& inst, const OpcodeInfo& i) {
  u32 w = i.major;
  w |= reg_field(inst.rd) << 7;
  w |= static_cast<u32>(i.funct3) << 12;
  switch (i.voperands) {
    case VOperands::kVV:
    case VOperands::kVX:
      w |= reg_field(inst.rs1) << 15;
      break;
    case VOperands::kVI:
      w |= encode_vi_imm(inst.op, inst.imm) << 15;
      break;
    case VOperands::kNone:
      KVX_CHECK_MSG(false, "vector arith without operand kind");
  }
  w |= reg_field(inst.rs2) << 20;
  w |= (inst.vm ? 1u : 0u) << 25;
  w |= static_cast<u32>(i.funct7) << 26;
  return w;
}

u32 encode_vmem(const Instruction& inst, const OpcodeInfo& i) {
  u32 w = i.major;
  w |= reg_field(inst.rd) << 7;  // vd / vs3
  w |= static_cast<u32>(i.funct3) << 12;
  w |= reg_field(inst.rs1) << 15;
  // Unit-stride ops put lumop=0 in the rs2 slot; strided/indexed put the
  // stride register / index vector there.
  const auto mop = static_cast<VMop>(i.aux);
  w |= (mop == VMop::kUnit ? 0u : reg_field(inst.rs2)) << 20;
  w |= (inst.vm ? 1u : 0u) << 25;
  w |= static_cast<u32>(i.aux) << 26;  // mop
  // nf[31:29] = 0, mew[28] = 0.
  return w;
}

}  // namespace

u32 encode(const Instruction& inst) {
  require(inst.op != Opcode::kInvalid, "cannot encode invalid opcode");
  const OpcodeInfo& i = info(inst.op);
  const u32 major = i.major;
  const u32 f3 = static_cast<u32>(i.funct3) << 12;

  switch (i.format) {
    case Format::kR:
      return major | (reg_field(inst.rd) << 7) | f3 |
             (reg_field(inst.rs1) << 15) | (reg_field(inst.rs2) << 20) |
             (static_cast<u32>(i.funct7) << 25);

    case Format::kI:
      require(fits_signed(inst.imm, 12), "I-immediate out of range");
      return major | (reg_field(inst.rd) << 7) | f3 |
             (reg_field(inst.rs1) << 15) |
             ((static_cast<u32>(inst.imm) & 0xFFFu) << 20);

    case Format::kIShift:
      require(inst.imm >= 0 && inst.imm < 32, "shift amount out of range");
      return major | (reg_field(inst.rd) << 7) | f3 |
             (reg_field(inst.rs1) << 15) |
             ((static_cast<u32>(inst.imm) & 0x1Fu) << 20) |
             (static_cast<u32>(i.funct7) << 25);

    case Format::kS: {
      require(fits_signed(inst.imm, 12), "S-immediate out of range");
      const u32 imm = static_cast<u32>(inst.imm);
      return major | ((imm & 0x1Fu) << 7) | f3 | (reg_field(inst.rs1) << 15) |
             (reg_field(inst.rs2) << 20) | (((imm >> 5) & 0x7Fu) << 25);
    }

    case Format::kB: {
      require(fits_signed(inst.imm, 13), "branch offset out of range");
      require((inst.imm & 1) == 0, "branch offset must be even");
      const u32 imm = static_cast<u32>(inst.imm);
      return major | (((imm >> 11) & 1u) << 7) | (((imm >> 1) & 0xFu) << 8) |
             f3 | (reg_field(inst.rs1) << 15) | (reg_field(inst.rs2) << 20) |
             (((imm >> 5) & 0x3Fu) << 25) | (((imm >> 12) & 1u) << 31);
    }

    case Format::kU:
      require(inst.imm >= 0 && static_cast<u32>(inst.imm) <= 0xFFFFFu,
              "U-immediate out of range (expect the raw 20-bit field)");
      return major | (reg_field(inst.rd) << 7) |
             (static_cast<u32>(inst.imm) << 12);

    case Format::kJ: {
      require(fits_signed(inst.imm, 21), "jump offset out of range");
      require((inst.imm & 1) == 0, "jump offset must be even");
      const u32 imm = static_cast<u32>(inst.imm);
      return major | (reg_field(inst.rd) << 7) | (((imm >> 12) & 0xFFu) << 12) |
             (((imm >> 11) & 1u) << 20) | (((imm >> 1) & 0x3FFu) << 21) |
             (((imm >> 20) & 1u) << 31);
    }

    case Format::kSystem:
      return major | f3 | (static_cast<u32>(i.aux) << 20);

    case Format::kCsr:
      require(inst.imm >= 0 && inst.imm < 4096, "CSR address out of range");
      return major | (reg_field(inst.rd) << 7) | f3 |
             (reg_field(inst.rs1) << 15) | (static_cast<u32>(inst.imm) << 20);

    case Format::kCsrI:
      require(inst.imm >= 0 && inst.imm < 4096, "CSR address out of range");
      require(inst.rs1 < 32, "CSR uimm5 out of range");
      return major | (reg_field(inst.rd) << 7) | f3 |
             (static_cast<u32>(inst.rs1) << 15) |
             (static_cast<u32>(inst.imm) << 20);

    case Format::kVSetVLI: {
      const u32 vtypei = inst.vtype.to_bits();
      require(vtypei < (1u << 11), "vtype immediate out of range");
      return major | (reg_field(inst.rd) << 7) | f3 |
             (reg_field(inst.rs1) << 15) | (vtypei << 20);
    }

    case Format::kVArith:
    case Format::kVCustom:
      return encode_varith_like(inst, i);

    case Format::kVLoad:
    case Format::kVStore:
      return encode_vmem(inst, i);
  }
  KVX_CHECK_MSG(false, "unhandled format");
  return 0;
}

namespace {

i32 decode_i_imm(u32 w) { return sign_extend(w >> 20, 12); }

i32 decode_s_imm(u32 w) {
  return sign_extend(((w >> 25) << 5) | ((w >> 7) & 0x1Fu), 12);
}

i32 decode_b_imm(u32 w) {
  const u32 imm = (((w >> 31) & 1u) << 12) | (((w >> 7) & 1u) << 11) |
                  (((w >> 25) & 0x3Fu) << 5) | (((w >> 8) & 0xFu) << 1);
  return sign_extend(imm, 13);
}

i32 decode_j_imm(u32 w) {
  const u32 imm = (((w >> 31) & 1u) << 20) | (((w >> 12) & 0xFFu) << 12) |
                  (((w >> 20) & 1u) << 11) | (((w >> 21) & 0x3FFu) << 1);
  return sign_extend(imm, 21);
}

/// Find the table entry matching a predicate; kInvalid info otherwise.
template <typename Pred>
const OpcodeInfo* find_op(Pred&& pred) {
  for (const OpcodeInfo& i : all_opcodes()) {
    if (pred(i)) return &i;
  }
  return nullptr;
}

Instruction decode_impl(u32 w) {
  Instruction inst;
  const u32 major = w & 0x7Fu;
  const u32 rd = (w >> 7) & 0x1Fu;
  const u32 f3 = (w >> 12) & 0x7u;
  const u32 rs1 = (w >> 15) & 0x1Fu;
  const u32 rs2 = (w >> 20) & 0x1Fu;
  const u32 f7 = (w >> 25) & 0x7Fu;
  const u32 f6 = (w >> 26) & 0x3Fu;
  const bool vm = ((w >> 25) & 1u) != 0;

  const auto set_regs = [&](const OpcodeInfo& i) {
    inst.op = i.op;
    inst.rd = static_cast<u8>(rd);
    inst.rs1 = static_cast<u8>(rs1);
    inst.rs2 = static_cast<u8>(rs2);
    // Zero the register fields a format does not use, so decode(encode(x))
    // is the identity on the meaningful fields.
    switch (i.format) {
      case Format::kI:
      case Format::kIShift:
      case Format::kCsr:
      case Format::kCsrI:
        inst.rs2 = 0;
        break;
      case Format::kS:
      case Format::kB:
        inst.rd = 0;
        break;
      case Format::kU:
      case Format::kJ:
        inst.rs1 = 0;
        inst.rs2 = 0;
        break;
      default:
        break;
    }
  };

  switch (major) {
    case 0b0110111:  // lui
    case 0b0010111: {  // auipc
      const auto* i = find_op([&](const OpcodeInfo& o) {
        return o.format == Format::kU && o.major == major;
      });
      KVX_CHECK(i != nullptr);
      set_regs(*i);
      inst.imm = static_cast<i32>(w >> 12);
      return inst;
    }
    case 0b1101111:  // jal
      inst.op = Opcode::kJal;
      inst.rd = static_cast<u8>(rd);
      inst.imm = decode_j_imm(w);
      return inst;
    case 0b1100111:  // jalr
      if (f3 != 0) break;
      inst.op = Opcode::kJalr;
      inst.rd = static_cast<u8>(rd);
      inst.rs1 = static_cast<u8>(rs1);
      inst.imm = decode_i_imm(w);
      return inst;
    case 0b1100011:  // branches
    case 0b0000011:  // loads
    case 0b0100011:  // stores
    case 0b0010011:  // ALU-imm
    case 0b0110011:  // R-type
    case 0b0001111: {  // fence
      const auto* i = find_op([&](const OpcodeInfo& o) {
        if (o.major != major || o.funct3 != f3) return false;
        if (o.format == Format::kR) return o.funct7 == f7;
        if (o.format == Format::kIShift) return o.funct7 == f7;
        return o.format == Format::kI || o.format == Format::kS ||
               o.format == Format::kB;
      });
      if (i == nullptr) break;
      set_regs(*i);
      switch (i->format) {
        case Format::kI: inst.imm = decode_i_imm(w); break;
        case Format::kIShift: inst.imm = static_cast<i32>(rs2); break;
        case Format::kS: inst.imm = decode_s_imm(w); break;
        case Format::kB: inst.imm = decode_b_imm(w); break;
        default: break;
      }
      return inst;
    }
    case 0b1110011: {  // system / csr
      if (f3 == 0) {
        const u32 imm12 = w >> 20;
        if (rd != 0 || rs1 != 0) break;
        if (imm12 == 0) { inst.op = Opcode::kEcall; return inst; }
        if (imm12 == 1) { inst.op = Opcode::kEbreak; return inst; }
        break;
      }
      const auto* i = find_op([&](const OpcodeInfo& o) {
        return o.major == major && o.funct3 == f3 &&
               (o.format == Format::kCsr || o.format == Format::kCsrI);
      });
      if (i == nullptr) break;
      set_regs(*i);
      inst.imm = static_cast<i32>(w >> 20);
      return inst;
    }
    case 0b1010111: {  // OP-V
      if (f3 == 0b111) {
        if ((w >> 31) != 0) break;  // vsetvl/vsetivli unsupported
        inst.op = Opcode::kVsetvli;
        inst.rd = static_cast<u8>(rd);
        inst.rs1 = static_cast<u8>(rs1);
        inst.vtype = VType::from_bits((w >> 20) & 0x7FFu);
        return inst;
      }
      [[fallthrough]];
    }
    case 0b0101011: {  // OP-V arith (fallthrough) or custom-1
      const auto* i = find_op([&](const OpcodeInfo& o) {
        if ((o.format != Format::kVArith && o.format != Format::kVCustom) ||
            o.major != major || o.funct3 != f3 || o.funct7 != f6) {
          return false;
        }
        // aux on kVArith disambiguates encodings that share funct6 and
        // differ only in vm (vmv.v.* when vm=1 vs vmerge.v*m when vm=0).
        if (o.format == Format::kVArith && o.aux != 0) {
          return (o.aux == 1) == vm;
        }
        return true;
      });
      if (i == nullptr) break;
      set_regs(*i);
      inst.vm = vm;
      if (i->voperands == VOperands::kVI) {
        inst.rs1 = 0;
        inst.imm = decode_vi_imm(i->op, rs1);
      }
      return inst;
    }
    case 0b0000111:    // vector loads
    case 0b0100111: {  // vector stores
      const u32 mop = (w >> 26) & 0x3u;
      const u32 mew = (w >> 28) & 1u;
      const u32 nf = (w >> 29) & 0x7u;
      if (mew != 0 || nf != 0) break;
      const auto* i = find_op([&](const OpcodeInfo& o) {
        return (o.format == Format::kVLoad || o.format == Format::kVStore) &&
               o.major == major && o.funct3 == f3 && o.aux == mop;
      });
      if (i == nullptr) break;
      set_regs(*i);
      inst.vm = vm;
      if (static_cast<VMop>(mop) == VMop::kUnit) inst.rs2 = 0;
      return inst;
    }
    default:
      break;
  }
  throw DecodeError(strfmt("unsupported instruction word 0x%08x", w));
}

}  // namespace

Instruction decode(u32 word) { return decode_impl(word); }

Instruction try_decode(u32 word) noexcept {
  try {
    return decode_impl(word);
  } catch (const Error&) {
    return Instruction{};
  }
}

}  // namespace kvx::isa
