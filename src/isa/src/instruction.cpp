#include "kvx/isa/instruction.hpp"

#include <array>
#include <charconv>
#include <string>

#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"

namespace kvx::isa {
namespace {

constexpr std::array<std::string_view, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

/// Map RVV vlmul code to multiplier; only integer multipliers supported.
unsigned lmul_from_code(u32 code) {
  switch (code) {
    case 0b000: return 1;
    case 0b001: return 2;
    case 0b010: return 4;
    case 0b011: return 8;
    default:
      throw DecodeError("fractional or reserved LMUL encoding");
  }
}

u32 lmul_to_code(unsigned lmul) {
  switch (lmul) {
    case 1: return 0b000;
    case 2: return 0b001;
    case 4: return 0b010;
    case 8: return 0b011;
    default:
      throw Error("unsupported LMUL (must be 1/2/4/8)");
  }
}

unsigned sew_from_code(u32 code) {
  switch (code) {
    case 0b000: return 8;
    case 0b001: return 16;
    case 0b010: return 32;
    case 0b011: return 64;
    default:
      throw DecodeError("reserved SEW encoding");
  }
}

u32 sew_to_code(unsigned sew) {
  switch (sew) {
    case 8: return 0b000;
    case 16: return 0b001;
    case 32: return 0b010;
    case 64: return 0b011;
    default:
      throw Error("unsupported SEW (must be 8/16/32/64)");
  }
}

}  // namespace

u32 VType::to_bits() const {
  return lmul_to_code(lmul) | (sew_to_code(sew) << 3) |
         (tail_agnostic ? 1u << 6 : 0u) | (mask_agnostic ? 1u << 7 : 0u);
}

VType VType::from_bits(u32 bits) {
  VType v;
  v.lmul = lmul_from_code(bits & 0b111);
  v.sew = sew_from_code((bits >> 3) & 0b111);
  v.tail_agnostic = (bits >> 6) & 1u;
  v.mask_agnostic = (bits >> 7) & 1u;
  return v;
}

std::string VType::to_string() const {
  return strfmt("e%u,m%u,%s,%s", sew, lmul, tail_agnostic ? "ta" : "tu",
                mask_agnostic ? "ma" : "mu");
}

std::string_view xreg_name(unsigned x) noexcept {
  return x < 32 ? kAbiNames[x] : std::string_view("x?");
}

int parse_xreg(std::string_view name) noexcept {
  for (unsigned i = 0; i < 32; ++i) {
    if (name == kAbiNames[i]) return static_cast<int>(i);
  }
  if (name == "fp") return 8;  // alias for s0
  if (name.size() >= 2 && name[0] == 'x') {
    unsigned n = 0;
    const auto* begin = name.data() + 1;
    const auto* end = name.data() + name.size();
    if (auto [p, ec] = std::from_chars(begin, end, n);
        ec == std::errc{} && p == end && n < 32) {
      return static_cast<int>(n);
    }
  }
  return -1;
}

int parse_vreg(std::string_view name) noexcept {
  if (name.size() >= 2 && name[0] == 'v') {
    unsigned n = 0;
    const auto* begin = name.data() + 1;
    const auto* end = name.data() + name.size();
    if (auto [p, ec] = std::from_chars(begin, end, n);
        ec == std::errc{} && p == end && n < 32) {
      return static_cast<int>(n);
    }
  }
  return -1;
}

}  // namespace kvx::isa
