#include "kvx/isa/disasm.hpp"

#include "kvx/common/strings.hpp"
#include "kvx/isa/encoding.hpp"

namespace kvx::isa {
namespace {

std::string x(unsigned r) { return std::string(xreg_name(r)); }
std::string v(unsigned r) { return strfmt("v%u", r); }

std::string vm_suffix(const Instruction& inst) {
  return inst.vm ? "" : ",v0.t";
}

bool is_merge_op(Opcode op) {
  return op == Opcode::kVmergeVVM || op == Opcode::kVmergeVXM ||
         op == Opcode::kVmergeVIM;
}

}  // namespace

std::string disassemble(const Instruction& inst) {
  if (inst.op == Opcode::kInvalid) return "<invalid>";
  const OpcodeInfo& i = info(inst.op);
  const std::string m(i.mnemonic);

  switch (i.format) {
    case Format::kR:
      return strfmt("%s %s,%s,%s", m.c_str(), x(inst.rd).c_str(),
                    x(inst.rs1).c_str(), x(inst.rs2).c_str());
    case Format::kI:
      if (inst.op == Opcode::kFence) return "fence";
      if (i.major == 0b0000011 || inst.op == Opcode::kJalr) {
        return strfmt("%s %s,%d(%s)", m.c_str(), x(inst.rd).c_str(), inst.imm,
                      x(inst.rs1).c_str());
      }
      return strfmt("%s %s,%s,%d", m.c_str(), x(inst.rd).c_str(),
                    x(inst.rs1).c_str(), inst.imm);
    case Format::kIShift:
      return strfmt("%s %s,%s,%d", m.c_str(), x(inst.rd).c_str(),
                    x(inst.rs1).c_str(), inst.imm);
    case Format::kS:
      return strfmt("%s %s,%d(%s)", m.c_str(), x(inst.rs2).c_str(), inst.imm,
                    x(inst.rs1).c_str());
    case Format::kB:
      return strfmt("%s %s,%s,%d", m.c_str(), x(inst.rs1).c_str(),
                    x(inst.rs2).c_str(), inst.imm);
    case Format::kU:
      return strfmt("%s %s,%d", m.c_str(), x(inst.rd).c_str(), inst.imm);
    case Format::kJ:
      return strfmt("%s %s,%d", m.c_str(), x(inst.rd).c_str(), inst.imm);
    case Format::kSystem:
      return m;
    case Format::kCsr:
      return strfmt("%s %s,%d,%s", m.c_str(), x(inst.rd).c_str(), inst.imm,
                    x(inst.rs1).c_str());
    case Format::kCsrI:
      return strfmt("%s %s,%d,%u", m.c_str(), x(inst.rd).c_str(), inst.imm,
                    inst.rs1);
    case Format::kVSetVLI:
      return strfmt("vsetvli %s,%s,%s", x(inst.rd).c_str(),
                    x(inst.rs1).c_str(), inst.vtype.to_string().c_str());
    case Format::kVArith:
    case Format::kVCustom:
      switch (i.voperands) {
        case VOperands::kVV:
          if (is_merge_op(inst.op)) {
            return strfmt("%s %s,%s,%s,v0", m.c_str(), v(inst.rd).c_str(),
                          v(inst.rs2).c_str(), v(inst.rs1).c_str());
          }
          if (inst.op == Opcode::kVmvVV) {
            return strfmt("vmv.v.v %s,%s", v(inst.rd).c_str(),
                          v(inst.rs1).c_str());
          }
          if (inst.op == Opcode::kVthetacVV || inst.op == Opcode::kVchiVV) {
            return strfmt("%s %s,%s", m.c_str(), v(inst.rd).c_str(),
                          v(inst.rs2).c_str());
          }
          return strfmt("%s %s,%s,%s%s", m.c_str(), v(inst.rd).c_str(),
                        v(inst.rs2).c_str(), v(inst.rs1).c_str(),
                        vm_suffix(inst).c_str());
        case VOperands::kVX:
          if (is_merge_op(inst.op)) {
            return strfmt("%s %s,%s,%s,v0", m.c_str(), v(inst.rd).c_str(),
                          v(inst.rs2).c_str(), x(inst.rs1).c_str());
          }
          if (inst.op == Opcode::kVmvVX) {
            return strfmt("vmv.v.x %s,%s", v(inst.rd).c_str(),
                          x(inst.rs1).c_str());
          }
          return strfmt("%s %s,%s,%s%s", m.c_str(), v(inst.rd).c_str(),
                        v(inst.rs2).c_str(), x(inst.rs1).c_str(),
                        vm_suffix(inst).c_str());
        case VOperands::kVI:
          if (is_merge_op(inst.op)) {
            return strfmt("%s %s,%s,%d,v0", m.c_str(), v(inst.rd).c_str(),
                          v(inst.rs2).c_str(), inst.imm);
          }
          if (inst.op == Opcode::kVmvVI) {
            return strfmt("vmv.v.i %s,%d", v(inst.rd).c_str(), inst.imm);
          }
          return strfmt("%s %s,%s,%d%s", m.c_str(), v(inst.rd).c_str(),
                        v(inst.rs2).c_str(), inst.imm,
                        vm_suffix(inst).c_str());
        case VOperands::kNone:
          break;
      }
      return m;
    case Format::kVLoad:
    case Format::kVStore: {
      const auto mop = static_cast<VMop>(i.aux);
      if (mop == VMop::kUnit) {
        return strfmt("%s %s,(%s)%s", m.c_str(), v(inst.rd).c_str(),
                      x(inst.rs1).c_str(), vm_suffix(inst).c_str());
      }
      if (mop == VMop::kStrided) {
        return strfmt("%s %s,(%s),%s%s", m.c_str(), v(inst.rd).c_str(),
                      x(inst.rs1).c_str(), x(inst.rs2).c_str(),
                      vm_suffix(inst).c_str());
      }
      return strfmt("%s %s,(%s),%s%s", m.c_str(), v(inst.rd).c_str(),
                    x(inst.rs1).c_str(), v(inst.rs2).c_str(),
                    vm_suffix(inst).c_str());
    }
  }
  return m;
}

std::string disassemble_word(u32 word) {
  const Instruction inst = try_decode(word);
  if (inst.op == Opcode::kInvalid) {
    return strfmt("<invalid 0x%08x>", word);
  }
  return disassemble(inst);
}

}  // namespace kvx::isa
