// Scalar (software-only) Keccak-f[1600] on the Ibex-like RV32IM core.
//
// This is our stand-in for the paper's "Ibex core (C-code)" baseline row
// (PQ-M4 Keccak compiled with the RISC-V GNU toolchain, which we do not
// have offline): a hand-generated RV32IM assembly implementation in the
// PQ-M4 style — 64-bit lanes as hi/lo 32-bit word pairs in memory, fully
// unrolled round body, rolled 24-round loop. Being hand-scheduled it is
// FASTER than the paper's compiled C (≈1.1k vs 2908 cycles/round), which
// makes every speedup we report against it conservative; benches print the
// paper's own constant alongside for reference.
#pragma once

#include <memory>
#include <string>

#include "kvx/keccak/state.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::baseline {

/// Lane representation of the scalar implementation (the §3.2 trade-off,
/// measured on the scalar core).
enum class Flavor {
  /// Plain hi/lo 32-bit word pairs, RV32IM only (the paper's baseline
  /// style): cross-word rotations cost shift/shift/or per half.
  kHiLo,
  /// Bit-interleaved lanes on RV32IM + the Zbb rotate/logic subset:
  /// every 64-bit rotation becomes at most two `rori`, and χ uses `andn`.
  /// The host converts lanes at the boundary (the conversion cost the
  /// paper cites as the technique's drawback is measured separately in
  /// bench/ablation_interleave).
  kInterleavedZbb,
};

class ScalarKeccak {
 public:
  explicit ScalarKeccak(unsigned rounds = 24, Flavor flavor = Flavor::kHiLo);

  /// Run the permutation on the simulated scalar core, in place.
  void permute(keccak::State& state);

  /// Marker-to-marker latency of the 24-round loop (cycles).
  [[nodiscard]] u64 measure_permutation_cycles();

  /// Latency of one round (cycle delta between consecutive per-round
  /// markers, which the generated program emits at each loop head).
  [[nodiscard]] u64 measure_round_cycles();

  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  [[nodiscard]] const sim::SimdProcessor& processor() const noexcept {
    return *proc_;
  }

  /// Marker ids used by the generated program.
  static constexpr u32 kMarkPermStart = 1;
  static constexpr u32 kMarkPermEnd = 2;
  static constexpr u32 kMarkRound = 3;

 private:
  void run(keccak::State& state);

  unsigned rounds_;
  Flavor flavor_;
  std::string source_;
  std::unique_ptr<sim::SimdProcessor> proc_;
  u32 state_base_ = 0;
};

/// Generate the scalar Keccak assembly (exposed for tests/examples).
[[nodiscard]] std::string generate_scalar_keccak_source(
    unsigned rounds, Flavor flavor = Flavor::kHiLo);

}  // namespace kvx::baseline
