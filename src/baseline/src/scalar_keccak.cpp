#include "kvx/baseline/scalar_keccak.hpp"

#include <array>
#include <cstdarg>
#include <cstdio>

#include "kvx/asm/assembler.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/keccak/interleave.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::baseline {
namespace {

/// Registers holding the ten 32-bit words of C[0..4] (lo, hi interleaved)
/// during θ, and a χ row during χ.
constexpr std::array<const char*, 10> kCReg = {
    "a2", "a3", "a4", "a5", "a6", "a7", "s5", "s6", "s7", "s8"};

const char* clo(unsigned x) { return kCReg[2 * x]; }
const char* chi_reg(unsigned x) { return kCReg[2 * x + 1]; }

class Gen {
 public:
  void raw(const std::string& s) { out_ += s; out_ += '\n'; }
  void op(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string line(static_cast<usize>(n), '\0');
    std::vsnprintf(line.data(), static_cast<usize>(n) + 1, fmt, args);
    va_end(args);
    out_ += "    ";
    out_ += line;
    out_ += '\n';
  }
  void label(const char* l) { out_ += l; out_ += ":\n"; }
  void comment(const char* c) { out_ += "    # "; out_ += c; out_ += '\n'; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Emit a 64-bit rotate-left by `rot` of (t1:t0) into (t5:t4)... writing the
/// rotated pair to `bstate + 8·dst`. Source is loaded from `state + 8·src`.
void emit_lane_rot(Gen& g, unsigned src, unsigned rot, unsigned dst) {
  g.op("lw t0, %u(s0)", 8 * src);      // lo
  g.op("lw t1, %u(s0)", 8 * src + 4);  // hi
  const unsigned r = rot % 64;
  if (r == 0) {
    g.op("sw t0, %u(s1)", 8 * dst);
    g.op("sw t1, %u(s1)", 8 * dst + 4);
    return;
  }
  if (r == 32) {
    g.op("sw t1, %u(s1)", 8 * dst);
    g.op("sw t0, %u(s1)", 8 * dst + 4);
    return;
  }
  // For r > 32, rotate the swapped pair by r − 32.
  const char* lo = r < 32 ? "t0" : "t1";
  const char* hi = r < 32 ? "t1" : "t0";
  const unsigned s = r % 32;
  g.op("slli t2, %s, %u", lo, s);
  g.op("srli t3, %s, %u", hi, 32 - s);
  g.op("or t2, t2, t3");  // new lo
  g.op("slli t4, %s, %u", hi, s);
  g.op("srli t5, %s, %u", lo, 32 - s);
  g.op("or t4, t4, t5");  // new hi
  g.op("sw t2, %u(s1)", 8 * dst);
  g.op("sw t4, %u(s1)", 8 * dst + 4);
}

/// Interleaved-representation rotation: even/odd halves rotate by r/2 (and
/// swap roles for odd r), each a single Zbb `rori`.
void emit_lane_rot_interleaved(Gen& g, unsigned src, unsigned rot,
                               unsigned dst) {
  g.op("lw t0, %u(s0)", 8 * src);      // even bits
  g.op("lw t1, %u(s0)", 8 * src + 4);  // odd bits
  const unsigned r = rot % 64;
  const char* new_even = "t0";
  const char* new_odd = "t1";
  if (r % 2 == 0) {
    const unsigned k = r / 2;
    if (k != 0) {
      g.op("rori t2, t0, %u", 32 - k);
      g.op("rori t3, t1, %u", 32 - k);
      new_even = "t2";
      new_odd = "t3";
    }
  } else {
    const unsigned ke = (r + 1) / 2;  // >= 1
    const unsigned ko = r / 2;
    g.op("rori t2, t1, %u", 32 - ke);  // even' = ROTL32(odd, ke)
    new_even = "t2";
    if (ko != 0) {
      g.op("rori t3, t0, %u", 32 - ko);  // odd' = ROTL32(even, ko)
      new_odd = "t3";
    } else {
      new_odd = "t0";
    }
  }
  g.op("sw %s, %u(s1)", new_even, 8 * dst);
  g.op("sw %s, %u(s1)", new_odd, 8 * dst + 4);
}

}  // namespace

std::string generate_scalar_keccak_source(unsigned rounds, Flavor flavor) {
  const bool inter = flavor == Flavor::kInterleavedZbb;
  KVX_CHECK_MSG(rounds >= 1 && rounds <= 24, "rounds in [1,24]");
  const auto& rho = keccak::rho_offsets();
  const auto& rc = keccak::round_constants();
  Gen g;
  g.raw(inter ? "# Scalar Keccak-f[1600], bit-interleaved lanes, RV32IM+Zbb"
              : "# Scalar Keccak-f[1600] for the RV32IM Ibex-like core (PQ-M4 style)");
  g.raw(inter ? "# state: 25 lanes x (even32, odd32); bstate: rho/pi staging"
              : "# state: 25 lanes x (lo32, hi32); bstate: rho/pi staging buffer");
  g.raw(".text");
  g.op("la s0, state");
  g.op("la s1, bstate");
  g.op("la s2, rc");
  g.op("li s3, 0");
  g.op("li s4, %u", rounds);
  g.op("csrwi 0x7C0, %u", ScalarKeccak::kMarkPermStart);
  g.label("round_loop");
  g.op("csrwi 0x7C0, %u", ScalarKeccak::kMarkRound);

  // ---- θ: column parities into registers, then D applied in place ----
  g.comment("theta: C[x] = xor over y of A[x,y] (kept in registers)");
  for (unsigned x = 0; x < 5; ++x) {
    g.op("lw %s, %u(s0)", clo(x), 8 * x);
    g.op("lw %s, %u(s0)", chi_reg(x), 8 * x + 4);
    for (unsigned y = 1; y < 5; ++y) {
      g.op("lw t0, %u(s0)", 40 * y + 8 * x);
      g.op("lw t1, %u(s0)", 40 * y + 8 * x + 4);
      g.op("xor %s, %s, t0", clo(x), clo(x));
      g.op("xor %s, %s, t1", chi_reg(x), chi_reg(x));
    }
  }
  g.comment("theta: A[x,y] ^= C[x-1] ^ ROT64(C[x+1], 1)");
  for (unsigned x = 0; x < 5; ++x) {
    const unsigned xm1 = (x + 4) % 5;
    const unsigned xp1 = (x + 1) % 5;
    if (inter) {
      // Interleaved ROT64-by-1: even' = ROTL32(odd, 1), odd' = even.
      g.op("rori t0, %s, 31", chi_reg(xp1));
      g.op("xor t0, t0, %s", clo(xm1));
      g.op("xor t1, %s, %s", clo(xp1), chi_reg(xm1));
    } else {
      // D_lo in t0, D_hi in t1.
      g.op("slli t0, %s, 1", clo(xp1));
      g.op("srli t2, %s, 31", chi_reg(xp1));
      g.op("or t0, t0, t2");
      g.op("xor t0, t0, %s", clo(xm1));
      g.op("slli t1, %s, 1", chi_reg(xp1));
      g.op("srli t2, %s, 31", clo(xp1));
      g.op("or t1, t1, t2");
      g.op("xor t1, t1, %s", chi_reg(xm1));
    }
    for (unsigned y = 0; y < 5; ++y) {
      const unsigned off = 40 * y + 8 * x;
      g.op("lw t2, %u(s0)", off);
      g.op("lw t3, %u(s0)", off + 4);
      g.op("xor t2, t2, t0");
      g.op("xor t3, t3, t1");
      g.op("sw t2, %u(s0)", off);
      g.op("sw t3, %u(s0)", off + 4);
    }
  }

  // ---- ρ + π fused: bstate[5y+x] = ROT(state[src], rot) ----
  g.comment("rho+pi: rotate each lane into its pi destination in bstate");
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      const unsigned d = 5 * y + x;
      const unsigned a = (x + 3 * y) % 5;  // source column
      const unsigned b = x;                // source plane
      const unsigned src = 5 * b + a;
      if (inter) {
        emit_lane_rot_interleaved(g, src, rho[b][a], d);
      } else {
        emit_lane_rot(g, src, rho[b][a], d);
      }
    }
  }

  // ---- χ: row-local, bstate -> state ----
  g.comment("chi: A[x,y] = B[x] ^ (~B[x+1] & B[x+2]) per row");
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      g.op("lw %s, %u(s1)", clo(x), 40 * y + 8 * x);
      g.op("lw %s, %u(s1)", chi_reg(x), 40 * y + 8 * x + 4);
    }
    for (unsigned x = 0; x < 5; ++x) {
      const unsigned xp1 = (x + 1) % 5;
      const unsigned xp2 = (x + 2) % 5;
      if (inter) {
        g.op("andn t0, %s, %s", clo(xp2), clo(xp1));
        g.op("xor t0, t0, %s", clo(x));
        g.op("sw t0, %u(s0)", 40 * y + 8 * x);
        g.op("andn t1, %s, %s", chi_reg(xp2), chi_reg(xp1));
        g.op("xor t1, t1, %s", chi_reg(x));
        g.op("sw t1, %u(s0)", 40 * y + 8 * x + 4);
      } else {
        g.op("xori t0, %s, -1", clo(xp1));
        g.op("and t0, t0, %s", clo(xp2));
        g.op("xor t0, t0, %s", clo(x));
        g.op("sw t0, %u(s0)", 40 * y + 8 * x);
        g.op("xori t1, %s, -1", chi_reg(xp1));
        g.op("and t1, t1, %s", chi_reg(xp2));
        g.op("xor t1, t1, %s", chi_reg(x));
        g.op("sw t1, %u(s0)", 40 * y + 8 * x + 4);
      }
    }
  }

  // ---- ι ----
  g.comment("iota: A[0,0] ^= RC[round] (table walked by s2)");
  g.op("lw t0, 0(s2)");
  g.op("lw t1, 4(s2)");
  g.op("lw t2, 0(s0)");
  g.op("lw t3, 4(s0)");
  g.op("xor t2, t2, t0");
  g.op("xor t3, t3, t1");
  g.op("sw t2, 0(s0)");
  g.op("sw t3, 4(s0)");
  g.op("addi s2, s2, 8");

  g.op("addi s3, s3, 1");
  g.op("blt s3, s4, round_loop");
  g.op("csrwi 0x7C0, %u", ScalarKeccak::kMarkPermEnd);
  g.op("ebreak");

  g.raw(".data");
  g.label("state");
  g.op(".zero 200");
  g.label("bstate");
  g.op(".zero 200");
  g.label("rc");
  for (unsigned r = 0; r < rounds; ++r) {
    u64 value = rc[r];
    if (inter) {
      const keccak::Interleaved iv = keccak::interleave(value);
      value = (static_cast<u64>(iv.odd) << 32) | iv.even;
    }
    g.op(".dword 0x%llx", static_cast<unsigned long long>(value));
  }
  return g.take();
}

ScalarKeccak::ScalarKeccak(unsigned rounds, Flavor flavor)
    : rounds_(rounds),
      flavor_(flavor),
      source_(generate_scalar_keccak_source(rounds, flavor)) {
  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;  // vector unit unused by this program
  cfg.vector.ele_num = 5;
  proc_ = std::make_unique<sim::SimdProcessor>(cfg);
  const assembler::Program image = assembler::assemble(source_);
  proc_->load_program(image);
  state_base_ = image.symbol("state");
}

void ScalarKeccak::run(keccak::State& state) {
  // The interleaved flavor keeps the state bit-interleaved in memory; the
  // boundary conversion happens here on the host (its cost is the
  // representation's documented drawback, measured in ablation benches).
  if (flavor_ == Flavor::kInterleavedZbb) {
    for (u64& lane : state.flat()) {
      const keccak::Interleaved iv = keccak::interleave(lane);
      lane = (static_cast<u64>(iv.odd) << 32) | iv.even;
    }
  }
  const auto bytes = state.to_bytes();
  proc_->dmem().write_block(state_base_, bytes);
  proc_->reset_run_state();
  proc_->run();
  std::array<u8, keccak::kStateBytes> out{};
  proc_->dmem().read_block(state_base_, out);
  state = keccak::State::from_bytes(out);
  if (flavor_ == Flavor::kInterleavedZbb) {
    for (u64& lane : state.flat()) {
      lane = keccak::deinterleave(
          {static_cast<u32>(lane), static_cast<u32>(lane >> 32)});
    }
  }
}

void ScalarKeccak::permute(keccak::State& state) { run(state); }

u64 ScalarKeccak::measure_permutation_cycles() {
  keccak::State s;
  run(s);
  return proc_->cycles_between(kMarkPermStart, kMarkPermEnd);
}

u64 ScalarKeccak::measure_round_cycles() {
  keccak::State s;
  run(s);
  const auto deltas = proc_->marker_deltas(kMarkRound);
  KVX_CHECK(!deltas.empty());
  return deltas.front();
}

}  // namespace kvx::baseline
