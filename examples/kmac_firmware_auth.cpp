// Firmware authentication with KMAC (SP 800-185) — the "embedded IoT"
// use case the OASIP/DASIP related work targets: a device verifies firmware
// chunks with keyed MACs, and the SHA-3 accelerator turns the per-chunk
// Keccak permutations into a handful of vector instructions.
//
// The example signs a synthetic firmware image chunk-by-chunk with KMAC256,
// verifies it (including detecting a flipped bit), and reports how many
// simulated accelerator cycles the underlying permutations would take on
// each architecture configuration.
#include <cstdio>
#include <vector>

#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/keccak/sp800_185.hpp"

int main() {
  using namespace kvx;

  // Synthetic 16 KiB firmware image in 1 KiB chunks.
  constexpr usize kChunk = 1024;
  constexpr usize kChunks = 16;
  SplitMix64 rng(0xF1F2F3F4);
  std::vector<u8> firmware(kChunk * kChunks);
  for (u8& b : firmware) b = static_cast<u8>(rng.next());
  std::vector<u8> key(32);
  for (u8& b : key) b = static_cast<u8>(rng.next());
  const std::vector<u8> context = {'f', 'w', '-', 'v', '1'};

  // Sign: one KMAC256 tag per chunk, bound to the chunk index via TupleHash
  // style encoding (index appended to the customization).
  std::vector<std::vector<u8>> tags;
  for (usize c = 0; c < kChunks; ++c) {
    std::vector<u8> custom = context;
    custom.push_back(static_cast<u8>(c));
    const std::span<const u8> chunk(firmware.data() + c * kChunk, kChunk);
    tags.push_back(keccak::kmac256(key, chunk, 32, custom));
  }
  std::printf("signed %zu chunks; tag[0] = %s…\n", kChunks,
              to_hex(std::span<const u8>(tags[0]).first(8)).c_str());

  // Verify all chunks.
  usize ok = 0;
  for (usize c = 0; c < kChunks; ++c) {
    std::vector<u8> custom = context;
    custom.push_back(static_cast<u8>(c));
    const std::span<const u8> chunk(firmware.data() + c * kChunk, kChunk);
    if (keccak::kmac256(key, chunk, 32, custom) == tags[c]) ++ok;
  }
  std::printf("verification: %zu/%zu chunks authentic\n", ok, kChunks);

  // Tamper with one byte and verify detection.
  firmware[5 * kChunk + 77] ^= 0x01;
  std::vector<u8> custom = context;
  custom.push_back(5);
  const std::span<const u8> tampered(firmware.data() + 5 * kChunk, kChunk);
  std::printf("tampered chunk 5 detected: %s\n",
              keccak::kmac256(key, tampered, 32, custom) != tags[5]
                  ? "yes"
                  : "NO (bug!)");

  // Now run the whole verification ON the simulated accelerator: one KMAC
  // batch over all 16 chunks (SN = 4 in lockstep) per architecture, with
  // measured — not estimated — cycle counts. Tags must match the host ones
  // computed above (note: chunks share the customization here so they can
  // run in one batch; chunk binding via per-chunk custom strings would use
  // one batch per index).
  firmware[5 * kChunk + 77] ^= 0x01;  // undo the tamper
  std::vector<std::vector<u8>> chunks(kChunks);
  for (usize c = 0; c < kChunks; ++c) {
    chunks[c].assign(firmware.begin() + static_cast<std::ptrdiff_t>(c * kChunk),
                     firmware.begin() + static_cast<std::ptrdiff_t>((c + 1) * kChunk));
  }
  std::printf("\naccelerator-run verification (16 chunks, batched KMAC256):\n");
  for (const auto arch :
       {core::Arch::k64Lmul1, core::Arch::k64Lmul8, core::Arch::k64Fused}) {
    core::ParallelSha3 accel({arch, 20, 24});  // SN = 4
    const auto accel_tags = accel.kmac_batch(256, key, chunks, 32, context);
    usize match = 0;
    for (usize c = 0; c < kChunks; ++c) {
      if (accel_tags[c] == keccak::kmac256(key, chunks[c], 32, context)) {
        ++match;
      }
    }
    std::printf("  %-18s %2zu/%zu tags match host | %8llu cycles | %.1f us "
                "at 100 MHz\n",
                std::string(core::arch_name(arch)).c_str(), match, kChunks,
                static_cast<unsigned long long>(
                    accel.stats().accelerator_cycles),
                static_cast<double>(accel.stats().accelerator_cycles) / 100.0);
  }
  return 0;
}
