// hash_server — a batch "hashing service" built on the two-level
// parallelism: worker threads (host) × SN Keccak states (accelerator).
//
//   hash_server [--jobs N] [--threads N] [--postmortem DIR]
//               [--inject-faults SPEC]
//     --jobs N            jobs to pump through the engine    (default 2000)
//     --threads N         worker shards                      (default 4)
//     --postmortem DIR    crash-dump directory (default $KVX_POSTMORTEM or .)
//     --inject-faults S   deterministic fault injection, e.g. "seed=7,
//                         rate=1e-2" — demonstrates fail-soft: faulted jobs
//                         demote or fail individually, the service never
//                         aborts (see kvx/sim/fault_injector.hpp)
//   (N and N also accepted positionally for backwards compatibility.)
//
// Pumps thousands of random-length jobs with a mixed algorithm profile
// (the traffic shape of a TLS/firmware/PQC backend: mostly SHA3-256, some
// SHAKE XOFs, some KMAC authentications) through a BatchHashEngine and
// cross-checks every successful digest against the host golden model, then
// prints the per-shard accounting. Jobs fail *individually*, the way a real
// service reports them: results come back via drain_results() — never the
// throwing drain(), which would turn a single per-job failure into a
// process abort and defeat the fail-soft chain this example showcases —
// and each failed job prints its error plus the backend demotion path the
// accelerator went through. The exit code is nonzero only when a digest
// MISMATCHES the golden model (silent corruption); injected per-job
// failures are expected, reported traffic.
//
// While the batch drains, a scraper thread dumps the process-wide metrics
// registry to stderr in Prometheus text format every 250 ms — the shape a
// real service would expose on a /metrics endpoint (kvx-hashd serves the
// same text over real HTTP; see docs/server.md) — followed by a
// /healthz-style liveness line. The crash handler is armed, so a crash of
// this "service" leaves a post-mortem a kvx-doctor run can reconstruct.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/postmortem.hpp"
#include "kvx/sim/fault_injector.hpp"

int main(int argc, char** argv) {
  using namespace kvx;
  using namespace kvx::engine;

  usize n_jobs = 2000;
  unsigned threads = 4;
  std::string dump_dir;
  std::string fault_spec;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--jobs" && has_next) {
      n_jobs = cli::require_usize("hash_server", "--jobs", argv[++i], 1,
                                  usize{1} << 24);
    } else if (a == "--threads" && has_next) {
      threads = cli::require_unsigned("hash_server", "--threads", argv[++i],
                                      1, 4096);
    } else if (a == "--postmortem" && has_next) {
      dump_dir = argv[++i];
    } else if (a == "--inject-faults" && has_next) {
      fault_spec = argv[++i];
    } else if (a == "-h" || a == "--help") {
      std::fprintf(stderr,
                   "usage: hash_server [--jobs N] [--threads N] "
                   "[--postmortem DIR] [--inject-faults SPEC]\n");
      return 2;
    } else if (!a.empty() && a[0] != '-') {
      // Positional compatibility: hash_server [jobs [threads [dumpdir]]].
      if (positional == 0) {
        n_jobs = cli::require_usize("hash_server", "jobs", a, 1,
                                    usize{1} << 24);
      } else if (positional == 1) {
        threads = cli::require_unsigned("hash_server", "threads", a, 1, 4096);
      } else if (positional == 2) {
        dump_dir = a;
      }
      ++positional;
    } else {
      std::fprintf(stderr, "hash_server: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  // Deterministic mixed traffic: 70% SHA3-256, 15% SHAKE128, 15% KMAC256.
  SplitMix64 rng(2026);
  const std::vector<u8> mac_key(32, 0x4B);
  std::vector<HashJob> jobs(n_jobs);
  for (HashJob& job : jobs) {
    const u64 pick = rng.below(100);
    job.message.resize(rng.below(600));
    for (u8& b : job.message) b = static_cast<u8>(rng.next());
    if (pick < 70) {
      job.algo = Algo::kSha3_256;
    } else if (pick < 85) {
      job.algo = Algo::kShake128;
      job.out_len = 64;
    } else {
      job.algo = Algo::kKmac256;
      job.out_len = 32;
      job.key = mac_key;
    }
  }

  // Arm the crash post-mortem machinery before any work: a fatal signal
  // from here on leaves a .kvxdump with the flight-recorder timeline, the
  // metrics and the per-shard stats for kvx-doctor.
  if (dump_dir.empty()) {
    const char* env_dir = std::getenv("KVX_POSTMORTEM");
    dump_dir = env_dir != nullptr ? env_dir : ".";
  }
  obs::pm::set_dump_dir(dump_dir);
  obs::pm::install_crash_handler();
  std::printf("post-mortem dumps: %s/kvx_postmortem_<pid>_*.kvxdump\n",
              dump_dir.c_str());

  EngineConfig cfg;
  cfg.threads = threads;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};  // SN = 3 per shard
  cfg.max_queue = 1024;                        // streaming backpressure
  if (!fault_spec.empty()) {
    try {
      cfg.accel.fault_injector = std::make_shared<sim::FaultInjector>(
          sim::parse_fault_plan(fault_spec));
    } catch (const Error& e) {
      std::fprintf(stderr, "hash_server: --inject-faults: %s\n", e.what());
      return 2;
    }
  }
  BatchHashEngine engine(cfg);

  std::printf("hash_server: %zu jobs, %u shards x SN=%u (64-bit LMUL=8)\n",
              n_jobs, engine.threads(), engine.lanes_per_shard());

  // Periodic Prometheus scrape while the batch drains (like a /metrics
  // poller would see). Plain interval thread; stopped via timed cond-var.
  std::mutex scrape_mutex;
  std::condition_variable scrape_cv;
  bool scrape_stop = false;
  std::thread scraper([&] {
    std::unique_lock<std::mutex> lock(scrape_mutex);
    while (!scrape_cv.wait_for(lock, std::chrono::milliseconds(250),
                               [&] { return scrape_stop; })) {
      const std::string text = obs::MetricsRegistry::global().to_prometheus();
      std::fprintf(stderr, "--- metrics scrape ---\n%s", text.c_str());
      // /healthz liveness line, engine-invariant checked on the spot.
      const EngineStats st = engine.stats();
      const bool ok = st.submitted >= st.completed + st.failed;
      std::fprintf(stderr,
                   "--- healthz ---\n%s uptime_ns=%llu submitted=%llu "
                   "completed=%llu failed=%llu\n",
                   ok ? "ok" : "UNHEALTHY",
                   static_cast<unsigned long long>(st.elapsed_ns),
                   static_cast<unsigned long long>(st.submitted),
                   static_cast<unsigned long long>(st.completed),
                   static_cast<unsigned long long>(st.failed));
    }
  });

  engine.submit_all(jobs);
  // drain_results, NOT drain(): per-job outcomes, never an exception. One
  // faulted job must not abort the service — that is the whole point of
  // the fail-soft chain.
  const std::vector<JobResult> results = engine.drain_results();

  {
    std::lock_guard<std::mutex> lock(scrape_mutex);
    scrape_stop = true;
  }
  scrape_cv.notify_one();
  scraper.join();

  // Report every per-job failure the way a real service would: the error,
  // and the backend tiers the accelerator tried on the way down.
  usize failed_jobs = 0;
  usize mismatches = 0;
  for (usize i = 0; i < jobs.size(); ++i) {
    const JobResult& r = results[i];
    if (!r.ok()) {
      ++failed_jobs;
      std::string path;
      for (const TierAttempt& t : r.demotion_path) {
        if (!path.empty()) path += " -> ";
        path += t.backend;
        if (!t.error.empty()) {
          path += t.injected ? " (injected: " : " (";
          path += t.error + ")";
        }
      }
      std::fprintf(stderr, "job %zu FAILED: %s%s%s\n", i, r.error.c_str(),
                   path.empty() ? "" : " | demotion path: ",
                   path.c_str());
      continue;
    }
    if (r.digest != host_reference_digest(jobs[i])) {
      ++mismatches;
      std::fprintf(stderr, "job %zu DIGEST MISMATCH vs golden model\n", i);
    }
  }
  if (mismatches != 0) {
    std::printf("FAILED: %zu of %zu digests mismatch the golden model\n",
                mismatches, n_jobs);
    return 1;
  }
  if (failed_jobs != 0) {
    std::printf(
        "%zu of %zu jobs failed individually (reported above); all %zu "
        "completed digests verified against the host golden model\n",
        failed_jobs, n_jobs, n_jobs - failed_jobs);
  } else {
    std::printf("all %zu digests verified against the host golden model\n\n",
                n_jobs);
  }

  const EngineStats st = engine.stats();
  // The fail-soft accounting invariant, checked at rest like a shutdown
  // hook would.
  if (st.submitted != st.completed + st.failed) {
    std::printf("FAILED: submitted %llu != completed %llu + failed %llu\n",
                static_cast<unsigned long long>(st.submitted),
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.failed));
    return 1;
  }
  std::printf("shard |   jobs |    bytes | dispatches |   sim cycles | host ms\n");
  std::printf("---------------------------------------------------------------\n");
  for (usize s = 0; s < st.shards.size(); ++s) {
    const ShardStats& sh = st.shards[s];
    std::printf("  %2zu  | %6llu | %8llu | %10llu | %12llu | %7.1f\n", s,
                static_cast<unsigned long long>(sh.jobs),
                static_cast<unsigned long long>(sh.bytes),
                static_cast<unsigned long long>(sh.dispatches),
                static_cast<unsigned long long>(sh.sim_cycles),
                static_cast<double>(sh.host_ns) / 1e6);
  }
  const ShardStats t = st.totals();
  std::printf("total | %6llu | %8llu | %10llu | %12llu | %7.1f\n",
              static_cast<unsigned long long>(t.jobs),
              static_cast<unsigned long long>(t.bytes),
              static_cast<unsigned long long>(t.dispatches),
              static_cast<unsigned long long>(t.sim_cycles),
              static_cast<double>(t.host_ns) / 1e6);
  std::printf("queue high-water mark: %zu\n", st.queue_high_water);

  // Derived rates come from the one shared implementation
  // (EngineStats::throughput), not ad-hoc arithmetic per tool.
  const ThroughputStats tp = st.throughput();
  std::printf("throughput: %.0f jobs/s | %.2f MB/s | %.0f perms/s\n",
              tp.jobs_per_sec, tp.mb_per_sec, tp.perms_per_sec);
  std::printf("step cycles:\n%s", format_step_cycles(t.step_cycles).c_str());

  // Final scrape — everything the periodic dumps showed, at rest.
  std::fprintf(stderr, "--- final metrics ---\n%s",
               obs::MetricsRegistry::global().to_prometheus().c_str());
  return 0;
}
