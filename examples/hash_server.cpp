// hash_server — a batch "hashing service" built on the two-level
// parallelism: worker threads (host) × SN Keccak states (accelerator).
//
// Pumps thousands of random-length jobs with a mixed algorithm profile
// (the traffic shape of a TLS/firmware/PQC backend: mostly SHA3-256, some
// SHAKE XOFs, some KMAC authentications) through a BatchHashEngine and
// cross-checks EVERY digest against the host golden model, then prints the
// per-shard accounting. While the batch drains, a scraper thread dumps the
// process-wide metrics registry to stderr in Prometheus text format every
// 250 ms — the shape a real service would expose on a /metrics endpoint —
// followed by a /healthz-style liveness line. The crash handler is armed
// (dumps to argv[3] or KVX_POSTMORTEM, default "."), so a crash of this
// "service" leaves a post-mortem a kvx-doctor run can reconstruct.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/postmortem.hpp"

int main(int argc, char** argv) {
  using namespace kvx;
  using namespace kvx::engine;

  const usize n_jobs = argc > 1 ? static_cast<usize>(std::atol(argv[1])) : 2000;
  const unsigned threads = argc > 2
                               ? static_cast<unsigned>(std::atoi(argv[2]))
                               : 4;

  // Deterministic mixed traffic: 70% SHA3-256, 15% SHAKE128, 15% KMAC256.
  SplitMix64 rng(2026);
  const std::vector<u8> mac_key(32, 0x4B);
  std::vector<HashJob> jobs(n_jobs);
  for (HashJob& job : jobs) {
    const u64 pick = rng.below(100);
    job.message.resize(rng.below(600));
    for (u8& b : job.message) b = static_cast<u8>(rng.next());
    if (pick < 70) {
      job.algo = Algo::kSha3_256;
    } else if (pick < 85) {
      job.algo = Algo::kShake128;
      job.out_len = 64;
    } else {
      job.algo = Algo::kKmac256;
      job.out_len = 32;
      job.key = mac_key;
    }
  }

  // Arm the crash post-mortem machinery before any work: a fatal signal
  // from here on leaves a .kvxdump with the flight-recorder timeline, the
  // metrics and the per-shard stats for kvx-doctor.
  const char* env_dir = std::getenv("KVX_POSTMORTEM");
  const std::string dump_dir =
      argc > 3 ? argv[3] : (env_dir != nullptr ? env_dir : ".");
  obs::pm::set_dump_dir(dump_dir);
  obs::pm::install_crash_handler();
  std::printf("post-mortem dumps: %s/kvx_postmortem_<pid>_*.kvxdump\n",
              dump_dir.c_str());

  EngineConfig cfg;
  cfg.threads = threads;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};  // SN = 3 per shard
  cfg.max_queue = 1024;                        // streaming backpressure
  BatchHashEngine engine(cfg);

  std::printf("hash_server: %zu jobs, %u shards x SN=%u (64-bit LMUL=8)\n",
              n_jobs, engine.threads(), engine.lanes_per_shard());

  // Periodic Prometheus scrape while the batch drains (like a /metrics
  // poller would see). Plain interval thread; stopped via timed cond-var.
  std::mutex scrape_mutex;
  std::condition_variable scrape_cv;
  bool scrape_stop = false;
  std::thread scraper([&] {
    std::unique_lock<std::mutex> lock(scrape_mutex);
    while (!scrape_cv.wait_for(lock, std::chrono::milliseconds(250),
                               [&] { return scrape_stop; })) {
      const std::string text = obs::MetricsRegistry::global().to_prometheus();
      std::fprintf(stderr, "--- metrics scrape ---\n%s", text.c_str());
      // /healthz liveness line, engine-invariant checked on the spot.
      const EngineStats st = engine.stats();
      const bool ok = st.submitted >= st.completed + st.failed;
      std::fprintf(stderr,
                   "--- healthz ---\n%s uptime_ns=%llu submitted=%llu "
                   "completed=%llu failed=%llu\n",
                   ok ? "ok" : "UNHEALTHY",
                   static_cast<unsigned long long>(st.elapsed_ns),
                   static_cast<unsigned long long>(st.submitted),
                   static_cast<unsigned long long>(st.completed),
                   static_cast<unsigned long long>(st.failed));
    }
  });

  engine.submit_all(jobs);
  const auto digests = engine.drain();

  {
    std::lock_guard<std::mutex> lock(scrape_mutex);
    scrape_stop = true;
  }
  scrape_cv.notify_one();
  scraper.join();

  usize failures = 0;
  for (usize i = 0; i < jobs.size(); ++i) {
    if (digests[i] != host_reference_digest(jobs[i])) ++failures;
  }
  if (failures != 0) {
    std::printf("FAILED: %zu of %zu digests mismatch the golden model\n",
                failures, n_jobs);
    return 1;
  }
  std::printf("all %zu digests verified against the host golden model\n\n",
              n_jobs);

  const EngineStats st = engine.stats();
  std::printf("shard |   jobs |    bytes | dispatches |   sim cycles | host ms\n");
  std::printf("---------------------------------------------------------------\n");
  for (usize s = 0; s < st.shards.size(); ++s) {
    const ShardStats& sh = st.shards[s];
    std::printf("  %2zu  | %6llu | %8llu | %10llu | %12llu | %7.1f\n", s,
                static_cast<unsigned long long>(sh.jobs),
                static_cast<unsigned long long>(sh.bytes),
                static_cast<unsigned long long>(sh.dispatches),
                static_cast<unsigned long long>(sh.sim_cycles),
                static_cast<double>(sh.host_ns) / 1e6);
  }
  const ShardStats t = st.totals();
  std::printf("total | %6llu | %8llu | %10llu | %12llu | %7.1f\n",
              static_cast<unsigned long long>(t.jobs),
              static_cast<unsigned long long>(t.bytes),
              static_cast<unsigned long long>(t.dispatches),
              static_cast<unsigned long long>(t.sim_cycles),
              static_cast<double>(t.host_ns) / 1e6);
  std::printf("queue high-water mark: %zu\n", st.queue_high_water);

  // Derived rates come from the one shared implementation
  // (EngineStats::throughput), not ad-hoc arithmetic per tool.
  const ThroughputStats tp = st.throughput();
  std::printf("throughput: %.0f jobs/s | %.2f MB/s | %.0f perms/s\n",
              tp.jobs_per_sec, tp.mb_per_sec, tp.perms_per_sec);
  std::printf("step cycles:\n%s", format_step_cycles(t.step_cycles).c_str());

  // Final scrape — everything the periodic dumps showed, at rest.
  std::fprintf(stderr, "--- final metrics ---\n%s",
               obs::MetricsRegistry::global().to_prometheus().c_str());
  return 0;
}
