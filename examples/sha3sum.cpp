// sha3sum — hash files (or stdin) with any SHA-3 family member, optionally
// through the simulated accelerator for a cycle estimate.
//
//   sha3sum [-a sha3-256|sha3-512|shake128|shake256|...] [-n outlen]
//           [--simulate] [file...]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "kvx/common/cli.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/keccak/sha3.hpp"

namespace {

using namespace kvx;

std::optional<keccak::Sha3Function> parse_algo(const std::string& name) {
  using F = keccak::Sha3Function;
  if (name == "sha3-224") return F::kSha3_224;
  if (name == "sha3-256") return F::kSha3_256;
  if (name == "sha3-384") return F::kSha3_384;
  if (name == "sha3-512") return F::kSha3_512;
  if (name == "shake128") return F::kShake128;
  if (name == "shake256") return F::kShake256;
  return std::nullopt;
}

std::vector<u8> read_all(std::istream& in) {
  std::vector<u8> data;
  char buf[4096];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    data.insert(data.end(), buf, buf + in.gcount());
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  keccak::Sha3Function algo = keccak::Sha3Function::kSha3_256;
  usize out_len = 0;
  bool simulate = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-a" && i + 1 < argc) {
      const auto parsed = parse_algo(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "sha3sum: unknown algorithm\n");
        return 2;
      }
      algo = *parsed;
    } else if (a == "-n" && i + 1 < argc) {
      out_len = cli::require_usize("sha3sum", "-n", argv[++i], 1,
                                   usize{1} << 20);
    } else if (a == "--simulate") {
      simulate = true;
    } else if (!a.empty() && a[0] != '-') {
      files.push_back(a);
    } else {
      std::fprintf(stderr,
                   "usage: %s [-a algo] [-n outlen] [--simulate] [file...]\n",
                   argv[0]);
      return 2;
    }
  }
  if (out_len == 0) {
    out_len = keccak::digest_bytes(algo) ? keccak::digest_bytes(algo) : 32;
  }

  // Collect inputs (stdin if no files).
  std::vector<std::pair<std::string, std::vector<u8>>> inputs;
  if (files.empty()) {
    inputs.emplace_back("-", read_all(std::cin));
  } else {
    for (const std::string& f : files) {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "sha3sum: cannot open %s\n", f.c_str());
        return 1;
      }
      inputs.emplace_back(f, read_all(in));
    }
  }

  if (!simulate) {
    for (const auto& [name, data] : inputs) {
      const auto digest = keccak::hash(algo, data, out_len);
      std::printf("%s  %s\n", to_hex(digest).c_str(), name.c_str());
    }
    return 0;
  }

  // Simulated path: batch all inputs through the accelerator (SN = 3).
  core::ParallelSha3 accel({core::Arch::k64Lmul8, 15, 24});
  std::vector<std::vector<u8>> msgs;
  msgs.reserve(inputs.size());
  for (const auto& [name, data] : inputs) msgs.push_back(data);
  const auto digests = accel.xof_batch(algo, msgs, out_len);
  for (usize i = 0; i < inputs.size(); ++i) {
    std::printf("%s  %s\n", to_hex(digests[i]).c_str(),
                inputs[i].first.c_str());
  }
  std::fprintf(stderr,
               "[simulated %s accelerator: %llu permutations, %llu cycles]\n",
               std::string(core::arch_name(core::Arch::k64Lmul8)).c_str(),
               static_cast<unsigned long long>(accel.stats().permutations),
               static_cast<unsigned long long>(
                   accel.stats().accelerator_cycles));
  return 0;
}
