// Pipeline explorer: a teaching/debugging tool that dumps the generated
// Keccak assembly program for a chosen architecture, then single-steps the
// simulator with a trace hook, printing per-step cycle accounting and an
// instruction histogram — the view a hardware designer uses to audit the
// custom ISE.
//
//   $ ./pipeline_explorer [64l1|64l8|32l8|rvv] [--dump-asm]
#include <cstdio>
#include <cstring>
#include <string>

#include "kvx/core/program_builder.hpp"
#include "kvx/isa/disasm.hpp"
#include "kvx/sim/processor.hpp"

int main(int argc, char** argv) {
  using namespace kvx;
  using namespace kvx::core;

  Arch arch = Arch::k64Lmul8;
  bool dump_asm = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "64l1") arch = Arch::k64Lmul1;
    else if (a == "64l8") arch = Arch::k64Lmul8;
    else if (a == "32l8") arch = Arch::k32Lmul8;
    else if (a == "rvv") arch = Arch::k64PureRvv;
    else if (a == "fused") arch = Arch::k64Fused;
    else if (a == "--dump-asm") dump_asm = true;
    else {
      std::fprintf(stderr, "usage: %s [64l1|64l8|32l8|rvv|fused] [--dump-asm]\n",
                   argv[0]);
      return 2;
    }
  }

  const KeccakProgram prog =
      build_keccak_program({arch, 5, 24, /*single_round=*/true});
  std::printf("architecture : %s\n", std::string(arch_name(arch)).c_str());
  std::printf("program      : %zu instructions, %zu data bytes\n",
              prog.image.text.size(), prog.image.data.size());

  if (dump_asm) {
    std::printf("\n---- generated assembly " "----------------------------\n%s\n",
                prog.source.c_str());
  }

  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = arch_elen(arch);
  cfg.vector.ele_num = 5;
  sim::SimdProcessor proc(cfg);
  proc.load_program(prog.image);

  // Trace the round body between the round markers.
  bool in_round = false;
  usize traced = 0;
  proc.set_trace([&](u32 pc, const isa::Instruction& inst) {
    if (inst.op == isa::Opcode::kCsrrwi) {
      if (inst.rs1 == Markers::kRoundStart) in_round = true;
      if (inst.rs1 == Markers::kRoundEnd) in_round = false;
      return;
    }
    if (in_round && traced < 120) {
      std::printf("  [pc %04x] %s\n", pc, isa::disassemble(inst).c_str());
      ++traced;
    }
  });
  std::printf("\n---- one-round instruction trace ----\n");
  proc.run();

  std::printf("\n---- step cycle accounting ----\n");
  const u64 theta = proc.cycles_between(Markers::kRoundStart, Markers::kStepRho);
  const u64 rho = proc.cycles_between(Markers::kStepRho, Markers::kStepPi);
  const u64 pi = proc.cycles_between(Markers::kStepPi, Markers::kStepChi);
  const u64 chi = proc.cycles_between(Markers::kStepChi, Markers::kStepIota);
  const u64 iota = proc.cycles_between(Markers::kStepIota, Markers::kRoundEnd);
  std::printf("theta %3llu | rho %3llu | pi %3llu | chi %3llu | iota %3llu | "
              "round %3llu cycles\n",
              static_cast<unsigned long long>(theta),
              static_cast<unsigned long long>(rho),
              static_cast<unsigned long long>(pi),
              static_cast<unsigned long long>(chi),
              static_cast<unsigned long long>(iota),
              static_cast<unsigned long long>(
                  proc.cycles_between(Markers::kRoundStart, Markers::kRoundEnd)));

  std::printf("\n---- cycle profile (whole program, top 12) ----\n%s",
              proc.stats().cycle_profile(12).c_str());
  std::printf("vector share: %llu / %llu cycles (%.1f%%)\n",
              static_cast<unsigned long long>(proc.stats().vector_cycles),
              static_cast<unsigned long long>(proc.cycles()),
              100.0 * static_cast<double>(proc.stats().vector_cycles) /
                  static_cast<double>(proc.cycles()));
  return 0;
}
