// The paper's motivating workload (§1): CRYSTALS-Kyber public-matrix
// generation. Kyber1024 expands a 32-byte seed into a 4x4 matrix of
// polynomials by running SHAKE128 on seed‖(row,col) and rejection-sampling
// 12-bit coefficients modulo q = 3329.
//
// All 16 XOF inputs have identical length, so the vector accelerator can run
// SN of them in lockstep — exactly the parallelism the paper's vector
// register layout (Figure 5) provides. This example generates the matrix
// both ways, verifies bit-identical coefficients, and reports the
// accelerator cycle counts per SN configuration.
#include <cstdio>
#include <vector>

#include "kvx/core/parallel_sha3.hpp"
#include "kvx/keccak/sha3.hpp"

namespace {

using namespace kvx;

constexpr unsigned kK = 4;        // Kyber1024: 4x4 matrix
constexpr unsigned kN = 256;      // coefficients per polynomial
constexpr u16 kQ = 3329;
constexpr usize kXofBytes = 672;  // 4 SHAKE128 blocks; enough after rejection

/// Kyber-style rejection sampling of kN coefficients from an XOF stream.
std::vector<u16> sample_poly(std::span<const u8> stream) {
  std::vector<u16> coeffs;
  coeffs.reserve(kN);
  for (usize i = 0; i + 3 <= stream.size() && coeffs.size() < kN; i += 3) {
    const u16 d1 = static_cast<u16>(stream[i] | ((stream[i + 1] & 0x0F) << 8));
    const u16 d2 = static_cast<u16>((stream[i + 1] >> 4) | (stream[i + 2] << 4));
    if (d1 < kQ) coeffs.push_back(d1);
    if (d2 < kQ && coeffs.size() < kN) coeffs.push_back(d2);
  }
  return coeffs;
}

std::vector<std::vector<u8>> matrix_inputs(std::span<const u8> seed) {
  std::vector<std::vector<u8>> inputs;
  for (u8 i = 0; i < kK; ++i) {
    for (u8 j = 0; j < kK; ++j) {
      std::vector<u8> in(seed.begin(), seed.end());
      in.push_back(j);  // Kyber XOF(seed, j, i) ordering
      in.push_back(i);
      inputs.push_back(std::move(in));
    }
  }
  return inputs;
}

}  // namespace

int main() {
  std::vector<u8> seed(32);
  for (usize i = 0; i < seed.size(); ++i) seed[i] = static_cast<u8>(i * 7 + 1);
  const auto inputs = matrix_inputs(seed);

  // Reference: sequential host SHAKE128.
  std::vector<std::vector<u16>> reference;
  for (const auto& in : inputs) {
    reference.push_back(sample_poly(keccak::shake128(in, kXofBytes)));
  }

  std::printf("Kyber1024 matrix A: %u polynomials, %u coefficients each\n",
              kK * kK, kN);
  std::printf("%-26s | XOF streams | perm batches | accel cycles | cycles/poly\n",
              "configuration");
  std::printf("---------------------------------------------------------------"
              "----------------\n");

  for (unsigned sn : {1u, 2u, 4u}) {
    core::ParallelSha3 accel({core::Arch::k64Lmul8, 5 * sn, 24});
    const auto streams =
        accel.xof_batch(keccak::Sha3Function::kShake128, inputs, kXofBytes);

    // Verify every coefficient against the host reference.
    bool ok = true;
    for (usize k = 0; k < inputs.size(); ++k) {
      if (sample_poly(streams[k]) != reference[k]) ok = false;
    }

    const auto& st = accel.stats();
    std::printf("64-bit LMUL=8, SN=%-2u %s | %11zu | %12llu | %12llu | %11.0f\n",
                sn, ok ? "(ok)  " : "(FAIL)", inputs.size(),
                static_cast<unsigned long long>(st.permutation_batches),
                static_cast<unsigned long long>(st.accelerator_cycles),
                static_cast<double>(st.accelerator_cycles) / (kK * kK));
  }

  std::printf(
      "\nWith SN=4 the accelerator runs 4 XOF streams per permutation —\n"
      "matrix generation needs 1/4 the permutation batches of SN=1, which is\n"
      "exactly the parallel-state speedup the paper targets for PQC (§1/§5).\n");
  return 0;
}
