// Batch hashing throughput demo: hash a workload of messages with every
// SHA-3 family member on each accelerator architecture and report simulated
// cycles per message — the "which configuration should I build?" view a
// downstream integrator needs.
#include <cstdio>
#include <vector>

#include "kvx/common/rng.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/parallel_sha3.hpp"

int main() {
  using namespace kvx;
  using keccak::Sha3Function;

  // Workload: 24 messages of 512 bytes (e.g. firmware chunks to verify).
  constexpr usize kCount = 24;
  constexpr usize kBytes = 512;
  SplitMix64 rng(2026);
  std::vector<std::vector<u8>> messages(kCount);
  for (auto& m : messages) {
    m.resize(kBytes);
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }

  std::printf("Workload: %zu messages x %zu bytes\n\n", kCount, kBytes);
  std::printf("%-18s %-9s | batches | accel cycles | cycles/msg | vs SN=1\n",
              "architecture", "function");
  std::printf("-------------------------------------------------------------"
              "-----------------\n");

  for (const auto arch : {core::Arch::k64Lmul8, core::Arch::k32Lmul8}) {
    for (const Sha3Function f :
         {Sha3Function::kSha3_256, Sha3Function::kSha3_512}) {
      double base_cycles = 0;
      for (unsigned sn : {1u, 3u, 6u}) {
        core::ParallelSha3 accel({arch, 5 * sn, 24});
        const auto outs = accel.hash_batch(f, messages);
        // Spot-check one digest against the host library.
        const auto expect =
            keccak::hash(f, messages[0], keccak::digest_bytes(f));
        if (outs[0] != expect) {
          std::printf("DIGEST MISMATCH for %s!\n",
                      std::string(keccak::name(f)).c_str());
          return 1;
        }
        const auto& st = accel.stats();
        const double per_msg =
            static_cast<double>(st.accelerator_cycles) / kCount;
        if (sn == 1) base_cycles = per_msg;
        std::printf("%-18s %-9s |  SN=%u %3llu | %12llu | %10.0f | %5.2fx\n",
                    std::string(core::arch_name(arch)).c_str(),
                    std::string(keccak::name(f)).c_str(), sn,
                    static_cast<unsigned long long>(st.permutation_batches),
                    static_cast<unsigned long long>(st.accelerator_cycles),
                    per_msg, base_cycles / per_msg);
      }
    }
  }
  return 0;
}
