// Quickstart: hash a message with the host SHA-3 library, then run the same
// Keccak permutation workload on the simulated vector accelerator and
// compare results and cycle counts.
//
//   $ ./quickstart [message]
#include <cstdio>
#include <string>

#include "kvx/common/hex.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/keccak/sha3.hpp"

int main(int argc, char** argv) {
  using namespace kvx;

  const std::string message = argc > 1 ? argv[1] : "hello, keccak vectors";
  const std::vector<u8> msg(message.begin(), message.end());

  // 1. Plain host hashing with the golden-model library.
  const auto digest = keccak::sha3_256(msg);
  std::printf("SHA3-256(\"%s\")\n  host      : %s\n", message.c_str(),
              to_hex(digest).c_str());

  // 2. The same digest computed through the HW/SW co-design: sponge
  //    bookkeeping in software, Keccak-f[1600] on the simulated SIMD
  //    processor with the paper's custom vector instructions.
  core::ParallelSha3 accel({core::Arch::k64Lmul8, 5, 24});
  const auto accel_digest =
      accel.hash_batch(keccak::Sha3Function::kSha3_256, {{msg}});
  std::printf("  simulated : %s\n", to_hex(accel_digest[0]).c_str());
  std::printf("  match     : %s\n",
              to_hex(digest) == to_hex(accel_digest[0]) ? "yes" : "NO!");

  // 3. What did the accelerator cost?
  std::printf("\nAccelerator work: %llu permutation batch(es), %llu cycles\n",
              static_cast<unsigned long long>(accel.stats().permutation_batches),
              static_cast<unsigned long long>(accel.stats().accelerator_cycles));

  // 4. The headline numbers of the paper, reproduced in two lines.
  core::VectorKeccak v64({core::Arch::k64Lmul8, 5, 24});
  core::VectorKeccak v32({core::Arch::k32Lmul8, 5, 24});
  std::printf(
      "Keccak-f[1600] round latency: %llu cycles (64-bit LMUL=8, paper: 75)\n",
      static_cast<unsigned long long>(v64.measure_round_cycles()));
  std::printf(
      "                              %llu cycles (32-bit LMUL=8, paper: 147)\n",
      static_cast<unsigned long long>(v32.measure_round_cycles()));
  return 0;
}
