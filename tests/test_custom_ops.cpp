// Tests for the ten custom Keccak vector instructions, each checked against
// the golden-model step mappings, parameterized over the number of parallel
// Keccak states (SN).
#include <gtest/gtest.h>

#include "kvx/asm/assembler.hpp"
#include "kvx/common/bits.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::sim {
namespace {

SimdProcessor make(unsigned elen, unsigned ele_num) {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = elen;
  cfg.vector.ele_num = ele_num;
  cfg.dmem_bytes = 1 << 16;
  return SimdProcessor(cfg);
}

void run(SimdProcessor& p, const std::string& src) {
  p.load_program(assembler::assemble(src));
  p.run();
}

/// Fill register `reg` with per-state lanes: element 5i+j = f(i, j).
template <typename F>
void fill(SimdProcessor& p, unsigned reg, unsigned sn, unsigned sew, F f) {
  for (unsigned i = 0; i < sn; ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      p.vector().set_element(reg, 5 * i + j, sew, f(i, j));
    }
  }
}

class CustomOpsTest : public ::testing::TestWithParam<unsigned> {
 protected:
  unsigned sn() const { return GetParam(); }
  unsigned ele_num() const { return 5 * GetParam(); }
};

// --- vslidedownm / vslideupm -----------------------------------------------

TEST_P(CustomOpsTest, SlideDownModuloFive) {
  SimdProcessor p = make(64, ele_num());
  fill(p, 1, sn(), 64, [](unsigned i, unsigned j) { return 100 * i + j; });
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vslidedownm.vi v2, v1, 1
    vslidedownm.vi v3, v1, 2
    ebreak
  )");
  for (unsigned i = 0; i < sn(); ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      EXPECT_EQ(p.vector().get_element(2, 5 * i + j, 64),
                100 * i + (j + 1) % 5);
      EXPECT_EQ(p.vector().get_element(3, 5 * i + j, 64),
                100 * i + (j + 2) % 5);
    }
  }
}

TEST_P(CustomOpsTest, SlideUpModuloFive) {
  SimdProcessor p = make(64, ele_num());
  fill(p, 1, sn(), 64, [](unsigned i, unsigned j) { return 100 * i + j; });
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vslideupm.vi v2, v1, 1
    ebreak
  )");
  for (unsigned i = 0; i < sn(); ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      EXPECT_EQ(p.vector().get_element(2, 5 * i + j, 64),
                100 * i + (j + 4) % 5);
    }
  }
}

TEST(CustomOps, SlideLeavesNonStateElementsUnchanged) {
  // EleNum=16 fits 3 states; element 15 must stay untouched (paper §3.3).
  SimdProcessor p = make(64, 16);
  for (unsigned e = 0; e < 16; ++e) p.vector().set_element(1, e, 64, e);
  p.vector().set_element(2, 15, 64, 777);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vslidedownm.vi v2, v1, 1
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 14, 64), 10u);  // state 2 wraps
  EXPECT_EQ(p.vector().get_element(2, 15, 64), 777u); // untouched
}

// --- vrotup ------------------------------------------------------------------

TEST_P(CustomOpsTest, RotupRotatesAllStateLanes) {
  SimdProcessor p = make(64, ele_num());
  SplitMix64 rng(1);
  std::vector<u64> vals(5 * sn());
  for (auto& v : vals) v = rng.next();
  for (unsigned e = 0; e < 5 * sn(); ++e) p.vector().set_element(1, e, 64, vals[e]);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vrotup.vi v2, v1, 1
    vrotup.vi v3, v1, 17
    ebreak
  )");
  for (unsigned e = 0; e < 5 * sn(); ++e) {
    EXPECT_EQ(p.vector().get_element(2, e, 64), rotl64(vals[e], 1));
    EXPECT_EQ(p.vector().get_element(3, e, 64), rotl64(vals[e], 17));
  }
}

class RotupOffsetTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RotupOffsetTest, EveryEncodableOffsetMatchesRotl64) {
  const unsigned offset = GetParam();
  SimdProcessor p = make(64, 5);
  SplitMix64 rng(offset + 100);
  std::array<u64, 5> vals{};
  for (unsigned e = 0; e < 5; ++e) {
    vals[e] = rng.next();
    p.vector().set_element(1, e, 64, vals[e]);
  }
  run(p, strfmt(R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vrotup.vi v2, v1, %u
    ebreak
  )", offset));
  for (unsigned e = 0; e < 5; ++e) {
    EXPECT_EQ(p.vector().get_element(2, e, 64), rotl64(vals[e], offset));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, RotupOffsetTest, ::testing::Range(0u, 32u));

TEST(CustomOps, RotupRequires64BitArch) {
  SimdProcessor p = make(32, 5);
  p.load_program(assembler::assemble(R"(
    vsetvli x0, x0, e32, m1, tu, mu
    vrotup.vi v2, v1, 1
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

// --- v32lrotup / v32hrotup ------------------------------------------------------

TEST_P(CustomOpsTest, PairedRotup32MatchesRot64) {
  SimdProcessor p = make(32, ele_num());
  SplitMix64 rng(2);
  std::vector<u64> lanes(5 * sn());
  for (auto& v : lanes) v = rng.next();
  for (unsigned e = 0; e < 5 * sn(); ++e) {
    p.vector().set_element(1, e, 32, lo32(lanes[e]));   // v1 = lo
    p.vector().set_element(2, e, 32, hi32(lanes[e]));   // v2 = hi
  }
  run(p, R"(
    vsetvli x0, x0, e32, m1, tu, mu
    v32lrotup.vv v3, v2, v1
    v32hrotup.vv v4, v2, v1
    ebreak
  )");
  for (unsigned e = 0; e < 5 * sn(); ++e) {
    const u64 rot = rotl64(lanes[e], 1);
    EXPECT_EQ(p.vector().get_element(3, e, 32), lo32(rot));
    EXPECT_EQ(p.vector().get_element(4, e, 32), hi32(rot));
  }
}

// --- v64rho ----------------------------------------------------------------------

TEST_P(CustomOpsTest, Rho64SingleRowForm) {
  const auto& off = keccak::rho_offsets();
  for (unsigned row = 0; row < 5; ++row) {
    SimdProcessor p = make(64, ele_num());
    SplitMix64 rng(row + 3);
    std::vector<u64> vals(5 * sn());
    for (auto& v : vals) v = rng.next();
    for (unsigned e = 0; e < 5 * sn(); ++e) {
      p.vector().set_element(1, e, 64, vals[e]);
    }
    run(p, strfmt(R"(
      vsetvli x0, x0, e64, m1, tu, mu
      v64rho.vi v2, v1, %u
      ebreak
    )", row));
    for (unsigned e = 0; e < 5 * sn(); ++e) {
      EXPECT_EQ(p.vector().get_element(2, e, 64),
                rotl64(vals[e], off[row][e % 5]))
          << "row " << row << " elem " << e;
    }
  }
}

TEST_P(CustomOpsTest, Rho64AllRowsFormMatchesGoldenRho) {
  // imm = -1 with LMUL=8: all five planes via the hardware lmul_cnt.
  SimdProcessor p = make(64, ele_num());
  std::vector<keccak::State> states(sn());
  SplitMix64 rng(17);
  for (auto& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        p.vector().set_element(y, 5 * i + x, 64, states[i].lane(x, y));
      }
    }
  }
  run(p, strfmt(R"(
    li s5, %u
    vsetvli x0, s5, e64, m8, tu, mu
    v64rho.vi v0, v0, -1
    ebreak
  )", 5 * ele_num()));
  for (auto& s : states) keccak::rho(s);
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(p.vector().get_element(y, 5 * i + x, 64),
                  states[i].lane(x, y));
      }
    }
  }
}

// --- v32lrho / v32hrho --------------------------------------------------------------

TEST_P(CustomOpsTest, Rho32MatchesGoldenRho) {
  SimdProcessor p = make(32, ele_num());
  std::vector<keccak::State> states(sn());
  SplitMix64 rng(23);
  for (auto& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  // lo halves in v0..v4, hi halves in v16..v20.
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        p.vector().set_element(y, 5 * i + x, 32, lo32(states[i].lane(x, y)));
        p.vector().set_element(16 + y, 5 * i + x, 32,
                               hi32(states[i].lane(x, y)));
      }
    }
  }
  run(p, strfmt(R"(
    li s5, %u
    vsetvli x0, s5, e32, m8, tu, mu
    v32lrho.vv v8, v16, v0
    v32hrho.vv v24, v16, v0
    ebreak
  )", 5 * ele_num()));
  for (auto& s : states) keccak::rho(s);
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(p.vector().get_element(8 + y, 5 * i + x, 32),
                  lo32(states[i].lane(x, y)));
        EXPECT_EQ(p.vector().get_element(24 + y, 5 * i + x, 32),
                  hi32(states[i].lane(x, y)));
      }
    }
  }
}

// --- vpi -------------------------------------------------------------------------

TEST_P(CustomOpsTest, PiAllRowsMatchesGoldenPi) {
  SimdProcessor p = make(64, ele_num());
  std::vector<keccak::State> states(sn());
  SplitMix64 rng(31);
  for (auto& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        p.vector().set_element(y, 5 * i + x, 64, states[i].lane(x, y));
      }
    }
  }
  run(p, strfmt(R"(
    li s5, %u
    vsetvli x0, s5, e64, m8, tu, mu
    vpi.vi v8, v0, -1
    ebreak
  )", 5 * ele_num()));
  for (auto& s : states) keccak::pi(s);
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(p.vector().get_element(8 + y, 5 * i + x, 64),
                  states[i].lane(x, y))
            << "x=" << x << " y=" << y << " state=" << i;
      }
    }
  }
}

TEST(CustomOps, PiSingleRowFormWritesOneColumn) {
  // vpi.vi vd, vs2, r writes column r of the destination group only
  // (Figure 8 of the paper).
  SimdProcessor p = make(64, 5);
  for (unsigned x = 0; x < 5; ++x) p.vector().set_element(1, x, 64, 10 + x);
  // Pre-mark destination registers to detect unintended writes.
  for (unsigned r = 5; r <= 9; ++r) {
    for (unsigned e = 0; e < 5; ++e) p.vector().set_element(r, e, 64, 999);
  }
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vpi.vi v5, v1, 0
    ebreak
  )");
  // Source row 0 elements land in column 0: dest register 5 + 2x' mod 5.
  EXPECT_EQ(p.vector().get_element(5, 0, 64), 10u);  // x'=0 -> y=0
  EXPECT_EQ(p.vector().get_element(7, 0, 64), 11u);  // x'=1 -> y=2
  EXPECT_EQ(p.vector().get_element(9, 0, 64), 12u);  // x'=2 -> y=4
  EXPECT_EQ(p.vector().get_element(6, 0, 64), 13u);  // x'=3 -> y=1
  EXPECT_EQ(p.vector().get_element(8, 0, 64), 14u);  // x'=4 -> y=3
  // Other columns untouched.
  for (unsigned r = 5; r <= 9; ++r) {
    for (unsigned e = 1; e < 5; ++e) {
      EXPECT_EQ(p.vector().get_element(r, e, 64), 999u);
    }
  }
}

// --- viota -----------------------------------------------------------------------

TEST_P(CustomOpsTest, Iota64XorsRcIntoLane0) {
  SimdProcessor p = make(64, ele_num());
  fill(p, 1, sn(), 64, [](unsigned i, unsigned j) { return 1000 * i + j; });
  run(p, R"(
    li t0, 5
    vsetvli x0, x0, e64, m1, tu, mu
    viota.vx v1, v1, t0
    ebreak
  )");
  const u64 rc = keccak::round_constants()[5];
  for (unsigned i = 0; i < sn(); ++i) {
    EXPECT_EQ(p.vector().get_element(1, 5 * i, 64), (1000ull * i) ^ rc);
    for (unsigned j = 1; j < 5; ++j) {
      EXPECT_EQ(p.vector().get_element(1, 5 * i + j, 64), 1000ull * i + j);
    }
  }
}

TEST_P(CustomOpsTest, Iota32UsesSplitRcTable) {
  SimdProcessor p = make(32, ele_num());
  run(p, R"(
    li t0, 4        # lo half of RC[2]
    li t1, 5        # hi half of RC[2]
    vsetvli x0, x0, e32, m1, tu, mu
    viota.vx v1, v1, t0
    viota.vx v2, v2, t1
    ebreak
  )");
  const u64 rc = keccak::round_constants()[2];
  for (unsigned i = 0; i < sn(); ++i) {
    EXPECT_EQ(p.vector().get_element(1, 5 * i, 32), lo32(rc));
    EXPECT_EQ(p.vector().get_element(2, 5 * i, 32), hi32(rc));
  }
}

TEST(CustomOps, IotaIndexOutOfRangeFaults) {
  SimdProcessor p = make(64, 5);
  p.load_program(assembler::assemble(R"(
    li t0, 24
    vsetvli x0, x0, e64, m1, tu, mu
    viota.vx v1, v1, t0
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

// --- cycle costs (paper Algorithm 2/3 annotations) ---------------------------------

TEST(CustomOps, CycleCostsMatchPaper) {
  SimdProcessor p = make(64, 5);
  run(p, R"(
    li s1, 5
    li s5, 25
    li s3, 0
    vsetvli x0, s1, e64, m1, tu, mu
    csrwi 0x7C0, 1
    vslidedownm.vi v2, v1, 1
    csrwi 0x7C0, 2
    v64rho.vi v1, v1, 0
    csrwi 0x7C0, 3
    vpi.vi v5, v1, 0
    csrwi 0x7C0, 4
    viota.vx v1, v1, s3
    csrwi 0x7C0, 5
    vsetvli x0, s5, e64, m8, tu, mu
    csrwi 0x7C0, 6
    v64rho.vi v0, v0, -1
    csrwi 0x7C0, 7
    vpi.vi v8, v0, -1
    csrwi 0x7C0, 8
    ebreak
  )");
  EXPECT_EQ(p.cycles_between(1, 2), 2u);  // LMUL=1 custom slide: 2 cc
  EXPECT_EQ(p.cycles_between(2, 3), 2u);  // v64rho single row: 2 cc
  EXPECT_EQ(p.cycles_between(3, 4), 3u);  // vpi single row: 3 cc
  EXPECT_EQ(p.cycles_between(4, 5), 2u);  // viota: 2 cc
  EXPECT_EQ(p.cycles_between(6, 7), 6u);  // LMUL=8 v64rho: 6 cc
  EXPECT_EQ(p.cycles_between(7, 8), 7u);  // LMUL=8 vpi: 7 cc
}

// --- fused-instruction extension (paper §5 future work) ----------------------

TEST_P(CustomOpsTest, ThetacFusesParityCombine) {
  SimdProcessor p = make(64, ele_num());
  SplitMix64 rng(41);
  std::vector<u64> b(5 * sn());
  for (auto& v : b) v = rng.next();
  for (unsigned e = 0; e < 5 * sn(); ++e) p.vector().set_element(1, e, 64, b[e]);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vthetac.vv v2, v1
    ebreak
  )");
  for (unsigned i = 0; i < sn(); ++i) {
    for (unsigned j = 0; j < 5; ++j) {
      const u64 expect =
          b[5 * i + (j + 4) % 5] ^ rotl64(b[5 * i + (j + 1) % 5], 1);
      EXPECT_EQ(p.vector().get_element(2, 5 * i + j, 64), expect);
    }
  }
}

TEST_P(CustomOpsTest, RhopiEqualsRhoThenPi) {
  SimdProcessor p = make(64, ele_num());
  std::vector<keccak::State> states(sn());
  SplitMix64 rng(43);
  for (auto& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        p.vector().set_element(y, 5 * i + x, 64, states[i].lane(x, y));
      }
    }
  }
  run(p, strfmt(R"(
    li s5, %u
    vsetvli x0, s5, e64, m8, tu, mu
    vrhopi.vi v8, v0, -1
    ebreak
  )", 5 * ele_num()));
  for (auto& s : states) {
    keccak::rho(s);
    keccak::pi(s);
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(p.vector().get_element(8 + y, 5 * i + x, 64),
                  states[i].lane(x, y));
      }
    }
  }
}

TEST_P(CustomOpsTest, ChiSingleInstructionMatchesGolden) {
  SimdProcessor p = make(64, ele_num());
  std::vector<keccak::State> states(sn());
  SplitMix64 rng(47);
  for (auto& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        p.vector().set_element(8 + y, 5 * i + x, 64, states[i].lane(x, y));
      }
    }
  }
  run(p, strfmt(R"(
    li s5, %u
    vsetvli x0, s5, e64, m8, tu, mu
    vchi.vv v0, v8
    ebreak
  )", 5 * ele_num()));
  for (auto& s : states) keccak::chi(s);
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn(); ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(p.vector().get_element(y, 5 * i + x, 64),
                  states[i].lane(x, y));
      }
    }
  }
}

TEST(CustomOps, Chi32BitHalvesIndependent) {
  // chi is bitwise, so the single-instruction form works on 32-bit
  // half-lanes exactly like on full lanes.
  SimdProcessor p = make(32, 5);
  keccak::State st;
  SplitMix64 rng(53);
  for (u64& lane : st.flat()) lane = rng.next();
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      p.vector().set_element(8 + y, x, 32, lo32(st.lane(x, y)));
      p.vector().set_element(16 + y, x, 32, hi32(st.lane(x, y)));
    }
  }
  run(p, R"(
    li s5, 25
    vsetvli x0, s5, e32, m8, tu, mu
    vchi.vv v0, v8
    vchi.vv v24, v16
    ebreak
  )");
  keccak::chi(st);
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      EXPECT_EQ(p.vector().get_element(y, x, 32), lo32(st.lane(x, y)));
      EXPECT_EQ(p.vector().get_element(24 + y, x, 32), hi32(st.lane(x, y)));
    }
  }
}

TEST(CustomOps, FusedCycleCosts) {
  SimdProcessor p = make(64, 5);
  run(p, R"(
    li s5, 25
    vsetvli x0, x0, e64, m1, tu, mu
    csrwi 0x7C0, 1
    vthetac.vv v2, v1
    csrwi 0x7C0, 2
    vsetvli x0, s5, e64, m8, tu, mu
    csrwi 0x7C0, 3
    vrhopi.vi v8, v0, -1
    csrwi 0x7C0, 4
    vchi.vv v0, v8
    csrwi 0x7C0, 5
    ebreak
  )");
  EXPECT_EQ(p.cycles_between(1, 2), 2u);  // vthetac at LMUL=1
  EXPECT_EQ(p.cycles_between(3, 4), 7u);  // fused rho+pi, column write-back
  EXPECT_EQ(p.cycles_between(4, 5), 7u);  // vchi: 6 + neighbour network
}

TEST(CustomOps, FusedOpsRequire64BitWhereDocumented) {
  for (const char* inst : {"vthetac.vv v2, v1", "vrhopi.vi v8, v0, 0"}) {
    SimdProcessor p = make(32, 5);
    p.load_program(assembler::assemble(
        std::string("vsetvli x0, x0, e32, m1, tu, mu\n") + inst +
        "\nebreak"));
    EXPECT_THROW(p.run(), SimError) << inst;
  }
}

INSTANTIATE_TEST_SUITE_P(StateCounts, CustomOpsTest, ::testing::Values(1, 3, 6),
                         [](const auto& info) {
                           return "SN" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace kvx::sim
