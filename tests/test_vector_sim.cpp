// Tests for the vector processing unit: vsetvli semantics, register file
// access, the RVV arithmetic subset, LMUL grouping, masking, tail policy,
// and the three vector memory addressing modes.
#include <gtest/gtest.h>

#include "kvx/asm/assembler.hpp"
#include "kvx/common/error.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::sim {
namespace {

SimdProcessor make64(unsigned ele_num = 5) {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = ele_num;
  cfg.dmem_bytes = 1 << 16;
  return SimdProcessor(cfg);
}

void run(SimdProcessor& p, const std::string& src) {
  assembler::Options opts;
  opts.data_base = 0x1000;
  p.load_program(assembler::assemble(src, opts));
  p.run();
}

TEST(VectorConfig, Validation) {
  VectorConfig bad;
  bad.elen_bits = 16;
  EXPECT_THROW(VectorUnit vu(bad), Error);
  VectorConfig bad_sn;
  bad_sn.elen_bits = 64;
  bad_sn.ele_num = 5;
  bad_sn.sn = 2;  // 10 > 5
  EXPECT_THROW(VectorUnit vu(bad_sn), Error);
  VectorConfig ok;
  ok.ele_num = 16;
  EXPECT_EQ(VectorConfig{ok}.effective_sn(), 3u);
}

TEST(VectorRegfile, ElementAccess) {
  VectorConfig cfg;
  cfg.elen_bits = 64;
  cfg.ele_num = 5;
  VectorUnit vu(cfg);
  vu.set_element(3, 2, 64, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(vu.get_element(3, 2, 64), 0xDEADBEEFCAFEF00Dull);
  // 32-bit view of the same bytes.
  EXPECT_EQ(vu.get_element(3, 4, 32), 0xCAFEF00Du);
  EXPECT_EQ(vu.get_element(3, 5, 32), 0xDEADBEEFu);
}

TEST(VectorRegfile, RegisterBytesRoundTrip) {
  VectorConfig cfg;
  cfg.elen_bits = 32;
  cfg.ele_num = 10;
  VectorUnit vu(cfg);
  std::vector<u8> bytes(40);
  for (usize i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<u8>(i);
  vu.set_register(7, bytes);
  EXPECT_EQ(vu.get_register(7), bytes);
  vu.clear_registers();
  EXPECT_EQ(vu.get_register(7), std::vector<u8>(40, 0));
}

TEST(Vsetvli, SetsVlAndReturnsIt) {
  SimdProcessor p = make64(10);
  run(p, R"(
    li s1, 7
    vsetvli a0, s1, e64, m1, tu, mu
    ebreak
  )");
  EXPECT_EQ(p.scalar().regs().read(10), 7u);
  EXPECT_EQ(p.vector().vl(), 7u);
}

TEST(Vsetvli, ClampsToVlmax) {
  SimdProcessor p = make64(10);
  run(p, R"(
    li s1, 99
    vsetvli a0, s1, e64, m1, tu, mu
    li s1, 99
    vsetvli a1, s1, e64, m8, tu, mu
    ebreak
  )");
  EXPECT_EQ(p.scalar().regs().read(10), 10u);  // VLMAX m1 = 10
  EXPECT_EQ(p.scalar().regs().read(11), 80u);  // VLMAX m8 = 80
}

TEST(Vsetvli, X0RequestsVlmax) {
  SimdProcessor p = make64(10);
  run(p, R"(
    vsetvli a0, x0, e64, m2, tu, mu
    ebreak
  )");
  EXPECT_EQ(p.scalar().regs().read(10), 20u);
}

TEST(Vsetvli, SewAboveElenRejected) {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;
  cfg.vector.ele_num = 10;
  SimdProcessor p(cfg);
  p.load_program(assembler::assemble(R"(
    vsetvli a0, x0, e64, m1, tu, mu
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(VArith, VxorVvElementwise) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) {
    p.vector().set_element(1, i, 64, 0x1111111111111111ull * (i + 1));
    p.vector().set_element(2, i, 64, 0x00000000FFFFFFFFull);
  }
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vxor.vv v3, v1, v2
    ebreak
  )");
  for (usize i = 0; i < 5; ++i) {
    EXPECT_EQ(p.vector().get_element(3, i, 64),
              (0x1111111111111111ull * (i + 1)) ^ 0x00000000FFFFFFFFull);
  }
}

TEST(VArith, VxorVxSignExtendsScalar) {
  // The paper relies on this: s2 = -1 and vxor.vx performs a 64-bit NOT.
  SimdProcessor p = make64(5);
  p.vector().set_element(1, 0, 64, 0x0123456789ABCDEFull);
  run(p, R"(
    li s2, -1
    vsetvli x0, x0, e64, m1, tu, mu
    vxor.vx v2, v1, s2
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 64), ~0x0123456789ABCDEFull);
}

TEST(VArith, VaddViAndVmv) {
  SimdProcessor p = make64(5);
  p.vector().set_element(1, 2, 64, 100);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vadd.vi v2, v1, -3
    vmv.v.i v3, 9
    li t0, 1234
    vmv.v.x v4, t0
    vmv.v.v v5, v2
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 2, 64), 97u);
  EXPECT_EQ(p.vector().get_element(3, 4, 64), 9u);
  EXPECT_EQ(p.vector().get_element(4, 0, 64), 1234u);
  EXPECT_EQ(p.vector().get_element(5, 2, 64), 97u);
}

TEST(VArith, ShiftsUseLowBitsOfShiftAmount) {
  SimdProcessor p = make64(5);
  p.vector().set_element(1, 0, 64, 0x8000000000000001ull);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vsll.vi v2, v1, 1
    vsrl.vi v3, v1, 1
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 64), 2u);
  EXPECT_EQ(p.vector().get_element(3, 0, 64), 0x4000000000000000ull);
}

TEST(VArith, SewTruncation32) {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;
  cfg.vector.ele_num = 5;
  cfg.dmem_bytes = 1 << 16;
  SimdProcessor p(cfg);
  p.vector().set_element(1, 0, 32, 0xFFFFFFFFu);
  run(p, R"(
    vsetvli x0, x0, e32, m1, tu, mu
    vadd.vi v2, v1, 1
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 32), 0u);  // wraps at 32 bits
}

TEST(VArith, LmulGroupingSpansRegisters) {
  SimdProcessor p = make64(5);
  // 10 elements at LMUL=2 span v2 and v3.
  for (usize i = 0; i < 5; ++i) {
    p.vector().set_element(2, i, 64, i);
    p.vector().set_element(3, i, 64, 100 + i);
  }
  run(p, R"(
    li s1, 10
    vsetvli x0, s1, e64, m2, tu, mu
    vadd.vi v4, v2, 1
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(4, 4, 64), 5u);
  EXPECT_EQ(p.vector().get_element(5, 0, 64), 101u);
  EXPECT_EQ(p.vector().get_element(5, 4, 64), 105u);
}

TEST(VArith, TailUndisturbed) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(2, i, 64, 7);
  run(p, R"(
    li s1, 3
    vsetvli x0, s1, e64, m1, tu, mu
    vmv.v.i v2, 1
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 2, 64), 1u);
  EXPECT_EQ(p.vector().get_element(2, 3, 64), 7u);  // tail untouched
  EXPECT_EQ(p.vector().get_element(2, 4, 64), 7u);
}

TEST(VArith, MaskingSkipsZeroBits) {
  SimdProcessor p = make64(5);
  // v0 mask = 0b10101: elements 0, 2, 4 active.
  std::vector<u8> mask(5 * 8, 0);
  mask[0] = 0b10101;
  p.vector().set_register(0, mask);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(2, i, 64, 50);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vadd.vi v2, v2, 1, v0.t
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 64), 51u);
  EXPECT_EQ(p.vector().get_element(2, 1, 64), 50u);
  EXPECT_EQ(p.vector().get_element(2, 2, 64), 51u);
  EXPECT_EQ(p.vector().get_element(2, 3, 64), 50u);
  EXPECT_EQ(p.vector().get_element(2, 4, 64), 51u);
}

TEST(VArith, VrgatherIndexesSource) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) {
    p.vector().set_element(1, i, 64, 100 + i);
    p.vector().set_element(2, i, 64, 4 - i);  // reverse indices
  }
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vrgather.vv v3, v1, v2
    ebreak
  )");
  for (usize i = 0; i < 5; ++i) {
    EXPECT_EQ(p.vector().get_element(3, i, 64), 104 - i);
  }
}

TEST(VArith, VrgatherOutOfRangeGivesZero) {
  SimdProcessor p = make64(5);
  p.vector().set_element(1, 0, 64, 42);
  p.vector().set_element(2, 0, 64, 77);  // index beyond VLMAX
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vrgather.vv v3, v1, v2
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(3, 0, 64), 0u);
}

TEST(VArith, StandardSlides) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) {
    p.vector().set_element(1, i, 64, 10 + i);
    p.vector().set_element(3, i, 64, 900 + i);
  }
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vslidedown.vi v2, v1, 2
    vslideup.vi v3, v1, 2
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 64), 12u);
  EXPECT_EQ(p.vector().get_element(2, 2, 64), 14u);
  EXPECT_EQ(p.vector().get_element(2, 3, 64), 0u);   // slid past vl
  EXPECT_EQ(p.vector().get_element(3, 0, 64), 900u);  // below offset: kept
  EXPECT_EQ(p.vector().get_element(3, 2, 64), 10u);
  EXPECT_EQ(p.vector().get_element(3, 4, 64), 12u);
}

// --- vector memory -------------------------------------------------------------

TEST(VMem, UnitStrideLoadStore64) {
  SimdProcessor p = make64(5);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    la a0, src
    vle64.v v1, (a0)
    la a1, dst
    vse64.v v1, (a1)
    ebreak
.data
src:
    .dword 0x1111111111111111, 0x2222222222222222, 3, 4, 5
dst:
    .zero 40
  )");
  const u32 dst = 0x1000 + 40;
  EXPECT_EQ(p.dmem().read64(dst), 0x1111111111111111ull);
  EXPECT_EQ(p.dmem().read64(dst + 8), 0x2222222222222222ull);
  EXPECT_EQ(p.dmem().read64(dst + 32), 5u);
}

TEST(VMem, StridedLoad) {
  SimdProcessor p = make64(5);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    la a0, src
    li t0, 16
    vlse64.v v1, (a0), t0
    ebreak
.data
src:
    .dword 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
  )");
  for (usize i = 0; i < 5; ++i) {
    EXPECT_EQ(p.vector().get_element(1, i, 64), 2 * i + 1);
  }
}

TEST(VMem, StridedStore32) {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;
  cfg.vector.ele_num = 5;
  cfg.dmem_bytes = 1 << 16;
  SimdProcessor p(cfg);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 32, 0xA0 + i);
  run(p, R"(
    vsetvli x0, x0, e32, m1, tu, mu
    la a0, dst
    li t0, 8
    vsse32.v v1, (a0), t0
    ebreak
.data
dst:
    .zero 80
  )");
  for (u32 i = 0; i < 5; ++i) {
    EXPECT_EQ(p.dmem().read32(0x1000 + 8 * i), 0xA0u + i);
  }
}

TEST(VMem, IndexedLoadGathersHiLoWords) {
  // The paper's §3.2 use case: pull the low 32-bit words of 64-bit lanes.
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;
  cfg.vector.ele_num = 5;
  cfg.dmem_bytes = 1 << 16;
  SimdProcessor p(cfg);
  run(p, R"(
    vsetvli x0, x0, e32, m1, tu, mu
    la a0, idx_lo
    vle32.v v30, (a0)
    la a0, idx_hi
    vle32.v v31, (a0)
    la a0, lanes
    vluxei32.v v1, (a0), v30
    vluxei32.v v2, (a0), v31
    ebreak
.data
lanes:
    .dword 0xAAAAAAAA00000001, 0xBBBBBBBB00000002, 0xCCCCCCCC00000003
    .dword 0xDDDDDDDD00000004, 0xEEEEEEEE00000005
idx_lo:
    .word 0, 8, 16, 24, 32
idx_hi:
    .word 4, 12, 20, 28, 36
  )");
  for (usize i = 0; i < 5; ++i) {
    EXPECT_EQ(p.vector().get_element(1, i, 32), i + 1);
  }
  EXPECT_EQ(p.vector().get_element(2, 0, 32), 0xAAAAAAAAu);
  EXPECT_EQ(p.vector().get_element(2, 4, 32), 0xEEEEEEEEu);
}

TEST(VMem, IndexedStoreScatters) {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;
  cfg.vector.ele_num = 5;
  cfg.dmem_bytes = 1 << 16;
  SimdProcessor p(cfg);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 32, 0x50 + i);
  run(p, R"(
    vsetvli x0, x0, e32, m1, tu, mu
    la a0, idx
    vle32.v v30, (a0)
    la a0, dst
    vsuxei32.v v1, (a0), v30
    ebreak
.data
dst:
    .zero 64
idx:
    .word 60, 0, 32, 16, 4
  )");
  EXPECT_EQ(p.dmem().read32(0x1000 + 60), 0x50u);
  EXPECT_EQ(p.dmem().read32(0x1000 + 0), 0x51u);
  EXPECT_EQ(p.dmem().read32(0x1000 + 32), 0x52u);
  EXPECT_EQ(p.dmem().read32(0x1000 + 16), 0x53u);
  EXPECT_EQ(p.dmem().read32(0x1000 + 4), 0x54u);
}

// --- extended RVV subset: min/max, compares, merge, reductions --------------------

TEST(VArith, MinMaxSignedAndUnsigned) {
  SimdProcessor p = make64(5);
  p.vector().set_element(1, 0, 64, static_cast<u64>(-5));  // huge unsigned
  p.vector().set_element(2, 0, 64, 3);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vmin.vv v3, v1, v2
    vmax.vv v4, v1, v2
    vminu.vv v5, v1, v2
    vmaxu.vv v6, v1, v2
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(3, 0, 64), static_cast<u64>(-5));  // signed min
  EXPECT_EQ(p.vector().get_element(4, 0, 64), 3u);                    // signed max
  EXPECT_EQ(p.vector().get_element(5, 0, 64), 3u);                    // unsigned min
  EXPECT_EQ(p.vector().get_element(6, 0, 64), static_cast<u64>(-5));  // unsigned max
}

TEST(VArith, MinMaxVxForms) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 64, 10 * i);
  run(p, R"(
    li t0, 25
    vsetvli x0, x0, e64, m1, tu, mu
    vmin.vx v2, v1, t0
    vmax.vx v3, v1, t0
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 1, 64), 10u);
  EXPECT_EQ(p.vector().get_element(2, 4, 64), 25u);
  EXPECT_EQ(p.vector().get_element(3, 1, 64), 25u);
  EXPECT_EQ(p.vector().get_element(3, 4, 64), 40u);
}

TEST(VArith, CompareWritesMaskBits) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 64, i);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vmseq.vi v2, v1, 2
    vmsne.vi v3, v1, 2
    ebreak
  )");
  // Element 2 equal -> bit 2 set in v2; inverse in v3.
  EXPECT_EQ(p.vector().get_element(2, 0, 8) & 0x1Fu, 0b00100u);
  EXPECT_EQ(p.vector().get_element(3, 0, 8) & 0x1Fu, 0b11011u);
}

TEST(VArith, SignedVsUnsignedCompare) {
  SimdProcessor p = make64(5);
  p.vector().set_element(1, 0, 64, static_cast<u64>(-1));
  p.vector().set_element(2, 0, 64, 1);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vmslt.vv v3, v1, v2    # -1 < 1 signed -> true
    vmsltu.vv v4, v1, v2   # huge < 1 unsigned -> false
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(3, 0, 8) & 1u, 1u);
  EXPECT_EQ(p.vector().get_element(4, 0, 8) & 1u, 0u);
}

TEST(VArith, CompareThenMergeSelectsPerElement) {
  // The canonical compare+merge idiom: clamp elements > 100 to 0.
  SimdProcessor p = make64(5);
  const u64 vals[5] = {50, 150, 99, 101, 100};
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 64, vals[i]);
  run(p, R"(
    li t0, 100
    vsetvli x0, x0, e64, m1, tu, mu
    vmv.v.i v3, 0
    vmsltu.vx v0, v1, t0      # mask: v1[i] < 100
    vmerge.vvm v4, v3, v1, v0 # masked -> keep v1, else 0
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(4, 0, 64), 50u);
  EXPECT_EQ(p.vector().get_element(4, 1, 64), 0u);
  EXPECT_EQ(p.vector().get_element(4, 2, 64), 99u);
  EXPECT_EQ(p.vector().get_element(4, 3, 64), 0u);
  EXPECT_EQ(p.vector().get_element(4, 4, 64), 0u);
}

TEST(VArith, MergeVxAndViForms) {
  SimdProcessor p = make64(5);
  std::vector<u8> mask(5 * 8, 0);
  mask[0] = 0b01010;
  p.vector().set_register(0, mask);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 64, 7);
  run(p, R"(
    li t0, 42
    vsetvli x0, x0, e64, m1, tu, mu
    vmerge.vxm v2, v1, t0, v0
    vmerge.vim v3, v1, -3, v0
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 64), 7u);
  EXPECT_EQ(p.vector().get_element(2, 1, 64), 42u);
  EXPECT_EQ(p.vector().get_element(3, 1, 64), static_cast<u64>(-3));
  EXPECT_EQ(p.vector().get_element(3, 2, 64), 7u);
}

TEST(VArith, Reductions) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) {
    p.vector().set_element(1, i, 64, i + 1);        // 1..5
    p.vector().set_element(2, i, 64, 0xF0 | i);     // for and/or/xor
  }
  p.vector().set_element(3, 0, 64, 100);            // scalar seed vs1[0]
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vredsum.vs v4, v1, v3
    vredxor.vs v5, v2, v3
    vredand.vs v6, v2, v2
    vredor.vs v7, v2, v2
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(4, 0, 64), 100u + 15u);
  const u64 x = 100 ^ 0xF0 ^ 0xF1 ^ 0xF2 ^ 0xF3 ^ 0xF4;
  EXPECT_EQ(p.vector().get_element(5, 0, 64), x);
  EXPECT_EQ(p.vector().get_element(6, 0, 64),
            0xF0ull & 0xF0 & 0xF1 & 0xF2 & 0xF3 & 0xF4);
  EXPECT_EQ(p.vector().get_element(7, 0, 64),
            0xF0ull | 0xF0 | 0xF1 | 0xF2 | 0xF3 | 0xF4);
}

TEST(VArith, ReductionLeavesTailUntouched) {
  SimdProcessor p = make64(5);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(4, i, 64, 9999);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vredsum.vs v4, v1, v1
    ebreak
  )");
  for (usize i = 1; i < 5; ++i) {
    EXPECT_EQ(p.vector().get_element(4, i, 64), 9999u);
  }
}

TEST(VArith, MaskedReductionSkipsInactive) {
  SimdProcessor p = make64(5);
  std::vector<u8> mask(5 * 8, 0);
  mask[0] = 0b00011;  // only elements 0, 1 active
  p.vector().set_register(0, mask);
  for (usize i = 0; i < 5; ++i) p.vector().set_element(1, i, 64, 10);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vredsum.vs v2, v1, v3, v0.t
    ebreak
  )");
  EXPECT_EQ(p.vector().get_element(2, 0, 64), 20u);
}

// --- cycle model -----------------------------------------------------------------

TEST(VCycles, ArithCostsMatchPaperAnnotations) {
  // LMUL=1 arithmetic: 2 cc. LMUL=8 with VL=5*EleNum: 6 cc. vsetvli: 2 cc.
  SimdProcessor p = make64(5);
  run(p, R"(
    li s1, 5
    li s5, 25
    csrwi 0x7C0, 1
    vsetvli x0, s1, e64, m1, tu, mu
    csrwi 0x7C0, 2
    vxor.vv v1, v2, v3
    csrwi 0x7C0, 3
    vsetvli x0, s5, e64, m8, tu, mu
    vxor.vv v8, v8, v16
    csrwi 0x7C0, 4
    ebreak
  )");
  EXPECT_EQ(p.cycles_between(1, 2), 2u);  // vsetvli
  EXPECT_EQ(p.cycles_between(2, 3), 2u);  // LMUL=1 vxor
  EXPECT_EQ(p.cycles_between(3, 4), 2u + 6u);  // vsetvli + LMUL=8 vxor
}

TEST(VCycles, VectorInstructionsCounted) {
  SimdProcessor p = make64(5);
  run(p, R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vxor.vv v1, v1, v1
    ebreak
  )");
  EXPECT_EQ(p.stats().vector_instructions, 2u);
  EXPECT_EQ(p.stats().scalar_instructions, 1u);
}

}  // namespace
}  // namespace kvx::sim
