// Tests for the batched SHA-3/SHAKE co-design API: results must be
// bit-identical to the host library for every function, batch size, and
// message-length mix.
#include <gtest/gtest.h>

#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/keccak/sp800_185.hpp"

namespace kvx::core {
namespace {

using keccak::Sha3Function;

std::vector<std::vector<u8>> random_messages(usize n, usize len, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<u8>> msgs(n);
  for (auto& m : msgs) {
    m.resize(len);
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }
  return msgs;
}

TEST(ParallelSha3, SingleMessageMatchesHost) {
  ParallelSha3 ps({Arch::k64Lmul8, 5, 24});
  const auto msgs = random_messages(1, 100, 1);
  const auto outs = ps.hash_batch(Sha3Function::kSha3_256, msgs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(to_hex(outs[0]), to_hex(keccak::sha3_256(msgs[0])));
}

class BatchTest : public ::testing::TestWithParam<Sha3Function> {};

TEST_P(BatchTest, FullBatchMatchesHost) {
  const Sha3Function f = GetParam();
  ParallelSha3 ps({Arch::k64Lmul8, 15, 24});  // SN = 3
  const auto msgs = random_messages(7, 200, 2);  // 3 groups: 3+3+1
  const usize out_len =
      keccak::digest_bytes(f) ? keccak::digest_bytes(f) : 64;
  const auto outs = ps.xof_batch(f, msgs, out_len);
  ASSERT_EQ(outs.size(), msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(keccak::hash(f, msgs[i], out_len)))
        << name(f) << " msg " << i;
  }
}

TEST_P(BatchTest, RateBoundaryLengths) {
  // Message lengths straddling the function's rate exercise the padding
  // corner cases through the full accelerator pipeline.
  const Sha3Function f = GetParam();
  ParallelSha3 ps({Arch::k64Lmul8, 10, 24});
  const usize rate = keccak::rate_bytes(f);
  const usize out_len = keccak::digest_bytes(f) ? keccak::digest_bytes(f) : 32;
  std::vector<std::vector<u8>> msgs;
  for (usize len : {rate - 1, rate, rate + 1, 2 * rate - 1, 2 * rate}) {
    msgs.push_back(random_messages(1, len, len)[0]);
  }
  const auto outs = ps.xof_batch(f, msgs, out_len);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(keccak::hash(f, msgs[i], out_len)))
        << name(f) << " len " << msgs[i].size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, BatchTest,
    ::testing::Values(Sha3Function::kSha3_224, Sha3Function::kSha3_256,
                      Sha3Function::kSha3_384, Sha3Function::kSha3_512,
                      Sha3Function::kShake128, Sha3Function::kShake256),
    [](const auto& info) { return std::string(name(info.param)).substr(0, 4) +
                                  std::to_string(static_cast<int>(info.param)); });

TEST(ParallelSha3, MixedLengthsGroupedCorrectly) {
  ParallelSha3 ps({Arch::k64Lmul8, 15, 24});
  std::vector<std::vector<u8>> msgs;
  for (usize len : {0u, 10u, 10u, 200u, 10u, 0u, 137u}) {
    msgs.push_back(random_messages(1, len, len + 50)[0]);
  }
  const auto outs = ps.hash_batch(Sha3Function::kSha3_256, msgs);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(keccak::sha3_256(msgs[i]))) << i;
  }
}

TEST(ParallelSha3, MultiBlockMessages) {
  // Longer than one rate block (136 for SHA3-256): exercises the lockstep
  // absorb loop.
  ParallelSha3 ps({Arch::k64Lmul8, 10, 24});
  const auto msgs = random_messages(2, 450, 9);
  const auto outs = ps.hash_batch(Sha3Function::kSha3_256, msgs);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(keccak::sha3_256(msgs[i])));
  }
}

TEST(ParallelSha3, LongXofSqueeze) {
  // Multi-block squeeze (out_len spans several rate blocks).
  ParallelSha3 ps({Arch::k32Lmul8, 10, 24});
  const auto msgs = random_messages(2, 32, 5);
  const auto outs = ps.xof_batch(Sha3Function::kShake128, msgs, 500);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]),
              to_hex(keccak::shake128(msgs[i], 500)));
  }
}

TEST(ParallelSha3, EmptyBatch) {
  ParallelSha3 ps({Arch::k64Lmul8, 5, 24});
  const auto outs =
      ps.hash_batch(Sha3Function::kSha3_256, std::vector<std::vector<u8>>{});
  EXPECT_TRUE(outs.empty());
}

TEST(ParallelSha3, StatsAccumulate) {
  ParallelSha3 ps({Arch::k64Lmul8, 15, 24});
  const auto msgs = random_messages(3, 50, 4);
  (void)ps.hash_batch(Sha3Function::kSha3_256, msgs);
  const auto& st = ps.stats();
  EXPECT_EQ(st.permutation_batches, 1u);  // one group, one block
  EXPECT_EQ(st.permutations, 3u);
  EXPECT_GT(st.accelerator_cycles, 0u);
  ps.reset_stats();
  EXPECT_EQ(ps.stats().permutations, 0u);
}

TEST(ParallelSha3, BatchOnAccurate32BitArch) {
  ParallelSha3 ps({Arch::k32Lmul8, 30, 24});  // SN = 6
  const auto msgs = random_messages(6, 64, 6);
  const auto outs = ps.hash_batch(Sha3Function::kSha3_512, msgs);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(keccak::sha3_512(msgs[i])));
  }
}

TEST(ParallelSha3, KyberStyleSeedExpansion) {
  // The paper's motivating workload (§1): expand seed ‖ (i, j) with
  // SHAKE128 for a 4x4 matrix, 16 equal-length inputs in lockstep.
  ParallelSha3 ps({Arch::k64Lmul8, 20, 24});  // SN = 4
  std::vector<std::vector<u8>> inputs;
  SplitMix64 rng(99);
  std::vector<u8> seed(32);
  for (u8& b : seed) b = static_cast<u8>(rng.next());
  for (u8 i = 0; i < 4; ++i) {
    for (u8 j = 0; j < 4; ++j) {
      auto in = seed;
      in.push_back(i);
      in.push_back(j);
      inputs.push_back(std::move(in));
    }
  }
  const auto outs = ps.xof_batch(Sha3Function::kShake128, inputs, 168);
  for (usize k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(to_hex(outs[k]), to_hex(keccak::shake128(inputs[k], 168)));
  }
  // 16 messages at SN=4 -> 4 lockstep groups, 1 permutation each.
  EXPECT_EQ(ps.stats().permutation_batches, 4u);
  EXPECT_EQ(ps.stats().permutations, 16u);
}

// --- SP 800-185 batching --------------------------------------------------------

TEST(ParallelSha3, CshakeBatchMatchesHost) {
  ParallelSha3 ps({Arch::k64Lmul8, 15, 24});
  const auto msgs = random_messages(4, 77, 11);
  const std::vector<u8> n_str = {'A', 'p', 'p'};
  const std::vector<u8> s_str = {'v', '2'};
  for (unsigned bits : {128u, 256u}) {
    const auto outs = ps.cshake_batch(bits, msgs, 48, n_str, s_str);
    for (usize i = 0; i < msgs.size(); ++i) {
      const auto expect = bits == 128
                              ? keccak::cshake128(msgs[i], 48, n_str, s_str)
                              : keccak::cshake256(msgs[i], 48, n_str, s_str);
      EXPECT_EQ(to_hex(outs[i]), to_hex(expect)) << bits << " msg " << i;
    }
  }
}

TEST(ParallelSha3, CshakeBatchEmptyNsDegradesToShake) {
  ParallelSha3 ps({Arch::k64Lmul8, 5, 24});
  const auto msgs = random_messages(1, 30, 12);
  const auto outs = ps.cshake_batch(128, msgs, 32, {}, {});
  EXPECT_EQ(to_hex(outs[0]), to_hex(keccak::shake128(msgs[0], 32)));
}

TEST(ParallelSha3, KmacBatchMatchesHost) {
  ParallelSha3 ps({Arch::k64Lmul8, 15, 24});
  const auto msgs = random_messages(5, 200, 13);
  std::vector<u8> key(32, 0x4B);
  const std::vector<u8> custom = {'c', 't', 'x'};
  const auto outs = ps.kmac_batch(256, key, msgs, 32, custom);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]),
              to_hex(keccak::kmac256(key, msgs[i], 32, custom)))
        << "msg " << i;
  }
}

TEST(ParallelSha3, RejectsBadSecurityBits) {
  ParallelSha3 ps({Arch::k64Lmul8, 5, 24});
  EXPECT_THROW((void)ps.cshake_batch(192, {}, 32, {}, {}), Error);
  EXPECT_THROW((void)ps.kmac_batch(512, {}, {}, 32), Error);
}

// --- on-device absorb path -------------------------------------------------------

class OnDeviceAbsorbTest : public ::testing::TestWithParam<Sha3Function> {};

TEST_P(OnDeviceAbsorbTest, MatchesHostThroughFullPipeline) {
  ParallelSha3Options opts;
  opts.on_device_absorb = true;
  ParallelSha3 ps({Arch::k64Lmul8, 15, 24}, opts);
  const auto msgs = random_messages(3, 400, 14);  // multi-block
  const usize out_len = keccak::digest_bytes(GetParam())
                            ? keccak::digest_bytes(GetParam())
                            : 100;
  const auto outs = ps.xof_batch(GetParam(), msgs, out_len);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]),
              to_hex(keccak::hash(GetParam(), msgs[i], out_len)))
        << name(GetParam()) << " msg " << i;
  }
  EXPECT_GT(ps.stats().accelerator_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, OnDeviceAbsorbTest,
    ::testing::Values(Sha3Function::kSha3_256, Sha3Function::kSha3_512,
                      Sha3Function::kShake128),
    [](const auto& info) {
      return std::string(name(info.param)).substr(0, 4) +
             std::to_string(static_cast<int>(info.param));
    });

TEST(ParallelSha3, OnDeviceAbsorbRequires64BitArch) {
  ParallelSha3Options opts;
  opts.on_device_absorb = true;
  EXPECT_THROW(ParallelSha3 ps({Arch::k32Lmul8, 5, 24}, opts), Error);
}

TEST(ParallelSha3, OnDeviceKmacBatch) {
  ParallelSha3Options opts;
  opts.on_device_absorb = true;
  ParallelSha3 ps({Arch::k64Fused, 10, 24}, opts);
  const auto msgs = random_messages(2, 64, 15);
  std::vector<u8> key(16, 0x11);
  const auto outs = ps.kmac_batch(128, key, msgs, 32);
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(keccak::kmac128(key, msgs[i], 32)));
  }
}

}  // namespace
}  // namespace kvx::core
