// Tests for the Keccak-f[1600] permutation: step mappings, inverses,
// algebraic properties, and cross-checks between the reference and
// optimized implementations.
#include <gtest/gtest.h>

#include <bit>

#include "kvx/common/bits.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/state.hpp"

namespace kvx::keccak {
namespace {

State random_state(u64 seed) {
  SplitMix64 rng(seed);
  State s;
  for (u64& lane : s.flat()) lane = rng.next();
  return s;
}

TEST(State, LaneIndexingWraps) {
  State s;
  s.lane(0, 0) = 1;
  EXPECT_EQ(s.lane(5, 5), 1u);
  EXPECT_EQ(s.lane(10, 10), 1u);
}

TEST(State, ByteRoundTrip) {
  const State s = random_state(11);
  const auto bytes = s.to_bytes();
  EXPECT_EQ(State::from_bytes(bytes), s);
}

TEST(State, ByteLayoutLittleEndianLaneOrder) {
  State s;
  s.lane(0, 0) = 0x0807060504030201ull;
  s.lane(1, 0) = 0x00000000000000FFull;
  const auto b = s.to_bytes();
  EXPECT_EQ(b[0], 0x01);  // LSB of lane (0,0) first
  EXPECT_EQ(b[7], 0x08);
  EXPECT_EQ(b[8], 0xFF);  // lane (1,0) starts at byte 8
}

TEST(State, XorExtractBytes) {
  State s;
  const std::vector<u8> data = {0xAA, 0xBB, 0xCC};
  s.xor_bytes(data);
  std::vector<u8> out(3);
  s.extract_bytes(out);
  EXPECT_EQ(out, data);
  s.xor_bytes(data);  // xor again cancels
  s.extract_bytes(out);
  EXPECT_EQ(out, (std::vector<u8>{0, 0, 0}));
}

TEST(RoundConstants, MatchPaperTable6) {
  const auto& rc = round_constants();
  EXPECT_EQ(rc[0], 0x0000000000000001ull);
  EXPECT_EQ(rc[2], 0x800000000000808Aull);
  EXPECT_EQ(rc[12], 0x000000008000808Bull);
  EXPECT_EQ(rc[23], 0x8000000080008008ull);
}

TEST(RhoOffsets, MatchPaperTable2) {
  const auto& r = rho_offsets();
  // Row y=0: 0 1 62 28 27.
  EXPECT_EQ(r[0][0], 0u);
  EXPECT_EQ(r[0][2], 62u);
  // Row y=1: 36 44 6 55 20.
  EXPECT_EQ(r[1][1], 44u);
  // Row y=4: 18 2 61 56 14.
  EXPECT_EQ(r[4][3], 56u);
}

// --- individual step mappings -----------------------------------------------

TEST(Theta, IsLinear) {
  const State a = random_state(1), b = random_state(2);
  State ab;
  for (usize i = 0; i < kLanes; ++i) ab.flat()[i] = a.flat()[i] ^ b.flat()[i];
  State ta = a, tb = b, tab = ab;
  theta(ta);
  theta(tb);
  theta(tab);
  for (usize i = 0; i < kLanes; ++i) {
    EXPECT_EQ(tab.flat()[i], ta.flat()[i] ^ tb.flat()[i]);
  }
}

TEST(Theta, ZeroFixedPoint) {
  State s;
  theta(s);
  EXPECT_EQ(s, State{});
}

TEST(Theta, MatchesDirectDefinition) {
  // A'[x,y] = A[x,y] ^ parity(x-1) ^ ROTL(parity(x+1), 1).
  const State a = random_state(3);
  State t = a;
  theta(t);
  for (usize x = 0; x < 5; ++x) {
    u64 pm = 0, pp = 0;
    for (usize y = 0; y < 5; ++y) {
      pm ^= a.lane(x + 4, y);
      pp ^= a.lane(x + 1, y);
    }
    const u64 d = pm ^ rotl64(pp, 1);
    for (usize y = 0; y < 5; ++y) {
      EXPECT_EQ(t.lane(x, y), a.lane(x, y) ^ d);
    }
  }
}

TEST(Rho, RotatesEachLaneByTableOffset) {
  const State a = random_state(4);
  State r = a;
  rho(r);
  const auto& off = rho_offsets();
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) {
      EXPECT_EQ(r.lane(x, y), rotl64(a.lane(x, y), off[y][x]));
    }
  }
}

TEST(Pi, MatchesDefinition) {
  const State e = random_state(5);
  State f = e;
  pi(f);
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) {
      EXPECT_EQ(f.lane(x, y), e.lane((x + 3 * y) % 5, x));
    }
  }
}

TEST(Pi, IsPermutationOfLanes) {
  // Mark each lane with a unique value; π must only move them.
  State s;
  for (usize i = 0; i < kLanes; ++i) s.flat()[i] = 1000 + i;
  pi(s);
  std::array<bool, kLanes> seen{};
  for (u64 v : s.flat()) {
    ASSERT_GE(v, 1000u);
    ASSERT_LT(v, 1000u + kLanes);
    EXPECT_FALSE(seen[v - 1000]);
    seen[v - 1000] = true;
  }
}

TEST(Chi, MatchesDefinition) {
  const State f = random_state(6);
  State h = f;
  chi(h);
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) {
      EXPECT_EQ(h.lane(x, y),
                f.lane(x, y) ^ (~f.lane(x + 1, y) & f.lane(x + 2, y)));
    }
  }
}

TEST(Chi, RowLocal) {
  // Changing one row must not affect the other rows.
  State a = random_state(7);
  State b = a;
  b.lane(2, 3) ^= 0xFFull;
  chi(a);
  chi(b);
  for (usize y = 0; y < 5; ++y) {
    for (usize x = 0; x < 5; ++x) {
      if (y == 3) continue;
      EXPECT_EQ(a.lane(x, y), b.lane(x, y));
    }
  }
}

TEST(Iota, OnlyTouchesLane00) {
  const State a = random_state(8);
  for (usize r = 0; r < kNumRounds; ++r) {
    State s = a;
    iota(s, r);
    EXPECT_EQ(s.lane(0, 0), a.lane(0, 0) ^ round_constants()[r]);
    for (usize i = 1; i < kLanes; ++i) EXPECT_EQ(s.flat()[i], a.flat()[i]);
  }
}

// --- inverses ---------------------------------------------------------------

class InverseTest : public ::testing::TestWithParam<u64> {};

TEST_P(InverseTest, ThetaRoundTrip) {
  const State a = random_state(GetParam());
  State s = a;
  theta(s);
  inv_theta(s);
  EXPECT_EQ(s, a);
}

TEST_P(InverseTest, RhoRoundTrip) {
  const State a = random_state(GetParam());
  State s = a;
  rho(s);
  inv_rho(s);
  EXPECT_EQ(s, a);
}

TEST_P(InverseTest, PiRoundTrip) {
  const State a = random_state(GetParam());
  State s = a;
  pi(s);
  inv_pi(s);
  EXPECT_EQ(s, a);
}

TEST_P(InverseTest, ChiRoundTrip) {
  const State a = random_state(GetParam());
  State s = a;
  chi(s);
  inv_chi(s);
  EXPECT_EQ(s, a);
}

TEST_P(InverseTest, FullRoundRoundTrip) {
  const State a = random_state(GetParam());
  State s = a;
  for (usize r = 0; r < kNumRounds; ++r) round(s, r);
  for (usize r = kNumRounds; r-- > 0;) {
    inv_iota(s, r);
    inv_chi(s);
    inv_pi(s);
    inv_rho(s);
    inv_theta(s);
  }
  EXPECT_EQ(s, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InverseTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

// --- full permutation --------------------------------------------------------

TEST(Permute, ZeroStateKnownAnswer) {
  // Keccak-f[1600] applied to the all-zero state (well-known test vector;
  // first 16 output bytes).
  State s;
  permute(s);
  const auto bytes = s.to_bytes();
  const auto head = to_hex(std::span<const u8>(bytes).first(16));
  EXPECT_EQ(head, "e7dde140798f25f18a47c033f9ccd584");
}

TEST(Permute, FastMatchesReference) {
  for (u64 seed = 0; seed < 20; ++seed) {
    State a = random_state(seed);
    State b = a;
    permute(a);
    permute_fast(b);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(Permute, Deterministic) {
  State a = random_state(17), b = random_state(17);
  permute(a);
  permute(b);
  EXPECT_EQ(a, b);
}

TEST(Permute, IsNotIdentity) {
  State a = random_state(18);
  State b = a;
  permute(b);
  EXPECT_NE(a, b);
}

TEST(Permute, AvalancheSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  State a = random_state(19);
  State b = a;
  b.lane(0, 0) ^= 1;
  permute(a);
  permute(b);
  unsigned diff = 0;
  for (usize i = 0; i < kLanes; ++i) {
    diff += static_cast<unsigned>(std::popcount(a.flat()[i] ^ b.flat()[i]));
  }
  EXPECT_GT(diff, 600u);
  EXPECT_LT(diff, 1000u);
}

TEST(Pi, HasOrder24) {
  // The lane permutation of pi has order 24: applying it 24 times is the
  // identity (and no smaller positive power is).
  const State a = random_state(21);
  State s = a;
  int order = 0;
  do {
    pi(s);
    ++order;
  } while (!(s == a) && order <= 24);
  EXPECT_EQ(order, 24);
}

TEST(Rho, Has64thPowerIdentity) {
  // Each lane rotates by a fixed offset, so rho^64 rotates by 64*r = 0.
  const State a = random_state(22);
  State s = a;
  for (int i = 0; i < 64; ++i) rho(s);
  EXPECT_EQ(s, a);
}

TEST(Chi, NonLinear) {
  // chi(a ^ b) != chi(a) ^ chi(b) in general (it is the only non-linear
  // step, paper SS2.1).
  const State a = random_state(23), b = random_state(24);
  State ab;
  for (usize i = 0; i < kLanes; ++i) ab.flat()[i] = a.flat()[i] ^ b.flat()[i];
  State ca = a, cb = b, cab = ab;
  chi(ca);
  chi(cb);
  chi(cab);
  bool all_equal = true;
  for (usize i = 0; i < kLanes; ++i) {
    if (cab.flat()[i] != (ca.flat()[i] ^ cb.flat()[i])) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Theta, ColumnParityInvariant) {
  // After theta, every column parity equals the XOR of the two adjacent
  // original parities rotated per the definition; in particular theta
  // applied to a state whose parities are all zero is the identity.
  State s = random_state(25);
  // Force all column parities to zero by fixing row 4.
  for (usize x = 0; x < 5; ++x) {
    u64 p = 0;
    for (usize y = 0; y < 4; ++y) p ^= s.lane(x, y);
    s.lane(x, 4) = p;
  }
  const State before = s;
  theta(s);
  EXPECT_EQ(s, before);
}

TEST(Round, ComposesStepMappings) {
  State a = random_state(20);
  State b = a;
  round(a, 5);
  theta(b);
  rho(b);
  pi(b);
  chi(b);
  iota(b, 5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace kvx::keccak
