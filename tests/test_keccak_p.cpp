// Tests for the generalized Keccak-p[b, nr] family — most importantly the
// independent *derivation* cross-checks: the LFSR-generated ι constants and
// the walk-generated ρ offsets must reproduce the paper's Tables 6 and 2,
// and KeccakP<u64> must be bit-identical to the specialized Keccak-f[1600].
#include <gtest/gtest.h>

#include "kvx/common/rng.hpp"
#include "kvx/keccak/keccak_p.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/state.hpp"

namespace kvx::keccak {
namespace {

TEST(LfsrRc, FirstBitsMatchKnownStream) {
  // rc(0..7) follows from RC[0]=1 (bit 0 set), RC[1]=0x8082, ...
  EXPECT_TRUE(lfsr_rc_bit(0));
  // Period 255.
  for (unsigned t = 0; t < 32; ++t) {
    EXPECT_EQ(lfsr_rc_bit(t), lfsr_rc_bit(t + 255)) << t;
  }
}

TEST(DerivedRoundConstants, ReproducePaperTable6) {
  const auto& rc = round_constants();
  for (unsigned ir = 0; ir < 24; ++ir) {
    EXPECT_EQ(derived_round_constant(6, ir), rc[ir]) << "round " << ir;
  }
}

TEST(DerivedRoundConstants, SmallerWidthsTruncate) {
  for (unsigned ir = 0; ir < 18; ++ir) {
    const u64 full = derived_round_constant(6, ir);
    EXPECT_EQ(derived_round_constant(3, ir), full & 0xFFull) << ir;
    EXPECT_EQ(derived_round_constant(4, ir), full & 0xFFFFull) << ir;
    EXPECT_EQ(derived_round_constant(5, ir), full & 0xFFFFFFFFull) << ir;
  }
}

TEST(DerivedRhoOffsets, ReproducePaperTable2) {
  const auto& table = rho_offsets();
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      EXPECT_EQ(derived_rho_offset(x, y, 64), table[y][x])
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(DerivedRhoOffsets, ReduceModuloLaneWidth) {
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      const unsigned full = derived_rho_offset(x, y, 64);
      EXPECT_EQ(derived_rho_offset(x, y, 32), full % 32);
      EXPECT_EQ(derived_rho_offset(x, y, 8), full % 8);
    }
  }
}

TEST(KeccakP1600, MatchesSpecializedPermutation) {
  SplitMix64 rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    State specialized;
    KeccakP1600::StateArray generic{};
    for (usize i = 0; i < kLanes; ++i) {
      const u64 v = rng.next();
      specialized.flat()[i] = v;
      generic[i] = v;
    }
    permute(specialized);
    KeccakP1600::permute(generic);
    for (usize i = 0; i < kLanes; ++i) {
      EXPECT_EQ(generic[i], specialized.flat()[i]) << "lane " << i;
    }
  }
}

TEST(KeccakP1600, ReducedRoundUsesLastRounds) {
  // Keccak-p[1600, 12] (TurboSHAKE) runs rounds 12..23 of Keccak-f.
  SplitMix64 rng(6);
  KeccakP1600::StateArray a{};
  for (auto& lane : a) lane = rng.next();
  auto b = a;
  KeccakP1600::permute(a, 12);
  for (unsigned ir = 12; ir < 24; ++ir) KeccakP1600::round(b, ir);
  EXPECT_EQ(a, b);
}

template <typename P>
class KeccakPFamilyTest : public ::testing::Test {};

using Families = ::testing::Types<KeccakP200, KeccakP400, KeccakP800,
                                  KeccakP1600>;
TYPED_TEST_SUITE(KeccakPFamilyTest, Families);

TYPED_TEST(KeccakPFamilyTest, DefaultRoundCount) {
  // nr = 12 + 2*l: 18 / 20 / 22 / 24.
  EXPECT_EQ(TypeParam::kDefaultRounds, 12 + 2 * TypeParam::kL);
  EXPECT_EQ(TypeParam::kB, 25 * TypeParam::kW);
}

TYPED_TEST(KeccakPFamilyTest, PermutationChangesState) {
  typename TypeParam::StateArray a{};
  TypeParam::permute(a);
  bool any = false;
  for (auto lane : a) any |= lane != 0;
  EXPECT_TRUE(any);
}

TYPED_TEST(KeccakPFamilyTest, Deterministic) {
  SplitMix64 rng(7);
  typename TypeParam::StateArray a{};
  for (auto& lane : a) {
    lane = static_cast<typename TypeParam::StateArray::value_type>(rng.next());
  }
  auto b = a;
  TypeParam::permute(a);
  TypeParam::permute(b);
  EXPECT_EQ(a, b);
}

TYPED_TEST(KeccakPFamilyTest, StepsComposeIntoRound) {
  SplitMix64 rng(8);
  typename TypeParam::StateArray a{};
  for (auto& lane : a) {
    lane = static_cast<typename TypeParam::StateArray::value_type>(rng.next());
  }
  auto b = a;
  TypeParam::round(a, 3);
  TypeParam::theta(b);
  TypeParam::rho(b);
  TypeParam::pi(b);
  TypeParam::chi(b);
  TypeParam::iota(b, 3);
  EXPECT_EQ(a, b);
}

TYPED_TEST(KeccakPFamilyTest, InjectiveOnSample) {
  // A permutation must map distinct inputs to distinct outputs.
  SplitMix64 rng(9);
  std::vector<typename TypeParam::StateArray> outs;
  for (int k = 0; k < 32; ++k) {
    typename TypeParam::StateArray a{};
    for (auto& lane : a) {
      lane = static_cast<typename TypeParam::StateArray::value_type>(rng.next());
    }
    TypeParam::permute(a);
    outs.push_back(a);
  }
  for (usize i = 0; i < outs.size(); ++i) {
    for (usize j = i + 1; j < outs.size(); ++j) {
      EXPECT_NE(outs[i], outs[j]);
    }
  }
}

TYPED_TEST(KeccakPFamilyTest, ThetaIsLinear) {
  SplitMix64 rng(10);
  typename TypeParam::StateArray a{}, b{}, ab{};
  for (usize i = 0; i < 25; ++i) {
    a[i] = static_cast<typename TypeParam::StateArray::value_type>(rng.next());
    b[i] = static_cast<typename TypeParam::StateArray::value_type>(rng.next());
    ab[i] = a[i] ^ b[i];
  }
  TypeParam::theta(a);
  TypeParam::theta(b);
  TypeParam::theta(ab);
  for (usize i = 0; i < 25; ++i) EXPECT_EQ(ab[i], a[i] ^ b[i]);
}

}  // namespace
}  // namespace kvx::keccak
