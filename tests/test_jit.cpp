// Tests of the trace-to-native JIT backend (tier zero of five): emitted
// machine code must be bit-identical to every tier below it (digests,
// register file, data memory) across all paper configurations and every
// emitted ISA, cycle reporting must pass the pinned paper values through
// untouched, unsupported hosts/ISA resolutions/arch splits must demote
// cleanly down the chain, the trace cache must key emissions per ISA while
// sharing one host-SIMD plan (and export occupancy gauges), the engine must
// report the jit tier, and — the disassembly self-check — every emitted
// byte sequence must decode against the encoder's fixed allowlist.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/jit/jit_code.hpp"
#include "kvx/sim/jit/jit_trace.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace kvx::core {
namespace {

using keccak::State;
using sim::ExecBackend;
using sim::HostSimdIsa;

std::vector<State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<State> states(n);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  return states;
}

std::vector<std::vector<u8>> random_messages(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<u8>> msgs(n);
  for (auto& m : msgs) {
    m.resize(rng.next() % 500);
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }
  return msgs;
}

sim::ProcessorConfig proc_config(const VectorKeccakConfig& c) {
  sim::ProcessorConfig pc;
  pc.vector.elen_bits = arch_elen(c.arch);
  pc.vector.ele_num = c.ele_num;
  pc.vector.sn = c.sn();
  return pc;
}

sim::TraceCompileOptions verify_opts(const KeccakProgram& program,
                                     const VectorKeccakConfig& c) {
  sim::TraceCompileOptions opts;
  opts.verify_base = program.image.symbol("state");
  opts.verify_len = usize{5} * c.ele_num * 8;
  return opts;
}

/// Restores automatic CPUID dispatch when a test that forces an ISA exits.
struct IsaGuard {
  ~IsaGuard() { sim::host_simd_force_isa(std::nullopt); }
};

/// The ISAs the jit emitter can target on this build (scalar/portable
/// resolutions reject emission by design).
std::vector<HostSimdIsa> emittable_isas() {
  std::vector<HostSimdIsa> isas;
  for (const HostSimdIsa isa : {HostSimdIsa::kAvx2, HostSimdIsa::kAvx512}) {
    if (sim::host_simd_isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

#define KVX_REQUIRE_JIT_HOST()                                        \
  do {                                                                \
    if (!sim::jit_supported()) {                                      \
      GTEST_SKIP() << "jit backend not supported on this build/host"; \
    }                                                                 \
    if (emittable_isas().empty()) {                                   \
      GTEST_SKIP() << "no AVX2/AVX-512 dispatch compiled in";         \
    }                                                                 \
  } while (0)

// ---------------------------------------------------------------------------
// Differential: jit vs the four tiers below it.
// ---------------------------------------------------------------------------

class JitDifferential
    : public ::testing::TestWithParam<std::tuple<Arch, unsigned>> {
 protected:
  Arch arch() const { return std::get<0>(GetParam()); }
  unsigned sn() const { return std::get<1>(GetParam()); }
  VectorKeccakConfig config(ExecBackend backend) const {
    VectorKeccakConfig c{arch(), 5 * sn(), 24};
    c.backend = backend;
    return c;
  }
};

TEST_P(JitDifferential, PermuteMatchesInterpreterOnEveryEmittedIsa) {
  // Ragged SN included: SN=3/6 leave partially covered pack groups on both
  // emitted ISAs; the pack/unpack shims must zero-pad and drop pad lanes.
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  VectorKeccak interp(config(ExecBackend::kInterpreter));

  for (const HostSimdIsa isa : emittable_isas()) {
    sim::host_simd_force_isa(isa);
    VectorKeccak jit(config(ExecBackend::kJit));
    ASSERT_EQ(jit.active_backend(), ExecBackend::kJit)
        << sim::host_simd_isa_name(isa) << " emission unexpectedly fell back: "
        << jit.last_fallback_error();
    ASSERT_EQ(jit.jit_isa(), isa);
    EXPECT_GT(jit.jit_code_bytes(), 0u);

    for (const u64 seed : {7u, 77u, 7777u}) {
      auto a = random_states(sn(), seed);
      auto b = a;
      auto golden = a;
      interp.permute(a);
      jit.permute(b);
      ASSERT_EQ(jit.last_backend(), ExecBackend::kJit);
      for (State& s : golden) keccak::permute(s);
      for (usize i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], golden[i]) << "interpreter diverged from golden model";
        EXPECT_EQ(b[i], a[i])
            << sim::host_simd_isa_name(isa) << " state " << i;
      }
      // Cycle accounting passes through the recorded totals bit-identically.
      EXPECT_EQ(jit.last_timing().total_cycles,
                interp.last_timing().total_cycles);
      EXPECT_EQ(jit.last_timing().permutation_cycles,
                interp.last_timing().permutation_cycles);
      EXPECT_EQ(jit.last_timing().instructions,
                interp.last_timing().instructions);
    }
  }
}

TEST_P(JitDifferential, Sha3DigestsMatchAcrossAllFiveBackends) {
  // Automatic dispatch, no pins: where the resolution is scalar/portable
  // (e.g. SN=1 auto-narrowing) the jit accelerator demotes to host-simd —
  // digests must match the golden model either way.
  ParallelSha3 interp(config(ExecBackend::kInterpreter));
  ParallelSha3 traced(config(ExecBackend::kCompiledTrace));
  ParallelSha3 fused(config(ExecBackend::kFusedTrace));
  ParallelSha3 hs(config(ExecBackend::kHostSimd));
  ParallelSha3 jit(config(ExecBackend::kJit));
  const auto msgs = random_messages(4 * sn() + 1, 0xBEEF + sn());

  const auto di = interp.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dt = traced.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto df = fused.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dh = hs.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dj = jit.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  ASSERT_EQ(di.size(), msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(di[i],
              keccak::hash(keccak::Sha3Function::kSha3_256, msgs[i], 32));
    EXPECT_EQ(dt[i], di[i]) << "trace, message " << i;
    EXPECT_EQ(df[i], di[i]) << "fused, message " << i;
    EXPECT_EQ(dh[i], di[i]) << "host-simd, message " << i;
    EXPECT_EQ(dj[i], di[i]) << "jit, message " << i;
  }
}

TEST_P(JitDifferential, RegisterFileAndMemoryBitIdenticalToHostSimd) {
  // The emitted function materializes exactly the last-writer values the
  // plan materializes, and the fallback shim replays the same unlowered
  // items — so the post-execute register file and data memory must be
  // byte-identical to the host-SIMD tier's (and hence every tier below).
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  sim::host_simd_force_isa(emittable_isas().front());

  const VectorKeccakConfig cfg = config(ExecBackend::kInterpreter);
  const auto program = VectorKeccak::build_program(cfg);
  const auto opts = verify_opts(*program, cfg);
  const auto hs = sim::lower_host_simd(sim::fuse_trace(
      sim::compile_trace(program->image, proc_config(cfg), opts)));
  const auto jit = sim::lower_jit(hs);
  ASSERT_EQ(jit->shared_host_simd().get(), hs.get());
  // The paper program never lowers 100% (absorb/setup items replay through
  // the shim): partial coverage here proves the shim path is on the line.
  EXPECT_GT(jit->lowered_coverage(), 0.5);
  EXPECT_LT(jit->lowered_coverage(), 1.0);

  sim::SimdProcessor ph(proc_config(cfg));
  sim::SimdProcessor pj(proc_config(cfg));
  ph.load_program(program->image);
  pj.load_program(program->image);

  SplitMix64 rng(0xFACE + sn());
  std::vector<u8> state_data(opts.verify_len);
  for (u8& byte : state_data) byte = static_cast<u8>(rng.next());
  ph.dmem().write_block(opts.verify_base, state_data);
  pj.dmem().write_block(opts.verify_base, state_data);

  hs->execute(ph.vector(), ph.dmem(), ph.config().cycle_model);
  jit->execute(pj.vector(), pj.dmem(), pj.config().cycle_model);

  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(pj.vector().get_register(r), ph.vector().get_register(r))
        << "v" << r;
  }
  EXPECT_EQ(jit->final_scalar_regs(), hs->final_scalar_regs());
  std::vector<u8> mh(ph.dmem().size());
  std::vector<u8> mj(pj.dmem().size());
  ph.dmem().read_block(0, mh);
  pj.dmem().read_block(0, mj);
  EXPECT_EQ(mj, mh);
  EXPECT_EQ(jit->total_cycles(), hs->total_cycles());
  EXPECT_EQ(jit->instructions(), hs->instructions());
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, JitDifferential,
    ::testing::Values(std::make_tuple(Arch::k64Lmul1, 1u),
                      std::make_tuple(Arch::k64Lmul8, 3u),
                      std::make_tuple(Arch::k64Fused, 3u),
                      std::make_tuple(Arch::k64Lmul8, 6u),
                      std::make_tuple(Arch::k64Lmul8, 8u)));

// ---------------------------------------------------------------------------
// Cycle pinning and the demotion chain.
// ---------------------------------------------------------------------------

TEST(Jit, PermutationCyclesMatchPinnedPaperValues) {
  // Timing is pass-through from the recorded interpreter run: the paper's
  // cycle counts must survive the jit tier untouched. An ISA pin keeps the
  // SN=1 configs from auto-narrowing to the (unemittable) scalar kernels.
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  sim::host_simd_force_isa(emittable_isas().back());

  const auto perm_cycles = [](Arch arch, ExecBackend want) {
    VectorKeccakConfig c{arch, 5, 24};
    c.backend = ExecBackend::kJit;
    VectorKeccak vk(c);
    EXPECT_EQ(vk.active_backend(), want) << arch_name(arch);
    std::vector<State> states(1);
    vk.permute(states);
    return vk.last_timing().permutation_cycles;
  };
  EXPECT_EQ(perm_cycles(Arch::k64Lmul1, ExecBackend::kJit), 2566u);
  EXPECT_EQ(perm_cycles(Arch::k64Lmul8, ExecBackend::kJit), 1894u);
  // 32-bit split halves cannot lower at all: the chain must fall through
  // jit → host-simd → fused with the pinned cycle count intact.
  EXPECT_EQ(perm_cycles(Arch::k32Lmul8, ExecBackend::kFusedTrace), 3646u);
}

TEST(Jit, SplitArchDemotesToFusedWithCorrectDigests) {
  VectorKeccakConfig c{Arch::k32Lmul8, 30, 24};
  c.backend = ExecBackend::kJit;
  VectorKeccak vk(c);
  EXPECT_EQ(vk.active_backend(), ExecBackend::kFusedTrace);
  // jit → host-simd (nothing lowerable) and host-simd → fused: two counted
  // construction demotions.
  EXPECT_GE(vk.backend_fallbacks(), 2u);
  EXPECT_EQ(vk.jit_code_bytes(), 0u);
  EXPECT_FALSE(vk.jit_isa().has_value());

  auto states = random_states(6, 0x5EED);
  auto golden = states;
  vk.permute(states);
  for (State& s : golden) keccak::permute(s);
  for (usize i = 0; i < states.size(); ++i) EXPECT_EQ(states[i], golden[i]);
}

TEST(Jit, ScalarIsaResolutionDemotesToHostSimd) {
  // A scalar pin (or a non-x86-64 host, or KVX_JIT=OFF — all reject inside
  // lower_jit) must demote construction one tier, to host-simd, which runs
  // the same plan through its scalar kernels.
  IsaGuard guard;
  sim::host_simd_force_isa(HostSimdIsa::kScalar);
  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  c.backend = ExecBackend::kJit;
  VectorKeccak vk(c);
  EXPECT_EQ(vk.active_backend(), ExecBackend::kHostSimd);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);

  auto states = random_states(3, 0x51A7);
  auto golden = states;
  vk.permute(states);
  for (State& s : golden) keccak::permute(s);
  for (usize i = 0; i < states.size(); ++i) EXPECT_EQ(states[i], golden[i]);
}

TEST(Jit, IsaDriftAtDispatchDemotesToHostSimdAndRecovers) {
  // The emitted code is pinned to one ISA; if the dispatch resolution moves
  // under it (a test pin here; CPUID never changes mid-process) execute()
  // must refuse rather than run mismatched code, and the per-dispatch
  // fail-soft retry lands on host-simd with correct results.
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  const HostSimdIsa emitted = emittable_isas().back();
  sim::host_simd_force_isa(emitted);
  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  c.backend = ExecBackend::kJit;
  VectorKeccak vk(c);
  ASSERT_EQ(vk.active_backend(), ExecBackend::kJit);

  sim::host_simd_force_isa(HostSimdIsa::kScalar);
  auto states = random_states(3, 0xD41F7);
  auto golden = states;
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), ExecBackend::kHostSimd);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
  EXPECT_NE(vk.last_fallback_error().find("ISA changed"), std::string::npos);
  for (State& s : golden) keccak::permute(s);
  for (usize i = 0; i < states.size(); ++i) EXPECT_EQ(states[i], golden[i]);

  // The drift was the pin's fault, not the trace's: restoring the pin makes
  // the very next dispatch run native again, with no recompilation.
  sim::host_simd_force_isa(emitted);
  auto again = random_states(3, 0xD41F7);
  vk.permute(again);
  EXPECT_EQ(vk.last_backend(), ExecBackend::kJit);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
  for (usize i = 0; i < again.size(); ++i) EXPECT_EQ(again[i], states[i]);
}

// ---------------------------------------------------------------------------
// Trace-cache keying and occupancy gauges.
// ---------------------------------------------------------------------------

TEST(JitCache, KeysEmissionsPerIsaSharingOneHostSimdPlan) {
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  const auto program = VectorKeccak::build_program(c);
  const auto opts = verify_opts(*program, c);
  auto& cache = sim::TraceCache::global();
  const auto isas = emittable_isas();

  sim::host_simd_force_isa(isas.front());
  const auto jit1 =
      cache.get_or_compile_jit(program->image, proc_config(c), opts);
  ASSERT_NE(jit1, nullptr);
  EXPECT_EQ(jit1->isa(), isas.front());
  // Second lookup under the same resolution hits, returning the identical
  // sealed buffer.
  EXPECT_EQ(
      cache.get_or_compile_jit(program->image, proc_config(c), opts).get(),
      jit1.get());
  // The emission wraps the SAME host-SIMD plan the host-simd tier hands
  // out — one plan, N per-ISA compilations of it.
  const auto hs =
      cache.get_or_compile_host_simd(program->image, proc_config(c), opts);
  EXPECT_EQ(jit1->shared_host_simd().get(), hs.get());

  if (isas.size() > 1) {
    // The resolved ISA is part of the jit key: an AVX2 emission and an
    // AVX-512 emission of one program coexist, both sharing the plan.
    sim::host_simd_force_isa(isas[1]);
    const auto jit2 =
        cache.get_or_compile_jit(program->image, proc_config(c), opts);
    EXPECT_NE(jit2.get(), jit1.get());
    EXPECT_EQ(jit2->isa(), isas[1]);
    EXPECT_EQ(jit2->shared_host_simd().get(), hs.get());
    sim::host_simd_force_isa(isas.front());
    EXPECT_EQ(
        cache.get_or_compile_jit(program->image, proc_config(c), opts).get(),
        jit1.get());
  }
}

TEST(JitCache, OccupancyGaugesTrackResidentArtifacts) {
  // kvx_trace_cache_entries / kvx_trace_cache_bytes must follow the cache
  // exactly: one artifact per tier after a jit compile (each counted once),
  // resident bytes covering the page-rounded W^X buffer, and both snapping
  // back to zero on clear().
  IsaGuard guard;
  auto& cache = sim::TraceCache::global();
  auto& registry = obs::MetricsRegistry::global();
  obs::Gauge& entries_g = registry.gauge("kvx_trace_cache_entries");
  obs::Gauge& bytes_g = registry.gauge("kvx_trace_cache_bytes");

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_DOUBLE_EQ(entries_g.value(), 0.0);
  EXPECT_DOUBLE_EQ(bytes_g.value(), 0.0);

  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  const auto program = VectorKeccak::build_program(c);
  const auto opts = verify_opts(*program, c);
  u64 want_entries = 3;  // trace + fused + host-simd plan
  u64 jit_bytes = 0;
  if (sim::jit_supported() && !emittable_isas().empty()) {
    sim::host_simd_force_isa(emittable_isas().front());
    const auto jit =
        cache.get_or_compile_jit(program->image, proc_config(c), opts);
    want_entries = 4;  // + the native emission
    jit_bytes = jit->memory_bytes();
    EXPECT_GE(jit->memory_bytes(), jit->code_size());
  } else {
    (void)cache.get_or_compile_host_simd(program->image, proc_config(c),
                                         opts);
  }

  const sim::TraceCacheStats st = cache.stats();
  EXPECT_EQ(st.entries, want_entries);
  // Every resident artifact came from exactly one counted compilation.
  EXPECT_EQ(st.compiles + st.fusions + st.lowerings + st.jit_compiles,
            st.entries);
  EXPECT_GT(st.resident_bytes, jit_bytes);
  EXPECT_DOUBLE_EQ(entries_g.value(), static_cast<double>(st.entries));
  EXPECT_DOUBLE_EQ(bytes_g.value(), static_cast<double>(st.resident_bytes));

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_DOUBLE_EQ(entries_g.value(), 0.0);
  EXPECT_DOUBLE_EQ(bytes_g.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Disassembly self-check: the emitted bytes against the encoder allowlist.
// ---------------------------------------------------------------------------

TEST(JitDisasm, EmittedCodeDecodesEndToEndOnEveryIsa) {
  // Tile the whole emitted function with the length-decoder: every byte
  // must belong to an allowlisted instruction form and the instruction
  // stream must end exactly at code_size() (the literal pool is data and
  // deliberately outside the decodable prefix). A single table typo in the
  // encoder shifts the tiling and fails here.
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  const auto program = VectorKeccak::build_program(c);
  const auto opts = verify_opts(*program, c);

  for (const HostSimdIsa isa : emittable_isas()) {
    sim::host_simd_force_isa(isa);
    const auto jit = sim::lower_jit(sim::lower_host_simd(sim::fuse_trace(
        sim::compile_trace(program->image, proc_config(c), opts))));
    ASSERT_EQ(jit->isa(), isa);
    ASSERT_GT(jit->code_size(), 0u);

    usize off = 0;
    usize insns = 0;
    while (off < jit->code_size()) {
      const auto d =
          sim::jit_decode_one(jit->code() + off, jit->code_size() - off);
      ASSERT_TRUE(d.has_value())
          << sim::host_simd_isa_name(isa) << ": undecodable byte 0x"
          << std::hex << unsigned{jit->code()[off]} << " at offset " << std::dec
          << off;
      ASSERT_GT(d->length, 0u);
      off += d->length;
      ++insns;
    }
    EXPECT_EQ(off, jit->code_size());
    // A 24-round emission is thousands of instructions; a trivially small
    // count means the emitter silently skipped the round bodies.
    EXPECT_GT(insns, 500u) << sim::host_simd_isa_name(isa);
    // The ι constants of every natively lowered round reach the
    // (deduplicated) pool — most but not all of the 24 distinct RCs, since
    // the rounds adjoining unlowerable plan items replay through the shim.
    EXPECT_GT(jit->literal_count(), 0u);
    EXPECT_LE(jit->literal_count(), 24u);
    EXPECT_GE(jit->buffer_bytes(), jit->code_size());
  }
}

TEST(JitDisasm, DecoderRefusesBytesOutsideTheAllowlist) {
  const u8 syscall_insn[] = {0x0F, 0x05};
  EXPECT_FALSE(sim::jit_decode_one(syscall_insn, 2).has_value());
  const u8 int3[] = {0xCC};
  EXPECT_FALSE(sim::jit_decode_one(int3, 1).has_value());
  // A truncated buffer never decodes past its end.
  const u8 movabs_prefix[] = {0x48, 0xB8, 0x01};
  EXPECT_FALSE(sim::jit_decode_one(movabs_prefix, 3).has_value());
}

// ---------------------------------------------------------------------------
// Engine reporting.
// ---------------------------------------------------------------------------

TEST(Jit, EngineReportsJitBackendIsaAndCodeBytes) {
  KVX_REQUIRE_JIT_HOST();
  IsaGuard guard;
  const HostSimdIsa isa = emittable_isas().front();
  sim::host_simd_force_isa(isa);

  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kJit;
  engine::BatchHashEngine eng(cfg);

  const auto msgs = random_messages(10, 0x117);
  std::vector<engine::HashJob> jobs(msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    jobs[i].algo = engine::Algo::kSha3_256;
    jobs[i].message = msgs[i];
  }
  eng.submit_all(jobs);
  const auto results = eng.drain_results();
  for (usize i = 0; i < msgs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].digest,
              keccak::hash(keccak::Sha3Function::kSha3_256, msgs[i], 32));
  }

  const engine::EngineStats st = eng.stats();
  EXPECT_EQ(st.backend, "jit");
  EXPECT_EQ(st.effective_backend, "jit");
  EXPECT_EQ(st.host_simd_isa, sim::host_simd_isa_name(isa));
  EXPECT_GT(st.jit_code_bytes, 0u);
  EXPECT_GT(st.host_simd_coverage, 0.5);
  EXPECT_GT(st.fusion_coverage, 0.5);
}

}  // namespace
}  // namespace kvx::core
