// Differential tests of the fused-trace execution backend: super-kernel
// replays must be bit-identical to the interpreter and the plain compiled
// trace — digests, full vector register file, data memory and cycle counts
// — across all paper configurations; unrecognizable programs must fall
// back to per-record replay; and the trace cache must key compilations by
// backend so a "trace" shard never observes a fused artifact.
#include <gtest/gtest.h>

#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace kvx::core {
namespace {

using keccak::State;
using sim::ExecBackend;

std::vector<State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<State> states(n);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  return states;
}

std::vector<std::vector<u8>> random_messages(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<u8>> msgs(n);
  for (auto& m : msgs) {
    m.resize(rng.next() % 500);  // mixes short, rate-boundary and multi-block
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }
  return msgs;
}

sim::ProcessorConfig proc_config(const VectorKeccakConfig& c) {
  sim::ProcessorConfig pc;
  pc.vector.elen_bits = arch_elen(c.arch);
  pc.vector.ele_num = c.ele_num;
  pc.vector.sn = c.sn();
  return pc;
}

/// The paper configurations plus the fused-ISE variant and the widest SN,
/// so every matcher form (standard θ, vthetac, ρπ rows, fused vrhopi/vchi,
/// 32-bit split halves, row-wise LMUL=1 χ) is exercised.
class FusionDifferential
    : public ::testing::TestWithParam<std::tuple<Arch, unsigned>> {
 protected:
  Arch arch() const { return std::get<0>(GetParam()); }
  unsigned sn() const { return std::get<1>(GetParam()); }
  VectorKeccakConfig config(ExecBackend backend) const {
    VectorKeccakConfig c{arch(), 5 * sn(), 24};
    c.backend = backend;
    return c;
  }
};

TEST_P(FusionDifferential, PermuteMatchesInterpreterBitExactly) {
  VectorKeccak interp(config(ExecBackend::kInterpreter));
  VectorKeccak fused(config(ExecBackend::kFusedTrace));
  ASSERT_EQ(fused.active_backend(), ExecBackend::kFusedTrace)
      << "fused compilation unexpectedly fell back";
  // The Keccak programs must actually fuse — the permutation loop is
  // nothing but θ/ρπ/χι patterns, so well over half the records should be
  // covered by super-kernels even with final-round liveness demotions.
  EXPECT_GT(fused.fusion_coverage(), 0.5) << arch_name(arch());

  for (const u64 seed : {7u, 77u, 7777u}) {
    auto a = random_states(sn(), seed);
    auto b = a;
    auto golden = a;
    interp.permute(a);
    fused.permute(b);
    for (State& s : golden) keccak::permute(s);
    for (usize i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], golden[i]) << "interpreter diverged from golden model";
      EXPECT_EQ(b[i], a[i]) << arch_name(arch()) << " state " << i;
    }
    // Timing passes through from the recorded interpreter run untouched.
    EXPECT_EQ(fused.last_timing().total_cycles,
              interp.last_timing().total_cycles);
    EXPECT_EQ(fused.last_timing().permutation_cycles,
              interp.last_timing().permutation_cycles);
    EXPECT_EQ(fused.last_timing().instructions,
              interp.last_timing().instructions);
  }
}

TEST_P(FusionDifferential, RandomizedRegisterFileSeedReplay) {
  // Seed two processors with the same random register file and state data,
  // run one through the interpreter and one through the fused trace, and
  // compare every vector register and all of data memory. This is the
  // strongest check on the liveness pass: an elided scratch write that was
  // actually live-out would surface as a register mismatch here.
  const VectorKeccakConfig cfg = config(ExecBackend::kInterpreter);
  const auto program = VectorKeccak::build_program(cfg);

  sim::TraceCompileOptions opts;
  opts.verify_base = program->image.symbol("state");
  opts.verify_len = usize{5} * cfg.ele_num * 8;
  const auto fused = sim::fuse_trace(
      sim::compile_trace(program->image, proc_config(cfg), opts));
  ASSERT_GT(fused->super_kernel_count(), 0u);

  sim::SimdProcessor pi(proc_config(cfg));
  sim::SimdProcessor pf(proc_config(cfg));
  pi.load_program(program->image);
  pf.load_program(program->image);

  SplitMix64 rng(0xFADE + sn());
  const usize reg_bytes = pi.vector().reg_bytes();
  std::vector<u8> row(reg_bytes);
  for (unsigned r = 0; r < 32; ++r) {
    for (u8& byte : row) byte = static_cast<u8>(rng.next());
    pi.vector().set_register(r, row);
    pf.vector().set_register(r, row);
  }
  std::vector<u8> state_data(opts.verify_len);
  for (u8& byte : state_data) byte = static_cast<u8>(rng.next());
  pi.dmem().write_block(opts.verify_base, state_data);
  pf.dmem().write_block(opts.verify_base, state_data);

  pi.run();
  fused->execute(pf.vector(), pf.dmem(), pf.config().cycle_model);

  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(pf.vector().get_register(r), pi.vector().get_register(r))
        << "v" << r;
  }
  std::vector<u8> mi(pi.dmem().size());
  std::vector<u8> mf(pf.dmem().size());
  pi.dmem().read_block(0, mi);
  pf.dmem().read_block(0, mf);
  EXPECT_EQ(mf, mi);
  EXPECT_EQ(fused->total_cycles(), pi.cycles());
  EXPECT_EQ(fused->instructions(), pi.stats().instructions);
}

TEST_P(FusionDifferential, Sha3DigestsMatchAcrossAllThreeBackends) {
  ParallelSha3 interp(config(ExecBackend::kInterpreter));
  ParallelSha3 traced(config(ExecBackend::kCompiledTrace));
  ParallelSha3 fused(config(ExecBackend::kFusedTrace));
  const auto msgs = random_messages(4 * sn() + 1, 0xFACE + sn());

  const auto di = interp.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dt = traced.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto df = fused.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  ASSERT_EQ(di.size(), msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(di[i],
              keccak::hash(keccak::Sha3Function::kSha3_256, msgs[i], 32));
    EXPECT_EQ(dt[i], di[i]) << "trace, message " << i;
    EXPECT_EQ(df[i], di[i]) << "fused, message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, FusionDifferential,
    ::testing::Values(std::make_tuple(Arch::k64Lmul1, 1u),
                      std::make_tuple(Arch::k64Lmul8, 3u),
                      std::make_tuple(Arch::k32Lmul8, 3u),
                      std::make_tuple(Arch::k64Fused, 3u),
                      std::make_tuple(Arch::k64Lmul8, 6u)));

TEST(TraceFusion, PermutationCyclesMatchPinnedPaperValues) {
  // Cycle pass-through: the fused backend must report the same pinned
  // paper-model cycle counts as the interpreter and the plain trace.
  const auto perm_cycles = [](Arch arch) {
    VectorKeccakConfig c{arch, 5, 24};
    c.backend = ExecBackend::kFusedTrace;
    VectorKeccak vk(c);
    EXPECT_EQ(vk.active_backend(), ExecBackend::kFusedTrace);
    std::vector<State> states(1);
    vk.permute(states);
    return vk.last_timing().permutation_cycles;
  };
  EXPECT_EQ(perm_cycles(Arch::k64Lmul1), 2566u);
  EXPECT_EQ(perm_cycles(Arch::k64Lmul8), 1894u);
  EXPECT_EQ(perm_cycles(Arch::k32Lmul8), 3646u);
}

TEST(TraceFusion, NonFusibleProgramFallsBackToPerRecordReplay) {
  // A hand-built program with none of the Keccak step patterns: the fusion
  // pass must produce zero super-kernels (one big replay range) and the
  // replay must still be bit-identical to the interpreter.
  const auto program = assembler::assemble(R"(
    la a0, data
    vsetvli x0, x0, e64, m1, tu, mu
    vle64.v v1, (a0)
    vxor.vv v2, v1, v1
    vadd.vv v3, v1, v1
    vand.vv v4, v3, v1
    vse64.v v4, (a0)
    ebreak
.data
data:
    .dword 1, 2, 3, 4, 5
  )");
  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = 5;
  const auto base = sim::compile_trace(program, cfg, {});
  const auto fused = sim::fuse_trace(base);
  EXPECT_EQ(fused->super_kernel_count(), 0u);
  EXPECT_EQ(fused->fused_record_count(), 0u);
  EXPECT_EQ(fused->coverage(), 0.0);
  ASSERT_EQ(fused->fused_ops().size(), 1u);
  EXPECT_EQ(fused->fused_ops()[0].kind, sim::FusedOpKind::kReplayRange);
  EXPECT_EQ(fused->fused_ops()[0].count, base->op_count());

  sim::SimdProcessor pi(cfg);
  sim::SimdProcessor pf(cfg);
  pi.load_program(program);
  pf.load_program(program);
  pi.run();
  fused->execute(pf.vector(), pf.dmem(), pf.config().cycle_model);
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(pf.vector().get_register(r), pi.vector().get_register(r))
        << "v" << r;
  }
  std::vector<u8> mi(pi.dmem().size());
  std::vector<u8> mf(pf.dmem().size());
  pi.dmem().read_block(0, mi);
  pf.dmem().read_block(0, mf);
  EXPECT_EQ(mf, mi);
}

TEST(TraceFusion, CacheKeysFusedAndPlainCompilationsSeparately) {
  // One shared program, one shard asking for the plain trace and one for
  // the fused trace: the base recording is compiled once and shared, the
  // fused artifact is a separate cache entry, and each shard reports its
  // own backend. A "trace" shard must never observe a fused compilation
  // and vice versa.
  sim::TraceCache::global().clear();
  VectorKeccakConfig ct{Arch::k64Lmul8, 15, 24};
  ct.backend = ExecBackend::kCompiledTrace;
  VectorKeccakConfig cf = ct;
  cf.backend = ExecBackend::kFusedTrace;
  const auto program = VectorKeccak::build_program(ct);

  VectorKeccak traced(ct, program);
  VectorKeccak fused(cf, program);
  EXPECT_EQ(traced.active_backend(), ExecBackend::kCompiledTrace);
  EXPECT_EQ(fused.active_backend(), ExecBackend::kFusedTrace);
  EXPECT_EQ(traced.fusion_coverage(), 0.0);
  EXPECT_GT(fused.fusion_coverage(), 0.5);

  sim::TraceCacheStats st = sim::TraceCache::global().stats();
  EXPECT_EQ(st.compiles, 1u);  // base recording shared across backends
  EXPECT_EQ(st.fusions, 1u);   // fused artifact built exactly once
  EXPECT_EQ(st.hits, 1u);      // the fused request hit the shared base
  EXPECT_GT(st.fuse_ns, 0u);

  // Same requests again: both served from their own cache entries.
  VectorKeccak traced2(ct, program);
  VectorKeccak fused2(cf, program);
  st = sim::TraceCache::global().stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_EQ(st.fusions, 1u);
  EXPECT_EQ(st.hits, 3u);

  // Digests agree, of course.
  auto a = random_states(3, 0xBEEF);
  auto b = a;
  traced.permute(a);
  fused.permute(b);
  for (usize i = 0; i < a.size(); ++i) EXPECT_EQ(b[i], a[i]);
}

TEST(TraceFusion, EngineStatsReportFusedBackendAndLatency) {
  const auto msgs = random_messages(12, 0x1234);
  std::vector<engine::HashJob> jobs(msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    jobs[i] = {engine::Algo::kSha3_256, msgs[i]};
  }
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kFusedTrace;
  engine::BatchHashEngine eng(cfg);
  eng.submit_all(jobs);
  (void)eng.drain();
  const engine::EngineStats st = eng.stats();
  EXPECT_EQ(st.backend, "fused");
  EXPECT_GT(st.fusion_coverage, 0.5);
  EXPECT_EQ(st.latency.count, jobs.size());
  EXPECT_GT(st.latency.p50_ns, 0u);
  EXPECT_GE(st.latency.p99_ns, st.latency.p50_ns);
}

}  // namespace
}  // namespace kvx::core
