// Property/invariant tests for the engine's sharded lock-free scheduler,
// exercised in isolation (no engine, no accelerator): the Vyukov ring
// (kvx/engine/job_ring.hpp) and the ShardedJobQueue built from it
// (kvx/engine/job_queue.hpp).
//
// The properties the engine's correctness rests on:
//  * no job is ever lost or duplicated, under any producer/consumer mix;
//  * a bounded queue never exceeds its bound (strict high-water), blocking
//    producers instead of dropping;
//  * close() lets consumers drain every queued job before pop returns 0;
//  * depth()/shard_depth() are exact at quiescent points.
//
// These run under the CI ThreadSanitizer matrix; the concurrency tests are
// sized to finish in seconds there.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "kvx/engine/job_queue.hpp"

namespace kvx::engine {
namespace {

QueuedJob make_job(u64 seq) {
  QueuedJob qj;
  qj.seq = seq;
  return qj;
}

/// Merge per-consumer seq capture and assert {0..total-1} exactly once.
void expect_exactly_once(std::vector<std::vector<u64>> per_consumer,
                         u64 total) {
  std::vector<u64> all;
  for (auto& v : per_consumer) {
    all.insert(all.end(), v.begin(), v.end());
  }
  ASSERT_EQ(all.size(), total) << "lost or duplicated jobs";
  std::sort(all.begin(), all.end());
  for (u64 i = 0; i < total; ++i) {
    ASSERT_EQ(all[i], i) << "sequence " << i << " lost or duplicated";
  }
}

// --- JobRing --------------------------------------------------------------------

TEST(JobRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity_for(0), 2u);
  EXPECT_EQ(ring_capacity_for(1), 2u);
  EXPECT_EQ(ring_capacity_for(2), 2u);
  EXPECT_EQ(ring_capacity_for(3), 4u);
  EXPECT_EQ(ring_capacity_for(5), 8u);
  EXPECT_EQ(ring_capacity_for(1024), 1024u);
  EXPECT_EQ(ring_capacity_for(1025), 2048u);
  EXPECT_EQ(JobRing(5).capacity(), 8u);
}

TEST(JobRing, FifoFillDrainRewrap) {
  JobRing ring(4);
  QueuedJob out;
  EXPECT_FALSE(ring.try_pop(out));  // empty
  // Two full fill/drain cycles so the sequence numbers wrap the ring.
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (u64 i = 0; i < 4; ++i) {
      EXPECT_TRUE(ring.try_push(make_job(cycle * 4 + i)));
    }
    EXPECT_FALSE(ring.try_push(make_job(99)));  // full
    EXPECT_EQ(ring.depth(), 4u);
    for (u64 i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out.seq, cycle * 4 + i);  // FIFO
    }
    EXPECT_FALSE(ring.try_pop(out));
    EXPECT_EQ(ring.depth(), 0u);
  }
}

TEST(JobRing, FailedPushDoesNotConsumeItem) {
  JobRing ring(2);
  ASSERT_TRUE(ring.try_push(make_job(0)));
  ASSERT_TRUE(ring.try_push(make_job(1)));
  QueuedJob held = make_job(7);
  held.job.message = {1, 2, 3};
  EXPECT_FALSE(ring.try_push(std::move(held)));
  // On failure the item must be intact so the caller can retry elsewhere.
  EXPECT_EQ(held.seq, 7u);
  EXPECT_EQ(held.job.message.size(), 3u);
}

TEST(JobRing, MpmcExactlyOnceUnderContention) {
  constexpr u64 kPerProducer = 2000;
  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  constexpr u64 kTotal = kPerProducer * kProducers;
  JobRing ring(64);  // small: forces constant full/empty contention
  std::atomic<u64> popped{0};
  std::vector<std::vector<u64>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &popped, &seen, c] {
      QueuedJob out;
      while (popped.load(std::memory_order_relaxed) < kTotal) {
        if (ring.try_pop(out)) {
          seen[c].push_back(out.seq);
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        while (!ring.try_push(make_job(p * kPerProducer + i))) {
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  expect_exactly_once(std::move(seen), kTotal);
  EXPECT_EQ(ring.depth(), 0u);
}

// --- ShardedJobQueue ------------------------------------------------------------

TEST(ShardedQueue, SingleConsumerSeesEveryJobInShardOrder) {
  ShardedJobQueue queue(1);
  for (u64 i = 0; i < 10; ++i) EXPECT_TRUE(queue.push(make_job(i)));
  EXPECT_EQ(queue.depth(), 10u);
  std::vector<QueuedJob> out;
  // One shard: pops come back in exact FIFO order, in runs of max_items.
  ASSERT_EQ(queue.pop_bulk(0, 4, out), 4u);
  for (u64 i = 0; i < 4; ++i) EXPECT_EQ(out[i].seq, i);
  ASSERT_EQ(queue.pop_bulk(0, 100, out), 6u);
  for (u64 i = 0; i < 6; ++i) EXPECT_EQ(out[i].seq, 4 + i);
  EXPECT_EQ(queue.depth(), 0u);
  queue.close();
  EXPECT_EQ(queue.pop_bulk(0, 4, out), 0u);
}

TEST(ShardedQueue, PushBulkChunksAcrossShardsAndDepthsAddUp) {
  ShardedJobQueue queue(4);
  std::vector<QueuedJob> items;
  for (u64 i = 0; i < 32; ++i) items.push_back(make_job(i));
  EXPECT_EQ(queue.push_bulk(items, 8), 32u);
  EXPECT_EQ(queue.depth(), 32u);
  usize shard_sum = 0;
  usize populated = 0;
  for (usize s = 0; s < queue.shard_count(); ++s) {
    shard_sum += queue.shard_depth(s);
    if (queue.shard_depth(s) != 0) ++populated;
  }
  // Per-shard depths are exact at quiescence and sum to the total; chunked
  // round-robin spread the 4 chunks over distinct shards.
  EXPECT_EQ(shard_sum, 32u);
  EXPECT_EQ(populated, 4u);
}

TEST(ShardedQueue, IdleWorkerStealsFromEveryVictim) {
  ShardedJobQueue queue(4);
  std::vector<QueuedJob> items;
  for (u64 i = 0; i < 40; ++i) items.push_back(make_job(i));
  ASSERT_EQ(queue.push_bulk(items, 10), 40u);
  queue.close();
  // Only worker 2 ever pops: its own shard first, then it must steal the
  // other shards' runs — nothing may be stranded on an unpopped ring.
  std::vector<std::vector<u64>> seen(1);
  std::vector<QueuedJob> out;
  while (queue.pop_bulk(2, 7, out) > 0) {
    for (const QueuedJob& qj : out) seen[0].push_back(qj.seq);
  }
  expect_exactly_once(std::move(seen), 40);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ShardedQueue, BoundedQueueBlocksInsteadOfDropping) {
  constexpr usize kBound = 3;
  constexpr u64 kPerProducer = 500;
  constexpr unsigned kProducers = 3;
  constexpr u64 kTotal = kPerProducer * kProducers;
  // Bound far below the job count: producers must block on backpressure
  // (never drop), and the strict reserve ticket keeps the observed depth at
  // or below the bound at all times.
  ShardedJobQueue queue(2, kBound);
  std::vector<std::vector<u64>> seen(2);
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      std::vector<QueuedJob> out;
      while (queue.pop_bulk(c, 2, out) > 0) {
        for (const QueuedJob& qj : out) seen[c].push_back(qj.seq);
        EXPECT_LE(queue.high_water(), kBound);
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(make_job(p * kPerProducer + i)));
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[2 + p].join();
  queue.close();
  threads[0].join();
  threads[1].join();
  expect_exactly_once(std::move(seen), kTotal);
  EXPECT_LE(queue.high_water(), kBound);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ShardedQueue, CloseDrainsEverythingAlreadyQueued) {
  ShardedJobQueue queue(3);
  std::vector<QueuedJob> items;
  for (u64 i = 0; i < 25; ++i) items.push_back(make_job(i));
  ASSERT_EQ(queue.push_bulk(items, 4), 25u);
  queue.close();
  EXPECT_TRUE(queue.closed());
  // Closed is not drained: push fails, but consumers still get all 25.
  EXPECT_FALSE(queue.push(make_job(100)));
  std::vector<QueuedJob> tail_items{make_job(101)};
  EXPECT_EQ(queue.push_bulk(tail_items, 1), 0u);
  std::vector<std::vector<u64>> seen(1);
  std::vector<QueuedJob> out;
  while (queue.pop_bulk(0, 6, out) > 0) {
    for (const QueuedJob& qj : out) seen[0].push_back(qj.seq);
  }
  expect_exactly_once(std::move(seen), 25);
  EXPECT_EQ(queue.pop_bulk(1, 6, out), 0u);  // stays drained for every worker
}

TEST(ShardedQueue, CloseUnblocksProducerAtFullBound) {
  // A producer parked on a full bounded queue must observe close() and give
  // up (push -> false, push_bulk -> short count), not hang.
  ShardedJobQueue queue(1, 2);
  ASSERT_TRUE(queue.push(make_job(0)));
  ASSERT_TRUE(queue.push(make_job(1)));
  std::atomic<usize> bulk_pushed{usize(-1)};
  std::thread producer([&queue, &bulk_pushed] {
    std::vector<QueuedJob> items{make_job(2), make_job(3)};
    bulk_pushed.store(queue.push_bulk(items, 2));  // blocks: queue is full
  });
  // Give the producer time to park, then close underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.close();
  producer.join();
  EXPECT_EQ(bulk_pushed.load(), 0u);
  std::vector<std::vector<u64>> seen(1);
  std::vector<QueuedJob> out;
  while (queue.pop_bulk(0, 4, out) > 0) {
    for (const QueuedJob& qj : out) seen[0].push_back(qj.seq);
  }
  expect_exactly_once(std::move(seen), 2);  // pre-close jobs still drain
}

TEST(ShardedQueue, MixedBulkAndSingleStressExactlyOnce) {
  constexpr u64 kPerProducer = 1200;
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 4;
  constexpr u64 kTotal = kPerProducer * kProducers;
  ShardedJobQueue queue(kConsumers, 64);  // bounded: constant backpressure
  std::vector<std::vector<u64>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &seen, c] {
      std::vector<QueuedJob> out;
      while (queue.pop_bulk(c, 5, out) > 0) {
        for (const QueuedJob& qj : out) seen[c].push_back(qj.seq);
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      // Even producers use push_bulk in ragged chunk sizes, odd ones the
      // single-push path, so both intake paths race each other.
      if (p % 2 == 0) {
        u64 next = p * kPerProducer;
        const u64 end = next + kPerProducer;
        while (next < end) {
          const u64 n = std::min<u64>(7 + p, end - next);
          std::vector<QueuedJob> items;
          for (u64 i = 0; i < n; ++i) items.push_back(make_job(next + i));
          ASSERT_EQ(queue.push_bulk(items, 3), n);
          next += n;
        }
      } else {
        for (u64 i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(queue.push(make_job(p * kPerProducer + i)));
        }
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[kConsumers + p].join();
  queue.close();
  for (unsigned c = 0; c < kConsumers; ++c) threads[c].join();
  expect_exactly_once(std::move(seen), kTotal);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_LE(queue.high_water(), 64u);
  for (usize s = 0; s < queue.shard_count(); ++s) {
    EXPECT_EQ(queue.shard_depth(s), 0u);
  }
}

}  // namespace
}  // namespace kvx::engine
