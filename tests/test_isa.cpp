// Tests for instruction encodings: encode/decode round trips over the whole
// opcode table, field packing against hand-checked golden words, and
// disassembly strings.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/isa/disasm.hpp"
#include "kvx/isa/encoding.hpp"

namespace kvx::isa {
namespace {

/// Build a representative valid instruction for an opcode.
Instruction sample(const OpcodeInfo& oi, SplitMix64& rng) {
  Instruction inst;
  inst.op = oi.op;
  const auto reg = [&] { return static_cast<u8>(rng.below(32)); };
  switch (oi.format) {
    case Format::kR:
      inst.rd = reg(); inst.rs1 = reg(); inst.rs2 = reg();
      break;
    case Format::kI:
      inst.rd = reg(); inst.rs1 = reg();
      inst.imm = static_cast<i32>(rng.below(4096)) - 2048;
      break;
    case Format::kIShift:
      inst.rd = reg(); inst.rs1 = reg();
      inst.imm = static_cast<i32>(rng.below(32));
      break;
    case Format::kS:
      inst.rs1 = reg(); inst.rs2 = reg();
      inst.imm = static_cast<i32>(rng.below(4096)) - 2048;
      break;
    case Format::kB:
      inst.rs1 = reg(); inst.rs2 = reg();
      inst.imm = (static_cast<i32>(rng.below(4096)) - 2048) * 2;
      break;
    case Format::kU:
      inst.rd = reg();
      inst.imm = static_cast<i32>(rng.below(1 << 20));
      break;
    case Format::kJ:
      inst.rd = reg();
      inst.imm = (static_cast<i32>(rng.below(1 << 20)) - (1 << 19)) * 2;
      break;
    case Format::kSystem:
      break;
    case Format::kCsr:
      inst.rd = reg(); inst.rs1 = reg();
      inst.imm = static_cast<i32>(rng.below(4096));
      break;
    case Format::kCsrI:
      inst.rd = reg(); inst.rs1 = static_cast<u8>(rng.below(32));
      inst.imm = static_cast<i32>(rng.below(4096));
      break;
    case Format::kVSetVLI:
      inst.rd = reg(); inst.rs1 = reg();
      inst.vtype = {rng.below(2) ? 64u : 32u,
                    static_cast<unsigned>(1u << rng.below(4)), false, false};
      break;
    case Format::kVArith:
    case Format::kVCustom:
      inst.rd = reg();
      inst.rs2 = reg();
      // aux-constrained encodings fix the vm bit (vmv: 1, vmerge: 0).
      inst.vm = oi.format == Format::kVArith && oi.aux != 0
                    ? oi.aux == 1
                    : rng.below(2) != 0;
      if (oi.voperands == VOperands::kVI) {
        // The encoder distinguishes signed/unsigned 5-bit immediates.
        inst.imm = static_cast<i32>(rng.below(16));
      } else {
        inst.rs1 = reg();
      }
      break;
    case Format::kVLoad:
    case Format::kVStore:
      inst.rd = reg();
      inst.rs1 = reg();
      inst.vm = rng.below(2) != 0;
      if (static_cast<VMop>(oi.aux) != VMop::kUnit) inst.rs2 = reg();
      break;
  }
  return inst;
}

class RoundTripTest : public ::testing::TestWithParam<usize> {};

TEST_P(RoundTripTest, EncodeDecodeIsIdentity) {
  const OpcodeInfo& oi = all_opcodes()[GetParam()];
  SplitMix64 rng(GetParam() * 31 + 7);
  for (int i = 0; i < 50; ++i) {
    const Instruction inst = sample(oi, rng);
    const u32 word = encode(inst);
    const Instruction back = decode(word);
    EXPECT_EQ(back, inst) << mnemonic(oi.op) << " word "
                          << disassemble_word(word);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTripTest,
                         ::testing::Range<usize>(0, opcode_count()),
                         [](const auto& info) {
                           std::string n(mnemonic(
                               all_opcodes()[info.param].op));
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// --- golden encodings (hand-assembled RV32I words) ---------------------------

TEST(Encoding, GoldenAddi) {
  // addi x1, x2, 100 -> imm=100, rs1=2, f3=0, rd=1, op=0x13
  Instruction inst;
  inst.op = Opcode::kAddi;
  inst.rd = 1;
  inst.rs1 = 2;
  inst.imm = 100;
  EXPECT_EQ(encode(inst), 0x06410093u);
}

TEST(Encoding, GoldenAdd) {
  // add x3, x4, x5
  Instruction inst;
  inst.op = Opcode::kAdd;
  inst.rd = 3;
  inst.rs1 = 4;
  inst.rs2 = 5;
  EXPECT_EQ(encode(inst), 0x005201B3u);
}

TEST(Encoding, GoldenLwSw) {
  Instruction lw;
  lw.op = Opcode::kLw;
  lw.rd = 6;
  lw.rs1 = 7;
  lw.imm = -4;
  EXPECT_EQ(encode(lw), 0xFFC3A303u);
  Instruction sw;
  sw.op = Opcode::kSw;
  sw.rs1 = 7;
  sw.rs2 = 6;
  sw.imm = 8;
  EXPECT_EQ(encode(sw), 0x0063A423u);
}

TEST(Encoding, GoldenBranchNegativeOffset) {
  // beq x1, x2, -8
  Instruction b;
  b.op = Opcode::kBeq;
  b.rs1 = 1;
  b.rs2 = 2;
  b.imm = -8;
  const u32 w = encode(b);
  EXPECT_EQ(decode(w).imm, -8);
  EXPECT_EQ(w & 0x7Fu, 0b1100011u);
}

TEST(Encoding, GoldenEcallEbreak) {
  Instruction e;
  e.op = Opcode::kEcall;
  EXPECT_EQ(encode(e), 0x00000073u);
  e.op = Opcode::kEbreak;
  EXPECT_EQ(encode(e), 0x00100073u);
}

TEST(Encoding, GoldenVaddVV) {
  // vadd.vv v1, v2, v3 (vm=1): funct6=0, vm=1, vs2=2, vs1=3, f3=000, vd=1
  Instruction v;
  v.op = Opcode::kVaddVV;
  v.rd = 1;
  v.rs2 = 2;
  v.rs1 = 3;
  const u32 w = encode(v);
  EXPECT_EQ(w & 0x7Fu, 0b1010111u);
  EXPECT_EQ((w >> 7) & 0x1Fu, 1u);
  EXPECT_EQ((w >> 15) & 0x1Fu, 3u);
  EXPECT_EQ((w >> 20) & 0x1Fu, 2u);
  EXPECT_EQ((w >> 25) & 1u, 1u);
  EXPECT_EQ(w >> 26, 0u);
}

TEST(Encoding, CustomOpcodeSpace) {
  // All ten custom instructions live in custom-1 (0101011).
  for (const OpcodeInfo& oi : all_opcodes()) {
    if (is_custom(oi.op)) {
      EXPECT_EQ(oi.major, 0b0101011u) << mnemonic(oi.op);
    }
  }
}

TEST(Encoding, ExactlyTenCustomInstructions) {
  unsigned n = 0;
  for (const OpcodeInfo& oi : all_opcodes()) {
    if (is_custom(oi.op)) ++n;
  }
  EXPECT_EQ(n, 10u);  // the paper proposes exactly ten custom extensions
}

TEST(Encoding, NoDuplicateEncodings) {
  // Distinct opcodes with a zeroed operand pattern must encode distinctly.
  std::map<u32, Opcode> seen;
  for (const OpcodeInfo& oi : all_opcodes()) {
    SplitMix64 rng(1);
    Instruction inst = sample(oi, rng);
    inst.rd = 1;
    inst.rs1 = oi.voperands == VOperands::kVI ? 0 : 2;
    inst.rs2 = 3;
    // Normalize fields that do not apply (unit-stride rs2, etc.).
    const u32 w = encode(inst);
    const Instruction back = decode(w);
    EXPECT_EQ(back.op, oi.op) << mnemonic(oi.op);
  }
}

TEST(Decode, RejectsGarbage) {
  EXPECT_THROW((void)decode(0xFFFFFFFFu), DecodeError);
  EXPECT_THROW((void)decode(0x00000000u), DecodeError);
  EXPECT_EQ(try_decode(0xFFFFFFFFu).op, Opcode::kInvalid);
}

TEST(Decode, ImmediateRangeChecksOnEncode) {
  Instruction inst;
  inst.op = Opcode::kAddi;
  inst.imm = 5000;  // > 2047
  EXPECT_THROW((void)encode(inst), Error);
  inst.imm = -3000;
  EXPECT_THROW((void)encode(inst), Error);
  inst.op = Opcode::kVslidedownmVI;
  inst.imm = -1;  // unsigned-immediate custom op
  EXPECT_THROW((void)encode(inst), Error);
}

TEST(VType, RoundTrip) {
  for (unsigned sew : {8u, 16u, 32u, 64u}) {
    for (unsigned lmul : {1u, 2u, 4u, 8u}) {
      const VType vt{sew, lmul, true, false};
      EXPECT_EQ(VType::from_bits(vt.to_bits()), vt);
    }
  }
}

TEST(VType, ToString) {
  const VType vt{64, 8, false, false};
  EXPECT_EQ(vt.to_string(), "e64,m8,tu,mu");
}

TEST(Registers, AbiNames) {
  EXPECT_EQ(xreg_name(0), "zero");
  EXPECT_EQ(xreg_name(2), "sp");
  EXPECT_EQ(parse_xreg("s1"), 9);
  EXPECT_EQ(parse_xreg("x31"), 31);
  EXPECT_EQ(parse_xreg("fp"), 8);
  EXPECT_EQ(parse_xreg("nope"), -1);
  EXPECT_EQ(parse_xreg("x32"), -1);
  EXPECT_EQ(parse_vreg("v0"), 0);
  EXPECT_EQ(parse_vreg("v31"), 31);
  EXPECT_EQ(parse_vreg("v32"), -1);
  EXPECT_EQ(parse_vreg("w1"), -1);
}

TEST(Disasm, ScalarStrings) {
  Instruction inst;
  inst.op = Opcode::kAddi;
  inst.rd = 10;
  inst.rs1 = 11;
  inst.imm = -5;
  EXPECT_EQ(disassemble(inst), "addi a0,a1,-5");
  inst.op = Opcode::kLw;
  inst.imm = 16;
  EXPECT_EQ(disassemble(inst), "lw a0,16(a1)");
}

TEST(Disasm, VectorStrings) {
  Instruction inst;
  inst.op = Opcode::kVxorVV;
  inst.rd = 5;
  inst.rs2 = 3;
  inst.rs1 = 4;
  EXPECT_EQ(disassemble(inst), "vxor.vv v5,v3,v4");
  inst.op = Opcode::kV64rhoVI;
  inst.rd = 0;
  inst.rs2 = 0;
  inst.imm = -1;
  EXPECT_EQ(disassemble(inst), "v64rho.vi v0,v0,-1");
}

TEST(Disasm, InvalidWord) {
  EXPECT_EQ(disassemble_word(0xFFFFFFFFu), "<invalid 0xffffffff>");
}

}  // namespace
}  // namespace kvx::isa
