// Tests for the generic sponge over the Keccak-p family, including the
// equivalence proof against the production b = 1600 sponge.
#include <gtest/gtest.h>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/keccak/generic_sponge.hpp"
#include "kvx/keccak/sha3.hpp"

namespace kvx::keccak {
namespace {

std::vector<u8> random_bytes(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<u8> v(n);
  for (u8& b : v) b = static_cast<u8>(rng.next());
  return v;
}

TEST(GenericSponge, P1600MatchesProductionShake128) {
  // GenericSponge<KeccakP1600> at SHAKE128 parameters must equal the
  // production SHAKE128 — two independent sponge engines over two
  // independently-derived permutations.
  for (usize len : {0u, 1u, 167u, 168u, 169u, 500u}) {
    const auto msg = random_bytes(len, len + 1);
    GenericSponge<KeccakP1600> sponge(168, 0x1F);
    sponge.absorb(msg);
    EXPECT_EQ(sponge.squeeze(64), shake128(msg, 64)) << "len " << len;
  }
}

TEST(GenericSponge, P1600MatchesProductionSha3_256) {
  const auto msg = random_bytes(300, 2);
  GenericSponge<KeccakP1600> sponge(136, 0x06);
  sponge.absorb(msg);
  const auto digest = sha3_256(msg);
  EXPECT_EQ(sponge.squeeze(32), std::vector<u8>(digest.begin(), digest.end()));
}

template <typename P>
class GenericSpongeFamilyTest : public ::testing::Test {};

using Perms = ::testing::Types<KeccakP200, KeccakP400, KeccakP800,
                               KeccakP1600>;
TYPED_TEST_SUITE(GenericSpongeFamilyTest, Perms);

TYPED_TEST(GenericSpongeFamilyTest, Deterministic) {
  const usize rate = GenericSponge<TypeParam>::kStateBytes / 2;
  const auto msg = random_bytes(3 * rate + 7, 3);
  GenericSponge<TypeParam> a(rate, 0x1F), b(rate, 0x1F);
  a.absorb(msg);
  b.absorb(msg);
  EXPECT_EQ(a.squeeze(48), b.squeeze(48));
}

TYPED_TEST(GenericSpongeFamilyTest, DomainSeparates) {
  const usize rate = GenericSponge<TypeParam>::kStateBytes / 2;
  const auto msg = random_bytes(10, 4);
  GenericSponge<TypeParam> a(rate, 0x1F), b(rate, 0x06);
  a.absorb(msg);
  b.absorb(msg);
  EXPECT_NE(a.squeeze(32), b.squeeze(32));
}

TYPED_TEST(GenericSpongeFamilyTest, IncrementalAbsorbMatchesOneShot) {
  const usize rate = GenericSponge<TypeParam>::kStateBytes / 2;
  const auto msg = random_bytes(200, 5);
  GenericSponge<TypeParam> one(rate, 0x1F), inc(rate, 0x1F);
  one.absorb(msg);
  inc.absorb(std::span<const u8>(msg).first(13));
  inc.absorb(std::span<const u8>(msg).subspan(13));
  EXPECT_EQ(one.squeeze(64), inc.squeeze(64));
}

TYPED_TEST(GenericSpongeFamilyTest, MessageSensitivity) {
  const usize rate = GenericSponge<TypeParam>::kStateBytes / 2;
  GenericSponge<TypeParam> a(rate, 0x1F), b(rate, 0x1F);
  a.absorb(random_bytes(32, 6));
  b.absorb(random_bytes(32, 7));
  EXPECT_NE(a.squeeze(32), b.squeeze(32));
}

TEST(GenericSponge, LightweightHelpers) {
  const auto msg = random_bytes(100, 8);
  const auto h800 = lightweight_hash800(msg, 32);
  const auto h200 = lightweight_hash200(msg, 16);
  EXPECT_EQ(h800.size(), 32u);
  EXPECT_EQ(h200.size(), 16u);
  EXPECT_EQ(h800, lightweight_hash800(msg, 32));
  EXPECT_NE(std::vector<u8>(h800.begin(), h800.begin() + 16), h200);
}

TEST(GenericSponge, ReducedRoundVariantDiffers) {
  const auto msg = random_bytes(50, 9);
  GenericSponge<KeccakP800> full(68, 0x1F);
  GenericSponge<KeccakP800> reduced(68, 0x1F, 11);
  full.absorb(msg);
  reduced.absorb(msg);
  EXPECT_NE(full.squeeze(32), reduced.squeeze(32));
}

TEST(GenericSponge, ParameterValidation) {
  using S800 = GenericSponge<KeccakP800>;
  EXPECT_THROW(S800(0, 0x1F), Error);
  EXPECT_THROW(S800(100, 0x1F), Error);  // state is 100 bytes
  EXPECT_THROW(S800(68, 0x1F, 0), Error);
  EXPECT_THROW(S800(68, 0x1F, 23), Error);  // > 22 rounds
}

TEST(GenericSponge, AbsorbAfterSqueezeRejected) {
  GenericSponge<KeccakP400> sponge(20, 0x1F);
  (void)sponge.squeeze(8);
  EXPECT_THROW(sponge.absorb(random_bytes(1, 10)), Error);
}

}  // namespace
}  // namespace kvx::keccak
