// Tests for the observability layer: the metrics registry, the Chrome
// trace-event sink, the marker helpers and — most importantly — per-step
// cycle attribution. The paper's claims are cycle-exact, so the attribution
// invariants are too: every cycle of the permutation window lands in
// exactly one step bucket (θ + ρπ + χι + absorb + other == total), the
// breakdown is bit-identical across all three execution backends, and the
// loop-program totals agree with the single-round measurements the paper's
// tables are built from.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/step_attribution.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/process_metrics.hpp"
#include "kvx/obs/trace_event.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx {
namespace {

using keccak::State;

std::vector<State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<State> states(n);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  return states;
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CounterSumsAcrossThreads) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test_total", "help");
  constexpr usize kThreads = 8;
  constexpr u64 kIncs = 10000;
  std::vector<std::thread> workers;
  for (usize t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (u64 i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kIncs);
  // Re-registering the same name returns the same counter.
  EXPECT_EQ(&reg.counter("test_total"), &c);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("depth");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketsAndCumulative) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", "", {10, 100, 1000});
  h.observe(5);     // le=10
  h.observe(10);    // le=10 (upper-inclusive)
  h.observe(50);    // le=100
  h.observe(5000);  // +Inf only
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5u + 10u + 50u + 5000u);
  const std::vector<u64> cum = h.cumulative_counts();
  ASSERT_EQ(cum.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(cum[0], 2u);
  EXPECT_EQ(cum[1], 3u);
  EXPECT_EQ(cum[2], 3u);
  EXPECT_EQ(cum[3], 4u);
}

TEST(Metrics, KindMismatchAndBadNamesThrow) {
  obs::MetricsRegistry reg;
  reg.counter("a_counter");
  EXPECT_THROW(reg.gauge("a_counter"), Error);
  EXPECT_THROW(reg.counter("bad name"), Error);
  EXPECT_THROW(reg.counter("9starts_with_digit"), Error);
  EXPECT_THROW(reg.histogram("h", "", {10, 10}), Error);  // not increasing
}

TEST(Metrics, PrometheusAndJsonExposition) {
  obs::MetricsRegistry reg;
  reg.counter("jobs_total", "jobs").inc(7);
  reg.gauge("queue_depth").set(3);
  reg.histogram("lat_ns", "", {100, 200}).observe(150);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE jobs_total counter"), std::string::npos);
  EXPECT_NE(prom.find("jobs_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("lat_ns_bucket{le=\"200\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_ns_count 1"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, SummaryQuantileExposition) {
  obs::MetricsRegistry reg;
  obs::Summary& s = reg.summary("lat_quantiles_ns", "latency quantiles");
  const u64 token = s.bind([] {
    obs::Summary::Snapshot snap;
    snap.quantiles = {{0.5, 100.0}, {0.99, 900.0}, {0.999, 990.0}};
    snap.count = 1000;
    snap.sum = 123456.0;
    return snap;
  });

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE lat_quantiles_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("lat_quantiles_ns{quantile=\"0.5\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_quantiles_ns{quantile=\"0.99\"} 900"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_quantiles_ns{quantile=\"0.999\"} 990"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_quantiles_ns_sum"), std::string::npos);
  EXPECT_NE(prom.find("lat_quantiles_ns_count 1000"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"summaries\""), std::string::npos);
  EXPECT_NE(json.find("\"0.999\":990"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1000"), std::string::npos);

  // Unbind freezes the final snapshot; the series must not vanish.
  s.unbind(token);
  EXPECT_NE(reg.to_prometheus().find("quantile=\"0.999\""),
            std::string::npos);
}

TEST(Metrics, BuildInfoAndProcessMetricsExposition) {
  // Both register into the process-global registry (idempotently), exactly
  // as every BatchHashEngine construction does.
  obs::publish_build_info("avx2", "on");
  obs::register_process_metrics();

  const std::string prom = obs::MetricsRegistry::global().to_prometheus();
  EXPECT_NE(prom.find("kvx_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("host_simd_isa=\"avx2\""), std::string::npos);
  EXPECT_NE(prom.find("jit=\"on\""), std::string::npos);
  EXPECT_NE(prom.find("version=\""), std::string::npos);
  EXPECT_NE(prom.find("compiler=\""), std::string::npos);
  EXPECT_NE(prom.find("kvx_process_rss_bytes"), std::string::npos);
  EXPECT_NE(prom.find("kvx_process_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(prom.find("kvx_process_uptime_seconds"), std::string::npos);

  // The bound gauges must evaluate to live nonzero values on Linux.
  obs::MetricSample rss{};
  bool found = false;
  for (const obs::MetricSample& s :
       obs::MetricsRegistry::global().snapshot()) {
    if (s.name == "kvx_process_rss_bytes") {
      rss = s;
      found = true;
    }
  }
  ASSERT_TRUE(found);
#if defined(__linux__)
  EXPECT_GT(rss.gauge_value, 0.0);
#endif
}

// ---------------------------------------------------------------------------
// Trace-event sink

TEST(TraceEvents, RecordsAndSerializes) {
  obs::TraceEventSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.instant("t", "ignored_while_disabled");  // no-op
  sink.enable();
  sink.instant("t", "hit", "{\"k\":1}");
  sink.counter("t", "depth", 4.0);
  {
    obs::TraceSpan span(sink, "t", "work");
    span.set_args("{\"n\":2}");
  }
  sink.disable();
  sink.instant("t", "also_ignored");

  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":2}"), std::string::npos);
  EXPECT_EQ(json.find("ignored"), std::string::npos);
  EXPECT_EQ(sink.dropped(), 0u);

  sink.clear();
  EXPECT_EQ(sink.to_json().find("\"hit\""), std::string::npos);
}

TEST(TraceEvents, RingWrapReportsDrops) {
  obs::TraceEventSink sink;
  sink.enable();
  constexpr usize kOverfill = (1 << 14) + 100;
  for (usize i = 0; i < kOverfill; ++i) sink.instant("t", "e");
  sink.disable();
  EXPECT_EQ(sink.dropped(), 100u);
  EXPECT_NE(sink.to_json().find("kvx_dropped_events"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Markers and attribution

TEST(StepAttribution, MarkerDeltasPerRound) {
  using namespace core;
  sim::SimdProcessor proc({});
  const KeccakProgram prog =
      build_keccak_program({Arch::k64Lmul8, 5, 24, /*single_round=*/false});
  proc.load_program(prog.image);
  proc.run();

  // 24 round bodies => 23 inter-round deltas, all identical (every round
  // body is the same instruction sequence), summing to last - first.
  const std::vector<u64> deltas = proc.marker_deltas(Markers::kRoundStart);
  ASSERT_EQ(deltas.size(), 23u);
  for (const u64 d : deltas) EXPECT_EQ(d, deltas[0]);
  const u64 span =
      proc.cycles_between(Markers::kPermStart, Markers::kPermEnd);
  EXPECT_GT(span, std::accumulate(deltas.begin(), deltas.end(), u64{0}));
}

TEST(StepAttribution, EmptyAndTrivialStreams) {
  EXPECT_EQ(core::attribute_step_cycles({}), obs::StepCycleStats{});
  const sim::Marker one[] = {{core::Markers::kPermStart, 10}};
  EXPECT_EQ(core::attribute_step_cycles(one), obs::StepCycleStats{});
}

// The heart of the layer: for each paper configuration the attribution must
// (a) tile the permutation window exactly, (b) reproduce the paper's pinned
// cycles/permutation, and (c) be bit-identical across all three backends.
class AttributionArchTest : public ::testing::TestWithParam<core::Arch> {};

TEST_P(AttributionArchTest, ExactSumAndBackendIdentical) {
  using namespace core;
  const Arch arch = GetParam();
  u64 expected_perm_cycles = 0;
  switch (arch) {
    case Arch::k64Lmul1: expected_perm_cycles = 2566; break;
    case Arch::k64Lmul8: expected_perm_cycles = 1894; break;
    case Arch::k32Lmul8: expected_perm_cycles = 3646; break;
    default: FAIL() << "unexpected arch";
  }

  obs::StepCycleStats per_backend[3];
  const sim::ExecBackend backends[] = {sim::ExecBackend::kInterpreter,
                                       sim::ExecBackend::kCompiledTrace,
                                       sim::ExecBackend::kFusedTrace};
  for (usize b = 0; b < 3; ++b) {
    VectorKeccakConfig cfg{arch, 5, 24};
    cfg.backend = backends[b];
    VectorKeccak vk(cfg);
    auto states = random_states(1, 99);
    vk.permute(states);
    per_backend[b] = vk.last_step_cycles();
  }

  const obs::StepCycleStats& s = per_backend[0];
  // (a) exact tiling: no cycle unattributed, none double-counted.
  EXPECT_EQ(s.attributed(), s.total);
  EXPECT_EQ(s.rounds, 24u);
  EXPECT_GT(s.theta, 0u);
  EXPECT_GT(s.rho_pi, 0u);
  EXPECT_GT(s.chi_iota, 0u);
  // (b) the pinned paper number.
  EXPECT_EQ(s.total, expected_perm_cycles);
  // (c) bit-identical across backends.
  EXPECT_EQ(per_backend[1], s);
  EXPECT_EQ(per_backend[2], s);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, AttributionArchTest,
                         ::testing::Values(core::Arch::k64Lmul1,
                                           core::Arch::k64Lmul8,
                                           core::Arch::k32Lmul8));

TEST(StepAttribution, LoopMatchesSingleRoundMeasurement) {
  using namespace core;
  // The per-round step costs measured from the dedicated single-round
  // programs (the paper's "# N cc" annotations) must equal the loop-program
  // attribution divided by 24 — i.e. attribution adds zero measurement
  // bias; loop control is isolated in `other`.
  for (const Arch arch : {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k32Lmul8}) {
    sim::ProcessorConfig cfg;
    cfg.vector.elen_bits = arch_elen(arch);
    cfg.vector.ele_num = 5;

    sim::SimdProcessor single(cfg);
    single.load_program(
        build_keccak_program({arch, 5, 24, /*single_round=*/true}).image);
    single.run();
    const u64 theta1 =
        single.cycles_between(Markers::kRoundStart, Markers::kStepRho);
    const u64 rho_pi1 =
        single.cycles_between(Markers::kStepRho, Markers::kStepChi);
    const u64 chi_iota1 =
        single.cycles_between(Markers::kStepChi, Markers::kRoundEnd);

    sim::SimdProcessor loop(cfg);
    loop.load_program(
        build_keccak_program({arch, 5, 24, /*single_round=*/false}).image);
    loop.run();
    const obs::StepCycleStats s = core::attribute_step_cycles(loop.markers());

    ASSERT_EQ(s.rounds, 24u) << arch_name(arch);
    EXPECT_EQ(s.theta, 24 * theta1) << arch_name(arch);
    EXPECT_EQ(s.rho_pi, 24 * rho_pi1) << arch_name(arch);
    EXPECT_EQ(s.chi_iota, 24 * chi_iota1) << arch_name(arch);
  }
}

// ---------------------------------------------------------------------------
// Engine integration

TEST(EngineObservability, StepCyclesTileSimCyclesExactly) {
  using namespace engine;
  SplitMix64 rng(7);
  std::vector<HashJob> jobs(24);
  for (HashJob& job : jobs) {
    job.algo = Algo::kSha3_256;
    job.message.resize(rng.below(400));
    for (u8& b : job.message) b = static_cast<u8>(rng.next());
  }

  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine eng(cfg);
  eng.submit_all(jobs);
  (void)eng.drain();

  const EngineStats st = eng.stats();
  const ShardStats t = st.totals();
  // Both sim_cycles and step_cycles accumulate the kPermStart..kPermEnd
  // window of every dispatch, so they must agree to the cycle.
  EXPECT_EQ(t.step_cycles.total, t.sim_cycles);
  EXPECT_EQ(t.step_cycles.attributed(), t.step_cycles.total);
  EXPECT_GT(t.step_cycles.rounds, 0u);
  // Every shard's breakdown obeys the same tiling invariant.
  for (const ShardStats& sh : st.shards) {
    EXPECT_EQ(sh.step_cycles.attributed(), sh.step_cycles.total);
    EXPECT_EQ(sh.step_cycles.total, sh.sim_cycles);
  }
}

TEST(EngineObservability, LatencyQuantilesOrderedAndThroughputDerived) {
  using namespace engine;
  std::vector<HashJob> jobs(40);
  for (HashJob& job : jobs) {
    job.algo = Algo::kSha3_256;
    job.message.assign(200, 0xA5);
  }
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine eng(cfg);
  eng.submit_all(jobs);
  (void)eng.drain();

  const EngineStats st = eng.stats();
  EXPECT_EQ(st.latency.count, jobs.size());
  EXPECT_LE(st.latency.p50_ns, st.latency.p99_ns);
  EXPECT_LE(st.latency.p99_ns, st.latency.p999_ns);
  EXPECT_LE(st.latency.p999_ns, st.latency.max_ns);
  EXPECT_GT(st.latency.max_ns, 0u);

  ASSERT_GT(st.elapsed_ns, 0u);
  const ThroughputStats tp = st.throughput();
  const ShardStats t = st.totals();
  const double secs = static_cast<double>(st.elapsed_ns) / 1e9;
  EXPECT_DOUBLE_EQ(tp.jobs_per_sec, static_cast<double>(t.jobs) / secs);
  EXPECT_DOUBLE_EQ(tp.bytes_per_sec, static_cast<double>(t.bytes) / secs);
  EXPECT_DOUBLE_EQ(tp.mb_per_sec, tp.bytes_per_sec / 1e6);
  // Zero window => all-zero rates, not a division by zero.
  const ThroughputStats zero = st.throughput(0);
  EXPECT_EQ(zero.jobs_per_sec, 0.0);

  // The global registry carries the same totals as EngineStats.
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_GE(reg.counter("kvx_engine_jobs_completed_total").value(),
            jobs.size());
  EXPECT_GE(reg.counter("kvx_engine_sim_cycles_total").value(), t.sim_cycles);
}

}  // namespace
}  // namespace kvx
