// Tests for the calibrated FPGA area model, the performance metrics, and the
// related-work reference constants (paper Tables 7/8 bookkeeping).
#include <gtest/gtest.h>

#include "kvx/common/error.hpp"
#include "kvx/core/area_model.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/reference_designs.hpp"

namespace kvx::core {
namespace {

TEST(AreaModel, ReproducesPaperTable7Points) {
  EXPECT_EQ(AreaModel::simd_processor_slices(64, 5), 7323u);
  EXPECT_EQ(AreaModel::simd_processor_slices(64, 15), 24789u);
  EXPECT_EQ(AreaModel::simd_processor_slices(64, 30), 48180u);
}

TEST(AreaModel, ReproducesPaperTable8Points) {
  EXPECT_EQ(AreaModel::simd_processor_slices(32, 5), 6359u);
  EXPECT_EQ(AreaModel::simd_processor_slices(32, 15), 23408u);
  EXPECT_EQ(AreaModel::simd_processor_slices(32, 30), 48036u);
}

TEST(AreaModel, ScalarCoreMatchesIbexRow) {
  EXPECT_EQ(AreaModel::scalar_core_slices(), 432u);
}

TEST(AreaModel, MonotonicInEleNum) {
  for (unsigned elen : {32u, 64u}) {
    unsigned prev = 0;
    for (unsigned n = 5; n <= 60; n += 5) {
      const unsigned s = AreaModel::simd_processor_slices(elen, n);
      EXPECT_GT(s, prev) << "elen " << elen << " n " << n;
      prev = s;
    }
  }
}

TEST(AreaModel, InterpolationBetweenCalibrationPoints) {
  const unsigned mid = AreaModel::simd_processor_slices(64, 10);
  EXPECT_GT(mid, 7323u);
  EXPECT_LT(mid, 24789u);
}

TEST(AreaModel, RejectsBadArguments) {
  EXPECT_THROW((void)AreaModel::simd_processor_slices(16, 5), Error);
  EXPECT_THROW((void)AreaModel::simd_processor_slices(64, 0), Error);
  EXPECT_THROW((void)AreaModel::simd_processor_slices(64, 1000), Error);
}

TEST(AreaModel, BreakdownSumsToTotal) {
  for (unsigned elen : {32u, 64u}) {
    const auto b = AreaModel::breakdown(elen, 15);
    const unsigned total = AreaModel::simd_processor_slices(elen, 15);
    EXPECT_EQ(b.scalar_core + b.vector_regfile + b.lane_datapath +
                  b.rotation_network + b.control,
              total);
  }
}

TEST(AreaModel, RotationShareLargerOn32Bit) {
  // §4.2: "the 32-bit architecture uses more resources for the rotation
  // instructions".
  const auto b32 = AreaModel::breakdown(32, 30);
  const auto b64 = AreaModel::breakdown(64, 30);
  const double f32 = static_cast<double>(b32.rotation_network) /
                     AreaModel::simd_processor_slices(32, 30);
  const double f64 = static_cast<double>(b64.rotation_network) /
                     AreaModel::simd_processor_slices(64, 30);
  EXPECT_GT(f32, f64);
}

// --- metrics -------------------------------------------------------------------

TEST(Metrics, CyclesPerByteMatchesPaperRows) {
  // Table 7: 2564 cycles -> 12.8 c/b; 1892 -> 9.5; Table 8: 3620 -> 18.1.
  EXPECT_NEAR(cycles_per_byte(2564), 12.8, 0.05);
  EXPECT_NEAR(cycles_per_byte(1892), 9.5, 0.05);
  EXPECT_NEAR(cycles_per_byte(3620), 18.1, 0.05);
}

TEST(Metrics, ThroughputMatchesPaperRows) {
  // Table 7 64-bit LMUL=1: 624.02 / 1872.07 / 3744.15 (x10^-3 bits/cycle).
  EXPECT_NEAR(throughput_e3(2564, 1), 624.02, 0.5);
  EXPECT_NEAR(throughput_e3(2564, 3), 1872.07, 1.0);
  EXPECT_NEAR(throughput_e3(2564, 6), 3744.15, 2.0);
  // LMUL=8 rows: 845.67 / 2537.00 / 5073.00.
  EXPECT_NEAR(throughput_e3(1892, 1), 845.67, 0.5);
  EXPECT_NEAR(throughput_e3(1892, 6), 5073.0, 3.0);
  // 32-bit rows: 441.98 / 1325.97 / 2651.93.
  EXPECT_NEAR(throughput_e3(3620, 1), 441.98, 0.5);
  EXPECT_NEAR(throughput_e3(3620, 3), 1325.97, 1.0);
  EXPECT_NEAR(throughput_e3(3620, 6), 2651.93, 2.0);
}

TEST(Metrics, ThroughputAt100MHz) {
  // 1 state / 2564 cycles at 100 MHz ~ 62.4 Mbit/s.
  EXPECT_NEAR(throughput_bps(2564, 1, 100e6) / 1e6, 62.4, 0.1);
}

// --- reference constants ----------------------------------------------------------

TEST(References, RawatRow) {
  const auto& r = rawat_vector_ise();
  EXPECT_EQ(r.arch_bits, 64u);
  EXPECT_EQ(*r.cycles_per_round, 66.0);
  EXPECT_FALSE(r.area_slices.has_value());  // simulation only
  EXPECT_NEAR(r.throughput_e3, 1010.1, 0.01);
}

TEST(References, Table8RowsComplete) {
  const auto refs = table8_references();
  ASSERT_EQ(refs.size(), 5u);
  EXPECT_EQ(refs[0].name, "LEON3 ISE");
  EXPECT_EQ(*refs[0].area_slices, 8648u);
  EXPECT_EQ(refs[4].name, "DASIP");
  EXPECT_NEAR(refs[4].throughput_e3, 61.35, 0.01);
}

TEST(References, PaperSpeedupRatiosReproducible) {
  // The §4.2 headline ratios must follow from the quoted constants and the
  // paper's own measured throughputs.
  const double ours32_en30 = 2651.93;  // 32-bit LMUL=8 EleNum=30
  EXPECT_NEAR(ours32_en30 / paper_ibex_ccode().throughput_e3, 117.9, 0.5);
  EXPECT_NEAR(ours32_en30 / table8_references()[2].throughput_e3, 45.7, 0.2);
  EXPECT_NEAR(ours32_en30 / table8_references()[4].throughput_e3, 43.2, 0.2);
  const double ours64_en30 = 5073.0;  // 64-bit LMUL=8 EleNum=30
  EXPECT_NEAR(ours64_en30 / rawat_vector_ise().throughput_e3, 5.02, 0.35);
}

}  // namespace
}  // namespace kvx::core
