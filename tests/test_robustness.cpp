// Robustness / fault-path coverage: every component must reject malformed
// input with a typed exception (never crash, never silently mis-execute).
#include <gtest/gtest.h>

#include "kvx/asm/assembler.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/common/error.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/isa/encoding.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx {
namespace {

sim::SimdProcessor make64(unsigned ele_num = 5) {
  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = ele_num;
  return sim::SimdProcessor(cfg);
}

// --- simulator fault paths ------------------------------------------------------

TEST(Robustness, VectorRegisterGroupOverflowFaults) {
  // LMUL=8 from base v28 would reach v35.
  sim::SimdProcessor p = make64(5);
  p.load_program(assembler::assemble(R"(
    li s1, 40
    vsetvli x0, s1, e64, m8, tu, mu
    vadd.vi v28, v28, 1
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, CustomSlideGroupOverflowFaults) {
  sim::SimdProcessor p = make64(5);
  p.load_program(assembler::assemble(R"(
    li s1, 25
    vsetvli x0, s1, e64, m8, tu, mu
    vslidedownm.vi v28, v28, 1
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, VpiNearTopOfRegisterFileFaults) {
  // vpi writes vd..vd+4; vd = 28 would reach v32.
  sim::SimdProcessor p = make64(5);
  p.load_program(assembler::assemble(R"(
    vsetvli x0, x0, e64, m1, tu, mu
    vpi.vi v28, v0, 0
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, SnCsrValidation) {
  sim::SimdProcessor p = make64(5);  // EleNum 5 -> max SN 1
  p.load_program(assembler::assemble(R"(
    li t0, 2
    csrw 0x7C1, t0
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, SnCsrAcceptsValidValue) {
  sim::SimdProcessor p = make64(16);  // capacity 3
  p.load_program(assembler::assemble(R"(
    li t0, 2
    csrw 0x7C1, t0
    ebreak
  )"));
  p.run();
  EXPECT_EQ(p.vector().config().sn, 2u);
}

TEST(Robustness, WriteToReadOnlyCsrFaults) {
  sim::SimdProcessor p = make64();
  p.load_program(assembler::assemble(R"(
    li t0, 1
    csrw 0xC00, t0
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, UnknownCsrWritesIgnored) {
  sim::SimdProcessor p = make64();
  p.load_program(assembler::assemble(R"(
    li t0, 1
    csrw 0x7FF, t0
    ebreak
  )"));
  EXPECT_NO_THROW(p.run());
}

TEST(Robustness, VectorStoreOutOfBoundsFaults) {
  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = 5;
  cfg.dmem_bytes = 64;  // tiny memory
  sim::SimdProcessor p(cfg);
  p.load_program(assembler::assemble(R"(
    li a0, 32
    vsetvli x0, x0, e64, m1, tu, mu
    vse64.v v0, (a0)
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, MisalignedVectorLoadFaults) {
  sim::SimdProcessor p = make64();
  p.load_program(assembler::assemble(R"(
    li a0, 4
    vsetvli x0, x0, e64, m1, tu, mu
    vle64.v v0, (a0)
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, MarkerQueriesOnMissingIdsThrow) {
  sim::SimdProcessor p = make64();
  p.load_program(assembler::assemble("ebreak"));
  p.run();
  EXPECT_THROW((void)p.cycles_between(1, 2), SimError);
  EXPECT_TRUE(p.marker_deltas(1).empty());
}

TEST(Robustness, BadFetchAddressFaults) {
  sim::SimdProcessor p = make64();
  p.load_program(assembler::assemble(R"(
    li t0, 0x100
    jr t0
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(Robustness, LoadTextRequiresAlignment) {
  sim::SimdProcessor p = make64();
  const std::vector<u32> words = {0x00000073};
  EXPECT_THROW(p.load_text(words, 2), Error);
}

TEST(Robustness, UndecodableWordInProgramRejectedAtLoad) {
  sim::SimdProcessor p = make64();
  const std::vector<u32> words = {0xFFFFFFFFu};
  EXPECT_THROW(p.load_text(words), DecodeError);
}

// --- config validation across the stack -------------------------------------------

TEST(Robustness, VectorKeccakConfigValidation) {
  EXPECT_THROW(core::VectorKeccak vk({core::Arch::k64Lmul1, 4, 24}), Error);
  EXPECT_THROW(core::VectorKeccak vk({core::Arch::k64Lmul1, 5, 0}), Error);
  core::VectorKeccakConfig too_many_rounds{core::Arch::k64Lmul1, 5, 13};
  too_many_rounds.first_round = 12;  // 12 + 13 > 24
  EXPECT_THROW(core::VectorKeccak vk(too_many_rounds), Error);
}

TEST(Robustness, AbsorbModeValidation) {
  core::ProgramOptions opts;
  opts.arch = core::Arch::k32Lmul8;
  opts.absorb_blocks = 2;
  EXPECT_THROW((void)core::build_keccak_program(opts), Error);
  opts.arch = core::Arch::k64Lmul8;
  opts.single_round = true;
  EXPECT_THROW((void)core::build_keccak_program(opts), Error);
}

TEST(Robustness, GeneratedProgramsAlwaysDecodable) {
  // Every word every builder emits must round-trip through the decoder —
  // i.e. the builders only use encodable instructions.
  for (const auto arch :
       {core::Arch::k64Lmul1, core::Arch::k64Lmul8, core::Arch::k32Lmul8,
        core::Arch::k64PureRvv, core::Arch::k64Fused,
        core::Arch::k64Lmul4Plus1}) {
    const auto prog = core::build_keccak_program({arch, 10, 24});
    for (u32 w : prog.image.text) {
      EXPECT_NO_THROW((void)isa::decode(w)) << core::arch_name(arch);
    }
  }
}

TEST(Robustness, WatchdogMessageNamesCycleCount) {
  sim::ProcessorConfig cfg;
  cfg.vector.ele_num = 5;
  cfg.max_cycles = 100;
  sim::SimdProcessor p(cfg);
  p.load_program(assembler::assemble("spin: j spin"));
  try {
    p.run();
    FAIL() << "expected watchdog";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

// --- assembler fuzzing -------------------------------------------------------------

TEST(Robustness, AssemblerSurvivesGarbage) {
  // Random byte soup must produce AsmError (or assemble cleanly), never
  // crash or hang.
  SplitMix64 rng(0xA55E);
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    const usize len = rng.below(200);
    for (usize i = 0; i < len; ++i) {
      // Printable-ish ASCII plus newlines, commas, parens.
      static constexpr char kChars[] =
          "abcdefghijklmnopqrstuvwxyz0123456789 ,.()-:#\nxvst";
      src.push_back(kChars[rng.below(sizeof kChars - 1)]);
    }
    try {
      (void)assembler::assemble(src);
    } catch (const Error&) {
      // expected for almost all inputs
    }
  }
}

TEST(Robustness, AssemblerSurvivesMutatedValidPrograms) {
  // Mutate a valid program one character at a time; every mutation must
  // either assemble or raise AsmError.
  const std::string base = R"(
    li s1, 5
    vsetvli x0, s1, e64, m1, tu, mu
    vxor.vv v5, v3, v4
    vslidedownm.vi v7, v5, 1
    blt s3, s4, -8
    ebreak
)";
  SplitMix64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string src = base;
    const usize pos = rng.below(src.size());
    src[pos] = static_cast<char>('!' + rng.below(90));
    try {
      (void)assembler::assemble(src);
    } catch (const Error&) {
    }
  }
}

TEST(Robustness, SimulatorDeterministic) {
  // Two identical runs must produce identical cycles, stats and registers.
  const auto prog = core::build_keccak_program({core::Arch::k64Lmul8, 5, 24});
  std::array<u64, 2> cycles{};
  std::array<u64, 2> insts{};
  for (int k = 0; k < 2; ++k) {
    sim::SimdProcessor p = make64(5);
    p.load_program(prog.image);
    p.run();
    cycles[static_cast<usize>(k)] = p.cycles();
    insts[static_cast<usize>(k)] = p.stats().instructions;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(insts[0], insts[1]);
}

}  // namespace
}  // namespace kvx
