// Tests for the scalar (software-only) Keccak baseline on the Ibex-like core.
#include <gtest/gtest.h>

#include "kvx/baseline/scalar_keccak.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::baseline {
namespace {

using keccak::State;

State random_state(u64 seed) {
  SplitMix64 rng(seed);
  State s;
  for (u64& lane : s.flat()) lane = rng.next();
  return s;
}

TEST(ScalarBaseline, PermutationMatchesGoldenModel) {
  ScalarKeccak baseline;
  for (u64 seed : {1ull, 2ull, 77ull}) {
    State s = random_state(seed);
    State expected = s;
    baseline.permute(s);
    keccak::permute(expected);
    EXPECT_EQ(s, expected) << "seed " << seed;
  }
}

TEST(ScalarBaseline, ZeroStateKnownHead) {
  ScalarKeccak baseline;
  State s;
  baseline.permute(s);
  State expected;
  keccak::permute(expected);
  EXPECT_EQ(s, expected);
}

TEST(ScalarBaseline, ReducedRounds) {
  ScalarKeccak baseline(12);
  State s = random_state(5);
  State expected = s;
  baseline.permute(s);
  for (usize r = 0; r < 12; ++r) keccak::round(expected, r);
  EXPECT_EQ(s, expected);
}

TEST(ScalarBaseline, RoundLatencyStable) {
  ScalarKeccak baseline;
  State s = random_state(6);
  baseline.permute(s);
  const auto deltas = baseline.processor().marker_deltas(ScalarKeccak::kMarkRound);
  ASSERT_EQ(deltas.size(), 23u);
  for (u64 d : deltas) EXPECT_EQ(d, deltas[0]);  // fully unrolled body
}

TEST(ScalarBaseline, LatencyInExpectedRegime) {
  // Hand-scheduled RV32IM lands near ~1.2k cycles/round — same order as the
  // paper's compiled-C 2908 but faster (see EXPERIMENTS.md discussion).
  ScalarKeccak baseline;
  const u64 round_cycles = baseline.measure_round_cycles();
  EXPECT_GT(round_cycles, 500u);
  EXPECT_LT(round_cycles, 4000u);
  const u64 perm = baseline.measure_permutation_cycles();
  EXPECT_GT(perm, 23 * round_cycles);
}

TEST(ScalarBaseline, UsesOnlyScalarInstructions) {
  ScalarKeccak baseline;
  State s;
  baseline.permute(s);
  EXPECT_EQ(baseline.processor().stats().vector_instructions, 0u);
}

TEST(ScalarBaseline, SourceIsReasonablySized) {
  const std::string src = generate_scalar_keccak_source(24);
  EXPECT_NE(src.find("round_loop"), std::string::npos);
  EXPECT_NE(src.find(".dword 0x8000000080008008"), std::string::npos);  // RC[23]
}

TEST(ScalarBaselineInterleaved, PermutationMatchesGoldenModel) {
  ScalarKeccak baseline(24, Flavor::kInterleavedZbb);
  for (u64 seed : {1ull, 9ull, 123ull}) {
    State s = random_state(seed);
    State expected = s;
    baseline.permute(s);
    keccak::permute(expected);
    EXPECT_EQ(s, expected) << "seed " << seed;
  }
}

TEST(ScalarBaselineInterleaved, FasterThanHiLoWithZbb) {
  // The representation trade-off the paper's SS3.2 discusses, measured:
  // with a rotate-capable scalar ISA, bit interleaving beats the hi/lo
  // split on cycles/round (at the price of boundary conversions).
  ScalarKeccak hilo(24, Flavor::kHiLo);
  ScalarKeccak inter(24, Flavor::kInterleavedZbb);
  EXPECT_LT(inter.measure_round_cycles(), hilo.measure_round_cycles());
}

TEST(ScalarBaselineInterleaved, UsesZbbInstructions) {
  const std::string src = generate_scalar_keccak_source(
      24, Flavor::kInterleavedZbb);
  EXPECT_NE(src.find("rori"), std::string::npos);
  EXPECT_NE(src.find("andn"), std::string::npos);
  // The plain flavor must not require Zbb.
  const std::string plain = generate_scalar_keccak_source(24, Flavor::kHiLo);
  EXPECT_EQ(plain.find("rori"), std::string::npos);
  EXPECT_EQ(plain.find("andn"), std::string::npos);
}

}  // namespace
}  // namespace kvx::baseline
