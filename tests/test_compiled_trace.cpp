// Differential tests of the compiled-trace execution backend: replays must
// be bit-identical to the interpreter — digests, final register state, data
// memory and cycle counts — across all three paper configurations, and
// programs whose behavior depends on the staged state data must be
// rejected at compile time.
#include <gtest/gtest.h>

#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/sim/compiled_trace.hpp"

namespace kvx::core {
namespace {

using keccak::State;
using sim::ExecBackend;

std::vector<State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<State> states(n);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  return states;
}

std::vector<std::vector<u8>> random_messages(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<u8>> msgs(n);
  for (auto& m : msgs) {
    m.resize(rng.next() % 500);  // mixes short, rate-boundary and multi-block
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }
  return msgs;
}

sim::ProcessorConfig proc_config(const VectorKeccakConfig& c) {
  sim::ProcessorConfig pc;
  pc.vector.elen_bits = arch_elen(c.arch);
  pc.vector.ele_num = c.ele_num;
  pc.vector.sn = c.sn();
  return pc;
}

/// The three paper configurations (64/LMUL1, 64/LMUL8, 32/LMUL8) at their
/// full SN.
class BackendDifferential
    : public ::testing::TestWithParam<std::tuple<Arch, unsigned>> {
 protected:
  Arch arch() const { return std::get<0>(GetParam()); }
  unsigned sn() const { return std::get<1>(GetParam()); }
  VectorKeccakConfig config(ExecBackend backend) const {
    VectorKeccakConfig c{arch(), 5 * sn(), 24};
    c.backend = backend;
    return c;
  }
};

TEST_P(BackendDifferential, PermuteMatchesInterpreterBitExactly) {
  VectorKeccak interp(config(ExecBackend::kInterpreter));
  VectorKeccak traced(config(ExecBackend::kCompiledTrace));
  ASSERT_EQ(traced.active_backend(), ExecBackend::kCompiledTrace)
      << "trace compilation unexpectedly fell back to the interpreter";

  for (const u64 seed : {1u, 99u, 4242u}) {
    auto a = random_states(sn(), seed);
    auto b = a;
    auto golden = a;
    interp.permute(a);
    traced.permute(b);
    for (State& s : golden) keccak::permute(s);
    for (usize i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], golden[i]) << "interpreter diverged from golden model";
      EXPECT_EQ(b[i], a[i]) << arch_name(arch()) << " state " << i;
    }
    // Cycle accounting is recorded, so it must be bit-identical too.
    EXPECT_EQ(traced.last_timing().total_cycles,
              interp.last_timing().total_cycles);
    EXPECT_EQ(traced.last_timing().permutation_cycles,
              interp.last_timing().permutation_cycles);
    EXPECT_EQ(traced.last_timing().instructions,
              interp.last_timing().instructions);
  }
}

TEST_P(BackendDifferential, RandomizedRegisterFileSeedReplay) {
  // Seed two processors with the same random register file and state data,
  // run one through the interpreter and one through the compiled trace, and
  // compare every vector register and all of data memory.
  const VectorKeccakConfig cfg = config(ExecBackend::kInterpreter);
  const auto program = VectorKeccak::build_program(cfg);

  sim::TraceCompileOptions opts;
  opts.verify_base = program->image.symbol("state");
  opts.verify_len = usize{5} * cfg.ele_num * 8;
  const auto trace =
      sim::compile_trace(program->image, proc_config(cfg), opts);

  sim::SimdProcessor pi(proc_config(cfg));
  sim::SimdProcessor pt(proc_config(cfg));
  pi.load_program(program->image);
  pt.load_program(program->image);

  SplitMix64 rng(0xF00D);
  const usize reg_bytes = pi.vector().reg_bytes();
  std::vector<u8> row(reg_bytes);
  for (unsigned r = 0; r < 32; ++r) {
    for (u8& byte : row) byte = static_cast<u8>(rng.next());
    pi.vector().set_register(r, row);
    pt.vector().set_register(r, row);
  }
  std::vector<u8> state_data(opts.verify_len);
  for (u8& byte : state_data) byte = static_cast<u8>(rng.next());
  pi.dmem().write_block(opts.verify_base, state_data);
  pt.dmem().write_block(opts.verify_base, state_data);

  pi.run();
  trace->execute(pt.vector(), pt.dmem(), pt.config().cycle_model);

  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(pt.vector().get_register(r), pi.vector().get_register(r))
        << "v" << r;
  }
  std::vector<u8> mi(pi.dmem().size());
  std::vector<u8> mt(pt.dmem().size());
  pi.dmem().read_block(0, mi);
  pt.dmem().read_block(0, mt);
  EXPECT_EQ(mt, mi);
  EXPECT_EQ(trace->total_cycles(), pi.cycles());
  EXPECT_EQ(trace->instructions(), pi.stats().instructions);
}

TEST_P(BackendDifferential, Sha3DigestsMatchInterpreterAndGolden) {
  ParallelSha3 interp(config(ExecBackend::kInterpreter));
  ParallelSha3 traced(config(ExecBackend::kCompiledTrace));
  const auto msgs = random_messages(4 * sn() + 1, 0xC0DE + sn());

  const auto di = interp.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dt = traced.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  ASSERT_EQ(di.size(), msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(di[i],
              keccak::hash(keccak::Sha3Function::kSha3_256, msgs[i], 32));
    EXPECT_EQ(dt[i], di[i]) << "message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, BackendDifferential,
    ::testing::Values(std::make_tuple(Arch::k64Lmul1, 1u),
                      std::make_tuple(Arch::k64Lmul8, 3u),
                      std::make_tuple(Arch::k32Lmul8, 3u)));

TEST(CompiledTrace, PermutationCyclesMatchPinnedPaperValues) {
  // The recorded timing must reproduce the interpreter's pinned values
  // (within 1% of the paper's 2564/1892/3620; see test_vector_keccak.cpp).
  const auto perm_cycles = [](Arch arch) {
    VectorKeccakConfig c{arch, 5, 24};
    c.backend = ExecBackend::kCompiledTrace;
    VectorKeccak vk(c);
    EXPECT_EQ(vk.active_backend(), ExecBackend::kCompiledTrace);
    std::vector<State> states(1);
    vk.permute(states);
    return vk.last_timing().permutation_cycles;
  };
  EXPECT_EQ(perm_cycles(Arch::k64Lmul1), 2566u);
  EXPECT_EQ(perm_cycles(Arch::k64Lmul8), 1894u);
  EXPECT_EQ(perm_cycles(Arch::k32Lmul8), 3646u);
}

TEST(CompiledTrace, CacheCountsCompilesAndHits) {
  sim::TraceCache::global().clear();
  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  c.backend = ExecBackend::kCompiledTrace;
  const auto program = VectorKeccak::build_program(c);
  VectorKeccak a(c, program);
  VectorKeccak b(c, program);  // same program + config: must hit the cache
  EXPECT_EQ(a.active_backend(), ExecBackend::kCompiledTrace);
  EXPECT_EQ(b.active_backend(), ExecBackend::kCompiledTrace);
  const sim::TraceCacheStats st = sim::TraceCache::global().stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.failures, 0u);
  EXPECT_GT(st.compile_ns, 0u);
}

TEST(CompiledTrace, DataDependentProgramIsRejected) {
  // Stores a value loaded from the verify region: the baked store operand
  // differs between the two recording runs, so compilation must throw and
  // the caller falls back to the interpreter.
  const auto program = assembler::assemble(R"(
    la a0, state
    lw t0, 0(a0)
    sw t0, 16(a0)
    ebreak
.data
state:
    .word 0, 0, 0, 0
scratch:
    .word 0
  )");
  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = 5;
  sim::TraceCompileOptions opts;
  opts.verify_base = program.symbol("state");
  opts.verify_len = 16;
  EXPECT_THROW((void)sim::compile_trace(program, cfg, opts), SimError);

  // Negative caching: the cache rejects it again without recompiling.
  sim::TraceCache::global().clear();
  EXPECT_THROW((void)sim::TraceCache::global().get_or_compile(program, cfg, opts),
               SimError);
  EXPECT_THROW((void)sim::TraceCache::global().get_or_compile(program, cfg, opts),
               SimError);
  const sim::TraceCacheStats st = sim::TraceCache::global().stats();
  EXPECT_EQ(st.failures, 1u);
  EXPECT_EQ(st.hits, 1u);
}

TEST(CompiledTrace, EngineBatchesMatchAcrossBackends) {
  const auto msgs = random_messages(20, 0xE16);
  std::vector<engine::HashJob> jobs(msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    jobs[i] = {engine::Algo::kSha3_256, msgs[i]};
  }
  engine::EngineConfig ci;
  ci.threads = 2;
  ci.accel = {Arch::k64Lmul8, 15, 24};
  engine::EngineConfig ct = ci;
  ct.accel.backend = ExecBackend::kCompiledTrace;

  const auto di = engine::run_batch(ci, jobs);
  const auto dt = engine::run_batch(ct, jobs);
  EXPECT_EQ(dt, di);
}

TEST(CompiledTrace, EngineStatsReportBackend) {
  std::vector<engine::HashJob> jobs{{engine::Algo::kSha3_256, {0x61, 0x62}}};
  for (const ExecBackend backend :
       {ExecBackend::kInterpreter, ExecBackend::kCompiledTrace}) {
    engine::EngineConfig cfg;
    cfg.threads = 1;
    cfg.accel = {Arch::k64Lmul8, 15, 24};
    cfg.accel.backend = backend;
    engine::BatchHashEngine eng(cfg);
    eng.submit_all(jobs);
    (void)eng.drain();
    EXPECT_EQ(eng.stats().backend, sim::backend_name(backend));
  }
}

}  // namespace
}  // namespace kvx::core
