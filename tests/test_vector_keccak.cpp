// End-to-end tests of the paper's HW/SW co-design: the generated assembly
// programs for all architecture variants must compute bit-exact
// Keccak-f[1600] for every supported state count, and their latencies must
// match the paper's reported cycle counts.
#include <gtest/gtest.h>

#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::core {
namespace {

using keccak::State;

std::vector<State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<State> states(n);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  return states;
}

class ArchTest
    : public ::testing::TestWithParam<std::tuple<Arch, unsigned>> {
 protected:
  Arch arch() const { return std::get<0>(GetParam()); }
  unsigned sn() const { return std::get<1>(GetParam()); }
  VectorKeccakConfig config() const {
    return {arch(), 5 * sn(), 24};
  }
};

TEST_P(ArchTest, PermutationMatchesGoldenModel) {
  VectorKeccak vk(config());
  auto states = random_states(sn(), 42);
  auto expected = states;
  vk.permute(states);
  for (State& s : expected) keccak::permute(s);
  for (usize i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i], expected[i]) << arch_name(arch()) << " state " << i;
  }
}

TEST_P(ArchTest, FewerStatesThanSnWork) {
  if (sn() == 1) GTEST_SKIP() << "needs SN > 1";
  VectorKeccak vk(config());
  auto states = random_states(sn() - 1, 7);
  auto expected = states;
  vk.permute(states);
  for (State& s : expected) keccak::permute(s);
  for (usize i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i], expected[i]);
  }
}

TEST_P(ArchTest, RepeatedPermutationsAreConsistent) {
  VectorKeccak vk(config());
  auto states = random_states(sn(), 3);
  auto expected = states;
  for (int rep = 0; rep < 3; ++rep) vk.permute(states);
  for (State& s : expected) {
    keccak::permute(s);
    keccak::permute(s);
    keccak::permute(s);
  }
  for (usize i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i], expected[i]);
  }
}

TEST_P(ArchTest, LatencyIndependentOfStateCount) {
  // Paper §4.2: "The latency is the same no matter how many Keccak states
  // there are in the system simultaneously."
  VectorKeccakConfig small{arch(), 5, 24};
  VectorKeccakConfig large{arch(), 5 * sn(), 24};
  VectorKeccak a(small), b(large);
  EXPECT_EQ(a.measure_permutation_cycles(), b.measure_permutation_cycles());
  EXPECT_EQ(a.measure_round_cycles(), b.measure_round_cycles());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchsAndStates, ArchTest,
    ::testing::Combine(::testing::Values(Arch::k64Lmul1, Arch::k64Lmul8,
                                         Arch::k32Lmul8, Arch::k64PureRvv,
                                         Arch::k64Fused, Arch::k64Lmul4Plus1),
                       ::testing::Values(1u, 3u, 6u)),
    [](const auto& info) {
      const char* a = "";
      switch (std::get<0>(info.param)) {
        case Arch::k64Lmul1: a = "A64L1"; break;
        case Arch::k64Lmul8: a = "A64L8"; break;
        case Arch::k32Lmul8: a = "A32L8"; break;
        case Arch::k64PureRvv: a = "A64RVV"; break;
        case Arch::k64Fused: a = "A64FUSED"; break;
        case Arch::k64Lmul4Plus1: a = "A64L41"; break;
      }
      return std::string(a) + "_SN" + std::to_string(std::get<1>(info.param));
    });

// --- the paper's Figure 5 register layout (EleNum = 16, 3 states) --------------

TEST(Figure5Layout, NonMultipleOfFiveEleNumWorks) {
  // Figure 5 shows EleNum = 16 holding three states (elements 0-4, 5-9,
  // 10-14) with element 15 unused. The whole pipeline must work with the
  // slack element present and leave the three states bit-exact.
  for (Arch arch : {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k64Fused}) {
    VectorKeccak vk({arch, 16, 24});
    EXPECT_EQ(vk.config().sn(), 3u);
    auto states = random_states(3, 16);
    auto expected = states;
    vk.permute(states);
    for (State& s : expected) keccak::permute(s);
    for (usize i = 0; i < 3; ++i) {
      EXPECT_EQ(states[i], expected[i]) << arch_name(arch) << " state " << i;
    }
  }
}

TEST(Figure5Layout, ThirtyTwoBitArchWithSlackElement) {
  // The 32-bit architecture with EleNum = 16: indexed hi/lo loads, slack
  // element untouched, three states bit-exact.
  VectorKeccak vk({Arch::k32Lmul8, 16, 24});
  auto states = random_states(3, 18);
  auto expected = states;
  vk.permute(states);
  for (State& s : expected) keccak::permute(s);
  for (usize i = 0; i < 3; ++i) EXPECT_EQ(states[i], expected[i]) << i;
}

TEST(Figure5Layout, MemoryLayoutMatchesFigure) {
  // Row y of the staged memory must hold lane (x, y) of state s at element
  // 5s + x (paper Figure 5's address allocation).
  VectorKeccak vk({Arch::k64Lmul1, 16, 1});  // 1 round: cheap
  auto states = random_states(3, 17);
  const auto originals = states;
  vk.permute(states);
  // Re-stage via the program's own layout helper and compare offsets.
  const KeccakProgram& prog = vk.program();
  for (unsigned s = 0; s < 3; ++s) {
    for (unsigned y = 0; y < 5; ++y) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(prog.lane_offset(s, x, y), (y * 16u + 5 * s + x) * 8u);
      }
    }
  }
  // And the result equals one golden round per state.
  for (usize i = 0; i < 3; ++i) {
    State expect = originals[i];
    keccak::round(expect, 0);
    EXPECT_EQ(states[i], expect);
  }
}

// --- cycle-accuracy regression (paper §4.2) -----------------------------------

TEST(CycleRegression, Round64Lmul1Is103) {
  VectorKeccak vk({Arch::k64Lmul1, 5, 24});
  EXPECT_EQ(vk.measure_round_cycles(), 103u);
}

TEST(CycleRegression, Round64Lmul8Is75) {
  VectorKeccak vk({Arch::k64Lmul8, 5, 24});
  EXPECT_EQ(vk.measure_round_cycles(), 75u);
}

TEST(CycleRegression, Round32Lmul8Is146NearPaper147) {
  // Our program reproduces the paper's structure; the measured body is one
  // cycle under the published 147 (see EXPERIMENTS.md). Pinned exactly so
  // any codegen or timing-model drift is caught immediately.
  VectorKeccak vk({Arch::k32Lmul8, 5, 24});
  EXPECT_EQ(vk.measure_round_cycles(), 146u);
}

TEST(CycleRegression, PermutationLatenciesWithinOnePercentOfPaper) {
  // Paper Table: 2564 (64/LMUL1), 1892 (64/LMUL8), 3620 (32/LMUL8) cycles
  // per 24-round permutation. Our loop/setup accounting differs slightly;
  // lock the model to within 1% of the published numbers AND pin the exact
  // measured values so regressions surface as a diff, not a drift.
  const auto near = [](u64 measured, double paper) {
    return std::abs(static_cast<double>(measured) - paper) / paper < 0.01;
  };
  VectorKeccak a({Arch::k64Lmul1, 5, 24});
  VectorKeccak b({Arch::k64Lmul8, 5, 24});
  VectorKeccak c({Arch::k32Lmul8, 5, 24});
  const u64 ca = a.measure_permutation_cycles();
  const u64 cb = b.measure_permutation_cycles();
  const u64 cc = c.measure_permutation_cycles();
  EXPECT_TRUE(near(ca, 2564.0)) << ca;
  EXPECT_TRUE(near(cb, 1892.0)) << cb;
  EXPECT_TRUE(near(cc, 3620.0)) << cc;
  EXPECT_EQ(ca, 2566u);
  EXPECT_EQ(cb, 1894u);
  EXPECT_EQ(cc, 3646u);
}

TEST(CycleRegression, Lmul8BeatsLmul1ByPaperRatio) {
  VectorKeccak a({Arch::k64Lmul1, 5, 24});
  VectorKeccak b({Arch::k64Lmul8, 5, 24});
  const double ratio = static_cast<double>(a.measure_permutation_cycles()) /
                       static_cast<double>(b.measure_permutation_cycles());
  EXPECT_NEAR(ratio, 1.35, 0.05);  // paper: throughput x1.35
}

TEST(CycleRegression, Lmul4Plus1SlowerThanLmul8AsPaperPredicts) {
  // SS4.1: "we would need to configure the LMUL value in an alternating
  // way, which would consume more time" — measured: 91 vs 75 cycles/round.
  VectorKeccak split({Arch::k64Lmul4Plus1, 5, 24});
  VectorKeccak grouped({Arch::k64Lmul8, 5, 24});
  EXPECT_EQ(split.measure_round_cycles(), 91u);
  EXPECT_GT(split.measure_round_cycles(), grouped.measure_round_cycles());
  EXPECT_LT(split.measure_round_cycles(),
            VectorKeccak({Arch::k64Lmul1, 5, 24}).measure_round_cycles());
}

TEST(CycleRegression, FusedRound64Is40) {
  // Our implementation of the paper's SS5 prediction: fusing theta's
  // combine, rho+pi, and chi drops the 64-bit round from 75 to 40 cycles.
  VectorKeccak vk({Arch::k64Fused, 5, 24});
  EXPECT_EQ(vk.measure_round_cycles(), 40u);
}

TEST(CycleRegression, FusedBeatsAlgorithm3) {
  VectorKeccak fused({Arch::k64Fused, 5, 24});
  VectorKeccak alg3({Arch::k64Lmul8, 5, 24});
  EXPECT_LT(fused.measure_permutation_cycles(),
            alg3.measure_permutation_cycles());
}

TEST(CycleRegression, CustomIseBeatsPureRvv) {
  // The ablation: custom instructions must beat the pure-RVV program on the
  // same hardware budget.
  VectorKeccak custom({Arch::k64Lmul1, 5, 24});
  VectorKeccak pure({Arch::k64PureRvv, 5, 24});
  EXPECT_LT(custom.measure_round_cycles(), pure.measure_round_cycles());
}

class DecoupledVpuTest : public ::testing::TestWithParam<Arch> {};

TEST_P(DecoupledVpuTest, ResultsIdenticalUnderBothTimingModels) {
  const KeccakProgram prog = build_keccak_program({GetParam(), 5, 24});
  SplitMix64 rng(91);
  std::array<u64, 25> lanes{};
  for (u64& lane : lanes) lane = rng.next();
  std::array<std::array<u64, 25>, 2> results{};
  for (int k = 0; k < 2; ++k) {
    sim::ProcessorConfig cfg;
    cfg.vector.elen_bits = arch_elen(GetParam());
    cfg.vector.ele_num = 5;
    cfg.cycle_model.decoupled_vpu = (k == 1);
    sim::SimdProcessor proc(cfg);
    proc.load_program(prog.image);
    const u32 base = prog.image.symbol("state");
    for (unsigned i = 0; i < 25; ++i) proc.dmem().write64(base + 8 * i, lanes[i]);
    proc.run();
    for (unsigned i = 0; i < 25; ++i) {
      results[static_cast<usize>(k)][i] = proc.dmem().read64(base + 8 * i);
    }
  }
  EXPECT_EQ(results[0], results[1]);
}

INSTANTIATE_TEST_SUITE_P(Archs, DecoupledVpuTest,
                         ::testing::Values(Arch::k64Lmul1, Arch::k64Lmul8,
                                           Arch::k32Lmul8, Arch::k64Fused,
                                           Arch::k64Lmul4Plus1),
                         [](const auto& info) {
                           switch (info.param) {
                             case Arch::k64Lmul1: return "L1";
                             case Arch::k64Lmul8: return "L8";
                             case Arch::k32Lmul8: return "A32";
                             case Arch::k64Fused: return "Fused";
                             default: return "L41";
                           }
                         });

TEST(DecoupledVpu, ResultsUnchangedAndFaster) {
  // The decoupled-VPU cycle model must not change computed results, and it
  // must hide the scalar loop overhead.
  const KeccakProgram prog = build_keccak_program({Arch::k64Lmul1, 5, 24});
  sim::ProcessorConfig blocking_cfg;
  blocking_cfg.vector.elen_bits = 64;
  blocking_cfg.vector.ele_num = 5;
  auto decoupled_cfg = blocking_cfg;
  decoupled_cfg.cycle_model.decoupled_vpu = true;

  SplitMix64 rng(77);
  std::array<u64, 25> lanes{};
  for (u64& lane : lanes) lane = rng.next();

  std::array<u64, 2> cycles{};
  std::array<std::array<u64, 25>, 2> results{};
  int k = 0;
  for (const auto& cfg : {blocking_cfg, decoupled_cfg}) {
    sim::SimdProcessor proc(cfg);
    proc.load_program(prog.image);
    const u32 base = prog.image.symbol("state");
    for (unsigned i = 0; i < 25; ++i) {
      proc.dmem().write64(base + 8 * i, lanes[i]);
    }
    proc.run();
    for (unsigned i = 0; i < 25; ++i) {
      results[static_cast<usize>(k)][i] = proc.dmem().read64(base + 8 * i);
    }
    cycles[static_cast<usize>(k)] =
        proc.cycles_between(Markers::kPermStart, Markers::kPermEnd);
    ++k;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_LT(cycles[1], cycles[0]);
}

// --- program/source level -------------------------------------------------------

TEST(Program, SourceContainsPaperInstructionSequence) {
  const KeccakProgram p = build_keccak_program({Arch::k64Lmul1, 5, 24, false});
  EXPECT_NE(p.source.find("vxor.vv v5,v3,v4"), std::string::npos);
  EXPECT_NE(p.source.find("vrotup.vi v7,v7,1"), std::string::npos);
  EXPECT_NE(p.source.find("v64rho.vi v0,v0,0"), std::string::npos);
  EXPECT_NE(p.source.find("vpi.vi v5,v4,4"), std::string::npos);
  EXPECT_NE(p.source.find("viota.vx v0,v0,s3"), std::string::npos);
}

TEST(Program, Lmul8SourceUsesRegisterGroups) {
  const KeccakProgram p = build_keccak_program({Arch::k64Lmul8, 5, 24, false});
  EXPECT_NE(p.source.find("vsetvli x0,s5,e64,m8,tu,mu"), std::string::npos);
  EXPECT_NE(p.source.find("v64rho.vi v0,v0,-1"), std::string::npos);
  EXPECT_NE(p.source.find("vpi.vi v8,v0,-1"), std::string::npos);
}

TEST(Program, PureRvvSourceHasNoCustomInstructions) {
  const KeccakProgram p = build_keccak_program({Arch::k64PureRvv, 5, 24, false});
  for (const char* custom :
       {"vslidedownm", "vslideupm", "vrotup", "v64rho", "vpi.vi", "viota",
        "v32lrho", "v32hrho", "v32lrotup", "v32hrotup"}) {
    EXPECT_EQ(p.source.find(custom), std::string::npos) << custom;
  }
}

TEST(Program, InstructionCountPerRoundMatchesAlgorithm2) {
  // Algorithm 2's round body: 13 (theta) + 5 (rho) + 5 (pi) + 25 (chi) +
  // 1 (iota) = 49 vector instructions.
  VectorKeccak vk({Arch::k64Lmul1, 5, 24});
  std::vector<State> states(1);
  vk.permute(states);
  const auto& counts = vk.processor().stats().opcode_counts;
  EXPECT_EQ(counts.at("v64rho.vi"), 5u * 24);
  EXPECT_EQ(counts.at("vpi.vi"), 5u * 24);
  EXPECT_EQ(counts.at("viota.vx"), 24u);
  EXPECT_EQ(counts.at("vslidedownm.vi"), 24u * (1 + 10));
  EXPECT_EQ(counts.at("vslideupm.vi"), 24u);
}

TEST(Program, RejectsBadOptions) {
  EXPECT_THROW((void)build_keccak_program({Arch::k64Lmul1, 4, 24, false}), Error);
  EXPECT_THROW((void)build_keccak_program({Arch::k64Lmul1, 5, 0, false}), Error);
  EXPECT_THROW((void)build_keccak_program({Arch::k64Lmul1, 5, 25, false}), Error);
}

TEST(Program, ReducedRoundVariant) {
  // A 12-round variant must equal 12 golden rounds (TurboSHAKE-style).
  VectorKeccak vk({Arch::k64Lmul1, 5, 12});
  auto states = random_states(1, 9);
  State expected = states[0];
  vk.permute(states);
  for (usize r = 0; r < 12; ++r) keccak::round(expected, r);
  EXPECT_EQ(states[0], expected);
}

TEST(VectorKeccak, RejectsTooManyStates) {
  VectorKeccak vk({Arch::k64Lmul1, 5, 24});
  std::vector<State> two(2);
  EXPECT_THROW(vk.permute(two), Error);
}

TEST(VectorKeccak, TimingPopulated) {
  VectorKeccak vk({Arch::k64Lmul8, 15, 24});
  std::vector<State> states(3);
  vk.permute(states);
  const auto& t = vk.last_timing();
  EXPECT_GT(t.permutation_cycles, 0u);
  EXPECT_GT(t.total_cycles, t.permutation_cycles);
  EXPECT_GT(t.instructions, 0u);
}

}  // namespace
}  // namespace kvx::core
