// Stress/invariant soak for the sharded engine scheduler: the payload of
// the CI ThreadSanitizer/AddressSanitizer matrix for PR 6.
//
// Matrix: backend ∈ {fused, trace, interpreter} × threads ∈ {1,2,4,8} ×
// SN ∈ {1,3,6}, > 100k jobs in total, sized per backend so the soak stays
// seconds-scale (fused carries the bulk, the interpreter a sanity slice).
// Each cell hammers ONE engine with several producer threads calling
// submit_batch() in ragged chunks — malformed jobs sprinkled in — while a
// concurrent drainer collects via drain_batch(). Checked per cell:
//  * every digest is bit-identical to the host golden model;
//  * results come back in exact submission order (each producer records
//    its chunk's first sequence id; the collected stream is indexed by it);
//  * exact accounting — submitted == completed + failed, failed == the
//    malformed count, in EngineStats AND the Prometheus counter deltas;
//  * bounded cells: queue high-water never exceeds max_queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/sim/exec_backend.hpp"

namespace kvx::engine {
namespace {

constexpr Algo kAllAlgos[] = {Algo::kSha3_224, Algo::kSha3_256,
                              Algo::kSha3_384, Algo::kSha3_512,
                              Algo::kShake128, Algo::kShake256,
                              Algo::kKmac128,  Algo::kKmac256};

std::vector<u8> random_bytes(SplitMix64& rng, usize n) {
  std::vector<u8> out(n);
  for (u8& b : out) b = static_cast<u8>(rng.next());
  return out;
}

/// A small pool of distinct, *cheap* jobs (single-block messages, short
/// outputs) the producers draw from. Golden digests are computed once per
/// pool, so 100k submissions only cost 32 host-model hashes per cell.
std::vector<HashJob> make_job_pool(usize count, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<HashJob> jobs(count);
  for (HashJob& job : jobs) {
    job.algo = kAllAlgos[rng.below(std::size(kAllAlgos))];
    job.message = random_bytes(rng, rng.below(80));
    if (fixed_digest_bytes(job.algo) == 0) {
      job.out_len = 1 + rng.below(64);
    }
    if (job.algo == Algo::kKmac128 || job.algo == Algo::kKmac256) {
      job.key = random_bytes(rng, 16 + rng.below(16));
      if (rng.below(2) == 0) job.customization = random_bytes(rng, 8);
    }
  }
  return jobs;
}

/// Deliberately malformed (SHAKE without out_len): accepted by submit and
/// retired as a per-job failure.
HashJob malformed_job() {
  HashJob job;
  job.algo = Algo::kShake128;
  return job;
}

/// What one producer submitted with one submit_batch call: the contiguous
/// sequence range starting at first_seq maps index-for-index onto pool
/// indices (-1 = malformed).
struct ChunkRecord {
  u64 first_seq = 0;
  std::vector<int> pool_idx;
};

struct SoakOutcome {
  std::vector<JobResult> results;  ///< results[seq] — submission order
  std::vector<ChunkRecord> chunks;
  usize expected_failures = 0;
  EngineStats stats;
};

/// Run one soak cell: kProducers threads submit ~total_jobs in ragged
/// submit_batch chunks against one engine while a drainer thread collects
/// concurrently with drain_batch.
SoakOutcome run_soak(const EngineConfig& cfg, usize total_jobs, u64 seed,
                     std::span<const HashJob> pool) {
  constexpr unsigned kProducers = 3;
  BatchHashEngine engine(cfg);
  SoakOutcome out;
  std::mutex chunks_mutex;
  std::atomic<usize> malformed{0};

  // Concurrent drainer: appends in-order result runs while producers are
  // still submitting — the collected stream must stay seq-indexed.
  std::atomic<bool> stop_drainer{false};
  std::thread drainer([&engine, &out, &stop_drainer] {
    while (!stop_drainer.load(std::memory_order_relaxed)) {
      engine.drain_batch(out.results);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> producers;
  const usize per_producer = total_jobs / kProducers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      SplitMix64 rng(seed * 977 + p);
      usize sent = 0;
      while (sent < per_producer) {
        const usize n =
            std::min<usize>(1 + rng.below(96), per_producer - sent);
        std::vector<HashJob> batch;
        batch.reserve(n);
        ChunkRecord rec;
        rec.pool_idx.reserve(n);
        for (usize i = 0; i < n; ++i) {
          if (rng.below(150) == 0) {
            batch.push_back(malformed_job());
            rec.pool_idx.push_back(-1);
            malformed.fetch_add(1, std::memory_order_relaxed);
          } else {
            const int k = static_cast<int>(rng.below(pool.size()));
            batch.push_back(pool[static_cast<usize>(k)]);
            rec.pool_idx.push_back(k);
          }
        }
        rec.first_seq = engine.submit_batch(batch);
        {
          std::lock_guard lock(chunks_mutex);
          out.chunks.push_back(std::move(rec));
        }
        sent += n;
      }
    });
  }
  for (std::thread& p : producers) p.join();
  stop_drainer.store(true, std::memory_order_relaxed);
  drainer.join();
  engine.close();
  engine.drain_batch(out.results);  // leftovers after the drainer stopped
  out.expected_failures = malformed.load();
  out.stats = engine.stats();
  return out;
}

void check_soak(const SoakOutcome& out,
                std::span<const std::vector<u8>> golden, usize total_jobs) {
  ASSERT_EQ(out.results.size(), total_jobs);
  ASSERT_EQ(out.stats.submitted, total_jobs);
  // The fail-soft invariant, exact at quiescence.
  EXPECT_EQ(out.stats.submitted, out.stats.completed + out.stats.failed);
  EXPECT_EQ(out.stats.failed, out.expected_failures);
  // Workers idle once drained: every queue shard must read empty.
  for (const usize d : out.stats.queue_shard_depths) EXPECT_EQ(d, 0u);
  // Ordering + correctness: each chunk's results sit at the contiguous
  // range its submit_batch call reserved, digests matching the golden
  // model job-for-job.
  usize accounted = 0;
  for (const ChunkRecord& chunk : out.chunks) {
    for (usize i = 0; i < chunk.pool_idx.size(); ++i) {
      const usize seq = static_cast<usize>(chunk.first_seq) + i;
      ASSERT_LT(seq, out.results.size());
      const JobResult& r = out.results[seq];
      const int k = chunk.pool_idx[i];
      if (k < 0) {
        ASSERT_FALSE(r.ok()) << "malformed job at seq " << seq;
      } else {
        ASSERT_TRUE(r.ok()) << "seq " << seq << ": " << r.error;
        ASSERT_EQ(r.digest, golden[static_cast<usize>(k)])
            << "digest mismatch at seq " << seq << " (pool job " << k << ")";
      }
      ++accounted;
    }
  }
  // Chunks cover the whole id space exactly once (ranges are disjoint by
  // construction if this count matches).
  EXPECT_EQ(accounted, total_jobs);
}

class ScalingSoakTest
    : public ::testing::TestWithParam<
          std::tuple<sim::ExecBackend, unsigned, unsigned>> {
 protected:
  sim::ExecBackend backend() const { return std::get<0>(GetParam()); }
  unsigned threads() const { return std::get<1>(GetParam()); }
  unsigned sn() const { return std::get<2>(GetParam()); }

  EngineConfig config() const {
    EngineConfig cfg;
    cfg.threads = threads();
    cfg.accel = {core::Arch::k64Lmul8, 5 * sn(), 24};
    cfg.accel.backend = backend();
    return cfg;
  }

  /// Per-backend cell sizing: > 100k jobs over the 36-cell matrix, with the
  /// fused backend (the production path) carrying the bulk and the
  /// interpreter a sanity slice — total 12·(6000 + 2200 + 200) = 100 800.
  usize cell_jobs() const {
    switch (backend()) {
      case sim::ExecBackend::kFusedTrace: return 6000;
      case sim::ExecBackend::kCompiledTrace: return 2200;
      case sim::ExecBackend::kInterpreter: return 200;
    }
    return 200;
  }

  u64 cell_seed() const {
    return 40'000 + static_cast<u64>(backend()) * 100 + threads() * 10 + sn();
  }
};

TEST_P(ScalingSoakTest, ConcurrentBulkSubmitDrainSoak) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& submitted_c =
      registry.counter("kvx_engine_jobs_submitted_total");
  obs::Counter& completed_c =
      registry.counter("kvx_engine_jobs_completed_total");
  obs::Counter& failures_c = registry.counter("kvx_engine_job_failures_total");
  const u64 sub0 = submitted_c.value();
  const u64 com0 = completed_c.value();
  const u64 fail0 = failures_c.value();

  const auto pool = make_job_pool(32, cell_seed());
  std::vector<std::vector<u8>> golden(pool.size());
  for (usize i = 0; i < pool.size(); ++i) {
    golden[i] = host_reference_digest(pool[i]);
  }
  const usize total = (cell_jobs() / 3) * 3;  // 3 producers, equal shares
  const SoakOutcome out = run_soak(config(), total, cell_seed(), pool);
  check_soak(out, golden, total);

  // The process-global Prometheus counters moved by exactly this cell.
  EXPECT_EQ(submitted_c.value() - sub0, total);
  EXPECT_EQ(completed_c.value() - com0, out.stats.completed);
  EXPECT_EQ(failures_c.value() - fail0, out.stats.failed);
}

INSTANTIATE_TEST_SUITE_P(
    BackendThreadSnMatrix, ScalingSoakTest,
    ::testing::Combine(::testing::Values(sim::ExecBackend::kFusedTrace,
                                         sim::ExecBackend::kCompiledTrace,
                                         sim::ExecBackend::kInterpreter),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 3u, 6u)),
    [](const auto& info) {
      return std::string(sim::backend_name(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_sn" +
             std::to_string(std::get<2>(info.param));
    });

// --- bounded-queue soak ---------------------------------------------------------

TEST(ScalingSoak, BoundedQueueHoldsBoundUnderConcurrentBulkSubmit) {
  // Backpressure under the sharded scheduler: three bulk producers against
  // a tiny bound. The strict reserve ticket must keep the high water at or
  // below the bound no matter how the chunks interleave.
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.max_queue = 8;
  const auto pool = make_job_pool(16, 99);
  std::vector<std::vector<u8>> golden(pool.size());
  for (usize i = 0; i < pool.size(); ++i) {
    golden[i] = host_reference_digest(pool[i]);
  }
  const SoakOutcome out = run_soak(cfg, 3000, 99, pool);
  check_soak(out, golden, 3000);
  EXPECT_LE(out.stats.queue_high_water, 8u);
}

// --- submit_batch / drain_batch API semantics -----------------------------------

TEST(ScalingSoak, SubmitBatchInterleavesWithSingleSubmit) {
  // Mixed intake paths on one engine: ids stay dense and every result lands
  // at its submission position.
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  const auto pool = make_job_pool(8, 123);
  std::vector<int> order;
  for (int round = 0; round < 10; ++round) {
    const u64 first = engine.submit_batch(std::span(pool).subspan(0, 5));
    EXPECT_EQ(first, static_cast<u64>(order.size()));
    for (int i = 0; i < 5; ++i) order.push_back(i);
    const u64 seq = engine.submit(pool[7]);
    EXPECT_EQ(seq, static_cast<u64>(order.size()));
    order.push_back(7);
  }
  engine.close();
  // Submitting after close throws without issuing ids — the id space stays
  // dense and fully retired.
  EXPECT_THROW(engine.submit_batch(std::span(pool).subspan(0, 2)), Error);
  std::vector<JobResult> results;
  EXPECT_EQ(engine.drain_batch(results), order.size());
  for (usize i = 0; i < order.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].digest,
              host_reference_digest(pool[static_cast<usize>(order[i])]));
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, st.completed + st.failed);
}

TEST(ScalingSoak, DrainBatchAppendsAndReturnsCount) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  const auto pool = make_job_pool(6, 321);
  engine.submit_batch(pool);
  std::vector<JobResult> results;
  EXPECT_EQ(engine.drain_batch(results), 6u);
  EXPECT_EQ(results.size(), 6u);
  // Second round appends after the existing contents.
  engine.submit_batch(std::span(pool).subspan(0, 2));
  EXPECT_EQ(engine.drain_batch(results), 2u);
  ASSERT_EQ(results.size(), 8u);
  EXPECT_EQ(results[6].digest, host_reference_digest(pool[0]));
  EXPECT_EQ(results[7].digest, host_reference_digest(pool[1]));
  // Empty drain is a no-op returning 0.
  EXPECT_EQ(engine.drain_batch(results), 0u);
  EXPECT_EQ(results.size(), 8u);
}

TEST(ScalingSoak, PinWorkersIsBestEffortAndHarmless) {
  // pin_workers must never affect results — only placement. On hosts or
  // sandboxes where affinity calls fail, it silently degrades to unpinned.
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.pin_workers = true;
  const auto pool = make_job_pool(12, 555);
  BatchHashEngine engine(cfg);
  engine.submit_batch(pool);
  engine.close();
  std::vector<JobResult> results;
  ASSERT_EQ(engine.drain_batch(results), pool.size());
  for (usize i = 0; i < pool.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].digest, host_reference_digest(pool[i]));
  }
}

}  // namespace
}  // namespace kvx::engine
