// Tests of the host-SIMD execution backend (tier zero): the packed-state
// transpose must round-trip arbitrary regfile contents (including ragged
// final groups), lowered execution must be bit-identical to the fused
// backend / interpreter / golden model across all paper configurations and
// on every host ISA compiled in, cycle reporting must pass the pinned paper
// values through untouched, the trace cache must key lowerings separately,
// and the engine must report the host-simd tier and dispatch ISA.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace kvx::core {
namespace {

using keccak::State;
using sim::ExecBackend;
using sim::HostSimdIsa;

std::vector<State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<State> states(n);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  return states;
}

std::vector<std::vector<u8>> random_messages(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<u8>> msgs(n);
  for (auto& m : msgs) {
    m.resize(rng.next() % 500);
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }
  return msgs;
}

sim::ProcessorConfig proc_config(const VectorKeccakConfig& c) {
  sim::ProcessorConfig pc;
  pc.vector.elen_bits = arch_elen(c.arch);
  pc.vector.ele_num = c.ele_num;
  pc.vector.sn = c.sn();
  return pc;
}

/// Restores automatic CPUID dispatch when a test that forces an ISA exits.
struct IsaGuard {
  ~IsaGuard() { sim::host_simd_force_isa(std::nullopt); }
};

// ---------------------------------------------------------------------------
// Packed-state transpose properties.
// ---------------------------------------------------------------------------

class PackTranspose : public ::testing::TestWithParam<std::tuple<u32, u32>> {
 protected:
  u32 sn() const { return std::get<0>(GetParam()); }
  u32 pack() const { return std::get<1>(GetParam()); }
};

TEST_P(PackTranspose, RoundTripsArbitraryRegfileContents) {
  // Pack, then unpack into a scrubbed copy: every lane byte of the covered
  // states must be restored exactly, and no byte outside them touched.
  const u32 rb = 40 * sn();  // five 64-bit lanes per state per row
  const u32 loc = 3 * rb;    // non-zero row offset, as in real plans
  SplitMix64 rng(0xC0DE + sn() * 16 + pack());
  std::vector<u8> file(loc + 5 * rb);
  for (u8& b : file) b = static_cast<u8>(rng.next());

  for (u32 s0 = 0; s0 < sn(); s0 += pack()) {
    std::vector<u64> buf(usize{25} * pack(), 0xAAAAAAAAAAAAAAAAull);
    sim::host_simd_pack(file.data(), loc, rb, sn(), s0, pack(), buf.data());

    // buf[(5y + x)·pack + p] == lane (x, y) of state s0 + p; pad lanes of
    // states at/beyond SN are zero-filled.
    for (u32 y = 0; y < 5; ++y) {
      for (u32 x = 0; x < 5; ++x) {
        for (u32 p = 0; p < pack(); ++p) {
          const u64 got = buf[(5 * y + x) * pack() + p];
          if (s0 + p >= sn()) {
            EXPECT_EQ(got, 0u) << "pad lane not zeroed";
            continue;
          }
          u64 want = 0;
          std::memcpy(&want,
                      &file[loc + y * rb + (5 * (s0 + p) + x) * 8], 8);
          EXPECT_EQ(got, want) << "x=" << x << " y=" << y << " p=" << p;
        }
      }
    }

    // Scrub the covered lanes, unpack, and require the whole file byte-for
    // byte equal to the original (covered lanes restored, rest untouched).
    std::vector<u8> scrubbed = file;
    for (u32 y = 0; y < 5; ++y) {
      for (u32 p = 0; p < pack() && s0 + p < sn(); ++p) {
        std::memset(&scrubbed[loc + y * rb + 5 * (s0 + p) * 8], 0x5C, 40);
      }
    }
    sim::host_simd_unpack(scrubbed.data(), loc, rb, sn(), s0, pack(),
                          buf.data());
    EXPECT_EQ(scrubbed, file) << "s0=" << s0;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PackWidths, PackTranspose,
    ::testing::Combine(::testing::Values(1u, 3u, 6u, 8u),   // SN
                       ::testing::Values(1u, 2u, 4u, 8u)),  // states/register
    [](const auto& info) {
      return "sn" + std::to_string(std::get<0>(info.param)) + "pack" +
             std::to_string(std::get<1>(info.param));
    });

TEST(HostSimdPack, RaggedFinalGroupDropsPadLanes) {
  // SN=6, pack=4: the second group covers states 4..7 of which 6 and 7 are
  // padding. Unpacking must write states 4 and 5 only.
  const u32 sn = 6, pack = 4, rb = 40 * sn;
  SplitMix64 rng(0xBEEF);
  std::vector<u8> file(usize{5} * rb);
  for (u8& b : file) b = static_cast<u8>(rng.next());

  std::vector<u64> buf(usize{25} * pack);
  sim::host_simd_pack(file.data(), 0, rb, sn, 4, pack, buf.data());
  for (u32 i = 0; i < 25; ++i) {
    EXPECT_EQ(buf[i * pack + 2], 0u);  // state 6: pad
    EXPECT_EQ(buf[i * pack + 3], 0u);  // state 7: pad
  }

  // Flip every packed lane, unpack, and verify only states 4/5 changed.
  for (u64& v : buf) v = ~v;
  std::vector<u8> out = file;
  sim::host_simd_unpack(out.data(), 0, rb, sn, 4, pack, buf.data());
  for (u32 y = 0; y < 5; ++y) {
    for (u32 s = 0; s < sn; ++s) {
      for (u32 x = 0; x < 5; ++x) {
        u64 orig = 0, now = 0;
        std::memcpy(&orig, &file[y * rb + (5 * s + x) * 8], 8);
        std::memcpy(&now, &out[y * rb + (5 * s + x) * 8], 8);
        if (s >= 4) {
          EXPECT_EQ(now, ~orig) << "covered lane not written";
        } else {
          EXPECT_EQ(now, orig) << "lane outside the group was touched";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: host-simd vs the other three backends.
// ---------------------------------------------------------------------------

class HostSimdDifferential
    : public ::testing::TestWithParam<std::tuple<Arch, unsigned>> {
 protected:
  Arch arch() const { return std::get<0>(GetParam()); }
  unsigned sn() const { return std::get<1>(GetParam()); }
  VectorKeccakConfig config(ExecBackend backend) const {
    VectorKeccakConfig c{arch(), 5 * sn(), 24};
    c.backend = backend;
    return c;
  }
};

TEST_P(HostSimdDifferential, PermuteMatchesInterpreterBitExactly) {
  VectorKeccak interp(config(ExecBackend::kInterpreter));
  VectorKeccak hs(config(ExecBackend::kHostSimd));
  ASSERT_EQ(hs.active_backend(), ExecBackend::kHostSimd)
      << "host-simd lowering unexpectedly fell back";
  EXPECT_GT(hs.host_simd_coverage(), 0.5) << arch_name(arch());

  for (const u64 seed : {5u, 55u, 5555u}) {
    auto a = random_states(sn(), seed);
    auto b = a;
    auto golden = a;
    interp.permute(a);
    hs.permute(b);
    for (State& s : golden) keccak::permute(s);
    for (usize i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], golden[i]) << "interpreter diverged from golden model";
      EXPECT_EQ(b[i], a[i]) << arch_name(arch()) << " state " << i;
    }
    EXPECT_EQ(hs.last_timing().total_cycles,
              interp.last_timing().total_cycles);
    EXPECT_EQ(hs.last_timing().permutation_cycles,
              interp.last_timing().permutation_cycles);
    EXPECT_EQ(hs.last_timing().instructions,
              interp.last_timing().instructions);
  }
}

TEST_P(HostSimdDifferential, RegisterFileBitIdenticalToFused) {
  // The lowered plan materializes exactly the last-writer values back to
  // the regfile, so the post-execute register file and data memory must be
  // byte-identical to the fused tier's (and hence the interpreter's).
  const VectorKeccakConfig cfg = config(ExecBackend::kInterpreter);
  const auto program = VectorKeccak::build_program(cfg);

  sim::TraceCompileOptions opts;
  opts.verify_base = program->image.symbol("state");
  opts.verify_len = usize{5} * cfg.ele_num * 8;
  const auto fused = sim::fuse_trace(
      sim::compile_trace(program->image, proc_config(cfg), opts));
  const auto hs = sim::lower_host_simd(fused);
  ASSERT_GT(hs->lowered_kernel_count(), 0u);

  sim::SimdProcessor pf(proc_config(cfg));
  sim::SimdProcessor ph(proc_config(cfg));
  pf.load_program(program->image);
  ph.load_program(program->image);

  SplitMix64 rng(0xFEED + sn());
  std::vector<u8> state_data(opts.verify_len);
  for (u8& byte : state_data) byte = static_cast<u8>(rng.next());
  pf.dmem().write_block(opts.verify_base, state_data);
  ph.dmem().write_block(opts.verify_base, state_data);

  fused->execute(pf.vector(), pf.dmem(), pf.config().cycle_model);
  hs->execute(ph.vector(), ph.dmem(), ph.config().cycle_model);

  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(ph.vector().get_register(r), pf.vector().get_register(r))
        << "v" << r;
  }
  std::vector<u8> mf(pf.dmem().size());
  std::vector<u8> mh(ph.dmem().size());
  pf.dmem().read_block(0, mf);
  ph.dmem().read_block(0, mh);
  EXPECT_EQ(mh, mf);
  EXPECT_EQ(hs->total_cycles(), fused->total_cycles());
}

TEST_P(HostSimdDifferential, Sha3DigestsMatchAcrossAllFourBackends) {
  ParallelSha3 interp(config(ExecBackend::kInterpreter));
  ParallelSha3 traced(config(ExecBackend::kCompiledTrace));
  ParallelSha3 fused(config(ExecBackend::kFusedTrace));
  ParallelSha3 hs(config(ExecBackend::kHostSimd));
  const auto msgs = random_messages(4 * sn() + 1, 0xF00D + sn());

  const auto di = interp.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dt = traced.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto df = fused.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  const auto dh = hs.hash_batch(keccak::Sha3Function::kSha3_256, msgs);
  ASSERT_EQ(di.size(), msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(di[i],
              keccak::hash(keccak::Sha3Function::kSha3_256, msgs[i], 32));
    EXPECT_EQ(dt[i], di[i]) << "trace, message " << i;
    EXPECT_EQ(df[i], di[i]) << "fused, message " << i;
    EXPECT_EQ(dh[i], di[i]) << "host-simd, message " << i;
  }
}

TEST_P(HostSimdDifferential, EveryCompiledIsaProducesIdenticalResults) {
  // The plan is ISA-independent; each compiled-in dispatch width must
  // produce the same digests and the same pass-through cycles.
  IsaGuard guard;
  VectorKeccak interp(config(ExecBackend::kInterpreter));
  auto want = random_states(sn(), 0xABCD);
  interp.permute(want);

  for (const HostSimdIsa isa :
       {HostSimdIsa::kScalar, HostSimdIsa::kPortable, HostSimdIsa::kAvx2,
        HostSimdIsa::kAvx512}) {
    if (!sim::host_simd_isa_available(isa)) continue;
    sim::host_simd_force_isa(isa);
    ASSERT_EQ(sim::host_simd_active_isa(), isa);
    VectorKeccak hs(config(ExecBackend::kHostSimd));
    ASSERT_EQ(hs.active_backend(), ExecBackend::kHostSimd);
    auto got = random_states(sn(), 0xABCD);
    hs.permute(got);
    for (usize i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << sim::host_simd_isa_name(isa) << " state " << i;
    }
    EXPECT_EQ(hs.last_timing().permutation_cycles,
              interp.last_timing().permutation_cycles)
        << sim::host_simd_isa_name(isa);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, HostSimdDifferential,
    ::testing::Values(std::make_tuple(Arch::k64Lmul1, 1u),
                      std::make_tuple(Arch::k64Lmul8, 3u),
                      std::make_tuple(Arch::k64Fused, 3u),
                      std::make_tuple(Arch::k64Lmul8, 6u),
                      std::make_tuple(Arch::k64Lmul8, 8u)));

// ---------------------------------------------------------------------------
// Demotion, cycle pinning, cache keying, engine reporting.
// ---------------------------------------------------------------------------

TEST(HostSimd, PermutationCyclesMatchPinnedPaperValues) {
  const auto perm_cycles = [](Arch arch, ExecBackend want) {
    VectorKeccakConfig c{arch, 5, 24};
    c.backend = ExecBackend::kHostSimd;
    VectorKeccak vk(c);
    EXPECT_EQ(vk.active_backend(), want) << arch_name(arch);
    std::vector<State> states(1);
    vk.permute(states);
    return vk.last_timing().permutation_cycles;
  };
  EXPECT_EQ(perm_cycles(Arch::k64Lmul1, ExecBackend::kHostSimd), 2566u);
  EXPECT_EQ(perm_cycles(Arch::k64Lmul8, ExecBackend::kHostSimd), 1894u);
  // 32-bit split halves cannot lower; the chain must land on fused with
  // the pinned cycle count intact.
  EXPECT_EQ(perm_cycles(Arch::k32Lmul8, ExecBackend::kFusedTrace), 3646u);
}

TEST(HostSimd, SplitArchDemotesToFusedWithCorrectDigests) {
  VectorKeccakConfig c{Arch::k32Lmul8, 30, 24};
  c.backend = ExecBackend::kHostSimd;
  VectorKeccak vk(c);
  EXPECT_EQ(vk.active_backend(), ExecBackend::kFusedTrace);
  EXPECT_GE(vk.backend_fallbacks(), 1u);
  EXPECT_EQ(vk.host_simd_coverage(), 0.0);
  EXPECT_GT(vk.fusion_coverage(), 0.5);

  auto states = random_states(6, 0x5EED);
  auto golden = states;
  vk.permute(states);
  for (State& s : golden) keccak::permute(s);
  for (usize i = 0; i < states.size(); ++i) EXPECT_EQ(states[i], golden[i]);
}

TEST(HostSimd, TraceCacheKeysLoweringsSeparately) {
  // A host-simd compilation and a fused compilation of the same program
  // must coexist in the cache: the lowering is a distinct artifact keyed by
  // its own salt, sharing the fused artifact underneath.
  VectorKeccakConfig c{Arch::k64Lmul8, 15, 24};
  const auto program = VectorKeccak::build_program(c);
  sim::TraceCompileOptions opts;
  opts.verify_base = program->image.symbol("state");
  opts.verify_len = usize{5} * c.ele_num * 8;

  const auto hs = sim::TraceCache::global().get_or_compile_host_simd(
      program->image, proc_config(c), opts);
  const auto fused = sim::TraceCache::global().get_or_compile_fused(
      program->image, proc_config(c), opts);
  ASSERT_NE(hs, nullptr);
  ASSERT_NE(fused, nullptr);
  // The lowering wraps the SAME fused artifact the fused tier hands out.
  EXPECT_EQ(hs->shared_fused().get(), fused.get());

  // Second lookup hits, returning the identical plan.
  const auto hs2 = sim::TraceCache::global().get_or_compile_host_simd(
      program->image, proc_config(c), opts);
  EXPECT_EQ(hs2.get(), hs.get());
}

TEST(HostSimd, AutomaticDispatchNarrowsToSnSizedPackWidth) {
  // In automatic mode small batches narrow to the smallest pack width
  // covering SN (padding lanes are wasted work); a forced pin always wins.
  if (std::getenv("KVX_HOST_SIMD_ISA") != nullptr) {
    GTEST_SKIP() << "KVX_HOST_SIMD_ISA pins the dispatch ISA";
  }
  IsaGuard guard;
  sim::host_simd_force_isa(std::nullopt);
  EXPECT_EQ(sim::host_simd_dispatch_isa(1), HostSimdIsa::kScalar);
  EXPECT_LE(sim::host_simd_pack_width(sim::host_simd_dispatch_isa(3)), 4u);
  EXPECT_LE(sim::host_simd_pack_width(sim::host_simd_dispatch_isa(4)), 4u);
  EXPECT_EQ(sim::host_simd_dispatch_isa(6), sim::host_simd_active_isa());
  for (const HostSimdIsa isa :
       {HostSimdIsa::kPortable, HostSimdIsa::kAvx2, HostSimdIsa::kAvx512}) {
    if (!sim::host_simd_isa_available(isa)) continue;
    sim::host_simd_force_isa(isa);
    EXPECT_EQ(sim::host_simd_dispatch_isa(1), isa)
        << sim::host_simd_isa_name(isa);
  }
}

TEST(HostSimd, EngineReportsHostSimdBackendAndIsa) {
  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kHostSimd;
  engine::BatchHashEngine eng(cfg);

  const auto msgs = random_messages(10, 0xE16);
  std::vector<engine::HashJob> jobs(msgs.size());
  for (usize i = 0; i < msgs.size(); ++i) {
    jobs[i].algo = engine::Algo::kSha3_256;
    jobs[i].message = msgs[i];
  }
  eng.submit_all(jobs);
  const auto results = eng.drain_results();
  for (usize i = 0; i < msgs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].digest,
              keccak::hash(keccak::Sha3Function::kSha3_256, msgs[i], 32));
  }

  const engine::EngineStats st = eng.stats();
  EXPECT_EQ(st.backend, "host-simd");
  EXPECT_EQ(st.effective_backend, "host-simd");
  EXPECT_EQ(st.host_simd_isa,
            sim::host_simd_isa_name(sim::host_simd_dispatch_isa(3)));
  EXPECT_GT(st.host_simd_coverage, 0.5);
  EXPECT_GT(st.fusion_coverage, 0.5);
}

}  // namespace
}  // namespace kvx::core
